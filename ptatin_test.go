package ptatin3d_test

import (
	"math"
	"testing"

	"ptatin3d"
)

// TestFacadeSinkerLifecycle drives the full public API surface: model
// construction, a time step, diagnostics and streamlines.
func TestFacadeSinkerLifecycle(t *testing.T) {
	o := ptatin3d.DefaultSinkerOptions()
	o.M = 4
	m := ptatin3d.NewSinker(o)
	m.Cfg.Levels = 2
	if err := m.StepForward(); err != nil {
		t.Fatal(err)
	}
	if len(m.Stats) != 1 || m.Stats[0].Dt <= 0 {
		t.Fatalf("stats not recorded: %+v", m.Stats)
	}
	if ke := m.KineticEnergy(); ke <= 0 || math.IsNaN(ke) {
		t.Fatalf("kinetic energy %v", ke)
	}
	line := m.Streamline(0.5, 0.5, 0.7, 0.05, 50)
	if len(line) < 2 {
		t.Fatal("no streamline")
	}
}

// TestFacadeCustomProblem builds a custom Stokes problem purely through
// the facade (the library-user path of examples/rayleigh-taylor).
func TestFacadeCustomProblem(t *testing.T) {
	da := ptatin3d.NewMesh(4, 4, 4, 0, 1, 0, 1, 0, 1)
	bc := ptatin3d.NewBC(da)
	bc.FreeSlipBox(da, ptatin3d.XMin, ptatin3d.XMax, ptatin3d.YMin, ptatin3d.YMax, ptatin3d.ZMin)
	p := ptatin3d.NewProblem(da, bc)
	p.Gravity = [3]float64{0, 0, -1}
	p.SetCoefficientsFunc(
		func(x, y, z float64) float64 { return 1 },
		func(x, y, z float64) float64 {
			if z > 0.5 {
				return 1.1
			}
			return 1
		})
	cfg := ptatin3d.DefaultStokesConfig()
	cfg.Levels = 2
	s, err := ptatin3d.NewStokesSolver(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := make(ptatin3d.Vec, da.NVelDOF())
	ptatin3d.MomentumRHS(p, bu)
	x := make(ptatin3d.Vec, s.Op.N())
	res := s.Solve(x, bu, nil)
	if !res.Converged {
		t.Fatalf("custom solve failed after %d its", res.Iterations)
	}
}

// TestFacadePerfModel sanity-checks the exposed Table-I cost model.
func TestFacadePerfModel(t *testing.T) {
	paper := ptatin3d.PaperTableI()
	repro := ptatin3d.ReproOpCounts()
	if len(paper) != 4 || len(repro) != 4 {
		t.Fatalf("unexpected row counts: %d, %d", len(paper), len(repro))
	}
	// The qualitative Table-I ordering holds for both.
	for _, rows := range [][]ptatin3d.OpCounts{paper, repro} {
		var mf, tens ptatin3d.OpCounts
		for _, r := range rows {
			switch r.Name {
			case "Matrix-free":
				mf = r
			case "Tensor":
				tens = r
			}
		}
		if tens.Flops >= mf.Flops {
			t.Fatal("tensor kernel must do fewer flops")
		}
	}
}

// TestFacadeLithologyTable exercises the rheology surface.
func TestFacadeLithologyTable(t *testing.T) {
	tab := ptatin3d.LithologyTable{
		{Name: "a", Type: ptatin3d.ConstantViscosity, Eta0: 2, Rho0: 5},
		{Name: "b", Type: ptatin3d.FrankKamenetskii, Eta0: 10, N: 1, E: math.Log(100)},
	}
	if tab.Eta(0, ptatin3d.RheologyState{}) != 2 {
		t.Fatal("constant law broken")
	}
	hot := tab.Eta(1, ptatin3d.RheologyState{StrainRateII: 1, Temperature: 1})
	cold := tab.Eta(1, ptatin3d.RheologyState{StrainRateII: 1, Temperature: 0})
	if cold/hot < 99 || cold/hot > 101 {
		t.Fatalf("FK contrast %v, want 100", cold/hot)
	}
}

// TestFacadeThermal exercises the exposed energy-equation solver.
func TestFacadeThermal(t *testing.T) {
	da := ptatin3d.NewMesh(3, 3, 3, 0, 1, 0, 1, 0, 1)
	p := ptatin3d.NewProblem(da, nil)
	ts := ptatin3d.NewThermalSolver(p, 1.0)
	ts.SetFaceTemperature(ptatin3d.ZMin, 0)
	ts.SetFaceTemperature(ptatin3d.ZMax, 1)
	T := make([]float64, da.NVertices())
	for i := 0; i < 30; i++ {
		if err := ts.Step(T, nil, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	mid := da.VertexID(1, 1, 1) // z = 1/3 plane... vertex (1,1,1) has z=1/3
	want := 1.0 / 3
	if math.Abs(T[mid]-want) > 0.02 {
		t.Fatalf("conduction profile T=%v, want %v", T[mid], want)
	}
}
