package krylov

import (
	"fmt"

	"ptatin3d/internal/la"
)

// Jacobi is diagonal scaling: z = D⁻¹·r. Spans, when non-empty, windows
// the scaling to the listed index ranges (a rank's owned+ghost rows on
// the distributed path); InvDiag may be shared between instances.
type Jacobi struct {
	InvDiag la.Vec
	Spans   []la.Span
}

// NewJacobi builds a Jacobi preconditioner from a diagonal vector,
// guarding zero entries with 1.
func NewJacobi(diag la.Vec) *Jacobi {
	inv := la.NewVec(len(diag))
	for i, d := range diag {
		if d != 0 {
			inv[i] = 1 / d
		} else {
			inv[i] = 1
		}
	}
	return &Jacobi{InvDiag: inv}
}

// Apply computes z = D⁻¹·r.
func (j *Jacobi) Apply(r, z la.Vec) {
	if len(j.Spans) > 0 {
		z.PointwiseMultSpans(j.InvDiag, r, j.Spans)
		return
	}
	z.PointwiseMult(j.InvDiag, r)
}

// ILUPC wraps an ILU(0) factorization as a preconditioner.
type ILUPC struct{ F *la.ILU0 }

// NewILUPC factors a and returns the preconditioner.
func NewILUPC(a *la.CSR) (*ILUPC, error) {
	f, err := la.NewILU0(a)
	if err != nil {
		return nil, err
	}
	return &ILUPC{F: f}, nil
}

// Apply computes z = (LU)⁻¹·r.
func (p *ILUPC) Apply(r, z la.Vec) { p.F.Solve(r, z) }

// BlockJacobi partitions the unknowns into nb contiguous blocks and solves
// each diagonal block exactly with a dense LU factorization — the coarse
// level solver used inside the algebraic multigrid configurations of the
// paper ("block Jacobi, with an exact LU factorization applied on each of
// the subdomains", §IV-A).
type BlockJacobi struct {
	offsets []int
	facts   []*la.LU
}

// NewBlockJacobi factors the nb diagonal blocks of a.
func NewBlockJacobi(a *la.CSR, nb int) (*BlockJacobi, error) {
	n := a.NRows
	if nb < 1 {
		nb = 1
	}
	if nb > n {
		nb = n
	}
	bj := &BlockJacobi{}
	chunk := (n + nb - 1) / nb
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		blk := la.NewDense(hi-lo, hi-lo)
		for i := lo; i < hi; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColInd[k]
				if j >= lo && j < hi {
					blk.Add(i-lo, j-lo, a.Val[k])
				}
			}
		}
		f, err := la.Factor(blk)
		if err != nil {
			return nil, fmt.Errorf("krylov: block [%d,%d) singular: %w", lo, hi, err)
		}
		bj.offsets = append(bj.offsets, lo)
		bj.facts = append(bj.facts, f)
	}
	bj.offsets = append(bj.offsets, n)
	return bj, nil
}

// Apply solves each diagonal block exactly.
func (bj *BlockJacobi) Apply(r, z la.Vec) {
	for b, f := range bj.facts {
		lo, hi := bj.offsets[b], bj.offsets[b+1]
		f.Solve(r[lo:hi], z[lo:hi])
	}
}

// InnerKrylov wraps an iterative solve as a (nonlinear) preconditioner:
// z ≈ A⁻¹·r computed by the chosen method with its own tolerance/iteration
// budget. Pair with flexible outer methods only. This realizes the
// paper's inexact coarse-grid solves (e.g. CG+ASM terminated at 25
// iterations, §V-A, and the FGMRES-based SAML-ii smoother of Table IV).
type InnerKrylov struct {
	A      Op
	M      Preconditioner
	Method string // "cg", "fgmres", "gmres"
	Prm    Params
}

// Apply runs the inner solve from a zero initial guess.
func (ik *InnerKrylov) Apply(r, z la.Vec) {
	z.Zero()
	switch ik.Method {
	case "cg":
		CG(ik.A, ik.M, r, z, ik.Prm)
	case "gmres":
		GMRES(ik.A, ik.M, r, z, ik.Prm)
	default:
		FGMRES(ik.A, ik.M, r, z, ik.Prm)
	}
}

// Composite applies preconditioners multiplicatively:
// z = M2⁻¹(r - A·M1⁻¹r) + M1⁻¹r. Unused slots may be nil.
type Composite struct {
	A      Op
	M1, M2 Preconditioner
}

// Apply performs the two-stage multiplicative combination.
func (c *Composite) Apply(r, z la.Vec) {
	n := c.A.N()
	if c.M2 == nil {
		c.M1.Apply(r, z)
		return
	}
	z1 := la.NewVec(n)
	c.M1.Apply(r, z1)
	t := la.NewVec(n)
	c.A.Apply(z1, t)
	t.AYPX(-1, r) // t = r - A z1
	c.M2.Apply(t, z)
	z.AXPY(1, z1)
}
