package krylov

import (
	"fmt"
	"sort"

	"ptatin3d/internal/la"
)

// ASM is an overlapping additive Schwarz preconditioner (paper §V-A): the
// unknowns are split into contiguous base blocks ("subdomains"), each
// grown by `overlap` levels of matrix-graph adjacency; subdomain problems
// are solved by ILU(0) (the paper's choice) or exact LU. By default the
// restricted variant (RAS) is used — corrections are scattered back only
// to the base block — matching PETSc's default and avoiding double
// counting in overlap regions.
type ASM struct {
	subRows  [][]int    // global row indices of each (overlapped) subdomain
	baseMask [][]bool   // per-subdomain: local index belongs to the base block
	iluF     []*la.ILU0 // ILU(0) factors (Exact=false)
	luF      []*la.LU   // dense LU factors (Exact=true)
	restrict bool
}

// ASMOptions configures NewASM.
type ASMOptions struct {
	Subdomains int  // number of base blocks
	Overlap    int  // graph-adjacency overlap levels (paper uses 4)
	Exact      bool // dense LU subdomain solves instead of ILU(0)
	Additive   bool // plain additive instead of restricted (RAS)
}

// NewASM builds the preconditioner for the CSR matrix a.
func NewASM(a *la.CSR, opt ASMOptions) (*ASM, error) {
	n := a.NRows
	nsub := opt.Subdomains
	if nsub < 1 {
		nsub = 1
	}
	if nsub > n {
		nsub = n
	}
	asm := &ASM{restrict: !opt.Additive}
	chunk := (n + nsub - 1) / nsub
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		// Grow the base block by `overlap` adjacency levels.
		inSet := make(map[int]bool, (hi-lo)*2)
		frontier := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			inSet[i] = true
			frontier = append(frontier, i)
		}
		for lvl := 0; lvl < opt.Overlap; lvl++ {
			var next []int
			for _, i := range frontier {
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					j := a.ColInd[k]
					if !inSet[j] {
						inSet[j] = true
						next = append(next, j)
					}
				}
			}
			frontier = next
			if len(frontier) == 0 {
				break
			}
		}
		rows := make([]int, 0, len(inSet))
		for i := range inSet {
			rows = append(rows, i)
		}
		sort.Ints(rows)
		base := make([]bool, len(rows))
		for l, g := range rows {
			base[l] = g >= lo && g < hi
		}
		sub := la.ExtractSubmatrix(a, rows)
		asm.subRows = append(asm.subRows, rows)
		asm.baseMask = append(asm.baseMask, base)
		if opt.Exact {
			d := la.NewDense(sub.NRows, sub.NCols)
			for i := 0; i < sub.NRows; i++ {
				for k := sub.RowPtr[i]; k < sub.RowPtr[i+1]; k++ {
					d.Add(i, sub.ColInd[k], sub.Val[k])
				}
			}
			f, err := la.Factor(d)
			if err != nil {
				return nil, fmt.Errorf("krylov: ASM subdomain LU: %w", err)
			}
			asm.luF = append(asm.luF, f)
			asm.iluF = append(asm.iluF, nil)
		} else {
			f, err := la.NewILU0(sub)
			if err != nil {
				return nil, fmt.Errorf("krylov: ASM subdomain ILU(0): %w", err)
			}
			asm.iluF = append(asm.iluF, f)
			asm.luF = append(asm.luF, nil)
		}
	}
	return asm, nil
}

// NumSubdomains returns the number of subdomains.
func (asm *ASM) NumSubdomains() int { return len(asm.subRows) }

// Apply computes z = Σ_i Rᵢᵀ·Aᵢ⁻¹·Rᵢ·r (restricted by default).
func (asm *ASM) Apply(r, z la.Vec) {
	z.Zero()
	for s, rows := range asm.subRows {
		rl := la.NewVec(len(rows))
		for l, g := range rows {
			rl[l] = r[g]
		}
		zl := la.NewVec(len(rows))
		if asm.luF[s] != nil {
			asm.luF[s].Solve(rl, zl)
		} else {
			asm.iluF[s].Solve(rl, zl)
		}
		base := asm.baseMask[s]
		for l, g := range rows {
			if asm.restrict {
				if base[l] {
					z[g] = zl[l]
				}
			} else {
				z[g] += zl[l]
			}
		}
	}
}
