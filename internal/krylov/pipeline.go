package krylov

import (
	"math"

	"ptatin3d/internal/la"
)

// Single-reduce ("pipelined") Krylov variants, selected by
// Params.Pipelined on rank-collective solves. At 64–512 simulated ranks
// the dominant per-iteration cost is no longer flops but allreduce
// latency — O(log P) message hops per reduction — so the classical
// iterations (CG: 3 reductions, GCR: j+3, FGMRES: j+2) are restructured
// to fold every inner product of an iteration into ONE batched
// reduction through the BatchReducer hook:
//
//   - CG uses the Chronopoulos–Gear recurrences: the three scalars
//     γ=(r,u), δ=(w,u), ρ=(r,r) reduce together, and the search/update
//     vectors are advanced by recurrences instead of recomputation.
//   - GCR replaces modified Gram–Schmidt with classical Gram–Schmidt and
//     exploits r ⊥ q_i for the stored orthonormal directions, batching
//     [(q,q_0)…(q,q_{j-1}), (q,q), (r,q), (r,r)]; the post-update
//     residual norm follows from ‖r_new‖² = ‖r‖² − α², refreshed from a
//     true (r,r) every iteration so the recurrence cannot drift.
//   - FGMRES swaps MGS for reorthogonalized classical Gram–Schmidt
//     (CGS2) with the norm recurrence h_{j+1,j}² = (w,w) − Σᵢ h_{ij}²:
//     two batched reductions per iteration regardless of the Krylov
//     dimension j (see gmres.go for why one CGS pass is not enough).
//
// The recurrences change the floating-point summation order, so results
// differ from the classical variants in the last bits (the property
// tests bound the drift at ≤1e-10 and ±2 iterations); across rank
// counts the pipelined trajectory itself is bit-identical as long as
// the reducer is deterministic. With Reducer == nil the Pipelined flag
// is ignored entirely and the serial classical path runs bit-for-bit.

// pipeCG is preconditioned CG with the Chronopoulos–Gear single-reduce
// iteration.
func pipeCG(a Op, m Preconditioner, b, x la.Vec, prm Params) Result {
	n := a.N()
	r := la.NewVec(n)
	u := la.NewVec(n) // M⁻¹·r
	w := la.NewVec(n) // A·u
	mv := la.NewVec(n)
	nv := la.NewVec(n)
	p := la.NewVec(n)
	s := la.NewVec(n) // A·p
	q := la.NewVec(n) // M⁻¹·s
	z := la.NewVec(n) // A·q

	telStart := prm.begin()
	if err := prm.consistent(x, b); err != nil {
		var res Result
		res.failEntry(prm, err)
		res.finish(prm, telStart)
		return res
	}
	a.Apply(x, r)
	prm.vaypx(r, -1, b) // r = b - A·x
	res := Result{Residual0: prm.norm2(r)}
	rn := res.Residual0
	res.record(prm, rn)
	if k := badNorm(rn); k != 0 {
		res.fail(prm, "pipecg", k, 0, rn)
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	if converged(prm, rn, res.Residual0) {
		res.Converged = true
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	stag := newStagGuard(prm)
	m.Apply(r, u)
	a.Apply(u, w)

	var gammaOld, alphaOld float64
	for it := 1; ; it++ {
		// The iteration's one reduction: γ=(r,u), δ=(w,u), ρ=(r,r).
		d := prm.dots([]la.Vec{r, w, r}, []la.Vec{u, u, r})
		gamma, delta, rho := d[0], d[1], d[2]
		rn = math.Sqrt(rho)
		if it > 1 {
			// ρ is ‖r‖² after the previous update step: the pipelined
			// iteration observes convergence one reduction later than
			// classical CG, which is the latency it trades away.
			res.Iterations = it - 1
			res.record(prm, rn)
			if k := badNorm(rn); k != 0 {
				res.fail(prm, "pipecg", k, it-1, rn)
				break
			}
			if converged(prm, rn, res.Residual0) {
				res.Converged = true
				break
			}
			if stag.stalled(rn) {
				res.fail(prm, "pipecg", BreakdownStagnation, it-1, rn)
				break
			}
		}
		if it > prm.MaxIt {
			break
		}
		m.Apply(w, mv)
		a.Apply(mv, nv)
		var alpha, beta float64
		if it == 1 {
			if delta == 0 || badNorm(delta) != 0 {
				res.fail(prm, "pipecg", BreakdownZeroPivot, it, delta)
				break
			}
			beta, alpha = 0, gamma/delta
		} else {
			beta = gamma / gammaOld
			den := delta - beta*gamma/alphaOld
			if den == 0 || gammaOld == 0 || badNorm(den) != 0 {
				res.fail(prm, "pipecg", BreakdownZeroPivot, it, den)
				break
			}
			alpha = gamma / den
		}
		prm.vaypx(z, beta, nv) // z = n + β·z
		prm.vaypx(q, beta, mv) // q = m + β·q
		prm.vaypx(s, beta, w)  // s = w + β·s
		prm.vaypx(p, beta, u)  // p = u + β·p
		prm.vaxpy(x, alpha, p)
		prm.vaxpy(r, -alpha, s)
		prm.vaxpy(u, -alpha, q)
		prm.vaxpy(w, -alpha, z)
		gammaOld, alphaOld = gamma, alpha
	}
	res.Residual = rn
	res.finish(prm, telStart)
	return res
}

// pipeGCR is flexible GCR with the single-reduce iteration: classical
// Gram–Schmidt against the stored orthonormal directions plus the
// residual projections, all in one batched reduction.
func pipeGCR(a Op, m Preconditioner, b, x la.Vec, prm Params, callback func(it int, r la.Vec)) Result {
	n := a.N()
	mr := prm.restart()
	telStart := prm.begin()
	r := la.NewVec(n)
	if err := prm.consistent(x, b); err != nil {
		var res Result
		res.failEntry(prm, err)
		res.finish(prm, telStart)
		return res
	}
	a.Apply(x, r)
	prm.vaypx(r, -1, b)
	res := Result{Residual0: prm.norm2(r)}
	rn := res.Residual0
	res.record(prm, rn)
	if callback != nil {
		callback(0, r)
	}
	if k := badNorm(rn); k != 0 {
		res.fail(prm, "pipegcr", k, 0, rn)
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	if converged(prm, rn, res.Residual0) {
		res.Converged = true
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	stag := newStagGuard(prm)

	zs := make([]la.Vec, 0, mr)
	qs := make([]la.Vec, 0, mr)
	z := la.NewVec(n)
	q := la.NewVec(n)
	xs := make([]la.Vec, 0, mr+3)
	ys := make([]la.Vec, 0, mr+3)

	for it := 1; it <= prm.MaxIt; it++ {
		m.Apply(r, z)
		a.Apply(z, q)
		// One reduction: CGS coefficients against the stored directions,
		// the raw norm (q,q), the projection (r,q) and the true (r,r).
		xs, ys = xs[:0], ys[:0]
		for i := range qs {
			xs, ys = append(xs, q), append(ys, qs[i])
		}
		xs, ys = append(xs, q, r, r), append(ys, q, q, r)
		d := prm.dots(xs, ys)
		j := len(qs)
		qq, rq, rr := d[j], d[j+1], d[j+2]
		qn2 := qq
		for i := 0; i < j; i++ {
			beta := d[i]
			prm.vaxpy(q, -beta, qs[i])
			prm.vaxpy(z, -beta, zs[i])
			// The stored qs are orthonormal, so CGS shrinks ‖q‖² by
			// exactly the removed projections: ‖q'‖² = (q,q) − Σβᵢ².
			qn2 -= beta * beta
		}
		if qn2 <= 0 || badNorm(qn2) != 0 {
			res.fail(prm, "pipegcr", BreakdownZeroPivot, it, qn2)
			break
		}
		qn := math.Sqrt(qn2)
		prm.vscale(q, 1/qn)
		prm.vscale(z, 1/qn)
		// r ⊥ qs[i] for the stored directions, so the projection of r on
		// the normalized q needs no new reduction: α = (r,q)/‖q'‖.
		alpha := rq / qn
		prm.vaxpy(x, alpha, z)
		prm.vaxpy(r, -alpha, q)
		// ‖r_new‖² = ‖r‖² − α² (r_new ⊥ q). rr is a true reduced (r,r)
		// from this iteration's batch, so the recurrence never compounds;
		// only the final subtraction is subject to cancellation.
		rn = math.Sqrt(math.Max(rr-alpha*alpha, 0))
		res.Iterations = it
		res.record(prm, rn)
		if callback != nil {
			callback(it, r)
		}
		if k := badNorm(rn); k != 0 {
			res.fail(prm, "pipegcr", k, it, rn)
			break
		}
		if converged(prm, rn, res.Residual0) {
			res.Converged = true
			break
		}
		if stag.stalled(rn) {
			res.fail(prm, "pipegcr", BreakdownStagnation, it, rn)
			break
		}
		if len(qs) == mr {
			zs = zs[:0]
			qs = qs[:0]
		}
		zs = append(zs, prm.vclone(z))
		qs = append(qs, prm.vclone(q))
	}
	res.Residual = rn
	res.finish(prm, telStart)
	return res
}
