package krylov

import (
	"errors"
	"math"
	"testing"

	"ptatin3d/internal/la"
	"ptatin3d/internal/telemetry"
)

// nanOp poisons the output after a few applications, modelling an operator
// whose coefficients went bad mid-solve.
type nanOp struct {
	n     int
	after int
	calls int
}

func (o *nanOp) N() int { return o.n }

func (o *nanOp) Apply(x, y la.Vec) {
	o.calls++
	for i := range y {
		y[i] = 2*x[i] + 0.1*x[(i+1)%o.n]
	}
	if o.calls > o.after {
		y[0] = math.NaN()
	}
}

// zeroOp maps everything to zero — the fully singular worst case.
type zeroOp struct{ n int }

func (o zeroOp) N() int { return o.n }

func (o zeroOp) Apply(x, y la.Vec) { y.Zero() }

func onesVec(n int) la.Vec {
	b := la.NewVec(n)
	for i := range b {
		b[i] = 1
	}
	return b
}

// checkBreakdown asserts a typed breakdown within bounded iterations.
func checkBreakdown(t *testing.T, name string, res Result, maxIt int, kinds ...BreakdownKind) {
	t.Helper()
	if !res.Breakdown {
		t.Fatalf("%s: Breakdown flag not set (converged=%v, its=%d)", name, res.Converged, res.Iterations)
	}
	be, ok := AsBreakdown(res.Err)
	if !ok {
		t.Fatalf("%s: Err = %v, want *BreakdownError", name, res.Err)
	}
	if res.Iterations > maxIt {
		t.Fatalf("%s: %d iterations before breakdown, want <= %d", name, res.Iterations, maxIt)
	}
	for _, k := range kinds {
		if be.Kind == k {
			return
		}
	}
	t.Fatalf("%s: breakdown kind %v, want one of %v", name, be.Kind, kinds)
}

func TestBreakdownNaNOperator(t *testing.T) {
	const n = 24
	prm := Params{RTol: 1e-12, ATol: 1e-300, MaxIt: 100, Restart: 10}
	// after=1: the initial residual evaluation is clean, the first real
	// Krylov matvec is poisoned.
	mk := func() Op { return &nanOp{n: n, after: 1} }

	checkBreakdown(t, "cg", CG(mk(), Identity{}, onesVec(n), la.NewVec(n), prm), 10, BreakdownNaN)
	checkBreakdown(t, "gmres", GMRES(mk(), Identity{}, onesVec(n), la.NewVec(n), prm), 10, BreakdownNaN)
	checkBreakdown(t, "fgmres", FGMRES(mk(), Identity{}, onesVec(n), la.NewVec(n), prm), 10, BreakdownNaN)
	checkBreakdown(t, "gcr", GCR(mk(), Identity{}, onesVec(n), la.NewVec(n), prm, nil), 10, BreakdownNaN)
}

func TestBreakdownSingularOperator(t *testing.T) {
	const n = 16
	prm := Params{RTol: 1e-12, ATol: 1e-300, MaxIt: 50, Restart: 10}
	a := zeroOp{n: n}

	// A singular operator yields a zero pivot (CG/GCR/GMRES) — the methods
	// must detect it instead of dividing by zero.
	checkBreakdown(t, "cg", CG(a, Identity{}, onesVec(n), la.NewVec(n), prm), 2, BreakdownZeroPivot, BreakdownNaN)
	checkBreakdown(t, "gmres", GMRES(a, Identity{}, onesVec(n), la.NewVec(n), prm), 2, BreakdownZeroPivot, BreakdownNaN)
	checkBreakdown(t, "fgmres", FGMRES(a, Identity{}, onesVec(n), la.NewVec(n), prm), 2, BreakdownZeroPivot, BreakdownNaN)
	checkBreakdown(t, "gcr", GCR(a, Identity{}, onesVec(n), la.NewVec(n), prm, nil), 2, BreakdownZeroPivot, BreakdownNaN)
}

func TestBreakdownNaNRHS(t *testing.T) {
	const n = 8
	prm := Params{RTol: 1e-10, ATol: 1e-300, MaxIt: 20, Restart: 5}
	b := onesVec(n)
	b[3] = math.NaN()
	a := &nanOp{n: n, after: 1 << 30} // never poisons on its own
	checkBreakdown(t, "cg", CG(a, Identity{}, b, la.NewVec(n), prm), 1, BreakdownNaN)
	checkBreakdown(t, "fgmres", FGMRES(&nanOp{n: n, after: 1 << 30}, Identity{}, b, la.NewVec(n), prm), 1, BreakdownNaN)
	checkBreakdown(t, "gcr", GCR(&nanOp{n: n, after: 1 << 30}, Identity{}, b, la.NewVec(n), prm, nil), 1, BreakdownNaN)
}

// rotOp rotates in a 2D subspace: Krylov methods make no progress on the
// orthogonal complement, so the residual plateaus — a stagnation case.
type stallPC struct{ n int }

func (p stallPC) Apply(r, z la.Vec) {
	// Project out everything but the first coordinate: the solver can only
	// ever correct e_0, so with a multi-component residual it stalls.
	z.Zero()
	z[0] = r[0]
}

func TestBreakdownStagnationWindow(t *testing.T) {
	const n = 12
	reg := telemetry.New()
	prm := Params{RTol: 1e-12, ATol: 1e-300, MaxIt: 200, Restart: 8,
		StagnationWindow: 5, Telemetry: reg.Root()}
	a := OpFunc{Dim: n, F: func(x, y la.Vec) { y.Copy(x) }} // identity
	res := GCR(a, stallPC{n: n}, onesVec(n), la.NewVec(n), prm, nil)
	checkBreakdown(t, "gcr", res, 40, BreakdownStagnation, BreakdownZeroPivot)
	if res.Err != nil {
		if be, _ := AsBreakdown(res.Err); be.Kind == BreakdownStagnation && !res.Stagnated {
			t.Error("Stagnated flag not set on stagnation breakdown")
		}
	}
	if reg.Root().Counter("breakdowns").Value() != 1 {
		t.Errorf("breakdowns counter = %d, want 1", reg.Root().Counter("breakdowns").Value())
	}

	// Window disabled: same solve must run to MaxIt without a breakdown.
	prm2 := prm
	prm2.StagnationWindow = 0
	prm2.Telemetry = nil
	res2 := GCR(a, stallPC{n: n}, onesVec(n), la.NewVec(n), prm2, nil)
	if be, ok := AsBreakdown(res2.Err); ok && be.Kind == BreakdownStagnation {
		t.Error("stagnation breakdown fired with the window disabled")
	}
}

func TestBreakdownErrorText(t *testing.T) {
	be := &BreakdownError{Method: "gcr", Kind: BreakdownNaN, Iteration: 7, Value: math.NaN()}
	if be.Error() == "" || BreakdownStagnation.String() == "" {
		t.Fatal("empty diagnostics")
	}
	var err error = be
	if !errors.Is(errors.Join(err), err) {
		t.Fatal("errors plumbing broken")
	}
	if _, ok := AsBreakdown(errors.New("plain")); ok {
		t.Fatal("AsBreakdown matched a non-breakdown error")
	}
}

// TestHealthySolveHasNilErr pins the no-fault path: a well-conditioned SPD
// solve must converge with Err == nil and Breakdown false.
func TestHealthySolveHasNilErr(t *testing.T) {
	const n = 30
	a := OpFunc{Dim: n, F: func(x, y la.Vec) {
		for i := range y {
			y[i] = 4 * x[i]
			if i > 0 {
				y[i] -= x[i-1]
			}
			if i < n-1 {
				y[i] -= x[i+1]
			}
		}
	}}
	prm := Params{RTol: 1e-10, ATol: 1e-300, MaxIt: 200, Restart: 30, StagnationWindow: 10}
	for name, res := range map[string]Result{
		"cg":     CG(a, Identity{}, onesVec(n), la.NewVec(n), prm),
		"fgmres": FGMRES(a, Identity{}, onesVec(n), la.NewVec(n), prm),
		"gcr":    GCR(a, Identity{}, onesVec(n), la.NewVec(n), prm, nil),
	} {
		if !res.Converged || res.Err != nil || res.Breakdown {
			t.Errorf("%s: converged=%v err=%v breakdown=%v", name, res.Converged, res.Err, res.Breakdown)
		}
	}
}
