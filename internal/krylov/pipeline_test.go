package krylov

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/la"
)

// stripeReducer is a deterministic Reducer/BatchReducer that models the
// raw-block-forwarding tree allreduce of internal/comm: indices are
// partitioned into 64 fixed stripes, each stripe's partial is computed
// locally, and the global value is the left-associated sum of the
// stripe partials in stripe order. Grouping stripes into 1, 8 or 64
// simulated ranks does not change the arithmetic — exactly the property
// comm.AllReduceSumVec provides by forwarding raw per-rank blocks — so
// a pipelined solve driven by this reducer is bit-identical across rank
// counts by construction. Ranks is recorded only to document which
// grouping a test instance stands for.
type stripeReducer struct{ Ranks int }

const stripeCount = 64

func (sr *stripeReducer) stripes(n int) [][2]int {
	s := make([][2]int, 0, stripeCount)
	for i := 0; i < stripeCount; i++ {
		lo, hi := i*n/stripeCount, (i+1)*n/stripeCount
		if lo < hi {
			s = append(s, [2]int{lo, hi})
		}
	}
	return s
}

func (sr *stripeReducer) Dot(x, y la.Vec) float64 {
	var sum float64
	for _, st := range sr.stripes(len(x)) {
		var p float64
		for i := st[0]; i < st[1]; i++ {
			p += x[i] * y[i]
		}
		sum += p
	}
	return sum
}

func (sr *stripeReducer) DotBatch(xs, ys []la.Vec) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = sr.Dot(xs[i], ys[i])
	}
	return out
}

// pipeRun solves a·x = b with the given method, pipelined or classical.
func pipeRun(a *la.CSR, b la.Vec, method string, prm Params) (la.Vec, Result) {
	x := la.NewVec(a.NRows)
	d := la.NewVec(a.NRows)
	a.Diag(d)
	m := NewJacobi(d)
	var res Result
	switch method {
	case "cg":
		res = CG(CSROp{a}, m, b, x, prm)
	case "gcr":
		res = GCR(CSROp{a}, m, b, x, prm, nil)
	case "fgmres":
		res = FGMRES(CSROp{a}, m, b, x, prm)
	default:
		res = GMRES(CSROp{a}, m, b, x, prm)
	}
	return x, res
}

// TestPipelinedMatchesClassical is the property test of the single-reduce
// variants: on randomized SPD (CG) and nonsymmetric (GCR/FGMRES) systems
// the pipelined solve must reach the same solution to ≤1e-10 and within
// ±2 outer iterations of the classical variant.
func TestPipelinedMatchesClassical(t *testing.T) {
	type tc struct {
		name   string
		method string
		spd    bool
	}
	cases := []tc{
		{"cg-lap3d", "cg", true},
		{"gcr-nonsym", "gcr", false},
		{"fgmres-nonsym", "fgmres", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				var a *la.CSR
				if c.spd {
					a = lap3d(6)
				} else {
					a = nonsym(400)
				}
				b := randVec(rng, a.NRows)

				prm := DefaultParams()
				prm.RTol = 1e-10
				prm.MaxIt = 500
				xc, rc := pipeRun(a, b, c.method, prm)
				if !rc.Converged {
					t.Fatalf("seed %d: classical %s did not converge: %+v", seed, c.method, rc)
				}

				prm.Pipelined = true
				prm.Reducer = &stripeReducer{Ranks: 1}
				xp, rp := pipeRun(a, b, c.method, prm)
				if !rp.Converged {
					t.Fatalf("seed %d: pipelined %s did not converge: %+v", seed, c.method, rp)
				}

				if d := rp.Iterations - rc.Iterations; d < -2 || d > 2 {
					t.Fatalf("seed %d: iteration drift %d vs %d", seed, rp.Iterations, rc.Iterations)
				}
				diff := xp.Clone()
				diff.AXPY(-1, xc)
				if rel := diff.Norm2() / math.Max(xc.Norm2(), 1e-300); rel > 1e-10 {
					t.Fatalf("seed %d: solutions deviate: rel %.3e", seed, rel)
				}
			}
		})
	}
}

// TestPipelinedBitIdenticalAcrossRankCounts: the pipelined trajectory
// depends on the system, the RHS and the reducer's outputs — nothing
// else. With a reducer whose values are independent of how indices are
// grouped into ranks (the raw-block-forwarding scheme of
// comm.AllReduceSumVec, modeled here by fixed stripes), solves standing
// for 1, 8 and 64 ranks must produce bit-identical iterates.
func TestPipelinedBitIdenticalAcrossRankCounts(t *testing.T) {
	for _, method := range []string{"cg", "gcr", "fgmres"} {
		t.Run(method, func(t *testing.T) {
			var a *la.CSR
			if method == "cg" {
				a = lap3d(6)
			} else {
				a = nonsym(400)
			}
			rng := rand.New(rand.NewSource(7))
			b := randVec(rng, a.NRows)

			var ref la.Vec
			var refRes Result
			for _, ranks := range []int{1, 8, 64} {
				prm := DefaultParams()
				prm.RTol = 1e-10
				prm.MaxIt = 500
				prm.Pipelined = true
				prm.Reducer = &stripeReducer{Ranks: ranks}
				x, res := pipeRun(a, b, method, prm)
				if !res.Converged {
					t.Fatalf("ranks=%d: did not converge: %+v", ranks, res)
				}
				if ref == nil {
					ref, refRes = x, res
					continue
				}
				if res.Iterations != refRes.Iterations {
					t.Fatalf("ranks=%d: %d iterations vs %d at ranks=1", ranks, res.Iterations, refRes.Iterations)
				}
				if math.Float64bits(res.Residual) != math.Float64bits(refRes.Residual) {
					t.Fatalf("ranks=%d: final residual %x differs from %x", ranks,
						math.Float64bits(res.Residual), math.Float64bits(refRes.Residual))
				}
				for i := range x {
					if math.Float64bits(x[i]) != math.Float64bits(ref[i]) {
						t.Fatalf("ranks=%d: x[%d] = %x differs from %x", ranks, i,
							math.Float64bits(x[i]), math.Float64bits(ref[i]))
					}
				}
			}
		})
	}
}

// TestPipelinedFlagIgnoredWithoutReducer: with Reducer == nil the
// Pipelined flag must be inert — the serial classical path runs
// bit-for-bit, so existing single-process callers cannot be perturbed
// by the flag.
func TestPipelinedFlagIgnoredWithoutReducer(t *testing.T) {
	a := lap3d(5)
	rng := rand.New(rand.NewSource(3))
	b := randVec(rng, a.NRows)
	for _, method := range []string{"cg", "gcr", "fgmres"} {
		prm := DefaultParams()
		prm.RTol = 1e-10
		x1, r1 := pipeRun(a, b, method, prm)
		prm.Pipelined = true
		x2, r2 := pipeRun(a, b, method, prm)
		if r1.Iterations != r2.Iterations {
			t.Fatalf("%s: Pipelined without Reducer changed iterations: %d vs %d", method, r1.Iterations, r2.Iterations)
		}
		for i := range x1 {
			if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
				t.Fatalf("%s: Pipelined without Reducer changed x[%d]", method, i)
			}
		}
	}
}
