package krylov

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/la"
)

// lap3d builds the 7-point 3-D Laplacian on an n×n×n grid — an SPD model
// problem with known spectrum.
func lap3d(n int) *la.CSR {
	idx := func(i, j, k int) int { return (k*n+j)*n + i }
	b := la.NewBuilder(n*n*n, n*n*n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				r := idx(i, j, k)
				b.Add(r, r, 6)
				for _, d := range [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
					ii, jj, kk := i+d[0], j+d[1], k+d[2]
					if ii >= 0 && ii < n && jj >= 0 && jj < n && kk >= 0 && kk < n {
						b.Add(r, idx(ii, jj, kk), -1)
					}
				}
			}
		}
	}
	return b.ToCSR()
}

// nonsym builds a convection–diffusion-like nonsymmetric matrix.
func nonsym(n int) *la.CSR {
	b := la.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4)
		if i > 0 {
			b.Add(i, i-1, -1.5)
		}
		if i < n-1 {
			b.Add(i, i+1, -0.5)
		}
	}
	return b.ToCSR()
}

func randVec(rng *rand.Rand, n int) la.Vec {
	v := la.NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func residualNorm(a *la.CSR, b, x la.Vec) float64 {
	r := la.NewVec(len(b))
	a.MulVec(x, r)
	r.AXPY(-1, b)
	return r.Norm2()
}

func TestCGSolvesLaplacian(t *testing.T) {
	a := lap3d(6)
	rng := rand.New(rand.NewSource(1))
	b := randVec(rng, a.NRows)
	x := la.NewVec(a.NRows)
	d := la.NewVec(a.NRows)
	a.Diag(d)
	prm := DefaultParams()
	prm.RTol = 1e-10
	res := CG(CSROp{a}, NewJacobi(d), b, x, prm)
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	if rn := residualNorm(a, b, x); rn > 1e-9*b.Norm2() {
		t.Fatalf("CG true residual %v", rn)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := lap3d(3)
	b := la.NewVec(a.NRows)
	x := la.NewVec(a.NRows)
	res := CG(CSROp{a}, Identity{}, b, x, DefaultParams())
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero RHS should converge immediately: %+v", res)
	}
}

func TestGMRESNonsymmetric(t *testing.T) {
	a := nonsym(200)
	rng := rand.New(rand.NewSource(2))
	b := randVec(rng, a.NRows)
	for _, name := range []string{"gmres", "fgmres"} {
		x := la.NewVec(a.NRows)
		prm := DefaultParams()
		prm.RTol = 1e-10
		prm.Restart = 20
		var res Result
		if name == "gmres" {
			res = GMRES(CSROp{a}, Identity{}, b, x, prm)
		} else {
			res = FGMRES(CSROp{a}, Identity{}, b, x, prm)
		}
		if !res.Converged {
			t.Fatalf("%s did not converge: %+v", name, res)
		}
		if rn := residualNorm(a, b, x); rn > 1e-8*b.Norm2() {
			t.Fatalf("%s true residual %v", name, rn)
		}
	}
}

func TestGMRESRecurrenceMatchesTrueResidual(t *testing.T) {
	a := lap3d(4)
	rng := rand.New(rand.NewSource(3))
	b := randVec(rng, a.NRows)
	x := la.NewVec(a.NRows)
	prm := DefaultParams()
	prm.RTol = 1e-8
	prm.Restart = 50
	res := GMRES(CSROp{a}, Identity{}, b, x, prm)
	if !res.Converged {
		t.Fatal("no convergence")
	}
	rn := residualNorm(a, b, x)
	if math.Abs(rn-res.Residual) > 1e-6*(1+rn) {
		t.Fatalf("recurrence residual %v vs true %v", res.Residual, rn)
	}
}

func TestGCRMonotoneResidual(t *testing.T) {
	a := nonsym(150)
	rng := rand.New(rand.NewSource(4))
	b := randVec(rng, a.NRows)
	x := la.NewVec(a.NRows)
	prm := DefaultParams()
	prm.RTol = 1e-10
	prm.History = true
	res := GCR(CSROp{a}, Identity{}, b, x, prm, nil)
	if !res.Converged {
		t.Fatalf("GCR did not converge: %+v", res)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*(1+1e-12) {
			t.Fatalf("GCR residual not monotone at %d: %v > %v", i, res.History[i], res.History[i-1])
		}
	}
	if rn := residualNorm(a, b, x); rn > 1e-8*b.Norm2() {
		t.Fatalf("GCR true residual %v", rn)
	}
}

func TestGCRCallbackSeesTrueResidual(t *testing.T) {
	a := lap3d(4)
	rng := rand.New(rand.NewSource(5))
	b := randVec(rng, a.NRows)
	x := la.NewVec(a.NRows)
	prm := DefaultParams()
	var lastCB float64
	res := GCR(CSROp{a}, Identity{}, b, x, prm, func(it int, r la.Vec) {
		lastCB = r.Norm2()
	})
	if math.Abs(lastCB-res.Residual) > 1e-12*(1+res.Residual) {
		t.Fatalf("callback residual %v vs result %v", lastCB, res.Residual)
	}
}

// TestFlexibleToleratesVariablePC: FGMRES and GCR must converge with a
// preconditioner that changes every application (here: randomized damping),
// while this would break plain GMRES's reconstruction.
func TestFlexibleToleratesVariablePC(t *testing.T) {
	a := lap3d(5)
	rng := rand.New(rand.NewSource(6))
	b := randVec(rng, a.NRows)
	vpc := PCFunc(func(r, z la.Vec) {
		s := 0.5 + rng.Float64()
		for i := range z {
			z[i] = s * r[i] / 6
		}
	})
	for _, name := range []string{"fgmres", "gcr"} {
		x := la.NewVec(a.NRows)
		prm := DefaultParams()
		prm.RTol = 1e-8
		var res Result
		if name == "fgmres" {
			res = FGMRES(CSROp{a}, vpc, b, x, prm)
		} else {
			res = GCR(CSROp{a}, vpc, b, x, prm, nil)
		}
		if !res.Converged {
			t.Fatalf("%s with variable PC: %+v", name, res)
		}
		if rn := residualNorm(a, b, x); rn > 1e-6*b.Norm2() {
			t.Fatalf("%s true residual %v", name, rn)
		}
	}
}

func TestRichardson(t *testing.T) {
	a := lap3d(4)
	rng := rand.New(rand.NewSource(7))
	b := randVec(rng, a.NRows)
	x := la.NewVec(a.NRows)
	d := la.NewVec(a.NRows)
	a.Diag(d)
	prm := DefaultParams()
	prm.MaxIt = 2000
	prm.RTol = 1e-6
	res := Richardson(CSROp{a}, NewJacobi(d), b, x, 1.0, prm)
	if !res.Converged {
		t.Fatalf("Richardson did not converge: %+v", res)
	}
}

func TestChebyshevSmootherReducesError(t *testing.T) {
	a := lap3d(8)
	d := la.NewVec(a.NRows)
	a.Diag(d)
	jac := NewJacobi(d)
	lmax := EstimateLambdaMax(CSROp{a}, jac, 15)
	if lmax < 1 || lmax > 2.5 {
		// Jacobi-preconditioned Laplacian has λmax < 2.
		t.Fatalf("λmax estimate %v out of range", lmax)
	}
	ch := NewChebyshev(CSROp{a}, jac, lmax, 2)
	rng := rand.New(rand.NewSource(8))
	b := randVec(rng, a.NRows)
	x := la.NewVec(a.NRows)
	r0 := residualNorm(a, b, x)
	// Two V(2,2)-style sweeps of 2 Chebyshev steps each.
	ch.Smooth(b, x, true)
	r1 := residualNorm(a, b, x)
	ch.Smooth(b, x, false)
	r2 := residualNorm(a, b, x)
	if r1 >= r0 || r2 >= r1 {
		t.Fatalf("Chebyshev not contracting: %v -> %v -> %v", r0, r1, r2)
	}
	// High-frequency error must be strongly damped: the vector with
	// alternating signs is near the top of the spectrum.
	e := la.NewVec(a.NRows)
	for i := range e {
		if i%2 == 0 {
			e[i] = 1
		} else {
			e[i] = -1
		}
	}
	zero := la.NewVec(a.NRows)
	ae := la.NewVec(a.NRows)
	a.MulVec(e, ae) // rhs for exact solution e
	xs := la.NewVec(a.NRows)
	ch.Smooth(ae, xs, true)
	// Error after smoothing.
	xs.AXPY(-1, e)
	if ratio := xs.Norm2() / e.Norm2(); ratio > 0.5 {
		t.Fatalf("high-frequency damping ratio %v", ratio)
	}
	_ = zero
}

func TestBlockJacobiExactWhenSingleBlock(t *testing.T) {
	a := lap3d(3)
	bj, err := NewBlockJacobi(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b := randVec(rng, a.NRows)
	z := la.NewVec(a.NRows)
	bj.Apply(b, z)
	if rn := residualNorm(a, b, z); rn > 1e-9*b.Norm2() {
		t.Fatalf("single-block BJ not exact: %v", rn)
	}
}

func TestBlockJacobiAcceleratesCG(t *testing.T) {
	a := lap3d(6)
	rng := rand.New(rand.NewSource(10))
	b := randVec(rng, a.NRows)
	prm := DefaultParams()
	prm.RTol = 1e-8
	x1 := la.NewVec(a.NRows)
	plain := CG(CSROp{a}, Identity{}, b, x1, prm)
	bj, err := NewBlockJacobi(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	x2 := la.NewVec(a.NRows)
	pc := CG(CSROp{a}, bj, b, x2, prm)
	if !pc.Converged || pc.Iterations >= plain.Iterations {
		t.Fatalf("BJ-CG %d its vs plain %d", pc.Iterations, plain.Iterations)
	}
}

func TestASMPreconditioner(t *testing.T) {
	a := lap3d(8)
	rng := rand.New(rand.NewSource(11))
	b := randVec(rng, a.NRows)
	for _, exact := range []bool{false, true} {
		asm, err := NewASM(a, ASMOptions{Subdomains: 8, Overlap: 2, Exact: exact})
		if err != nil {
			t.Fatal(err)
		}
		if asm.NumSubdomains() != 8 {
			t.Fatalf("subdomains = %d", asm.NumSubdomains())
		}
		x := la.NewVec(a.NRows)
		prm := DefaultParams()
		prm.RTol = 1e-8
		res := CG(CSROp{a}, asm, b, x, prm)
		// RAS is nonsymmetric; CG may still work well for this SPD problem,
		// but validate via the true residual.
		if rn := residualNorm(a, b, x); !res.Converged || rn > 1e-6*b.Norm2() {
			t.Fatalf("exact=%v: ASM-CG residual %v (converged=%v)", exact, rn, res.Converged)
		}
	}
}

func TestASMOverlapImprovesConvergence(t *testing.T) {
	a := lap3d(8)
	rng := rand.New(rand.NewSource(12))
	b := randVec(rng, a.NRows)
	its := make(map[int]int)
	for _, ov := range []int{0, 3} {
		asm, err := NewASM(a, ASMOptions{Subdomains: 16, Overlap: ov})
		if err != nil {
			t.Fatal(err)
		}
		x := la.NewVec(a.NRows)
		prm := DefaultParams()
		prm.RTol = 1e-8
		res := FGMRES(CSROp{a}, asm, b, x, prm)
		if !res.Converged {
			t.Fatalf("overlap %d: no convergence", ov)
		}
		its[ov] = res.Iterations
	}
	if its[3] > its[0] {
		t.Fatalf("overlap did not help: %v", its)
	}
}

func TestInnerKrylovAsPC(t *testing.T) {
	a := lap3d(6)
	rng := rand.New(rand.NewSource(13))
	b := randVec(rng, a.NRows)
	d := la.NewVec(a.NRows)
	a.Diag(d)
	inner := &InnerKrylov{A: CSROp{a}, M: NewJacobi(d), Method: "cg",
		Prm: Params{RTol: 1e-2, ATol: 1e-50, MaxIt: 25}}
	x := la.NewVec(a.NRows)
	prm := DefaultParams()
	prm.RTol = 1e-9
	res := FGMRES(CSROp{a}, inner, b, x, prm)
	if !res.Converged || res.Iterations > 10 {
		t.Fatalf("inner-Krylov PC: %+v", res)
	}
}

func TestCompositePC(t *testing.T) {
	a := lap3d(5)
	rng := rand.New(rand.NewSource(14))
	b := randVec(rng, a.NRows)
	d := la.NewVec(a.NRows)
	a.Diag(d)
	jac := NewJacobi(d)
	comp := &Composite{A: CSROp{a}, M1: jac, M2: jac}
	x := la.NewVec(a.NRows)
	prm := DefaultParams()
	prm.RTol = 1e-8
	res2 := FGMRES(CSROp{a}, comp, b, x, prm)
	x1 := la.NewVec(a.NRows)
	res1 := FGMRES(CSROp{a}, jac, b, x1, prm)
	if !res2.Converged || res2.Iterations > res1.Iterations {
		t.Fatalf("composite (%d its) no better than single (%d its)", res2.Iterations, res1.Iterations)
	}
}

func TestEstimateLambdaMaxDeterministic(t *testing.T) {
	a := lap3d(5)
	l1 := EstimateLambdaMax(CSROp{a}, Identity{}, 12)
	l2 := EstimateLambdaMax(CSROp{a}, Identity{}, 12)
	if l1 != l2 {
		t.Fatalf("λmax estimate not deterministic: %v vs %v", l1, l2)
	}
	// For the unpreconditioned 7-pt Laplacian λmax < 12 and > 6.
	if l1 < 6 || l1 > 12 {
		t.Fatalf("λmax = %v out of [6,12]", l1)
	}
}
