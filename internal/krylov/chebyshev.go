package krylov

import "ptatin3d/internal/la"

// Chebyshev is the multigrid smoother of paper §III-C: a fixed number of
// Chebyshev iterations preconditioned by M (Jacobi in the paper),
// targeting the eigenvalue interval [Lo, Hi] of M⁻¹·A. Unlike
// multiplicative smoothers it needs only operator applications, so it
// composes with matrix-free operators, parallelizes trivially, and visits
// each quadrature point once per application.
type Chebyshev struct {
	A      Op
	M      Preconditioner
	Lo, Hi float64 // target interval; the paper uses [0.2λmax, 1.1λmax]
	Steps  int     // iterations per Smooth call
}

// NewChebyshev builds a smoother targeting [0.2λ, 1.1λ] as in the paper,
// where lambdaMax is an estimate of the largest eigenvalue of M⁻¹·A.
func NewChebyshev(a Op, m Preconditioner, lambdaMax float64, steps int) *Chebyshev {
	return &Chebyshev{A: a, M: m, Lo: 0.2 * lambdaMax, Hi: 1.1 * lambdaMax, Steps: steps}
}

// Smooth performs Steps Chebyshev iterations on A·x = b, updating x in
// place. zeroGuess skips the initial operator application when x = 0.
func (c *Chebyshev) Smooth(b, x la.Vec, zeroGuess bool) {
	n := c.A.N()
	r := la.NewVec(n)
	z := la.NewVec(n)
	p := la.NewVec(n)
	ap := la.NewVec(n)

	d := (c.Hi + c.Lo) / 2
	half := (c.Hi - c.Lo) / 2

	if zeroGuess {
		r.Copy(b)
		x.Zero()
	} else {
		c.A.Apply(x, r)
		r.AYPX(-1, b)
	}
	var alpha, beta float64
	for i := 0; i < c.Steps; i++ {
		c.M.Apply(r, z)
		switch i {
		case 0:
			p.Copy(z)
			alpha = 1 / d
		default:
			if i == 1 {
				beta = 0.5 * (half * alpha) * (half * alpha)
			} else {
				beta = (half * alpha / 2) * (half * alpha / 2)
			}
			alpha = 1 / (d - beta/alpha)
			p.AYPX(beta, z)
		}
		x.AXPY(alpha, p)
		c.A.Apply(p, ap)
		r.AXPY(-alpha, ap)
	}
}

// Apply lets a Chebyshev smoother act as a Preconditioner (z = smooth(r)
// from a zero initial guess).
func (c *Chebyshev) Apply(r, z la.Vec) { c.Smooth(r, z, true) }

// EstimateLambdaMax estimates the largest eigenvalue of M⁻¹·A by power
// iteration with the M-weighted Rayleigh quotient. A dozen iterations give
// the ~10% accuracy the smoother interval needs (the 1.1 safety factor in
// the target interval absorbs the remaining error). The estimate is
// deterministic: the start vector is a fixed quasi-random sequence, so
// solver behaviour is reproducible run to run.
func EstimateLambdaMax(a Op, m Preconditioner, iters int) float64 {
	n := a.N()
	v := la.NewVec(n)
	// Deterministic pseudo-random start touching all components.
	s := uint64(88172645463325252)
	for i := range v {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v[i] = float64(int64(s%2000)-1000) / 1000.0
	}
	av := la.NewVec(n)
	z := la.NewVec(n)
	lambda := 1.0
	for it := 0; it < iters; it++ {
		nv := v.Norm2()
		if nv == 0 {
			break
		}
		v.Scale(1 / nv)
		a.Apply(v, av)
		m.Apply(av, z) // z = M⁻¹A v
		lambda = v.Dot(z) / v.Dot(v)
		v.Copy(z)
	}
	if lambda <= 0 {
		lambda = 1
	}
	return lambda
}
