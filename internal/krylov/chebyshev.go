package krylov

import "ptatin3d/internal/la"

// Chebyshev is the multigrid smoother of paper §III-C: a fixed number of
// Chebyshev iterations preconditioned by M (Jacobi in the paper),
// targeting the eigenvalue interval [Lo, Hi] of M⁻¹·A. Unlike
// multiplicative smoothers it needs only operator applications, so it
// composes with matrix-free operators, parallelizes trivially, and visits
// each quadrature point once per application.
type Chebyshev struct {
	A      Op
	M      Preconditioner
	Lo, Hi float64 // target interval; the paper uses [0.2λmax, 1.1λmax]
	Steps  int     // iterations per Smooth call

	// Spans, when non-empty, windows the smoother's BLAS-1 updates to
	// the listed index ranges (a rank's owned+ghost rows) and reuses
	// per-instance work vectors across Smooth calls, keeping per-rank
	// work and touched memory O(n/P) on the distributed path. A spanned
	// Chebyshev is NOT safe for concurrent Smooth calls — distributed
	// solves give each rank its own instance.
	Spans []la.Span
	work  [4]la.Vec

	// NoFinalResidual elides the last step's operator application and
	// residual update: they feed only the residual of a step that never
	// runs, so x is unchanged while the smoother saves one apply per
	// Smooth call (two per V-cycle level). The blocked smoother
	// (fem.BlockedChebyshev) always elides; setting this makes the
	// unblocked recurrence do the same apply count, which the blocked≡
	// unblocked equivalence tests rely on.
	NoFinalResidual bool
}

// NewChebyshev builds a smoother targeting [0.2λ, 1.1λ] as in the paper,
// where lambdaMax is an estimate of the largest eigenvalue of M⁻¹·A.
func NewChebyshev(a Op, m Preconditioner, lambdaMax float64, steps int) *Chebyshev {
	return &Chebyshev{A: a, M: m, Lo: 0.2 * lambdaMax, Hi: 1.1 * lambdaMax, Steps: steps}
}

// Smooth performs Steps Chebyshev iterations on A·x = b, updating x in
// place. zeroGuess skips the initial operator application when x = 0.
func (c *Chebyshev) Smooth(b, x la.Vec, zeroGuess bool) {
	n := c.A.N()
	var r, z, p, ap la.Vec
	if len(c.Spans) > 0 {
		// Windowed path: cached work vectors (see Spans doc).
		if c.work[0] == nil || len(c.work[0]) != n {
			for i := range c.work {
				c.work[i] = la.NewVec(n)
			}
		}
		r, z, p, ap = c.work[0], c.work[1], c.work[2], c.work[3]
	} else {
		r, z, p, ap = la.NewVec(n), la.NewVec(n), la.NewVec(n), la.NewVec(n)
	}
	sp := c.Spans
	vcopy := func(dst, src la.Vec) {
		if sp != nil {
			dst.CopySpans(src, sp)
		} else {
			dst.Copy(src)
		}
	}
	vzero := func(v la.Vec) {
		if sp != nil {
			v.ZeroSpans(sp)
		} else {
			v.Zero()
		}
	}
	vaxpy := func(v la.Vec, a float64, x la.Vec) {
		if sp != nil {
			v.AXPYSpans(a, x, sp)
		} else {
			v.AXPY(a, x)
		}
	}
	vaypx := func(v la.Vec, a float64, x la.Vec) {
		if sp != nil {
			v.AYPXSpans(a, x, sp)
		} else {
			v.AYPX(a, x)
		}
	}

	d := (c.Hi + c.Lo) / 2
	half := (c.Hi - c.Lo) / 2

	if zeroGuess {
		vcopy(r, b)
		vzero(x)
	} else {
		c.A.Apply(x, r)
		vaypx(r, -1, b)
	}
	var alpha, beta float64
	for i := 0; i < c.Steps; i++ {
		c.M.Apply(r, z)
		switch i {
		case 0:
			vcopy(p, z)
			alpha = 1 / d
		default:
			if i == 1 {
				beta = 0.5 * (half * alpha) * (half * alpha)
			} else {
				beta = (half * alpha / 2) * (half * alpha / 2)
			}
			alpha = 1 / (d - beta/alpha)
			vaypx(p, beta, z)
		}
		vaxpy(x, alpha, p)
		if c.NoFinalResidual && i == c.Steps-1 {
			break
		}
		c.A.Apply(p, ap)
		vaxpy(r, -alpha, ap)
	}
}

// Apply lets a Chebyshev smoother act as a Preconditioner (z = smooth(r)
// from a zero initial guess).
func (c *Chebyshev) Apply(r, z la.Vec) { c.Smooth(r, z, true) }

// EstimateLambdaMax estimates the largest eigenvalue of M⁻¹·A by power
// iteration with the M-weighted Rayleigh quotient. A dozen iterations give
// the ~10% accuracy the smoother interval needs (the 1.1 safety factor in
// the target interval absorbs the remaining error). The estimate is
// deterministic: the start vector is a fixed quasi-random sequence, so
// solver behaviour is reproducible run to run.
func EstimateLambdaMax(a Op, m Preconditioner, iters int) float64 {
	n := a.N()
	v := la.NewVec(n)
	// Deterministic pseudo-random start touching all components.
	s := uint64(88172645463325252)
	for i := range v {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v[i] = float64(int64(s%2000)-1000) / 1000.0
	}
	av := la.NewVec(n)
	z := la.NewVec(n)
	lambda := 1.0
	for it := 0; it < iters; it++ {
		nv := v.Norm2()
		if nv == 0 {
			break
		}
		v.Scale(1 / nv)
		a.Apply(v, av)
		m.Apply(av, z) // z = M⁻¹A v
		lambda = v.Dot(z) / v.Dot(v)
		v.Copy(z)
	}
	if lambda <= 0 {
		lambda = 1
	}
	return lambda
}
