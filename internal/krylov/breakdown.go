package krylov

import (
	"errors"
	"fmt"
	"math"
)

// Breakdown detection (defensive solver plumbing): variable-viscosity
// Stokes operators with extreme coefficient contrast can hand a Krylov
// method a NaN/Inf matvec (overflowed rheology), an exactly singular
// pivot (perfect plasticity), or a stagnating residual. Every method in
// this package detects those states within one iteration, stops with a
// bounded iteration count, and reports a typed *BreakdownError through
// Result.Err so callers can restart, fall back to another method, or
// abort the time step — instead of looping or returning garbage.

// BreakdownKind classifies a Krylov breakdown.
type BreakdownKind int

const (
	// BreakdownNaN: a NaN appeared in the residual or iterate.
	BreakdownNaN BreakdownKind = iota + 1
	// BreakdownInf: the residual norm overflowed to ±Inf.
	BreakdownInf
	// BreakdownZeroPivot: an exactly zero denominator (Arnoldi/Givens/CG
	// pivot or direction norm) made the recurrence undefined.
	BreakdownZeroPivot
	// BreakdownStagnation: the residual made no progress over the
	// configured stagnation window (see Params.StagnationWindow).
	BreakdownStagnation
)

// String names the kind.
func (k BreakdownKind) String() string {
	switch k {
	case BreakdownNaN:
		return "nan"
	case BreakdownInf:
		return "inf"
	case BreakdownZeroPivot:
		return "zero-pivot"
	case BreakdownStagnation:
		return "stagnation"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// BreakdownError is the typed error reported through Result.Err when an
// iterative method breaks down.
type BreakdownError struct {
	Method    string        // "cg", "gmres", "fgmres", "gcr", "richardson"
	Kind      BreakdownKind // what broke
	Iteration int           // iteration at which it was detected
	Value     float64       // offending value (residual norm or pivot)
}

// Error implements the error interface.
func (e *BreakdownError) Error() string {
	return fmt.Sprintf("krylov: %s breakdown (%s) at iteration %d (value %g)",
		e.Method, e.Kind, e.Iteration, e.Value)
}

// AsBreakdown unwraps err to a *BreakdownError if one is in its chain.
func AsBreakdown(err error) (*BreakdownError, bool) {
	var be *BreakdownError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

// fail records a typed breakdown on the result: the legacy Breakdown
// flag, the typed error, and a telemetry counter.
func (r *Result) fail(p Params, method string, kind BreakdownKind, it int, val float64) {
	r.Breakdown = true
	if kind == BreakdownStagnation {
		r.Stagnated = true
	}
	r.Err = &BreakdownError{Method: method, Kind: kind, Iteration: it, Value: val}
	p.Telemetry.Counter("breakdowns").Inc()
}

// badNorm classifies a non-finite residual norm (0 if finite).
func badNorm(rn float64) BreakdownKind {
	switch {
	case math.IsNaN(rn):
		return BreakdownNaN
	case math.IsInf(rn, 0):
		return BreakdownInf
	}
	return 0
}

// stagGuard tracks residual progress over a sliding window. The zero
// value with window <= 0 is inert (stagnation detection disabled).
type stagGuard struct {
	window  int
	best    float64
	noGain  int
	started bool
}

func newStagGuard(p Params) stagGuard { return stagGuard{window: p.StagnationWindow} }

// stalled records rn and reports whether the method has gone window
// iterations without improving the best residual by at least a part in
// 1e9.
func (g *stagGuard) stalled(rn float64) bool {
	if g.window <= 0 {
		return false
	}
	if !g.started || rn < g.best*(1-1e-9) {
		g.best = rn
		g.started = true
		g.noGain = 0
		return false
	}
	g.noGain++
	return g.noGain >= g.window
}
