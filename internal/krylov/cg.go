package krylov

import "ptatin3d/internal/la"

// CG solves A·x = b by the preconditioned conjugate gradient method for
// SPD A and SPD M. x holds the initial guess on entry and the solution on
// exit. It is used for the viscous block inside Schur complement reduction
// and as the inexact coarse-grid solver of the rifting configuration
// (paper §V-A: CG preconditioned with ASM).
// With prm.Pipelined set on a rank-collective solve (Reducer != nil)
// the single-reduce Chronopoulos–Gear variant runs instead (see
// pipeline.go); without a Reducer the flag is ignored and the serial
// path below runs bit-for-bit.
func CG(a Op, m Preconditioner, b, x la.Vec, prm Params) Result {
	if prm.Pipelined && prm.Reducer != nil {
		return pipeCG(a, m, b, x, prm)
	}
	n := a.N()
	r := la.NewVec(n)
	z := la.NewVec(n)
	p := la.NewVec(n)
	ap := la.NewVec(n)

	telStart := prm.begin()
	if err := prm.consistent(x, b); err != nil {
		var res Result
		res.failEntry(prm, err)
		res.finish(prm, telStart)
		return res
	}
	a.Apply(x, r)
	prm.vaypx(r, -1, b) // r = b - A·x
	res := Result{Residual0: prm.norm2(r)}
	rn := res.Residual0
	res.record(prm, rn)
	if k := badNorm(rn); k != 0 {
		res.fail(prm, "cg", k, 0, rn)
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	if converged(prm, rn, res.Residual0) {
		res.Converged = true
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	stag := newStagGuard(prm)
	m.Apply(r, z)
	prm.vcopy(p, z)
	rz := prm.dot(r, z)
	for it := 1; it <= prm.MaxIt; it++ {
		a.Apply(p, ap)
		den := prm.dot(p, ap)
		if den == 0 || rz == 0 {
			res.fail(prm, "cg", BreakdownZeroPivot, it, den)
			break
		}
		if k := badNorm(den); k != 0 {
			res.fail(prm, "cg", k, it, den)
			break
		}
		alpha := rz / den
		prm.vaxpy(x, alpha, p)
		prm.vaxpy(r, -alpha, ap)
		rn = prm.norm2(r)
		res.Iterations = it
		res.record(prm, rn)
		if k := badNorm(rn); k != 0 {
			res.fail(prm, "cg", k, it, rn)
			break
		}
		if prm.hasNaN(r) {
			res.fail(prm, "cg", BreakdownNaN, it, rn)
			break
		}
		if converged(prm, rn, res.Residual0) {
			res.Converged = true
			break
		}
		if stag.stalled(rn) {
			res.fail(prm, "cg", BreakdownStagnation, it, rn)
			break
		}
		m.Apply(r, z)
		rzNew := prm.dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		prm.vaypx(p, beta, z)
	}
	res.Residual = rn
	res.finish(prm, telStart)
	return res
}

// Richardson performs prm.MaxIt damped Richardson iterations
// x ← x + ω·M⁻¹(b - A·x). With ω=1 and M a multigrid cycle this is the
// classical "apply n V-cycles" solver.
func Richardson(a Op, m Preconditioner, b, x la.Vec, omega float64, prm Params) Result {
	n := a.N()
	telStart := prm.begin()
	r := la.NewVec(n)
	z := la.NewVec(n)
	if err := prm.consistent(x, b); err != nil {
		var res Result
		res.failEntry(prm, err)
		res.finish(prm, telStart)
		return res
	}
	a.Apply(x, r)
	prm.vaypx(r, -1, b)
	res := Result{Residual0: prm.norm2(r)}
	rn := res.Residual0
	res.record(prm, rn)
	for it := 1; it <= prm.MaxIt; it++ {
		if converged(prm, rn, res.Residual0) {
			res.Converged = true
			break
		}
		m.Apply(r, z)
		prm.vaxpy(x, omega, z)
		a.Apply(x, r)
		prm.vaypx(r, -1, b)
		rn = prm.norm2(r)
		res.Iterations = it
		res.record(prm, rn)
		if k := badNorm(rn); k != 0 {
			res.fail(prm, "richardson", k, it, rn)
			break
		}
		if prm.hasNaN(r) {
			res.fail(prm, "richardson", BreakdownNaN, it, rn)
			break
		}
	}
	if converged(prm, rn, res.Residual0) {
		res.Converged = true
	}
	res.Residual = rn
	res.finish(prm, telStart)
	return res
}
