// Package krylov provides the iterative solvers and preconditioner
// building blocks of the ptatin3d solver stack (paper §III-A): CG, GMRES,
// flexible GMRES, GCR, Chebyshev iteration, Richardson, plus Jacobi,
// block-Jacobi(+LU), ILU(0) and overlapping additive Schwarz
// preconditioners, and nested (inner Krylov) preconditioning.
//
// Flexible methods (FGMRES, GCR) tolerate nonlinear preconditioners —
// required because several solver configurations in the paper use inner
// iterations (multigrid cycles with Krylov-based coarse solves) inside the
// outer preconditioner.
package krylov

import (
	"time"

	"ptatin3d/internal/la"
	"ptatin3d/internal/telemetry"
)

// Op is the abstract linear operator y = A·x. fem's operator variants and
// the coupled Stokes operator satisfy it.
type Op interface {
	N() int
	Apply(x, y la.Vec)
}

// CSROp adapts a CSR matrix to Op.
type CSROp struct{ A *la.CSR }

// N returns the row dimension.
func (o CSROp) N() int { return o.A.NRows }

// Apply computes y = A·x.
func (o CSROp) Apply(x, y la.Vec) { o.A.MulVec(x, y) }

// OpFunc adapts a function to Op.
type OpFunc struct {
	Dim int
	F   func(x, y la.Vec)
}

// N returns the dimension.
func (o OpFunc) N() int { return o.Dim }

// Apply invokes the wrapped function.
func (o OpFunc) Apply(x, y la.Vec) { o.F(x, y) }

// Preconditioner applies z = M⁻¹·r. Implementations may be nonlinear
// (inner iterations); pair those with flexible outer methods.
type Preconditioner interface {
	Apply(r, z la.Vec)
}

// PCFunc adapts a function to Preconditioner.
type PCFunc func(r, z la.Vec)

// Apply invokes the wrapped function.
func (f PCFunc) Apply(r, z la.Vec) { f(r, z) }

// Identity is the no-op preconditioner.
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(r, z la.Vec) { z.Copy(r) }

// Params controls an iterative solve.
type Params struct {
	RTol    float64 // relative residual tolerance (unpreconditioned)
	ATol    float64 // absolute residual tolerance
	MaxIt   int     // maximum iterations
	Restart int     // restart length for GMRES/FGMRES/GCR (0 = 30)
	History bool    // record per-iteration residual norms

	// StagnationWindow, when > 0, declares a stagnation breakdown after
	// that many consecutive iterations without any residual improvement
	// (typed BreakdownStagnation through Result.Err). 0 disables the
	// check, preserving the plain run-to-MaxIt behaviour.
	StagnationWindow int

	// Reducer, when non-nil, makes the solve rank-collective: every dot
	// product and norm goes through it instead of the serial BLAS-1
	// kernels, and per-vector NaN scans are skipped (ghost-free regions
	// of a rank's vector copy are undefined). Nil keeps the
	// shared-memory path bit-for-bit. See distributed.go.
	Reducer Reducer
	// Exchanger, when non-nil, refreshes the ghost entries of the
	// caller-supplied b and x at solve entry so the first operator
	// application reads consistent halos. Nil disables the exchange.
	Exchanger Exchanger

	// Pipelined selects the single-reduce variants of CG, FGMRES and GCR
	// (Chronopoulos–Gear recurrences / classical Gram–Schmidt with norm
	// recurrences; see pipeline.go): every iteration folds all of its
	// inner products into one batched reduction through the Reducer. It
	// only takes effect with a non-nil Reducer — with Reducer == nil the
	// flag is ignored and the solve runs the serial path bit-for-bit.
	Pipelined bool
	// Spans, when non-empty on a rank-collective solve (Reducer != nil),
	// windows every BLAS-1 update inside the solver to the listed index
	// ranges — a rank's owned+ghost rows — so per-rank vector work and
	// touched memory stay O(n/P) instead of O(n) at high rank counts.
	// Entries outside the spans are never read or written by the solver
	// itself (operators and preconditioners keep their own windows).
	// Ignored when Reducer == nil.
	Spans []la.Span

	// Telemetry, when non-nil, receives structured solve instrumentation:
	// a "residual" series with one sample per recorded residual norm, a
	// "solve" timer, "solves"/"iterations"/"converged" counters and
	// "initial_residual"/"final_residual" gauges. Repeated solves with the
	// same scope accumulate; give each solve its own child scope to keep
	// traces separate. Nil disables everything at nil-check cost.
	Telemetry *telemetry.Scope
}

// DefaultParams returns the package defaults: rtol 1e-5 (the paper's
// Stokes stopping tolerance), atol 1e-50, 10000 iterations, restart 30.
func DefaultParams() Params {
	return Params{RTol: 1e-5, ATol: 1e-50, MaxIt: 10000, Restart: 30}
}

func (p Params) restart() int {
	if p.Restart <= 0 {
		return 30
	}
	return p.Restart
}

// Result reports the outcome of an iterative solve.
type Result struct {
	Converged  bool
	Iterations int
	Residual   float64   // final unpreconditioned residual norm
	Residual0  float64   // initial residual norm
	History    []float64 // per-iteration residual norms if requested
	Breakdown  bool      // NaN/Inf or zero denominators encountered
	Stagnated  bool      // stagnation window tripped (see Params)
	// Err carries the typed *BreakdownError when Breakdown is set; nil
	// on clean convergence or a plain iteration-limit stop.
	Err error
}

func (r *Result) record(p Params, rn float64) {
	if p.History {
		r.History = append(r.History, rn)
	}
	p.Telemetry.Series("residual").Append(rn)
}

// begin stamps the start of an instrumented solve. The returned time is
// zero (no clock read) when telemetry is off.
func (p Params) begin() time.Time {
	return p.Telemetry.Timer("solve").Start()
}

// finish records the solve-level telemetry for a completed iteration.
func (r *Result) finish(p Params, start time.Time) {
	sc := p.Telemetry
	if sc == nil {
		return
	}
	sc.Timer("solve").Stop(start)
	sc.Counter("solves").Inc()
	sc.Counter("iterations").Add(int64(r.Iterations))
	if r.Converged {
		sc.Counter("converged").Inc()
	}
	sc.Gauge("initial_residual").Set(r.Residual0)
	sc.Gauge("final_residual").Set(r.Residual)
}

// converged implements the combined rtol/atol test.
func converged(p Params, rn, r0 float64) bool {
	return rn <= p.ATol || rn <= p.RTol*r0
}
