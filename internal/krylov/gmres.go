package krylov

import (
	"math"

	"ptatin3d/internal/la"
)

// gmresCore implements restarted right-preconditioned GMRES. With
// flexible=true it is FGMRES (Saad): the preconditioned directions
// Z_j = M⁻¹·v_j are stored so the preconditioner may change between
// iterations (paper §III-A: required when the preconditioner contains
// inner iterations). With flexible=false the update is reconstructed as
// M⁻¹(V·y), which assumes a fixed linear M.
func gmresCore(a Op, m Preconditioner, b, x la.Vec, prm Params, flexible bool) Result {
	n := a.N()
	mr := prm.restart()
	telStart := prm.begin()
	method := "gmres"
	if flexible {
		method = "fgmres"
	}

	if err := prm.consistent(x, b); err != nil {
		var res Result
		res.failEntry(prm, err)
		res.finish(prm, telStart)
		return res
	}
	r := la.NewVec(n)
	w := la.NewVec(n)
	a.Apply(x, r)
	r.AYPX(-1, b)
	res := Result{Residual0: prm.norm2(r)}
	rn := res.Residual0
	res.record(prm, rn)
	if k := badNorm(rn); k != 0 {
		res.fail(prm, method, k, 0, rn)
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	if converged(prm, rn, res.Residual0) || rn == 0 {
		res.Converged = true
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	stag := newStagGuard(prm)

	v := make([]la.Vec, mr+1)
	for i := range v {
		v[i] = la.NewVec(n)
	}
	var z []la.Vec
	if flexible {
		z = make([]la.Vec, mr)
		for i := range z {
			z[i] = la.NewVec(n)
		}
	}
	h := make([]float64, (mr+1)*mr) // Hessenberg, h[i*mr+j]
	cs := make([]float64, mr)
	sn := make([]float64, mr)
	g := make([]float64, mr+1)
	zt := la.NewVec(n)

	it := 0
	for it < prm.MaxIt {
		// Start/restart the Arnoldi process from the current residual.
		a.Apply(x, r)
		r.AYPX(-1, b)
		beta := prm.norm2(r)
		if k := badNorm(beta); k != 0 {
			res.fail(prm, method, k, it, beta)
			rn = beta
			break
		}
		if converged(prm, beta, res.Residual0) {
			res.Converged = true
			rn = beta
			break
		}
		v[0].Copy(r)
		v[0].Scale(1 / beta)
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		j := 0
		for ; j < mr && it < prm.MaxIt; j++ {
			it++
			if flexible {
				m.Apply(v[j], z[j])
				a.Apply(z[j], w)
			} else {
				m.Apply(v[j], zt)
				a.Apply(zt, w)
			}
			// Modified Gram–Schmidt.
			for i := 0; i <= j; i++ {
				hij := prm.dot(w, v[i])
				h[i*mr+j] = hij
				w.AXPY(-hij, v[i])
			}
			hj1 := prm.norm2(w)
			h[(j+1)*mr+j] = hj1
			if hj1 != 0 {
				v[j+1].Copy(w)
				v[j+1].Scale(1 / hj1)
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < j; i++ {
				t := cs[i]*h[i*mr+j] + sn[i]*h[(i+1)*mr+j]
				h[(i+1)*mr+j] = -sn[i]*h[i*mr+j] + cs[i]*h[(i+1)*mr+j]
				h[i*mr+j] = t
			}
			// New rotation to annihilate h[j+1][j].
			den := math.Hypot(h[j*mr+j], hj1)
			if den == 0 {
				res.fail(prm, method, BreakdownZeroPivot, it, den)
				j++
				break
			}
			cs[j] = h[j*mr+j] / den
			sn[j] = hj1 / den
			h[j*mr+j] = den
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			rn = math.Abs(g[j+1])
			res.Iterations = it
			res.record(prm, rn)
			if k := badNorm(rn); k != 0 {
				res.fail(prm, method, k, it, rn)
				j++
				break
			}
			if converged(prm, rn, res.Residual0) {
				j++
				res.Converged = true
				break
			}
			if stag.stalled(rn) {
				res.fail(prm, method, BreakdownStagnation, it, rn)
				j++
				break
			}
		}
		// Solve the j×j triangular system and update x.
		y := make([]float64, j)
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for k := i + 1; k < j; k++ {
				s -= h[i*mr+k] * y[k]
			}
			y[i] = s / h[i*mr+i]
		}
		if flexible {
			for i := 0; i < j; i++ {
				x.AXPY(y[i], z[i])
			}
		} else {
			zt.Zero()
			for i := 0; i < j; i++ {
				zt.AXPY(y[i], v[i])
			}
			u := la.NewVec(n)
			m.Apply(zt, u)
			x.AXPY(1, u)
		}
		if res.Converged || res.Breakdown {
			break
		}
	}
	res.Residual = rn
	res.finish(prm, telStart)
	return res
}

// GMRES solves A·x = b by restarted right-preconditioned GMRES(m). The
// preconditioner must be a fixed linear operator; for nonlinear
// preconditioners use FGMRES or GCR.
func GMRES(a Op, m Preconditioner, b, x la.Vec, prm Params) Result {
	return gmresCore(a, m, b, x, prm, false)
}

// FGMRES solves A·x = b by flexible restarted GMRES(m), tolerating a
// preconditioner that changes between iterations (paper §III-A). Preferred
// for extremely ill-conditioned problems for its numerical stability.
func FGMRES(a Op, m Preconditioner, b, x la.Vec, prm Params) Result {
	return gmresCore(a, m, b, x, prm, true)
}
