package krylov

import (
	"math"

	"ptatin3d/internal/la"
)

// gmresCore implements restarted right-preconditioned GMRES. With
// flexible=true it is FGMRES (Saad): the preconditioned directions
// Z_j = M⁻¹·v_j are stored so the preconditioner may change between
// iterations (paper §III-A: required when the preconditioner contains
// inner iterations). With flexible=false the update is reconstructed as
// M⁻¹(V·y), which assumes a fixed linear M.
//
// With prm.Pipelined set on a rank-collective solve (Reducer != nil)
// the Arnoldi orthogonalization switches from modified Gram–Schmidt
// (j+2 reductions per iteration) to reorthogonalized classical
// Gram–Schmidt — CGS2, "twice is enough" — with the norm recurrence
// h_{j+1,j}² = (w,w) − Σᵢ h_{ij}²: exactly TWO batched reductions per
// iteration regardless of the Krylov dimension j (see pipeline.go). A
// single CGS pass would be one reduction, but its orthogonality decays
// like ε·(‖r₀‖/‖r_j‖)², so the Givens residual estimate stagnates near
// √ε relative and convergence past ~1e-8 is never detected; the second
// pass restores ε-level orthogonality and classical convergence. The
// Givens residual recurrence itself needs no further reductions.
func gmresCore(a Op, m Preconditioner, b, x la.Vec, prm Params, flexible bool) Result {
	n := a.N()
	mr := prm.restart()
	telStart := prm.begin()
	pipe := prm.Pipelined && prm.Reducer != nil
	method := "gmres"
	if flexible {
		method = "fgmres"
	}
	if pipe {
		method = "pipe" + method
	}

	if err := prm.consistent(x, b); err != nil {
		var res Result
		res.failEntry(prm, err)
		res.finish(prm, telStart)
		return res
	}
	r := la.NewVec(n)
	w := la.NewVec(n)
	a.Apply(x, r)
	prm.vaypx(r, -1, b)
	res := Result{Residual0: prm.norm2(r)}
	rn := res.Residual0
	res.record(prm, rn)
	if k := badNorm(rn); k != 0 {
		res.fail(prm, method, k, 0, rn)
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	if converged(prm, rn, res.Residual0) || rn == 0 {
		res.Converged = true
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	stag := newStagGuard(prm)

	v := make([]la.Vec, mr+1)
	for i := range v {
		v[i] = la.NewVec(n)
	}
	var z []la.Vec
	if flexible {
		z = make([]la.Vec, mr)
		for i := range z {
			z[i] = la.NewVec(n)
		}
	}
	h := make([]float64, (mr+1)*mr) // Hessenberg, h[i*mr+j]
	cs := make([]float64, mr)
	sn := make([]float64, mr)
	g := make([]float64, mr+1)
	zt := la.NewVec(n)
	var xs, ys []la.Vec
	if pipe {
		xs = make([]la.Vec, 0, mr+2)
		ys = make([]la.Vec, 0, mr+2)
	}

	it := 0
	for it < prm.MaxIt {
		// Start/restart the Arnoldi process from the current residual.
		a.Apply(x, r)
		prm.vaypx(r, -1, b)
		beta := prm.norm2(r)
		if k := badNorm(beta); k != 0 {
			res.fail(prm, method, k, it, beta)
			rn = beta
			break
		}
		if converged(prm, beta, res.Residual0) {
			res.Converged = true
			rn = beta
			break
		}
		prm.vcopy(v[0], r)
		prm.vscale(v[0], 1/beta)
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		j := 0
		for ; j < mr && it < prm.MaxIt; j++ {
			it++
			if flexible {
				m.Apply(v[j], z[j])
				a.Apply(z[j], w)
			} else {
				m.Apply(v[j], zt)
				a.Apply(zt, w)
			}
			var hj1 float64
			if pipe {
				// CGS2: two passes of classical Gram–Schmidt, each ONE
				// batched reduction [(w,v_0)…(w,v_j), (w,w)]. A single pass
				// would be one reduction, but its orthogonality decays like
				// ε·(‖r₀‖/‖r_j‖)², stalling the Givens residual estimate
				// near √ε relative; the second pass removes the O(ε)
				// residue, and the norm recurrence h² = (w,w) − Σ(w,vᵢ)² is
				// then evaluated on the second pass's tiny coefficients,
				// where cancellation is harmless.
				for i := 0; i <= j; i++ {
					h[i*mr+j] = 0 // column may hold a previous restart cycle
				}
				for pass := 0; pass < 2; pass++ {
					xs, ys = xs[:0], ys[:0]
					for i := 0; i <= j; i++ {
						xs, ys = append(xs, w), append(ys, v[i])
					}
					xs, ys = append(xs, w), append(ys, w)
					d := prm.dots(xs, ys)
					rec := d[j+1]
					for i := 0; i <= j; i++ {
						h[i*mr+j] += d[i]
						prm.vaxpy(w, -d[i], v[i])
						rec -= d[i] * d[i]
					}
					hj1 = math.Sqrt(math.Max(rec, 0))
				}
			} else {
				// Modified Gram–Schmidt.
				for i := 0; i <= j; i++ {
					hij := prm.dot(w, v[i])
					h[i*mr+j] = hij
					prm.vaxpy(w, -hij, v[i])
				}
				hj1 = prm.norm2(w)
			}
			h[(j+1)*mr+j] = hj1
			if hj1 != 0 {
				prm.vcopy(v[j+1], w)
				prm.vscale(v[j+1], 1/hj1)
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < j; i++ {
				t := cs[i]*h[i*mr+j] + sn[i]*h[(i+1)*mr+j]
				h[(i+1)*mr+j] = -sn[i]*h[i*mr+j] + cs[i]*h[(i+1)*mr+j]
				h[i*mr+j] = t
			}
			// New rotation to annihilate h[j+1][j].
			den := math.Hypot(h[j*mr+j], hj1)
			if den == 0 {
				res.fail(prm, method, BreakdownZeroPivot, it, den)
				j++
				break
			}
			cs[j] = h[j*mr+j] / den
			sn[j] = hj1 / den
			h[j*mr+j] = den
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			rn = math.Abs(g[j+1])
			res.Iterations = it
			res.record(prm, rn)
			if k := badNorm(rn); k != 0 {
				res.fail(prm, method, k, it, rn)
				j++
				break
			}
			if converged(prm, rn, res.Residual0) {
				j++
				res.Converged = true
				break
			}
			if stag.stalled(rn) {
				res.fail(prm, method, BreakdownStagnation, it, rn)
				j++
				break
			}
		}
		// Solve the j×j triangular system and update x.
		y := make([]float64, j)
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for k := i + 1; k < j; k++ {
				s -= h[i*mr+k] * y[k]
			}
			y[i] = s / h[i*mr+i]
		}
		if flexible {
			for i := 0; i < j; i++ {
				prm.vaxpy(x, y[i], z[i])
			}
		} else {
			prm.vzero(zt)
			for i := 0; i < j; i++ {
				prm.vaxpy(zt, y[i], v[i])
			}
			u := la.NewVec(n)
			m.Apply(zt, u)
			prm.vaxpy(x, 1, u)
		}
		if res.Converged || res.Breakdown {
			break
		}
	}
	res.Residual = rn
	res.finish(prm, telStart)
	return res
}

// GMRES solves A·x = b by restarted right-preconditioned GMRES(m). The
// preconditioner must be a fixed linear operator; for nonlinear
// preconditioners use FGMRES or GCR.
func GMRES(a Op, m Preconditioner, b, x la.Vec, prm Params) Result {
	return gmresCore(a, m, b, x, prm, false)
}

// FGMRES solves A·x = b by flexible restarted GMRES(m), tolerating a
// preconditioner that changes between iterations (paper §III-A). Preferred
// for extremely ill-conditioned problems for its numerical stability.
func FGMRES(a Op, m Preconditioner, b, x la.Vec, prm Params) Result {
	return gmresCore(a, m, b, x, prm, true)
}
