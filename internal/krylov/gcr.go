package krylov

import (
	"ptatin3d/internal/la"
)

// GCR solves A·x = b by the generalized conjugate residual method with
// truncation/restart length prm.Restart. GCR is flexible (the
// preconditioner may be nonlinear) and — unlike GMRES, whose residual
// exists only through a recurrence — keeps the true residual and iterate
// explicitly available at every step. The paper (§III-A) prefers it for
// exactly that reason: the momentum/pressure residual split of Figure 2
// is read directly off the GCR residual.
//
// Callback, when non-nil, receives the iteration number and the current
// residual vector after every step (used to log per-field residual norms).
func GCR(a Op, m Preconditioner, b, x la.Vec, prm Params, callback func(it int, r la.Vec)) Result {
	n := a.N()
	mr := prm.restart()
	telStart := prm.begin()
	r := la.NewVec(n)
	if err := prm.consistent(x, b); err != nil {
		var res Result
		res.failEntry(prm, err)
		res.finish(prm, telStart)
		return res
	}
	a.Apply(x, r)
	r.AYPX(-1, b)
	res := Result{Residual0: prm.norm2(r)}
	rn := res.Residual0
	res.record(prm, rn)
	if callback != nil {
		callback(0, r)
	}
	if k := badNorm(rn); k != 0 {
		res.fail(prm, "gcr", k, 0, rn)
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	if converged(prm, rn, res.Residual0) {
		res.Converged = true
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	stag := newStagGuard(prm)

	zs := make([]la.Vec, 0, mr) // search directions (preconditioned)
	qs := make([]la.Vec, 0, mr) // A·z, orthonormalized
	z := la.NewVec(n)
	q := la.NewVec(n)

	for it := 1; it <= prm.MaxIt; it++ {
		m.Apply(r, z)
		a.Apply(z, q)
		// Orthogonalize q against previous directions (modified GS).
		for i := range qs {
			beta := prm.dot(q, qs[i])
			q.AXPY(-beta, qs[i])
			z.AXPY(-beta, zs[i])
		}
		qn := prm.norm2(q)
		if qn == 0 {
			res.fail(prm, "gcr", BreakdownZeroPivot, it, qn)
			break
		}
		q.Scale(1 / qn)
		z.Scale(1 / qn)
		alpha := prm.dot(r, q)
		x.AXPY(alpha, z)
		r.AXPY(-alpha, q)
		rn = prm.norm2(r)
		res.Iterations = it
		res.record(prm, rn)
		if callback != nil {
			callback(it, r)
		}
		if k := badNorm(rn); k != 0 {
			res.fail(prm, "gcr", k, it, rn)
			break
		}
		if prm.hasNaN(r) {
			res.fail(prm, "gcr", BreakdownNaN, it, rn)
			break
		}
		if converged(prm, rn, res.Residual0) {
			res.Converged = true
			break
		}
		if stag.stalled(rn) {
			res.fail(prm, "gcr", BreakdownStagnation, it, rn)
			break
		}
		// Store the direction; restart (truncate) when full.
		if len(qs) == mr {
			zs = zs[:0]
			qs = qs[:0]
		}
		zs = append(zs, z.Clone())
		qs = append(qs, q.Clone())
	}
	res.Residual = rn
	res.finish(prm, telStart)
	return res
}
