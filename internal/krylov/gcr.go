package krylov

import (
	"ptatin3d/internal/la"
)

// GCR solves A·x = b by the generalized conjugate residual method with
// truncation/restart length prm.Restart. GCR is flexible (the
// preconditioner may be nonlinear) and — unlike GMRES, whose residual
// exists only through a recurrence — keeps the true residual and iterate
// explicitly available at every step. The paper (§III-A) prefers it for
// exactly that reason: the momentum/pressure residual split of Figure 2
// is read directly off the GCR residual.
//
// Callback, when non-nil, receives the iteration number and the current
// residual vector after every step (used to log per-field residual norms).
//
// With prm.Pipelined set on a rank-collective solve (Reducer != nil)
// the single-reduce classical-Gram–Schmidt variant runs instead (see
// pipeline.go); without a Reducer the flag is ignored and the serial
// path below runs bit-for-bit.
func GCR(a Op, m Preconditioner, b, x la.Vec, prm Params, callback func(it int, r la.Vec)) Result {
	if prm.Pipelined && prm.Reducer != nil {
		return pipeGCR(a, m, b, x, prm, callback)
	}
	n := a.N()
	mr := prm.restart()
	telStart := prm.begin()
	r := la.NewVec(n)
	if err := prm.consistent(x, b); err != nil {
		var res Result
		res.failEntry(prm, err)
		res.finish(prm, telStart)
		return res
	}
	a.Apply(x, r)
	prm.vaypx(r, -1, b)
	res := Result{Residual0: prm.norm2(r)}
	rn := res.Residual0
	res.record(prm, rn)
	if callback != nil {
		callback(0, r)
	}
	if k := badNorm(rn); k != 0 {
		res.fail(prm, "gcr", k, 0, rn)
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	if converged(prm, rn, res.Residual0) {
		res.Converged = true
		res.Residual = rn
		res.finish(prm, telStart)
		return res
	}
	stag := newStagGuard(prm)

	zs := make([]la.Vec, 0, mr) // search directions (preconditioned)
	qs := make([]la.Vec, 0, mr) // A·z, orthonormalized
	z := la.NewVec(n)
	q := la.NewVec(n)

	for it := 1; it <= prm.MaxIt; it++ {
		m.Apply(r, z)
		a.Apply(z, q)
		// Orthogonalize q against previous directions (modified GS).
		for i := range qs {
			beta := prm.dot(q, qs[i])
			prm.vaxpy(q, -beta, qs[i])
			prm.vaxpy(z, -beta, zs[i])
		}
		qn := prm.norm2(q)
		if qn == 0 {
			res.fail(prm, "gcr", BreakdownZeroPivot, it, qn)
			break
		}
		prm.vscale(q, 1/qn)
		prm.vscale(z, 1/qn)
		alpha := prm.dot(r, q)
		prm.vaxpy(x, alpha, z)
		prm.vaxpy(r, -alpha, q)
		rn = prm.norm2(r)
		res.Iterations = it
		res.record(prm, rn)
		if callback != nil {
			callback(it, r)
		}
		if k := badNorm(rn); k != 0 {
			res.fail(prm, "gcr", k, it, rn)
			break
		}
		if prm.hasNaN(r) {
			res.fail(prm, "gcr", BreakdownNaN, it, rn)
			break
		}
		if converged(prm, rn, res.Residual0) {
			res.Converged = true
			break
		}
		if stag.stalled(rn) {
			res.fail(prm, "gcr", BreakdownStagnation, it, rn)
			break
		}
		// Store the direction; restart (truncate) when full.
		if len(qs) == mr {
			zs = zs[:0]
			qs = qs[:0]
		}
		zs = append(zs, prm.vclone(z))
		qs = append(qs, prm.vclone(q))
	}
	res.Residual = rn
	res.finish(prm, telStart)
	return res
}
