package krylov

import (
	"math"

	"ptatin3d/internal/la"
)

// Rank-collective solves (paper §II-D): the Krylov methods of this
// package become distributed by swapping their two global primitives —
// inner products and halo consistency — behind the Reducer/Exchanger
// interfaces below. With both nil (the default) every method runs the
// original shared-memory path, bit for bit.
//
// In a distributed solve each rank calls the same method collectively
// on its own full-length vector copy, valid on the owned+ghost entries
// of its layout. Correctness rests on collective consistency: Reducer
// must return the bit-identical globally-reduced value on every rank
// (e.g. rank-ordered gather + broadcast), so all ranks take the same
// branches — Givens rotations, convergence and breakdown decisions —
// in lockstep. BLAS-1 updates then stay consistent on owned and ghost
// entries alike, and operator/preconditioner applications re-establish
// ghost validity via their own halo exchanges.

// Reducer supplies rank-collective inner products: Dot must sum each
// rank's partial product over its owned dofs and return the identical
// reduced value on every rank.
type Reducer interface {
	Dot(x, y la.Vec) float64
}

// Exchanger refreshes the ghost entries of an externally assembled
// vector from their owners, making it halo-consistent before the first
// operator application. Solve entry points call it on the initial guess
// and right-hand side when set.
type Exchanger interface {
	Consistent(x la.Vec) error
}

// dot returns the (possibly rank-collective) inner product.
func (p Params) dot(x, y la.Vec) float64 {
	if p.Reducer != nil {
		return p.Reducer.Dot(x, y)
	}
	return x.Dot(y)
}

// norm2 returns the (possibly rank-collective) Euclidean norm.
func (p Params) norm2(x la.Vec) float64 {
	if p.Reducer != nil {
		return math.Sqrt(p.Reducer.Dot(x, x))
	}
	return x.Norm2()
}

// hasNaN runs the full-vector NaN scan only on the shared-memory path:
// a distributed rank's vector copy is undefined outside its owned+ghost
// region (finite, but meaningless), and the collective badNorm checks
// on reduced values already catch NaN/Inf consistently on all ranks.
func (p Params) hasNaN(x la.Vec) bool {
	return p.Reducer == nil && x.HasNaN()
}

// consistent makes the caller-supplied vectors halo-consistent (no-op
// without an Exchanger). The returned error is the exchange failure, to
// be surfaced through Result.Err as a breakdown.
func (p Params) consistent(vs ...la.Vec) error {
	if p.Exchanger == nil {
		return nil
	}
	for _, v := range vs {
		if err := p.Exchanger.Consistent(v); err != nil {
			return err
		}
	}
	return nil
}

// failEntry marks a solve that could not start because the entry
// exchange failed: a communication breakdown before iteration 0, with
// the exchange error carried through Result.Err as-is.
func (r *Result) failEntry(p Params, err error) {
	r.Breakdown = true
	r.Err = err
	p.Telemetry.Counter("breakdowns").Inc()
}
