package krylov

import (
	"math"

	"ptatin3d/internal/la"
)

// Rank-collective solves (paper §II-D): the Krylov methods of this
// package become distributed by swapping their two global primitives —
// inner products and halo consistency — behind the Reducer/Exchanger
// interfaces below. With both nil (the default) every method runs the
// original shared-memory path, bit for bit.
//
// In a distributed solve each rank calls the same method collectively
// on its own full-length vector copy, valid on the owned+ghost entries
// of its layout. Correctness rests on collective consistency: Reducer
// must return the bit-identical globally-reduced value on every rank
// (e.g. rank-ordered gather + broadcast), so all ranks take the same
// branches — Givens rotations, convergence and breakdown decisions —
// in lockstep. BLAS-1 updates then stay consistent on owned and ghost
// entries alike, and operator/preconditioner applications re-establish
// ghost validity via their own halo exchanges.

// Reducer supplies rank-collective inner products: Dot must sum each
// rank's partial product over its owned dofs and return the identical
// reduced value on every rank.
type Reducer interface {
	Dot(x, y la.Vec) float64
}

// Exchanger refreshes the ghost entries of an externally assembled
// vector from their owners, making it halo-consistent before the first
// operator application. Solve entry points call it on the initial guess
// and right-hand side when set.
type Exchanger interface {
	Consistent(x la.Vec) error
}

// BatchReducer extends Reducer with a fused reduction: DotBatch returns
// the globally reduced inner products dot(xs[i], ys[i]) for all pairs
// using a single collective operation, so a pipelined Krylov iteration
// pays one allreduce latency instead of one per inner product. Like Dot,
// the returned values must be bit-identical on every rank.
type BatchReducer interface {
	Reducer
	DotBatch(xs, ys []la.Vec) []float64
}

// dot returns the (possibly rank-collective) inner product.
func (p Params) dot(x, y la.Vec) float64 {
	if p.Reducer != nil {
		return p.Reducer.Dot(x, y)
	}
	return x.Dot(y)
}

// norm2 returns the (possibly rank-collective) Euclidean norm.
func (p Params) norm2(x la.Vec) float64 {
	if p.Reducer != nil {
		return math.Sqrt(p.Reducer.Dot(x, x))
	}
	return x.Norm2()
}

// dots returns the (possibly rank-collective) inner products of the
// vector pairs (xs[i], ys[i]). With a BatchReducer all pairs reduce in
// one collective; with a plain Reducer each pair reduces separately;
// with no Reducer the serial products are returned.
func (p Params) dots(xs, ys []la.Vec) []float64 {
	if br, ok := p.Reducer.(BatchReducer); ok {
		return br.DotBatch(xs, ys)
	}
	out := make([]float64, len(xs))
	if p.Reducer != nil {
		for i := range xs {
			out[i] = p.Reducer.Dot(xs[i], ys[i])
		}
		return out
	}
	for i := range xs {
		out[i] = xs[i].Dot(ys[i])
	}
	return out
}

// windowed reports whether BLAS-1 updates should be restricted to the
// rank's spans (distributed solve with a span list).
func (p Params) windowed() bool { return p.Reducer != nil && len(p.Spans) > 0 }

// The v* helpers below are the solver-internal BLAS-1 kernels: full
// length on the shared-memory path, span-windowed on a distributed
// solve that set Params.Spans.

func (p Params) vaxpy(v la.Vec, alpha float64, x la.Vec) {
	if p.windowed() {
		v.AXPYSpans(alpha, x, p.Spans)
		return
	}
	v.AXPY(alpha, x)
}

func (p Params) vaypx(v la.Vec, alpha float64, x la.Vec) {
	if p.windowed() {
		v.AYPXSpans(alpha, x, p.Spans)
		return
	}
	v.AYPX(alpha, x)
}

func (p Params) vwaxpy(v la.Vec, alpha float64, x, y la.Vec) {
	if p.windowed() {
		v.WAXPYSpans(alpha, x, y, p.Spans)
		return
	}
	v.WAXPY(alpha, x, y)
}

func (p Params) vcopy(dst, src la.Vec) {
	if p.windowed() {
		dst.CopySpans(src, p.Spans)
		return
	}
	dst.Copy(src)
}

func (p Params) vscale(v la.Vec, alpha float64) {
	if p.windowed() {
		v.ScaleSpans(alpha, p.Spans)
		return
	}
	v.Scale(alpha)
}

func (p Params) vzero(v la.Vec) {
	if p.windowed() {
		v.ZeroSpans(p.Spans)
		return
	}
	v.Zero()
}

func (p Params) vclone(v la.Vec) la.Vec {
	if p.windowed() {
		w := la.NewVec(len(v))
		w.CopySpans(v, p.Spans)
		return w
	}
	return v.Clone()
}

// hasNaN runs the full-vector NaN scan only on the shared-memory path:
// a distributed rank's vector copy is undefined outside its owned+ghost
// region (finite, but meaningless), and the collective badNorm checks
// on reduced values already catch NaN/Inf consistently on all ranks.
func (p Params) hasNaN(x la.Vec) bool {
	return p.Reducer == nil && x.HasNaN()
}

// consistent makes the caller-supplied vectors halo-consistent (no-op
// without an Exchanger). The returned error is the exchange failure, to
// be surfaced through Result.Err as a breakdown.
func (p Params) consistent(vs ...la.Vec) error {
	if p.Exchanger == nil {
		return nil
	}
	for _, v := range vs {
		if err := p.Exchanger.Consistent(v); err != nil {
			return err
		}
	}
	return nil
}

// failEntry marks a solve that could not start because the entry
// exchange failed: a communication breakdown before iteration 0, with
// the exchange error carried through Result.Err as-is.
func (r *Result) failEntry(p Params, err error) {
	r.Breakdown = true
	r.Err = err
	p.Telemetry.Counter("breakdowns").Inc()
}
