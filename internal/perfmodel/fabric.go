package perfmodel

import "math"

// Fabric is a two-parameter α–β interconnect cost model (Hockney/LogP
// style): one point-to-point message of b bytes costs α + b/BW. The
// simulated MPI world charges this model for every halo packet,
// allreduce and coarse-solve message (comm.World.SetFabric), so the
// modeled communication time grows with rank count the way the paper's
// Tables II/III machine time does — while the simulation itself runs at
// full speed (the charges are virtual nanoseconds in telemetry
// counters, never sleeps).
type Fabric struct {
	// LatencyNs is the per-message latency α in nanoseconds.
	LatencyNs float64
	// BandwidthBps is the per-link bandwidth in bytes per second.
	BandwidthBps float64
}

// DefaultFabric returns parameters in the range of the Cray Aries
// interconnect of the paper's Edison machine (§IV): ~1.3 µs MPI
// latency, ~8 GB/s per-link bandwidth.
func DefaultFabric() *Fabric {
	return &Fabric{LatencyNs: 1300, BandwidthBps: 8e9}
}

// MsgNs returns the modeled cost of one point-to-point message.
func (f *Fabric) MsgNs(bytes int) int64 {
	ns := f.LatencyNs
	if f.BandwidthBps > 0 {
		ns += float64(bytes) / f.BandwidthBps * 1e9
	}
	return int64(ns)
}

// AllReduceNs returns the modeled cost of one allreduce of width
// float64 values over the given rank count: a recursive-doubling
// (reduce-scatter + all-gather style) allreduce makes 2·⌈log₂P⌉
// latency-bound hops of the full payload — the small-message regime of
// every Krylov dot product, where latency dominates and the cost is
// independent of the local problem size. This is the term the
// pipelined Krylov variants attack: halving the reductions per
// iteration halves this charge.
func (f *Fabric) AllReduceNs(ranks, width int) int64 {
	if ranks <= 1 {
		return 0
	}
	hops := 2 * int(math.Ceil(math.Log2(float64(ranks))))
	return int64(hops) * f.MsgNs(8*width)
}

// CoarseGatherNs returns the modeled critical-path cost of funneling
// per-rank coarse vectors of bytesPerRank to `roots` agglomeration
// roots and broadcasting bytesBack to every rank: each root serializes
// its block's messages (the all-ranks scheme, roots=1, pays the full
// P−1 serialization that motivates agglomeration).
func (f *Fabric) CoarseGatherNs(ranks, roots, bytesPerRank, bytesBack int) int64 {
	if ranks <= 1 {
		return 0
	}
	if roots < 1 {
		roots = 1
	}
	if roots > ranks {
		roots = ranks
	}
	blk := (ranks + roots - 1) / roots // largest block
	var ns int64
	// Clients → root within the largest block, serialized at the root.
	ns += int64(blk-1) * f.MsgNs(bytesPerRank)
	// Root group all-gather of combined blocks.
	ns += int64(roots-1) * f.MsgNs(blk*bytesPerRank)
	// Root → clients solution broadcast.
	ns += int64(blk-1) * f.MsgNs(bytesBack)
	return ns
}
