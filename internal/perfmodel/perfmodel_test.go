package perfmodel

import "testing"

func TestPaperTableIShape(t *testing.T) {
	rows := PaperTableI()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]OpCounts{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The paper's central inequalities.
	if !(byName["Tensor"].Flops < byName["Matrix-free"].Flops) {
		t.Fatal("tensor must do fewer flops than MF")
	}
	if !(byName["Assembled"].BytesPerfect > 10*byName["Tensor"].BytesPerfect) {
		t.Fatal("assembled must stream far more bytes")
	}
	// Matrix-free intensity is far above hardware balance (paper: 22.5–53
	// flops/byte).
	ai := byName["Matrix-free"]
	if ai.ArithmeticIntensity(true) < 20 || ai.ArithmeticIntensity(false) < 10 {
		t.Fatalf("MF intensity %v/%v too low", ai.ArithmeticIntensity(true), ai.ArithmeticIntensity(false))
	}
}

func TestReproCountsRelations(t *testing.T) {
	rows := ReproCounts()
	byName := map[string]OpCounts{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if !(byName["Tensor"].Flops < byName["Matrix-free"].Flops/3) {
		t.Fatal("tensor product must save ~3× flops over dense MF")
	}
	if !(byName["TensorC"].Flops < byName["Tensor"].Flops) {
		t.Fatal("stored-coefficient variant must do fewer flops")
	}
	if !(byName["TensorC"].BytesPerfect > byName["Tensor"].BytesPerfect) {
		t.Fatal("stored-coefficient variant must stream more bytes")
	}
	for _, r := range rows {
		if r.Flops <= 0 || r.BytesPerfect <= 0 || r.BytesPessimal < r.BytesPerfect {
			t.Fatalf("%s counts inconsistent: %+v", r.Name, r)
		}
	}
}

func TestRooflineClassification(t *testing.T) {
	// A machine with 10 GB/s and 10 GF/s (balance 1 flop/byte): the
	// assembled variant (AI ≈ 0.125) is memory bound, the tensor variant
	// (AI ≈ 15+) compute bound — the paper's qualitative claim.
	m := Machine{StreamBW: 10e9, FlopRate: 10e9}
	rows := ReproCounts()
	var asm, tens OpCounts
	for _, r := range rows {
		switch r.Name {
		case "Assembled":
			asm = r
		case "Tensor":
			tens = r
		}
	}
	if !m.MemoryBound(asm, true) {
		t.Fatal("assembled SpMV should be memory bound")
	}
	if m.MemoryBound(tens, true) {
		t.Fatal("tensor kernel should be compute bound")
	}
	// Roofline times are consistent with the binding resource.
	if got, want := m.RooflineTime(asm, true), asm.BytesPerfect/m.StreamBW; got != want {
		t.Fatalf("asm roofline %v, want %v", got, want)
	}
	if got, want := m.RooflineTime(tens, true), tens.Flops/m.FlopRate; got != want {
		t.Fatalf("tensor roofline %v, want %v", got, want)
	}
}

func TestMeasurementsSane(t *testing.T) {
	bw := MeasureStream(1<<20, 2)
	if bw < 1e8 || bw > 1e13 {
		t.Fatalf("triad bandwidth implausible: %e B/s", bw)
	}
	fl := MeasureFlops(1<<18, 2)
	if fl < 1e7 || fl > 1e12 {
		t.Fatalf("flop rate implausible: %e F/s", fl)
	}
}
