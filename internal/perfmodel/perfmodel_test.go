package perfmodel

import (
	"testing"

	"ptatin3d/internal/comm"
	"ptatin3d/internal/mesh"
)

func TestPaperTableIShape(t *testing.T) {
	rows := PaperTableI()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]OpCounts{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The paper's central inequalities.
	if !(byName["Tensor"].Flops < byName["Matrix-free"].Flops) {
		t.Fatal("tensor must do fewer flops than MF")
	}
	if !(byName["Assembled"].BytesPerfect > 10*byName["Tensor"].BytesPerfect) {
		t.Fatal("assembled must stream far more bytes")
	}
	// Matrix-free intensity is far above hardware balance (paper: 22.5–53
	// flops/byte).
	ai := byName["Matrix-free"]
	if ai.ArithmeticIntensity(true) < 20 || ai.ArithmeticIntensity(false) < 10 {
		t.Fatalf("MF intensity %v/%v too low", ai.ArithmeticIntensity(true), ai.ArithmeticIntensity(false))
	}
}

func TestReproCountsRelations(t *testing.T) {
	rows := ReproCounts()
	byName := map[string]OpCounts{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if !(byName["Tensor"].Flops < byName["Matrix-free"].Flops/3) {
		t.Fatal("tensor product must save ~3× flops over dense MF")
	}
	if !(byName["TensorC"].Flops < byName["Tensor"].Flops) {
		t.Fatal("stored-coefficient variant must do fewer flops")
	}
	if !(byName["TensorC"].BytesPerfect > byName["Tensor"].BytesPerfect) {
		t.Fatal("stored-coefficient variant must stream more bytes")
	}
	for _, r := range rows {
		if r.Flops <= 0 || r.BytesPerfect <= 0 || r.BytesPessimal < r.BytesPerfect {
			t.Fatalf("%s counts inconsistent: %+v", r.Name, r)
		}
	}
}

func TestRooflineClassification(t *testing.T) {
	// A machine with 10 GB/s and 10 GF/s (balance 1 flop/byte): the
	// assembled variant (AI ≈ 0.125) is memory bound, the tensor variant
	// (AI ≈ 15+) compute bound — the paper's qualitative claim.
	m := Machine{StreamBW: 10e9, FlopRate: 10e9}
	rows := ReproCounts()
	var asm, tens OpCounts
	for _, r := range rows {
		switch r.Name {
		case "Assembled":
			asm = r
		case "Tensor":
			tens = r
		}
	}
	if !m.MemoryBound(asm, true) {
		t.Fatal("assembled SpMV should be memory bound")
	}
	if m.MemoryBound(tens, true) {
		t.Fatal("tensor kernel should be compute bound")
	}
	// Roofline times are consistent with the binding resource.
	if got, want := m.RooflineTime(asm, true), asm.BytesPerfect/m.StreamBW; got != want {
		t.Fatalf("asm roofline %v, want %v", got, want)
	}
	if got, want := m.RooflineTime(tens, true), tens.Flops/m.FlopRate; got != want {
		t.Fatalf("tensor roofline %v, want %v", got, want)
	}
}

func TestMeasurementsSane(t *testing.T) {
	bw := MeasureStream(1<<20, 2)
	if bw < 1e8 || bw > 1e13 {
		t.Fatalf("triad bandwidth implausible: %e B/s", bw)
	}
	fl := MeasureFlops(1<<18, 2)
	if fl < 1e7 || fl > 1e12 {
		t.Fatalf("flop rate implausible: %e F/s", fl)
	}
}

// TestGhostNodesMatchesLayout cross-checks the analytic ghost-region
// model against the actual exchange lists of comm.Layout: the predicted
// ghost count must equal the total length of the Ghost lists for every
// rank of several decompositions.
func TestGhostNodesMatchesLayout(t *testing.T) {
	da := mesh.New(6, 4, 3, 0, 1, 0, 1, 0, 1)
	for _, pg := range [][3]int{{2, 2, 1}, {3, 1, 1}, {2, 2, 3}, {1, 1, 1}} {
		d, err := comm.NewDecomp(da, pg[0], pg[1], pg[2])
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < d.Size(); r++ {
			l := comm.NewLayout(d, r)
			var actual int
			for _, g := range l.Ghost {
				actual += len(g)
			}
			pi, pj, pk := d.RankIJK(r)
			pred := GhostNodes(da.Mx, da.My, da.Mz, pg[0], pg[1], pg[2], pi, pj, pk)
			if pred != actual {
				t.Errorf("%v rank %d: predicted %d ghost nodes, layout has %d", pg, r, pred, actual)
			}
			if m := MaxGhostNodes(da.Mx, da.My, da.Mz, pg[0], pg[1], pg[2]); m < pred {
				t.Errorf("%v: max %d < rank %d count %d", pg, m, r, pred)
			}
		}
	}
	if HaloExchangeBytes(10) != 280 {
		t.Errorf("HaloExchangeBytes(10) = %v, want 280", HaloExchangeBytes(10))
	}
}
