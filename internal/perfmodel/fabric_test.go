package perfmodel

import "testing"

// TestFabricMsgNs: the α–β decomposition — a zero-byte message costs
// exactly the latency, and the bandwidth term adds bytes/BW.
func TestFabricMsgNs(t *testing.T) {
	f := &Fabric{LatencyNs: 1000, BandwidthBps: 1e9} // 1 µs, 1 GB/s
	if got := f.MsgNs(0); got != 1000 {
		t.Fatalf("MsgNs(0) = %d, want latency 1000", got)
	}
	// 1e6 bytes at 1 GB/s = 1 ms = 1e6 ns on top of latency.
	if got := f.MsgNs(1_000_000); got != 1_001_000 {
		t.Fatalf("MsgNs(1e6) = %d, want 1001000", got)
	}
	// Zero bandwidth disables the β term instead of dividing by zero.
	f2 := &Fabric{LatencyNs: 500}
	if got := f2.MsgNs(1 << 20); got != 500 {
		t.Fatalf("MsgNs with BW=0 = %d, want 500", got)
	}
}

// TestFabricAllReduceNs: latency-dominated log₂ scaling — the charge
// grows by one 2-hop step per rank doubling and is zero on one rank.
func TestFabricAllReduceNs(t *testing.T) {
	f := DefaultFabric()
	if got := f.AllReduceNs(1, 8); got != 0 {
		t.Fatalf("AllReduceNs(1) = %d, want 0", got)
	}
	per := f.MsgNs(8 * 3)
	for _, c := range []struct {
		ranks int
		hops  int64
	}{{2, 2}, {4, 4}, {8, 6}, {9, 8}, {512, 18}} {
		if got := f.AllReduceNs(c.ranks, 3); got != c.hops*per {
			t.Fatalf("AllReduceNs(%d) = %d, want %d hops x %d", c.ranks, got, c.hops, per)
		}
	}
}

// TestFabricCoarseGatherNs: agglomeration must strictly shrink the
// modeled critical path versus the all-to-rank-0 funnel, and the
// roots==ranks corner (fully redundant, no funnel) must be cheapest.
func TestFabricCoarseGatherNs(t *testing.T) {
	f := DefaultFabric()
	const ranks, bpr, back = 512, 4096, 4096
	legacy := f.CoarseGatherNs(ranks, 1, bpr, back)
	agg := f.CoarseGatherNs(ranks, 8, bpr, back)
	if agg >= legacy {
		t.Fatalf("8-root agglomeration (%d ns) not cheaper than all-to-rank-0 (%d ns)", agg, legacy)
	}
	if f.CoarseGatherNs(1, 1, bpr, back) != 0 {
		t.Fatal("single-rank coarse gather should cost 0")
	}
	// Degenerate root counts clamp instead of misbehaving.
	if f.CoarseGatherNs(8, 0, bpr, back) != f.CoarseGatherNs(8, 1, bpr, back) {
		t.Fatal("roots=0 must clamp to 1")
	}
	if f.CoarseGatherNs(8, 99, bpr, back) != f.CoarseGatherNs(8, 8, bpr, back) {
		t.Fatal("roots>ranks must clamp to ranks")
	}
}
