// Package perfmodel reproduces the analytic cost model behind Table I of
// the paper: per-element flop and byte counts for the four operator
// application strategies, a measured machine balance (STREAM-like triad
// bandwidth and floating-point throughput), and the roofline-predicted
// application time. Absolute numbers differ from the paper's Edison node;
// the *counts* and the resulting crossovers are machine independent.
package perfmodel

import (
	"sync"
	"time"
)

// OpCounts summarizes one operator variant's per-element cost.
type OpCounts struct {
	Name string
	// Flops per element per application.
	Flops float64
	// BytesPerfect / BytesPessimal bound the memory traffic per element
	// per application (perfect vs. no cache reuse of shared nodal data).
	BytesPerfect, BytesPessimal float64
}

// ArithmeticIntensity returns flops per byte at the given cache
// assumption (perfect=true ⇒ optimistic bytes).
func (c OpCounts) ArithmeticIntensity(perfect bool) float64 {
	b := c.BytesPessimal
	if perfect {
		b = c.BytesPerfect
	}
	if b == 0 {
		return 0
	}
	return c.Flops / b
}

// PaperTableI returns the paper's published per-element counts (Table I,
// Edison, 64-bit values with implicit column indices for the assembled
// case).
func PaperTableI() []OpCounts {
	return []OpCounts{
		{Name: "Assembled", Flops: 9216, BytesPerfect: 37248, BytesPessimal: 37248},
		{Name: "Matrix-free", Flops: 53622, BytesPerfect: 1008, BytesPessimal: 2376},
		{Name: "Tensor", Flops: 15228, BytesPerfect: 1008, BytesPessimal: 2376},
		{Name: "TensorC", Flops: 14214, BytesPerfect: 4920, BytesPessimal: 5832},
	}
}

// ReproCounts returns the analytic per-element counts of THIS
// implementation, derived from the kernels in internal/fem:
//
//   - Assembled: 2 flops per stored nonzero; 4608 nonzeros per element
//     (81×81 element blocks overlapped as in the paper); our CSR stores
//     8-byte values AND 8-byte column indices (64-bit indices, as the
//     paper also uses), so bytes are higher than the paper's
//     implicit-index accounting.
//   - MF: 27 quadrature points × (Jacobian 486 + inversion ~40 +
//     basis-gradient mapping 405 + velocity gradient 486 + stress 27 +
//     scatter 486) ≈ 52k flops; data = coordinates/state/residual
//     (81×8 B each) + η (27×8) + E_e (27×4, int32).
//   - Tensor: 24 1-D contractions × 405 flops + quadrature loop ≈ 14k.
//     (The slab-scheduled scatter adds boundary-node merge traffic on top
//     of these per-element counts — see SlabMergeBytes — but leaves the
//     per-element flop/byte counts themselves unchanged.)
//   - TensorC: 16 contractions + 27×~105-flop quadrature loop ≈ 9.5k
//     flops, plus 15 stored floats per quadrature point streamed in
//     (3240 B/element) — fewer flops than Tensor, more bytes, exactly the
//     trade the paper describes (our store keeps 15 scalars vs. the
//     paper's 21; see DESIGN.md).
func ReproCounts() []OpCounts {
	const (
		nodal   = 81 * 8.0 // one 27-node × 3-component field in bytes
		etaB    = 27 * 8.0
		emapB   = 27 * 4.0
		sharing = 3.375 // interior nodes are shared by up to 8 elements (27/8)
	)
	mfPerfect := 3*nodal/sharing + etaB + emapB
	mfPessimal := 3*nodal + etaB + emapB
	tcPerfect := 2*nodal/sharing + 15*27*8 + emapB
	tcPessimal := 2*nodal + 15*27*8 + emapB
	return []OpCounts{
		{Name: "Assembled", Flops: 2 * 4608, BytesPerfect: 4608 * 16, BytesPessimal: 4608 * 16},
		{Name: "Matrix-free", Flops: 52110, BytesPerfect: mfPerfect, BytesPessimal: mfPessimal},
		{Name: "Tensor", Flops: 14200, BytesPerfect: mfPerfect, BytesPessimal: mfPessimal},
		{Name: "TensorC", Flops: 9500, BytesPerfect: tcPerfect, BytesPessimal: tcPessimal},
	}
}

// ResidentCounts returns the per-element counts of the stored-coefficient
// resident operator (the TensorC kernel restructured for cache-blocked
// smoothing). The flop count is TensorC's; the byte count halves the
// dominant term — the 15 stored coefficients per quadrature point — when
// the coefficients are stored in float32 (3240 → 1620 B/element). Nodal
// state and output stay float64 on both paths (the global vectors are
// double), so only the coefficient stream narrows: this is the "f32
// bandwidth halving" the per-level auto-selection ranks against the f64
// representations.
func ResidentCounts(f32 bool) OpCounts {
	const (
		nodal = 81 * 8.0
		emapB = 27 * 4.0
	)
	coefB := 15 * 27 * 8.0
	name := "Resident"
	if f32 {
		coefB = 15 * 27 * 4.0
		name = "Resident32"
	}
	return OpCounts{
		Name:          name,
		Flops:         9500,
		BytesPerfect:  2*nodal/3.375 + coefB + emapB,
		BytesPessimal: 2*nodal + coefB + emapB,
	}
}

// SlabMergeBytes estimates the extra memory traffic of the slab-partitioned
// owner-computes scatter (internal/fem slab schedule) per operator
// application: every slab-boundary ("shared") node carries 3 components ×
// 8 B through roughly six passes — zeroing the overlap buffer, the
// accumulate read+write during element scatter, the merge-pass read, and
// the output read+write. Interior nodes cost nothing beyond the per-element
// counts in ReproCounts. The boundary fraction is O(S/nel^(1/3)), so this
// term matters only on small (coarse-level) grids — exactly where the
// auto-selector weighs matrix-free against assembled applies.
func SlabMergeBytes(sharedNodes int) float64 {
	return float64(sharedNodes) * 3 * 8 * 6
}

// Machine is a two-parameter roofline: sustainable memory bandwidth and
// floating-point throughput.
type Machine struct {
	StreamBW float64 // bytes/s
	FlopRate float64 // flops/s
}

// RooflineTime predicts one element application's time under the roofline
// model: max(flop time, memory time).
func (m Machine) RooflineTime(c OpCounts, perfectCache bool) float64 {
	b := c.BytesPessimal
	if perfectCache {
		b = c.BytesPerfect
	}
	tf := c.Flops / m.FlopRate
	tb := b / m.StreamBW
	if tf > tb {
		return tf
	}
	return tb
}

// MemoryBound reports whether the variant is limited by bandwidth on this
// machine (the paper's central observation: assembled SpMV is, the tensor
// kernel is not).
func (m Machine) MemoryBound(c OpCounts, perfectCache bool) bool {
	b := c.BytesPessimal
	if perfectCache {
		b = c.BytesPerfect
	}
	return b/m.StreamBW > c.Flops/m.FlopRate
}

// MeasureStream measures a STREAM-triad-like sustainable bandwidth
// (bytes/s) with arrays of n float64 (use n large enough to defeat the
// last-level cache; 1<<24 ≈ 400 MB of traffic per sweep).
func MeasureStream(n, reps int) float64 {
	if n < 1024 {
		n = 1024
	}
	if reps < 1 {
		reps = 3
	}
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range b {
		b[i] = 1
		c[i] = 2
	}
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		s := 3.0
		for i := 0; i < n; i++ {
			a[i] = b[i] + s*c[i]
		}
		el := time.Since(start).Seconds()
		// Triad moves 3 arrays of 8 bytes per element (2 reads + 1 write).
		if bw := float64(24*n) / el; bw > best {
			best = bw
		}
	}
	// Defeat dead-code elimination.
	sink = a[n/2]
	return best
}

var sink float64

// MeasureFlops measures a sustainable scalar FMA-chain throughput
// (flops/s). It underestimates SIMD peak — which is fine: the Go kernels
// it calibrates are scalar too.
func MeasureFlops(n, reps int) float64 {
	if n < 1024 {
		n = 1024
	}
	if reps < 1 {
		reps = 3
	}
	best := 0.0
	// Eight independent accumulator chains to expose ILP.
	for r := 0; r < reps; r++ {
		var a0, a1, a2, a3, a4, a5, a6, a7 = 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7
		x := 0.999999
		start := time.Now()
		for i := 0; i < n; i++ {
			a0 = a0*x + 0.0001
			a1 = a1*x + 0.0001
			a2 = a2*x + 0.0001
			a3 = a3*x + 0.0001
			a4 = a4*x + 0.0001
			a5 = a5*x + 0.0001
			a6 = a6*x + 0.0001
			a7 = a7*x + 0.0001
		}
		el := time.Since(start).Seconds()
		if fl := float64(16*n) / el; fl > best {
			best = fl
		}
		sink = a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
	}
	return best
}

// MeasureMachine runs both microbenchmarks with sensible sizes.
func MeasureMachine() Machine {
	return Machine{
		StreamBW: MeasureStream(1<<24, 3),
		FlopRate: MeasureFlops(1<<22, 3),
	}
}

var (
	calOnce sync.Once
	calMach Machine
)

// CalibratedMachine measures the machine balance once per process and
// returns the cached result on every subsequent call. The per-level
// operator auto-selection (internal/op) seeds its roofline ranking from
// this: calibration costs ~1 s, so repeating it on every preconditioner
// rebuild (one per nonlinear relinearization) would dwarf the cost it is
// trying to model.
func CalibratedMachine() Machine {
	calOnce.Do(func() {
		calMach = Machine{
			StreamBW: MeasureStream(1<<22, 2),
			FlopRate: MeasureFlops(1<<21, 2),
		}
	})
	return calMach
}

// AssemblySetupCounts estimates the one-time per-element cost of
// assembling the viscous block into CSR: the 27-point quadrature loop of
// ElementViscousMatrix (~27×27 basis pairs × ~20 flops per quadrature
// point) plus streaming the 81×81 element matrix out and scattering it
// into the ~4608 stored nonzeros (16 B value+index each, read-modify-
// write). Galerkin coarse construction (RAP) is charged the same order of
// magnitude — both are "assembled" setups whose cost must be amortized
// against the expected apply count when choosing a representation.
func AssemblySetupCounts() OpCounts {
	return OpCounts{
		Name:          "AssemblySetup",
		Flops:         27 * 27 * 27 * 20,
		BytesPerfect:  81*81*8 + 4608*32,
		BytesPessimal: 81*81*8 + 4608*32,
	}
}

// GhostNodes predicts the per-rank ghost-region size of the
// rank-distributed solve (paper §II-D): the number of Q2 nodes rank
// (pi,pj,pk) of a px×py×pz decomposition of an mx×my×mz element grid
// reads but does not own. It reproduces the comm.Layout ownership
// convention analytically — owned node range [2a+1, 2b+1) per axis
// (first part also owns [0,·)), read region [2a, 2·min(b+1,m)+1) — so
// the prediction matches the exchange lists exactly: ghost count =
// ext-box volume − owned-box volume.
func GhostNodes(mx, my, mz, px, py, pz, pi, pj, pk int) int {
	axis := func(m, p, i int) (owned, ext int) {
		a, b := i*m/p, (i+1)*m/p
		lo := 2*a + 1
		if a == 0 {
			lo = 0
		}
		owned = 2*b + 1 - lo
		ext = 2*min(b+1, m) + 1 - 2*a
		return
	}
	ox, ex := axis(mx, px, pi)
	oy, ey := axis(my, py, pj)
	oz, ez := axis(mz, pz, pk)
	return ex*ey*ez - ox*oy*oz
}

// MaxGhostNodes returns the worst per-rank ghost-region size over the
// whole rank grid — the load-balance-relevant number for the halo-bytes
// column of the scaling tables.
func MaxGhostNodes(mx, my, mz, px, py, pz int) int {
	worst := 0
	for pk := 0; pk < pz; pk++ {
		for pj := 0; pj < py; pj++ {
			for pi := 0; pi < px; pi++ {
				if g := GhostNodes(mx, my, mz, px, py, pz, pi, pj, pk); g > worst {
					worst = g
				}
			}
		}
	}
	return worst
}

// HaloExchangeBytes predicts the payload of one owner-broadcast halo
// exchange for a ghost region of the given node count: each ghost node
// carries an int32 node id plus three float64 velocity components. An
// owner-reduce apply (ReduceBroadcast) moves twice this volume —
// partials in, totals back.
func HaloExchangeBytes(ghostNodes int) float64 {
	return float64(ghostNodes) * (4 + 3*8)
}
