package fem

import "ptatin3d/internal/la"

// NewtonOp is the Newton-linearized viscous operator of paper §III-A.
// For an effective viscosity depending on the strain-rate second
// invariant, η = η̂(ε̇_II), the Newton linearization adds a rank-one
// anisotropic term to the Picard operator:
//
//	δτ = 2η·D(δu) + (η′/ε̇_II)·(D(u):D(δu))·D(u)
//
// This flattening term makes the coefficient tensor anisotropic and is
// hostile to multigrid smoothers, so — exactly as the paper prescribes —
// it is applied only inside the Krylov matvec; the preconditioner keeps
// the Picard operator. Setup data (the current strain-rate tensor and
// η′/ε̇_II per quadrature point) comes from StrainRateAtQP and the
// rheology's EffectiveViscosityDerivative.
type NewtonOp struct {
	Base *TensorOp
	// D6 holds the strain-rate of the current Newton state at quadrature
	// points (6·NQP·nel, order xx,yy,zz,xy,xz,yz).
	D6 []float64
	// Fac holds η′/ε̇_II per quadrature point (NQP·nel). Entries may be
	// negative (shear thinning / yielding: η′ < 0).
	Fac []float64
}

// NewNewton wraps base with the extra Newton term. d6 and fac must have
// been computed for the same state used to build base's Picard viscosity.
func NewNewton(base *TensorOp, d6, fac []float64) *NewtonOp {
	nel := base.P.DA.NElements()
	if len(d6) != 6*NQP*nel || len(fac) != NQP*nel {
		panic("fem: NewNewton array length mismatch")
	}
	return &NewtonOp{Base: base, D6: d6, Fac: fac}
}

// N returns the number of velocity dofs.
func (op *NewtonOp) N() int { return op.Base.N() }

// Apply computes y = (A_picard + A_newton)·u with symmetric Dirichlet
// elimination.
func (op *NewtonOp) Apply(u, y la.Vec) {
	p := op.Base.P
	p.slabApply(u, true, true, false, y, func(e int, ue, xe, ye *[81]float64, ks *kernScratch) {
		op.elementApply(e, ue, xe, p.Eta[NQP*e:NQP*e+NQP], ye, ks)
	})
	applyIdentityRows(p, u, y)
}

// elementApply is the tensor kernel plus the rank-one Newton term.
func (op *NewtonOp) elementApply(e int, ue, xe *[81]float64, eta []float64, ye *[81]float64, ks *kernScratch) {
	ug0, ug1, ug2 := &ks.ug0, &ks.ug1, &ks.ug2
	xg0, xg1, xg2 := &ks.xg0, &ks.xg1, &ks.xg2
	tensorGrads(ue, ug0, ug1, ug2, ks)
	tensorGrads(xe, xg0, xg1, xg2, ks)
	h0, h1, h2 := &ks.h0, &ks.h1, &ks.h2
	var jmat, jinv, inv, g, h [9]float64
	for q := 0; q < NQP; q++ {
		for m := 0; m < 3; m++ {
			jmat[m] = xg0[q*3+m]
			jmat[3+m] = xg1[q*3+m]
			jmat[6+m] = xg2[q*3+m]
		}
		detJ := la.Invert3(&jmat, &inv)
		jinv[0], jinv[1], jinv[2] = inv[0], inv[3], inv[6]
		jinv[3], jinv[4], jinv[5] = inv[1], inv[4], inv[7]
		jinv[6], jinv[7], jinv[8] = inv[2], inv[5], inv[8]
		for a := 0; a < 3; a++ {
			g[a*3] = ug0[q*3+a]
			g[a*3+1] = ug1[q*3+a]
			g[a*3+2] = ug2[q*3+a]
		}
		w := W3[q] * detJ
		// Physical gradient and symmetric part of the perturbation.
		var gp [9]float64
		for a := 0; a < 3; a++ {
			for m := 0; m < 3; m++ {
				gp[a*3+m] = g[a*3]*jinv[m] + g[a*3+1]*jinv[3+m] + g[a*3+2]*jinv[6+m]
			}
		}
		ddxx := gp[0]
		ddyy := gp[4]
		ddzz := gp[8]
		ddxy := 0.5 * (gp[1] + gp[3])
		ddxz := 0.5 * (gp[2] + gp[6])
		ddyz := 0.5 * (gp[5] + gp[7])
		// Picard stress 2η·D(δu), scaled by w.
		s := eta[q] * w
		var sm [9]float64
		for a := 0; a < 3; a++ {
			for m := 0; m < 3; m++ {
				sm[a*3+m] = s * (gp[a*3+m] + gp[m*3+a])
			}
		}
		// Newton term: (η′/ε̇)·(D:D(δu))·D, scaled by w.
		o := 6 * (NQP*e + q)
		d := op.D6[o : o+6]
		ddot := d[0]*ddxx + d[1]*ddyy + d[2]*ddzz + 2*(d[3]*ddxy+d[4]*ddxz+d[5]*ddyz)
		c := op.Fac[NQP*e+q] * ddot * w
		sm[0] += c * d[0]
		sm[4] += c * d[1]
		sm[8] += c * d[2]
		sm[1] += c * d[3]
		sm[3] += c * d[3]
		sm[2] += c * d[4]
		sm[6] += c * d[4]
		sm[5] += c * d[5]
		sm[7] += c * d[5]
		// Back to reference cotangents.
		for a := 0; a < 3; a++ {
			for dd := 0; dd < 3; dd++ {
				h[a*3+dd] = jinv[dd*3]*sm[a*3] + jinv[dd*3+1]*sm[a*3+1] + jinv[dd*3+2]*sm[a*3+2]
			}
		}
		for a := 0; a < 3; a++ {
			h0[q*3+a] = h[a*3]
			h1[q*3+a] = h[a*3+1]
			h2[q*3+a] = h[a*3+2]
		}
	}
	tensorScatterWrite(h0, h1, h2, ye, ks)
}
