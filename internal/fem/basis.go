// Package fem implements the mixed Q2–P1(disc) finite element
// discretization of the heterogeneous Stokes problem (paper §II-B) and the
// four implementations of viscous-block operator application compared in
// Table I of the paper:
//
//   - Assembled: classical CSR SpMV on the assembled matrix;
//   - MF:        reference (non-tensor) matrix-free element kernel;
//   - Tensor:    matrix-free kernel exploiting the tensor-product structure
//     of the Q2 basis (the paper's headline contribution, §III-D);
//   - TensorC:   tensor kernel with the combined metric+coefficient tensor
//     precomputed and stored at quadrature points.
//
// The velocity space is Q2 (27 nodes per hexahedral element, 3 components);
// the pressure space is P1 discontinuous with the basis defined in physical
// (x,y,z) coordinates, which preserves optimal accuracy on deformed meshes
// and local (element-wise) mass conservation (paper §II-B).
package fem

import "math"

// NQP is the number of quadrature points per element (3×3×3 Gauss).
const NQP = 27

// NodesPerEl is the number of Q2 velocity nodes per element.
const NodesPerEl = 27

// PresPerEl is the number of P1disc pressure basis functions per element.
const PresPerEl = 4

// gauss3 holds the 3-point Gauss–Legendre rule on [-1,1].
var gauss3 = [3]float64{-math.Sqrt2 * 0, 0, 0} // replaced in init
var gaussW = [3]float64{5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0}

// B1 and D1 are the one-dimensional Q2 basis evaluation and derivative
// matrices at the Gauss points: B1[q][i] = N_i(g_q), D1[q][i] = N'_i(g_q).
// These are the B̂ and D̂ of paper §III-D; the 3-D reference gradient
// operator factors as D̂⊗B̂⊗B̂ etc.
var B1, D1 [3][3]float64

// W3 holds the 27 tensor-product quadrature weights, ordered with the
// x-index fastest: q = (qk*3+qj)*3+qi.
var W3 [NQP]float64

// N27 is the full Q2 basis tabulation: N27[q][n] = N_n(ξ_q).
var N27 [NQP][NodesPerEl]float64

// G27 is the full Q2 reference-gradient tabulation:
// G27[q][n][d] = ∂N_n/∂ξ_d (ξ_q). This is the explicit 81×27 reference
// derivative matrix D̂ξ of the paper's non-tensor matrix-free kernel.
var G27 [NQP][NodesPerEl][3]float64

// q2Shape1D evaluates the three 1-D quadratic basis functions (nodes at
// ξ = -1, 0, +1) and their derivatives at ξ.
func q2Shape1D(xi float64) (n, d [3]float64) {
	n[0] = 0.5 * xi * (xi - 1)
	n[1] = 1 - xi*xi
	n[2] = 0.5 * xi * (xi + 1)
	d[0] = xi - 0.5
	d[1] = -2 * xi
	d[2] = xi + 0.5
	return
}

// q1Shape1D evaluates the two 1-D linear basis functions (nodes at ξ = ±1)
// and their derivatives at ξ.
func q1Shape1D(xi float64) (n, d [2]float64) {
	n[0] = 0.5 * (1 - xi)
	n[1] = 0.5 * (1 + xi)
	d[0] = -0.5
	d[1] = 0.5
	return
}

func init() {
	g := math.Sqrt(3.0 / 5.0)
	gauss3 = [3]float64{-g, 0, g}
	for q := 0; q < 3; q++ {
		n, d := q2Shape1D(gauss3[q])
		B1[q] = n
		D1[q] = d
	}
	for qk := 0; qk < 3; qk++ {
		for qj := 0; qj < 3; qj++ {
			for qi := 0; qi < 3; qi++ {
				q := (qk*3+qj)*3 + qi
				W3[q] = gaussW[qi] * gaussW[qj] * gaussW[qk]
				for nk := 0; nk < 3; nk++ {
					for nj := 0; nj < 3; nj++ {
						for ni := 0; ni < 3; ni++ {
							n := (nk*3+nj)*3 + ni
							N27[q][n] = B1[qi][ni] * B1[qj][nj] * B1[qk][nk]
							G27[q][n][0] = D1[qi][ni] * B1[qj][nj] * B1[qk][nk]
							G27[q][n][1] = B1[qi][ni] * D1[qj][nj] * B1[qk][nk]
							G27[q][n][2] = B1[qi][ni] * B1[qj][nj] * D1[qk][nk]
						}
					}
				}
			}
		}
	}
}

// Q2Eval evaluates the 27 Q2 basis functions at an arbitrary reference
// point (xi,eta,zeta) ∈ [-1,1]³. Used for material-point interpolation.
func Q2Eval(xi, eta, zeta float64, n *[NodesPerEl]float64) {
	nx, _ := q2Shape1D(xi)
	ny, _ := q2Shape1D(eta)
	nz, _ := q2Shape1D(zeta)
	for k := 0; k < 3; k++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 3; i++ {
				n[(k*3+j)*3+i] = nx[i] * ny[j] * nz[k]
			}
		}
	}
}

// Q2EvalGrad evaluates the Q2 basis and its reference gradient at an
// arbitrary reference point.
func Q2EvalGrad(xi, eta, zeta float64, n *[NodesPerEl]float64, g *[NodesPerEl][3]float64) {
	nx, dx := q2Shape1D(xi)
	ny, dy := q2Shape1D(eta)
	nz, dz := q2Shape1D(zeta)
	for k := 0; k < 3; k++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 3; i++ {
				l := (k*3+j)*3 + i
				n[l] = nx[i] * ny[j] * nz[k]
				g[l][0] = dx[i] * ny[j] * nz[k]
				g[l][1] = nx[i] * dy[j] * nz[k]
				g[l][2] = nx[i] * ny[j] * dz[k]
			}
		}
	}
}

// Q1Eval evaluates the 8 trilinear (Q1) basis functions at a reference
// point, ordered with i fastest: l = (k*2+j)*2+i. The Q1 space lives on
// the corner vertices of the Q2 element and is used for material-point
// projection (paper Eq. 12–13) and for the embedded-Q1 multigrid
// interpolation (paper §III-C).
func Q1Eval(xi, eta, zeta float64, n *[8]float64) {
	nx, _ := q1Shape1D(xi)
	ny, _ := q1Shape1D(eta)
	nz, _ := q1Shape1D(zeta)
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				n[(k*2+j)*2+i] = nx[i] * ny[j] * nz[k]
			}
		}
	}
}

// Q1EvalGrad evaluates the Q1 basis and reference gradients.
func Q1EvalGrad(xi, eta, zeta float64, n *[8]float64, g *[8][3]float64) {
	nx, dx := q1Shape1D(xi)
	ny, dy := q1Shape1D(eta)
	nz, dz := q1Shape1D(zeta)
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				l := (k*2+j)*2 + i
				n[l] = nx[i] * ny[j] * nz[k]
				g[l][0] = dx[i] * ny[j] * nz[k]
				g[l][1] = nx[i] * dy[j] * nz[k]
				g[l][2] = nx[i] * ny[j] * dz[k]
			}
		}
	}
}

// CornerLocal maps the 8 Q1 corner indices to the corresponding local Q2
// node indices (corners of the 3×3×3 node block).
var CornerLocal = [8]int{
	(0*3+0)*3 + 0, (0*3+0)*3 + 2, (0*3+2)*3 + 0, (0*3+2)*3 + 2,
	(2*3+0)*3 + 0, (2*3+0)*3 + 2, (2*3+2)*3 + 0, (2*3+2)*3 + 2,
}

// QPRef holds the reference coordinates of the 27 quadrature points.
var QPRef [NQP][3]float64

// N27Q1 tabulates the Q1 corner basis at the 27 quadrature points:
// N27Q1[q][c] = Q1_c(ξ_q). Used to interpolate projected nodal coefficient
// fields (viscosity, density) to quadrature points (paper Eq. 13).
var N27Q1 [NQP][8]float64

func init() {
	for qk := 0; qk < 3; qk++ {
		for qj := 0; qj < 3; qj++ {
			for qi := 0; qi < 3; qi++ {
				q := (qk*3+qj)*3 + qi
				QPRef[q] = [3]float64{gauss3[qi], gauss3[qj], gauss3[qk]}
				var n [8]float64
				Q1Eval(gauss3[qi], gauss3[qj], gauss3[qk], &n)
				N27Q1[q] = n
			}
		}
	}
}
