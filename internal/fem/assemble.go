package fem

import (
	"ptatin3d/internal/la"
	"ptatin3d/internal/par"
)

// ElementViscousMatrix computes the 81×81 element stiffness matrix of the
// viscous block, A[(i,a)][(n,b)] = Σ_q η·w·detJ·(δ_ab ∇N_i·∇N_n +
// ∂N_i/∂x_b · ∂N_n/∂x_a), into ae (row-major, zeroed first).
func ElementViscousMatrix(xe *[81]float64, eta []float64, ae []float64) {
	for i := range ae {
		ae[i] = 0
	}
	var jinv [9]float64
	for q := 0; q < NQP; q++ {
		detJ := jacobianAt(xe, q, &jinv)
		s := eta[q] * W3[q] * detJ
		var gn [27][3]float64
		gq := &G27[q]
		for n := 0; n < 27; n++ {
			g0, g1, g2 := gq[n][0], gq[n][1], gq[n][2]
			gn[n][0] = g0*jinv[0] + g1*jinv[3] + g2*jinv[6]
			gn[n][1] = g0*jinv[1] + g1*jinv[4] + g2*jinv[7]
			gn[n][2] = g0*jinv[2] + g1*jinv[5] + g2*jinv[8]
		}
		for i := 0; i < 27; i++ {
			gi := &gn[i]
			for n := 0; n < 27; n++ {
				gnn := &gn[n]
				dot := s * (gi[0]*gnn[0] + gi[1]*gnn[1] + gi[2]*gnn[2])
				base := (3 * i) * 81
				for a := 0; a < 3; a++ {
					row := base + a*81 + 3*n
					ga := s * gnn[a] // s·∂N_n/∂x_a
					ae[row] += ga * gi[0]
					ae[row+1] += ga * gi[1]
					ae[row+2] += ga * gi[2]
					ae[row+a] += dot
				}
			}
		}
	}
}

// vpattern describes the structured sparsity of a Q2 velocity-block row:
// for each grid node the coupled nodes form a dense box in index space.
type vpattern struct {
	ilo, ihi, jlo, jhi, klo, khi int
}

// nodePattern returns the coupled-node box of Q2 grid node (i,j,k):
// the union of nodes of all elements containing the node.
func nodePattern(p *Problem, i, j, k int) vpattern {
	da := p.DA
	rng := func(idx, m int) (lo, hi int) {
		if idx%2 == 1 {
			e := (idx - 1) / 2
			return 2 * e, 2*e + 2
		}
		elo, ehi := idx/2-1, idx/2
		if elo < 0 {
			elo = 0
		}
		if ehi > m-1 {
			ehi = m - 1
		}
		return 2 * elo, 2*ehi + 2
	}
	var v vpattern
	v.ilo, v.ihi = rng(i, da.Mx)
	v.jlo, v.jhi = rng(j, da.My)
	v.klo, v.khi = rng(k, da.Mz)
	return v
}

// ViscousAssembly caches the analytic sparsity of the viscous block so
// the numeric values can be refreshed in place per relinearization: the
// pattern (RowPtr/ColInd and the per-node coupled boxes) depends only on
// the structured topology and the constraint mask, while the values
// depend on the per-step coefficients and coordinates. Rebuilding only
// the values is what makes per-step assembled levels cheap in the time
// loop.
type ViscousAssembly struct {
	p    *Problem
	pats []vpattern
	// A is the assembled matrix; Refresh overwrites A.Val in place.
	A *la.CSR
}

// NewViscousAssembly derives the sparsity (paper §III-D: rows have
// between 81 and 375 nonzeros, analytically from the structured
// topology — no intermediate hash maps) and leaves the values zero.
func NewViscousAssembly(p *Problem) *ViscousAssembly {
	da := p.DA
	nn := da.NNodes()
	ndof := 3 * nn
	a := &la.CSR{NRows: ndof, NCols: ndof}
	a.RowPtr = make([]int, ndof+1)
	pats := make([]vpattern, nn)
	for n := 0; n < nn; n++ {
		i, j, k := da.NodeIJK(n)
		pats[n] = nodePattern(p, i, j, k)
		v := &pats[n]
		cnt := 3 * (v.ihi - v.ilo + 1) * (v.jhi - v.jlo + 1) * (v.khi - v.klo + 1)
		for c := 0; c < 3; c++ {
			a.RowPtr[3*n+c+1] = cnt
		}
	}
	for r := 0; r < ndof; r++ {
		a.RowPtr[r+1] += a.RowPtr[r]
	}
	a.ColInd = make([]int, a.RowPtr[ndof])
	a.Val = make([]float64, a.RowPtr[ndof])
	// Fill sorted column indices (same box for the 3 component rows).
	par.ForItems(p.Workers, nn, func(n int) { // setup-only: not a hot path
		v := &pats[n]
		pos := a.RowPtr[3*n]
		row := a.ColInd[pos : pos+(a.RowPtr[3*n+1]-a.RowPtr[3*n])]
		t := 0
		for kk := v.klo; kk <= v.khi; kk++ {
			for jj := v.jlo; jj <= v.jhi; jj++ {
				for ii := v.ilo; ii <= v.ihi; ii++ {
					cn := 3 * da.NodeID(ii, jj, kk)
					row[t] = cn
					row[t+1] = cn + 1
					row[t+2] = cn + 2
					t += 3
				}
			}
		}
		copy(a.ColInd[a.RowPtr[3*n+1]:a.RowPtr[3*n+2]], row)
		copy(a.ColInd[a.RowPtr[3*n+2]:a.RowPtr[3*n+3]], row)
	})
	return &ViscousAssembly{p: p, pats: pats, A: a}
}

// Refresh recomputes the values from the problem's current coefficients
// and coordinates into the cached sparsity. The colored element schedule
// touches each stored entry in a fixed per-color order, so the result is
// bit-identical at any worker count and to a from-scratch assembly.
func (va *ViscousAssembly) Refresh() {
	p, a, pats := va.p, va.A, va.pats
	da := p.DA
	mask := p.BC.Mask
	for i := range a.Val {
		a.Val[i] = 0
	}
	// Numeric pass: colored element loop scatter-adds element matrices.
	// The element matrix scratch is per chunk, not per element.
	p.forEachElementColoredChunk(func(elems []int32) {
		var xe [81]float64
		ae := make([]float64, 81*81)
		for _, e32 := range elems {
			e := int(e32)
			p.gatherCoords(e, &xe)
			ElementViscousMatrix(&xe, p.Eta[NQP*e:NQP*e+NQP], ae)
			em := p.Emap[27*e : 27*e+27]
			for li := 0; li < 27; li++ {
				ni := int(em[li])
				v := &pats[ni]
				nxc := v.ihi - v.ilo + 1
				nyc := v.jhi - v.jlo + 1
				for a2 := 0; a2 < 3; a2++ {
					r := 3*ni + a2
					if mask[r] {
						continue
					}
					base := a.RowPtr[r]
					arow := ae[(3*li+a2)*81:]
					for ln := 0; ln < 27; ln++ {
						nj := int(em[ln])
						ci, cj, ck := da.NodeIJK(nj)
						off := base + (((ck-v.klo)*nyc+(cj-v.jlo))*nxc+(ci-v.ilo))*3
						for b := 0; b < 3; b++ {
							if mask[3*nj+b] {
								continue
							}
							a.Val[off+b] += arow[3*ln+b]
						}
					}
				}
			}
		}
	})
	// Unit diagonal on constrained rows.
	ndof := a.NRows
	for r := 0; r < ndof; r++ {
		if !mask[r] {
			continue
		}
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if a.ColInd[k] == r {
				a.Val[k] = 1
				break
			}
		}
	}
}

// AssembleViscous assembles the viscous block into a CSR matrix with
// symmetric Dirichlet elimination (constrained rows/columns removed, unit
// diagonal on constrained rows).
func AssembleViscous(p *Problem) *la.CSR {
	va := NewViscousAssembly(p)
	va.Refresh()
	return va.A
}

// AsmOp wraps an assembled CSR viscous block as an Operator, applying the
// SpMV row-parallel ("Asmb" in Tables I–III).
type AsmOp struct {
	A       *la.CSR
	Workers int
}

// NewAsm assembles the viscous block of p and wraps it.
func NewAsm(p *Problem) *AsmOp {
	return &AsmOp{A: AssembleViscous(p), Workers: p.Workers}
}

// N returns the number of velocity dofs.
func (op *AsmOp) N() int { return op.A.NRows }

// Apply computes y = A·u via the shared row-parallel SpMV.
func (op *AsmOp) Apply(u, y la.Vec) {
	op.A.MulVecPar(u, y, op.Workers)
}

// Diagonal computes the diagonal of the viscous block matrix-free:
// d[(i,a)] = Σ_q η·w·detJ·(|∇N_i|² + (∂N_i/∂x_a)²), with 1 on constrained
// rows. It feeds the Jacobi-preconditioned Chebyshev smoother without ever
// assembling the operator.
func Diagonal(p *Problem, d la.Vec) {
	if len(d) != p.DA.NVelDOF() {
		panic("fem: Diagonal length mismatch")
	}
	p.slabApply(nil, false, true, false, d, func(e int, _, xe, de *[81]float64, _ *kernScratch) {
		eta := p.Eta[NQP*e : NQP*e+NQP]
		*de = [81]float64{}
		var jinv [9]float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(xe, q, &jinv)
			s := eta[q] * W3[q] * detJ
			gq := &G27[q]
			for n := 0; n < 27; n++ {
				g0, g1, g2 := gq[n][0], gq[n][1], gq[n][2]
				px := g0*jinv[0] + g1*jinv[3] + g2*jinv[6]
				py := g0*jinv[1] + g1*jinv[4] + g2*jinv[7]
				pz := g0*jinv[2] + g1*jinv[5] + g2*jinv[8]
				norm := px*px + py*py + pz*pz
				de[3*n] += s * (norm + px*px)
				de[3*n+1] += s * (norm + py*py)
				de[3*n+2] += s * (norm + pz*pz)
			}
		}
	})
	for r, m := range p.BC.Mask {
		if m {
			d[r] = 1
		}
	}
}
