package fem

import (
	"math"

	"ptatin3d/internal/la"
)

// MomentumRHSFunc computes the load vector of a pointwise body-force
// density, b_i = ∫ f·N_i dV, with f evaluated at the physical quadrature
// points. This is the manufactured-solution companion of MomentumRHS
// (which hard-wires f = ρ·g); constrained rows are zeroed identically.
func MomentumRHSFunc(p *Problem, f func(x, y, z float64) (fx, fy, fz float64), b la.Vec) {
	if len(b) != p.DA.NVelDOF() {
		panic("fem: MomentumRHSFunc length mismatch")
	}
	p.slabApply(nil, false, true, false, b, func(e int, _, xe, be *[81]float64, _ *kernScratch) {
		*be = [81]float64{}
		var jinv [9]float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(xe, q, &jinv)
			var x, y, z float64
			for n := 0; n < 27; n++ {
				nn := N27[q][n]
				x += nn * xe[3*n]
				y += nn * xe[3*n+1]
				z += nn * xe[3*n+2]
			}
			fx, fy, fz := f(x, y, z)
			w := W3[q] * detJ
			for n := 0; n < 27; n++ {
				s := N27[q][n] * w
				be[3*n] += s * fx
				be[3*n+1] += s * fy
				be[3*n+2] += s * fz
			}
		}
	})
}

// VelocityL2Error returns ‖u_h − u*‖_L2 over the mesh by quadrature,
// where u holds the Q2 velocity field (boundary values included) and
// exact evaluates the manufactured solution at physical coordinates.
func VelocityL2Error(p *Problem, u la.Vec, exact func(x, y, z float64) (ux, uy, uz float64)) float64 {
	errs := make([]float64, p.DA.NElements())
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		em := p.Emap[27*e : 27*e+27]
		var jinv [9]float64
		var s float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(&xe, q, &jinv)
			var x, y, z, uh, vh, wh float64
			for n := 0; n < 27; n++ {
				nn := N27[q][n]
				x += nn * xe[3*n]
				y += nn * xe[3*n+1]
				z += nn * xe[3*n+2]
				d := 3 * int(em[n])
				uh += nn * u[d]
				vh += nn * u[d+1]
				wh += nn * u[d+2]
			}
			ux, uy, uz := exact(x, y, z)
			dx, dy, dz := uh-ux, vh-uy, wh-uz
			s += W3[q] * detJ * (dx*dx + dy*dy + dz*dz)
		}
		errs[e] = s
	})
	var total float64
	for _, v := range errs {
		total += v
	}
	return math.Sqrt(total)
}

// PressureL2Error returns min_c ‖p_h − p* − c‖_L2 — the pressure error
// modulo the constant nullspace left by an all-Dirichlet velocity
// boundary. pv holds the P1disc coefficients (4 per element, physical
// basis) and exact the manufactured pressure.
func PressureL2Error(p *Problem, pv la.Vec, exact func(x, y, z float64) float64) float64 {
	nel := p.DA.NElements()
	// Pass 1: volume-weighted mean of (p_h − p*), per element.
	type acc struct{ diff, vol float64 }
	accs := make([]acc, nel)
	eval := func(e int, xe *[81]float64, q int, jinv *[9]float64, ctr, hinv *[3]float64) (d, w float64) {
		detJ := jacobianAt(xe, q, jinv)
		var x, y, z float64
		for n := 0; n < 27; n++ {
			nn := N27[q][n]
			x += nn * xe[3*n]
			y += nn * xe[3*n+1]
			z += nn * xe[3*n+2]
		}
		var psi [4]float64
		pressureBasisAt(x, y, z, ctr, hinv, &psi)
		ph := pv[4*e]*psi[0] + pv[4*e+1]*psi[1] + pv[4*e+2]*psi[2] + pv[4*e+3]*psi[3]
		return ph - exact(x, y, z), W3[q] * detJ
	}
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		var ctr, hinv [3]float64
		elemCenterScale(&xe, &ctr, &hinv)
		var jinv [9]float64
		for q := 0; q < NQP; q++ {
			d, w := eval(e, &xe, q, &jinv, &ctr, &hinv)
			accs[e].diff += w * d
			accs[e].vol += w
		}
	})
	var meanDiff, vol float64
	for _, a := range accs {
		meanDiff += a.diff
		vol += a.vol
	}
	meanDiff /= vol
	// Pass 2: L2 norm of the mean-shifted difference.
	errs := make([]float64, nel)
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		var ctr, hinv [3]float64
		elemCenterScale(&xe, &ctr, &hinv)
		var jinv [9]float64
		var s float64
		for q := 0; q < NQP; q++ {
			d, w := eval(e, &xe, q, &jinv, &ctr, &hinv)
			d -= meanDiff
			s += w * d * d
		}
		errs[e] = s
	})
	var total float64
	for _, v := range errs {
		total += v
	}
	return math.Sqrt(total)
}
