package fem

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
)

// TestResidentMatchesTensor: the resident operator (both precisions) must
// reproduce the tensor-product reference apply — float64 to roundoff
// (same 15-float coefficient factorization as TensorCOp, different only
// in summation bookkeeping), float32 to single-precision accuracy.
func TestResidentMatchesTensor(t *testing.T) {
	grids := [][3]int{{3, 2, 2}, {4, 4, 4}, {6, 3, 5}}
	for _, g := range grids {
		p := testProblem(t, g[0], g[1], g[2], 1)
		randomizeEta(p, int64(11*g[0]+g[2]))
		rng := rand.New(rand.NewSource(17))
		n := p.DA.NVelDOF()
		u := randVelocity(rng, n)

		ref := la.NewVec(n)
		NewTensor(p).Apply(u, ref)
		scale := ref.NormInf()

		y64 := la.NewVec(n)
		NewResident(p, false).Apply(u, y64)
		for i := 0; i < n; i++ {
			if math.Abs(y64[i]-ref[i]) > 1e-12*scale {
				t.Fatalf("grid %v: f64 resident vs tensor at dof %d: %v vs %v", g, i, y64[i], ref[i])
			}
		}

		y32 := la.NewVec(n)
		NewResident(p, true).Apply(u, y32)
		for i := 0; i < n; i++ {
			if math.Abs(y32[i]-ref[i]) > 2e-4*scale {
				t.Fatalf("grid %v: f32 resident vs tensor at dof %d: %v vs %v (|Δ|=%.3e, scale %.3e)",
					g, i, y32[i], ref[i], math.Abs(y32[i]-ref[i]), scale)
			}
		}
	}
}

// TestResidentDeterminism: like the slab apply, the resident apply must
// be bit-identical across worker counts at both precisions — the block
// partition, in-block element order and ascending-slab merge are all
// worker-count independent.
func TestResidentDeterminism(t *testing.T) {
	p := testProblem(t, 5, 4, 3, 1)
	randomizeEta(p, 23)
	rng := rand.New(rand.NewSource(5))
	n := p.DA.NVelDOF()
	u := randVelocity(rng, n)

	for _, f32 := range []bool{false, true} {
		op := NewResident(p, f32)
		p.Workers = 1
		ref := la.NewVec(n)
		op.Apply(u, ref)
		for _, w := range []int{2, 4, 8} {
			p.Workers = w
			y := la.NewVec(n)
			op.Apply(u, y)
			for i := 0; i < n; i++ {
				if y[i] != ref[i] {
					t.Fatalf("f32=%v workers=%d: dof %d differs bitwise: %x vs %x",
						f32, w, i, math.Float64bits(y[i]), math.Float64bits(ref[i]))
				}
			}
		}
	}
	p.Workers = 1
}

// TestBlockedChebyshevBitIdentical is the smoother property test of the
// blocking change: k cache-blocked wavefront sweeps must equal k
// unblocked Chebyshev sweeps over the same resident operator BITWISE —
// for any worker count, step count, zero and nonzero initial guesses, and
// both precisions. The unblocked reference runs with NoFinalResidual so
// both sides perform the same operator applications.
func TestBlockedChebyshevBitIdentical(t *testing.T) {
	grids := [][3]int{{4, 3, 3}, {6, 3, 5}}
	for _, g := range grids {
		p := testProblem(t, g[0], g[1], g[2], 1)
		randomizeEta(p, int64(3*g[0]+g[1]))
		n := p.DA.NVelDOF()
		diag := la.NewVec(n)
		Diagonal(p, diag)
		jac := krylov.NewJacobi(diag)

		for _, f32 := range []bool{false, true} {
			op := NewResident(p, f32)
			lmax := krylov.EstimateLambdaMax(op, jac, 10)
			for _, steps := range []int{1, 2, 3, 4} {
				rng := rand.New(rand.NewSource(int64(100*steps + g[2])))
				b := randVelocity(rng, n)
				x0 := randVelocity(rng, n)

				for _, zeroGuess := range []bool{true, false} {
					p.Workers = 1
					ref := la.NewVec(n)
					if !zeroGuess {
						ref.Copy(x0)
					}
					cheb := krylov.NewChebyshev(op, jac, lmax, steps)
					cheb.NoFinalResidual = true
					cheb.Smooth(b, ref, zeroGuess)

					for _, w := range []int{1, 2, 4, 8} {
						p.Workers = w
						x := la.NewVec(n)
						if !zeroGuess {
							x.Copy(x0)
						}
						bl := NewBlockedChebyshev(op, jac.InvDiag, lmax, steps)
						bl.Smooth(b, x, zeroGuess)
						for i := 0; i < n; i++ {
							if x[i] != ref[i] {
								t.Fatalf("grid %v f32=%v steps=%d zeroGuess=%v workers=%d: dof %d differs bitwise: %x vs %x (Δ=%.3e)",
									g, f32, steps, zeroGuess, w, i,
									math.Float64bits(x[i]), math.Float64bits(ref[i]), x[i]-ref[i])
							}
						}
					}
				}
			}
		}
		p.Workers = 1
	}
}

// TestChebyshevNoFinalResidualSameX: eliding the final operator apply
// must not change the smoothed iterate — the elided work only feeds a
// residual no further step consumes.
func TestChebyshevNoFinalResidualSameX(t *testing.T) {
	p := testProblem(t, 4, 3, 3, 1)
	randomizeEta(p, 77)
	n := p.DA.NVelDOF()
	diag := la.NewVec(n)
	Diagonal(p, diag)
	jac := krylov.NewJacobi(diag)
	op := NewResident(p, false)
	lmax := krylov.EstimateLambdaMax(op, jac, 10)

	rng := rand.New(rand.NewSource(8))
	b := randVelocity(rng, n)
	for _, zeroGuess := range []bool{true, false} {
		x0 := randVelocity(rng, n)
		full := la.NewVec(n)
		elided := la.NewVec(n)
		if !zeroGuess {
			full.Copy(x0)
			elided.Copy(x0)
		}
		cheb := krylov.NewChebyshev(op, jac, lmax, 3)
		cheb.Smooth(b, full, zeroGuess)
		cheb2 := krylov.NewChebyshev(op, jac, lmax, 3)
		cheb2.NoFinalResidual = true
		cheb2.Smooth(b, elided, zeroGuess)
		for i := 0; i < n; i++ {
			if full[i] != elided[i] {
				t.Fatalf("zeroGuess=%v: dof %d differs: %v vs %v", zeroGuess, i, full[i], elided[i])
			}
		}
	}
}

// TestResidentApplyElements: summing the per-element partial applies over
// any partition of the element range plus identity rows must equal the
// full resident apply (the distributed halo path builds on this).
func TestResidentApplyElements(t *testing.T) {
	p := testProblem(t, 4, 4, 3, 1)
	randomizeEta(p, 13)
	rng := rand.New(rand.NewSource(2))
	n := p.DA.NVelDOF()
	u := randVelocity(rng, n)
	nel := p.DA.NElements()

	for _, f32 := range []bool{false, true} {
		op := NewResident(p, f32)
		ref := la.NewVec(n)
		op.Apply(u, ref)
		scale := ref.NormInf()

		half := nel / 2
		lo := make([]int, 0, half)
		hi := make([]int, 0, nel-half)
		for e := 0; e < nel; e++ {
			if e < half {
				lo = append(lo, e)
			} else {
				hi = append(hi, e)
			}
		}
		y := la.NewVec(n)
		op.ApplyElements(lo, u, y)
		op.ApplyElements(hi, u, y)
		applyIdentityRows(p, u, y)
		for i := 0; i < n; i++ {
			if math.Abs(y[i]-ref[i]) > 1e-13*scale {
				t.Fatalf("f32=%v: partial-apply sum differs at dof %d: %v vs %v", f32, i, y[i], ref[i])
			}
		}
	}
}
