package fem

import (
	"ptatin3d/internal/la"
)

// Coupling holds the precomputed element gradient blocks G_e of the mixed
// discretization. G maps pressure to momentum (the J_up block), and the
// divergence block is its transpose: J_pu = Gᵀ (paper Eq. 14). Because the
// P1disc pressure space is element-local, G_e blocks never overlap in the
// pressure index and can be stored densely per element: 81×4 floats.
//
// The pressure basis is defined in *physical* coordinates (paper §II-B):
// ψ₀ = 1, ψ₁ = (x-x_c)/h_x, ψ₂ = (y-y_c)/h_y, ψ₃ = (z-z_c)/h_z, where x_c
// is the element centre (the coordinate of the mid-node) and h the
// half-extent, preserving optimal convergence on deformed meshes.
type Coupling struct {
	P  *Problem
	Ge []float64 // 324 per element: Ge[(3n+a)*4+m]

	// Mapped switches the pressure basis to the reference ("mapped")
	// coordinate system, ψ = {1, ξ, η, ζ} — the alternative the paper
	// explicitly rejects because it loses optimal accuracy on deformed
	// meshes (§II-B). Exposed for the ablation study only.
	Mapped bool
}

// pressureBasisAt evaluates the four P1disc basis functions at the
// physical point (x,y,z) of element e, given the element centre and
// half-extents.
func pressureBasisAt(x, y, z float64, ctr, hinv *[3]float64, psi *[4]float64) {
	psi[0] = 1
	psi[1] = (x - ctr[0]) * hinv[0]
	psi[2] = (y - ctr[1]) * hinv[1]
	psi[3] = (z - ctr[2]) * hinv[2]
}

// elemCenterScale computes the element centre (mid-node coordinates) and
// inverse half-extents from the element coordinates.
func elemCenterScale(xe *[81]float64, ctr, hinv *[3]float64) {
	// Mid node has local index 13 = (1*3+1)*3+1.
	ctr[0], ctr[1], ctr[2] = xe[3*13], xe[3*13+1], xe[3*13+2]
	for c := 0; c < 3; c++ {
		min, max := xe[c], xe[c]
		for n := 1; n < 27; n++ {
			v := xe[3*n+c]
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		h := 0.5 * (max - min)
		if h == 0 {
			h = 1
		}
		hinv[c] = 1 / h
	}
}

// NewCoupling computes the gradient blocks for the current mesh geometry.
// Call Setup again after any mesh movement (ALE update).
func NewCoupling(p *Problem) *Coupling {
	c := &Coupling{P: p}
	c.Setup()
	return c
}

// Setup (re)computes the element gradient blocks
// Ge[(n,a)][m] = -∫ ψ_m ∂N_n/∂x_a dV.
func (c *Coupling) Setup() {
	p := c.P
	nel := p.DA.NElements()
	if len(c.Ge) != 324*nel {
		c.Ge = make([]float64, 324*nel)
	}
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		var ctr, hinv [3]float64
		elemCenterScale(&xe, &ctr, &hinv)
		ge := c.Ge[324*e : 324*e+324]
		for i := range ge {
			ge[i] = 0
		}
		var jinv [9]float64
		var psi [4]float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(&xe, q, &jinv)
			w := W3[q] * detJ
			if c.Mapped {
				psi = [4]float64{1, QPRef[q][0], QPRef[q][1], QPRef[q][2]}
			} else {
				var x, y, z float64
				for n := 0; n < 27; n++ {
					nn := N27[q][n]
					x += nn * xe[3*n]
					y += nn * xe[3*n+1]
					z += nn * xe[3*n+2]
				}
				pressureBasisAt(x, y, z, &ctr, &hinv, &psi)
			}
			gq := &G27[q]
			for n := 0; n < 27; n++ {
				g0, g1, g2 := gq[n][0], gq[n][1], gq[n][2]
				px := g0*jinv[0] + g1*jinv[3] + g2*jinv[6]
				py := g0*jinv[1] + g1*jinv[4] + g2*jinv[7]
				pz := g0*jinv[2] + g1*jinv[5] + g2*jinv[8]
				for m := 0; m < 4; m++ {
					wp := -w * psi[m]
					ge[(3*n)*4+m] += wp * px
					ge[(3*n+1)*4+m] += wp * py
					ge[(3*n+2)*4+m] += wp * pz
				}
			}
		}
	})
}

// ApplyGAdd accumulates yu += G·pv on the free velocity rows (constrained
// rows are untouched — the caller owns their identity handling).
func (c *Coupling) ApplyGAdd(pv, yu la.Vec) {
	p := c.P
	p.slabApply(nil, false, false, true, yu, func(e int, _, _, ye *[81]float64, _ *kernScratch) {
		ge := c.Ge[324*e : 324*e+324]
		p0, p1, p2, p3 := pv[4*e], pv[4*e+1], pv[4*e+2], pv[4*e+3]
		for i := 0; i < 81; i++ {
			row := ge[4*i : 4*i+4]
			ye[i] = row[0]*p0 + row[1]*p1 + row[2]*p2 + row[3]*p3
		}
	})
}

// ApplyGAddElements accumulates yu += G·pv over the given elements only
// — the rank-local piece of the distributed coupled apply. Like
// ApplyGAdd it writes free velocity rows only; unlike it the loop is
// serial, since in the distributed solve parallelism comes from ranks,
// not the worker pool.
func (c *Coupling) ApplyGAddElements(elems []int, pv, yu la.Vec) {
	p := c.P
	var ye [81]float64
	for _, e := range elems {
		ge := c.Ge[324*e : 324*e+324]
		p0, p1, p2, p3 := pv[4*e], pv[4*e+1], pv[4*e+2], pv[4*e+3]
		for i := 0; i < 81; i++ {
			row := ge[4*i : 4*i+4]
			ye[i] = row[0]*p0 + row[1]*p1 + row[2]*p2 + row[3]*p3
		}
		p.scatterAdd(e, &ye, yu)
	}
}

// ApplyD computes yp = Gᵀ·u treating constrained velocity entries as zero
// (the symmetric-elimination form used inside Krylov applications).
func (c *Coupling) ApplyD(u, yp la.Vec) { c.applyD(u, yp, true) }

// ApplyDRaw computes yp = Gᵀ·u using the full state u, including
// prescribed boundary values (residual evaluation form).
func (c *Coupling) ApplyDRaw(u, yp la.Vec) { c.applyD(u, yp, false) }

// ApplyDElements computes the masked divergence rows yp = Gᵀ·u for the
// given elements only. P1disc pressure dofs are element-local, so no
// halo exchange is needed: each rank fully owns the pressure rows of
// its elements.
func (c *Coupling) ApplyDElements(elems []int, u, yp la.Vec) {
	for _, e := range elems {
		c.applyDElem(e, u, yp, true)
	}
}

func (c *Coupling) applyD(u, yp la.Vec, masked bool) {
	p := c.P
	p.forEachElement(func(e int) {
		c.applyDElem(e, u, yp, masked)
	})
}

func (c *Coupling) applyDElem(e int, u, yp la.Vec, masked bool) {
	p := c.P
	mask := p.BC.Mask
	ge := c.Ge[324*e : 324*e+324]
	em := p.Emap[27*e : 27*e+27]
	var s [4]float64
	for n := 0; n < 27; n++ {
		d := 3 * int(em[n])
		for a := 0; a < 3; a++ {
			if masked && mask[d+a] {
				continue
			}
			ua := u[d+a]
			if ua == 0 {
				continue
			}
			row := ge[(3*n+a)*4 : (3*n+a)*4+4]
			s[0] += row[0] * ua
			s[1] += row[1] * ua
			s[2] += row[2] * ua
			s[3] += row[3] * ua
		}
	}
	yp[4*e] = s[0]
	yp[4*e+1] = s[1]
	yp[4*e+2] = s[2]
	yp[4*e+3] = s[3]
}

// PressureMass holds the inverted element blocks of the viscosity-scaled
// pressure mass matrix ∫ ψ_i ψ_j / η dV — the spectrally equivalent Schur
// complement preconditioner of paper §III-B. P1disc pressure makes this
// matrix block-diagonal with 4×4 blocks, so its inverse is applied exactly
// element by element.
type PressureMass struct {
	P   *Problem
	inv []float64 // 16 per element, row-major inverse blocks
}

// NewPressureMass builds the inverted viscosity-scaled mass blocks.
func NewPressureMass(p *Problem) *PressureMass {
	m := &PressureMass{P: p}
	m.Setup()
	return m
}

// Setup (re)computes the inverted blocks from the current geometry and
// viscosity.
func (m *PressureMass) Setup() {
	p := m.P
	nel := p.DA.NElements()
	if len(m.inv) != 16*nel {
		m.inv = make([]float64, 16*nel)
	}
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		var ctr, hinv [3]float64
		elemCenterScale(&xe, &ctr, &hinv)
		blk := la.NewDense(4, 4)
		var jinv [9]float64
		var psi [4]float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(&xe, q, &jinv)
			w := W3[q] * detJ / p.Eta[NQP*e+q]
			var x, y, z float64
			for n := 0; n < 27; n++ {
				nn := N27[q][n]
				x += nn * xe[3*n]
				y += nn * xe[3*n+1]
				z += nn * xe[3*n+2]
			}
			pressureBasisAt(x, y, z, &ctr, &hinv, &psi)
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					blk.Add(i, j, w*psi[i]*psi[j])
				}
			}
		}
		lu, err := la.Factor(blk)
		if err != nil {
			panic("fem: singular pressure mass block: " + err.Error())
		}
		// Store the explicit inverse columns.
		var ei, col la.Vec = make(la.Vec, 4), make(la.Vec, 4)
		for j := 0; j < 4; j++ {
			ei.Zero()
			ei[j] = 1
			lu.Solve(ei, col)
			for i := 0; i < 4; i++ {
				m.inv[16*e+4*i+j] = col[i]
			}
		}
	})
}

// ApplyInv computes y = M⁻¹·x element-wise.
func (m *PressureMass) ApplyInv(x, y la.Vec) {
	p := m.P
	p.forEachElement(func(e int) {
		m.applyInvElem(e, x, y)
	})
}

// ApplyInvElements computes y = M⁻¹·x for the given elements only (the
// Schur preconditioner rows a rank owns in the distributed solve).
func (m *PressureMass) ApplyInvElements(elems []int, x, y la.Vec) {
	for _, e := range elems {
		m.applyInvElem(e, x, y)
	}
}

func (m *PressureMass) applyInvElem(e int, x, y la.Vec) {
	b := m.inv[16*e : 16*e+16]
	xe := x[4*e : 4*e+4]
	for i := 0; i < 4; i++ {
		y[4*e+i] = b[4*i]*xe[0] + b[4*i+1]*xe[1] + b[4*i+2]*xe[2] + b[4*i+3]*xe[3]
	}
}
