package fem

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/la"
)

// randomizeEta replaces the analytic viscosity field with independent
// log-uniform per-quadrature-point values spanning four decades — a
// heterogeneity far rougher than any projected coefficient field, so the
// slab/colored comparison is not helped by smoothness.
func randomizeEta(p *Problem, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range p.Eta {
		p.Eta[i] = math.Pow(10, -2+4*rng.Float64())
	}
}

// TestSlabScatterEquivalence: the slab-partitioned owner-computes apply
// must match the legacy 8-color reference apply to roundoff on randomized
// heterogeneous viscosity fields, at every worker count. Both paths sum
// the same 27 per-element contributions per node, only in different
// orders, so the tolerance is a tight 1e-13 of the output magnitude.
func TestSlabScatterEquivalence(t *testing.T) {
	grids := [][3]int{{3, 2, 2}, {4, 4, 4}, {6, 3, 5}}
	for _, g := range grids {
		p := testProblem(t, g[0], g[1], g[2], 1)
		randomizeEta(p, int64(7*g[0]+g[1]))
		rng := rand.New(rand.NewSource(42))
		u := randVelocity(rng, p.DA.NVelDOF())
		n := p.DA.NVelDOF()

		tens := NewTensor(p)
		ref := la.NewVec(n)
		tens.ApplyColored(u, ref)
		scale := ref.NormInf()

		for _, w := range []int{1, 2, 4, 8} {
			p.Workers = w
			y := la.NewVec(n)
			tens.Apply(u, y)
			for i := 0; i < n; i++ {
				if math.Abs(y[i]-ref[i]) > 1e-13*scale {
					t.Fatalf("grid %v workers %d: slab vs colored mismatch at %d: %v vs %v (|Δ|=%.3e, scale %.3e)",
						g, w, i, y[i], ref[i], math.Abs(y[i]-ref[i]), scale)
				}
			}
		}
	}
}

// TestSlabDeterminism: the slab apply must be bit-identical across worker
// counts — the slab count, in-slab element order and ascending-slab merge
// order are all independent of how many workers execute the chunks. This
// is what makes checkpoint/restart reproducible regardless of -workers.
func TestSlabDeterminism(t *testing.T) {
	p := testProblem(t, 5, 4, 3, 1)
	randomizeEta(p, 99)
	rng := rand.New(rand.NewSource(3))
	u := randVelocity(rng, p.DA.NVelDOF())
	n := p.DA.NVelDOF()

	tens := NewTensor(p)
	mf := NewMF(p)
	ref := la.NewVec(n)
	refMF := la.NewVec(n)
	refD := la.NewVec(n)
	refB := la.NewVec(n)
	tens.Apply(u, ref)
	mf.Apply(u, refMF)
	Diagonal(p, refD)
	MomentumRHS(p, refB)

	for _, w := range []int{2, 4, 8} {
		p.Workers = w
		y := la.NewVec(n)
		tens.Apply(u, y)
		for i := 0; i < n; i++ {
			if y[i] != ref[i] {
				t.Fatalf("Tensor workers=%d: dof %d differs bitwise: %x vs %x",
					w, i, math.Float64bits(y[i]), math.Float64bits(ref[i]))
			}
		}
		mf.Apply(u, y)
		for i := 0; i < n; i++ {
			if y[i] != refMF[i] {
				t.Fatalf("MF workers=%d: dof %d differs bitwise", w, i)
			}
		}
		Diagonal(p, y)
		for i := 0; i < n; i++ {
			if y[i] != refD[i] {
				t.Fatalf("Diagonal workers=%d: dof %d differs bitwise", w, i)
			}
		}
		MomentumRHS(p, y)
		for i := 0; i < n; i++ {
			if y[i] != refB[i] {
				t.Fatalf("MomentumRHS workers=%d: dof %d differs bitwise", w, i)
			}
		}
	}
}

// TestSlabStats sanity-checks the partition geometry: the slab count is
// bounded by the element count, every shared node really is on a slab
// boundary (shared < total), and the per-slab buffer windows cover every
// shared node each slab touches.
func TestSlabStats(t *testing.T) {
	p := testProblem(t, 6, 4, 4, 2)
	slabs, shared, total := p.SlabStats()
	nel := p.DA.NElements()
	if slabs < 1 || slabs > nel {
		t.Fatalf("slab count %d out of range [1,%d]", slabs, nel)
	}
	if total != p.DA.NNodes() {
		t.Fatalf("total nodes %d, want %d", total, p.DA.NNodes())
	}
	if slabs > 1 && (shared == 0 || shared >= total) {
		t.Fatalf("shared nodes %d implausible for %d slabs over %d nodes", shared, slabs, total)
	}

	// Recompute per-node slab spans independently and cross-check the
	// shared/interior classification and the per-slab buffer windows.
	info := p.slabs()
	minS := make([]int32, total)
	maxS := make([]int32, total)
	for i := range minS {
		minS[i] = -1
	}
	var nodes [27]int32
	for s := 0; s < info.S; s++ {
		for e := info.off[s]; e < info.off[s+1]; e++ {
			p.DA.ElemNodes(e, &nodes)
			for _, nn := range nodes {
				if minS[nn] < 0 {
					minS[nn] = int32(s)
				}
				maxS[nn] = int32(s)
			}
		}
	}
	for nn := 0; nn < total; nn++ {
		si := info.sharedIdx[nn]
		if (minS[nn] >= 0 && minS[nn] != maxS[nn]) != (si >= 0) {
			t.Fatalf("node %d: span %d..%d but sharedIdx %d", nn, minS[nn], maxS[nn], si)
		}
		if si >= 0 && (info.minSlab[si] != minS[nn] || info.maxSlab[si] != maxS[nn]) {
			t.Fatalf("node %d: recorded span %d..%d, recomputed %d..%d",
				nn, info.minSlab[si], info.maxSlab[si], minS[nn], maxS[nn])
		}
	}
	for s := 0; s < info.S; s++ {
		for e := info.off[s]; e < info.off[s+1]; e++ {
			p.DA.ElemNodes(e, &nodes)
			for _, nn := range nodes {
				si := info.sharedIdx[nn]
				if si >= 0 && (si < info.bufLo[s] || si >= info.bufHi[s]) {
					t.Fatalf("slab %d touches shared node %d (idx %d) outside its buffer window [%d,%d)",
						s, nn, si, info.bufLo[s], info.bufHi[s])
				}
			}
		}
	}
}
