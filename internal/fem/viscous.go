package fem

import (
	"math"

	"ptatin3d/internal/la"
)

// Operator is the abstract viscous-block operator y = J_uu·u. All four
// implementations agree to machine precision; they differ only in how
// the action is computed (Table I of the paper). Dirichlet dofs are
// eliminated symmetrically: constrained input entries are ignored and
// constrained output rows return the identity.
type Operator interface {
	N() int
	Apply(u, y la.Vec)
}

// ResidualOperator additionally applies the operator to an unmasked input
// (a state vector whose constrained entries carry prescribed boundary
// values), zeroing constrained output rows. Nonlinear residual evaluation
// needs this form; it is available from the matrix-free variants only,
// mirroring pTatin3D where residuals are always evaluated matrix-free.
type ResidualOperator interface {
	Operator
	ApplyFreeRows(u, y la.Vec)
}

// qpCommon applies the per-quadrature-point stress update shared by the
// MF and Tensor kernels: given the reference gradient g[a][d]=∂u_a/∂ξ_d,
// the inverse Jacobian jinv[d][m]=∂ξ_d/∂x_m and the scaled coefficient
// s = η·w·detJ, it returns h[a][d] = Σ_m jinv[d][m]·S[a][m] with
// S = s·(∇u + ∇uᵀ) the weighted deviatoric stress 2η·D(u)·w·detJ.
// The loops are fully unrolled (identical arithmetic order, so results
// are bit-for-bit unchanged): this runs 27 times per element on the
// hottest apply path, and the unrolled form keeps everything in
// registers with no bounds checks.
func qpCommon(g *[9]float64, jinv *[9]float64, s float64, h *[9]float64) {
	j00, j01, j02 := jinv[0], jinv[1], jinv[2]
	j10, j11, j12 := jinv[3], jinv[4], jinv[5]
	j20, j21, j22 := jinv[6], jinv[7], jinv[8]
	// Physical gradient Gp[a][m] = Σ_d g[a*3+d]·jinv[d*3+m].
	gp00 := g[0]*j00 + g[1]*j10 + g[2]*j20
	gp01 := g[0]*j01 + g[1]*j11 + g[2]*j21
	gp02 := g[0]*j02 + g[1]*j12 + g[2]*j22
	gp10 := g[3]*j00 + g[4]*j10 + g[5]*j20
	gp11 := g[3]*j01 + g[4]*j11 + g[5]*j21
	gp12 := g[3]*j02 + g[4]*j12 + g[5]*j22
	gp20 := g[6]*j00 + g[7]*j10 + g[8]*j20
	gp21 := g[6]*j01 + g[7]*j11 + g[8]*j21
	gp22 := g[6]*j02 + g[7]*j12 + g[8]*j22
	// S[a][m] = s·(Gp[a][m]+Gp[m][a]), the weighted deviatoric stress.
	sm00 := s * (gp00 + gp00)
	sm01 := s * (gp01 + gp10)
	sm02 := s * (gp02 + gp20)
	sm10 := s * (gp10 + gp01)
	sm11 := s * (gp11 + gp11)
	sm12 := s * (gp12 + gp21)
	sm20 := s * (gp20 + gp02)
	sm21 := s * (gp21 + gp12)
	sm22 := s * (gp22 + gp22)
	// h[a][d] = Σ_m jinv[d*3+m]·S[a][m].
	h[0] = j00*sm00 + j01*sm01 + j02*sm02
	h[1] = j10*sm00 + j11*sm01 + j12*sm02
	h[2] = j20*sm00 + j21*sm01 + j22*sm02
	h[3] = j00*sm10 + j01*sm11 + j02*sm12
	h[4] = j10*sm10 + j11*sm11 + j12*sm12
	h[5] = j20*sm10 + j21*sm11 + j22*sm12
	h[6] = j00*sm20 + j01*sm21 + j02*sm22
	h[7] = j10*sm20 + j11*sm21 + j12*sm22
	h[8] = j20*sm20 + j21*sm21 + j22*sm22
}

// applyIdentityRows finishes an operator application: constrained rows of
// y return u (identity block).
func applyIdentityRows(p *Problem, u, y la.Vec) {
	for d, m := range p.BC.Mask {
		if m {
			y[d] = u[d]
		}
	}
}

// ---------------------------------------------------------------------------
// MFOp: reference (non-tensor) matrix-free operator.
// ---------------------------------------------------------------------------

// MFOp applies the viscous block element-by-element using the explicit
// 81×27 reference derivative tabulation G27 at every quadrature point —
// the paper's reference matrix-free implementation ("MF" in Tables I–III).
// No matrix is stored; only coordinates, state and the coefficient stream
// through memory.
type MFOp struct {
	P *Problem
}

// NewMF returns a reference matrix-free operator for p.
func NewMF(p *Problem) *MFOp { return &MFOp{P: p} }

// N returns the number of velocity dofs.
func (op *MFOp) N() int { return op.P.DA.NVelDOF() }

// Apply computes y = J_uu·u with symmetric Dirichlet elimination.
func (op *MFOp) Apply(u, y la.Vec) { op.apply(u, y, true) }

// ApplyFreeRows computes the free rows of J_uu·u for an unmasked state u.
func (op *MFOp) ApplyFreeRows(u, y la.Vec) { op.apply(u, y, false) }

func (op *MFOp) apply(u, y la.Vec, masked bool) {
	p := op.P
	p.slabApply(u, masked, true, false, y, func(e int, ue, xe, ye *[81]float64, _ *kernScratch) {
		mfElementApply(ue, xe, p.Eta[NQP*e:NQP*e+NQP], ye)
	})
	if masked {
		applyIdentityRows(p, u, y)
	}
}

// mfElementApply is the non-tensor matrix-free element kernel. It fully
// defines ye (slab scratch is reused across elements un-zeroed).
func mfElementApply(ue, xe *[81]float64, eta []float64, ye *[81]float64) {
	*ye = [81]float64{}
	var jinv [9]float64
	for q := 0; q < NQP; q++ {
		detJ := jacobianAt(xe, q, &jinv)
		// Physical basis gradients gn[n][m] and velocity gradient.
		var gn [27][3]float64
		gq := &G27[q]
		for n := 0; n < 27; n++ {
			g0, g1, g2 := gq[n][0], gq[n][1], gq[n][2]
			gn[n][0] = g0*jinv[0] + g1*jinv[3] + g2*jinv[6]
			gn[n][1] = g0*jinv[1] + g1*jinv[4] + g2*jinv[7]
			gn[n][2] = g0*jinv[2] + g1*jinv[5] + g2*jinv[8]
		}
		var gp [9]float64 // Gp[a][m]
		for n := 0; n < 27; n++ {
			u0, u1, u2 := ue[3*n], ue[3*n+1], ue[3*n+2]
			for m := 0; m < 3; m++ {
				gnm := gn[n][m]
				gp[m] += u0 * gnm
				gp[3+m] += u1 * gnm
				gp[6+m] += u2 * gnm
			}
		}
		s := eta[q] * W3[q] * detJ
		var sm [9]float64
		for a := 0; a < 3; a++ {
			for m := 0; m < 3; m++ {
				sm[a*3+m] = s * (gp[a*3+m] + gp[m*3+a])
			}
		}
		for n := 0; n < 27; n++ {
			g0, g1, g2 := gn[n][0], gn[n][1], gn[n][2]
			ye[3*n] += g0*sm[0] + g1*sm[1] + g2*sm[2]
			ye[3*n+1] += g0*sm[3] + g1*sm[4] + g2*sm[5]
			ye[3*n+2] += g0*sm[6] + g1*sm[7] + g2*sm[8]
		}
	}
}

// ---------------------------------------------------------------------------
// TensorOp: tensor-product matrix-free operator.
// ---------------------------------------------------------------------------

// TensorOp applies the viscous block using 1-D tensor contractions for all
// basis/derivative evaluations ("Tens" in the paper). Metric terms are
// recomputed from nodal coordinates on the fly; nothing per-element is
// stored, so the working set per element is ~1 kB and elements stream
// through cache.
type TensorOp struct {
	P *Problem
}

// NewTensor returns a tensor-product matrix-free operator for p.
func NewTensor(p *Problem) *TensorOp { return &TensorOp{P: p} }

// N returns the number of velocity dofs.
func (op *TensorOp) N() int { return op.P.DA.NVelDOF() }

// Apply computes y = J_uu·u with symmetric Dirichlet elimination.
func (op *TensorOp) Apply(u, y la.Vec) { op.apply(u, y, true) }

// ApplyFreeRows computes the free rows of J_uu·u for an unmasked state u.
func (op *TensorOp) ApplyFreeRows(u, y la.Vec) { op.apply(u, y, false) }

func (op *TensorOp) apply(u, y la.Vec, masked bool) {
	p := op.P
	p.slabApply(u, masked, true, false, y, func(e int, ue, xe, ye *[81]float64, ks *kernScratch) {
		tensorElementApply(ue, xe, p.Eta[NQP*e:NQP*e+NQP], ye, ks)
	})
	if masked {
		applyIdentityRows(p, u, y)
	}
}

// ApplyColored computes y = J_uu·u using the legacy 8-color element
// schedule. Kept as the reference implementation for scatter-equivalence
// tests and the colored-vs-slab benchmark: slab and colored applies sum
// element contributions in different orders, so they agree only to
// rounding (~1e-15 relative), while the slab path alone is bit-stable
// across worker counts.
func (op *TensorOp) ApplyColored(u, y la.Vec) {
	p := op.P
	y.Zero()
	p.forEachElementColored(func(e int) {
		var ue, xe, ye [81]float64
		var ks kernScratch
		p.gatherVec(e, u, &ue)
		p.gatherCoords(e, &xe)
		eta := p.Eta[NQP*e : NQP*e+NQP]
		tensorElementApply(&ue, &xe, eta, &ye, &ks)
		p.scatterAdd(e, &ye, y)
	})
	applyIdentityRows(p, u, y)
}

// tensorElementApply is the tensor-product element kernel (Eq. 19 of the
// paper): gradients of state and coordinates by 1-D contractions, the
// metric terms folded into the quadrature loop, and the adjoint
// contractions scattering the result.
func tensorElementApply(ue, xe *[81]float64, eta []float64, ye *[81]float64, ks *kernScratch) {
	ug0, ug1, ug2 := &ks.ug0, &ks.ug1, &ks.ug2
	xg0, xg1, xg2 := &ks.xg0, &ks.xg1, &ks.xg2
	tensorGrads(ue, ug0, ug1, ug2, ks)
	tensorGrads(xe, xg0, xg1, xg2, ks)
	h0, h1, h2 := &ks.h0, &ks.h1, &ks.h2
	var jmat, jinv, inv, g, h [9]float64
	for q := 0; q < NQP; q++ {
		// jmat[d][m] = ∂x_m/∂ξ_d from the coordinate gradients.
		for m := 0; m < 3; m++ {
			jmat[m] = xg0[q*3+m]
			jmat[3+m] = xg1[q*3+m]
			jmat[6+m] = xg2[q*3+m]
		}
		detJ := la.Invert3(&jmat, &inv)
		// jinv[d][m] = ∂ξ_d/∂x_m = inv[m][d].
		jinv[0], jinv[1], jinv[2] = inv[0], inv[3], inv[6]
		jinv[3], jinv[4], jinv[5] = inv[1], inv[4], inv[7]
		jinv[6], jinv[7], jinv[8] = inv[2], inv[5], inv[8]
		// g[a][d] = ∂u_a/∂ξ_d.
		for a := 0; a < 3; a++ {
			g[a*3] = ug0[q*3+a]
			g[a*3+1] = ug1[q*3+a]
			g[a*3+2] = ug2[q*3+a]
		}
		qpCommon(&g, &jinv, eta[q]*W3[q]*detJ, &h)
		for a := 0; a < 3; a++ {
			h0[q*3+a] = h[a*3]
			h1[q*3+a] = h[a*3+1]
			h2[q*3+a] = h[a*3+2]
		}
	}
	tensorScatterWrite(h0, h1, h2, ye, ks)
}

// ---------------------------------------------------------------------------
// TensorCOp: tensor-product operator with stored coefficient tensor.
// ---------------------------------------------------------------------------

// TensorCOp is the "Tensor C" variant of Table I: the combined
// metric+coefficient tensor (∇ξ)ᵀ(ωη)(∇ξ) is precomputed and stored at
// every quadrature point, removing the Jacobian inversion from the apply
// at the cost of streaming 15 floats per quadrature point. The paper
// stores 21 rank-4 entries; we store the equivalent isotropic
// factorization sM (6 entries of the scaled metric Gram matrix) plus
// √s·K (9 entries of the scaled inverse Jacobian), which reproduces the
// same action (see DESIGN.md substitution table).
type TensorCOp struct {
	P *Problem
	// coef stores, per element and quadrature point, 15 floats:
	// [0..5]  sM in packed symmetric order (00,01,02,11,12,22)
	// [6..14] √s·jinv row-major, with s = η·w·detJ.
	coef []float64
}

// NewTensorC builds the stored-coefficient tensor operator; Setup must be
// called again whenever the mesh geometry or viscosity changes.
func NewTensorC(p *Problem) *TensorCOp {
	op := &TensorCOp{P: p}
	op.Setup()
	return op
}

// Setup (re)computes the stored per-quadrature-point tensors.
func (op *TensorCOp) Setup() {
	p := op.P
	nel := p.DA.NElements()
	if len(op.coef) != 15*NQP*nel {
		op.coef = make([]float64, 15*NQP*nel)
	}
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		var jinv [9]float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(&xe, q, &jinv)
			s := p.Eta[NQP*e+q] * W3[q] * detJ
			c := op.coef[15*(NQP*e+q) : 15*(NQP*e+q)+15]
			// Packed scaled metric sM[d][e] = s·Σ_m K[d][m]K[e][m].
			idx := 0
			for d := 0; d < 3; d++ {
				for dd := d; dd < 3; dd++ {
					c[idx] = s * (jinv[d*3]*jinv[dd*3] + jinv[d*3+1]*jinv[dd*3+1] + jinv[d*3+2]*jinv[dd*3+2])
					idx++
				}
			}
			sq := math.Sqrt(s)
			for i := 0; i < 9; i++ {
				c[6+i] = sq * jinv[i]
			}
		}
	})
}

// N returns the number of velocity dofs.
func (op *TensorCOp) N() int { return op.P.DA.NVelDOF() }

// Apply computes y = J_uu·u with symmetric Dirichlet elimination.
func (op *TensorCOp) Apply(u, y la.Vec) {
	p := op.P
	p.slabApply(u, true, false, false, y, func(e int, ue, _, ye *[81]float64, ks *kernScratch) {
		ug0, ug1, ug2 := &ks.ug0, &ks.ug1, &ks.ug2
		h0, h1, h2 := &ks.h0, &ks.h1, &ks.h2
		tensorGrads(ue, ug0, ug1, ug2, ks)
		for q := 0; q < NQP; q++ {
			c := op.coef[15*(NQP*e+q) : 15*(NQP*e+q)+15]
			sm00, sm01, sm02, sm11, sm12, sm22 := c[0], c[1], c[2], c[3], c[4], c[5]
			kk := c[6:15]
			var g [9]float64 // g[a][d]
			for a := 0; a < 3; a++ {
				g[a*3] = ug0[q*3+a]
				g[a*3+1] = ug1[q*3+a]
				g[a*3+2] = ug2[q*3+a]
			}
			// h[a][d] = Σ_e sM[d][e]·g[a][e] + Σ_m Ks[d][m]·tt[m],
			// tt[m] = Σ_e g[m][e]·Ks[e][a]  (a-dependent).
			var h [9]float64
			for a := 0; a < 3; a++ {
				ga0, ga1, ga2 := g[a*3], g[a*3+1], g[a*3+2]
				h[a*3] = sm00*ga0 + sm01*ga1 + sm02*ga2
				h[a*3+1] = sm01*ga0 + sm11*ga1 + sm12*ga2
				h[a*3+2] = sm02*ga0 + sm12*ga1 + sm22*ga2
				var tt [3]float64
				for m := 0; m < 3; m++ {
					tt[m] = g[m*3]*kk[a] + g[m*3+1]*kk[3+a] + g[m*3+2]*kk[6+a]
				}
				for d := 0; d < 3; d++ {
					h[a*3+d] += kk[d*3]*tt[0] + kk[d*3+1]*tt[1] + kk[d*3+2]*tt[2]
				}
			}
			for a := 0; a < 3; a++ {
				h0[q*3+a] = h[a*3]
				h1[q*3+a] = h[a*3+1]
				h2[q*3+a] = h[a*3+2]
			}
		}
		tensorScatterWrite(h0, h1, h2, ye, ks)
	})
	applyIdentityRows(p, u, y)
}

// ApplyElements accumulates the viscous-block action of the given element
// subset into y (which the caller must zero): the building block of
// rank-distributed operator application, where each simulated rank owns a
// contiguous element block and halo sums are exchanged explicitly
// (internal/comm). No Dirichlet identity rows are added — partial sums
// from different ranks must remain addable; the distributed driver
// applies the identity after the halo reduction.
func (op *TensorOp) ApplyElements(elems []int, u, y la.Vec) {
	p := op.P
	var ks kernScratch
	for _, e := range elems {
		var ue, xe, ye [81]float64
		p.gatherVec(e, u, &ue)
		p.gatherCoords(e, &xe)
		eta := p.Eta[NQP*e : NQP*e+NQP]
		tensorElementApply(&ue, &xe, eta, &ye, &ks)
		p.scatterAdd(e, &ye, y)
	}
}
