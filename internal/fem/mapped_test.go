package fem

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

// TestMappedVsPhysicalPressureBasis is the §II-B ablation: on a deformed
// mesh the physical-coordinate P1disc basis represents linear pressure
// fields exactly (preserving the optimal accuracy of Q2–P1), while the
// "mapped" (reference-coordinate) basis cannot — its span contains the
// triquadratic images of {1,ξ,η,ζ}, not physical linears.
func TestMappedVsPhysicalPressureBasis(t *testing.T) {
	da := mesh.New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.1*math.Sin(math.Pi*y)*math.Sin(math.Pi*z),
			y + 0.08*math.Sin(math.Pi*x),
			z + 0.06*x*y
	})
	p := NewProblem(da, nil)
	f := func(x, y, z float64) float64 { return 1 + 2*x - y + 0.5*z }

	// Best-approximation error of f in the element pressure space,
	// measured at the quadrature points after an L2 fit.
	fitError := func(mapped bool) float64 {
		worst := 0.0
		for e := 0; e < da.NElements(); e++ {
			var xe [81]float64
			p.gatherCoords(e, &xe)
			var ctr, hinv [3]float64
			elemCenterScale(&xe, &ctr, &hinv)
			// Normal equations by quadrature.
			m := la.NewDense(4, 4)
			rhs := la.NewVec(4)
			var jinv [9]float64
			psiAt := func(q int, x, y, z float64) [4]float64 {
				if mapped {
					return [4]float64{1, QPRef[q][0], QPRef[q][1], QPRef[q][2]}
				}
				var ps [4]float64
				pressureBasisAt(x, y, z, &ctr, &hinv, &ps)
				return ps
			}
			coords := make([][3]float64, NQP)
			for q := 0; q < NQP; q++ {
				detJ := jacobianAt(&xe, q, &jinv)
				w := W3[q] * detJ
				var x, y, z float64
				for n := 0; n < 27; n++ {
					nn := N27[q][n]
					x += nn * xe[3*n]
					y += nn * xe[3*n+1]
					z += nn * xe[3*n+2]
				}
				coords[q] = [3]float64{x, y, z}
				ps := psiAt(q, x, y, z)
				for i := 0; i < 4; i++ {
					for j := 0; j < 4; j++ {
						m.Add(i, j, w*ps[i]*ps[j])
					}
					rhs[i] += w * ps[i] * f(x, y, z)
				}
			}
			lu, err := la.Factor(m)
			if err != nil {
				t.Fatal(err)
			}
			c := la.NewVec(4)
			lu.Solve(rhs, c)
			for q := 0; q < NQP; q++ {
				ps := psiAt(q, coords[q][0], coords[q][1], coords[q][2])
				got := c[0]*ps[0] + c[1]*ps[1] + c[2]*ps[2] + c[3]*ps[3]
				if e := math.Abs(got - f(coords[q][0], coords[q][1], coords[q][2])); e > worst {
					worst = e
				}
			}
		}
		return worst
	}

	physErr := fitError(false)
	mapErr := fitError(true)
	if physErr > 1e-10 {
		t.Fatalf("physical basis should represent linears exactly: err %e", physErr)
	}
	if mapErr < 100*physErr || mapErr < 1e-4 {
		t.Fatalf("mapped basis unexpectedly accurate: %e (physical %e)", mapErr, physErr)
	}
}

// TestMappedCouplingStaysAdjoint: the gradient/divergence blocks remain
// exact transposes in mapped mode (the ablation changes accuracy, not the
// algebraic structure).
func TestMappedCouplingStaysAdjoint(t *testing.T) {
	p := testProblem(t, 2, 2, 2, 1)
	c := &Coupling{P: p, Mapped: true}
	c.Setup()
	rng := rand.New(rand.NewSource(2))
	nu, np := p.DA.NVelDOF(), p.DA.NPresDOF()
	u := randVelocity(rng, nu)
	p.BC.ZeroConstrained(u)
	pv := randVelocity(rng, np)
	gu := la.NewVec(nu)
	c.ApplyGAdd(pv, gu)
	du := la.NewVec(np)
	c.ApplyD(u, du)
	d1, d2 := gu.Dot(u), pv.Dot(du)
	if math.Abs(d1-d2) > 1e-10*(1+math.Abs(d1)) {
		t.Fatalf("mapped coupling not adjoint: %v vs %v", d1, d2)
	}
}
