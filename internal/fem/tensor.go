package fem

// Tensor-product contraction kernels (paper §III-D): the 81×27 reference
// derivative matrix D̂ξ factors into 1-D pieces D̂⊗B̂⊗B̂, B̂⊗D̂⊗B̂ and
// B̂⊗B̂⊗D̂, where B̂ and D̂ are the 3×3 one-dimensional basis evaluation and
// derivative matrices. Applying these as a sequence of 1-D contractions
// costs ~3× fewer flops than the dense 81×27 application, and — because no
// per-element 17 kB gradient matrix is formed — keeps the working set
// small enough to stay in L1 cache.
//
// Fields are stored as flat [81]float64 arrays holding 27 lattice points
// × 3 interleaved components with the x point index fastest:
// idx = ((k*3+j)*3+i)*3 + c.

// contract1 contracts one lattice dimension of in with the 3×3 matrix m:
// out[.., q, ..][c] = Σ_t m[q][t] · in[.., t, ..][c], where the contracted
// index has the given stride (3 for x, 9 for y, 27 for z, in float units)
// and the remaining indices × components are enumerated by the caller.
func contract1(m *[3][3]float64, in, out *[81]float64, stride int, bases *[27]int) {
	for _, b := range bases {
		i0 := in[b]
		i1 := in[b+stride]
		i2 := in[b+2*stride]
		out[b] = m[0][0]*i0 + m[0][1]*i1 + m[0][2]*i2
		out[b+stride] = m[1][0]*i0 + m[1][1]*i1 + m[1][2]*i2
		out[b+2*stride] = m[2][0]*i0 + m[2][1]*i1 + m[2][2]*i2
	}
}

// basesX/Y/Z enumerate the 27 (line, component) base offsets for each
// contraction direction.
var basesX, basesY, basesZ [27]int

// B1T and D1T are the transposes of B1 and D1, used for the adjoint
// (scatter) contractions.
var B1T, D1T [3][3]float64

func init() {
	n := 0
	for k := 0; k < 3; k++ {
		for j := 0; j < 3; j++ {
			for c := 0; c < 3; c++ {
				basesX[n] = (k*3+j)*9 + c // i stride 3
				n++
			}
		}
	}
	n = 0
	for k := 0; k < 3; k++ {
		for i := 0; i < 3; i++ {
			for c := 0; c < 3; c++ {
				basesY[n] = k*27 + i*3 + c // j stride 9
				n++
			}
		}
	}
	n = 0
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			for c := 0; c < 3; c++ {
				basesZ[n] = j*9 + i*3 + c // k stride 27
				n++
			}
		}
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			B1T[a][b] = B1[b][a]
			D1T[a][b] = D1[b][a]
		}
	}
}

func cX(m *[3][3]float64, in, out *[81]float64) { contract1(m, in, out, 3, &basesX) }
func cY(m *[3][3]float64, in, out *[81]float64) { contract1(m, in, out, 9, &basesY) }
func cZ(m *[3][3]float64, in, out *[81]float64) { contract1(m, in, out, 27, &basesZ) }

// tensorGrads computes the three reference-direction gradients of the
// 3-component nodal field f at the 27 quadrature points:
// g_d[q*3+a] = ∂f_a/∂ξ_d(ξ_q). Eight 1-D contractions replace the dense
// 81×27 matrix application.
func tensorGrads(f, g0, g1, g2 *[81]float64) {
	var tB, tD, tBB, tDB, tBD [81]float64
	cX(&B1, f, &tB)
	cX(&D1, f, &tD)
	cY(&B1, &tB, &tBB)
	cY(&B1, &tD, &tDB)
	cY(&D1, &tB, &tBD)
	cZ(&B1, &tDB, g0)
	cZ(&B1, &tBD, g1)
	cZ(&D1, &tBB, g2)
}

// tensorScatterAdd accumulates the adjoint of tensorGrads into ye:
// ye += Σ_d (D̂ξ_d)ᵀ h_d, where h_d are quadrature-point cotangent fields.
func tensorScatterAdd(h0, h1, h2, ye *[81]float64) {
	var s0, s1, s2, t0, t12, tmp [81]float64
	cZ(&B1T, h0, &s0)
	cZ(&B1T, h1, &s1)
	cZ(&D1T, h2, &s2)
	cY(&B1T, &s0, &t0)
	cY(&D1T, &s1, &t12)
	cY(&B1T, &s2, &tmp)
	for i := range t12 {
		t12[i] += tmp[i]
	}
	cX(&D1T, &t0, &tmp)
	for i := range tmp {
		ye[i] += tmp[i]
	}
	cX(&B1T, &t12, &tmp)
	for i := range tmp {
		ye[i] += tmp[i]
	}
}
