package fem

// Tensor-product contraction kernels (paper §III-D): the 81×27 reference
// derivative matrix D̂ξ factors into 1-D pieces D̂⊗B̂⊗B̂, B̂⊗D̂⊗B̂ and
// B̂⊗B̂⊗D̂, where B̂ and D̂ are the 3×3 one-dimensional basis evaluation and
// derivative matrices. Applying these as a sequence of 1-D contractions
// costs ~3× fewer flops than the dense 81×27 application, and — because no
// per-element 17 kB gradient matrix is formed — keeps the working set
// small enough to stay in L1 cache.
//
// Fields are stored as flat [81]float64 arrays holding 27 lattice points
// × 3 interleaved components with the x point index fastest:
// idx = ((k*3+j)*3+i)*3 + c.
//
// Each direction's contraction is specialized to its memory layout
// instead of going through a shared stride/base-table kernel: the offsets
// below are affine in small constant-bound loop variables, so the
// compiler proves every access in range and the inner loops run without
// bounds checks or index-table loads. The arithmetic (three products and
// two adds per output, summed in t order) is identical to the generic
// kernel, so results are bit-for-bit unchanged.

// cX contracts the x lattice direction (stride 3): for each of the nine
// (k,j) lines the nine floats {i×c} are contiguous, so the kernel streams
// aligned 9-blocks.
func cX(m *[3][3]float64, in, out *[81]float64) {
	m00, m01, m02 := m[0][0], m[0][1], m[0][2]
	m10, m11, m12 := m[1][0], m[1][1], m[1][2]
	m20, m21, m22 := m[2][0], m[2][1], m[2][2]
	for g := 0; g < 9; g++ {
		s := (*[9]float64)(in[9*g : 9*g+9])
		d := (*[9]float64)(out[9*g : 9*g+9])
		for c := 0; c < 3; c++ {
			i0, i1, i2 := s[c], s[c+3], s[c+6]
			d[c] = m00*i0 + m01*i1 + m02*i2
			d[c+3] = m10*i0 + m11*i1 + m12*i2
			d[c+6] = m20*i0 + m21*i1 + m22*i2
		}
	}
}

// cY contracts the y lattice direction (stride 9): within each of the
// three k planes (27 contiguous floats) the contracted triple sits at
// offsets r, r+9, r+18.
func cY(m *[3][3]float64, in, out *[81]float64) {
	m00, m01, m02 := m[0][0], m[0][1], m[0][2]
	m10, m11, m12 := m[1][0], m[1][1], m[1][2]
	m20, m21, m22 := m[2][0], m[2][1], m[2][2]
	for k := 0; k < 3; k++ {
		s := (*[27]float64)(in[27*k : 27*k+27])
		d := (*[27]float64)(out[27*k : 27*k+27])
		for r := 0; r < 9; r++ {
			i0, i1, i2 := s[r], s[r+9], s[r+18]
			d[r] = m00*i0 + m01*i1 + m02*i2
			d[r+9] = m10*i0 + m11*i1 + m12*i2
			d[r+18] = m20*i0 + m21*i1 + m22*i2
		}
	}
}

// cZ contracts the z lattice direction (stride 27): the contracted triple
// sits at offsets r, r+27, r+54 over the whole array.
func cZ(m *[3][3]float64, in, out *[81]float64) {
	m00, m01, m02 := m[0][0], m[0][1], m[0][2]
	m10, m11, m12 := m[1][0], m[1][1], m[1][2]
	m20, m21, m22 := m[2][0], m[2][1], m[2][2]
	for r := 0; r < 27; r++ {
		i0, i1, i2 := in[r], in[r+27], in[r+54]
		out[r] = m00*i0 + m01*i1 + m02*i2
		out[r+27] = m10*i0 + m11*i1 + m12*i2
		out[r+54] = m20*i0 + m21*i1 + m22*i2
	}
}

// B1T and D1T are the transposes of B1 and D1, used for the adjoint
// (scatter) contractions.
var B1T, D1T [3][3]float64

func init() {
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			B1T[a][b] = B1[b][a]
			D1T[a][b] = D1[b][a]
		}
	}
}

// tensorGrads computes the three reference-direction gradients of the
// 3-component nodal field f at the 27 quadrature points:
// g_d[q*3+a] = ∂f_a/∂ξ_d(ξ_q). Eight 1-D contractions replace the dense
// 81×27 matrix application. ks.t0–t4 are clobbered; f and the outputs
// must not alias them.
func tensorGrads(f, g0, g1, g2 *[81]float64, ks *kernScratch) {
	tB, tD := &ks.t0, &ks.t1
	tBB, tDB, tBD := &ks.t2, &ks.t3, &ks.t4
	cX(&B1, f, tB)
	cX(&D1, f, tD)
	cY(&B1, tB, tBB)
	cY(&B1, tD, tDB)
	cY(&D1, tB, tBD)
	cZ(&B1, tDB, g0)
	cZ(&B1, tBD, g1)
	cZ(&D1, tBB, g2)
}

// tensorScatterWrite computes the adjoint of tensorGrads, overwriting ye:
// ye = Σ_d (D̂ξ_d)ᵀ h_d, where h_d are quadrature-point cotangent fields.
// The element kernels' ye scratch is reused across elements, so the full
// overwrite removes the per-element zero-init the old accumulate-only
// variant required. ks.t0–t5 are clobbered; the h inputs must not alias
// them (they normally live in ks.h0–h2).
func tensorScatterWrite(h0, h1, h2, ye *[81]float64, ks *kernScratch) {
	s0, s1, s2 := &ks.t0, &ks.t1, &ks.t2
	t0, t12, tmp := &ks.t3, &ks.t4, &ks.t5
	cZ(&B1T, h0, s0)
	cZ(&B1T, h1, s1)
	cZ(&D1T, h2, s2)
	cY(&B1T, s0, t0)
	cY(&D1T, s1, t12)
	cY(&B1T, s2, tmp)
	for i := range t12 {
		t12[i] += tmp[i]
	}
	cX(&D1T, t0, ye)
	cX(&B1T, t12, tmp)
	for i := range tmp {
		ye[i] += tmp[i]
	}
}
