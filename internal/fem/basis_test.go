package fem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQ2PartitionOfUnity(t *testing.T) {
	// Σ_i N_i = 1 and Σ_i ∇N_i = 0 at every quadrature point.
	for q := 0; q < NQP; q++ {
		var s float64
		var g [3]float64
		for n := 0; n < NodesPerEl; n++ {
			s += N27[q][n]
			for d := 0; d < 3; d++ {
				g[d] += G27[q][n][d]
			}
		}
		if math.Abs(s-1) > 1e-14 {
			t.Fatalf("q=%d: ΣN = %v", q, s)
		}
		for d := 0; d < 3; d++ {
			if math.Abs(g[d]) > 1e-13 {
				t.Fatalf("q=%d: Σ∇N[%d] = %v", q, d, g[d])
			}
		}
	}
}

// Property: partition of unity at arbitrary reference points for Q2 and Q1.
func TestPartitionOfUnityProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		xi := math.Mod(math.Abs(a), 1)*2 - 1
		eta := math.Mod(math.Abs(b), 1)*2 - 1
		zeta := math.Mod(math.Abs(c), 1)*2 - 1
		if math.IsNaN(xi) || math.IsNaN(eta) || math.IsNaN(zeta) {
			return true
		}
		var n2 [27]float64
		Q2Eval(xi, eta, zeta, &n2)
		var s2 float64
		for _, v := range n2 {
			s2 += v
		}
		var n1 [8]float64
		Q1Eval(xi, eta, zeta, &n1)
		var s1 float64
		for _, v := range n1 {
			s1 += v
		}
		return math.Abs(s2-1) < 1e-12 && math.Abs(s1-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQ2KroneckerDelta(t *testing.T) {
	// N_i at node j equals δ_ij; nodes at ξ ∈ {-1,0,1}³.
	pos := [3]float64{-1, 0, 1}
	for nk := 0; nk < 3; nk++ {
		for nj := 0; nj < 3; nj++ {
			for ni := 0; ni < 3; ni++ {
				j := (nk*3+nj)*3 + ni
				var n [27]float64
				Q2Eval(pos[ni], pos[nj], pos[nk], &n)
				for i := 0; i < 27; i++ {
					want := 0.0
					if i == j {
						want = 1
					}
					if math.Abs(n[i]-want) > 1e-14 {
						t.Fatalf("N_%d at node %d = %v, want %v", i, j, n[i], want)
					}
				}
			}
		}
	}
}

func TestQuadratureExactness(t *testing.T) {
	// The 3-point Gauss rule integrates 1-D polynomials up to degree 5
	// exactly; check ∫ξ⁴ over the 27-point rule (per-direction).
	var s float64
	for q := 0; q < NQP; q++ {
		qi := q % 3
		xi := [3]float64{-math.Sqrt(3.0 / 5.0), 0, math.Sqrt(3.0 / 5.0)}[qi]
		s += W3[q] * xi * xi * xi * xi
	}
	// ∫_{-1}^{1}ξ⁴dξ · (∫1)² = (2/5)·4 = 1.6
	if math.Abs(s-1.6) > 1e-13 {
		t.Fatalf("∫ξ⁴ = %v, want 1.6", s)
	}
	// Total weight = volume of reference cube = 8.
	var w float64
	for q := 0; q < NQP; q++ {
		w += W3[q]
	}
	if math.Abs(w-8) > 1e-13 {
		t.Fatalf("Σw = %v, want 8", w)
	}
}

func TestQ2GradReproducesLinear(t *testing.T) {
	// The gradient of the interpolant of a linear function is exact.
	rng := rand.New(rand.NewSource(2))
	a, b, c, d := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	pos := [3]float64{-1, 0, 1}
	var vals [27]float64
	for nk := 0; nk < 3; nk++ {
		for nj := 0; nj < 3; nj++ {
			for ni := 0; ni < 3; ni++ {
				vals[(nk*3+nj)*3+ni] = a + b*pos[ni] + c*pos[nj] + d*pos[nk]
			}
		}
	}
	var n [27]float64
	var g [27][3]float64
	Q2EvalGrad(0.3, -0.7, 0.1, &n, &g)
	var grad [3]float64
	var val float64
	for i := 0; i < 27; i++ {
		val += n[i] * vals[i]
		for dd := 0; dd < 3; dd++ {
			grad[dd] += g[i][dd] * vals[i]
		}
	}
	wantVal := a + b*0.3 + c*-0.7 + d*0.1
	if math.Abs(val-wantVal) > 1e-13 {
		t.Fatalf("interp = %v, want %v", val, wantVal)
	}
	for dd, want := range [3]float64{b, c, d} {
		if math.Abs(grad[dd]-want) > 1e-13 {
			t.Fatalf("grad[%d] = %v, want %v", dd, grad[dd], want)
		}
	}
}

func TestQ1GradConstant(t *testing.T) {
	var n [8]float64
	var g [8][3]float64
	Q1EvalGrad(0.2, 0.4, -0.9, &n, &g)
	var sum [3]float64
	for i := 0; i < 8; i++ {
		for d := 0; d < 3; d++ {
			sum[d] += g[i][d]
		}
	}
	for d := 0; d < 3; d++ {
		if math.Abs(sum[d]) > 1e-14 {
			t.Fatalf("Σ∇Q1[%d] = %v", d, sum[d])
		}
	}
}

func TestCornerLocalIndices(t *testing.T) {
	// Corner 0 is local node 0; corner 7 is local node 26.
	if CornerLocal[0] != 0 || CornerLocal[7] != 26 {
		t.Fatalf("CornerLocal = %v", CornerLocal)
	}
	// All corners have even sub-indices.
	for _, l := range CornerLocal {
		i := l % 3
		j := (l / 3) % 3
		k := l / 9
		if i%2 != 0 || j%2 != 0 || k%2 != 0 {
			t.Fatalf("corner local %d has odd lattice position", l)
		}
	}
}

func TestN27Q1InterpolatesTrilinear(t *testing.T) {
	// Interpolating a trilinear vertex field to quadrature points must
	// agree with direct evaluation.
	f := func(x, y, z float64) float64 { return 2 + x - 3*y + 0.5*z + x*y*z }
	pos := [2]float64{-1, 1}
	var vf [8]float64
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				vf[(k*2+j)*2+i] = f(pos[i], pos[j], pos[k])
			}
		}
	}
	g := math.Sqrt(3.0 / 5.0)
	gp := [3]float64{-g, 0, g}
	for q := 0; q < NQP; q++ {
		qi, qj, qk := q%3, (q/3)%3, q/9
		var s float64
		for c := 0; c < 8; c++ {
			s += N27Q1[q][c] * vf[c]
		}
		x, y, z := gp[qi], gp[qj], gp[qk]
		want := f(x, y, z)
		if math.Abs(s-want) > 1e-13 {
			t.Fatalf("q=%d: interp %v, want %v", q, s, want)
		}
	}
}
