package fem

// Precision-generic twins of the tensor-product contraction kernels in
// tensor.go, instantiated at float32 for the reduced-precision smoother
// path and at float64 for the stored-coefficient resident operator. The
// loop structure and arithmetic order are copied verbatim from the
// specialized float64 kernels, so the float64 instantiation is
// bit-for-bit identical to cX/cY/cZ — the property the blocked-smoother
// equivalence tests rely on.

// Float is the scalar constraint of the generic element kernels.
type Float interface {
	~float32 | ~float64
}

// tensorTables holds the 1-D basis/derivative matrices and their
// transposes at the kernel's working precision. The float32 copy is
// converted once at init from the float64 tabulation.
type tensorTables[T Float] struct {
	b1, d1, b1t, d1t [3][3]T
}

var (
	tables64 tensorTables[float64]
	tables32 tensorTables[float32]
)

func init() {
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			tables64.b1[a][b] = B1[a][b]
			tables64.d1[a][b] = D1[a][b]
			tables64.b1t[a][b] = B1[b][a]
			tables64.d1t[a][b] = D1[b][a]
			tables32.b1[a][b] = float32(B1[a][b])
			tables32.d1[a][b] = float32(D1[a][b])
			tables32.b1t[a][b] = float32(B1[b][a])
			tables32.d1t[a][b] = float32(D1[b][a])
		}
	}
}

// cXG contracts the x lattice direction (stride 3); see cX.
func cXG[T Float](m *[3][3]T, in, out *[81]T) {
	m00, m01, m02 := m[0][0], m[0][1], m[0][2]
	m10, m11, m12 := m[1][0], m[1][1], m[1][2]
	m20, m21, m22 := m[2][0], m[2][1], m[2][2]
	for g := 0; g < 9; g++ {
		s := (*[9]T)(in[9*g : 9*g+9])
		d := (*[9]T)(out[9*g : 9*g+9])
		for c := 0; c < 3; c++ {
			i0, i1, i2 := s[c], s[c+3], s[c+6]
			d[c] = m00*i0 + m01*i1 + m02*i2
			d[c+3] = m10*i0 + m11*i1 + m12*i2
			d[c+6] = m20*i0 + m21*i1 + m22*i2
		}
	}
}

// cYG contracts the y lattice direction (stride 9); see cY.
func cYG[T Float](m *[3][3]T, in, out *[81]T) {
	m00, m01, m02 := m[0][0], m[0][1], m[0][2]
	m10, m11, m12 := m[1][0], m[1][1], m[1][2]
	m20, m21, m22 := m[2][0], m[2][1], m[2][2]
	for k := 0; k < 3; k++ {
		s := (*[27]T)(in[27*k : 27*k+27])
		d := (*[27]T)(out[27*k : 27*k+27])
		for r := 0; r < 9; r++ {
			i0, i1, i2 := s[r], s[r+9], s[r+18]
			d[r] = m00*i0 + m01*i1 + m02*i2
			d[r+9] = m10*i0 + m11*i1 + m12*i2
			d[r+18] = m20*i0 + m21*i1 + m22*i2
		}
	}
}

// cZG contracts the z lattice direction (stride 27); see cZ.
func cZG[T Float](m *[3][3]T, in, out *[81]T) {
	m00, m01, m02 := m[0][0], m[0][1], m[0][2]
	m10, m11, m12 := m[1][0], m[1][1], m[1][2]
	m20, m21, m22 := m[2][0], m[2][1], m[2][2]
	for r := 0; r < 27; r++ {
		i0, i1, i2 := in[r], in[r+27], in[r+54]
		out[r] = m00*i0 + m01*i1 + m02*i2
		out[r+27] = m10*i0 + m11*i1 + m12*i2
		out[r+54] = m20*i0 + m21*i1 + m22*i2
	}
}

// kernScratchG is the precision-generic per-worker arena of the resident
// element kernel: staging copies of the element state/output at working
// precision plus the contraction temporaries (see kernScratch).
type kernScratchG[T Float] struct {
	ue, ye                 [81]T
	ug0, ug1, ug2          [81]T
	h0, h1, h2             [81]T
	t0, t1, t2, t3, t4, t5 [81]T
}

// tensorGradsG mirrors tensorGrads at working precision; ks.t0–t4 are
// clobbered.
func tensorGradsG[T Float](f, g0, g1, g2 *[81]T, tab *tensorTables[T], ks *kernScratchG[T]) {
	tB, tD := &ks.t0, &ks.t1
	tBB, tDB, tBD := &ks.t2, &ks.t3, &ks.t4
	cXG(&tab.b1, f, tB)
	cXG(&tab.d1, f, tD)
	cYG(&tab.b1, tB, tBB)
	cYG(&tab.b1, tD, tDB)
	cYG(&tab.d1, tB, tBD)
	cZG(&tab.b1, tDB, g0)
	cZG(&tab.b1, tBD, g1)
	cZG(&tab.d1, tBB, g2)
}

// tensorScatterWriteG mirrors tensorScatterWrite at working precision;
// ks.t0–t5 are clobbered.
func tensorScatterWriteG[T Float](h0, h1, h2, ye *[81]T, tab *tensorTables[T], ks *kernScratchG[T]) {
	s0, s1, s2 := &ks.t0, &ks.t1, &ks.t2
	t0, t12, tmp := &ks.t3, &ks.t4, &ks.t5
	cZG(&tab.b1t, h0, s0)
	cZG(&tab.b1t, h1, s1)
	cZG(&tab.d1t, h2, s2)
	cYG(&tab.b1t, s0, t0)
	cYG(&tab.d1t, s1, t12)
	cYG(&tab.b1t, s2, tmp)
	for i := range t12 {
		t12[i] += tmp[i]
	}
	cXG(&tab.d1t, t0, ye)
	cXG(&tab.b1t, t12, tmp)
	for i := range tmp {
		ye[i] += tmp[i]
	}
}

// residentElement applies the stored-coefficient tensor kernel of one
// element at working precision T: the gathered float64 element state is
// rounded once into the staging block, all contractions and the
// ~60-flop/qp coefficient multiply run in T, and the result is widened
// back to float64 for the owner-computes scatter (global vectors stay
// double on every path). coef is the element's 15·NQP coefficient block.
func residentElement[T Float](coef []T, ue *[81]float64, ye *[81]float64, tab *tensorTables[T], ks *kernScratchG[T]) {
	// When T is float64 the staging round-trips are identity copies; read
	// and write the caller's blocks directly instead.
	uT, yT := &ks.ue, &ks.ye
	if p, ok := any(ue).(*[81]T); ok {
		uT = p
	} else {
		for i := range ks.ue {
			ks.ue[i] = T(ue[i])
		}
	}
	direct := false
	if p, ok := any(ye).(*[81]T); ok {
		yT, direct = p, true
	}
	ug0, ug1, ug2 := &ks.ug0, &ks.ug1, &ks.ug2
	tensorGradsG(uT, ug0, ug1, ug2, tab, ks)
	h0, h1, h2 := &ks.h0, &ks.h1, &ks.h2
	// h[a][d] = Σ_e sM[d][e]·g[a][e] + Σ_m Ks[d][m]·tt[m],
	// tt[m] = Σ_e g[m][e]·Ks[e][a]  (a-dependent); see TensorCOp. Fully
	// scalarized: every value's expression tree matches the array form the
	// loop nest had, so the results are bit-identical — the registers just
	// stay live across the whole quadrature point.
	for q := 0; q < NQP; q++ {
		c := coef[15*q : 15*q+15 : 15*q+15]
		sm00, sm01, sm02, sm11, sm12, sm22 := c[0], c[1], c[2], c[3], c[4], c[5]
		k00, k01, k02 := c[6], c[7], c[8]
		k10, k11, k12 := c[9], c[10], c[11]
		k20, k21, k22 := c[12], c[13], c[14]
		g00, g01, g02 := ug0[q*3], ug1[q*3], ug2[q*3]
		g10, g11, g12 := ug0[q*3+1], ug1[q*3+1], ug2[q*3+1]
		g20, g21, g22 := ug0[q*3+2], ug1[q*3+2], ug2[q*3+2]

		// a = 0
		h00 := sm00*g00 + sm01*g01 + sm02*g02
		h01 := sm01*g00 + sm11*g01 + sm12*g02
		h02 := sm02*g00 + sm12*g01 + sm22*g02
		t0 := g00*k00 + g01*k10 + g02*k20
		t1 := g10*k00 + g11*k10 + g12*k20
		t2 := g20*k00 + g21*k10 + g22*k20
		h00 += k00*t0 + k01*t1 + k02*t2
		h01 += k10*t0 + k11*t1 + k12*t2
		h02 += k20*t0 + k21*t1 + k22*t2

		// a = 1
		h10 := sm00*g10 + sm01*g11 + sm02*g12
		h11 := sm01*g10 + sm11*g11 + sm12*g12
		h12 := sm02*g10 + sm12*g11 + sm22*g12
		t0 = g00*k01 + g01*k11 + g02*k21
		t1 = g10*k01 + g11*k11 + g12*k21
		t2 = g20*k01 + g21*k11 + g22*k21
		h10 += k00*t0 + k01*t1 + k02*t2
		h11 += k10*t0 + k11*t1 + k12*t2
		h12 += k20*t0 + k21*t1 + k22*t2

		// a = 2
		h20 := sm00*g20 + sm01*g21 + sm02*g22
		h21 := sm01*g20 + sm11*g21 + sm12*g22
		h22 := sm02*g20 + sm12*g21 + sm22*g22
		t0 = g00*k02 + g01*k12 + g02*k22
		t1 = g10*k02 + g11*k12 + g12*k22
		t2 = g20*k02 + g21*k12 + g22*k22
		h20 += k00*t0 + k01*t1 + k02*t2
		h21 += k10*t0 + k11*t1 + k12*t2
		h22 += k20*t0 + k21*t1 + k22*t2

		h0[q*3], h0[q*3+1], h0[q*3+2] = h00, h10, h20
		h1[q*3], h1[q*3+1], h1[q*3+2] = h01, h11, h21
		h2[q*3], h2[q*3+1], h2[q*3+2] = h02, h12, h22
	}
	tensorScatterWriteG(h0, h1, h2, yT, tab, ks)
	if !direct {
		for i := range ye {
			ye[i] = float64(yT[i])
		}
	}
}
