package fem

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

// TestCouplingAdjoint: the gradient and divergence blocks are transposes,
// <G·p, u> == <p, D·u> on the free space.
func TestCouplingAdjoint(t *testing.T) {
	p := testProblem(t, 3, 2, 2, 2)
	c := NewCoupling(p)
	rng := rand.New(rand.NewSource(1))
	nu, np := p.DA.NVelDOF(), p.DA.NPresDOF()
	for trial := 0; trial < 5; trial++ {
		u := randVelocity(rng, nu)
		p.BC.ZeroConstrained(u)
		pv := randVelocity(rng, np)
		gu := la.NewVec(nu)
		c.ApplyGAdd(pv, gu)
		du := la.NewVec(np)
		c.ApplyD(u, du)
		d1 := gu.Dot(u)
		d2 := pv.Dot(du)
		if math.Abs(d1-d2) > 1e-10*(1+math.Abs(d1)) {
			t.Fatalf("trial %d: <Gp,u>=%v != <p,Du>=%v", trial, d1, d2)
		}
	}
}

// TestDivergenceFreeField: a rigid rotation is exactly divergence-free, so
// D·u must vanish on any mesh.
func TestDivergenceFreeField(t *testing.T) {
	da := mesh.New(3, 2, 2, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.04*y, y + 0.05*z*x, z + 0.02*x
	})
	p := NewProblem(da, nil)
	c := NewCoupling(p)
	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < da.NNodes(); n++ {
		x, _, z := da.NodeCoords(n)
		u[3*n] = z // u = (z, 0, -x): rotation about y
		u[3*n+2] = -x
	}
	dp := la.NewVec(p.DA.NPresDOF())
	c.ApplyDRaw(u, dp)
	if r := dp.NormInf(); r > 1e-11 {
		t.Fatalf("divergence of rotation = %v", r)
	}
}

// TestDivergenceOfLinearField: for u = (x,0,0), ∇·u = 1, so the constant
// pressure mode of D·u integrates -volume per element.
func TestDivergenceOfLinearField(t *testing.T) {
	da := mesh.New(2, 2, 2, 0, 2, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.03*math.Sin(y), y, z + 0.02*x
	})
	p := NewProblem(da, nil)
	c := NewCoupling(p)
	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < da.NNodes(); n++ {
		x, _, _ := da.NodeCoords(n)
		u[3*n] = x
	}
	dp := la.NewVec(p.DA.NPresDOF())
	c.ApplyDRaw(u, dp)
	var sum float64
	for e := 0; e < da.NElements(); e++ {
		sum += dp[4*e]
	}
	vol := IntegrateVolume(p)
	if math.Abs(sum+vol) > 1e-10*vol {
		t.Fatalf("Σ constant-mode divergence = %v, want %v", sum, -vol)
	}
}

// TestPressureMassInverse: applying M then M⁻¹ element-wise recovers the
// input; and M⁻¹ is SPD.
func TestPressureMassInverse(t *testing.T) {
	p := testProblem(t, 2, 2, 2, 1)
	m := NewPressureMass(p)
	rng := rand.New(rand.NewSource(3))
	np := p.DA.NPresDOF()
	x := randVelocity(rng, np)
	// Build M·x directly by quadrature.
	mx := la.NewVec(np)
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		var ctr, hinv [3]float64
		elemCenterScale(&xe, &ctr, &hinv)
		var jinv [9]float64
		var psi [4]float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(&xe, q, &jinv)
			w := W3[q] * detJ / p.Eta[NQP*e+q]
			var cx, cy, cz float64
			for n := 0; n < 27; n++ {
				nn := N27[q][n]
				cx += nn * xe[3*n]
				cy += nn * xe[3*n+1]
				cz += nn * xe[3*n+2]
			}
			pressureBasisAt(cx, cy, cz, &ctr, &hinv, &psi)
			var dot float64
			for j := 0; j < 4; j++ {
				dot += psi[j] * x[4*e+j]
			}
			for i := 0; i < 4; i++ {
				mx[4*e+i] += w * psi[i] * dot
			}
		}
	})
	y := la.NewVec(np)
	m.ApplyInv(mx, y)
	for i := range y {
		if math.Abs(y[i]-x[i]) > 1e-9*(1+math.Abs(x[i])) {
			t.Fatalf("M⁻¹Mx != x at %d: %v vs %v", i, y[i], x[i])
		}
	}
	// SPD: xᵀM⁻¹x > 0.
	z := la.NewVec(np)
	m.ApplyInv(x, z)
	if e := z.Dot(x); e <= 0 {
		t.Fatalf("M⁻¹ not positive: %v", e)
	}
}

// TestMomentumRHSTotalForce: the total z-force equals -∫ρ g_z dV when no
// rows are constrained (Σ_i N_i = 1).
func TestMomentumRHSTotalForce(t *testing.T) {
	da := mesh.New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	p := NewProblem(da, nil)
	p.Gravity = [3]float64{0, 0, -9.8}
	p.SetCoefficientsFunc(nil, func(x, y, z float64) float64 { return 1.2 })
	b := la.NewVec(p.DA.NVelDOF())
	MomentumRHS(p, b)
	var fz float64
	for n := 0; n < da.NNodes(); n++ {
		fz += b[3*n+2]
	}
	want := -9.8 * 1.2 * 1.0 // ∫ρ·g_z over the unit volume: downward pull
	if math.Abs(fz-want) > 1e-10 {
		t.Fatalf("total z load = %v, want %v", fz, want)
	}
}

// TestIntegrateVolume: quadrature volume is exact for an affinely deformed
// box.
func TestIntegrateVolume(t *testing.T) {
	da := mesh.New(3, 2, 4, 0, 2, 0, 3, 0, 1)
	p := NewProblem(da, nil)
	if v := IntegrateVolume(p); math.Abs(v-6) > 1e-10 {
		t.Fatalf("volume = %v, want 6", v)
	}
	// Linear shear preserves volume (det = 1).
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.3*y, y, z + 0.1*x
	})
	p2 := NewProblem(da, nil)
	if v := IntegrateVolume(p2); math.Abs(v-6) > 1e-9 {
		t.Fatalf("sheared volume = %v, want 6", v)
	}
}

// TestCouplingPressureNullForce: a constant pressure field exerts zero net
// force on unconstrained interior nodes only through boundary terms; more
// useful invariant: for constant p and a divergence-free test function the
// work <G·p, u> vanishes.
func TestCouplingPressureNullForce(t *testing.T) {
	da := mesh.New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	p := NewProblem(da, nil)
	c := NewCoupling(p)
	pv := la.NewVec(p.DA.NPresDOF())
	for e := 0; e < da.NElements(); e++ {
		pv[4*e] = 3.5 // constant mode only
	}
	gu := la.NewVec(p.DA.NVelDOF())
	c.ApplyGAdd(pv, gu)
	// Divergence-free rotation u = (y,-x,0).
	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < da.NNodes(); n++ {
		x, y, _ := da.NodeCoords(n)
		u[3*n] = y
		u[3*n+1] = -x
	}
	if w := gu.Dot(u); math.Abs(w) > 1e-10 {
		t.Fatalf("<G·const, div-free u> = %v", w)
	}
}
