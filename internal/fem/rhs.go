package fem

import "ptatin3d/internal/la"

// MomentumRHS computes the body-force load vector of the momentum
// equation, F_i = +∫ ρ·g·N_i dV, into b. This is the standard
// "∇·σ + ρg = 0" buoyancy convention: with g pointing down, denser
// material is pulled down. (Read literally, the signs of Eq. (1)/(10) in
// the paper would reverse this; the paper's own results — dense spheres
// sedimenting — require the convention used here.) Constrained rows are
// zeroed: the solvers work in residual-correction form, so boundary
// values enter through the state, never the load.
func MomentumRHS(p *Problem, b la.Vec) {
	if len(b) != p.DA.NVelDOF() {
		panic("fem: MomentumRHS length mismatch")
	}
	g := p.Gravity
	p.slabApply(nil, false, true, false, b, func(e int, _, xe, be *[81]float64, _ *kernScratch) {
		*be = [81]float64{}
		var jinv [9]float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(xe, q, &jinv)
			w := W3[q] * detJ * p.Rho[NQP*e+q]
			f0, f1, f2 := w*g[0], w*g[1], w*g[2]
			for n := 0; n < 27; n++ {
				nn := N27[q][n]
				be[3*n] += nn * f0
				be[3*n+1] += nn * f1
				be[3*n+2] += nn * f2
			}
		}
	})
}

// IntegrateVolume returns the mesh volume by quadrature — a cheap global
// sanity check used in tests and in the time-step monitor.
func IntegrateVolume(p *Problem) float64 {
	vol := make([]float64, p.DA.NElements())
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		var jinv [9]float64
		var s float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(&xe, q, &jinv)
			s += W3[q] * detJ
		}
		vol[e] = s
	})
	var total float64
	for _, v := range vol {
		total += v
	}
	return total
}
