package fem

import (
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/par"
)

// Problem holds the discrete data shared by every implementation of the
// viscous-block operator and by the coupling/pressure blocks: the mesh,
// the element→node gather table (the explicit E_e of paper §III-D),
// Dirichlet constraints, and the per-quadrature-point effective viscosity
// and density (buoyancy) coefficients.
type Problem struct {
	DA      *mesh.DA
	Emap    []int32 // 27*NElements node indices
	BC      *mesh.BC
	Workers int // worker goroutines ("cores") for element/row parallel loops

	// Eta and Rho are the effective viscosity and density evaluated at the
	// 27 quadrature points of each element: index NQP*e + q.
	Eta []float64
	Rho []float64

	// Gravity is the body-force acceleration vector g; f = ρ·g (paper §II-A).
	Gravity [3]float64

	// colorOff/colorElems partition the elements into 8 parity classes.
	// Elements of the same class share no nodes, so element loops within a
	// class can scatter to the global residual concurrently without
	// synchronization. Retained for the assembly numeric pass and as the
	// reference schedule in equivalence tests; the apply hot paths use the
	// slab partition below (slab.go).
	colorOff   [9]int
	colorElems []int32

	slabState
}

// NewProblem builds a Problem on the given mesh with the given constraints.
// Coefficients are initialized to η=1, ρ=0; use SetCoefficients* to fill
// them.
func NewProblem(da *mesh.DA, bc *mesh.BC) *Problem {
	if bc == nil {
		bc = mesh.NewBC(da)
	}
	p := &Problem{
		DA:      da,
		Emap:    da.BuildElementMap(),
		BC:      bc,
		Workers: 1,
		Eta:     make([]float64, NQP*da.NElements()),
		Rho:     make([]float64, NQP*da.NElements()),
	}
	for i := range p.Eta {
		p.Eta[i] = 1
	}
	p.buildColors()
	return p
}

// buildColors groups elements by the parity of their (ei,ej,ek) indices.
func (p *Problem) buildColors() {
	da := p.DA
	nel := da.NElements()
	var counts [8]int
	colorOf := func(e int) int {
		ei, ej, ek := da.ElemIJK(e)
		return (ek%2)<<2 | (ej%2)<<1 | ei%2
	}
	for e := 0; e < nel; e++ {
		counts[colorOf(e)]++
	}
	p.colorOff[0] = 0
	for c := 0; c < 8; c++ {
		p.colorOff[c+1] = p.colorOff[c] + counts[c]
	}
	p.colorElems = make([]int32, nel)
	var next [8]int
	for c := 0; c < 8; c++ {
		next[c] = p.colorOff[c]
	}
	for e := 0; e < nel; e++ {
		c := colorOf(e)
		p.colorElems[next[c]] = int32(e)
		next[c]++
	}
}

// forEachElementColored runs body(e) over all elements using the 8-color
// schedule: concurrency only within a color, so body may scatter-add to
// node-indexed arrays without atomics.
func (p *Problem) forEachElementColored(body func(e int)) {
	for c := 0; c < 8; c++ {
		elems := p.colorElems[p.colorOff[c]:p.colorOff[c+1]]
		par.For(p.Workers, len(elems), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				body(int(elems[i]))
			}
		})
	}
}

// forEachElementColoredChunk is forEachElementColored at chunk
// granularity: colors run sequentially, chunks within a color
// concurrently, and body receives each chunk's element list — so loops
// needing per-element scratch can allocate it once per chunk instead of
// once per element.
func (p *Problem) forEachElementColoredChunk(body func(elems []int32)) {
	for c := 0; c < 8; c++ {
		elems := p.colorElems[p.colorOff[c]:p.colorOff[c+1]]
		par.For(p.Workers, len(elems), func(lo, hi int) {
			body(elems[lo:hi])
		})
	}
}

// forEachElement runs body(e) over all elements in parallel with no
// scatter protection (used for loops writing only element-local data).
func (p *Problem) forEachElement(body func(e int)) {
	par.For(p.Workers, p.DA.NElements(), func(lo, hi int) {
		for e := lo; e < hi; e++ {
			body(e)
		}
	})
}

// gatherCoords fills xe (27 nodes × 3, node-major) with the coordinates of
// element e's nodes.
func (p *Problem) gatherCoords(e int, xe *[81]float64) {
	em := p.Emap[27*e : 27*e+27]
	for n := 0; n < 27; n++ {
		c := 3 * int(em[n])
		xe[3*n] = p.DA.Coords[c]
		xe[3*n+1] = p.DA.Coords[c+1]
		xe[3*n+2] = p.DA.Coords[c+2]
	}
}

// gatherVec fills ue with the element-local values of the velocity vector
// u, zeroing constrained dofs (symmetric Dirichlet elimination).
func (p *Problem) gatherVec(e int, u la.Vec, ue *[81]float64) {
	em := p.Emap[27*e : 27*e+27]
	mask := p.BC.Mask
	for n := 0; n < 27; n++ {
		d := 3 * int(em[n])
		for c := 0; c < 3; c++ {
			if mask[d+c] {
				ue[3*n+c] = 0
			} else {
				ue[3*n+c] = u[d+c]
			}
		}
	}
}

// scatterAdd accumulates element-local values ye into the global vector y,
// skipping constrained rows.
func (p *Problem) scatterAdd(e int, ye *[81]float64, y la.Vec) {
	em := p.Emap[27*e : 27*e+27]
	mask := p.BC.Mask
	for n := 0; n < 27; n++ {
		d := 3 * int(em[n])
		for c := 0; c < 3; c++ {
			if !mask[d+c] {
				y[d+c] += ye[3*n+c]
			}
		}
	}
}

// QPCoords computes the physical coordinates of quadrature point q of
// element e by isoparametric interpolation.
func (p *Problem) QPCoords(e, q int) (x, y, z float64) {
	var xe [81]float64
	p.gatherCoords(e, &xe)
	for n := 0; n < 27; n++ {
		nn := N27[q][n]
		x += nn * xe[3*n]
		y += nn * xe[3*n+1]
		z += nn * xe[3*n+2]
	}
	return
}

// SetCoefficientsFunc fills the quadrature-point viscosity and density
// from pointwise functions of physical position. Pass nil to leave a
// field unchanged.
func (p *Problem) SetCoefficientsFunc(eta, rho func(x, y, z float64) float64) {
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		for q := 0; q < NQP; q++ {
			var x, y, z float64
			for n := 0; n < 27; n++ {
				nn := N27[q][n]
				x += nn * xe[3*n]
				y += nn * xe[3*n+1]
				z += nn * xe[3*n+2]
			}
			if eta != nil {
				p.Eta[NQP*e+q] = eta(x, y, z)
			}
			if rho != nil {
				p.Rho[NQP*e+q] = rho(x, y, z)
			}
		}
	})
}

// SetCoefficientsVertex fills the quadrature-point viscosity and density
// by trilinear interpolation of fields defined on the element corner
// vertex grid — the projection target of the material-point method
// (paper Eq. 13). Pass nil to leave a field unchanged.
func (p *Problem) SetCoefficientsVertex(etaV, rhoV []float64) {
	da := p.DA
	if etaV != nil && len(etaV) != da.NVertices() {
		panic("fem: vertex viscosity field length mismatch")
	}
	if rhoV != nil && len(rhoV) != da.NVertices() {
		panic("fem: vertex density field length mismatch")
	}
	p.forEachElement(func(e int) {
		var vs [8]int32
		da.ElemVertices(e, &vs)
		for q := 0; q < NQP; q++ {
			if etaV != nil {
				var s float64
				for c := 0; c < 8; c++ {
					s += N27Q1[q][c] * etaV[vs[c]]
				}
				p.Eta[NQP*e+q] = s
			}
			if rhoV != nil {
				var s float64
				for c := 0; c < 8; c++ {
					s += N27Q1[q][c] * rhoV[vs[c]]
				}
				p.Rho[NQP*e+q] = s
			}
		}
	})
}

// jacobianAt computes the Jacobian ∂x/∂ξ, its inverse and determinant at
// quadrature point q given element coordinates xe. Jinv[d][m] = ∂ξ_d/∂x_m.
func jacobianAt(xe *[81]float64, q int, jinv *[9]float64) (detJ float64) {
	var jmat [9]float64
	g := &G27[q]
	for n := 0; n < 27; n++ {
		gx, gy, gz := g[n][0], g[n][1], g[n][2]
		x, y, z := xe[3*n], xe[3*n+1], xe[3*n+2]
		jmat[0] += x * gx // ∂x/∂ξ0
		jmat[1] += y * gx // row d=0: ∂x_m/∂ξ0
		jmat[2] += z * gx
		jmat[3] += x * gy
		jmat[4] += y * gy
		jmat[5] += z * gy
		jmat[6] += x * gz
		jmat[7] += y * gz
		jmat[8] += z * gz
	}
	// jmat[d*3+m] = ∂x_m/∂ξ_d; its inverse jinv[m*3+d] = ... we want
	// jinv indexed as [d][m] = ∂ξ_d/∂x_m, which is the matrix inverse of
	// jmat viewed as J[d][m]=∂x_m/∂ξ_d transposed. Invert3 gives
	// inv such that jmat·inv = I with row-major interpretation
	// jmat[r][c]: Σ_c jmat[r*3+c] inv[c*3+s] = δ_rs, i.e.
	// Σ_m (∂x_m/∂ξ_r)(inv[m][s]) = δ_rs so inv[m][s] = ∂ξ_s/∂x_m.
	var inv [9]float64
	detJ = la.Invert3(&jmat, &inv)
	// Transpose into jinv[d][m] = ∂ξ_d/∂x_m = inv[m][d].
	jinv[0], jinv[1], jinv[2] = inv[0], inv[3], inv[6]
	jinv[3], jinv[4], jinv[5] = inv[1], inv[4], inv[7]
	jinv[6], jinv[7], jinv[8] = inv[2], inv[5], inv[8]
	return detJ
}

// VertexFieldFromFunc samples a pointwise coefficient function at the
// element corner vertices, producing the vertex-grid field that
// SetCoefficientsVertex and the multigrid coefficient coarseners consume.
// It is the function-defined stand-in for the material-point projection
// (paper Eq. 12) used by analytically specified benchmarks.
func VertexFieldFromFunc(da *mesh.DA, f func(x, y, z float64) float64) []float64 {
	out := make([]float64, da.NVertices())
	for v := range out {
		i, j, k := da.VertexIJK(v)
		x, y, z := da.NodeCoords(da.VertexNode(i, j, k))
		out[v] = f(x, y, z)
	}
	return out
}

// VertexToQP interpolates a vertex-grid scalar field to all quadrature
// points (Eq. 13) into out (length NQP·NElements), without touching the
// problem's coefficient arrays. The Newton linearization uses it to carry
// the projected η′/ε̇ factor to quadrature points.
func VertexToQP(p *Problem, vertexField []float64, out []float64) {
	da := p.DA
	if len(vertexField) != da.NVertices() || len(out) != NQP*da.NElements() {
		panic("fem: VertexToQP length mismatch")
	}
	p.forEachElement(func(e int) {
		var vs [8]int32
		da.ElemVertices(e, &vs)
		for q := 0; q < NQP; q++ {
			var s float64
			for c := 0; c < 8; c++ {
				s += N27Q1[q][c] * vertexField[vs[c]]
			}
			out[NQP*e+q] = s
		}
	})
}
