package fem

import (
	"ptatin3d/internal/la"
	"ptatin3d/internal/par"
)

// BlockedChebyshev runs k Chebyshev sweeps cache-blocked over the slab
// partition of a Resident operator: instead of k full passes over the
// level (each streaming every element's coefficients through cache), the
// sweeps advance slab-by-slab in a wavefront, so a slab's element data is
// applied for step i+1 while it is still resident from step i.
//
// The temporal dependency is the slab graph of the owner-computes
// scatter: advancing step i+1 on block b needs the step-i operator
// contributions of blocks [b, b+D], and applying block b at step i reads
// p values owned by blocks [b-D, b], where D = Resident.Dep() is the
// largest slab span of any shared node (1 for contiguous slabs of a
// lexicographic element order). Scheduling (slot j, block b) at wave
// w = b + j·(D+1) — slot j = the j-th advance+apply pair — satisfies both
// with a barrier only between waves; concurrent slots are ≥D+1 blocks
// apart, so they touch disjoint dofs and the result is bit-identical at
// any worker count, matching the unblocked recurrence term for term.
//
// Per step the final operator application is elided (it only feeds the
// next residual, never x), matching krylov.Chebyshev's NoFinalResidual
// mode: k steps cost k-1 applies from a zero guess, k otherwise.
type BlockedChebyshev struct {
	R       *Resident
	InvDiag la.Vec  // Jacobi preconditioner diagonal (shared with krylov.Jacobi)
	Lo, Hi  float64 // target interval; [0.2λmax, 1.1λmax] as in the paper
	Steps   int

	alpha, beta []float64
	r, p, ap    la.Vec
}

// NewBlockedChebyshev builds a blocked smoother targeting [0.2λ, 1.1λ].
// It is NOT safe for concurrent Smooth calls: work vectors and overlap
// buffers persist across calls on one instance.
func NewBlockedChebyshev(r *Resident, invDiag la.Vec, lambdaMax float64, steps int) *BlockedChebyshev {
	return &BlockedChebyshev{R: r, InvDiag: invDiag, Lo: 0.2 * lambdaMax, Hi: 1.1 * lambdaMax, Steps: steps}
}

// coeffs precomputes the scalar recurrence exactly as the unblocked
// smoother evaluates it, so the per-dof updates agree bitwise.
func (c *BlockedChebyshev) coeffs() {
	if len(c.alpha) == c.Steps {
		return
	}
	c.alpha = make([]float64, c.Steps)
	c.beta = make([]float64, c.Steps)
	d := (c.Hi + c.Lo) / 2
	half := (c.Hi - c.Lo) / 2
	c.alpha[0] = 1 / d
	for i := 1; i < c.Steps; i++ {
		var beta float64
		if i == 1 {
			beta = 0.5 * (half * c.alpha[0]) * (half * c.alpha[0])
		} else {
			beta = (half * c.alpha[i-1] / 2) * (half * c.alpha[i-1] / 2)
		}
		c.beta[i] = beta
		c.alpha[i] = 1 / (d - beta/c.alpha[i-1])
	}
}

// Smooth performs Steps blocked Chebyshev iterations on A·x = b, updating
// x in place. zeroGuess skips the initial operator application when x = 0.
func (c *BlockedChebyshev) Smooth(b, x la.Vec, zeroGuess bool) {
	if c.Steps <= 0 {
		if zeroGuess {
			x.Zero()
		}
		return
	}
	info := c.R.ownership()
	n := c.R.N()
	if c.r == nil || len(c.r) != n {
		c.r, c.p, c.ap = la.NewVec(n), la.NewVec(n), la.NewVec(n)
	}
	c.coeffs()
	p := c.R.P
	bufs := p.getSlabBufs(info)
	B := info.S
	stride := c.R.dep + 1
	slots := c.Steps
	if !zeroGuess {
		slots++ // leading apply-only slot: A·x for the initial residual
	}
	maxWave := (B - 1) + (slots-1)*stride
	for w := 0; w <= maxWave; w++ {
		par.For(p.Workers, slots, func(jlo, jhi int) {
			ks := c.R.getScratch()
			for j := jlo; j < jhi; j++ {
				blk := w - j*stride
				if blk < 0 || blk >= B {
					continue
				}
				if !zeroGuess && j == 0 {
					c.R.applyBlock(blk, x, c.ap, bufs.bufs[blk], ks)
					continue
				}
				i := j
				if !zeroGuess {
					i = j - 1
				}
				c.advance(i, blk, info, b, x, bufs, zeroGuess)
				if i < c.Steps-1 {
					c.R.applyBlock(blk, c.p, c.ap, bufs.bufs[blk], ks)
				}
			}
			c.R.scratch.Put(ks)
		})
	}
	p.slabPool.Put(bufs)
}

// Apply lets the blocked smoother act as a Preconditioner (z = smooth(r)
// from a zero initial guess).
func (c *BlockedChebyshev) Apply(r, z la.Vec) { c.Smooth(r, z, true) }

// advance performs step i's fused vector updates for the dofs owned by
// block b: fold the step-(i-1) operator contributions (direct rows for
// interior nodes, the ascending-slab buffer merge for shared nodes,
// identity rows for constrained dofs) into r, then z, p and x in one
// pass. Every expression mirrors the unblocked BLAS-1 sequence exactly:
// AYPX/AXPY/PointwiseMult term order is preserved so results are
// bit-identical.
func (c *BlockedChebyshev) advance(i, b int, info *slabInfo, bvec, x la.Vec, bufs *slabBufs, zeroGuess bool) {
	mask := c.R.P.BC.Mask
	invd := c.InvDiag
	rv, pv, ap := c.r, c.p, c.ap
	needAp := i > 0 || !zeroGuess
	alpha := c.alpha[i]
	var alphaPrev, beta float64
	if i > 0 {
		alphaPrev = c.alpha[i-1]
		beta = c.beta[i]
	}

	step := func(d int, apd float64) {
		if i == 0 {
			var rd float64
			if zeroGuess {
				rd = bvec[d] // r = b
			} else {
				rd = -apd + bvec[d] // r = A·x; r.AYPX(-1, b)
			}
			rv[d] = rd
			z := invd[d] * rd // z = M⁻¹r
			pv[d] = z         // p = z
			if zeroGuess {
				x[d] = 0 + alpha*z // x.Zero(); x.AXPY(alpha, p)
			} else {
				x[d] += alpha * z
			}
		} else {
			rd := rv[d] + (-alphaPrev)*apd // r.AXPY(-alpha, ap)
			rv[d] = rd
			z := invd[d] * rd
			pd := beta*pv[d] + z // p.AYPX(beta, z)
			pv[d] = pd
			x[d] += alpha * pd
		}
	}

	for _, sp := range c.R.ownInterior[b] {
		for d := sp.Lo; d < sp.Hi; d++ {
			var apd float64
			if needAp {
				if mask[d] {
					if i == 0 {
						apd = x[d] // identity row of A·x
					} else {
						apd = pv[d] // identity row of A·p
					}
				} else {
					apd = ap[d]
				}
			}
			step(d, apd)
		}
	}
	for _, t32 := range c.R.ownShared[b] {
		t := int(t32)
		var a [3]float64
		if needAp {
			for s := int(info.minSlab[t]); s <= int(info.maxSlab[t]); s++ {
				o := 3 * (t - int(info.bufLo[s]))
				bb := bufs.bufs[s]
				a[0] += bb[o]
				a[1] += bb[o+1]
				a[2] += bb[o+2]
			}
		}
		d0 := 3 * int(info.shared[t])
		for cc := 0; cc < 3; cc++ {
			d := d0 + cc
			apd := a[cc]
			if needAp && mask[d] {
				if i == 0 {
					apd = x[d]
				} else {
					apd = pv[d]
				}
			}
			step(d, apd)
		}
	}
}
