package fem

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

// conformanceTol is the agreement bound between operator variants, scaled
// by the result magnitude (ISSUE acceptance: 1e-10).
const conformanceTol = 1e-10

// randomConformanceProblem builds a randomized deformed mesh with random
// smooth coefficients and a random Dirichlet constraint pattern — the
// property-test analogue of testProblem.
func randomConformanceProblem(t testing.TB, rng *rand.Rand) *Problem {
	t.Helper()
	mx, my, mz := 2+rng.Intn(3), 2+rng.Intn(3), 2+rng.Intn(3)
	da := mesh.New(mx, my, mz, 0, 1, 0, 1, 0, 1)
	a1 := 0.02 + 0.05*rng.Float64()
	a2 := 0.02 + 0.05*rng.Float64()
	a3 := 0.02 + 0.04*rng.Float64()
	p1 := 2 * math.Pi * rng.Float64()
	p2 := 2 * math.Pi * rng.Float64()
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + a1*math.Sin(math.Pi*y+p1)*math.Sin(math.Pi*z),
			y + a2*math.Sin(math.Pi*x+p2),
			z + a3*x*y
	})
	bc := mesh.NewBC(da)
	// Random constraint pattern: each face independently unconstrained,
	// free-slip (normal component), or no-slip (all components).
	faces := []mesh.Face{mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax}
	normal := []int{0, 0, 1, 1, 2, 2}
	constrained := 0
	for i, f := range faces {
		switch rng.Intn(3) {
		case 1:
			bc.SetFaceComponent(da, f, normal[i], 0)
			constrained++
		case 2:
			for c := 0; c < 3; c++ {
				bc.SetFaceComponent(da, f, c, 0)
			}
			constrained++
		}
	}
	if constrained == 0 {
		// Keep the operator nonsingular on at least one face.
		bc.SetFaceComponent(da, mesh.ZMin, 2, 0)
	}
	p := NewProblem(da, bc)
	c1 := 1 + 3*rng.Float64()
	w1 := 1 + 5*rng.Float64()
	w2 := 1 + 5*rng.Float64()
	p.SetCoefficientsFunc(
		func(x, y, z float64) float64 {
			return math.Exp(c1 * math.Sin(w1*x) * math.Cos(w2*y) * math.Sin(2*z))
		},
		func(x, y, z float64) float64 { return 1 + 0.3*z },
	)
	return p
}

// TestOperatorConformanceRandomized is the property-style Table-I
// conformance test: on randomized deformed meshes with random coefficient
// fields and random Dirichlet patterns, every viscous-operator variant
// (MF, Tensor, TensorC, Asm) applied to shared random vectors must agree
// to conformanceTol × the result magnitude, with identical Dirichlet-row
// identity behaviour.
func TestOperatorConformanceRandomized(t *testing.T) {
	seeds := []int64{101, 202, 303, 404, 505, 606}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := randomConformanceProblem(t, rng)
			n := p.DA.NVelDOF()

			variants := []struct {
				name string
				op   Operator
			}{
				{"MF", NewMF(p)},
				{"Tensor", NewTensor(p)},
				{"TensorC", NewTensorC(p)},
				{"Asm", NewAsm(p)},
			}

			for trial := 0; trial < 3; trial++ {
				u := randVelocity(rng, n)
				ys := make([]la.Vec, len(variants))
				for vi, v := range variants {
					ys[vi] = la.NewVec(n)
					v.op.Apply(u, ys[vi])
				}
				scale := ys[0].NormInf()
				if scale == 0 {
					t.Fatal("degenerate problem: zero operator result")
				}
				for vi := 1; vi < len(variants); vi++ {
					for i := 0; i < n; i++ {
						if d := math.Abs(ys[vi][i] - ys[0][i]); d > conformanceTol*scale {
							t.Fatalf("trial %d: %s vs %s mismatch at dof %d: %v vs %v (|Δ|=%.3e, tol %.3e)",
								trial, variants[vi].name, variants[0].name, i,
								ys[vi][i], ys[0][i], d, conformanceTol*scale)
						}
					}
				}
				// Dirichlet rows must act as the identity in every variant.
				for vi, v := range variants {
					for d, msk := range p.BC.Mask {
						if msk && ys[vi][d] != u[d] {
							t.Fatalf("%s: constrained row %d not identity: y=%v u=%v",
								v.name, d, ys[vi][d], u[d])
						}
					}
				}
				// Perturbing constrained entries must leave free rows of
				// every variant untouched (columns dropped symmetrically).
				u2 := u.Clone()
				for d, msk := range p.BC.Mask {
					if msk {
						u2[d] += rng.NormFloat64()
					}
				}
				for vi, v := range variants {
					y2 := la.NewVec(n)
					v.op.Apply(u2, y2)
					for d, msk := range p.BC.Mask {
						if !msk && y2[d] != ys[vi][d] {
							t.Fatalf("%s: free row %d influenced by constrained column", v.name, d)
						}
					}
				}
			}
		})
	}
}
