package fem

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

// testProblem builds a small deformed mesh with strongly varying viscosity
// and free-slip boundary conditions — the hardest regime for operator
// equivalence (nontrivial metric terms, coefficient variation, BC rows).
func testProblem(t testing.TB, mx, my, mz int, workers int) *Problem {
	t.Helper()
	da := mesh.New(mx, my, mz, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.06*math.Sin(math.Pi*y)*math.Sin(math.Pi*z),
			y + 0.05*math.Sin(math.Pi*x),
			z + 0.04*x*y
	})
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	p := NewProblem(da, bc)
	p.Workers = workers
	p.SetCoefficientsFunc(
		func(x, y, z float64) float64 {
			return math.Exp(3 * math.Sin(5*x) * math.Cos(4*y) * math.Sin(3*z))
		},
		func(x, y, z float64) float64 { return 1 + 0.2*z },
	)
	return p
}

func randVelocity(rng *rand.Rand, n int) la.Vec {
	u := la.NewVec(n)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	return u
}

// TestOperatorVariantsAgree is the central Table-I correctness test: all
// four operator applications must produce identical results.
func TestOperatorVariantsAgree(t *testing.T) {
	p := testProblem(t, 3, 2, 2, 1)
	rng := rand.New(rand.NewSource(1))
	u := randVelocity(rng, p.DA.NVelDOF())

	mf := NewMF(p)
	tens := NewTensor(p)
	tc := NewTensorC(p)
	asm := NewAsm(p)

	n := p.DA.NVelDOF()
	yMF, yT, yTC, yA := la.NewVec(n), la.NewVec(n), la.NewVec(n), la.NewVec(n)
	mf.Apply(u, yMF)
	tens.Apply(u, yT)
	tc.Apply(u, yTC)
	asm.Apply(u, yA)

	scale := yMF.NormInf()
	for i := 0; i < n; i++ {
		if math.Abs(yT[i]-yMF[i]) > 1e-11*scale {
			t.Fatalf("Tensor vs MF mismatch at %d: %v vs %v", i, yT[i], yMF[i])
		}
		if math.Abs(yTC[i]-yMF[i]) > 1e-11*scale {
			t.Fatalf("TensorC vs MF mismatch at %d: %v vs %v", i, yTC[i], yMF[i])
		}
		if math.Abs(yA[i]-yMF[i]) > 1e-10*scale {
			t.Fatalf("Asm vs MF mismatch at %d: %v vs %v", i, yA[i], yMF[i])
		}
	}
}

// TestOperatorParallelDeterminism: worker count must not change results
// beyond roundoff (same element order within colors ⇒ bitwise identical).
func TestOperatorParallelDeterminism(t *testing.T) {
	p1 := testProblem(t, 4, 2, 2, 1)
	p4 := testProblem(t, 4, 2, 2, 4)
	rng := rand.New(rand.NewSource(3))
	u := randVelocity(rng, p1.DA.NVelDOF())
	y1 := la.NewVec(len(u))
	y4 := la.NewVec(len(u))
	NewTensor(p1).Apply(u, y1)
	NewTensor(p4).Apply(u, y4)
	for i := range y1 {
		if y1[i] != y4[i] {
			t.Fatalf("parallel apply not deterministic at %d: %v vs %v", i, y1[i], y4[i])
		}
	}
}

// TestOperatorSymmetric: <Au,v> == <u,Av> (self-adjoint bilinear form with
// symmetric elimination).
func TestOperatorSymmetric(t *testing.T) {
	p := testProblem(t, 2, 2, 2, 1)
	rng := rand.New(rand.NewSource(5))
	n := p.DA.NVelDOF()
	op := NewTensor(p)
	for trial := 0; trial < 5; trial++ {
		u := randVelocity(rng, n)
		v := randVelocity(rng, n)
		au, av := la.NewVec(n), la.NewVec(n)
		op.Apply(u, au)
		op.Apply(v, av)
		d1, d2 := au.Dot(v), av.Dot(u)
		if math.Abs(d1-d2) > 1e-9*(1+math.Abs(d1)) {
			t.Fatalf("asymmetry: %v vs %v", d1, d2)
		}
	}
}

// TestOperatorSPD: <Au,u> > 0 for nonzero u (free dofs), since the viscous
// block is elliptic once rigid modes are removed by the BCs.
func TestOperatorSPD(t *testing.T) {
	p := testProblem(t, 2, 2, 2, 1)
	rng := rand.New(rand.NewSource(7))
	n := p.DA.NVelDOF()
	op := NewTensor(p)
	for trial := 0; trial < 10; trial++ {
		u := randVelocity(rng, n)
		au := la.NewVec(n)
		op.Apply(u, au)
		if e := au.Dot(u); e <= 0 {
			t.Fatalf("trial %d: energy %v <= 0", trial, e)
		}
	}
}

// TestOperatorNullSpace: without boundary conditions, rigid-body motions
// (translations and linearized rotations) produce zero viscous force.
func TestOperatorNullSpace(t *testing.T) {
	da := mesh.New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.05*y*z, y + 0.03*x, z
	})
	p := NewProblem(da, nil) // no constraints
	p.SetCoefficientsFunc(func(x, y, z float64) float64 { return 1 + x + 2*y*z }, nil)
	op := NewTensor(p)
	n := p.DA.NVelDOF()
	modes := make([]la.Vec, 6)
	for m := range modes {
		modes[m] = la.NewVec(n)
	}
	for nd := 0; nd < da.NNodes(); nd++ {
		x, y, z := da.NodeCoords(nd)
		// Translations.
		modes[0][3*nd] = 1
		modes[1][3*nd+1] = 1
		modes[2][3*nd+2] = 1
		// Rotations about the three axes.
		modes[3][3*nd+1] = -z
		modes[3][3*nd+2] = y
		modes[4][3*nd] = z
		modes[4][3*nd+2] = -x
		modes[5][3*nd] = -y
		modes[5][3*nd+1] = x
	}
	y := la.NewVec(n)
	for m, u := range modes {
		op.Apply(u, y)
		if r := y.NormInf(); r > 1e-11 {
			t.Fatalf("rigid mode %d not in null space: |Au|∞ = %v", m, r)
		}
	}
}

// TestOperatorBCRows: constrained rows act as identity; constrained
// columns are ignored.
func TestOperatorBCRows(t *testing.T) {
	p := testProblem(t, 2, 2, 2, 1)
	rng := rand.New(rand.NewSource(11))
	n := p.DA.NVelDOF()
	op := NewTensor(p)
	u := randVelocity(rng, n)
	y := la.NewVec(n)
	op.Apply(u, y)
	for d, m := range p.BC.Mask {
		if m && y[d] != u[d] {
			t.Fatalf("constrained row %d: y=%v u=%v", d, y[d], u[d])
		}
	}
	// Perturbing constrained input entries must not change free rows.
	u2 := u.Clone()
	for d, m := range p.BC.Mask {
		if m {
			u2[d] += rng.NormFloat64()
		}
	}
	y2 := la.NewVec(n)
	op.Apply(u2, y2)
	for d, m := range p.BC.Mask {
		if !m && y[d] != y2[d] {
			t.Fatalf("free row %d influenced by constrained column", d)
		}
	}
}

// TestDiagonalMatchesAssembled: the matrix-free diagonal equals the
// assembled matrix diagonal.
func TestDiagonalMatchesAssembled(t *testing.T) {
	p := testProblem(t, 2, 2, 3, 2)
	asm := NewAsm(p)
	d1 := la.NewVec(p.DA.NVelDOF())
	asm.A.Diag(d1)
	d2 := la.NewVec(p.DA.NVelDOF())
	Diagonal(p, d2)
	for i := range d1 {
		if math.Abs(d1[i]-d2[i]) > 1e-11*(1+math.Abs(d1[i])) {
			t.Fatalf("diag mismatch at %d: %v vs %v", i, d1[i], d2[i])
		}
	}
	// Diagonal is strictly positive.
	for i, v := range d2 {
		if v <= 0 {
			t.Fatalf("nonpositive diagonal at %d: %v", i, v)
		}
	}
}

// TestAssembledNNZBounds: rows have between 81 and 375 nonzeros as per
// paper §III-D (interior corner nodes couple to 125 nodes × 3 comps).
func TestAssembledNNZBounds(t *testing.T) {
	p := testProblem(t, 4, 4, 4, 1)
	a := AssembleViscous(p)
	min, max := 1<<30, 0
	for r := 0; r < a.NRows; r++ {
		nnz := a.RowPtr[r+1] - a.RowPtr[r]
		if nnz < min {
			min = nnz
		}
		if nnz > max {
			max = nnz
		}
	}
	if min != 81 || max != 375 {
		t.Fatalf("row nnz range [%d,%d], want [81,375]", min, max)
	}
}

// TestApplyFreeRowsConsistency: for a state with zero constrained entries,
// ApplyFreeRows equals Apply on free rows and zero on constrained rows.
func TestApplyFreeRowsConsistency(t *testing.T) {
	p := testProblem(t, 2, 2, 2, 1)
	rng := rand.New(rand.NewSource(13))
	n := p.DA.NVelDOF()
	u := randVelocity(rng, n)
	p.BC.ZeroConstrained(u)
	for _, op := range []ResidualOperator{NewMF(p), NewTensor(p)} {
		y1, y2 := la.NewVec(n), la.NewVec(n)
		op.Apply(u, y1)
		op.ApplyFreeRows(u, y2)
		for d, m := range p.BC.Mask {
			if m {
				if y2[d] != 0 {
					t.Fatalf("constrained row %d not zeroed: %v", d, y2[d])
				}
			} else if y1[d] != y2[d] {
				t.Fatalf("free row %d differs: %v vs %v", d, y1[d], y2[d])
			}
		}
	}
}
