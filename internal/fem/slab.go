package fem

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ptatin3d/internal/la"
	"ptatin3d/internal/par"
	"ptatin3d/internal/telemetry"
)

// Slab-partitioned owner-computes scatter: the barrier-free replacement
// for the 8-color element schedule on every operator apply path.
//
// Elements are split into S contiguous slabs. A worker that processes
// slab s scatter-adds directly into the global vector for nodes touched
// by slab s alone ("interior" nodes — the overwhelming majority), and
// accumulates contributions to nodes shared with other slabs into a small
// private per-slab overlap buffer. After all slabs finish, one
// node-parallel merge pass folds the buffers into the global vector,
// summing each shared node's slab contributions in ascending slab order.
//
// This is the shared-memory analogue of the paper's rank-local element
// loops followed by a halo sum (VecGhostUpdate): the slab plays the role
// of the MPI rank's element partition, the overlap buffer the role of the
// ghost region, and the merge pass the role of the neighborhood
// reduction. Compared to coloring it removes the 8 full barriers per
// apply and restores the cache-friendly lexicographic element order.
//
// Determinism: S is fixed at first use — min(nel, max(8, GOMAXPROCS)) —
// and never depends on Problem.Workers. Elements within a slab run in
// ascending order on one worker, and the merge sums slabs in ascending
// index, so the floating-point association of every output entry is a
// function of the mesh alone: results are bit-identical for any worker
// count, which the colored schedule never guaranteed.

// slabBlock is the gather→apply→scatter batch width: enough elements to
// amortize the Emap indirection and keep the three scratch blocks
// (~15 kB) inside L1.
const slabBlock = 8

// kernScratch is the reusable per-worker arena handed to slab kernels: the
// intermediate [81]float64 fields of the tensor contractions. Declaring
// these as kernel locals costs a ~10 kB duffzero per element; the arena is
// zeroed once per worker chunk and every kernel fully overwrites the
// fields it reads, so elements stream through with no zero-init churn.
//
// Conventions (see tensor.go): ug/xg hold state and coordinate reference
// gradients, h the quadrature cotangents, t0–t5 are contraction
// temporaries clobbered by tensorGrads (t0–t4) and tensorScatterWrite
// (t0–t5).
type kernScratch struct {
	ug0, ug1, ug2          [81]float64
	xg0, xg1, xg2          [81]float64
	h0, h1, h2             [81]float64
	t0, t1, t2, t3, t4, t5 [81]float64
}

// slabInfo is the immutable slab partition of a Problem's element range,
// built once on first slab apply.
type slabInfo struct {
	S   int   // slab count (fixed, worker-count independent)
	off []int // S+1 slab element offsets: slab s is [off[s], off[s+1])

	// shared lists, in ascending node id, every node touched by more than
	// one slab; sharedIdx maps node id → index into shared (-1: interior).
	shared    []int32
	sharedIdx []int32

	// minSlab/maxSlab give, per shared-list index, the first and last slab
	// touching that node. Every slab in between covers the node in its
	// node span (spans are monotone in s for lexicographic element order),
	// so merge reads need no per-slab membership test.
	minSlab, maxSlab []int32

	// bufLo/bufHi give, per slab, the half-open shared-list index range of
	// the slab's node span: its overlap buffer stores 3 floats per shared
	// node in [bufLo, bufHi).
	bufLo, bufHi []int32
}

// slabBufs is one apply's set of per-slab overlap buffers, pooled so
// concurrent applies on the same Problem never share accumulation state.
type slabBufs struct {
	bufs [][]float64
}

// slabs returns the Problem's slab partition, building it on first use.
func (p *Problem) slabs() *slabInfo {
	p.slabOnce.Do(func() {
		nel := p.DA.NElements()
		S := runtime.GOMAXPROCS(0)
		if S < 8 {
			S = 8
		}
		if S > nel {
			S = nel
		}
		info := &slabInfo{S: S, off: make([]int, S+1)}
		for s := 0; s <= S; s++ {
			info.off[s] = s * nel / S
		}

		nn := p.DA.NNodes()
		minS := make([]int32, nn)
		maxS := make([]int32, nn)
		for n := range minS {
			minS[n] = -1
		}
		for s := 0; s < S; s++ {
			em := p.Emap[27*info.off[s] : 27*info.off[s+1]]
			for _, n := range em {
				if minS[n] < 0 {
					minS[n] = int32(s)
				}
				maxS[n] = int32(s)
			}
		}

		info.sharedIdx = make([]int32, nn)
		for n := 0; n < nn; n++ {
			if minS[n] >= 0 && minS[n] != maxS[n] {
				info.sharedIdx[n] = int32(len(info.shared))
				info.shared = append(info.shared, int32(n))
				info.minSlab = append(info.minSlab, minS[n])
				info.maxSlab = append(info.maxSlab, maxS[n])
			} else {
				info.sharedIdx[n] = -1
			}
		}

		info.bufLo = make([]int32, S)
		info.bufHi = make([]int32, S)
		for s := 0; s < S; s++ {
			em := p.Emap[27*info.off[s] : 27*info.off[s+1]]
			lo, hi := em[0], em[0]
			for _, n := range em {
				if n < lo {
					lo = n
				}
				if n > hi {
					hi = n
				}
			}
			info.bufLo[s] = int32(sort.Search(len(info.shared), func(t int) bool {
				return info.shared[t] >= lo
			}))
			info.bufHi[s] = int32(sort.Search(len(info.shared), func(t int) bool {
				return info.shared[t] > hi
			}))
		}
		p.slab = info
	})
	return p.slab
}

// getSlabBufs takes a zero-filled-on-demand buffer set from the pool.
func (p *Problem) getSlabBufs(info *slabInfo) *slabBufs {
	if b, ok := p.slabPool.Get().(*slabBufs); ok {
		return b
	}
	b := &slabBufs{bufs: make([][]float64, info.S)}
	for s := 0; s < info.S; s++ {
		b.bufs[s] = make([]float64, 3*(info.bufHi[s]-info.bufLo[s]))
	}
	return b
}

// SlabStats reports the slab partition: slab count, shared (slab-boundary)
// node count, and total node count. Exposed for tests, drivers and the
// cost model; triggers the lazy partition build.
func (p *Problem) SlabStats() (slabs, sharedNodes, totalNodes int) {
	info := p.slabs()
	return info.S, len(info.shared), p.DA.NNodes()
}

// slabApply runs kern over every element using the slab-partitioned
// owner-computes schedule and accumulates the per-element outputs ye into
// y, skipping constrained rows.
//
//   - u == nil: no state gather; kern receives a stale ue it must ignore.
//   - masked: constrained entries of the gathered ue are zeroed
//     (symmetric Dirichlet elimination); otherwise the raw state is
//     gathered (residual evaluation on a boundary-valued state).
//   - needX: gather nodal coordinates into xe.
//   - accumulate: keep y's prior contents (coupling ApplyGAdd); otherwise
//     y is zeroed first.
//
// kern must fully define ye (overwrite, not accumulate): scratch blocks
// are reused across elements without re-zeroing. The kernScratch arena is
// likewise reused across elements of a worker's chunk.
func (p *Problem) slabApply(u la.Vec, masked, needX, accumulate bool, y la.Vec, kern func(e int, ue, xe, ye *[81]float64, ks *kernScratch)) {
	info := p.slabs()
	if !accumulate {
		y.Zero()
	}
	bufs := p.getSlabBufs(info)
	mask := p.BC.Mask

	par.For(p.Workers, info.S, func(slo, shi int) {
		var ue, xe, ye [slabBlock][81]float64
		var ks kernScratch
		for s := slo; s < shi; s++ {
			buf := bufs.bufs[s]
			for i := range buf {
				buf[i] = 0
			}
			bufOff := 3 * int(info.bufLo[s])
			e0, e1 := info.off[s], info.off[s+1]
			for b := e0; b < e1; b += slabBlock {
				bn := e1 - b
				if bn > slabBlock {
					bn = slabBlock
				}
				for i := 0; i < bn; i++ {
					e := b + i
					if u != nil {
						if masked {
							p.gatherVec(e, u, &ue[i])
						} else {
							em := p.Emap[27*e : 27*e+27]
							for n := 0; n < 27; n++ {
								d := 3 * int(em[n])
								ue[i][3*n] = u[d]
								ue[i][3*n+1] = u[d+1]
								ue[i][3*n+2] = u[d+2]
							}
						}
					}
					if needX {
						p.gatherCoords(e, &xe[i])
					}
				}
				for i := 0; i < bn; i++ {
					kern(b+i, &ue[i], &xe[i], &ye[i], &ks)
				}
				for i := 0; i < bn; i++ {
					em := p.Emap[27*(b+i) : 27*(b+i)+27]
					yei := &ye[i]
					for n := 0; n < 27; n++ {
						node := int(em[n])
						if t := int(p.slab.sharedIdx[node]); t >= 0 {
							o := 3*t - bufOff
							buf[o] += yei[3*n]
							buf[o+1] += yei[3*n+1]
							buf[o+2] += yei[3*n+2]
						} else {
							d := 3 * node
							if !mask[d] {
								y[d] += yei[3*n]
							}
							if !mask[d+1] {
								y[d+1] += yei[3*n+1]
							}
							if !mask[d+2] {
								y[d+2] += yei[3*n+2]
							}
						}
					}
				}
			}
		}
	})

	// Merge pass: per shared node, sum the overlap buffers in ascending
	// slab order. Intermediate slabs not touching the node read exact
	// zeros (the node lies inside their span, so the read is in-bounds).
	par.For(p.Workers, len(info.shared), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			var a0, a1, a2 float64
			for s := int(info.minSlab[t]); s <= int(info.maxSlab[t]); s++ {
				o := 3 * (t - int(info.bufLo[s]))
				b := bufs.bufs[s]
				a0 += b[o]
				a1 += b[o+1]
				a2 += b[o+2]
			}
			d := 3 * int(info.shared[t])
			if !mask[d] {
				y[d] += a0
			}
			if !mask[d+1] {
				y[d+1] += a1
			}
			if !mask[d+2] {
				y[d+2] += a2
			}
		}
	})

	p.slabPool.Put(bufs)

	if fp := femProbe.Load(); fp != nil {
		fp.SlabApplies.Inc()
		fp.Slabs.Set(float64(info.S))
		fp.SharedFrac.Set(float64(len(info.shared)) / float64(p.DA.NNodes()))
	}
}

// FemProbe carries the slab-schedule instruments recorded by slabApply.
type FemProbe struct {
	SlabApplies *telemetry.Counter // slab-scheduled operator applications
	Slabs       *telemetry.Gauge   // slab count S of the partition
	SharedFrac  *telemetry.Gauge   // slab-boundary fraction: shared nodes / total nodes
}

var femProbe atomic.Pointer[FemProbe]

// SetTelemetry installs slab-schedule instrumentation under sc
// ("slab_applies" counter, "slabs" and "shared_frac" gauges). The
// boundary fraction shared_frac is the direct measure of how much of the
// scatter traffic goes through overlap buffers rather than straight into
// the output vector. Passing nil uninstalls the probe.
func SetTelemetry(sc *telemetry.Scope) {
	if sc == nil {
		femProbe.Store(nil)
		return
	}
	femProbe.Store(&FemProbe{
		SlabApplies: sc.Counter("slab_applies"),
		Slabs:       sc.Gauge("slabs"),
		SharedFrac:  sc.Gauge("shared_frac"),
	})
}

// slabState is embedded in Problem: the lazily built partition and the
// pool of per-apply overlap buffer sets.
type slabState struct {
	slabOnce sync.Once
	slab     *slabInfo
	slabPool sync.Pool
}
