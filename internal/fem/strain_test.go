package fem

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

// TestStrainRateLinearField: for u = (a·x, b·y, c·z) the strain rate is
// the constant diagonal (a,b,c) everywhere.
func TestStrainRateLinearField(t *testing.T) {
	da := mesh.New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.04*y, y + 0.03*z, z
	})
	p := NewProblem(da, nil)
	u := la.NewVec(p.DA.NVelDOF())
	a, b, c := 2.0, -1.0, -1.0
	for n := 0; n < da.NNodes(); n++ {
		x, y, z := da.NodeCoords(n)
		u[3*n] = a * x
		u[3*n+1] = b * y
		u[3*n+2] = c * z
	}
	nel := da.NElements()
	d6 := make([]float64, 6*NQP*nel)
	eII := make([]float64, NQP*nel)
	StrainRateAtQP(p, u, d6, eII)
	wantII := math.Sqrt(0.5 * (a*a + b*b + c*c))
	for q := 0; q < NQP*nel; q++ {
		if math.Abs(d6[6*q]-a) > 1e-11 || math.Abs(d6[6*q+1]-b) > 1e-11 || math.Abs(d6[6*q+2]-c) > 1e-11 {
			t.Fatalf("qp %d: diag (%v,%v,%v)", q, d6[6*q], d6[6*q+1], d6[6*q+2])
		}
		for k := 3; k < 6; k++ {
			if math.Abs(d6[6*q+k]) > 1e-11 {
				t.Fatalf("qp %d: shear component %v", q, d6[6*q+k])
			}
		}
		if math.Abs(eII[q]-wantII) > 1e-11 {
			t.Fatalf("qp %d: ε̇_II = %v, want %v", q, eII[q], wantII)
		}
	}
	// Point evaluation agrees.
	got := StrainRateAtPoint(p, u, 3, 0.3, -0.2, 0.7)
	if math.Abs(got-wantII) > 1e-11 {
		t.Fatalf("point ε̇_II = %v, want %v", got, wantII)
	}
	// Rigid rotation has zero strain rate.
	for n := 0; n < da.NNodes(); n++ {
		_, y, z := da.NodeCoords(n)
		u[3*n] = 0
		u[3*n+1] = -z
		u[3*n+2] = y
	}
	StrainRateAtQP(p, u, nil, eII)
	for q, v := range eII {
		if v > 1e-11 {
			t.Fatalf("rotation strain rate at qp %d: %v", q, v)
		}
	}
}

// TestNewtonOpConsistency: with Fac = 0 the Newton operator equals the
// Picard (Tensor) operator; it stays symmetric with Fac ≠ 0 (the added
// rank-one term D⊗D is symmetric).
func TestNewtonOpConsistency(t *testing.T) {
	p := testProblem(t, 2, 2, 2, 1)
	rng := rand.New(rand.NewSource(3))
	n := p.DA.NVelDOF()
	state := randVelocity(rng, n)
	nel := p.DA.NElements()
	d6 := make([]float64, 6*NQP*nel)
	eII := make([]float64, NQP*nel)
	StrainRateAtQP(p, state, d6, eII)

	base := NewTensor(p)
	zeroFac := make([]float64, NQP*nel)
	nop := NewNewton(base, d6, zeroFac)
	u := randVelocity(rng, n)
	y1, y2 := la.NewVec(n), la.NewVec(n)
	base.Apply(u, y1)
	nop.Apply(u, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12*(1+math.Abs(y1[i])) {
			t.Fatalf("zero-fac Newton differs at %d", i)
		}
	}
	// Nonzero (negative, shear-thinning-like) factor: symmetric operator.
	fac := make([]float64, NQP*nel)
	for i := range fac {
		if eII[i] > 1e-12 {
			fac[i] = -0.5 * p.Eta[i] / eII[i] // η′ = −η/2ε̇ style
		}
	}
	nop2 := NewNewton(base, d6, fac)
	v := randVelocity(rng, n)
	av, au := la.NewVec(n), la.NewVec(n)
	nop2.Apply(u, au)
	nop2.Apply(v, av)
	d1, d2 := au.Dot(v), av.Dot(u)
	if math.Abs(d1-d2) > 1e-9*(1+math.Abs(d1)) {
		t.Fatalf("Newton operator asymmetric: %v vs %v", d1, d2)
	}
}

// TestNewtonOpMatchesDirectionalDerivative: the Newton operator is the
// derivative of the nonlinear residual: for F(u) built with η(ε̇(u)),
// J(u)·v ≈ (F(u+h v) − F(u−h v)) / 2h.
func TestNewtonOpMatchesDirectionalDerivative(t *testing.T) {
	da := mesh.New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin)
	p := NewProblem(da, bc)
	nel := da.NElements()
	rng := rand.New(rand.NewSource(9))
	n := p.DA.NVelDOF()
	state := randVelocity(rng, n)
	p.BC.ZeroConstrained(state)
	dir := randVelocity(rng, n)
	p.BC.ZeroConstrained(dir)

	// Carreau-like smooth law η = (0.1 + ε̇²)^(-1/4), with analytic
	// η′ = -½ ε̇ (0.1 + ε̇²)^(-5/4).
	etaOf := func(e float64) float64 { return math.Pow(0.1+e*e, -0.25) }
	etaPrime := func(e float64) float64 { return -0.5 * e * math.Pow(0.1+e*e, -1.25) }

	// Residual F(u) = A(η(u))·u (free rows).
	residual := func(u la.Vec, f la.Vec) {
		eII := make([]float64, NQP*nel)
		StrainRateAtQP(p, u, nil, eII)
		for i, e := range eII {
			p.Eta[i] = etaOf(e)
		}
		op := NewTensor(p)
		op.ApplyFreeRows(u, f)
	}

	// Build the Jacobian at `state`.
	d6 := make([]float64, 6*NQP*nel)
	eII := make([]float64, NQP*nel)
	StrainRateAtQP(p, state, d6, eII)
	fac := make([]float64, NQP*nel)
	for i, e := range eII {
		p.Eta[i] = etaOf(e)
		if e > 1e-14 {
			fac[i] = etaPrime(e) / e
		}
	}
	jop := NewNewton(NewTensor(p), d6, fac)
	jv := la.NewVec(n)
	jop.Apply(dir, jv)

	// Central finite difference of the residual.
	h := 1e-6
	up := state.Clone()
	up.AXPY(h, dir)
	um := state.Clone()
	um.AXPY(-h, dir)
	fp, fm := la.NewVec(n), la.NewVec(n)
	residual(up, fp)
	residual(um, fm)
	fd := fp.Clone()
	fd.AXPY(-1, fm)
	fd.Scale(1 / (2 * h))

	// Compare on free rows.
	diff := 0.0
	scale := fd.Norm2()
	for d, m := range p.BC.Mask {
		if !m {
			diff += (jv[d] - fd[d]) * (jv[d] - fd[d])
		}
	}
	diff = math.Sqrt(diff)
	if diff > 1e-5*scale {
		t.Fatalf("Jacobian mismatch: |Jv - FD| = %.3e (scale %.3e)", diff, scale)
	}
}

// TestEvalPressure: evaluating the P1disc basis reproduces a field that is
// linear within each element.
func TestEvalPressure(t *testing.T) {
	da := mesh.New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	p := NewProblem(da, nil)
	pv := la.NewVec(p.DA.NPresDOF())
	// Set element 0's modes: p(x) = 3 + 2·ψ1.
	pv[0] = 3
	pv[1] = 2
	// Element 0 spans [0,0.5]³; centre x=0.25, half-extent 0.25.
	got := EvalPressure(p, pv, 0, 0.375, 0.2, 0.3) // ψ1 = (0.375-0.25)/0.25 = 0.5
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("pressure %v, want 4", got)
	}
}
