package fem

import (
	"math"

	"ptatin3d/internal/la"
)

// StrainRateAtQP evaluates, for the (unmasked) velocity state u, the
// physical strain-rate tensor D(u) and its second invariant
// ε̇_II = √(½ D:D) at every quadrature point. d6 receives the six unique
// components per point in the order (xx, yy, zz, xy, xz, yz); either
// output may be nil. Lengths: d6 = 6·NQP·nel, eII = NQP·nel.
func StrainRateAtQP(p *Problem, u la.Vec, d6, eII []float64) {
	nel := p.DA.NElements()
	if d6 != nil && len(d6) != 6*NQP*nel {
		panic("fem: StrainRateAtQP d6 length mismatch")
	}
	if eII != nil && len(eII) != NQP*nel {
		panic("fem: StrainRateAtQP eII length mismatch")
	}
	p.forEachElement(func(e int) {
		var ue, xe [81]float64
		em := p.Emap[27*e : 27*e+27]
		for n := 0; n < 27; n++ {
			d := 3 * int(em[n])
			ue[3*n] = u[d]
			ue[3*n+1] = u[d+1]
			ue[3*n+2] = u[d+2]
		}
		p.gatherCoords(e, &xe)
		var ks kernScratch
		ug0, ug1, ug2 := &ks.ug0, &ks.ug1, &ks.ug2
		tensorGrads(&ue, ug0, ug1, ug2, &ks)
		var jinv [9]float64
		for q := 0; q < NQP; q++ {
			jacobianAt(&xe, q, &jinv)
			// Physical velocity gradient Gp[a][m].
			var gp [9]float64
			for a := 0; a < 3; a++ {
				g0, g1, g2 := ug0[q*3+a], ug1[q*3+a], ug2[q*3+a]
				gp[a*3] = g0*jinv[0] + g1*jinv[3] + g2*jinv[6]
				gp[a*3+1] = g0*jinv[1] + g1*jinv[4] + g2*jinv[7]
				gp[a*3+2] = g0*jinv[2] + g1*jinv[5] + g2*jinv[8]
			}
			dxx := gp[0]
			dyy := gp[4]
			dzz := gp[8]
			dxy := 0.5 * (gp[1] + gp[3])
			dxz := 0.5 * (gp[2] + gp[6])
			dyz := 0.5 * (gp[5] + gp[7])
			if d6 != nil {
				o := 6 * (NQP*e + q)
				d6[o] = dxx
				d6[o+1] = dyy
				d6[o+2] = dzz
				d6[o+3] = dxy
				d6[o+4] = dxz
				d6[o+5] = dyz
			}
			if eII != nil {
				ii := 0.5 * (dxx*dxx + dyy*dyy + dzz*dzz + 2*(dxy*dxy+dxz*dxz+dyz*dyz))
				eII[NQP*e+q] = math.Sqrt(ii)
			}
		}
	})
}

// StrainRateAtPoint evaluates ε̇_II of the (unmasked) velocity state u at
// reference position (xi,et,ze) of element e — the material-point state
// feeding the flow laws (paper §II-C).
func StrainRateAtPoint(p *Problem, u la.Vec, e int, xi, et, ze float64) float64 {
	var nb [27]float64
	var gb [27][3]float64
	Q2EvalGrad(xi, et, ze, &nb, &gb)
	em := p.Emap[27*e : 27*e+27]
	var jmat [9]float64
	var gref [9]float64 // ∂u_a/∂ξ_d
	for n := 0; n < 27; n++ {
		c := 3 * int(em[n])
		cx, cy, cz := p.DA.Coords[c], p.DA.Coords[c+1], p.DA.Coords[c+2]
		ux, uy, uz := u[c], u[c+1], u[c+2]
		for d := 0; d < 3; d++ {
			g := gb[n][d]
			jmat[d*3] += g * cx
			jmat[d*3+1] += g * cy
			jmat[d*3+2] += g * cz
			gref[0*3+d] += g * ux
			gref[1*3+d] += g * uy
			gref[2*3+d] += g * uz
		}
	}
	var inv [9]float64
	la.Invert3(&jmat, &inv)
	// jinv[d][m] = inv[m][d]; Gp[a][m] = Σ_d gref[a][d]·jinv[d][m].
	var gp [9]float64
	for a := 0; a < 3; a++ {
		for m := 0; m < 3; m++ {
			gp[a*3+m] = gref[a*3]*inv[m*3] + gref[a*3+1]*inv[m*3+1] + gref[a*3+2]*inv[m*3+2]
		}
	}
	dxx, dyy, dzz := gp[0], gp[4], gp[8]
	dxy := 0.5 * (gp[1] + gp[3])
	dxz := 0.5 * (gp[2] + gp[6])
	dyz := 0.5 * (gp[5] + gp[7])
	ii := 0.5 * (dxx*dxx + dyy*dyy + dzz*dzz + 2*(dxy*dxy+dxz*dxz+dyz*dyz))
	return math.Sqrt(ii)
}

// EvalPressure evaluates the P1disc pressure field pv at the physical
// point (x,y,z) inside element e.
func EvalPressure(p *Problem, pv la.Vec, e int, x, y, z float64) float64 {
	var xe [81]float64
	p.gatherCoords(e, &xe)
	var ctr, hinv [3]float64
	elemCenterScale(&xe, &ctr, &hinv)
	var psi [4]float64
	pressureBasisAt(x, y, z, &ctr, &hinv, &psi)
	return psi[0]*pv[4*e] + psi[1]*pv[4*e+1] + psi[2]*pv[4*e+2] + psi[3]*pv[4*e+3]
}
