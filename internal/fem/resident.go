package fem

import (
	"math"
	"sync"

	"ptatin3d/internal/la"
	"ptatin3d/internal/par"
)

// Resident is the stored-coefficient tensor operator restructured for
// cache-blocked smoothing: the combined metric+coefficient tensor of
// TensorCOp (15 floats per quadrature point) is precomputed at Setup, and
// the apply is organized around per-slab "blocks" whose element data,
// coefficient stream and scratch stay resident in cache while a block is
// processed. The per-block entry point applyBlock is what the blocked
// Chebyshev smoother drives slab-by-slab; the whole-vector Apply is the
// same code path plus the ascending-slab merge, so both produce
// bit-identical sums.
//
// F32 selects the reduced-precision variant: coefficients are computed in
// float64 and rounded once to float32, and the element kernel runs in
// float32 (state rounded at gather, result widened at scatter). Global
// vectors and the owner-computes scatter stay float64 on both paths, so
// the f32 operator is a small perturbation of the f64 one — exactly what
// a flexible outer Krylov method tolerates in its preconditioner.
type Resident struct {
	P   *Problem
	F32 bool

	c64 []float64
	c32 []float32

	// Blocked-schedule ownership, built once alongside the slab partition:
	// every dof is advanced by exactly one block. ownInterior[b] lists the
	// dof spans of nodes touched only by slab b (plus, for b==0, nodes
	// touched by no element); ownShared[b] lists shared-node indices t
	// (into slabInfo.shared) with minSlab[t]==b. dep is the dependency
	// distance: the largest slab span of any shared node.
	ownOnce     sync.Once
	ownInterior [][]la.Span
	ownShared   [][]int32
	dep         int

	scratch sync.Pool
}

// residentScratch is the per-worker arena of the resident apply: the
// gather/scatter staging batch plus the generic kernel scratch at both
// precisions (only the active one is touched).
type residentScratch struct {
	ue, ye [slabBlock][81]float64
	ks64   kernScratchG[float64]
	ks32   kernScratchG[float32]
}

// NewResident builds a stored-coefficient resident operator; Setup must
// be called again whenever the mesh geometry or viscosity changes.
func NewResident(p *Problem, f32 bool) *Resident {
	r := &Resident{P: p, F32: f32}
	r.Setup()
	return r
}

// Setup (re)computes the stored per-quadrature-point tensors, always in
// float64, rounding once to float32 on the reduced-precision path.
func (r *Resident) Setup() {
	p := r.P
	nel := p.DA.NElements()
	if r.F32 {
		if len(r.c32) != 15*NQP*nel {
			r.c32 = make([]float32, 15*NQP*nel)
			r.c64 = nil
		}
	} else {
		if len(r.c64) != 15*NQP*nel {
			r.c64 = make([]float64, 15*NQP*nel)
			r.c32 = nil
		}
	}
	p.forEachElement(func(e int) {
		var xe [81]float64
		p.gatherCoords(e, &xe)
		var jinv [9]float64
		for q := 0; q < NQP; q++ {
			detJ := jacobianAt(&xe, q, &jinv)
			s := p.Eta[NQP*e+q] * W3[q] * detJ
			var c [15]float64
			// Packed scaled metric sM[d][e] = s·Σ_m K[d][m]K[e][m].
			idx := 0
			for d := 0; d < 3; d++ {
				for dd := d; dd < 3; dd++ {
					c[idx] = s * (jinv[d*3]*jinv[dd*3] + jinv[d*3+1]*jinv[dd*3+1] + jinv[d*3+2]*jinv[dd*3+2])
					idx++
				}
			}
			sq := math.Sqrt(s)
			for i := 0; i < 9; i++ {
				c[6+i] = sq * jinv[i]
			}
			base := 15 * (NQP*e + q)
			if r.F32 {
				for i, v := range c {
					r.c32[base+i] = float32(v)
				}
			} else {
				copy(r.c64[base:base+15], c[:])
			}
		}
	})
}

// N returns the number of velocity dofs.
func (r *Resident) N() int { return r.P.DA.NVelDOF() }

// ownership builds the blocked-schedule dof ownership on first use and
// returns the slab partition.
func (r *Resident) ownership() *slabInfo {
	info := r.P.slabs()
	r.ownOnce.Do(func() {
		p := r.P
		S := info.S
		nn := p.DA.NNodes()
		// Interior nodes are touched by exactly one slab: record it. The
		// zero default folds untouched nodes into block 0, whose apply
		// zeroes their (never-scattered) rows so the advance reads 0.
		owner := make([]int32, nn)
		for s := 0; s < S; s++ {
			em := p.Emap[27*info.off[s] : 27*info.off[s+1]]
			for _, n := range em {
				if info.sharedIdx[n] < 0 {
					owner[n] = int32(s)
				}
			}
		}
		r.ownInterior = make([][]la.Span, S)
		for n := 0; n < nn; n++ {
			if info.sharedIdx[n] >= 0 {
				continue
			}
			b := owner[n]
			sp := r.ownInterior[b]
			d0, d1 := 3*n, 3*n+3
			if len(sp) > 0 && sp[len(sp)-1].Hi == d0 {
				sp[len(sp)-1].Hi = d1
			} else {
				sp = append(sp, la.Span{Lo: d0, Hi: d1})
			}
			r.ownInterior[b] = sp
		}
		r.ownShared = make([][]int32, S)
		for t := range info.shared {
			b := info.minSlab[t]
			r.ownShared[b] = append(r.ownShared[b], int32(t))
			if d := int(info.maxSlab[t] - info.minSlab[t]); d > r.dep {
				r.dep = d
			}
		}
	})
	return info
}

func (r *Resident) getScratch() *residentScratch {
	if ks, ok := r.scratch.Get().(*residentScratch); ok {
		return ks
	}
	return &residentScratch{}
}

// Dep reports the blocked-schedule dependency distance (exposed for
// tests and the wavefront scheduler).
func (r *Resident) Dep() int {
	r.ownership()
	return r.dep
}

// Blocks reports the block (slab) count of the partition.
func (r *Resident) Blocks() int { return r.ownership().S }

// applyBlock computes block b's element contributions to y = A·u: the
// block's interior dof spans of y are zeroed then accumulated directly in
// ascending element order, and shared-node contributions go to the
// block's overlap buffer buf (zeroed first). No identity rows and no
// shared-node merge — Apply and the blocked smoother compose those, in
// the same ascending-slab order, so their sums agree bitwise.
func (r *Resident) applyBlock(b int, u, y la.Vec, buf []float64, ks *residentScratch) {
	p := r.P
	info := p.slab
	for i := range buf {
		buf[i] = 0
	}
	for _, sp := range r.ownInterior[b] {
		vv := y[sp.Lo:sp.Hi]
		for i := range vv {
			vv[i] = 0
		}
	}
	mask := p.BC.Mask
	bufOff := 3 * int(info.bufLo[b])
	e0, e1 := info.off[b], info.off[b+1]
	for blk := e0; blk < e1; blk += slabBlock {
		bn := e1 - blk
		if bn > slabBlock {
			bn = slabBlock
		}
		for i := 0; i < bn; i++ {
			p.gatherVec(blk+i, u, &ks.ue[i])
		}
		if r.F32 {
			for i := 0; i < bn; i++ {
				e := blk + i
				residentElement(r.c32[15*NQP*e:15*NQP*(e+1)], &ks.ue[i], &ks.ye[i], &tables32, &ks.ks32)
			}
		} else {
			for i := 0; i < bn; i++ {
				e := blk + i
				residentElement(r.c64[15*NQP*e:15*NQP*(e+1)], &ks.ue[i], &ks.ye[i], &tables64, &ks.ks64)
			}
		}
		for i := 0; i < bn; i++ {
			em := p.Emap[27*(blk+i) : 27*(blk+i)+27]
			yei := &ks.ye[i]
			for n := 0; n < 27; n++ {
				node := int(em[n])
				if t := int(info.sharedIdx[node]); t >= 0 {
					o := 3*t - bufOff
					buf[o] += yei[3*n]
					buf[o+1] += yei[3*n+1]
					buf[o+2] += yei[3*n+2]
				} else {
					d := 3 * node
					if !mask[d] {
						y[d] += yei[3*n]
					}
					if !mask[d+1] {
						y[d+1] += yei[3*n+1]
					}
					if !mask[d+2] {
						y[d+2] += yei[3*n+2]
					}
				}
			}
		}
	}
}

// Apply computes y = J_uu·u with symmetric Dirichlet elimination, block
// by block with an ascending-slab merge — the same partition, element
// order and merge order as the blocked smoother's per-block schedule.
func (r *Resident) Apply(u, y la.Vec) {
	info := r.ownership()
	p := r.P
	bufs := p.getSlabBufs(info)
	par.For(p.Workers, info.S, func(lo, hi int) {
		ks := r.getScratch()
		for b := lo; b < hi; b++ {
			r.applyBlock(b, u, y, bufs.bufs[b], ks)
		}
		r.scratch.Put(ks)
	})
	mask := p.BC.Mask
	par.For(p.Workers, len(info.shared), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			var a0, a1, a2 float64
			for s := int(info.minSlab[t]); s <= int(info.maxSlab[t]); s++ {
				o := 3 * (t - int(info.bufLo[s]))
				bb := bufs.bufs[s]
				a0 += bb[o]
				a1 += bb[o+1]
				a2 += bb[o+2]
			}
			d := 3 * int(info.shared[t])
			if !mask[d] {
				y[d] = a0
			}
			if !mask[d+1] {
				y[d+1] = a1
			}
			if !mask[d+2] {
				y[d+2] = a2
			}
		}
	})
	p.slabPool.Put(bufs)
	applyIdentityRows(p, u, y)
	if fp := femProbe.Load(); fp != nil {
		fp.SlabApplies.Inc()
		fp.Slabs.Set(float64(info.S))
		fp.SharedFrac.Set(float64(len(info.shared)) / float64(p.DA.NNodes()))
	}
}

// ApplyElements accumulates the action of the given element subset into y
// (which the caller must zero), mirroring TensorOp.ApplyElements: the
// building block of the rank-distributed halo apply. No Dirichlet
// identity rows are added — partial sums from different ranks must remain
// addable.
func (r *Resident) ApplyElements(elems []int, u, y la.Vec) {
	p := r.P
	ks := r.getScratch()
	for _, e := range elems {
		p.gatherVec(e, u, &ks.ue[0])
		if r.F32 {
			residentElement(r.c32[15*NQP*e:15*NQP*(e+1)], &ks.ue[0], &ks.ye[0], &tables32, &ks.ks32)
		} else {
			residentElement(r.c64[15*NQP*e:15*NQP*(e+1)], &ks.ue[0], &ks.ye[0], &tables64, &ks.ks64)
		}
		p.scatterAdd(e, &ks.ye[0], y)
	}
	r.scratch.Put(ks)
}
