package stokes

import (
	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
)

// FieldSplit is the block lower-triangular preconditioner of paper Eq. 17:
//
//	P = [ Â    0 ]      P⁻¹r: z_u = Â⁻¹ r_u
//	    [ J_pu Ŝ ]             z_p = Ŝ⁻¹ (r_p − J_pu·z_u)
//
// with Â⁻¹ one multigrid V-cycle on the viscous block (the leading cost)
// and Ŝ = −M_p(1/η), the viscosity-scaled pressure mass matrix, which is
// spectrally equivalent to the Schur complement for this discretization
// (§III-B). With exact blocks the preconditioned operator satisfies
// (Λ−1)² = 0, so a suitable Krylov method converges in two iterations;
// inexact blocks trade iterations for much cheaper applications.
type FieldSplit struct {
	Op     *Op
	InnerU krylov.Preconditioner // Â⁻¹: V-cycle (mg.MG), amg.SA, or inner Krylov
	Mp     *fem.PressureMass

	// Upper applies the block *upper*-triangular factorization instead
	// (the paper notes the non-unit diagonal "can equivalently be grouped
	// with the upper factor"): z_p = Ŝ⁻¹·r_p, z_u = Â⁻¹·(r_u − J_up·z_p).
	Upper bool

	tu la.Vec
	tv la.Vec
}

// NewFieldSplit builds the preconditioner.
func NewFieldSplit(op *Op, innerU krylov.Preconditioner, mp *fem.PressureMass) *FieldSplit {
	return &FieldSplit{Op: op, InnerU: innerU, Mp: mp,
		tu: la.NewVec(op.Np), tv: la.NewVec(op.Nu)}
}

// Apply computes z = P⁻¹·r.
func (fs *FieldSplit) Apply(r, z la.Vec) {
	ru, rp := fs.Op.Split(r)
	zu, zp := fs.Op.Split(z)
	if fs.Upper {
		// z_p = Ŝ⁻¹·r_p ; z_u = Â⁻¹·(r_u − J_up·z_p).
		fs.Mp.ApplyInv(rp, zp)
		zp.Scale(-1)
		fs.tv.Copy(ru)
		neg := fs.tv
		gz := la.NewVec(fs.Op.Nu)
		fs.Op.C.ApplyGAdd(zp, gz)
		neg.AXPY(-1, gz)
		fs.InnerU.Apply(neg, zu)
		return
	}
	fs.InnerU.Apply(ru, zu)
	// t = r_p − J_pu·z_u ; z_p = −M_p⁻¹·t (Ŝ = −M_p(1/η)).
	fs.Op.C.ApplyD(zu, fs.tu)
	for i := range fs.tu {
		fs.tu[i] = rp[i] - fs.tu[i]
	}
	fs.Mp.ApplyInv(fs.tu, zp)
	zp.Scale(-1)
}

// SCR solves the coupled system by Schur complement reduction (paper
// §III-B and §IV-A): eliminate velocity exactly, iterate on
// S·δp = r_p − J_pu·J_uu⁻¹·r_u with S applied through accurate inner
// J_uu solves, then back-substitute. More expensive per iteration but
// avoids the non-normality of the block-triangular preconditioned
// operator, making it robust to extreme coefficient contrast.
type SCR struct {
	Op     *Op
	InnerU krylov.Preconditioner // preconditioner for the J_uu solves
	Mp     *fem.PressureMass
	// InnerParams controls the accuracy of the velocity solves that define
	// the action of S (rtol 1e-10 by default: "accurate inner solves").
	InnerParams krylov.Params
	// OuterParams controls the Schur iteration on the pressure.
	OuterParams krylov.Params
}

// NewSCR builds a Schur-complement-reduction solver.
func NewSCR(op *Op, innerU krylov.Preconditioner, mp *fem.PressureMass) *SCR {
	ip := krylov.DefaultParams()
	ip.RTol = 1e-10
	ip.MaxIt = 500
	opar := krylov.DefaultParams()
	opar.RTol = 1e-8
	opar.MaxIt = 200
	return &SCR{Op: op, InnerU: innerU, Mp: mp, InnerParams: ip, OuterParams: opar}
}

// Solve computes [u;p] ← J⁻¹[bu;bp] (correction form: the caller passes
// residuals and receives corrections; x must be zero on entry or hold an
// initial guess for the velocity only). Returns the outer (Schur) result.
func (s *SCR) Solve(b, x la.Vec) krylov.Result {
	bu, bp := s.Op.Split(b)
	xu, xp := s.Op.Split(x)
	nu := s.Op.Nu

	// w = J_uu⁻¹ b_u.
	w := la.NewVec(nu)
	krylov.FGMRES(uOnly{s.Op}, s.InnerU, bu, w, s.InnerParams)

	// Schur RHS: g = b_p − J_pu w.
	g := la.NewVec(s.Op.Np)
	s.Op.C.ApplyD(w, g)
	for i := range g {
		g[i] = bp[i] - g[i]
	}

	// Outer iteration on S δp = g with S = −J_pu J_uu⁻¹ J_up, applied via
	// accurate velocity solves; preconditioned by Ŝ⁻¹ = −M_p⁻¹.
	sOp := krylov.OpFunc{Dim: s.Op.Np, F: func(xq, yq la.Vec) {
		t := la.NewVec(nu)
		s.Op.C.ApplyGAdd(xq, t) // t = J_up x
		v := la.NewVec(nu)
		krylov.FGMRES(uOnly{s.Op}, s.InnerU, t, v, s.InnerParams)
		s.Op.C.ApplyD(v, yq)
		yq.Scale(-1)
	}}
	sPC := krylov.PCFunc(func(r, z la.Vec) {
		s.Mp.ApplyInv(r, z)
		z.Scale(-1)
	})
	res := krylov.FGMRES(sOp, sPC, g, xp, s.OuterParams)

	// Back-substitute: u = J_uu⁻¹ (b_u − J_up p).
	t := la.NewVec(nu)
	s.Op.C.ApplyGAdd(xp, t)
	for i := range t {
		t[i] = bu[i] - t[i]
	}
	xu.Zero()
	krylov.FGMRES(uOnly{s.Op}, s.InnerU, t, xu, s.InnerParams)
	return res
}

// uOnly exposes just the viscous block of a coupled operator.
type uOnly struct{ op *Op }

func (u uOnly) N() int            { return u.op.Nu }
func (u uOnly) Apply(x, y la.Vec) { u.op.Auu.Apply(x, y) }
