package stokes

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/mg"
	"ptatin3d/internal/op"
)

// sinkerDef is a deterministic miniature of the paper's sedimentation
// benchmark (§IV-A): dense viscous spheres in a lighter, less viscous
// ambient fluid, free surface on top. deta is the viscosity contrast Δη.
type sinkerDef struct {
	centers [][3]float64
	radius  float64
	deta    float64
}

func miniSinker(nc int, r float64, deta float64) sinkerDef {
	rng := rand.New(rand.NewSource(20140704))
	s := sinkerDef{radius: r, deta: deta}
	for len(s.centers) < nc {
		c := [3]float64{
			r + rng.Float64()*(1-2*r),
			r + rng.Float64()*(1-2*r),
			r + rng.Float64()*(1-2*r),
		}
		ok := true
		for _, o := range s.centers {
			d := math.Sqrt((c[0]-o[0])*(c[0]-o[0]) + (c[1]-o[1])*(c[1]-o[1]) + (c[2]-o[2])*(c[2]-o[2]))
			if d < 2*r {
				ok = false
				break
			}
		}
		if ok {
			s.centers = append(s.centers, c)
		}
	}
	return s
}

func (s sinkerDef) inside(x, y, z float64) bool {
	for _, c := range s.centers {
		d2 := (x-c[0])*(x-c[0]) + (y-c[1])*(y-c[1]) + (z-c[2])*(z-c[2])
		if d2 < s.radius*s.radius {
			return true
		}
	}
	return false
}

func (s sinkerDef) eta(x, y, z float64) float64 {
	if s.inside(x, y, z) {
		return 1
	}
	return 1 / s.deta
}

func (s sinkerDef) rho(x, y, z float64) float64 {
	if s.inside(x, y, z) {
		return 1.2
	}
	return 1
}

// sinkerProblem builds the discrete sinker: slip walls, free surface top.
// Coefficients go through the vertex-grid (Q1) projection pipeline — the
// same path the material-point method uses — rather than pointwise
// evaluation, mirroring the paper and keeping multigrid robust at high
// contrast.
func sinkerProblem(m int, deta float64, workers int) (*fem.Problem, sinkerDef) {
	def := miniSinker(4, 0.18, deta)
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	p := fem.NewProblem(da, bc)
	p.Workers = workers
	p.Gravity = [3]float64{0, 0, -9.8}
	etaV := fem.VertexFieldFromFunc(da, def.eta)
	rhoV := fem.VertexFieldFromFunc(da, def.rho)
	p.SetCoefficientsVertex(etaV, rhoV)
	return p, def
}

func sinkerConfig(p *fem.Problem, def sinkerDef) Config {
	cfg := DefaultConfig()
	cfg.CoeffCoarsen = mg.VertexCoeffCoarsener(p.DA,
		fem.VertexFieldFromFunc(p.DA, def.eta),
		fem.VertexFieldFromFunc(p.DA, def.rho))
	return cfg
}

// TestAlgebraicExactness: solving J·x = J·x* must recover x* — a pure
// consistency test of operator, preconditioner and Krylov plumbing.
func TestAlgebraicExactness(t *testing.T) {
	p, def := sinkerProblem(4, 100, 1)
	cfg := sinkerConfig(p, def)
	cfg.Levels = 2
	cfg.Params.RTol = 1e-10
	cfg.Params.MaxIt = 400
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := s.Op.N()
	xstar := la.NewVec(n)
	for i := range xstar {
		xstar[i] = rng.NormFloat64()
	}
	us, _ := s.Op.Split(xstar)
	p.BC.ZeroConstrained(us)
	f := la.NewVec(n)
	s.Op.Apply(xstar, f)
	x := la.NewVec(n)
	res := krylov.GCR(s.Op, s.FS, f, x, cfg.Params, nil)
	if !res.Converged {
		t.Fatalf("no convergence: %d its rel %.2e", res.Iterations, res.Residual/res.Residual0)
	}
	x.AXPY(-1, xstar)
	if rel := x.Norm2() / xstar.Norm2(); rel > 1e-5 {
		t.Fatalf("solution error %.2e", rel)
	}
}

// solveSinker runs a full buoyancy-driven solve and returns the solver,
// state and result.
func solveSinker(t *testing.T, m int, deta float64, cfg Config, def sinkerDef, p *fem.Problem) (*Solver, la.Vec, krylov.Result) {
	t.Helper()
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	x := la.NewVec(s.Op.N())
	res := s.Solve(x, bu, nil)
	return s, x, res
}

// TestSinkerSolvePhysics: the buoyancy-driven solve must converge, be
// (discretely) divergence-free, and the dense spheres must sink while
// mass conservation pushes ambient fluid up.
func TestSinkerSolvePhysics(t *testing.T) {
	p, def := sinkerProblem(8, 100, 2)
	cfg := sinkerConfig(p, def)
	s, x, res := solveSinker(t, 8, 100, cfg, def, p)
	if !res.Converged {
		t.Fatalf("sinker solve failed: %d its rel %.2e", res.Iterations, res.Residual/res.Residual0)
	}
	u, _ := s.Op.Split(x)
	// Discrete incompressibility.
	div := la.NewVec(p.DA.NPresDOF())
	s.C.ApplyDRaw(u, div)
	if dn := div.Norm2(); dn > 1e-5*(1+u.Norm2()) {
		t.Fatalf("divergence residual %.3e for |u| = %.3e", dn, u.Norm2())
	}
	// The sphere regions must move down on average.
	var wSphere, wSum float64
	var nSphere int
	for n := 0; n < p.DA.NNodes(); n++ {
		cx, cy, cz := p.DA.NodeCoords(n)
		if def.inside(cx, cy, cz) {
			wSphere += u[3*n+2]
			nSphere++
		}
		wSum += u[3*n+2]
	}
	if nSphere == 0 {
		t.Fatal("no nodes inside spheres at this resolution")
	}
	if wSphere/float64(nSphere) >= 0 {
		t.Fatalf("spheres do not sink: mean w = %v", wSphere/float64(nSphere))
	}
	// Verify the final residual via the residual functional.
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	f := la.NewVec(s.Op.N())
	s.Op.Residual(x, bu, f)
	if rel := f.Norm2() / res.Residual0; rel > 2e-5 {
		t.Fatalf("posterior residual %.3e", rel)
	}
}

// TestMonitorEquilibration: Figure-2 behaviour — the solve starts with the
// vertical momentum residual dominating; the pressure residual rises to
// meet it before convergence sets in.
func TestMonitorEquilibration(t *testing.T) {
	p, def := sinkerProblem(8, 1000, 2)
	cfg := sinkerConfig(p, def)
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	x := la.NewVec(s.Op.N())
	mon := &Monitor{}
	res := s.Solve(x, bu, mon)
	if !res.Converged {
		t.Fatalf("no convergence: %d its", res.Iterations)
	}
	if len(mon.Pressure) < 3 {
		t.Fatal("monitor recorded too little")
	}
	// Initially the residual is pure momentum (pressure RHS is zero).
	if mon.Pressure[0] > 1e-12*mon.Vertical[0] {
		t.Fatalf("initial pressure residual nonzero: %v vs vertical %v", mon.Pressure[0], mon.Vertical[0])
	}
	// The pressure residual must rise before global convergence.
	maxP := 0.0
	for _, v := range mon.Pressure {
		if v > maxP {
			maxP = v
		}
	}
	if maxP < 1e-3*mon.Vertical[0] {
		t.Fatalf("pressure residual never equilibrated: max %v vs initial vertical %v", maxP, mon.Vertical[0])
	}
}

// TestNonzeroDirichlet: extension boundary conditions (the rifting-style
// driving) exercise the raw-residual path; the solution must reproduce the
// boundary data and remain divergence-free.
func TestNonzeroDirichlet(t *testing.T) {
	da := mesh.New(4, 4, 4, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.SetFaceComponent(da, mesh.XMin, 0, -1)
	bc.SetFaceComponent(da, mesh.XMax, 0, +1)
	bc.FreeSlipBox(da, mesh.YMin, mesh.ZMin, mesh.ZMax)
	p := fem.NewProblem(da, bc)
	p.SetCoefficientsFunc(func(x, y, z float64) float64 { return 1 }, nil)
	cfg := DefaultConfig()
	cfg.Levels = 2
	cfg.CoeffCoarsen = mg.FuncCoeffCoarsener(func(x, y, z float64) float64 { return 1 }, nil)
	cfg.VerticalAxis = 1
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	x := la.NewVec(s.Op.N())
	u, _ := s.Op.Split(x)
	p.BC.ApplyToVec(u)
	res := s.Solve(x, bu, nil)
	if !res.Converged {
		t.Fatalf("extension solve failed: %d its", res.Iterations)
	}
	// Boundary data intact.
	n0 := da.NodeID(0, 2, 2)
	n1 := da.NodeID(da.NPx-1, 2, 2)
	if u[3*n0] != -1 || u[3*n1] != 1 {
		t.Fatalf("boundary values clobbered: %v %v", u[3*n0], u[3*n1])
	}
	// Mass balance: with inflow/outflow faces the divergence residual must
	// still vanish (the flow adjusts through the free YMax face).
	div := la.NewVec(p.DA.NPresDOF())
	s.C.ApplyDRaw(u, div)
	if dn := div.Norm2(); dn > 1e-4 {
		t.Fatalf("divergence %.3e", dn)
	}
}

// TestSCRMatchesFieldSplit: Schur complement reduction and the
// block-triangular iteration must agree on the solution.
func TestSCRMatchesFieldSplit(t *testing.T) {
	p, def := sinkerProblem(4, 100, 1)
	cfg := sinkerConfig(p, def)
	cfg.Levels = 2
	cfg.Params.RTol = 1e-9
	cfg.Params.MaxIt = 500
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	// Field-split path.
	x1 := la.NewVec(s.Op.N())
	res1 := s.Solve(x1, bu, nil)
	if !res1.Converged {
		t.Fatal("fieldsplit solve failed")
	}
	// SCR path on the same right-hand side.
	scr := NewSCR(s.Op, s.MG, s.Mp)
	scr.OuterParams.RTol = 1e-9
	b := la.NewVec(s.Op.N())
	bu2, _ := s.Op.Split(b)
	bu2.Copy(bu)
	x2 := la.NewVec(s.Op.N())
	res2 := scr.Solve(b, x2)
	if !res2.Converged {
		t.Fatalf("SCR failed: %d its rel %.2e", res2.Iterations, res2.Residual/res2.Residual0)
	}
	u1, p1 := s.Op.Split(x1)
	u2, p2 := s.Op.Split(x2)
	du := u1.Clone()
	du.AXPY(-1, u2)
	dp := p1.Clone()
	dp.AXPY(-1, p2)
	if rel := du.Norm2() / u1.Norm2(); rel > 1e-4 {
		t.Fatalf("SCR velocity differs: %.2e", rel)
	}
	if rel := dp.Norm2() / p1.Norm2(); rel > 1e-4 {
		t.Fatalf("SCR pressure differs: %.2e", rel)
	}
}

// TestPureAMGConfiguration: Levels==1 uses smoothed aggregation on the
// assembled fine operator (the SA-i configuration).
func TestPureAMGConfiguration(t *testing.T) {
	p, def := sinkerProblem(6, 100, 1)
	cfg := sinkerConfig(p, def)
	cfg.Levels = 1
	cfg.FineKind = op.Assembled
	cfg.AMGConfig = "gamg"
	cfg.Params.MaxIt = 400
	s, x, res := solveSinker(t, 6, 100, cfg, def, p)
	if !res.Converged {
		t.Fatalf("SA-i solve failed: %d its rel %.2e", res.Iterations, res.Residual/res.Residual0)
	}
	_ = s
	_ = x
}

// TestFGMRESOuter: the FGMRES outer method must reach the same tolerance.
func TestFGMRESOuter(t *testing.T) {
	p, def := sinkerProblem(4, 100, 1)
	cfg := sinkerConfig(p, def)
	cfg.Levels = 2
	cfg.OuterMethod = "fgmres"
	_, x, res := solveSinker(t, 4, 100, cfg, def, p)
	if !res.Converged {
		t.Fatalf("FGMRES outer failed: %d its", res.Iterations)
	}
	if x.HasNaN() {
		t.Fatal("NaN in solution")
	}
}

// TestRobustnessContrast: iteration count grows with Δη but the solver
// still converges at 10⁴ (Figure 2's robustness claim at reduced scale).
func TestRobustnessContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	its := map[float64]int{}
	for _, deta := range []float64{1, 100, 10000} {
		p, def := sinkerProblem(8, deta, 2)
		cfg := sinkerConfig(p, def)
		cfg.Params.RTol = 1e-5 // the paper's Stokes stopping tolerance
		cfg.Params.MaxIt = 1000
		_, _, res := solveSinker(t, 8, deta, cfg, def, p)
		if !res.Converged {
			t.Fatalf("Δη=%g failed after %d its (rel %.2e)", deta, res.Iterations, res.Residual/res.Residual0)
		}
		its[deta] = res.Iterations
	}
	if its[10000] < its[1] {
		t.Fatalf("iterations should not decrease with contrast: %v", its)
	}
}

// TestCoarseSolverVariants: every coarse-solver option must converge.
func TestCoarseSolverVariants(t *testing.T) {
	for _, cs := range []string{"gamg", "lu", "bjacobi", "asmcg"} {
		p, def := sinkerProblem(4, 100, 1)
		cfg := sinkerConfig(p, def)
		cfg.Levels = 2
		cfg.CoarseSolver = cs
		cfg.Params.MaxIt = 400
		_, _, res := solveSinker(t, 4, 100, cfg, def, p)
		if !res.Converged {
			t.Fatalf("coarse solver %q failed: %d its", cs, res.Iterations)
		}
	}
}

// TestInstrumentation: the timed wrappers must see every call.
func TestInstrumentation(t *testing.T) {
	p, def := sinkerProblem(4, 10, 1)
	cfg := sinkerConfig(p, def)
	cfg.Levels = 2
	s, _, res := solveSinker(t, 4, 10, cfg, def, p)
	if !res.Converged {
		t.Fatal("solve failed")
	}
	if s.MatMult.Calls() == 0 || s.PCApply.Calls() == 0 {
		t.Fatalf("instrumentation missed calls: matmult %d, pc %d", s.MatMult.Calls(), s.PCApply.Calls())
	}
	if s.PCApply.Calls() != res.Iterations {
		t.Fatalf("PC applies %d != iterations %d", s.PCApply.Calls(), res.Iterations)
	}
	if s.SetupTime <= 0 {
		t.Fatal("setup not timed")
	}
}

var _ = math.Pi // keep math imported if unused paths change

// TestF32PreconditionedConvergence is the mixed-precision acceptance
// property: with the V-cycle preconditioner running entirely in float32
// (blocked TensorC smoothers, f32 coefficient streams) under a float64
// flexible outer method, convergence must stay within 3 iterations of the
// float64 hierarchy — across randomized viscosity contrasts up to the
// paper-scale 10⁶.
func TestF32PreconditionedConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	contrasts := []float64{math.Pow(10, 6*rng.Float64()), 1e6}
	for _, deta := range contrasts {
		solve := func(blocked bool, prec op.Precision) krylov.Result {
			p, def := sinkerProblem(8, deta, 2)
			cfg := sinkerConfig(p, def)
			cfg.OuterMethod = "fgmres"
			cfg.Params.RTol = 1e-5
			cfg.Params.MaxIt = 1000
			// High-contrast sinkers need a long flexible basis: restarting
			// at the default 50 stalls FGMRES near Δη=10⁶ in both
			// precisions, which would mask the f32-vs-f64 comparison.
			cfg.Params.Restart = 200
			cfg.Blocked = blocked
			cfg.Precision = prec
			_, _, res := solveSinker(t, 8, deta, cfg, def, p)
			if !res.Converged {
				t.Fatalf("Δη=%.3g blocked=%v prec=%v failed after %d its (rel %.2e)",
					deta, blocked, prec, res.Iterations, res.Residual/res.Residual0)
			}
			return res
		}
		r64 := solve(false, op.F64)
		r32 := solve(true, op.F32)
		d := r64.Iterations - r32.Iterations
		if d < 0 {
			d = -d
		}
		if d > 3 {
			t.Fatalf("Δη=%.3g: f32-preconditioned FGMRES took %d its, f64 took %d (|Δ|=%d > 3)",
				deta, r32.Iterations, r64.Iterations, d)
		}
		t.Logf("Δη=%.3g: f64 %d its, f32 %d its", deta, r64.Iterations, r32.Iterations)
	}
}

// TestBlockedSolveMatchesUnblocked: the blocked f64 configuration is a
// bit-level reordering of the smoother, so the outer solve must take the
// SAME iteration count as an unblocked TensorC hierarchy and land on an
// equivalent solution.
func TestBlockedSolveMatchesUnblocked(t *testing.T) {
	p1, def := sinkerProblem(8, 1000, 2)
	cfg := sinkerConfig(p1, def)
	cfg.Params.RTol = 1e-5
	cfg.Params.MaxIt = 500
	cfgB := cfg
	cfgB.Blocked = true
	_, x1, r1 := solveSinker(t, 8, 1000, cfg, def, p1)
	p2, _ := sinkerProblem(8, 1000, 2)
	_, x2, r2 := solveSinker(t, 8, 1000, cfgB, def, p2)
	if !r1.Converged || !r2.Converged {
		t.Fatalf("convergence: unblocked %v blocked %v", r1.Converged, r2.Converged)
	}
	if d := r1.Iterations - r2.Iterations; d < -1 || d > 1 {
		t.Fatalf("blocked solve took %d its, unblocked %d", r2.Iterations, r1.Iterations)
	}
	diff := x1.Clone()
	diff.AXPY(-1, x2)
	if rel := diff.Norm2() / x1.Norm2(); rel > 1e-4 {
		t.Fatalf("blocked and unblocked solutions differ: rel %.3e", rel)
	}
}
