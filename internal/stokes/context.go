package stokes

import (
	"fmt"

	"ptatin3d/internal/fem"
)

// Context keeps one configured Solver alive across nonlinear
// relinearizations and time steps, so per-solve setup amortizes to a
// coefficient refresh (paper §III-A: relinearization updates the
// *coefficients*, never the discretization). Prepare returns a solver
// for the problem's current state: a cold build the first time or
// whenever the structural configuration changes (mesh resolution, level
// count, operator kinds, precision, workers...), and an in-place
// Refresh — bit-identical to a cold build, at a fraction of the cost —
// otherwise. ALE coordinate updates must be announced through
// InvalidateGeometry; they trigger the geometry-dependent refresh work
// (coarse-coordinate re-injection, coupling re-setup) without a rebuild.
//
// The zero value is ready to use. A Context is not safe for concurrent
// Prepare calls.
type Context struct {
	s         *Solver
	key       string
	geomDirty bool

	// Reused counts the Prepare calls served by a refresh instead of a
	// cold build (the stokes_setup_reused run-record counter).
	Reused int64
}

// InvalidateGeometry marks the fine mesh coordinates as moved since the
// last Prepare (ALE remeshing, free-surface update). The next Prepare
// re-derives everything geometry-dependent.
func (c *Context) InvalidateGeometry() { c.geomDirty = true }

// Solver returns the cached solver (nil before the first Prepare).
func (c *Context) Solver() *Solver { return c.s }

// Prepare returns a solver for prob's current coefficients and geometry,
// cold-building or refreshing as needed. The second result reports
// whether the cached setup was reused.
func (c *Context) Prepare(prob *fem.Problem, cfg Config) (*Solver, bool, error) {
	key := contextKey(prob, cfg)
	if c.s == nil || c.key != key {
		s, err := New(prob, cfg)
		if err != nil {
			return nil, false, err
		}
		c.s, c.key, c.geomDirty = s, key, false
		return s, false, nil
	}
	// Carry the per-relinearization pieces of the config into the cached
	// solver: the coefficient coarsener closes over the current vertex
	// fields, and the Krylov parameters may carry a per-iteration forcing
	// tolerance. Structural fields are pinned by the key.
	c.s.Cfg.CoeffCoarsen = cfg.CoeffCoarsen
	prm := cfg.EffectiveParams()
	if prm.Telemetry == nil {
		prm.Telemetry = c.s.Cfg.Params.Telemetry
	}
	c.s.Cfg.Params = prm
	if err := c.s.Refresh(c.geomDirty); err != nil {
		return nil, false, err
	}
	c.geomDirty = false
	c.Reused++
	return c.s, true, nil
}

// contextKey fingerprints the structural solver configuration: any field
// that shapes topology, sparsity, operator kinds, or arithmetic width.
// Closures (CoeffCoarsen), tolerances, and telemetry are deliberately
// excluded — they refresh in place.
func contextKey(prob *fem.Problem, cfg Config) string {
	da := prob.DA
	return fmt.Sprintf("%p;%dx%dx%d;lv=%d;fk=%v;ga=%v;bl=%v;pr=%v;ss=%d;cs=%s;cb=%d;asm=%d,%d;amg=%s;om=%s;rs=%d;w=%d;va=%d",
		prob, da.Mx, da.My, da.Mz, cfg.Levels, cfg.FineKind, cfg.GalerkinAll,
		cfg.Blocked, cfg.Precision, cfg.SmoothSteps, cfg.CoarseSolver,
		cfg.CoarseBlocks, cfg.ASMSubdomains, cfg.ASMOverlap, cfg.AMGConfig,
		cfg.OuterMethod, cfg.Restart, cfg.Workers, cfg.VerticalAxis)
}
