package stokes

import (
	"time"

	"ptatin3d/internal/la"
	"ptatin3d/internal/telemetry"
)

// OpProbe wraps a linear operator, recording call counts and wall time
// into a telemetry timer. It provides the "MatMult" column of Table IV.
// The Solver always backs its probes with a registry (a private one when
// Config.Telemetry is nil), so Calls/Elapsed are always live.
type OpProbe struct {
	Inner interface {
		N() int
		Apply(x, y la.Vec)
	}
	t *telemetry.Timer
}

// NewOpProbe wraps inner, recording into t (nil t records nothing).
func NewOpProbe(inner interface {
	N() int
	Apply(x, y la.Vec)
}, t *telemetry.Timer) *OpProbe {
	return &OpProbe{Inner: inner, t: t}
}

// N returns the wrapped dimension.
func (p *OpProbe) N() int { return p.Inner.N() }

// Apply times one operator application.
func (p *OpProbe) Apply(x, y la.Vec) {
	st := p.t.Start()
	p.Inner.Apply(x, y)
	p.t.Stop(st)
}

// Calls reports the number of applications so far.
func (p *OpProbe) Calls() int { return int(p.t.Calls()) }

// Elapsed reports the accumulated application wall time.
func (p *OpProbe) Elapsed() time.Duration { return p.t.Elapsed() }

// Reset clears the counters.
func (p *OpProbe) Reset() { p.t.Reset() }

// PCProbe wraps a preconditioner, recording call counts and wall time into
// a telemetry timer. It provides the "PC apply" column of Table IV and the
// coarse-solve timings of Table II.
type PCProbe struct {
	Inner interface{ Apply(r, z la.Vec) }
	t     *telemetry.Timer
}

// NewPCProbe wraps inner, recording into t (nil t records nothing).
func NewPCProbe(inner interface{ Apply(r, z la.Vec) }, t *telemetry.Timer) *PCProbe {
	return &PCProbe{Inner: inner, t: t}
}

// Apply times one preconditioner application.
func (p *PCProbe) Apply(r, z la.Vec) {
	st := p.t.Start()
	p.Inner.Apply(r, z)
	p.t.Stop(st)
}

// Calls reports the number of applications so far.
func (p *PCProbe) Calls() int { return int(p.t.Calls()) }

// Elapsed reports the accumulated application wall time.
func (p *PCProbe) Elapsed() time.Duration { return p.t.Elapsed() }

// Reset clears the counters.
func (p *PCProbe) Reset() { p.t.Reset() }
