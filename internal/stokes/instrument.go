package stokes

import (
	"time"

	"ptatin3d/internal/la"
)

// TimedOp wraps a linear operator, accumulating call counts and wall time.
// It provides the "MatMult" column of Table IV.
type TimedOp struct {
	Inner interface {
		N() int
		Apply(x, y la.Vec)
	}
	Calls   int
	Elapsed time.Duration
}

// N returns the wrapped dimension.
func (t *TimedOp) N() int { return t.Inner.N() }

// Apply times one operator application.
func (t *TimedOp) Apply(x, y la.Vec) {
	start := time.Now()
	t.Inner.Apply(x, y)
	t.Elapsed += time.Since(start)
	t.Calls++
}

// Reset clears the counters.
func (t *TimedOp) Reset() { t.Calls, t.Elapsed = 0, 0 }

// TimedPC wraps a preconditioner, accumulating call counts and wall time.
// It provides the "PC apply" column of Table IV and the coarse-solve
// timings of Table II.
type TimedPC struct {
	Inner   interface{ Apply(r, z la.Vec) }
	Calls   int
	Elapsed time.Duration
}

// Apply times one preconditioner application.
func (t *TimedPC) Apply(r, z la.Vec) {
	start := time.Now()
	t.Inner.Apply(r, z)
	t.Elapsed += time.Since(start)
	t.Calls++
}

// Reset clears the counters.
func (t *TimedPC) Reset() { t.Calls, t.Elapsed = 0, 0 }
