package stokes

import (
	"math"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/perfmodel"
)

// runDistComparison solves the 8³ sinker with the given outer method
// both shared-memory and rank-distributed over a 2×2×1 world, and
// checks the acceptance criteria of the rank-distributed solve: same
// outer iteration count, velocity agreement to 1e-10, and non-trivial
// per-rank communication statistics.
func runDistComparison(t *testing.T, method string, velTol float64) {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	p, def := sinkerProblem(8, 100, 2)
	cfg := sinkerConfig(p, def)
	cfg.OuterMethod = method
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)

	xs := la.NewVec(s.Op.N())
	resS := s.Solve(xs, bu, nil)
	if !resS.Converged {
		t.Fatalf("shared solve failed: %d its", resS.Iterations)
	}

	xd := la.NewVec(s.Op.N())
	resD, stats, err := s.SolveDistributed(xd, bu, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !resD.Converged {
		t.Fatalf("distributed solve failed: %d its, err %v", resD.Iterations, resD.Err)
	}
	if resD.Iterations != resS.Iterations {
		t.Fatalf("iteration counts differ: distributed %d vs shared %d", resD.Iterations, resS.Iterations)
	}

	us, _ := s.Op.Split(xs)
	ud, _ := s.Op.Split(xd)
	diff := ud.Clone()
	diff.AXPY(-1, us)
	if rel := diff.Norm2() / math.Max(us.Norm2(), 1e-300); rel > velTol {
		t.Fatalf("velocity fields deviate: rel %.3e", rel)
	}

	if len(stats) != 4 {
		t.Fatalf("want 4 rank stats, got %d", len(stats))
	}
	for _, st := range stats {
		if st.HaloMsgs == 0 || st.HaloBytes == 0 {
			t.Fatalf("rank %d reports no halo traffic: %+v", st.Rank, st)
		}
		if st.AllReduces == 0 {
			t.Fatalf("rank %d reports no allreduces: %+v", st.Rank, st)
		}
	}
}

// TestDistributedSolveMatchesSharedFGMRES is the PR's acceptance run:
// rank-distributed FGMRES on the sinker at 8³ with 2×2×1 ranks must
// converge in the same iteration count as the shared-memory solve and
// agree to 1e-10 in velocity.
func TestDistributedSolveMatchesSharedFGMRES(t *testing.T) {
	runDistComparison(t, "fgmres", 1e-10)
}

// TestDistributedSolveMatchesSharedGCR covers the paper's preferred
// outer method through the same criteria; GCR's explicit-residual
// recurrence amplifies the element-summation-order roundoff slightly
// more than the Arnoldi recurrence, hence the marginally looser bound.
func TestDistributedSolveMatchesSharedGCR(t *testing.T) {
	runDistComparison(t, "gcr", 1e-9)
}

// TestDistributedSolvePipelinedAgg runs the latency-tolerant
// configuration — single-reduce GCR, coarse agglomeration onto 2 roots,
// and the fabric cost model — over 2×2×1 ranks and checks that it (a)
// reaches the same answer as the shared solve, (b) actually spends ~1
// allreduce per outer iteration, and (c) reports modeled fabric time.
func TestDistributedSolvePipelinedAgg(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p, def := sinkerProblem(8, 100, 2)
	cfg := sinkerConfig(p, def)
	cfg.OuterMethod = "gcr"
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)

	xs := la.NewVec(s.Op.N())
	resS := s.Solve(xs, bu, nil)
	if !resS.Converged {
		t.Fatalf("shared solve failed: %d its", resS.Iterations)
	}

	xd := la.NewVec(s.Op.N())
	resD, stats, err := s.SolveDistributedOpt(xd, bu, 2, 2, 1, DistOptions{
		Pipelined:   true,
		CoarseRoots: 2,
		Fabric:      perfmodel.DefaultFabric(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resD.Converged {
		t.Fatalf("pipelined distributed solve failed: %d its, err %v", resD.Iterations, resD.Err)
	}
	if d := resD.Iterations - resS.Iterations; d < -2 || d > 2 {
		t.Fatalf("pipelined iteration count drifted: distributed %d vs shared %d", resD.Iterations, resS.Iterations)
	}

	us, _ := s.Op.Split(xs)
	ud, _ := s.Op.Split(xd)
	diff := ud.Clone()
	diff.AXPY(-1, us)
	// The pipelined recurrence follows a different arithmetic trajectory
	// than classical GCR, so the two solves agree only up to the outer
	// tolerance amplified by the conditioning — not to trajectory
	// identity like the non-pipelined comparison above.
	if rel := diff.Norm2() / math.Max(us.Norm2(), 1e-300); rel > 1e-5 {
		t.Fatalf("velocity fields deviate: rel %.3e", rel)
	}

	for _, st := range stats {
		// pipeGCR issues one batched reduction per iteration plus the
		// initial residual norm; the V-cycle adds none. Anything well
		// above ~1/iteration means the batching regressed.
		if limit := int64(resD.Iterations + 3); st.AllReduces > limit {
			t.Fatalf("rank %d: %d allreduces for %d iterations (want <= %d)",
				st.Rank, st.AllReduces, resD.Iterations, limit)
		}
		if st.FabricAllReduceNs == 0 || st.FabricHaloNs == 0 || st.FabricCoarseNs == 0 {
			t.Fatalf("rank %d: fabric charges missing: %+v", st.Rank, st)
		}
	}
}

// TestDistributedSolveRejectsBadConfigs: algebraic-only configurations
// and non-nesting rank grids must fail fast with a clear error.
func TestDistributedSolveRejectsBadConfigs(t *testing.T) {
	p, def := sinkerProblem(4, 10, 1)
	cfg := sinkerConfig(p, def)
	cfg.Levels = 1
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	x := la.NewVec(s.Op.N())
	if _, _, err := s.SolveDistributed(x, bu, 2, 1, 1); err == nil {
		t.Fatal("Levels=1 must reject the distributed solve")
	}

	cfg2 := sinkerConfig(p, def)
	cfg2.Levels = 2
	s2, err := New(p, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// 4³ elements over 2 levels: the coarse grid has 2 elements per
	// axis, so 3 ranks along x cannot nest.
	if _, _, err := s2.SolveDistributed(x, bu, 3, 1, 1); err == nil {
		t.Fatal("non-nesting rank grid must be rejected")
	}
}
