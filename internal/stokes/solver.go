package stokes

import (
	"fmt"
	"time"

	"ptatin3d/internal/amg"
	"ptatin3d/internal/comm"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/mg"
	"ptatin3d/internal/op"
	"ptatin3d/internal/telemetry"
)

// Config selects one of the paper's solver configurations.
type Config struct {
	// Levels is the geometric multigrid depth. Levels == 1 selects a pure
	// algebraic preconditioner on the assembled fine operator (the SA-i /
	// SAML-* rows of Table IV).
	Levels int
	// FineKind picks the fine-level operator representation (op.Tensor,
	// op.MFRef, op.Assembled — the Tens/MF/Asmb columns of Tables I–III —
	// or op.Auto for runtime selection on every level). op.Galerkin is
	// shorthand for the GMG-ii layout: assembled fine level with Galerkin
	// products on every coarse level.
	FineKind op.Kind
	// GalerkinAll makes every coarse operator a Galerkin product (the
	// GMG-ii configuration); requires an assembled fine level.
	GalerkinAll bool
	// Blocked runs the V-cycle's Chebyshev smoothers cache-blocked
	// (mg.Options.Blocked). The hierarchy then builds its own
	// resident-backed fine operator for smoothing; the coupled outer
	// matvec keeps the FineKind representation. Bit-identical smoothing,
	// purely a performance substitution. Ignored when Levels <= 1.
	Blocked bool
	// Precision runs the V-cycle's operator stack at the given width
	// (mg.Options.Precision): op.F32 halves smoother memory traffic while
	// the outer GCR/FGMRES iteration — and the residuals it reports —
	// stay float64. Ignored when Levels <= 1.
	Precision op.Precision
	// SmoothSteps is the Chebyshev degree: V(k,k) (paper uses 2 or 3).
	SmoothSteps int
	// CoarseSolver: "gamg" (one SA V-cycle, the paper's default), "lu",
	// "bjacobi", or "asmcg" (CG preconditioned by ASM(overlap 4, ILU(0)),
	// max 25 iterations — the rifting configuration of §V-A).
	CoarseSolver string
	// CoarseBlocks configures "bjacobi"; ASMSubdomains/ASMOverlap configure
	// "asmcg".
	CoarseBlocks  int
	ASMSubdomains int
	ASMOverlap    int
	// AMGConfig selects the algebraic preconditioner when Levels == 1:
	// "gamg", "ml" (SAML-i) or "mlstrong" (SAML-ii).
	AMGConfig string
	// OuterMethod: "gcr" (paper's preference — explicit residual) or
	// "fgmres" (better numerical stability for extreme contrast).
	OuterMethod string
	// Params controls the outer Krylov iteration (rtol 1e-5 in the paper).
	Params krylov.Params
	// Restart, when > 0, overrides Params.Restart for the outer Krylov
	// method. FGMRES discards its Krylov space at every restart, and with
	// viscosity contrasts Δη ≥ 1e5 the default window of 50 can stall just
	// short of the tolerance; high-contrast configurations should raise
	// this (the Δη=1e6 parity runs use 200).
	Restart int
	// Telemetry, when non-nil, is the scope the solver instruments itself
	// under: "outer" (matmult/pcapply/coarse timers, setup_seconds gauge),
	// "krylov" (outer iteration counters + residual trace), "mg"/"amg"
	// (per-level cycle breakdowns, op.Auto selection decisions under
	// mg/level<i>/select). When nil the solver still wires its probes to a
	// private registry so MatMult/PCApply counts stay live.
	Telemetry *telemetry.Scope
	// Workers is the intra-node parallel width ("cores").
	Workers int
	// CoeffCoarsen fills coarse-level coefficients (see mg.CoarsenProblems).
	CoeffCoarsen func(level int, p *fem.Problem)
	// VerticalAxis is the gravity direction (for residual monitoring).
	VerticalAxis int
}

// DefaultConfig returns the paper's production configuration: 3 levels,
// matrix-free tensor fine level, V(2,2), Galerkin coarsest operator, one
// GAMG V-cycle as coarse solver, GCR outer to rtol 1e-5 (§IV-A).
func DefaultConfig() Config {
	prm := krylov.DefaultParams()
	prm.RTol = 1e-5
	prm.MaxIt = 500
	prm.Restart = 50
	return Config{
		Levels:       3,
		FineKind:     op.Tensor,
		SmoothSteps:  2,
		CoarseSolver: "gamg",
		OuterMethod:  "gcr",
		Params:       prm,
		Workers:      1,
		VerticalAxis: 2,
	}
}

// EffectiveParams returns the outer Krylov parameters with the Restart
// override applied. Callers driving their own Krylov iteration from a
// Config (the nonlinear loop) should use this rather than Params.
func (c Config) EffectiveParams() krylov.Params {
	prm := c.Params
	if c.Restart > 0 {
		prm.Restart = c.Restart
	}
	return prm
}

// Solver is a configured coupled Stokes solver.
type Solver struct {
	Cfg  Config
	Prob *fem.Problem
	Op   *Op
	C    *fem.Coupling
	Mp   *fem.PressureMass
	FS   *FieldSplit
	MG   *mg.MG  // nil for pure-AMG configurations
	SA   *amg.SA // the coarse/standalone algebraic component, if any

	// Tel is the telemetry scope the solver records under: Config.Telemetry
	// when provided, otherwise the root of a private registry.
	Tel *telemetry.Scope

	// Instrumentation (Table IV columns).
	SetupTime   time.Duration
	MatMult     *OpProbe
	PCApply     *PCProbe
	CoarseApply *PCProbe // wraps the coarse-grid solver inside MG

	// amgVA backs the standalone-AMG configuration (Levels <= 1) when the
	// fine operator has no assembled form of its own: the assembly is
	// cached so Refresh recomputes values in place instead of
	// re-deriving the sparsity.
	amgVA *fem.ViscousAssembly
	amgA  *la.CSR

	// dcache holds the distributed decompositions and per-rank layouts of
	// the last world shape — purely topological, so they survive
	// coefficient refreshes and ALE coordinate updates.
	dcache distCache
}

// distCache caches the per-level decompositions and [level][rank]
// layouts of one world shape.
type distCache struct {
	px, py, pz int
	decomps    []*comm.Decomp
	layouts    [][]*comm.Layout
}

// Monitor records the per-iteration field residual norms of a GCR solve —
// the data behind Figure 2 (vertical momentum vs. pressure residual).
type Monitor struct {
	Iter     []int
	Momentum []float64 // full velocity residual norm
	Vertical []float64 // vertical momentum component
	Pressure []float64
}

// New builds a Solver for the problem's current coefficients/geometry.
func New(prob *fem.Problem, cfg Config) (*Solver, error) {
	start := time.Now()
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.FineKind == op.Galerkin {
		// -op=galerkin means the GMG-ii layout: assembled fine operator
		// with Galerkin products on every coarse level.
		cfg.FineKind = op.Assembled
		cfg.GalerkinAll = true
	}
	cfg.Params = cfg.EffectiveParams()
	prob.Workers = cfg.Workers
	s := &Solver{Cfg: cfg, Prob: prob}
	s.Tel = cfg.Telemetry
	if s.Tel == nil {
		// Private registry: probes stay live even with telemetry "off".
		s.Tel = telemetry.New().Root()
	}
	s.C = fem.NewCoupling(prob)
	s.Mp = fem.NewPressureMass(prob)

	// Fine-level viscous operator, shared between the coupled matvec and
	// the multigrid hierarchy (mg.Options.FineOp), so it is built once.
	mgScope := s.Tel.Child("mg")
	auu, err := op.New(cfg.FineKind, op.Env{
		Prob:      prob,
		Workers:   cfg.Workers,
		Level:     0,
		Levels:    max(1, cfg.Levels),
		Telemetry: mgScope.Child("level0"),
	})
	if err != nil {
		return nil, fmt.Errorf("stokes: fine operator: %w", err)
	}
	if err := auu.Setup(); err != nil {
		return nil, fmt.Errorf("stokes: fine operator setup: %w", err)
	}
	s.Op = NewOp(prob, auu, s.C)

	// Viscous-block preconditioner.
	var innerU krylov.Preconditioner
	if cfg.Levels <= 1 {
		if a := auu.CSR(); a != nil {
			s.amgA = a
		} else {
			s.amgVA = fem.NewViscousAssembly(prob)
			s.amgVA.Refresh()
			s.amgA = s.amgVA.A
		}
		sa, err := buildAMG(s.amgA, prob, cfg)
		if err != nil {
			return nil, err
		}
		s.SA = sa
		innerU = sa
	} else {
		if cfg.GalerkinAll && cfg.FineKind != op.Assembled {
			return nil, fmt.Errorf("stokes: GalerkinAll requires an assembled fine level")
		}
		probs := mg.CoarsenProblems(prob, cfg.Levels, cfg.CoeffCoarsen)
		// With blocked or reduced-precision smoothing the hierarchy must
		// build its own fine-level operator (TensorC/TensorF32) — the
		// shared coupled operator stays the full-precision FineKind, so
		// outer residuals are untouched by the preconditioner's precision.
		fineOp := auu
		if cfg.Blocked || cfg.Precision == op.F32 {
			fineOp = nil
		}
		gmg, err := mg.Build(probs, mg.Options{
			Kinds:       op.DefaultLevelKinds(cfg.Levels, cfg.FineKind, cfg.GalerkinAll),
			SmoothSteps: cfg.SmoothSteps,
			Workers:     cfg.Workers,
			FineOp:      fineOp,
			Blocked:     cfg.Blocked,
			Precision:   cfg.Precision,
			Telemetry:   mgScope,
		})
		if err != nil {
			return nil, fmt.Errorf("stokes: GMG setup: %w", err)
		}
		coarse, sa, err := buildCoarseSolver(gmg, probs[len(probs)-1], cfg)
		if err != nil {
			return nil, err
		}
		s.SA = sa
		s.CoarseApply = NewPCProbe(coarse, s.Tel.Child("outer").Timer("coarse"))
		gmg.CoarseSolve = s.CoarseApply
		gmg.SetTelemetry(mgScope)
		s.MG = gmg
		innerU = gmg
	}
	if s.SA != nil {
		s.SA.SetTelemetry(s.Tel.Child("amg"))
	}
	s.FS = NewFieldSplit(s.Op, innerU, s.Mp)
	outer := s.Tel.Child("outer")
	s.MatMult = NewOpProbe(s.Op, outer.Timer("matmult"))
	s.PCApply = NewPCProbe(s.FS, outer.Timer("pcapply"))
	if s.Cfg.Params.Telemetry == nil {
		s.Cfg.Params.Telemetry = s.Tel.Child("krylov")
	}
	s.SetupTime = time.Since(start)
	outer.Gauge("setup_seconds").Set(s.SetupTime.Seconds())
	return s, nil
}

// SelectionReport returns the per-level op.Auto decisions of the
// hierarchy (nil when no level selects at runtime).
func (s *Solver) SelectionReport() []op.Decision {
	var out []op.Decision
	if a, ok := s.Op.Auu.(*op.AutoOp); ok && s.MG == nil {
		a.ForceCommit()
		out = append(out, a.Decision())
	}
	if s.MG != nil {
		out = append(out, s.MG.SelectionReport()...)
	}
	return out
}

// buildCoarseSolver instantiates the coarsest-level solver from the
// hierarchy's assembled coarse matrix (op.Operator.CSR — the op layer's
// coarse-level handoff to the algebraic solvers).
func buildCoarseSolver(gmg *mg.MG, coarseProb *fem.Problem, cfg Config) (krylov.Preconditioner, *amg.SA, error) {
	last := gmg.Levels[len(gmg.Levels)-1]
	a := last.Op.CSR()
	if a == nil {
		return nil, nil, fmt.Errorf("stokes: coarsest GMG level must be assembled")
	}
	switch cfg.CoarseSolver {
	case "", "gamg":
		opt := amg.GAMGLike()
		opt.SmoothSteps = max(1, cfg.SmoothSteps)
		sa, err := amg.New(a, 3, amg.RigidBodyModes(coarseProb.DA.Coords, coarseProb.BC.Mask), opt)
		if err != nil {
			return nil, nil, fmt.Errorf("stokes: GAMG coarse solver: %w", err)
		}
		return sa, sa, nil
	case "lu":
		bj, err := krylov.NewBlockJacobi(a, 1)
		return bj, nil, err
	case "bjacobi":
		nb := cfg.CoarseBlocks
		if nb <= 0 {
			nb = 8
		}
		bj, err := krylov.NewBlockJacobi(a, nb)
		return bj, nil, err
	case "asmcg":
		nsub := cfg.ASMSubdomains
		if nsub <= 0 {
			nsub = 8
		}
		ov := cfg.ASMOverlap
		if ov <= 0 {
			ov = 4
		}
		asmPC, err := krylov.NewASM(a, krylov.ASMOptions{Subdomains: nsub, Overlap: ov})
		if err != nil {
			return nil, nil, fmt.Errorf("stokes: ASM coarse solver: %w", err)
		}
		inner := &krylov.InnerKrylov{
			A: krylov.CSROp{A: a}, M: asmPC, Method: "cg",
			Prm: krylov.Params{RTol: 1e-4, ATol: 1e-300, MaxIt: 25},
		}
		return inner, nil, nil
	}
	return nil, nil, fmt.Errorf("stokes: unknown coarse solver %q", cfg.CoarseSolver)
}

// buildAMG constructs the standalone algebraic preconditioner (Levels <=
// 1 configurations) from the assembled viscous block.
func buildAMG(a *la.CSR, prob *fem.Problem, cfg Config) (*amg.SA, error) {
	opt := amg.GAMGLike()
	switch cfg.AMGConfig {
	case "ml":
		opt = amg.MLLike()
	case "mlstrong":
		opt = amg.MLStrongLike()
	}
	opt.SmoothSteps = max(1, cfg.SmoothSteps)
	sa, err := amg.New(a, 3, amg.RigidBodyModes(prob.DA.Coords, prob.BC.Mask), opt)
	if err != nil {
		return nil, fmt.Errorf("stokes: AMG setup: %w", err)
	}
	return sa, nil
}

// Refresh re-derives the solver's numeric state from the problem's
// current coefficients — and, when geomChanged, coordinates — without
// rebuilding any topology: coarse-level coefficients are re-restricted
// through the configured coarsener, assembled/Galerkin/resident operator
// values are recomputed in place into their cached sparsity, smoother
// spectra are re-estimated exactly as a cold build would, and the
// value-dependent algebraic components (GAMG/ASM/LU coarse solvers) are
// rebuilt from the refreshed coarse matrices. The result is bit-identical
// to constructing a new Solver on the same state; only the setup cost
// changes. geomChanged must be true whenever the fine mesh coordinates
// moved since the last Setup/Refresh (ALE remeshing).
func (s *Solver) Refresh(geomChanged bool) error {
	start := time.Now()
	if geomChanged {
		if s.MG != nil {
			for l := 1; l < len(s.MG.Levels); l++ {
				fp, cp := s.MG.Levels[l-1].Prob, s.MG.Levels[l].Prob
				mesh.RefreshCoarsenCoords(fp.DA, cp.DA)
				mesh.RefreshCoarsenBCVals(fp.DA, cp.DA, fp.BC, cp.BC)
			}
		}
		// The coupling blocks depend only on geometry.
		s.C.Setup()
	}
	// Re-restrict the coarse coefficients in CoarsenProblems level order.
	if s.MG != nil && s.Cfg.CoeffCoarsen != nil {
		for l := 1; l < len(s.MG.Levels); l++ {
			s.Cfg.CoeffCoarsen(l, s.MG.Levels[l].Prob)
		}
	}
	// The pressure mass matrix is viscosity-scaled: always re-derive.
	s.Mp.Setup()
	if s.MG != nil {
		if any(s.MG.Levels[0].Op) != any(s.Op.Auu) {
			// Blocked/F32 hierarchies own their fine operator; the shared
			// coupled-matvec operator refreshes separately.
			if err := op.Refresh(s.Op.Auu); err != nil {
				return fmt.Errorf("stokes: fine operator refresh: %w", err)
			}
		}
		if err := s.MG.Refresh(); err != nil {
			return fmt.Errorf("stokes: %w", err)
		}
		coarse, sa, err := buildCoarseSolver(s.MG, s.MG.Levels[len(s.MG.Levels)-1].Prob, s.Cfg)
		if err != nil {
			return err
		}
		s.SA = sa
		s.CoarseApply = NewPCProbe(coarse, s.Tel.Child("outer").Timer("coarse"))
		s.MG.CoarseSolve = s.CoarseApply
	} else {
		if err := op.Refresh(s.Op.Auu); err != nil {
			return fmt.Errorf("stokes: fine operator refresh: %w", err)
		}
		if s.amgVA != nil {
			s.amgVA.Refresh()
		}
		sa, err := buildAMG(s.amgA, s.Prob, s.Cfg)
		if err != nil {
			return err
		}
		s.SA = sa
		s.FS.InnerU = sa
	}
	if s.SA != nil {
		s.SA.SetTelemetry(s.Tel.Child("amg"))
	}
	s.SetupTime = time.Since(start)
	s.Tel.Child("outer").Gauge("setup_seconds").Set(s.SetupTime.Seconds())
	return nil
}

// Solve performs one linear Stokes solve in residual-correction form: the
// state x = [u;p] (with boundary values applied to u) is improved so that
// J·x ≈ [bu;0] to the configured tolerance of the *unpreconditioned*
// residual. A non-nil monitor collects the Figure-2 residual histories.
func (s *Solver) Solve(x, bu la.Vec, mon *Monitor) krylov.Result {
	n := s.Op.N()
	f := la.NewVec(n)
	s.Op.Residual(x, bu, f)
	f.Scale(-1)
	delta := la.NewVec(n)
	var cb func(it int, r la.Vec)
	if mon != nil {
		cb = func(it int, r la.Vec) {
			uN, vN, pN := s.Op.FieldNorms(r, s.Cfg.VerticalAxis)
			mon.Iter = append(mon.Iter, it)
			mon.Momentum = append(mon.Momentum, uN)
			mon.Vertical = append(mon.Vertical, vN)
			mon.Pressure = append(mon.Pressure, pN)
		}
	}
	run := func(method string) krylov.Result {
		if method == "fgmres" {
			return krylov.FGMRES(s.MatMult, s.PCApply, f, delta, s.Cfg.Params)
		}
		return krylov.GCR(s.MatMult, s.PCApply, f, delta, s.Cfg.Params, cb)
	}
	res := run(s.Cfg.OuterMethod)
	if res.Err != nil {
		// Breakdown recovery: discard the poisoned correction and rerun
		// once with the alternate outer method. The field-split
		// preconditioner is nonlinear, so both GCR and FGMRES are legal;
		// they fail differently (explicit residual vs. Arnoldi recurrence),
		// which is exactly what makes the switch worth trying.
		outer := s.Tel.Child("outer")
		outer.Counter("breakdown_recoveries").Inc()
		alt := "fgmres"
		if s.Cfg.OuterMethod == "fgmres" {
			alt = "gcr"
		}
		prevIts := res.Iterations
		delta.Zero()
		res = run(alt)
		res.Iterations += prevIts
		if res.Err == nil {
			outer.Counter("breakdowns_recovered").Inc()
		}
	}
	x.AXPY(1, delta)
	return res
}
