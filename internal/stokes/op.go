// Package stokes assembles the coupled heterogeneous Stokes solver of the
// paper: the saddle-point operator J = [[J_uu, J_up],[J_pu, 0]] (Eq. 14),
// the block lower-triangular field-split preconditioner with a
// viscosity-scaled pressure-mass Schur approximation (Eq. 17, §III-B), the
// Schur-complement-reduction alternative, and a configuration-driven
// builder covering every preconditioner variant benchmarked in §IV.
package stokes

import (
	"math"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
)

// Op is the coupled Stokes operator acting on stacked vectors x = [u; p]
// with len = NVelDOF + NPresDOF. Dirichlet velocity rows act as identity;
// pressure is unconstrained.
type Op struct {
	P   *fem.Problem
	Auu fem.Operator  // any Table-I variant
	C   *fem.Coupling // gradient/divergence blocks
	Nu  int
	Np  int
}

// NewOp wires a coupled operator around a viscous-block implementation.
func NewOp(p *fem.Problem, auu fem.Operator, c *fem.Coupling) *Op {
	return &Op{P: p, Auu: auu, C: c, Nu: p.DA.NVelDOF(), Np: p.DA.NPresDOF()}
}

// N returns the coupled dimension.
func (op *Op) N() int { return op.Nu + op.Np }

// Split views x as its velocity and pressure parts.
func (op *Op) Split(x la.Vec) (u, p la.Vec) { return x[:op.Nu], x[op.Nu:] }

// Apply computes y = J·x in symmetric-elimination form (constrained
// velocity rows/columns replaced by identity).
func (op *Op) Apply(x, y la.Vec) {
	xu, xp := op.Split(x)
	yu, yp := op.Split(y)
	op.Auu.Apply(xu, yu)   // viscous block (+ identity rows)
	op.C.ApplyGAdd(xp, yu) // pressure gradient on free rows
	op.C.ApplyD(xu, yp)    // divergence of the free-velocity part
}

// Residual computes F(x) for the state x (whose constrained velocity
// entries hold prescribed boundary values) against the body-force load bu:
// F_u = J_uu·u + G·p − bu on free rows (0 on constrained rows),
// F_p = J_pu·u. The viscous part is evaluated matrix-free (Auu must be a
// fem.ResidualOperator), mirroring pTatin3D's always-matrix-free residuals.
func (op *Op) Residual(x, bu, f la.Vec) {
	ro, ok := op.Auu.(fem.ResidualOperator)
	if !ok {
		panic("stokes: Residual requires a matrix-free viscous operator")
	}
	xu, xp := op.Split(x)
	fu, fp := op.Split(f)
	ro.ApplyFreeRows(xu, fu)
	op.C.ApplyGAdd(xp, fu)
	for d := range fu {
		if op.P.BC.Mask[d] {
			fu[d] = 0
		} else {
			fu[d] -= bu[d]
		}
	}
	op.C.ApplyDRaw(xu, fp)
}

// FieldNorms returns the Euclidean norms of the velocity part, the
// component of the velocity part along the given vertical axis, and the
// pressure part of a coupled vector — the quantities plotted in Figure 2
// of the paper (vertical momentum residual vs. pressure residual).
func (op *Op) FieldNorms(x la.Vec, axis int) (uNorm, vertNorm, pNorm float64) {
	xu, xp := op.Split(x)
	uNorm = xu.Norm2()
	var s float64
	for i := axis; i < len(xu); i += 3 {
		s += xu[i] * xu[i]
	}
	vertNorm = math.Sqrt(s)
	pNorm = xp.Norm2()
	return
}
