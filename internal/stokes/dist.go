package stokes

import (
	"fmt"
	"sync"

	"ptatin3d/internal/comm"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mg"
	"ptatin3d/internal/telemetry"
)

// Rank-distributed coupled Stokes solve (paper §II-D): the whole outer
// Krylov iteration — coupled matvec, field-split preconditioner with a
// distributed multigrid V-cycle on the viscous block, and all inner
// products — runs collectively across the ranks of a simulated MPI
// world. Each rank iterates on its own full-length vector copy, valid
// on the owned+ghost entries of its per-level layout; every halo
// exchange goes over the reliable channel protocol with interior
// compute overlapped with in-flight boundary traffic; every reduction
// is a deterministic rank-ordered AllReduce, so all ranks follow the
// identical iteration trajectory.
//
// Velocity nodes follow the comm.Layout ownership boxes. P1disc
// pressure dofs are element-local (4 per element at indices [4e,4e+4)),
// so pressure needs no halo at all: a rank fully owns the pressure rows
// of its elements.

// RankStats reports one rank's communication volume for a distributed
// solve — the per-rank columns behind the Tables II/III scaling runs.
// The Fabric*Ns columns are modeled interconnect nanoseconds (zero
// unless a fabric model is installed): halo packets, allreduce hops and
// coarse-solve funneling priced by the α–β model of perfmodel.Fabric.
type RankStats struct {
	Rank              int   `json:"rank"`
	HaloMsgs          int64 `json:"halo_msgs"`
	HaloBytes         int64 `json:"halo_bytes"`
	AllReduces        int64 `json:"allreduces"`
	Retries           int64 `json:"retries"`
	FabricHaloNs      int64 `json:"fabric_halo_ns,omitempty"`
	FabricAllReduceNs int64 `json:"fabric_allreduce_ns,omitempty"`
	FabricCoarseNs    int64 `json:"fabric_coarse_ns,omitempty"`
}

// DistOptions tunes SolveDistributedOpt beyond the plain
// SolveDistributed defaults.
type DistOptions struct {
	// Pipelined selects the single-reduce Krylov variants: one fused
	// allreduce per outer iteration instead of one per inner product.
	Pipelined bool
	// CoarseRoots > 0 agglomerates the coarsest-level solve onto that
	// many block roots (comm.Agg); 0 keeps the all-to-rank-0 gather.
	CoarseRoots int
	// Fabric, when non-nil, prices every interconnect operation of the
	// solve in modeled nanoseconds (RankStats.Fabric*Ns).
	Fabric comm.FabricModel
	// Policy overrides the world retry policy when non-zero — high rank
	// counts on few host cores need more generous timeouts.
	Policy comm.RetryPolicy
}

// errSink records the first asynchronous failure of a rank's solve
// (exchange errors cannot surface through krylov.Op.Apply).
type errSink struct{ err error }

func (s *errSink) note(err error) {
	if s.err == nil && err != nil {
		s.err = err
	}
}

// distOp is one rank's view of the coupled operator J = [[A,G],[D,0]].
// The viscous block is applied matrix-free over the rank's elements
// with boundary elements first, so their nodal partial sums are in
// flight while interior elements — and the entirely element-local G and
// D blocks — are computed (§II-D latency hiding).
type distOp struct {
	op    *Op
	ten   *fem.TensorOp
	dist  *comm.Dist
	sink  *errSink
	spans []la.Span // coupled owned+ghost windows; nil = full-length ops
}

// N returns the coupled dimension.
func (o *distOp) N() int { return o.op.N() }

// Apply computes y = J·x, valid on this rank's owned+ghost velocity
// rows and owned pressure rows.
func (o *distOp) Apply(x, y la.Vec) {
	l := o.dist.L
	xu, xp := o.op.Split(x)
	yu, yp := o.op.Split(y)
	if o.spans != nil {
		y.ZeroSpans(o.spans)
	} else {
		y.Zero()
	}
	o.ten.ApplyElements(l.Boundary, xu, yu)
	o.op.C.ApplyGAddElements(l.Boundary, xp, yu)
	err := o.dist.ReduceBroadcast(yu,
		func() {
			o.ten.ApplyElements(l.Interior, xu, yu)
			o.op.C.ApplyGAddElements(l.Interior, xp, yu)
			o.op.C.ApplyDElements(l.Elems, xu, yp)
		},
		func() { o.identityOwnedRows(xu, yu) })
	o.sink.note(err)
}

// identityOwnedRows applies the Dirichlet identity on the constrained
// velocity rows of the owned node box.
func (o *distOp) identityOwnedRows(xu, yu la.Vec) {
	l := o.dist.L
	mask := o.op.P.BC.Mask
	b := l.Owned
	da := l.D.DA
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			row := (k*da.NPy + j) * da.NPx
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				d := 3 * (row + i)
				for c := 0; c < 3; c++ {
					if mask[d+c] {
						yu[d+c] = xu[d+c]
					}
				}
			}
		}
	}
}

// distFieldSplit is the rank-local block lower-triangular
// preconditioner: a distributed V-cycle on the viscous block, then the
// element-local Schur update on the rank's own pressure rows.
type distFieldSplit struct {
	op     *Op
	dmg    *mg.DistMG
	mp     *fem.PressureMass
	l      *comm.Layout
	tu     la.Vec
	pspans []la.Span // owned pressure windows relative to the pressure part
}

// Apply computes z = P⁻¹·r.
func (fs *distFieldSplit) Apply(r, z la.Vec) {
	ru, rp := fs.op.Split(r)
	zu, zp := fs.op.Split(z)
	fs.dmg.Apply(ru, zu)
	if fs.pspans != nil {
		zp.ZeroSpans(fs.pspans)
	} else {
		zp.Zero()
	}
	fs.op.C.ApplyDElements(fs.l.Elems, zu, fs.tu)
	for _, e := range fs.l.Elems {
		for i := 4 * e; i < 4*e+4; i++ {
			fs.tu[i] = rp[i] - fs.tu[i]
		}
	}
	fs.mp.ApplyInvElements(fs.l.Elems, fs.tu, zp)
	for _, e := range fs.l.Elems {
		for i := 4 * e; i < 4*e+4; i++ {
			zp[i] = -zp[i]
		}
	}
}

// coupledReducer sums each rank's partial inner product — owned
// velocity box plus the pressure rows of its elements — with a single
// deterministic AllReduce, so every rank sees the bit-identical global
// value and the Krylov trajectory stays collective-consistent.
type coupledReducer struct {
	op   *Op
	dist *comm.Dist
}

// Dot returns the globally reduced coupled inner product.
func (rd *coupledReducer) Dot(x, y la.Vec) float64 {
	return rd.dist.AllReduceSum(rd.local(x, y))
}

// DotBatch reduces several coupled inner products with ONE collective
// (krylov.BatchReducer): the fused reduction under the pipelined Krylov
// variants, collapsing an iteration's 2–3 allreduces — or a restart
// cycle's j+2 — into a single latency charge.
func (rd *coupledReducer) DotBatch(xs, ys []la.Vec) []float64 {
	part := make([]float64, len(xs))
	for i := range xs {
		part[i] = rd.local(xs[i], ys[i])
	}
	return rd.dist.AllReduceSumVec(part)
}

// local computes this rank's partial of the coupled inner product.
func (rd *coupledReducer) local(x, y la.Vec) float64 {
	xu, xp := rd.op.Split(x)
	yu, yp := rd.op.Split(y)
	s := rd.dist.L.DotVel(xu, yu)
	for _, e := range rd.dist.L.Elems {
		s += xp.DotRange(yp, 4*e, 4*e+4)
	}
	return s
}

// coupledExchanger makes an externally assembled coupled vector
// halo-consistent: ghost velocity entries are refreshed from their
// owners; pressure is element-local and needs no exchange.
type coupledExchanger struct {
	op   *Op
	dist *comm.Dist
}

// Consistent refreshes the velocity ghost region of x.
func (ex *coupledExchanger) Consistent(x la.Vec) error {
	xu, _ := ex.op.Split(x)
	return ex.dist.Broadcast(xu)
}

// SolveDistributed performs one linear Stokes solve exactly like Solve,
// but rank-distributed over a px×py×pz world. The correction system
// J·δ = −F(x) is solved collectively: each rank runs the configured
// outer method (GCR or FGMRES) on its own vector copy, and the owned
// pieces of the per-rank corrections are assembled into the global
// update. Returns rank 0's Result (all ranks follow the identical
// trajectory) plus the per-rank communication statistics.
//
// Requires a geometric multigrid configuration (Levels >= 2) whose
// per-level decompositions nest: px, py, pz must divide the per-level
// element counts at every level.
func (s *Solver) SolveDistributed(x, bu la.Vec, px, py, pz int) (krylov.Result, []RankStats, error) {
	return s.SolveDistributedOpt(x, bu, px, py, pz, DistOptions{})
}

// coupledSpans returns the owned+ghost windows of a rank's coupled
// vector: the velocity rows of the extended node box followed by the
// pressure rows of the rank's elements (offset by Nu), with adjacent
// windows merged. Every BLAS-1 op of the rank's Krylov iteration runs
// only on these windows, keeping per-rank vector work O(n/P).
func coupledSpans(op *Op, l *comm.Layout) []la.Span {
	spans := append([]la.Span(nil), l.VelSpans()...)
	for _, e := range l.Elems {
		lo, hi := op.Nu+4*e, op.Nu+4*e+4
		if n := len(spans); n > 0 && spans[n-1].Hi == lo {
			spans[n-1].Hi = hi
		} else {
			spans = append(spans, la.Span{Lo: lo, Hi: hi})
		}
	}
	return spans
}

// pressureSpans returns the rank's owned pressure windows relative to
// the pressure part of a coupled vector, merging adjacent elements.
func pressureSpans(l *comm.Layout) []la.Span {
	var spans []la.Span
	for _, e := range l.Elems {
		lo, hi := 4*e, 4*e+4
		if n := len(spans); n > 0 && spans[n-1].Hi == lo {
			spans[n-1].Hi = hi
		} else {
			spans = append(spans, la.Span{Lo: lo, Hi: hi})
		}
	}
	return spans
}

// SolveDistributedOpt is SolveDistributed with latency-tolerance options:
// pipelined single-reduce Krylov, coarse-solve agglomeration onto a rank
// subset, a fabric cost model, and a retry-policy override.
func (s *Solver) SolveDistributedOpt(x, bu la.Vec, px, py, pz int, opt DistOptions) (krylov.Result, []RankStats, error) {
	// Residual-correction form, as in Solve.
	n := s.Op.N()
	f := la.NewVec(n)
	s.Op.Residual(x, bu, f)
	f.Scale(-1)
	delta := la.NewVec(n)
	res, stats, err := s.LinearSolveDistributed(s.Cfg.OuterMethod, f, delta, s.Cfg.Params, px, py, pz, opt)
	if err != nil {
		return res, stats, err
	}
	x.AXPY(1, delta)
	return res, stats, nil
}

// distDecomps builds and validates the nested per-level decompositions
// of the solver's geometric hierarchy for a px×py×pz world, along with
// the [level][rank] layouts. Both are purely topological, so they are
// cached on the solver and reused across solves of the same world shape
// (the per-step cost of a distributed solve then excludes partitioning).
func (s *Solver) distDecomps(px, py, pz int) ([]*comm.Decomp, [][]*comm.Layout, error) {
	if s.MG == nil {
		return nil, nil, fmt.Errorf("stokes: distributed solve requires a geometric multigrid configuration (Levels >= 2)")
	}
	if c := &s.dcache; c.decomps != nil && c.px == px && c.py == py && c.pz == pz {
		return c.decomps, c.layouts, nil
	}
	decomps := make([]*comm.Decomp, len(s.MG.Levels))
	for l, lev := range s.MG.Levels {
		if lev.Prob == nil {
			return nil, nil, fmt.Errorf("stokes: distributed solve requires geometric levels (level %d is algebraic)", l)
		}
		d, err := comm.NewDecomp(lev.Prob.DA, px, py, pz)
		if err != nil {
			return nil, nil, fmt.Errorf("stokes: level %d: %w", l, err)
		}
		decomps[l] = d
	}
	if err := mg.ValidateNestedDecomps(decomps); err != nil {
		return nil, nil, err
	}
	size := px * py * pz
	layouts := make([][]*comm.Layout, len(decomps))
	for l, d := range decomps {
		layouts[l] = make([]*comm.Layout, size)
		for rid := 0; rid < size; rid++ {
			layouts[l][rid] = comm.NewLayout(d, rid)
		}
	}
	s.dcache = distCache{px: px, py: py, pz: pz, decomps: decomps, layouts: layouts}
	return decomps, layouts, nil
}

// rankCommCounters reads the communication counters of one rank's
// telemetry scope into a RankStats record.
func rankCommCounters(sc *telemetry.Scope, rank int) RankStats {
	return RankStats{
		Rank:              rank,
		HaloMsgs:          sc.Counter("halo_msgs").Value(),
		HaloBytes:         sc.Counter("halo_bytes").Value(),
		AllReduces:        sc.Counter("allreduces").Value(),
		Retries:           sc.Counter("retries").Value(),
		FabricHaloNs:      sc.Counter("fabric_halo_ns").Value(),
		FabricAllReduceNs: sc.Counter("fabric_allreduce_ns").Value(),
		FabricCoarseNs:    sc.Counter("fabric_coarse_ns").Value(),
	}
}

// sub returns the counter deltas a−b (Rank preserved from a).
func (a RankStats) sub(b RankStats) RankStats {
	return RankStats{
		Rank:              a.Rank,
		HaloMsgs:          a.HaloMsgs - b.HaloMsgs,
		HaloBytes:         a.HaloBytes - b.HaloBytes,
		AllReduces:        a.AllReduces - b.AllReduces,
		Retries:           a.Retries - b.Retries,
		FabricHaloNs:      a.FabricHaloNs - b.FabricHaloNs,
		FabricAllReduceNs: a.FabricAllReduceNs - b.FabricAllReduceNs,
		FabricCoarseNs:    a.FabricCoarseNs - b.FabricCoarseNs,
	}
}

// Add accumulates the communication volume of o into s (Rank kept).
func (s *RankStats) Add(o RankStats) {
	s.HaloMsgs += o.HaloMsgs
	s.HaloBytes += o.HaloBytes
	s.AllReduces += o.AllReduces
	s.Retries += o.Retries
	s.FabricHaloNs += o.FabricHaloNs
	s.FabricAllReduceNs += o.FabricAllReduceNs
	s.FabricCoarseNs += o.FabricCoarseNs
}

// LinearSolveDistributed solves the coupled linear system J·δ = rhs
// collectively over a px×py×pz world, writing the assembled correction
// into delta (overwritten). The caller supplies the outer method and the
// Krylov parameters — this is the backend entry point the nonlinear time
// loop uses, where RTol carries the per-iteration Eisenstat–Walker
// forcing term. Each rank runs the method on its own windowed vector
// copy; the owned pieces of the per-rank solutions are assembled into
// delta, and rank 0's Result is returned (all ranks follow the identical
// trajectory). RankStats are per-call deltas, so repeated solves against
// the same telemetry registry report each solve's own volume.
//
// Requires a geometric multigrid configuration (Levels >= 2) whose
// per-level decompositions nest: px, py, pz must divide the per-level
// element counts at every level.
func (s *Solver) LinearSolveDistributed(method string, rhs, delta la.Vec, prmIn krylov.Params, px, py, pz int, opt DistOptions) (krylov.Result, []RankStats, error) {
	decomps, layouts, err := s.distDecomps(px, py, pz)
	if err != nil {
		return krylov.Result{}, nil, err
	}
	nl := len(decomps)
	f := rhs
	delta.Zero()

	tel := s.Tel.Child("dist")
	size := px * py * pz
	n := s.Op.N()
	// Snapshot the communication counters up front: the rank scopes are
	// reused across rebuilt solvers sharing one telemetry registry (the
	// time loop rebuilds the preconditioner every nonlinear iteration),
	// so per-solve stats must be computed as before/after deltas.
	before := make([]RankStats, size)
	for rid := 0; rid < size; rid++ {
		before[rid] = rankCommCounters(tel.Child(fmt.Sprintf("rank%d", rid)), rid)
	}
	var agg *comm.Agg
	if opt.CoarseRoots > 0 {
		a, err := comm.NewAgg(size, opt.CoarseRoots)
		if err != nil {
			return krylov.Result{}, nil, err
		}
		agg = a
	}
	w := comm.NewWorld(size)
	if opt.Fabric != nil {
		w.SetFabric(opt.Fabric)
	}
	if opt.Policy != (comm.RetryPolicy{}) {
		w.SetRetryPolicy(opt.Policy)
	}
	var (
		mu      sync.Mutex
		res     krylov.Result
		stats   = make([]RankStats, size)
		rankErr = make([]error, size)
	)
	w.Run(func(r *comm.Rank) {
		sc := tel.Child(fmt.Sprintf("rank%d", r.ID))
		sink := &errSink{}
		dists := make([]*comm.Dist, nl)
		for l := range decomps {
			dists[l] = comm.NewDist(r, layouts[l][r.ID], sc)
		}
		dmg, err := mg.NewDistOpts(s.MG, dists, mg.DistOptions{Agg: agg})
		if err != nil {
			rankErr[r.ID] = err
			// Stay collective even on failure: every other rank will
			// fail the same way, so returning here is safe.
			return
		}
		fine := dists[0]
		spans := coupledSpans(s.Op, fine.L)
		a := &distOp{op: s.Op, ten: fem.NewTensor(s.Prob), dist: fine, sink: sink, spans: spans}
		m := &distFieldSplit{op: s.Op, dmg: dmg, mp: s.Mp, l: fine.L,
			tu: la.NewVec(s.Op.Np), pspans: pressureSpans(fine.L)}
		prm := prmIn
		prm.Reducer = &coupledReducer{op: s.Op, dist: fine}
		prm.Exchanger = &coupledExchanger{op: s.Op, dist: fine}
		prm.Telemetry = sc.Child("krylov")
		prm.Pipelined = opt.Pipelined
		prm.Spans = spans

		// Windowed clone: only the owned+ghost entries of the global
		// residual are ever read by this rank's iteration, so the pages
		// outside the windows are never touched (or even faulted in).
		b := la.NewVec(n)
		b.CopySpans(f, spans)
		d := la.NewVec(n)
		var rr krylov.Result
		if method == "fgmres" {
			rr = krylov.FGMRES(a, m, b, d, prm)
		} else {
			rr = krylov.GCR(a, m, b, d, prm, nil)
		}
		sink.note(dmg.Err())
		sink.note(rr.Err)

		// Assemble this rank's owned slice of the correction.
		du, dp := s.Op.Split(d)
		gu, gp := s.Op.Split(delta)
		mu.Lock()
		box := fine.L.Owned
		da := fine.L.D.DA
		for k := box.Lo[2]; k < box.Hi[2]; k++ {
			for j := box.Lo[1]; j < box.Hi[1]; j++ {
				row := (k*da.NPy + j) * da.NPx
				lo, hi := 3*(row+box.Lo[0]), 3*(row+box.Hi[0])
				copy(gu[lo:hi], du[lo:hi])
			}
		}
		for _, e := range fine.L.Elems {
			copy(gp[4*e:4*e+4], dp[4*e:4*e+4])
		}
		if r.ID == 0 {
			res = rr
		}
		stats[r.ID] = rankCommCounters(sc, r.ID).sub(before[r.ID])
		rankErr[r.ID] = sink.err
		mu.Unlock()
	})
	for rid, err := range rankErr {
		if err != nil {
			return res, stats, fmt.Errorf("stokes: distributed solve, rank %d: %w", rid, err)
		}
	}
	return res, stats, nil
}
