package stokes

import (
	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
)

// Uzawa is the classical stationary iteration of the Schur-complement-
// reduction family that the paper cites as its well-known member
// (§III-B): accurate viscous solves alternate with preconditioned
// pressure updates,
//
//	A·u_{k+1} = f − G·p_k
//	p_{k+1}   = p_k + ω·M_p⁻¹·(D·u_{k+1} − g),
//
// with the viscosity-scaled pressure mass matrix as the (SPD) Schur
// preconditioner. Reliable but expensive — every iteration contains a
// full viscous solve — exactly the trade the paper describes for
// SCR-type methods.
type Uzawa struct {
	Op     *Op
	InnerU krylov.Preconditioner // preconditioner for the viscous solves
	Mp     *fem.PressureMass
	// Omega is the relaxation parameter (1 is appropriate with the
	// spectrally equivalent mass preconditioner).
	Omega float64
	// InnerParams controls the viscous solves; OuterParams the pressure
	// iteration (MaxIt, RTol on the continuity residual).
	InnerParams krylov.Params
	OuterParams krylov.Params
}

// NewUzawa builds the iteration with standard parameters.
func NewUzawa(op *Op, innerU krylov.Preconditioner, mp *fem.PressureMass) *Uzawa {
	ip := krylov.DefaultParams()
	ip.RTol = 1e-8
	ip.MaxIt = 400
	opar := krylov.DefaultParams()
	opar.RTol = 1e-6
	opar.MaxIt = 200
	return &Uzawa{Op: op, InnerU: innerU, Mp: mp, Omega: 1, InnerParams: ip, OuterParams: opar}
}

// Solve iterates on [u;p] for the right-hand side [f;g] packed in b,
// starting from x (updated in place). Convergence is measured on the
// continuity residual ‖D·u − g‖.
func (uz *Uzawa) Solve(b, x la.Vec) krylov.Result {
	f, g := uz.Op.Split(b)
	u, p := uz.Op.Split(x)
	nu := uz.Op.Nu
	np := uz.Op.Np

	rhs := la.NewVec(nu)
	du := la.NewVec(np)
	dp := la.NewVec(np)
	var res krylov.Result
	for it := 1; it <= uz.OuterParams.MaxIt; it++ {
		// Viscous solve: A u = f − G p.
		rhs.Copy(f)
		neg := la.NewVec(nu)
		uz.Op.C.ApplyGAdd(p, neg)
		rhs.AXPY(-1, neg)
		krylov.FGMRES(uOnly{uz.Op}, uz.InnerU, rhs, u, uz.InnerParams)
		// Continuity residual and pressure update.
		uz.Op.C.ApplyD(u, du)
		for i := range du {
			du[i] -= g[i]
		}
		rn := du.Norm2()
		res.Iterations = it
		if it == 1 {
			res.Residual0 = rn
		}
		res.Residual = rn
		if rn <= uz.OuterParams.ATol || rn <= uz.OuterParams.RTol*res.Residual0 {
			res.Converged = true
			break
		}
		uz.Mp.ApplyInv(du, dp)
		p.AXPY(uz.Omega, dp)
	}
	return res
}
