package stokes

import (
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
)

// TestUzawaConvergesAndMatches: the classical Uzawa iteration (§III-B's
// well-known SCR family member) converges on the sinker and agrees with
// the field-split solution.
func TestUzawaConvergesAndMatches(t *testing.T) {
	p, def := sinkerProblem(4, 100, 1)
	cfg := sinkerConfig(p, def)
	cfg.Levels = 2
	cfg.Params.RTol = 1e-8
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)

	// Reference field-split solve.
	x1 := la.NewVec(s.Op.N())
	if res := s.Solve(x1, bu, nil); !res.Converged {
		t.Fatal("fieldsplit reference failed")
	}

	// Uzawa on the same system.
	uz := NewUzawa(s.Op, s.MG, s.Mp)
	uz.OuterParams.RTol = 1e-7
	b := la.NewVec(s.Op.N())
	fpart, _ := s.Op.Split(b)
	fpart.Copy(bu)
	x2 := la.NewVec(s.Op.N())
	res := uz.Solve(b, x2)
	if !res.Converged {
		t.Fatalf("Uzawa failed: %d its rel %.2e", res.Iterations, res.Residual/res.Residual0)
	}
	u1, _ := s.Op.Split(x1)
	u2, _ := s.Op.Split(x2)
	du := u1.Clone()
	du.AXPY(-1, u2)
	if rel := du.Norm2() / u1.Norm2(); rel > 1e-3 {
		t.Fatalf("Uzawa velocity differs from fieldsplit by %.2e", rel)
	}
}

// TestUpperTriangularFieldSplit: the upper-factor grouping converges with
// comparable iteration counts to the lower one (they are algebraically
// equivalent up to the dropped factor).
func TestUpperTriangularFieldSplit(t *testing.T) {
	p, def := sinkerProblem(4, 100, 1)
	cfg := sinkerConfig(p, def)
	cfg.Levels = 2
	s, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)

	solveWith := func(upper bool) (int, bool) {
		s.FS.Upper = upper
		x := la.NewVec(s.Op.N())
		f := la.NewVec(s.Op.N())
		s.Op.Residual(x, bu, f)
		f.Scale(-1)
		delta := la.NewVec(s.Op.N())
		res := krylov.FGMRES(s.Op, s.FS, f, delta, cfg.Params)
		return res.Iterations, res.Converged
	}
	itLower, okL := solveWith(false)
	itUpper, okU := solveWith(true)
	s.FS.Upper = false
	if !okL || !okU {
		t.Fatalf("convergence: lower %v upper %v", okL, okU)
	}
	if itUpper > 2*itLower+10 {
		t.Fatalf("upper factor much worse: %d vs %d its", itUpper, itLower)
	}
}
