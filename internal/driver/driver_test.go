package driver

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"ptatin3d/internal/model"
	"ptatin3d/internal/op"
	"ptatin3d/internal/scenario"
)

func smallSinker(t *testing.T, workers int) *model.Model {
	t.Helper()
	spec, err := scenario.Get("sinker")
	if err != nil {
		t.Fatal(err)
	}
	spec.Resolution = spec.SmallResolution()
	m, err := scenario.Compile(spec, workers)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestOverridesApply: flag-level substitutions land on the compiled
// model's solver config, and bad values are rejected.
func TestOverridesApply(t *testing.T) {
	m := smallSinker(t, 1)
	ov := Overrides{Op: "asm", Blocked: true, Precision: "f32", Restart: 123}
	if err := ov.Apply(m); err != nil {
		t.Fatal(err)
	}
	if m.Cfg.FineKind != op.Assembled || !m.Cfg.Blocked || m.Cfg.Precision != op.F32 || m.Cfg.Restart != 123 {
		t.Fatalf("overrides not applied: %+v", m.Cfg)
	}
	if err := (Overrides{Op: "nope"}).Apply(m); err == nil {
		t.Fatal("bad -op value accepted")
	}
	if err := (Overrides{Precision: "f16"}).Apply(m); err == nil {
		t.Fatal("bad -precision value accepted")
	}
}

// TestBackendSelection: the -ranks flag maps to the right backend.
func TestBackendSelection(t *testing.T) {
	if b, err := Backend("", false, 0); err != nil || b != nil {
		t.Fatalf("empty ranks: backend %v err %v, want shared (nil)", b, err)
	}
	if b, err := Backend("1x1x1", false, 0); err != nil || b != nil {
		t.Fatalf("1x1x1: backend %v err %v, want shared (nil)", b, err)
	}
	b, err := Backend("2x1x2", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	db, ok := b.(*model.DistributedBackend)
	if !ok || db.Ranks() != 4 {
		t.Fatalf("2x1x2: got %T with %d ranks", b, db.Ranks())
	}
	if _, err := Backend("2x", false, 0); err == nil {
		t.Fatal("malformed ranks accepted")
	}
}

// TestRunCheckpointRestartAndJSON drives the full loop: step with
// -checkpoint-every, restart a fresh model from the file, and check the
// emitted JSON run record matches the step data.
func TestRunCheckpointRestartAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ckpt := filepath.Join(t.TempDir(), "run.chkpt")

	var csv, js bytes.Buffer
	m := smallSinker(t, 2)
	err := Run(m, Config{Steps: 2, CheckpointEvery: 1, CheckpointPath: ckpt, Out: &csv, JSONOut: &js, Scenario: "sinker"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "# checkpointed step 2") {
		t.Fatalf("missing checkpoint marker in output:\n%s", csv.String())
	}

	var rec RunRecord
	if err := json.Unmarshal(js.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSON record: %v", err)
	}
	if rec.Scenario != "sinker" || rec.Backend != "shared" || len(rec.Steps) != 2 {
		t.Fatalf("record header wrong: %+v", rec)
	}
	if rec.Steps[0].KrylovIts != m.Stats[0].KrylovIts || rec.AvgStepS <= 0 {
		t.Fatalf("record steps wrong: %+v", rec.Steps)
	}

	// Restart from the step-2 checkpoint and take one more step.
	m2 := smallSinker(t, 2)
	var csv2 bytes.Buffer
	if err := Run(m2, Config{Steps: 1, RestartFrom: ckpt, Out: &csv2}); err != nil {
		t.Fatal(err)
	}
	if m2.StepNum != 3 {
		t.Fatalf("restarted run at step %d, want 3", m2.StepNum)
	}
	if !strings.Contains(csv2.String(), "# restarted from") {
		t.Fatalf("missing restart marker:\n%s", csv2.String())
	}
}

// TestRunDistributedRecordsComm: a distributed run labels its stats and
// reports fabric traffic in the JSON record.
func TestRunDistributedRecordsComm(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := smallSinker(t, 2)
	m.Backend, _ = Backend("2x1x1", false, 0)
	var js bytes.Buffer
	if err := Run(m, Config{Steps: 1, Out: &bytes.Buffer{}, JSONOut: &js, Scenario: "sinker"}); err != nil {
		t.Fatal(err)
	}
	var rec RunRecord
	if err := json.Unmarshal(js.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Backend != "distributed" || rec.Ranks != 2 {
		t.Fatalf("record backend wrong: %+v", rec)
	}
	if rec.Steps[0].HaloMsgs == 0 || rec.Steps[0].AllReduces == 0 {
		t.Fatalf("no communication recorded: %+v", rec.Steps[0])
	}
}
