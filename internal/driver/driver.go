// Package driver is the shared engine behind the scenario binaries:
// compile a scenario spec into a model, apply the CLI solver overrides,
// select the Stokes backend (shared-memory or rank-distributed), run
// the time loop with per-step reporting, checkpoint/restart, and
// optionally emit a machine-readable end-to-end step-time record. The
// ptatin-run driver is a thin flag layer over this package, and the
// legacy ptatin-sinker/ptatin-rift binaries reuse the same loop.
package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/model"
	"ptatin3d/internal/op"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
)

// Overrides are the CLI-level solver substitutions applied on top of a
// compiled model (empty/zero values leave the spec's choice in place).
type Overrides struct {
	Op        string // fine-level operator representation
	Blocked   bool   // cache-blocked smoothers
	Precision string // V-cycle precision ("f64"/"f32")
	Restart   int    // FGMRES restart window (stokes.Config.Restart)
}

// Apply mutates the model's solver configuration in place.
func (o Overrides) Apply(m *model.Model) error {
	if o.Op != "" {
		k, err := op.ParseKind(o.Op)
		if err != nil {
			return err
		}
		m.Cfg.FineKind = k
	}
	if o.Blocked {
		m.Cfg.Blocked = true
	}
	if o.Precision != "" {
		pr, err := op.ParsePrecision(o.Precision)
		if err != nil {
			return err
		}
		m.Cfg.Precision = pr
	}
	if o.Restart > 0 {
		m.Cfg.Restart = o.Restart
	}
	return nil
}

// Backend builds the Stokes backend for a -ranks flag value: "" or
// "1x1x1" selects the shared-memory path, anything else a
// DistributedBackend over the simulated fabric.
func Backend(ranks string, pipelined bool, coarseRoots int) (model.StokesBackend, error) {
	if ranks == "" {
		return nil, nil
	}
	px, py, pz, err := cli.ParseRanks(ranks)
	if err != nil {
		return nil, err
	}
	if px*py*pz == 1 {
		return nil, nil
	}
	return model.NewDistributedBackend(px, py, pz, stokes.DistOptions{
		Pipelined:   pipelined,
		CoarseRoots: coarseRoots,
	}), nil
}

// Config controls one Run.
type Config struct {
	Steps           int
	CheckpointEvery int
	CheckpointPath  string
	RestartFrom     string
	// Out receives the per-step CSV (default os.Stdout; io.Discard
	// silences it).
	Out io.Writer
	// JSONOut, when non-nil, receives the end-to-end StepRecord JSON
	// after the loop (the scripts/bench.sh hook).
	JSONOut io.Writer
	// Scenario labels the JSON record.
	Scenario string
}

// StepRecord is one step of the machine-readable run record.
type StepRecord struct {
	Step       int     `json:"step"`
	Dt         float64 `json:"dt"`
	NewtonIts  int     `json:"newton_its"`
	KrylovIts  int     `json:"krylov_its"`
	Converged  bool    `json:"converged"`
	Points     int     `json:"points"`
	WallS      float64 `json:"wall_s"`
	Backend    string  `json:"backend"`
	Ranks      int     `json:"ranks,omitempty"`
	HaloMsgs   int64   `json:"halo_msgs,omitempty"`
	HaloBytes  int64   `json:"halo_bytes,omitempty"`
	AllReduces int64   `json:"allreduces,omitempty"`
	// Per-stage wall seconds of the step pipeline, and the count of
	// relinearizations that reused the cached Stokes setup.
	RheologyS         float64 `json:"rheology_s"`
	MPMProjectS       float64 `json:"mpm_project_s"`
	StokesSetupS      float64 `json:"stokes_setup_s"`
	StokesKrylovS     float64 `json:"stokes_krylov_s"`
	AdvectS           float64 `json:"advect_s"`
	ALES              float64 `json:"ale_s"`
	ThermalS          float64 `json:"thermal_s"`
	StokesSetupReused int64   `json:"stokes_setup_reused"`
}

// RunRecord is the end-to-end JSON emitted on JSONOut.
type RunRecord struct {
	Scenario   string       `json:"scenario"`
	Backend    string       `json:"backend"`
	Ranks      int          `json:"ranks,omitempty"`
	Workers    int          `json:"workers"`
	Resolution [3]int       `json:"resolution"`
	Steps      []StepRecord `json:"steps"`
	TotalWallS float64      `json:"total_wall_s"`
	AvgStepS   float64      `json:"avg_step_s"`
}

// Run advances the model Config.Steps steps with per-step reporting,
// periodic checkpointing and optional restart. The model's Backend must
// already be installed.
func Run(m *model.Model, cfg Config) error {
	out := cfg.Out
	if out == nil {
		out = os.Stdout
	}
	if cfg.RestartFrom != "" {
		if err := m.LoadCheckpoint(cfg.RestartFrom); err != nil {
			return fmt.Errorf("restart: %w", err)
		}
		fmt.Fprintf(out, "# restarted from %s at step %d, t=%.5f\n", cfg.RestartFrom, m.StepNum, m.Time)
	}
	backendName := "shared"
	ranks := 0
	if m.Backend != nil {
		backendName = m.Backend.Name()
		if db, ok := m.Backend.(*model.DistributedBackend); ok {
			ranks = db.Ranks()
		}
	}
	fmt.Fprintln(out, "# columns: step, time, dt, newton_its, krylov_its, |F|0, |F|, converged, topo_min, topo_max, points, backend, halo_msgs, wall_s")
	var recs []StepRecord
	runStart := time.Now()
	for s := 0; s < cfg.Steps; s++ {
		stepStart := time.Now()
		if err := m.StepForward(); err != nil {
			return fmt.Errorf("step %d: %w", m.StepNum+1, err)
		}
		st := m.Stats[len(m.Stats)-1]
		wall := time.Since(stepStart).Seconds()
		fmt.Fprintf(out, "%d, %.5f, %.5f, %d, %d, %.3e, %.3e, %v, %.4f, %.4f, %d, %s, %d, %.2f\n",
			st.Step, st.Time, st.Dt, st.NewtonIts, st.KrylovIts,
			st.FNorm0, st.FNorm, st.Converged, st.TopoMin, st.TopoMax,
			st.PointCount, st.Backend, st.HaloMsgs, wall)
		recs = append(recs, StepRecord{
			Step: st.Step, Dt: st.Dt,
			NewtonIts: st.NewtonIts, KrylovIts: st.KrylovIts,
			Converged: st.Converged, Points: st.PointCount,
			WallS:   wall,
			Backend: st.Backend, Ranks: st.Ranks,
			HaloMsgs: st.HaloMsgs, HaloBytes: st.HaloBytes, AllReduces: st.AllReduces,
			RheologyS:         st.RheologyTime.Seconds(),
			MPMProjectS:       st.ProjectTime.Seconds(),
			StokesSetupS:      st.StokesSetupTime.Seconds(),
			StokesKrylovS:     st.StokesKrylovTime.Seconds(),
			AdvectS:           st.AdvectTime.Seconds(),
			ALES:              st.ALETime.Seconds(),
			ThermalS:          st.ThermalTime.Seconds(),
			StokesSetupReused: st.StokesSetupReused,
		})
		if cfg.CheckpointEvery > 0 && m.StepNum%cfg.CheckpointEvery == 0 {
			path := cfg.CheckpointPath
			if path == "" {
				path = "ptatin.chkpt"
			}
			if err := m.SaveCheckpoint(path); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
			fmt.Fprintf(out, "# checkpointed step %d to %s\n", m.StepNum, path)
		}
	}
	if m.Cfg.FineKind == op.Auto && m.LastStokes != nil {
		fmt.Fprintln(os.Stderr, "# operator auto-selection")
		for _, d := range m.LastStokes.SelectionReport() {
			fmt.Fprintln(os.Stderr, "#   "+d.Summary())
		}
	}
	if cfg.JSONOut != nil {
		total := time.Since(runStart).Seconds()
		rec := RunRecord{
			Scenario: cfg.Scenario, Backend: backendName, Ranks: ranks,
			Workers:    m.Workers,
			Resolution: [3]int{m.Prob.DA.Mx, m.Prob.DA.My, m.Prob.DA.Mz},
			Steps:      recs, TotalWallS: total,
		}
		if len(recs) > 0 {
			rec.AvgStepS = total / float64(len(recs))
		}
		enc := json.NewEncoder(cfg.JSONOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Smoke compiles every registered scenario at its small resolution and
// runs it for two steps on the shared backend and (when the small
// resolution admits the rank grid on every level) on the distributed
// backend at 2×1×1 — the check.sh scenario-smoke gate. Progress goes to
// out; the first failure is returned.
func Smoke(workers int, out io.Writer) error {
	if out == nil {
		out = os.Stdout
	}
	for _, name := range scenario.Names() {
		spec, err := scenario.Get(name)
		if err != nil {
			return err
		}
		spec.Resolution = spec.SmallResolution()
		for _, mode := range []string{"shared", "distributed"} {
			m, err := scenario.Compile(spec, workers)
			if err != nil {
				return fmt.Errorf("smoke %s: compile: %w", name, err)
			}
			m.Telemetry = telemetry.New().Root().Child("model")
			if mode == "distributed" {
				m.Backend = model.NewDistributedBackend(2, 1, 1, stokes.DistOptions{})
			}
			start := time.Now()
			if err := Run(m, Config{Steps: 2, Out: io.Discard}); err != nil {
				return fmt.Errorf("smoke %s (%s): %w", name, mode, err)
			}
			st := m.Stats[len(m.Stats)-1]
			fmt.Fprintf(out, "smoke %-16s %-11s ok: 2 steps, krylov_its=%d+%d, %.1fs\n",
				name, mode, m.Stats[0].KrylovIts, st.KrylovIts, time.Since(start).Seconds())
		}
	}
	return nil
}
