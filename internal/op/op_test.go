package op_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/mg"
	"ptatin3d/internal/op"
)

// equivTol is the agreement bound between operator representations,
// scaled by the result magnitude (ISSUE acceptance: 1e-12).
const equivTol = 1e-12

// equivCase holds one randomized nested problem pair: the level under
// test plus the 2× finer problem the Galerkin product coarsens from.
type equivCase struct {
	coarse, fine *fem.Problem
	prol         *mg.Prolongation
}

// randomEquivCase builds a deformed nested mesh pair with a randomized
// heterogeneous viscosity field and a free-slip base constraint pattern.
func randomEquivCase(t *testing.T, m int, rng *rand.Rand) equivCase {
	t.Helper()
	fda := mesh.New(2*m, 2*m, 2*m, 0, 1, 0, 1, 0, 1)
	a1 := 0.02 + 0.04*rng.Float64()
	a2 := 0.02 + 0.04*rng.Float64()
	p1 := 2 * math.Pi * rng.Float64()
	fda.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + a1*math.Sin(math.Pi*y+p1), y + a2*math.Sin(math.Pi*z), z + 0.03*x*y
	})
	cda := fda.Coarsen()
	fbc := mesh.NewBC(fda)
	fbc.FreeSlipBox(fda, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	cbc := mesh.CoarsenBC(fda, cda, fbc)

	c1 := 1 + 3*rng.Float64()
	w1 := 1 + 5*rng.Float64()
	w2 := 1 + 5*rng.Float64()
	eta := func(x, y, z float64) float64 {
		return math.Exp(c1 * math.Sin(w1*x) * math.Cos(w2*y) * math.Sin(2*z))
	}
	cp := fem.NewProblem(cda, cbc)
	cp.Workers = 2
	cp.SetCoefficientsFunc(eta, nil)
	fp := fem.NewProblem(fda, fbc)
	fp.Workers = 2
	fp.SetCoefficientsFunc(eta, nil)
	return equivCase{coarse: cp, fine: fp, prol: mg.NewProlongation(fda, cda, fbc, cbc)}
}

func randVec(rng *rand.Rand, n int) la.Vec {
	v := la.NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestOpEquivalence checks that every registered representation of the
// same viscous block — tensor matrix-free, reference matrix-free and
// rediscretized CSR — produces identical results (to equivTol × the
// result magnitude) on randomized heterogeneous-viscosity fields across
// three mesh sizes, and that the Galerkin product matches the explicit
// composition Pᵀ·(A_fine·(P·x)) on free rows with identity behaviour on
// constrained rows.
func TestOpEquivalence(t *testing.T) {
	for _, m := range []int{2, 3, 4} {
		m := m
		t.Run(fmt.Sprintf("m%d", m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + m)))
			ec := randomEquivCase(t, m, rng)
			n := ec.coarse.DA.NVelDOF()

			kinds := []op.Kind{op.Tensor, op.TensorC, op.MFRef, op.Assembled}
			ops := make([]op.Operator, len(kinds))
			for i, k := range kinds {
				o, err := op.New(k, op.Env{Prob: ec.coarse, Workers: 2})
				if err != nil {
					t.Fatalf("%v: %v", k, err)
				}
				if err := o.Setup(); err != nil {
					t.Fatalf("%v setup: %v", k, err)
				}
				ops[i] = o
			}

			var fineA *la.CSR
			genv := op.Env{
				Prob:    ec.coarse,
				Workers: 2,
				FineCSR: func() *la.CSR {
					if fineA == nil {
						fineA = fem.AssembleViscous(ec.fine)
					}
					return fineA
				},
				Prolong: ec.prol.ToCSR,
			}
			galk, err := op.New(op.Galerkin, genv)
			if err != nil {
				t.Fatalf("galerkin: %v", err)
			}
			if err := galk.Setup(); err != nil {
				t.Fatalf("galerkin setup: %v", err)
			}
			pm := ec.prol.ToCSR()

			for trial := 0; trial < 3; trial++ {
				x := randVec(rng, n)
				ys := make([]la.Vec, len(ops))
				for i, o := range ops {
					ys[i] = la.NewVec(n)
					o.Apply(x, ys[i])
				}
				scale := ys[0].NormInf()
				if scale == 0 {
					t.Fatal("degenerate problem: zero operator result")
				}
				for i := 1; i < len(ops); i++ {
					for d := 0; d < n; d++ {
						if diff := math.Abs(ys[i][d] - ys[0][d]); diff > equivTol*scale {
							t.Fatalf("trial %d: %v vs %v mismatch at dof %d: %v vs %v (|Δ|=%.3e)",
								trial, kinds[i], kinds[0], d, ys[i][d], ys[0][d], diff)
						}
					}
				}

				// Galerkin against the explicit triple-product composition.
				yg := la.NewVec(n)
				galk.Apply(x, yg)
				xf := la.NewVec(ec.fine.DA.NVelDOF())
				pm.MulVec(x, xf)
				axf := la.NewVec(len(xf))
				genv.FineCSR().MulVec(xf, axf)
				want := la.NewVec(n)
				pm.Transpose().MulVec(axf, want)
				gscale := want.NormInf()
				if gscale == 0 {
					gscale = 1
				}
				for d := 0; d < n; d++ {
					if ec.coarse.BC.Mask[d] {
						if yg[d] != x[d] {
							t.Fatalf("trial %d: galerkin constrained row %d not identity: %v vs %v",
								trial, d, yg[d], x[d])
						}
						continue
					}
					if diff := math.Abs(yg[d] - want[d]); diff > equivTol*gscale {
						t.Fatalf("trial %d: galerkin vs Pᵀ(A(Px)) mismatch at dof %d: %v vs %v (|Δ|=%.3e)",
							trial, d, yg[d], want[d], diff)
					}
				}
			}
		})
	}
}

// TestOpDiagEquivalence checks that the representation-specific diagonals
// of the shared matrix agree: the matrix-free diagonal and the CSR
// diagonal of the rediscretized operator describe the same operator.
func TestOpDiagEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ec := randomEquivCase(t, 3, rng)
	n := ec.coarse.DA.NVelDOF()
	mf, err := op.New(op.Tensor, op.Env{Prob: ec.coarse, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	asm, err := op.New(op.Assembled, op.Env{Prob: ec.coarse, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := asm.Setup(); err != nil {
		t.Fatal(err)
	}
	d1, d2 := la.NewVec(n), la.NewVec(n)
	mf.Diag(d1)
	asm.Diag(d2)
	scale := d1.NormInf()
	for i := 0; i < n; i++ {
		if diff := math.Abs(d1[i] - d2[i]); diff > equivTol*scale {
			t.Fatalf("diag mismatch at %d: mf %v asm %v", i, d1[i], d2[i])
		}
	}
}

// TestParseKind covers the flag-value aliases and rejection of unknowns.
func TestParseKind(t *testing.T) {
	cases := map[string]op.Kind{
		"mf": op.Tensor, "tensor": op.Tensor,
		"mfref": op.MFRef, "ref": op.MFRef,
		"asm": op.Assembled, "assembled": op.Assembled,
		"galerkin": op.Galerkin, "rap": op.Galerkin,
		"auto": op.Auto,
		"mfc":  op.TensorC, "tensorc": op.TensorC,
		"mf32": op.TensorF32, "asm32": op.AssembledF32,
	}
	for s, want := range cases {
		got, err := op.ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := op.ParseKind("petsc"); err == nil {
		t.Error("ParseKind accepted an unknown representation")
	}
}

// TestAutoSelectsPerLevel drives the multigrid builder with op.Auto on
// every level of a 3-level hierarchy and checks the paper's layout
// emerges: a matrix-free winner on the finest level (compute-bound,
// no setup to amortize) and an assembled representation on the coarsest
// (the coarse solver consumes CSR).
func TestAutoSelectsPerLevel(t *testing.T) {
	op.ResetDecisionCache()
	eta := func(x, y, z float64) float64 {
		return math.Exp(math.Sin(3*x) * math.Cos(2*y) * math.Sin(z))
	}
	da := mesh.New(8, 8, 8, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax)
	fine := fem.NewProblem(da, bc)
	fine.Workers = 2
	fine.SetCoefficientsFunc(eta, nil)
	probs := mg.CoarsenProblems(fine, 3, mg.FuncCoeffCoarsener(eta, nil))

	pol := op.DefaultPolicy()
	pol.DisableCache = true
	mgp, err := mg.Build(probs, mg.Options{
		Kinds:       []op.Kind{op.Auto, op.Auto, op.Auto},
		SmoothSteps: 2,
		Workers:     2,
		Auto:        pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	decs := mgp.SelectionReport()
	if len(decs) != 3 {
		t.Fatalf("expected 3 auto decisions, got %d", len(decs))
	}
	for _, d := range decs {
		if !d.Committed {
			t.Fatalf("level %d: decision not committed: %+v", d.Level, d)
		}
		t.Log(d.Summary())
	}
	if k := decs[0].Chosen; k != op.Tensor && k != op.TensorC && k != op.MFRef {
		t.Errorf("finest level chose %v; want a matrix-free representation", k)
	}
	last := decs[len(decs)-1]
	if k := last.Chosen; k != op.Assembled && k != op.Galerkin {
		t.Errorf("coarsest level chose %v; want an assembled representation", k)
	}
	if !last.Forced {
		t.Error("coarsest level decision should be forced by the CSR requirement")
	}
}

// TestAutoDecisionCache checks that a second identical hierarchy reuses
// the committed decision instead of re-trialing.
func TestAutoDecisionCache(t *testing.T) {
	op.ResetDecisionCache()
	eta := func(x, y, z float64) float64 { return 1 + x + y*z }
	build := func() op.Decision {
		da := mesh.New(4, 4, 4, 0, 1, 0, 1, 0, 1)
		bc := mesh.NewBC(da)
		bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax)
		p := fem.NewProblem(da, bc)
		p.Workers = 2
		p.SetCoefficientsFunc(eta, nil)
		a, err := op.New(op.Auto, op.Env{Prob: p, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		auto := a.(*op.AutoOp)
		if err := auto.Setup(); err != nil {
			t.Fatal(err)
		}
		auto.ForceCommit()
		return auto.Decision()
	}
	first := build()
	if !first.Committed || first.FromCache {
		t.Fatalf("first decision should be a fresh commit: %+v", first)
	}
	second := build()
	if !second.FromCache {
		t.Fatalf("second decision should come from the cache: %+v", second)
	}
	if second.Chosen != first.Chosen {
		t.Fatalf("cache returned %v, first run chose %v", second.Chosen, first.Chosen)
	}
}

// TestF32OpEquivalence checks the reduced-precision representations
// against the float64 tensor reference: TensorF32 and AssembledF32 must
// agree to single-precision accuracy (they are preconditioner
// perturbations, not exact realizations), and AssembledF32's CSR() must
// still hand the exact float64 matrix to coarse-solver consumers.
func TestF32OpEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ec := randomEquivCase(t, 3, rng)
	n := ec.coarse.DA.NVelDOF()

	ref, err := op.New(op.Tensor, op.Env{Prob: ec.coarse, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(rng, n)
	want := la.NewVec(n)
	ref.Apply(x, want)
	scale := want.NormInf()

	for _, k := range []op.Kind{op.TensorF32, op.AssembledF32} {
		o, err := op.New(k, op.Env{Prob: ec.coarse, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := o.Setup(); err != nil {
			t.Fatalf("%v setup: %v", k, err)
		}
		y := la.NewVec(n)
		o.Apply(x, y)
		for d := 0; d < n; d++ {
			if diff := math.Abs(y[d] - want[d]); diff > 2e-4*scale {
				t.Fatalf("%v vs tensor mismatch at dof %d: %v vs %v (|Δ|=%.3e)", k, d, y[d], want[d], diff)
			}
		}
	}

	a32, _ := op.New(op.AssembledF32, op.Env{Prob: ec.coarse, Workers: 2})
	a64, _ := op.New(op.Assembled, op.Env{Prob: ec.coarse, Workers: 2})
	m32, m64 := a32.CSR(), a64.CSR()
	if m32 == nil {
		t.Fatal("AssembledF32.CSR() returned nil; coarse handoff needs the f64 matrix")
	}
	if len(m32.Val) != len(m64.Val) {
		t.Fatalf("AssembledF32 f64 matrix has %d nnz, Assembled has %d", len(m32.Val), len(m64.Val))
	}
	for i := range m32.Val {
		if m32.Val[i] != m64.Val[i] {
			t.Fatalf("AssembledF32.CSR() value %d differs from the f64 assembly: %v vs %v",
				i, m32.Val[i], m64.Val[i])
		}
	}
}

// TestResidentOf checks the unwrapping helper: resident-backed kinds
// expose their fem.Resident (including through an Auto commitment), and
// non-resident kinds return nil.
func TestResidentOf(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ec := randomEquivCase(t, 2, rng)
	rc, err := op.New(op.TensorC, op.Env{Prob: ec.coarse, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := op.ResidentOf(rc)
	if r == nil {
		t.Fatal("ResidentOf(TensorC) = nil")
	}
	if r.F32 {
		t.Fatal("TensorC resident reports F32")
	}
	r32c, _ := op.New(op.TensorF32, op.Env{Prob: ec.coarse, Workers: 2})
	if r32 := op.ResidentOf(r32c); r32 == nil || !r32.F32 {
		t.Fatalf("ResidentOf(TensorF32) = %v; want an f32 resident", r32)
	}
	mf, _ := op.New(op.Tensor, op.Env{Prob: ec.coarse, Workers: 2})
	if op.ResidentOf(mf) != nil {
		t.Fatal("ResidentOf(Tensor) != nil")
	}
}

// TestAutoCacheKeyedByPrecision is the regression test for the decision
// cache ignoring precision: an f64 selection must NOT be replayed into an
// AllowF32 selector for the same level shape (and vice versa), because
// the candidate fields — and the acceptable winners — differ.
func TestAutoCacheKeyedByPrecision(t *testing.T) {
	op.ResetDecisionCache()
	eta := func(x, y, z float64) float64 { return 1 + x*y + z }
	build := func(allowF32 bool) op.Decision {
		da := mesh.New(4, 4, 4, 0, 1, 0, 1, 0, 1)
		bc := mesh.NewBC(da)
		bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax)
		p := fem.NewProblem(da, bc)
		p.Workers = 2
		p.SetCoefficientsFunc(eta, nil)
		pol := op.DefaultPolicy()
		pol.AllowF32 = allowF32
		a, err := op.New(op.Auto, op.Env{Prob: p, Workers: 2, Policy: &pol})
		if err != nil {
			t.Fatal(err)
		}
		auto := a.(*op.AutoOp)
		if err := auto.Setup(); err != nil {
			t.Fatal(err)
		}
		auto.ForceCommit()
		return auto.Decision()
	}
	f64first := build(false)
	if !f64first.Committed || f64first.FromCache {
		t.Fatalf("first f64 decision should be a fresh commit: %+v", f64first)
	}
	f32first := build(true)
	if f32first.FromCache {
		t.Fatalf("f32 selection replayed the f64 cache entry: %+v", f32first)
	}
	f32second := build(true)
	if !f32second.FromCache || f32second.Chosen != f32first.Chosen {
		t.Fatalf("identical f32 selection should hit the cache: %+v", f32second)
	}
	f64second := build(false)
	if !f64second.FromCache || f64second.Chosen != f64first.Chosen {
		t.Fatalf("f64 cache entry lost after f32 selection: %+v", f64second)
	}
}
