// Package op is the unified viscous-operator layer: a single Operator
// interface over the four representations studied in the paper (tensor
// matrix-free, reference matrix-free, rediscretized CSR, Galerkin CSR)
// plus a cost-model-driven Auto selector that picks a representation per
// multigrid level at runtime. The paper's headline observation — no
// single representation wins everywhere; matrix-free dominates on fine
// Q2 levels while assembled SpMV wins where the coarse solver needs a
// matrix — lives here as behaviour instead of as constructor arguments
// scattered across fem, mg and stokes.
//
// Every backend carries cost metadata (setup flops/bytes, per-apply
// flops/bytes, assembled storage footprint) derived from the analytic
// per-element counts in internal/perfmodel, so callers can rank
// representations on a roofline model before ever applying one.
package op

import (
	"fmt"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/telemetry"
)

// Kind identifies an operator representation.
type Kind int

// Operator representations. The zero value is the tensor matrix-free
// kernel — the paper's production fine-level choice — so zero-valued
// configurations keep today's behaviour.
const (
	// Tensor applies the operator matrix-free with the tensor-product
	// kernel ("Tens" in Tables I-III). Flag name: "mf".
	Tensor Kind = iota
	// MFRef applies the operator matrix-free with the reference
	// non-tensor kernel ("MF"). Flag name: "mfref".
	MFRef
	// Assembled rediscretizes on the level's mesh and applies the CSR
	// matrix by row-parallel SpMV ("Asmb"). Flag name: "asm".
	Assembled
	// Galerkin builds the CSR operator as the triple product Pᵀ·A_fine·P;
	// requires an assembled finer level. Flag name: "galerkin".
	Galerkin
	// Auto selects a representation at runtime: candidates are ranked by
	// roofline estimates, the first few real applies of the surviving
	// candidates are timed, and the winner (assembly cost amortized over
	// the expected apply count) is committed. Flag name: "auto".
	Auto
	// TensorC applies the stored-coefficient resident tensor kernel
	// ("TensorC" of Table I, restructured for cache-blocked smoothing):
	// the combined metric+coefficient tensor is precomputed at Setup, so
	// the apply needs no coordinate gather or Jacobian inversion and its
	// element data can stay cache-resident across blocked smoother
	// sweeps. Flag name: "mfc".
	TensorC
	// TensorF32 is TensorC with float32 stored coefficients and float32
	// element arithmetic (global vectors and scatter stay float64). The
	// realized matrix is a single-precision perturbation of the f64 one,
	// so this kind is for preconditioner interiors only — a flexible
	// outer Krylov method absorbs the perturbation. Flag name: "mf32".
	TensorF32
	// AssembledF32 rediscretizes into CSR, stores the values in float32
	// and applies with float64 row accumulation; the float64 matrix
	// remains available through CSR() for coarse-solver handoff. Like
	// TensorF32, preconditioner use only. Flag name: "asm32".
	AssembledF32
)

// String returns the canonical flag name of the kind.
func (k Kind) String() string {
	switch k {
	case Tensor:
		return "mf"
	case MFRef:
		return "mfref"
	case Assembled:
		return "asm"
	case Galerkin:
		return "galerkin"
	case Auto:
		return "auto"
	case TensorC:
		return "mfc"
	case TensorF32:
		return "mf32"
	case AssembledF32:
		return "asm32"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses a -op flag value (auto|mf|mfc|mf32|mfref|asm|asm32|
// galerkin, plus the Table-I aliases tensor/tens, ref, asmb/assembled,
// rap).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "mf", "tensor", "tens":
		return Tensor, nil
	case "mfref", "ref":
		return MFRef, nil
	case "asm", "asmb", "assembled":
		return Assembled, nil
	case "galerkin", "rap":
		return Galerkin, nil
	case "auto":
		return Auto, nil
	case "mfc", "tensorc", "resident":
		return TensorC, nil
	case "mf32", "tensorf32":
		return TensorF32, nil
	case "asm32", "assembledf32":
		return AssembledF32, nil
	}
	return 0, fmt.Errorf("op: unknown kind %q (want auto|mf|mfc|mf32|mfref|asm|asm32|galerkin)", s)
}

// Precision selects the arithmetic width of a preconditioner's operator
// stack. F64 is the default (today's behaviour); F32 swaps matrix-free
// levels to TensorF32 and assembled levels to AssembledF32, halving the
// smoother's memory traffic while outer flexible Krylov iterations stay
// double precision.
type Precision int

const (
	F64 Precision = iota
	F32
)

// String returns the canonical flag name of the precision.
func (p Precision) String() string {
	if p == F32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision parses a -precision flag value (f64|f32, plus the
// aliases double/single and 64/32).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "double", "64", "fp64":
		return F64, nil
	case "f32", "single", "32", "fp32":
		return F32, nil
	}
	return 0, fmt.Errorf("op: unknown precision %q (want f64|f32)", s)
}

// Cost is a representation's absolute cost metadata (whole operator, not
// per element): the one-time setup work, the per-application work, and
// the resident memory an assembled form occupies.
type Cost struct {
	SetupFlops, SetupBytes float64
	ApplyFlops, ApplyBytes float64
	StorageBytes           float64
}

// Operator is the unified viscous-block operator: every representation
// applies the symmetric-Dirichlet-eliminated operator y = A·x, exposes
// its diagonal (for Jacobi/Chebyshev smoothing), its cost metadata, and
// — when one exists — its assembled CSR form for coarse-solver handoff
// (GAMG, block-Jacobi, ASM all consume a matrix).
//
// Representations that can evaluate residuals of boundary-valued states
// additionally implement fem.ResidualOperator (ApplyFreeRows); assembled
// forms satisfy it through an embedded matrix-free twin, mirroring
// pTatin3D's always-matrix-free residuals.
type Operator interface {
	N() int
	Apply(x, y la.Vec)
	// Setup performs the representation's one-time construction
	// (assembly, Galerkin triple product, stored-tensor precomputation).
	// It is idempotent.
	Setup() error
	// Diag writes the operator diagonal (unit entries on constrained
	// rows, never zero) into d.
	Diag(d la.Vec)
	Cost() Cost
	Kind() Kind
	// CSR returns the assembled matrix, or nil for matrix-free
	// representations.
	CSR() *la.CSR
}

// Env is the context a backend is built in. Prob is the level's
// discretization; FineCSR/Prolong connect a level to the next-finer one
// (they are closures so this package needs no dependency on internal/mg):
// FineCSR returns the finer level's assembled matrix (nil if that level
// is matrix-free) and Prolong the prolongation from this level to the
// finer one as CSR. Both are nil outside a hierarchy.
type Env struct {
	Prob    *fem.Problem
	Workers int
	// Level / Levels locate the operator in a multigrid hierarchy
	// (Level 0 is finest); informational, used for reporting.
	Level, Levels int
	FineCSR       func() *la.CSR
	Prolong       func() *la.CSR
	// Policy tunes Auto; nil selects DefaultPolicy.
	Policy *Policy
	// Telemetry, when non-nil, receives selection decisions and measured
	// throughputs under a "select" child scope.
	Telemetry *telemetry.Scope
}

// Builder constructs one representation in an environment.
type Builder func(Env) (Operator, error)

var registry = map[Kind]Builder{}

// Register installs a builder for a kind (called by the backends at init;
// exported so external packages can plug in additional representations).
func Register(k Kind, b Builder) { registry[k] = b }

// New builds the representation k for env. The returned operator is not
// yet set up; call Setup before (or let the first Apply trigger) use.
func New(k Kind, env Env) (Operator, error) {
	if env.Prob == nil {
		return nil, fmt.Errorf("op: nil problem")
	}
	if env.Workers <= 0 {
		env.Workers = env.Prob.Workers
	}
	if env.Workers <= 0 {
		env.Workers = 1
	}
	b, ok := registry[k]
	if !ok {
		return nil, fmt.Errorf("op: no builder registered for kind %v", k)
	}
	return b(env)
}

// DefaultLevelKinds returns the per-level representation layout for a
// hierarchy of the given depth (index 0 = finest): the requested fine
// kind, then the paper's production coarse layout — rediscretized CSR on
// the first coarse level and Galerkin products below it (the finest
// level is usually matrix-free, so the first coarse level cannot be a
// Galerkin product of it). galerkinAll selects the GMG-ii variant where
// every coarse operator is a Galerkin product (requires an assembled
// fine level). A fine kind of Auto makes every level Auto — the selector
// decides each level independently.
func DefaultLevelKinds(levels int, fine Kind, galerkinAll bool) []Kind {
	kinds := make([]Kind, levels)
	kinds[0] = fine
	for l := 1; l < levels; l++ {
		switch {
		case fine == Auto:
			kinds[l] = Auto
		case galerkinAll:
			kinds[l] = Galerkin
		case l == 1:
			kinds[l] = Assembled
		default:
			kinds[l] = Galerkin
		}
	}
	return kinds
}
