package op

import (
	"fmt"
	"time"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/perfmodel"
)

func init() {
	Register(Tensor, newTensorOp)
	Register(MFRef, newMFRefOp)
	Register(Assembled, newAsmOp)
	Register(Galerkin, newGalerkinOp)
	Register(Auto, newAuto)
}

// reproCounts looks up this implementation's analytic per-element counts
// by Table-I name.
func reproCounts(name string) perfmodel.OpCounts {
	for _, c := range perfmodel.ReproCounts() {
		if c.Name == name {
			return c
		}
	}
	return perfmodel.OpCounts{Name: name}
}

// mfCost scales per-element apply counts to the whole mesh and adds the
// slab-scatter boundary merge traffic (overlap buffers for slab-shared
// nodes); matrix-free kernels have no setup work and no assembled storage.
func mfCost(name string, p *fem.Problem) Cost {
	c := reproCounts(name)
	nel := p.DA.NElements()
	_, shared, _ := p.SlabStats()
	return Cost{
		ApplyFlops: c.Flops * float64(nel),
		ApplyBytes: c.BytesPessimal*float64(nel) + perfmodel.SlabMergeBytes(shared),
	}
}

// asmCost combines the assembly setup estimate with the CSR apply cost.
// When the matrix exists the apply cost uses the true nonzero count
// (2 flops and 16 bytes per stored value+index); beforehand it falls
// back to the analytic ~4608 nnz/element estimate.
func asmCost(nel int, a *la.CSR) Cost {
	setup := perfmodel.AssemblySetupCounts()
	c := Cost{
		SetupFlops: setup.Flops * float64(nel),
		SetupBytes: setup.BytesPessimal * float64(nel),
	}
	if a != nil {
		nnz := float64(len(a.Val))
		c.ApplyFlops = 2 * nnz
		c.ApplyBytes = 16*nnz + 24*float64(a.NRows)
		c.StorageBytes = 16*nnz + 8*float64(a.NRows+1)
	} else {
		est := reproCounts("Assembled")
		c.ApplyFlops = est.Flops * float64(nel)
		c.ApplyBytes = est.BytesPessimal * float64(nel)
		c.StorageBytes = est.BytesPessimal * float64(nel)
	}
	return c
}

// csrDiag extracts the diagonal of an assembled operator, patching the
// zero entries structurally-empty rows would otherwise hand the Jacobi
// smoother.
func csrDiag(a *la.CSR, d la.Vec) {
	a.Diag(d)
	for i, v := range d {
		if v == 0 {
			d[i] = 1
		}
	}
}

// fixConstrainedDiag sets a unit diagonal on constrained rows that the
// Galerkin triple product left empty (Dirichlet-constrained dofs are
// dropped by the transfer operators). Moved here from internal/mg.
func fixConstrainedDiag(a *la.CSR, mask []bool) {
	missing := false
	for r := 0; r < a.NRows; r++ {
		if !mask[r] {
			continue
		}
		found := false
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if a.ColInd[k] == r {
				a.Val[k] = 1
				found = true
				break
			}
		}
		if !found {
			missing = true
			break
		}
	}
	if !missing {
		return
	}
	b := la.NewBuilder(a.NRows, a.NCols)
	for r := 0; r < a.NRows; r++ {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			b.Add(r, a.ColInd[k], a.Val[k])
		}
		if mask[r] {
			b.Set(r, r, 1)
		}
	}
	*a = *b.ToCSR()
}

// tensorOp wraps the tensor-product matrix-free kernel.
type tensorOp struct {
	k *fem.TensorOp
	p *fem.Problem
}

func newTensorOp(env Env) (Operator, error) {
	return &tensorOp{k: fem.NewTensor(env.Prob), p: env.Prob}, nil
}

func (o *tensorOp) N() int                    { return o.k.N() }
func (o *tensorOp) Apply(x, y la.Vec)         { o.k.Apply(x, y) }
func (o *tensorOp) ApplyFreeRows(u, y la.Vec) { o.k.ApplyFreeRows(u, y) }
func (o *tensorOp) Setup() error              { return nil }
func (o *tensorOp) Diag(d la.Vec)             { fem.Diagonal(o.p, d) }
func (o *tensorOp) Cost() Cost                { return mfCost("Tensor", o.p) }
func (o *tensorOp) Kind() Kind                { return Tensor }
func (o *tensorOp) CSR() *la.CSR              { return nil }

// mfrefOp wraps the reference (non-tensor) matrix-free kernel.
type mfrefOp struct {
	k *fem.MFOp
	p *fem.Problem
}

func newMFRefOp(env Env) (Operator, error) {
	return &mfrefOp{k: fem.NewMF(env.Prob), p: env.Prob}, nil
}

func (o *mfrefOp) N() int                    { return o.k.N() }
func (o *mfrefOp) Apply(x, y la.Vec)         { o.k.Apply(x, y) }
func (o *mfrefOp) ApplyFreeRows(u, y la.Vec) { o.k.ApplyFreeRows(u, y) }
func (o *mfrefOp) Setup() error              { return nil }
func (o *mfrefOp) Diag(d la.Vec)             { fem.Diagonal(o.p, d) }
func (o *mfrefOp) Cost() Cost                { return mfCost("Matrix-free", o.p) }
func (o *mfrefOp) Kind() Kind                { return MFRef }
func (o *mfrefOp) CSR() *la.CSR              { return nil }

// asmOp rediscretizes the operator into CSR and applies it by the shared
// row-parallel SpMV. A tensor matrix-free twin provides ApplyFreeRows:
// the assembled matrix drops constrained columns, so it cannot evaluate
// residuals of boundary-valued states.
type asmOp struct {
	p       *fem.Problem
	workers int
	mf      *fem.TensorOp
	va      *fem.ViscousAssembly
	a       *la.CSR
	setupT  time.Duration
}

func newAsmOp(env Env) (Operator, error) {
	return &asmOp{p: env.Prob, workers: env.Workers, mf: fem.NewTensor(env.Prob)}, nil
}

func (o *asmOp) N() int { return o.p.DA.NVelDOF() }

func (o *asmOp) Setup() error {
	if o.a == nil {
		start := time.Now()
		o.va = fem.NewViscousAssembly(o.p)
		o.va.Refresh()
		o.a = o.va.A
		o.setupT = time.Since(start)
	}
	return nil
}

// Refresh recomputes the CSR values in place from the problem's current
// coefficients, reusing the cached sparsity.
func (o *asmOp) Refresh() error {
	if o.a == nil {
		return o.Setup()
	}
	start := time.Now()
	o.va.Refresh()
	o.setupT = time.Since(start)
	return nil
}

func (o *asmOp) Apply(x, y la.Vec) {
	if o.a == nil {
		o.Setup()
	}
	o.a.MulVecPar(x, y, o.workers)
}

func (o *asmOp) ApplyFreeRows(u, y la.Vec) { o.mf.ApplyFreeRows(u, y) }

func (o *asmOp) Diag(d la.Vec) {
	if o.a == nil {
		o.Setup()
	}
	csrDiag(o.a, d)
}

func (o *asmOp) Cost() Cost   { return asmCost(o.p.DA.NElements(), o.a) }
func (o *asmOp) Kind() Kind   { return Assembled }
func (o *asmOp) CSR() *la.CSR { o.Setup(); return o.a }

// SetupTime reports the measured assembly wall time (zero before Setup).
func (o *asmOp) SetupTime() time.Duration { return o.setupT }

// galerkinOp builds the CSR operator as the Galerkin triple product
// Pᵀ·A_fine·P of the next-finer level's assembled matrix. The symbolic
// structure of the product (and of the constrained-diagonal augmentation)
// depends only on the sparsity patterns, so it is cached at Setup and the
// values are replayed in place by Refresh — bit-identical to a rebuild.
type galerkinOp struct {
	env    Env
	a      *la.CSR
	setupT time.Duration

	// Cached triple-product state for the in-place numeric refresh.
	fine     *la.CSR // finer-level matrix the symbolics were derived from
	p, pt    *la.CSR // prolongation and its transpose (values constant)
	ap, raw  *la.CSR // A_fine·P and Pᵀ·(A_fine·P) in fixed sparsity
	rebuilt  bool    // augmentation rebuilt the pattern (Builder path)
	rawToAug []int   // raw entry k → position in a.Val (-1 = dropped zero)
	augDiag  []int   // positions in a.Val of constrained-row unit diagonals
}

func newGalerkinOp(env Env) (Operator, error) {
	if env.FineCSR == nil || env.Prolong == nil {
		return nil, fmt.Errorf("op: Galerkin requires hierarchy context (FineCSR/Prolong)")
	}
	return &galerkinOp{env: env}, nil
}

func (o *galerkinOp) N() int { return o.env.Prob.DA.NVelDOF() }

func (o *galerkinOp) Setup() error {
	if o.a != nil {
		return nil
	}
	fine := o.env.FineCSR()
	if fine == nil {
		return fmt.Errorf("op: Galerkin requires an assembled finer level")
	}
	start := time.Now()
	o.build(fine)
	o.setupT = time.Since(start)
	return nil
}

// build runs the full symbolic+numeric construction from fine.
func (o *galerkinOp) build(fine *la.CSR) {
	o.fine = fine
	o.p = o.env.Prolong()
	o.pt = o.p.Transpose()
	o.ap = la.MatMul(fine, o.p)
	o.raw = la.MatMul(o.pt, o.ap)
	o.augment()
}

// Refresh replays the triple product numerically into the cached
// sparsity. The scatter order matches MatMul exactly (la.MatMulNumeric),
// so the values are bit-for-bit what a from-scratch Setup would produce.
func (o *galerkinOp) Refresh() error {
	if o.a == nil {
		return o.Setup()
	}
	fine := o.env.FineCSR()
	if fine == nil {
		return fmt.Errorf("op: Galerkin requires an assembled finer level")
	}
	start := time.Now()
	if fine != o.fine {
		// The finer level handed over a different matrix object (its own
		// pattern changed); the cached symbolics no longer apply.
		o.build(fine)
		o.setupT = time.Since(start)
		return nil
	}
	la.MatMulNumeric(fine, o.p, o.ap)
	la.MatMulNumeric(o.pt, o.ap, o.raw)
	if o.rebuilt && !o.zeroPatternUnchanged() {
		// A structural zero changed state; a cold augmentation would
		// produce a different pattern, so redo it (rare).
		o.augment()
	} else if o.rebuilt {
		for k, pos := range o.rawToAug {
			if pos >= 0 {
				o.a.Val[pos] = o.raw.Val[k]
			}
		}
		for _, pos := range o.augDiag {
			o.a.Val[pos] = 1
		}
	} else {
		copy(o.a.Val, o.raw.Val)
		for _, pos := range o.augDiag {
			o.a.Val[pos] = 1
		}
	}
	o.setupT = time.Since(start)
	return nil
}

// augment derives the served matrix from raw with the same semantics as
// fixConstrainedDiag — unit diagonal on constrained rows, via the Builder
// rebuild when a constrained diagonal is structurally missing — while
// recording the raw→augmented value mapping for later refreshes.
func (o *galerkinOp) augment() {
	mask := o.env.Prob.BC.Mask
	raw := o.raw
	missing := false
	for r := 0; r < raw.NRows && !missing; r++ {
		if !mask[r] {
			continue
		}
		found := false
		for k := raw.RowPtr[r]; k < raw.RowPtr[r+1]; k++ {
			if raw.ColInd[k] == r {
				found = true
				break
			}
		}
		missing = !found
	}
	o.augDiag = o.augDiag[:0]
	if !missing {
		// In-place path: pattern unchanged, identity value mapping.
		o.a = raw.Clone()
		o.rebuilt = false
		o.rawToAug = nil
		for r := 0; r < raw.NRows; r++ {
			if !mask[r] {
				continue
			}
			for k := raw.RowPtr[r]; k < raw.RowPtr[r+1]; k++ {
				if raw.ColInd[k] == r {
					o.a.Val[k] = 1
					o.augDiag = append(o.augDiag, k)
					break
				}
			}
		}
		return
	}
	// Rebuild path: mirror fixConstrainedDiag's Builder semantics — only
	// nonzero raw entries survive, constrained rows gain a unit diagonal.
	b := la.NewBuilder(raw.NRows, raw.NCols)
	for r := 0; r < raw.NRows; r++ {
		for k := raw.RowPtr[r]; k < raw.RowPtr[r+1]; k++ {
			b.Add(r, raw.ColInd[k], raw.Val[k])
		}
		if mask[r] {
			b.Set(r, r, 1)
		}
	}
	a := b.ToCSR()
	o.a = a
	o.rebuilt = true
	// Per-row sorted merge gives each raw entry its slot in a (or -1 for
	// entries the zero-skipping Add dropped), and each constrained row its
	// diagonal position.
	o.rawToAug = make([]int, raw.NNZ())
	for r := 0; r < raw.NRows; r++ {
		ka := a.RowPtr[r]
		for k := raw.RowPtr[r]; k < raw.RowPtr[r+1]; k++ {
			j := raw.ColInd[k]
			for ka < a.RowPtr[r+1] && a.ColInd[ka] < j {
				ka++
			}
			if ka < a.RowPtr[r+1] && a.ColInd[ka] == j {
				o.rawToAug[k] = ka
			} else {
				o.rawToAug[k] = -1
			}
		}
		if mask[r] {
			for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
				if a.ColInd[k] == r {
					o.augDiag = append(o.augDiag, k)
					break
				}
			}
		}
	}
}

// zeroPatternUnchanged reports whether the refreshed raw values would
// yield the same augmented pattern as the cached one: every dropped entry
// is still exactly zero and every kept entry is still nonzero (the
// constrained diagonals are kept regardless of value).
func (o *galerkinOp) zeroPatternUnchanged() bool {
	mask := o.env.Prob.BC.Mask
	raw := o.raw
	for r := 0; r < raw.NRows; r++ {
		for k := raw.RowPtr[r]; k < raw.RowPtr[r+1]; k++ {
			z := raw.Val[k] == 0
			if o.rawToAug[k] < 0 {
				if !z {
					return false
				}
			} else if z && !(mask[r] && raw.ColInd[k] == r) {
				return false
			}
		}
	}
	return true
}

func (o *galerkinOp) Apply(x, y la.Vec) {
	if o.a == nil {
		if err := o.Setup(); err != nil {
			panic(err)
		}
	}
	o.a.MulVecPar(x, y, o.env.Workers)
}

func (o *galerkinOp) Diag(d la.Vec) {
	if o.a == nil {
		if err := o.Setup(); err != nil {
			panic(err)
		}
	}
	csrDiag(o.a, d)
}

func (o *galerkinOp) Cost() Cost {
	c := asmCost(o.env.Prob.DA.NElements(), o.a)
	// The triple product streams the finer matrix twice (A·P, then
	// Pᵀ·(A·P)); charge it as two assembly-scale passes.
	c.SetupFlops *= 2
	c.SetupBytes *= 2
	return c
}

func (o *galerkinOp) Kind() Kind   { return Galerkin }
func (o *galerkinOp) CSR() *la.CSR { _ = o.Setup(); return o.a }

// SetupTime reports the measured triple-product wall time.
func (o *galerkinOp) SetupTime() time.Duration { return o.setupT }
