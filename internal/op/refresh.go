package op

// Refresher is implemented by operator representations that cache numeric
// content derived from the problem's coefficients (assembled CSR values,
// Galerkin triple products, resident coefficient tensors). Refresh
// re-derives the values from the problem's *current* coefficients and
// coordinates into the existing symbolic structure — bit-identical to
// tearing the operator down and rebuilding it, at a fraction of the cost.
// Purely matrix-free representations read the coefficients live and need
// no refresh; they simply do not implement the interface.
type Refresher interface {
	Refresh() error
}

// Refresh re-derives o's numeric content if it caches any; live
// (matrix-free) operators are a no-op. Accepts any so callers holding a
// narrower operator interface (fem.Operator) can refresh through it.
func Refresh(o any) error {
	if r, ok := o.(Refresher); ok {
		return r.Refresh()
	}
	return nil
}
