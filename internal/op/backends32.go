package op

import (
	"time"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/perfmodel"
)

func init() {
	Register(TensorC, func(env Env) (Operator, error) { return newResidentOp(env, false), nil })
	Register(TensorF32, func(env Env) (Operator, error) { return newResidentOp(env, true), nil })
	Register(AssembledF32, newAsm32Op)
}

// ResidentBacked is implemented by operators whose apply is backed by a
// fem.Resident. The cache-blocked smoother and the fused distributed halo
// path need the underlying resident machinery (per-block applies, stored
// coefficients), not just the Operator surface.
type ResidentBacked interface {
	Resident() *fem.Resident
}

// ResidentOf unwraps an operator to its fem.Resident backing — following
// an Auto commitment — or returns nil for non-resident representations.
func ResidentOf(o Operator) *fem.Resident {
	switch v := o.(type) {
	case ResidentBacked:
		return v.Resident()
	case *AutoOp:
		if v.committed != nil {
			return ResidentOf(v.committed)
		}
	}
	return nil
}

// residentCost scales the stored-coefficient per-element counts to the
// whole mesh, adds the slab boundary-merge traffic, and charges the
// coefficient precompute (a coordinate-streaming pass that writes the
// 15-float-per-qp tensor stream) as setup.
func residentCost(p *fem.Problem, f32 bool) Cost {
	c := perfmodel.ResidentCounts(f32)
	nel := float64(p.DA.NElements())
	_, shared, _ := p.SlabStats()
	coordB := 81.0 * 8
	coefW := 15.0 * 27 * 8
	if f32 {
		coefW = 15 * 27 * 4
	}
	return Cost{
		SetupFlops:   2000 * nel,
		SetupBytes:   (coordB + coefW) * nel,
		ApplyFlops:   c.Flops * nel,
		ApplyBytes:   c.BytesPessimal*nel + perfmodel.SlabMergeBytes(shared),
		StorageBytes: coefW * nel,
	}
}

// residentOp wraps the stored-coefficient resident kernel at either
// precision: TensorC (float64) and TensorF32 (float32 coefficients and
// element arithmetic). Like asmOp, the one-time coefficient precompute is
// deferred to Setup. A tensor matrix-free twin provides ApplyFreeRows —
// residual evaluation stays full precision regardless of the
// preconditioner's width, as in the paper's matrix-free residuals.
type residentOp struct {
	p      *fem.Problem
	f32    bool
	mf     *fem.TensorOp
	r      *fem.Resident
	setupT time.Duration
}

func newResidentOp(env Env, f32 bool) *residentOp {
	return &residentOp{p: env.Prob, f32: f32, mf: fem.NewTensor(env.Prob)}
}

func (o *residentOp) N() int { return o.p.DA.NVelDOF() }

func (o *residentOp) Setup() error {
	if o.r == nil {
		start := time.Now()
		o.r = fem.NewResident(o.p, o.f32)
		o.setupT = time.Since(start)
	}
	return nil
}

func (o *residentOp) Apply(x, y la.Vec) {
	if o.r == nil {
		o.Setup()
	}
	o.r.Apply(x, y)
}

// Refresh recomputes the stored coefficient tensors from the problem's
// current coefficients and coordinates (Resident.Setup re-runs in place).
func (o *residentOp) Refresh() error {
	if o.r == nil {
		return o.Setup()
	}
	start := time.Now()
	o.r.Setup()
	o.setupT = time.Since(start)
	return nil
}

func (o *residentOp) ApplyFreeRows(u, y la.Vec) { o.mf.ApplyFreeRows(u, y) }
func (o *residentOp) Diag(d la.Vec)             { fem.Diagonal(o.p, d) }
func (o *residentOp) Cost() Cost                { return residentCost(o.p, o.f32) }

func (o *residentOp) Kind() Kind {
	if o.f32 {
		return TensorF32
	}
	return TensorC
}

func (o *residentOp) CSR() *la.CSR { return nil }

// Resident exposes the backing kernel (nil before Setup is forced).
func (o *residentOp) Resident() *fem.Resident {
	o.Setup()
	return o.r
}

// SetupTime reports the measured coefficient-precompute wall time.
func (o *residentOp) SetupTime() time.Duration { return o.setupT }

// asm32Cost is asmCost with the single-precision value stream: 12 bytes
// per stored value+index (4-byte value, 8-byte column index) instead of
// 16. The float64 matrix is retained for coarse-solver handoff, so it
// stays in the storage footprint.
func asm32Cost(nel int, a *la.CSR32, a64 *la.CSR) Cost {
	setup := perfmodel.AssemblySetupCounts()
	c := Cost{
		SetupFlops: setup.Flops * float64(nel),
		SetupBytes: setup.BytesPessimal * float64(nel),
	}
	if a != nil {
		nnz := float64(a.NNZ())
		c.ApplyFlops = 2 * nnz
		c.ApplyBytes = 12*nnz + 24*float64(a.NRows)
		c.StorageBytes = 12*nnz + 8*float64(a.NRows+1)
		if a64 != nil {
			c.StorageBytes += 8 * float64(len(a64.Val))
		}
	} else {
		est := reproCounts("Assembled")
		c.ApplyFlops = est.Flops * float64(nel)
		c.ApplyBytes = est.BytesPessimal * float64(nel) * 12.0 / 16.0
		c.StorageBytes = est.BytesPessimal * float64(nel)
	}
	return c
}

// asm32Op rediscretizes into CSR and applies the float32 value stream
// with float64 row accumulation. The float64 matrix is kept: CSR() hands
// it to coarse solvers and Galerkin products, which must not compound
// single-precision rounding through triple products.
type asm32Op struct {
	p       *fem.Problem
	workers int
	mf      *fem.TensorOp
	va      *fem.ViscousAssembly
	a64     *la.CSR
	a32     *la.CSR32
	setupT  time.Duration
}

func newAsm32Op(env Env) (Operator, error) {
	return &asm32Op{p: env.Prob, workers: env.Workers, mf: fem.NewTensor(env.Prob)}, nil
}

func (o *asm32Op) N() int { return o.p.DA.NVelDOF() }

func (o *asm32Op) Setup() error {
	if o.a32 == nil {
		start := time.Now()
		o.va = fem.NewViscousAssembly(o.p)
		o.va.Refresh()
		o.a64 = o.va.A
		o.a32 = la.NewCSR32(o.a64)
		o.setupT = time.Since(start)
	}
	return nil
}

// Refresh recomputes the float64 values in the cached sparsity and
// re-rounds them into the aliased float32 value stream.
func (o *asm32Op) Refresh() error {
	if o.a32 == nil {
		return o.Setup()
	}
	start := time.Now()
	o.va.Refresh()
	for i, v := range o.a64.Val {
		o.a32.Val32[i] = float32(v)
	}
	o.setupT = time.Since(start)
	return nil
}

func (o *asm32Op) Apply(x, y la.Vec) {
	if o.a32 == nil {
		o.Setup()
	}
	o.a32.MulVecPar(x, y, o.workers)
}

func (o *asm32Op) ApplyFreeRows(u, y la.Vec) { o.mf.ApplyFreeRows(u, y) }

func (o *asm32Op) Diag(d la.Vec) {
	if o.a64 == nil {
		o.Setup()
	}
	csrDiag(o.a64, d)
}

func (o *asm32Op) Cost() Cost   { return asm32Cost(o.p.DA.NElements(), o.a32, o.a64) }
func (o *asm32Op) Kind() Kind   { return AssembledF32 }
func (o *asm32Op) CSR() *la.CSR { o.Setup(); return o.a64 }

// SetupTime reports the measured assembly+conversion wall time.
func (o *asm32Op) SetupTime() time.Duration { return o.setupT }
