package op

import (
	"fmt"
	"sync"
	"time"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/perfmodel"
)

// Policy tunes the Auto selector.
type Policy struct {
	// TrialApplies is how many real applications of each surviving
	// candidate are timed before committing (default 3). The multigrid
	// builder's λmax power iteration performs ~10 applies per level at
	// construction, so selection normally completes before the first
	// V-cycle.
	TrialApplies int
	// ExpectedApplies is the amortization horizon: a representation's
	// one-time setup cost is charged as setup/ExpectedApplies per apply
	// (default 200 — a few outer Krylov solves' worth of smoothing).
	ExpectedApplies int
	// SkipFactor prunes candidates whose roofline-predicted amortized
	// time exceeds SkipFactor × the best prediction; they are reported
	// as skipped and never built (default 4).
	SkipFactor float64
	// NeedCSR restricts the candidates to assembled representations.
	// The multigrid builder sets it on the coarsest level: the coarse
	// solvers (GAMG, block-Jacobi/LU, ASM) consume a matrix, so a
	// matrix-free winner would be useless there regardless of its apply
	// throughput — the same constraint that drives the paper's
	// "assembled on coarse levels" layout.
	NeedCSR bool
	// AllowF32 admits the reduced-precision representations (TensorF32,
	// AssembledF32) to the candidate field. Off by default: an f32 winner
	// realizes a single-precision perturbation of the matrix, acceptable
	// only inside a flexible outer Krylov method's preconditioner, so the
	// caller must opt in (the multigrid builder does when the hierarchy
	// runs at op.F32).
	AllowF32 bool
	// Machine overrides the roofline machine model; nil uses the
	// process-wide perfmodel.CalibratedMachine().
	Machine *perfmodel.Machine
	// DisableCache bypasses the process-global decision cache (tests).
	DisableCache bool
}

// DefaultPolicy returns the production selector tuning.
func DefaultPolicy() Policy {
	return Policy{TrialApplies: 3, ExpectedApplies: 200, SkipFactor: 4}
}

func (p *Policy) setDefaults() {
	d := DefaultPolicy()
	if p.TrialApplies <= 0 {
		p.TrialApplies = d.TrialApplies
	}
	if p.ExpectedApplies <= 0 {
		p.ExpectedApplies = d.ExpectedApplies
	}
	if p.SkipFactor <= 0 {
		p.SkipFactor = d.SkipFactor
	}
}

// CandidateReport is one representation's showing in a selection.
type CandidateReport struct {
	Kind Kind
	// PredictedApplySeconds is the roofline per-apply estimate;
	// PredictedAmortizedSeconds adds setup/ExpectedApplies.
	PredictedApplySeconds     float64
	PredictedAmortizedSeconds float64
	// Measured values are zero for skipped candidates.
	MeasuredApplySeconds float64
	MeasuredSetupSeconds float64
	MDoFPerSec           float64
	Trials               int
	Skipped              bool
}

// Decision records one level's committed selection.
type Decision struct {
	Level, N   int
	Chosen     Kind
	Forced     bool // NeedCSR restricted the field
	FromCache  bool
	Committed  bool
	Candidates []CandidateReport
}

// decisionCache remembers committed choices keyed by problem shape, so
// the per-relinearization solver rebuilds of a nonlinear solve do not
// re-trial identical levels (coefficients change between rebuilds; level
// shapes do not).
var (
	decisionMu    sync.Mutex
	decisionCache = map[string]Kind{}
)

// ResetDecisionCache clears the process-global selection cache (tests).
func ResetDecisionCache() {
	decisionMu.Lock()
	decisionCache = map[string]Kind{}
	decisionMu.Unlock()
}

func cacheLookup(key string) (Kind, bool) {
	decisionMu.Lock()
	defer decisionMu.Unlock()
	k, ok := decisionCache[key]
	return k, ok
}

func cacheStore(key string, k Kind) {
	decisionMu.Lock()
	decisionCache[key] = k
	decisionMu.Unlock()
}

// autoCand is one candidate's trial state.
type autoCand struct {
	rep   CandidateReport
	op    Operator
	built bool
}

// AutoOp selects a representation at runtime. Setup ranks the candidates
// on the calibrated roofline model; the first real applies then time
// each surviving candidate in ranked order (every trial apply computes
// the correct product — the candidates realize the same matrix), and the
// winner by amortized measured cost is committed. With NeedCSR the field
// is restricted to assembled representations and committed at Setup;
// measured throughput of the committed operator is still recorded over
// its first applies.
type AutoOp struct {
	env Env
	pol Policy
	mf  *fem.TensorOp // residual twin; also the pre-commit diagonal source

	cands       []*autoCand
	next        int
	committed   Operator
	measureLeft int // post-commit throughput probes (forced/cached paths)
	dec         Decision
}

func newAuto(env Env) (Operator, error) {
	pol := DefaultPolicy()
	if env.Policy != nil {
		pol = *env.Policy
		pol.setDefaults()
	}
	return &AutoOp{env: env, pol: pol, mf: fem.NewTensor(env.Prob)}, nil
}

func (o *AutoOp) N() int                    { return o.env.Prob.DA.NVelDOF() }
func (o *AutoOp) Kind() Kind                { return Auto }
func (o *AutoOp) ApplyFreeRows(u, y la.Vec) { o.mf.ApplyFreeRows(u, y) }

func (o *AutoOp) cacheKey() string {
	da := o.env.Prob.DA
	// AllowF32 must be part of the key: the same level shape selects over
	// a different candidate field per precision, and replaying a cached
	// f32 winner into an f64 hierarchy (or vice versa) would silently
	// change the preconditioner's arithmetic.
	return fmt.Sprintf("el=%dx%dx%d;w=%d;csr=%v;f32=%v",
		da.Mx, da.My, da.Mz, o.env.Workers, o.pol.NeedCSR, o.pol.AllowF32)
}

// Setup builds the candidate field. It commits immediately on the forced
// (NeedCSR) and cached paths; otherwise commitment happens after the
// trial applies.
func (o *AutoOp) Setup() error {
	if o.committed != nil || o.cands != nil {
		return nil
	}
	o.dec = Decision{Level: o.env.Level, N: o.N()}
	if o.pol.NeedCSR {
		return o.setupForced()
	}
	if !o.pol.DisableCache {
		if k, ok := cacheLookup(o.cacheKey()); ok {
			return o.commitKind(k, true)
		}
	}
	machine := perfmodel.CalibratedMachine()
	if o.pol.Machine != nil {
		machine = *o.pol.Machine
	}
	nel := o.env.Prob.DA.NElements()
	// Candidates share the level's matrix, so trial applies are
	// interchangeable and the matrix-free diagonal serves all of them.
	// (Galerkin realizes a *different* coarse matrix — it competes only
	// on the forced coarse path, never in the timed field. The f32
	// candidates realize a single-precision perturbation of the matrix;
	// they enter the field only when the caller opted in via AllowF32,
	// i.e. declared the operator a preconditioner interior.)
	kinds := []Kind{Tensor, TensorC, MFRef, Assembled}
	if o.pol.AllowF32 {
		kinds = append(kinds, TensorF32, AssembledF32)
	}
	exp := float64(o.pol.ExpectedApplies)
	for _, k := range kinds {
		var c Cost
		switch k {
		case Tensor:
			c = mfCost("Tensor", o.env.Prob)
		case TensorC:
			c = residentCost(o.env.Prob, false)
		case TensorF32:
			c = residentCost(o.env.Prob, true)
		case MFRef:
			c = mfCost("Matrix-free", o.env.Prob)
		case Assembled:
			c = asmCost(nel, nil)
		case AssembledF32:
			c = asm32Cost(nel, nil, nil)
		}
		applyPred := rooflineSeconds(machine, c.ApplyFlops, c.ApplyBytes)
		setupPred := rooflineSeconds(machine, c.SetupFlops, c.SetupBytes)
		o.cands = append(o.cands, &autoCand{rep: CandidateReport{
			Kind:                      k,
			PredictedApplySeconds:     applyPred,
			PredictedAmortizedSeconds: applyPred + setupPred/exp,
		}})
	}
	best := o.cands[0].rep.PredictedAmortizedSeconds
	for _, c := range o.cands[1:] {
		if c.rep.PredictedAmortizedSeconds < best {
			best = c.rep.PredictedAmortizedSeconds
		}
	}
	live := 0
	for _, c := range o.cands {
		if c.rep.PredictedAmortizedSeconds > o.pol.SkipFactor*best {
			c.rep.Skipped = true
		} else {
			live++
		}
	}
	if live == 0 { // unreachable (best always survives); belt and braces
		o.cands[0].rep.Skipped = false
	}
	return nil
}

// rooflineSeconds is the roofline time of an absolute (flops, bytes)
// workload: max(flop time, memory time).
func rooflineSeconds(m perfmodel.Machine, flops, bytes float64) float64 {
	return m.RooflineTime(perfmodel.OpCounts{Flops: flops, BytesPerfect: bytes, BytesPessimal: bytes}, false)
}

// setupForced handles the NeedCSR path: the coarse-solver handoff
// requires a matrix, so the field is {Galerkin, Assembled}, preferring
// the Galerkin product when the finer level is assembled (it reuses that
// matrix instead of rediscretizing).
func (o *AutoOp) setupForced() error {
	o.dec.Forced = true
	if o.env.FineCSR != nil && o.env.Prolong != nil && o.env.FineCSR() != nil {
		g, err := newGalerkinOp(o.env)
		if err == nil {
			if err = g.Setup(); err == nil {
				gop := g.(*galerkinOp)
				o.recordForced(gop, gop.setupT)
				return nil
			}
		}
	}
	a, err := newAsmOp(o.env)
	if err != nil {
		return err
	}
	if err := a.Setup(); err != nil {
		return err
	}
	aop := a.(*asmOp)
	o.recordForced(aop, aop.setupT)
	return nil
}

func (o *AutoOp) recordForced(chosen Operator, setup time.Duration) {
	o.committed = chosen
	o.measureLeft = o.pol.TrialApplies
	o.dec.Chosen = chosen.Kind()
	o.dec.Committed = true
	o.dec.Candidates = []CandidateReport{{
		Kind:                 chosen.Kind(),
		MeasuredSetupSeconds: setup.Seconds(),
	}}
	o.publish()
}

// commitKind builds and commits a specific representation (cache hit).
func (o *AutoOp) commitKind(k Kind, fromCache bool) error {
	cop, err := New(k, o.env)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := cop.Setup(); err != nil {
		return err
	}
	o.committed = cop
	o.measureLeft = o.pol.TrialApplies
	o.dec.Chosen = k
	o.dec.FromCache = fromCache
	o.dec.Committed = true
	o.dec.Candidates = []CandidateReport{{
		Kind:                 k,
		MeasuredSetupSeconds: time.Since(start).Seconds(),
	}}
	o.publish()
	return nil
}

// Apply computes y = A·x. While uncommitted it times candidate applies
// in ranked order; once every surviving candidate has TrialApplies
// measurements the winner is committed.
func (o *AutoOp) Apply(x, y la.Vec) {
	if o.committed != nil {
		if o.measureLeft > 0 {
			start := time.Now()
			o.committed.Apply(x, y)
			o.observeCommitted(time.Since(start).Seconds())
			return
		}
		o.committed.Apply(x, y)
		return
	}
	if o.cands == nil {
		if err := o.Setup(); err != nil {
			panic(err)
		}
		if o.committed != nil {
			o.Apply(x, y)
			return
		}
	}
	c := o.currentCand()
	if !c.built {
		if c.op == nil {
			cop, err := New(c.rep.Kind, o.env)
			if err != nil {
				panic(err)
			}
			c.op = cop
		}
		start := time.Now()
		if err := c.op.Setup(); err != nil {
			panic(err)
		}
		c.rep.MeasuredSetupSeconds = time.Since(start).Seconds()
		c.built = true
	}
	start := time.Now()
	c.op.Apply(x, y)
	dt := time.Since(start).Seconds()
	if c.rep.Trials == 0 || dt < c.rep.MeasuredApplySeconds {
		c.rep.MeasuredApplySeconds = dt
	}
	c.rep.Trials++
	if c.rep.Trials >= o.pol.TrialApplies {
		o.next++
		if o.currentCand() == nil {
			o.commitMeasured()
		}
	}
}

// currentCand returns the candidate being trialed, skipping pruned ones;
// nil when all trials are done.
func (o *AutoOp) currentCand() *autoCand {
	for o.next < len(o.cands) {
		if !o.cands[o.next].rep.Skipped {
			return o.cands[o.next]
		}
		o.next++
	}
	return nil
}

// commitMeasured picks the winner by measured amortized cost.
func (o *AutoOp) commitMeasured() {
	exp := float64(o.pol.ExpectedApplies)
	var win *autoCand
	bestCost := 0.0
	for _, c := range o.cands {
		if c.rep.Skipped {
			continue
		}
		cost := c.rep.MeasuredApplySeconds + c.rep.MeasuredSetupSeconds/exp
		if win == nil || cost < bestCost {
			win, bestCost = c, cost
		}
	}
	o.committed = win.op
	o.dec.Chosen = win.rep.Kind
	o.dec.Committed = true
	n := float64(o.N())
	for _, c := range o.cands {
		if !c.rep.Skipped && c.rep.MeasuredApplySeconds > 0 {
			c.rep.MDoFPerSec = n / c.rep.MeasuredApplySeconds / 1e6
		}
		o.dec.Candidates = append(o.dec.Candidates, c.rep)
	}
	if !o.pol.DisableCache {
		cacheStore(o.cacheKey(), win.rep.Kind)
	}
	o.cands, o.next = nil, 0
	o.publish()
}

// observeCommitted records post-commit throughput probes (forced and
// cached paths, where no trial race happened).
func (o *AutoOp) observeCommitted(dt float64) {
	r := &o.dec.Candidates[0]
	if r.Trials == 0 || dt < r.MeasuredApplySeconds {
		r.MeasuredApplySeconds = dt
	}
	r.Trials++
	o.measureLeft--
	if o.measureLeft == 0 {
		r.MDoFPerSec = float64(o.N()) / r.MeasuredApplySeconds / 1e6
		o.publish()
	}
}

// publish mirrors the current decision into telemetry under
// <scope>/select: a chosen_<kind> counter plus per-candidate gauges
// (predicted/measured apply time, setup time, MDoF/s).
func (o *AutoOp) publish() {
	sc := o.env.Telemetry.Child("select")
	if sc == nil {
		return
	}
	d := &o.dec
	sc.Counter("chosen_" + d.Chosen.String()).Inc()
	if d.Forced {
		sc.Counter("forced_csr").Inc()
	}
	if d.FromCache {
		sc.Counter("from_cache").Inc()
	}
	for _, c := range d.Candidates {
		csc := sc.Child(c.Kind.String())
		csc.Gauge("predicted_apply_us").Set(c.PredictedApplySeconds * 1e6)
		csc.Gauge("measured_apply_us").Set(c.MeasuredApplySeconds * 1e6)
		csc.Gauge("setup_ms").Set(c.MeasuredSetupSeconds * 1e3)
		csc.Gauge("mdof_per_s").Set(c.MDoFPerSec)
		if c.Skipped {
			csc.Counter("skipped").Inc()
		}
	}
}

// Diag provides the operator diagonal: matrix-free before commitment
// (every timed candidate realizes the same matrix), the committed
// representation's own diagonal afterwards (a committed Galerkin product
// is a different coarse matrix with a different diagonal).
func (o *AutoOp) Diag(d la.Vec) {
	if o.committed != nil {
		o.committed.Diag(d)
		return
	}
	fem.Diagonal(o.env.Prob, d)
}

// Cost reports the committed representation's cost (zero before
// commitment).
func (o *AutoOp) Cost() Cost {
	if o.committed != nil {
		return o.committed.Cost()
	}
	return Cost{}
}

// CSR force-commits if needed (running any outstanding trials on a
// synthetic vector) and returns the committed representation's matrix —
// nil when a matrix-free representation won.
func (o *AutoOp) CSR() *la.CSR {
	o.ForceCommit()
	if o.committed == nil {
		return nil
	}
	return o.committed.CSR()
}

// ForceCommit completes any outstanding trials immediately using a
// synthetic deterministic vector, so the decision is available before
// real applies happen (coarse-solver construction, reporting).
func (o *AutoOp) ForceCommit() {
	if o.committed != nil {
		return
	}
	if o.cands == nil {
		if err := o.Setup(); err != nil {
			panic(err)
		}
		if o.committed != nil {
			return
		}
	}
	n := o.N()
	x, y := la.NewVec(n), la.NewVec(n)
	for i := range x {
		x[i] = 1 + float64(i%13)/13
	}
	for o.committed == nil {
		o.Apply(x, y)
	}
}

// Refresh forwards to the committed representation, forcing commitment
// first so a refreshed hierarchy never re-runs candidate trials against
// stale cached values.
func (o *AutoOp) Refresh() error {
	o.ForceCommit()
	return Refresh(o.committed)
}

// Committed reports the chosen representation (Auto if undecided).
func (o *AutoOp) Committed() Kind {
	if o.committed == nil {
		return Auto
	}
	return o.committed.Kind()
}

// Decision returns the current selection record.
func (o *AutoOp) Decision() Decision { return o.dec }

// Summary renders the decision as a one-line human-readable report,
// e.g. for driver output alongside -telemetry.
func (d Decision) Summary() string {
	s := fmt.Sprintf("level %d (n=%d): chose %s", d.Level, d.N, d.Chosen)
	switch {
	case d.Forced:
		s += " [forced: coarse solver needs CSR]"
	case d.FromCache:
		s += " [cached]"
	}
	for _, c := range d.Candidates {
		if c.Skipped {
			s += fmt.Sprintf("; %s skipped (pred %.0fus)", c.Kind, c.PredictedApplySeconds*1e6)
			continue
		}
		if c.MeasuredApplySeconds > 0 {
			s += fmt.Sprintf("; %s %.0fus %.1f MDoF/s", c.Kind, c.MeasuredApplySeconds*1e6, c.MDoFPerSec)
		}
	}
	return s
}
