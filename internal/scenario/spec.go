// Package scenario is the declarative model-definition layer: a Spec
// describes a time-dependent model — domain, resolution, lithology
// table, geometry primitives, boundary conditions, thermal state and
// solver/nonlinear controls — as plain data, and Compile lowers it into
// a ready-to-step model.Model. The paper's two hard-wired model
// problems (the §IV-A sinker and the §V continental rift) are specs in
// the built-in registry, alongside Rayleigh–Taylor, subduction,
// slab-detachment and sinker-swarm scenarios; user specs load from
// JSON files with the same schema.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"ptatin3d/internal/mesh"
	"ptatin3d/internal/rheology"
)

// Box is an axis-aligned box, used for the domain and for box-shaped
// geometry primitives.
type Box struct {
	X0 float64 `json:"x0"`
	X1 float64 `json:"x1"`
	Y0 float64 `json:"y0"`
	Y1 float64 `json:"y1"`
	Z0 float64 `json:"z0"`
	Z1 float64 `json:"z1"`
}

// Lo returns the lower corner.
func (b Box) Lo() [3]float64 { return [3]float64{b.X0, b.Y0, b.Z0} }

// Hi returns the upper corner.
func (b Box) Hi() [3]float64 { return [3]float64{b.X1, b.Y1, b.Z1} }

// Contains reports whether (x,y,z) lies in the half-open box.
func (b Box) Contains(x, y, z float64) bool {
	return x >= b.X0 && x < b.X1 && y >= b.Y0 && y < b.Y1 && z >= b.Z0 && z < b.Z1
}

// LithologySpec is the JSON-friendly form of one rheology.Lithology row.
// Type is "constant", "arrhenius" or "frank-kamenetskii".
type LithologySpec struct {
	Name         string  `json:"name"`
	Type         string  `json:"type"`
	Eta0         float64 `json:"eta0"`
	N            float64 `json:"n,omitempty"`
	E            float64 `json:"e,omitempty"`
	Plastic      bool    `json:"plastic,omitempty"`
	Cohesion     float64 `json:"cohesion,omitempty"`
	FrictionPhi  float64 `json:"friction_phi,omitempty"`
	CohesionSoft float64 `json:"cohesion_soft,omitempty"`
	SoftStrain   float64 `json:"soft_strain,omitempty"`
	EtaMin       float64 `json:"eta_min,omitempty"`
	EtaMax       float64 `json:"eta_max,omitempty"`
	Rho0         float64 `json:"rho0"`
	Alpha        float64 `json:"alpha,omitempty"`
	TRef         float64 `json:"tref,omitempty"`
}

// lower converts the spec row to the rheology table entry.
func (l LithologySpec) lower() (rheology.Lithology, error) {
	out := rheology.Lithology{
		Name: l.Name, Eta0: l.Eta0, N: l.N, E: l.E,
		Plastic: l.Plastic, Cohesion: l.Cohesion, FrictionPhi: l.FrictionPhi,
		CohesionSoft: l.CohesionSoft, SoftStrain: l.SoftStrain,
		EtaMin: l.EtaMin, EtaMax: l.EtaMax,
		Rho0: l.Rho0, Alpha: l.Alpha, TRef: l.TRef,
	}
	switch l.Type {
	case "", "constant":
		out.Type = rheology.Constant
	case "arrhenius":
		out.Type = rheology.Arrhenius
	case "frank-kamenetskii":
		out.Type = rheology.FrankKamenetskii
	default:
		return out, fmt.Errorf("scenario: lithology %q: unknown creep law %q", l.Name, l.Type)
	}
	return out, nil
}

// BCSpec is one ordered boundary-condition operation. Kind "freeslip"
// zeroes the face-normal velocity component; kind "velocity" pins
// Component to Value on the face. Order matters for bit-exact
// reproduction of the legacy constructors (later operations overwrite
// earlier ones on shared edges).
type BCSpec struct {
	Face      string  `json:"face"` // xmin,xmax,ymin,ymax,zmin,zmax
	Kind      string  `json:"kind"` // "freeslip" or "velocity"
	Component int     `json:"component,omitempty"`
	Value     float64 `json:"value,omitempty"`
}

// parseFace maps a face name to the mesh face index.
func parseFace(s string) (mesh.Face, error) {
	switch s {
	case "xmin":
		return mesh.XMin, nil
	case "xmax":
		return mesh.XMax, nil
	case "ymin":
		return mesh.YMin, nil
	case "ymax":
		return mesh.YMax, nil
	case "zmin":
		return mesh.ZMin, nil
	case "zmax":
		return mesh.ZMax, nil
	}
	return 0, fmt.Errorf("scenario: unknown face %q", s)
}

// FaceTemp pins the temperature on one face (Dirichlet).
type FaceTemp struct {
	Face  string  `json:"face"`
	Value float64 `json:"value"`
}

// ThermalSpec enables the energy equation: SUPG advection-diffusion
// with diffusivity Kappa, Dirichlet faces, and a linear initial profile
// along InitAxis running from InitFrom at the low face to InitTo at the
// high face (evaluated on the vertex index fraction, so it is exact on
// the undeformed mesh).
type ThermalSpec struct {
	Kappa     float64    `json:"kappa"`
	FaceTemps []FaceTemp `json:"face_temps,omitempty"`
	InitAxis  int        `json:"init_axis"`
	InitFrom  float64    `json:"init_from"`
	InitTo    float64    `json:"init_to"`
}

// SolverSpec selects the Stokes solver configuration; zero values keep
// the stokes.DefaultConfig production defaults. Levels == 0 picks the
// deepest usable geometric hierarchy automatically (halve while all
// element counts stay even and ≥ 4, max 3 levels — the paper's rift
// configuration).
type SolverSpec struct {
	Levels       int     `json:"levels,omitempty"`
	SmoothSteps  int     `json:"smooth_steps,omitempty"`
	CoarseSolver string  `json:"coarse_solver,omitempty"`
	OuterMethod  string  `json:"outer_method,omitempty"`
	FineKind     string  `json:"fine_kind,omitempty"`
	Blocked      bool    `json:"blocked,omitempty"`
	Precision    string  `json:"precision,omitempty"`
	RTol         float64 `json:"rtol,omitempty"`
	MaxIt        int     `json:"max_it,omitempty"`
	// Restart widens the FGMRES restart window (stokes.Config.Restart);
	// specs with viscosity contrast Δη ≥ 1e5 should set ≥ 200.
	Restart int `json:"restart,omitempty"`
}

// NonlinearSpec controls the outer Picard/Newton iteration; zero values
// keep nonlinear.DefaultOptions. EisenstatWalker is a tri-state (nil =
// default on).
type NonlinearSpec struct {
	MaxIt           int     `json:"max_it,omitempty"`
	RTol            float64 `json:"rtol,omitempty"`
	EisenstatWalker *bool   `json:"eisenstat_walker,omitempty"`
	EWEta0          float64 `json:"ew_eta0,omitempty"`
}

// Spec is a complete declarative scenario. Material points classify to
// lithology 0 by default; Geometry primitives paint later entries over
// earlier ones in order.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Physics is the one-line "what this exercises" note shown by
	// ptatin-run -list and the README scenario table.
	Physics string `json:"physics,omitempty"`

	Domain     Box    `json:"domain"`
	Resolution [3]int `json:"resolution"`
	// Small is the reduced resolution used by the 2-step smoke runs and
	// the shared-vs-distributed equivalence tests; zero falls back to
	// Resolution. Every axis must stay divisible by the smoke rank grid
	// on every geometric level.
	Small [3]int `json:"small,omitempty"`
	PPE   int    `json:"ppe,omitempty"`

	Gravity             [3]float64 `json:"gravity"`
	VerticalAxis        int        `json:"vertical_axis"`
	FreeSurface         bool       `json:"free_surface,omitempty"`
	CFL                 float64    `json:"cfl,omitempty"`
	MaxDt               float64    `json:"max_dt,omitempty"`
	MinPointsPerElement int        `json:"min_points_per_element,omitempty"`
	UseNewton           bool       `json:"use_newton,omitempty"`

	Lithologies []LithologySpec `json:"lithologies"`
	Geometry    []Primitive     `json:"geometry,omitempty"`
	BCs         []BCSpec        `json:"bcs"`
	Thermal     *ThermalSpec    `json:"thermal,omitempty"`
	Solver      SolverSpec      `json:"solver,omitempty"`
	Nonlinear   NonlinearSpec   `json:"nonlinear,omitempty"`
}

// SmallResolution returns the smoke-test resolution (Small, falling
// back to Resolution).
func (s Spec) SmallResolution() [3]int {
	if s.Small != [3]int{} {
		return s.Small
	}
	return s.Resolution
}

// Validate checks the spec for structural errors before compilation.
func (s Spec) Validate() error {
	for a := 0; a < 3; a++ {
		if s.Resolution[a] <= 0 {
			return fmt.Errorf("scenario %q: resolution[%d] = %d, want > 0", s.Name, a, s.Resolution[a])
		}
	}
	lo, hi := s.Domain.Lo(), s.Domain.Hi()
	for a := 0; a < 3; a++ {
		if !(hi[a] > lo[a]) {
			return fmt.Errorf("scenario %q: empty domain extent on axis %d", s.Name, a)
		}
	}
	if s.VerticalAxis < 0 || s.VerticalAxis > 2 {
		return fmt.Errorf("scenario %q: vertical axis %d out of range", s.Name, s.VerticalAxis)
	}
	if len(s.Lithologies) == 0 {
		return fmt.Errorf("scenario %q: lithology table is empty", s.Name)
	}
	for i, l := range s.Lithologies {
		if _, err := l.lower(); err != nil {
			return err
		}
		if l.Eta0 <= 0 && l.Type != "" {
			return fmt.Errorf("scenario %q: lithology %d (%s): eta0 must be positive", s.Name, i, l.Name)
		}
	}
	for i, p := range s.Geometry {
		if err := p.validate(len(s.Lithologies)); err != nil {
			return fmt.Errorf("scenario %q: geometry[%d]: %w", s.Name, i, err)
		}
	}
	for _, b := range s.BCs {
		if _, err := parseFace(b.Face); err != nil {
			return err
		}
		switch b.Kind {
		case "freeslip":
		case "velocity":
			if b.Component < 0 || b.Component > 2 {
				return fmt.Errorf("scenario %q: bc on %s: component %d out of range", s.Name, b.Face, b.Component)
			}
		default:
			return fmt.Errorf("scenario %q: bc on %s: unknown kind %q", s.Name, b.Face, b.Kind)
		}
	}
	if t := s.Thermal; t != nil {
		if t.Kappa <= 0 {
			return fmt.Errorf("scenario %q: thermal kappa must be positive", s.Name)
		}
		if t.InitAxis < 0 || t.InitAxis > 2 {
			return fmt.Errorf("scenario %q: thermal init axis %d out of range", s.Name, t.InitAxis)
		}
		for _, ft := range t.FaceTemps {
			if _, err := parseFace(ft.Face); err != nil {
				return err
			}
		}
	}
	if p := s.Solver.Precision; p != "" && p != "f64" && p != "f32" {
		return fmt.Errorf("scenario %q: solver precision %q (want f64 or f32)", s.Name, p)
	}
	return nil
}

// autoLevels picks the deepest usable geometric hierarchy (max 3, as in
// the paper's rift configuration): halve while every element count
// stays even and at least 4.
func autoLevels(mx, my, mz int) int {
	n := 1
	for mx%2 == 0 && my%2 == 0 && mz%2 == 0 && mx >= 4 && my >= 4 && mz >= 4 && n < 3 {
		mx, my, mz = mx/2, my/2, mz/2
		n++
	}
	return n
}

// MaxViscosityContrast estimates the spec's viscosity contrast from the
// lithology table's Eta0 range (clip bounds included when set) — the
// quantity that decides whether the FGMRES restart window needs
// widening.
func (s Spec) MaxViscosityContrast() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, l := range s.Lithologies {
		e := l.Eta0
		if e <= 0 {
			continue
		}
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
		if l.EtaMin > 0 {
			lo = math.Min(lo, l.EtaMin)
		}
		if l.EtaMax > 0 {
			hi = math.Max(hi, l.EtaMax)
		}
	}
	if !(hi > 0) || math.IsInf(lo, 1) {
		return 1
	}
	return hi / lo
}

// Load reads a Spec from a JSON file.
func Load(path string) (Spec, error) {
	var s Spec
	data, err := os.ReadFile(path)
	if err != nil {
		return s, fmt.Errorf("scenario: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Save writes the spec as indented JSON.
func (s Spec) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
