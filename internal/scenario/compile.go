package scenario

import (
	"fmt"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/model"
	"ptatin3d/internal/mpm"
	"ptatin3d/internal/nonlinear"
	"ptatin3d/internal/op"
	"ptatin3d/internal/rheology"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/thermal"
)

// Compile lowers the spec into a ready-to-step model: mesh + boundary
// conditions, material-point lattice classified by the geometry
// primitives, lithology table, solver and nonlinear configuration,
// thermal state — everything the legacy NewSinker/NewRift constructors
// hard-wired, now driven by data. Workers is the intra-node parallel
// width (≤0 means 1).
func Compile(spec Spec, workers int) (*model.Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	ppe := spec.PPE
	if ppe <= 0 {
		ppe = 2
	}

	mx, my, mz := spec.Resolution[0], spec.Resolution[1], spec.Resolution[2]
	da := mesh.New(mx, my, mz,
		spec.Domain.X0, spec.Domain.X1,
		spec.Domain.Y0, spec.Domain.Y1,
		spec.Domain.Z0, spec.Domain.Z1)
	bc := mesh.NewBC(da)
	for _, b := range spec.BCs {
		f, err := parseFace(b.Face)
		if err != nil {
			return nil, err
		}
		switch b.Kind {
		case "freeslip":
			bc.FreeSlipBox(da, f)
		case "velocity":
			bc.SetFaceComponent(da, f, b.Component, b.Value)
		}
	}
	prob := fem.NewProblem(da, bc)
	prob.Workers = workers
	prob.Gravity = spec.Gravity

	pts := mpm.NewLattice(prob, ppe, classifier(spec))
	applyDamage(spec, pts)

	lith := make(rheology.Table, len(spec.Lithologies))
	for i, l := range spec.Lithologies {
		row, err := l.lower()
		if err != nil {
			return nil, err
		}
		lith[i] = row
	}

	cfg, err := solverConfig(spec, workers)
	if err != nil {
		return nil, err
	}
	nl := nonlinearOptions(spec)

	m := &model.Model{
		Prob: prob, Points: pts, Lith: lith,
		Cfg:          cfg,
		VerticalAxis: spec.VerticalAxis,
		FreeSurface:  spec.FreeSurface,
		CFL:          spec.CFL,
		MaxDt:        spec.MaxDt,
		UseNewton:    spec.UseNewton,
		Workers:      workers,
		Nonlinear:    nl,

		MinPointsPerElement: spec.MinPointsPerElement,
	}

	if t := spec.Thermal; t != nil {
		temp := make([]float64, da.NVertices())
		div := [3]int{da.Mx, da.My, da.Mz}[t.InitAxis]
		for v := range temp {
			i, j, k := da.VertexIJK(v)
			idx := [3]int{i, j, k}[t.InitAxis]
			frac := float64(idx) / float64(div)
			temp[v] = t.InitFrom + (t.InitTo-t.InitFrom)*frac
		}
		ts := thermal.New(prob, t.Kappa)
		for _, ft := range t.FaceTemps {
			f, err := parseFace(ft.Face)
			if err != nil {
				return nil, err
			}
			ts.SetFaceTemperature(f, ft.Value)
		}
		m.T = ts
		m.Temp = temp
	}

	m.UpdateCoefficients(make([]float64, da.NVelDOF()+da.NPresDOF()), false)
	return m, nil
}

// MustCompile is Compile for specs known to be valid (the built-in
// registry); it panics on error.
func MustCompile(spec Spec, workers int) *model.Model {
	m, err := Compile(spec, workers)
	if err != nil {
		panic(err)
	}
	return m
}

// solverConfig lowers the SolverSpec onto stokes.DefaultConfig.
func solverConfig(spec Spec, workers int) (stokes.Config, error) {
	cfg := stokes.DefaultConfig()
	cfg.Workers = workers
	s := spec.Solver
	if s.Levels > 0 {
		cfg.Levels = s.Levels
	} else {
		cfg.Levels = autoLevels(spec.Resolution[0], spec.Resolution[1], spec.Resolution[2])
	}
	if s.SmoothSteps > 0 {
		cfg.SmoothSteps = s.SmoothSteps
	}
	if s.CoarseSolver != "" {
		cfg.CoarseSolver = s.CoarseSolver
	}
	if s.OuterMethod != "" {
		cfg.OuterMethod = s.OuterMethod
	}
	if s.FineKind != "" {
		k, err := op.ParseKind(s.FineKind)
		if err != nil {
			return cfg, fmt.Errorf("scenario %q: %w", spec.Name, err)
		}
		cfg.FineKind = k
	}
	cfg.Blocked = s.Blocked
	if s.Precision == "f32" {
		cfg.Precision = op.F32
	}
	if s.RTol > 0 {
		cfg.Params.RTol = s.RTol
	}
	if s.MaxIt > 0 {
		cfg.Params.MaxIt = s.MaxIt
	}
	cfg.Restart = s.Restart
	return cfg, nil
}

// nonlinearOptions lowers the NonlinearSpec onto the defaults.
func nonlinearOptions(spec Spec) nonlinear.Options {
	nl := nonlinear.DefaultOptions()
	s := spec.Nonlinear
	if s.MaxIt > 0 {
		nl.MaxIt = s.MaxIt
	}
	if s.RTol > 0 {
		nl.RTol = s.RTol
	}
	if s.EisenstatWalker != nil {
		nl.EisenstatWalker = *s.EisenstatWalker
	}
	if s.EWEta0 > 0 {
		nl.EWEta0 = s.EWEta0
	}
	return nl
}
