package scenario

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"ptatin3d/internal/model"
	"ptatin3d/internal/stokes"
)

// TestDistributedStepMatchesShared is the PR's acceptance gate: for two
// different scenarios, N full coupled steps (MPM projection, rheology,
// nonlinear Stokes, thermal, ALE) on the distributed backend must match
// the shared-memory run step for step — identical nonlinear and Krylov
// iteration counts and velocity agreement to 1e-10 — because the
// simulated fabric's deterministic reductions reproduce the serial
// summation order exactly.
func TestDistributedStepMatchesShared(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const steps = 2
	cases := []struct {
		name   string
		velTol float64
	}{
		// The linear-rheology specs converge their nonlinear iteration
		// tightly (rtol 1e-5), so the reduction-order roundoff of the
		// simulated fabric is squeezed out of the returned iterate and
		// the 1e-10 acceptance bound holds.
		{"sinker", 1e-10},
		{"rayleigh-taylor", 1e-10},
		// The rift stops its Picard iteration at the paper's rtol 1e-2
		// with plastic yielding active, so per-rank dot-product rounding
		// (≈1e-15, amplified by the 1e4 viscosity contrast and the yield
		// switch) survives in the accepted iterate and compounds through
		// the plastic-strain feedback on the second step; iteration
		// counts still match exactly.
		{"rift", 1e-5},
	}
	for _, tc := range cases {
		name, velTol := tc.name, tc.velTol
		t.Run(name, func(t *testing.T) {
			spec, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			spec.Resolution = spec.SmallResolution()

			ref, err := Compile(spec, 2)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := Compile(spec, 2)
			if err != nil {
				t.Fatal(err)
			}
			dist.Backend = model.NewDistributedBackend(2, 1, 1, stokes.DistOptions{})

			for s := 0; s < steps; s++ {
				if err := ref.StepForward(); err != nil {
					t.Fatalf("shared step %d: %v", s, err)
				}
				if err := dist.StepForward(); err != nil {
					t.Fatalf("distributed step %d: %v", s, err)
				}
				rs, ds := ref.Stats[s], dist.Stats[s]
				if rs.NewtonIts != ds.NewtonIts || rs.KrylovIts != ds.KrylovIts {
					t.Fatalf("step %d iteration counts diverged: shared newton=%d krylov=%d, distributed newton=%d krylov=%d",
						s, rs.NewtonIts, rs.KrylovIts, ds.NewtonIts, ds.KrylovIts)
				}
				if ds.Backend != "distributed" || ds.Ranks != 2 {
					t.Fatalf("step %d stats not attributed to the distributed backend: %+v", s, ds)
				}
				if ds.HaloMsgs == 0 || ds.AllReduces == 0 {
					t.Fatalf("step %d recorded no communication: halo_msgs=%d allreduces=%d", s, ds.HaloMsgs, ds.AllReduces)
				}
				nv := ref.Prob.DA.NVelDOF()
				uref, udist := ref.X[:nv], dist.X[:nv]
				var diff2, norm2 float64
				for i := range uref {
					d := uref[i] - udist[i]
					diff2 += d * d
					norm2 += uref[i] * uref[i]
				}
				if rel := math.Sqrt(diff2) / math.Max(math.Sqrt(norm2), 1e-300); rel > velTol {
					t.Fatalf("step %d velocity fields deviate: rel %.3e > %.0e", s, rel, velTol)
				}
			}
		})
	}
}

// TestDistributedBackendRejectsNewton: the distributed operator path is
// Picard-only; a model configured for true Newton must fail loudly
// rather than silently switch linearizations.
func TestDistributedBackendRejectsNewton(t *testing.T) {
	spec, err := Get("sinker")
	if err != nil {
		t.Fatal(err)
	}
	spec.Resolution = spec.SmallResolution()
	m, err := Compile(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.UseNewton = true
	m.Backend = model.NewDistributedBackend(2, 1, 1, stokes.DistOptions{})
	if _, err := m.SolveStokes(); err == nil {
		t.Fatal("distributed backend accepted UseNewton")
	}
}

// TestSpecJSONRoundTrip: every built-in spec survives Save/Load exactly
// (the registry doubles as the template library for user spec files).
func TestSpecJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range Names() {
		spec, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := spec.Save(path); err != nil {
			t.Fatalf("%s: Save: %v", name, err)
		}
		loaded, err := Load(path)
		if err != nil {
			t.Fatalf("%s: Load: %v", name, err)
		}
		if !reflect.DeepEqual(spec, loaded) {
			t.Errorf("%s: spec did not survive the JSON round trip:\n saved  %+v\n loaded %+v", name, spec, loaded)
		}
		if _, err := Resolve(path); err != nil {
			t.Errorf("%s: Resolve(path): %v", name, err)
		}
	}
}

// TestResolveRegistryAndErrors: Resolve prefers the registry and reports
// useful errors for unknown names.
func TestResolveRegistryAndErrors(t *testing.T) {
	if _, err := Resolve("sinker"); err != nil {
		t.Fatalf("Resolve(sinker): %v", err)
	}
	if _, err := Resolve("no-such-scenario"); err == nil {
		t.Fatal("Resolve accepted an unknown name")
	}
}

// TestValidateRejectsBadSpecs: the compiler's front door catches the
// obvious authoring mistakes before any allocation happens.
func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := map[string]func(*Spec){
		"no-lithologies": func(s *Spec) { s.Lithologies = nil },
		"bad-resolution": func(s *Spec) { s.Resolution[0] = 0 },
		"empty-domain":   func(s *Spec) { s.Domain.X1 = s.Domain.X0 },
		"bad-litho-ref":  func(s *Spec) { s.Geometry[0].Litho = 99 },
		"bad-face":       func(s *Spec) { s.BCs[0].Face = "sideways" },
		"bad-axis":       func(s *Spec) { s.VerticalAxis = 7 },
	}
	for name, mutate := range cases {
		s, err := Get("sinker")
		if err != nil {
			t.Fatal(err)
		}
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", name)
		}
	}
}

// TestMaxViscosityContrast: the high-contrast specs advertise the
// contrast that drives their enlarged restart windows.
func TestMaxViscosityContrast(t *testing.T) {
	swarm, err := Get("sinker-swarm")
	if err != nil {
		t.Fatal(err)
	}
	if c := swarm.MaxViscosityContrast(); c < 0.999e5 {
		t.Fatalf("sinker-swarm contrast = %g, want >= 1e5", c)
	}
	if swarm.Solver.Restart < 200 {
		t.Fatalf("sinker-swarm restart = %d, want >= 200 (FGMRES stalls inside a short window at this contrast)", swarm.Solver.Restart)
	}
}

// TestSmallResolutionCompiles: every registered spec's smoke resolution
// passes the compiler's validation and admits its multigrid hierarchy.
func TestSmallResolutionCompiles(t *testing.T) {
	for _, name := range Names() {
		spec, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		spec.Resolution = spec.SmallResolution()
		m, err := Compile(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Points.Len() == 0 {
			t.Fatalf("%s: no material points seeded", name)
		}
	}
}
