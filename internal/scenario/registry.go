package scenario

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// The registry maps scenario names to spec constructors (constructors,
// not values, so every Get hands out an independent Spec the caller may
// mutate freely).
var (
	regMu    sync.RWMutex
	registry = map[string]func() Spec{}
)

// Register adds a named spec constructor; registering an existing name
// panics (scenario names are a flat global namespace).
func Register(name string, fn func() Spec) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", name))
	}
	registry[name] = fn
}

// Get returns a fresh copy of the named registered spec.
func Get(name string) (Spec, error) {
	regMu.RLock()
	fn, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (registered: %v)", name, Names())
	}
	return fn(), nil
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Resolve looks up nameOrPath in the registry first and falls back to
// loading it as a JSON spec file — the lookup rule behind the driver's
// -scenario flag.
func Resolve(nameOrPath string) (Spec, error) {
	if s, err := Get(nameOrPath); err == nil {
		return s, nil
	}
	if _, err := os.Stat(nameOrPath); err != nil {
		return Spec{}, fmt.Errorf("scenario: %q is neither a registered scenario (%v) nor a readable spec file", nameOrPath, Names())
	}
	return Load(nameOrPath)
}
