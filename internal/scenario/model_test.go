package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSinkerThreeSteps is the paper's §IV-A experiment at reduced scale:
// three time steps of the sedimentation model. The spheres must descend,
// every step's Stokes solve must converge, and the material-point
// population must track the mesh.
func TestSinkerThreeSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultSinkerOptions()
	o.M = 8
	o.DeltaEta = 100
	o.Workers = 2
	m := NewSinker(o)

	// Mean sphere height before.
	meanZ := func() float64 {
		var s float64
		var n int
		for i := 0; i < m.Points.Len(); i++ {
			if m.Points.Litho[i] == 1 {
				s += m.Points.Z[i]
				n++
			}
		}
		return s / float64(n)
	}
	z0 := meanZ()
	for step := 0; step < 3; step++ {
		if err := m.StepForward(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		st := m.Stats[len(m.Stats)-1]
		if !st.Converged {
			t.Fatalf("step %d: nonlinear solve did not converge (|F| %e -> %e)", step, st.FNorm0, st.FNorm)
		}
		if st.Dt <= 0 {
			t.Fatalf("step %d: dt = %v", step, st.Dt)
		}
	}
	z1 := meanZ()
	if z1 >= z0 {
		t.Fatalf("spheres did not sediment: mean z %v -> %v", z0, z1)
	}
	if m.StepNum != 3 || len(m.Stats) != 3 {
		t.Fatalf("step accounting: %d steps, %d stats", m.StepNum, len(m.Stats))
	}
	if m.Points.Len() == 0 {
		t.Fatal("all points lost")
	}
}

// TestSinkerLinearRheologyConvergesInOnePicard: constant per-lithology
// viscosities make the problem (nearly) linear — the first nonlinear
// iteration must essentially solve it.
func TestSinkerLinearRheologyFastNonlinear(t *testing.T) {
	o := DefaultSinkerOptions()
	o.M = 4
	o.Workers = 1
	m := NewSinker(o)
	m.Cfg.Levels = 2
	res, err := m.SolveStokes()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("nonlinear solve failed: %+v", res)
	}
	if res.Iterations > 2 {
		t.Fatalf("linear rheology took %d nonlinear iterations", res.Iterations)
	}
}

// TestRiftSingleStep: one time step of the reduced rifting model — the
// full pipeline including plasticity, Newton linearization, thermal
// solve, free surface and the CG+ASM coarse solver.
func TestRiftSingleStep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultRiftOptions()
	o.Mx, o.My, o.Mz = 16, 4, 8
	o.Workers = 2
	m := NewRift(o)
	if err := m.StepForward(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats[0]
	// The paper reports early-step Newton failure (max its exceeded) is
	// acceptable; require only that the residual dropped and nothing blew
	// up.
	if st.FNorm >= st.FNorm0 {
		t.Fatalf("rift residual did not drop: %e -> %e", st.FNorm0, st.FNorm)
	}
	if st.NewtonIts < 1 || st.NewtonIts > 5 {
		t.Fatalf("Newton its = %d", st.NewtonIts)
	}
	if st.KrylovIts == 0 {
		t.Fatal("no Krylov work recorded")
	}
	// Extension must thin the domain: surface subsides on average.
	if st.TopoMax > 2.001 && st.TopoMin < 1.9 {
		t.Fatalf("implausible topography [%v, %v]", st.TopoMin, st.TopoMax)
	}
	// Temperature stays in [0,1] (maximum principle, fixed BCs).
	for _, v := range m.Temp {
		if v < -1e-6 || v > 1+1e-6 {
			t.Fatalf("temperature out of range: %v", v)
		}
	}
}

// TestRiftYieldingActivates: the extension drives the crust to yield
// somewhere (plastic strain accumulates after a step).
func TestRiftYieldingActivates(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultRiftOptions()
	o.Mx, o.My, o.Mz = 16, 4, 8
	o.Workers = 2
	m := NewRift(o)
	// Sum of plastic strain before (seed damage only).
	var before float64
	for i := 0; i < m.Points.Len(); i++ {
		before += m.Points.Plastic[i]
	}
	if err := m.StepForward(); err != nil {
		t.Fatal(err)
	}
	var after float64
	for i := 0; i < m.Points.Len(); i++ {
		after += m.Points.Plastic[i]
	}
	if after <= before {
		t.Fatalf("no plastic strain accumulated: %v -> %v", before, after)
	}
}

// TestVTKOutput: the writers emit well-formed files with the advertised
// sections.
func TestVTKOutput(t *testing.T) {
	o := DefaultSinkerOptions()
	o.M = 4
	m := NewSinker(o)
	m.Cfg.Levels = 2
	if _, err := m.SolveStokes(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	grid := filepath.Join(dir, "grid.vtk")
	if err := m.WriteVTK(grid); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(grid)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{"STRUCTURED_GRID", "VECTORS velocity", "SCALARS viscosity", "SCALARS density", "SCALARS pressure"} {
		if !strings.Contains(s, want) {
			t.Fatalf("grid VTK missing %q", want)
		}
	}
	ptsPath := filepath.Join(dir, "points.vtk")
	if err := m.WritePointsVTK(ptsPath); err != nil {
		t.Fatal(err)
	}
	b, err = os.ReadFile(ptsPath)
	if err != nil {
		t.Fatal(err)
	}
	s = string(b)
	for _, want := range []string{"POLYDATA", "SCALARS lithology", "SCALARS plastic_strain"} {
		if !strings.Contains(s, want) {
			t.Fatalf("points VTK missing %q", want)
		}
	}
	sl := filepath.Join(dir, "stream.vtk")
	seeds := [][3]float64{{0.3, 0.5, 0.8}, {0.7, 0.5, 0.8}}
	if err := m.WriteStreamlinesVTK(sl, seeds, 0.01, 200); err != nil {
		t.Fatal(err)
	}
	b, err = os.ReadFile(sl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "LINES") {
		t.Fatal("streamline VTK missing LINES")
	}
}

// TestStreamlineStaysInDomain: traced streamlines never leave the box.
func TestStreamlineStaysInDomain(t *testing.T) {
	o := DefaultSinkerOptions()
	o.M = 4
	m := NewSinker(o)
	m.Cfg.Levels = 2
	if _, err := m.SolveStokes(); err != nil {
		t.Fatal(err)
	}
	line := m.Streamline(0.4, 0.4, 0.7, 0.02, 300)
	if len(line) < 2 {
		t.Fatal("streamline too short")
	}
	for _, p := range line {
		for c := 0; c < 3; c++ {
			if p[c] < -1e-9 || p[c] > 1+1e-9 {
				t.Fatalf("streamline left the domain at %v", p)
			}
		}
	}
}

// TestPopulationControlInStep: with outflow boundaries the sinker loses
// points; population control keeps every element populated.
func TestPopulationControlInStep(t *testing.T) {
	o := DefaultSinkerOptions()
	o.M = 4
	o.PPE = 2
	m := NewSinker(o)
	m.Cfg.Levels = 2
	m.MinPointsPerElement = 2
	for i := 0; i < 2; i++ {
		if err := m.StepForward(); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[int]int)
	for i := 0; i < m.Points.Len(); i++ {
		counts[int(m.Points.Elem[i])]++
	}
	for e := 0; e < m.Prob.DA.NElements(); e++ {
		if counts[e] < 2 {
			t.Fatalf("element %d has %d points despite population control", e, counts[e])
		}
	}
}
