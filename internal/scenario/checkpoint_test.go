package scenario

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ptatin3d/internal/chkpt"
	"ptatin3d/internal/la"
	"ptatin3d/internal/model"
	"ptatin3d/internal/stokes"
)

func checkpointTestModelWorkers(workers int) *model.Model {
	o := DefaultSinkerOptions()
	o.M = 6
	o.Nc = 3
	o.Rc = 0.18
	o.DeltaEta = 100
	o.Workers = workers
	return NewSinker(o)
}

func checkpointTestModel() *model.Model { return checkpointTestModelWorkers(1) }

// TestCheckpointRestartExact verifies that restarting from a step-1
// checkpoint replays the remaining steps bit-for-bit: the continued run's
// residual histories, time steps and iteration counts must equal the
// uninterrupted reference run exactly, and re-serializing the restored
// state must reproduce the checkpoint byte-identically. The guarantee is
// worker-count independent — the slab-partitioned scatter fixes each
// worker's summation order regardless of scheduling — so the whole
// scenario runs at Workers 1, 2 and 4.
func TestCheckpointRestartExact(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			checkpointRestartExact(t, func() *model.Model { return checkpointTestModelWorkers(workers) })
		})
	}
}

// TestThermalCheckpointRestartExact extends the bit-exactness guarantee
// to a thermally coupled run: the rift scenario carries vertex
// temperature, material-point plastic strain, and the coupled velocity/
// pressure state through the checkpoint, and the continued run must
// replay the reference exactly at every worker count.
func TestThermalCheckpointRestartExact(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mk := func(workers int) func() *model.Model {
		return func() *model.Model {
			spec, err := Get("rift")
			if err != nil {
				t.Fatal(err)
			}
			spec.Resolution = spec.SmallResolution()
			m, err := Compile(spec, workers)
			if err != nil {
				t.Fatal(err)
			}
			if m.T == nil || m.Temp == nil {
				t.Fatal("rift scenario compiled without a thermal solver")
			}
			return m
		}
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			checkpointRestartExact(t, mk(workers))
		})
	}
}

// TestDistributedCheckpointRestartExact: the checkpoint format is
// backend-independent — a run on the distributed backend at 2 simulated
// ranks checkpoints and restarts bit-exactly, same as shared memory.
func TestDistributedCheckpointRestartExact(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"sinker", "rift"} {
		t.Run(name, func(t *testing.T) {
			checkpointRestartExact(t, func() *model.Model {
				spec, err := Get(name)
				if err != nil {
					t.Fatal(err)
				}
				spec.Resolution = spec.SmallResolution()
				m, err := Compile(spec, 2)
				if err != nil {
					t.Fatal(err)
				}
				m.Backend = model.NewDistributedBackend(2, 1, 1, stokes.DistOptions{})
				return m
			})
		})
	}
}

func checkpointRestartExact(t *testing.T, mkModel func() *model.Model) {
	const steps = 3

	// Reference: uninterrupted run.
	ref := mkModel()
	for s := 0; s < steps; s++ {
		if err := ref.StepForward(); err != nil {
			t.Fatalf("reference step %d: %v", s, err)
		}
	}

	// Interrupted run: one step, checkpoint to disk, restore into a fresh
	// model, continue.
	path := filepath.Join(t.TempDir(), "step1.chkpt")
	a := mkModel()
	if err := a.StepForward(); err != nil {
		t.Fatalf("step 0: %v", err)
	}
	if err := a.SaveCheckpoint(path); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	b := mkModel()
	if err := b.LoadCheckpoint(path); err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if b.StepNum != 1 || b.Time != a.Time {
		t.Fatalf("restored counters: step %d time %v, want step 1 time %v", b.StepNum, b.Time, a.Time)
	}

	if a.Temp != nil {
		if len(b.Temp) != len(a.Temp) {
			t.Fatalf("restored temperature has %d vertices, want %d", len(b.Temp), len(a.Temp))
		}
		for i := range a.Temp {
			if b.Temp[i] != a.Temp[i] {
				t.Fatalf("restored temperature differs at vertex %d: %v != %v", i, b.Temp[i], a.Temp[i])
			}
		}
	}

	// Byte-identical re-serialization of the restored state.
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if re := chkpt.Encode(b.Checkpoint()); !bytes.Equal(orig, re) {
		t.Fatal("restored model does not re-serialize byte-identically")
	}

	for s := 1; s < steps; s++ {
		if err := b.StepForward(); err != nil {
			t.Fatalf("continued step %d: %v", s, err)
		}
	}

	if len(b.Stats) != steps-1 {
		t.Fatalf("continued run has %d stats, want %d", len(b.Stats), steps-1)
	}
	for i, got := range b.Stats {
		want := ref.Stats[i+1]
		if got.Step != want.Step || got.Dt != want.Dt || got.Time != want.Time ||
			got.FNorm0 != want.FNorm0 || got.FNorm != want.FNorm ||
			got.NewtonIts != want.NewtonIts || got.KrylovIts != want.KrylovIts ||
			got.PointCount != want.PointCount {
			t.Errorf("continued step %d diverged from reference:\n got %+v\nwant %+v", want.Step, got, want)
		}
	}
}

// TestRestoreValidation feeds mismatched checkpoints to Restore; each must
// be rejected without modifying the model.
func TestRestoreValidation(t *testing.T) {
	m := checkpointTestModel()
	// X is lazily allocated by the first solve; size it so the base
	// checkpoint is valid.
	m.X = la.NewVec(m.Prob.DA.NVelDOF() + m.Prob.DA.NPresDOF())
	base := m.Checkpoint()

	mutations := map[string]func(st *chkpt.State){
		"grid":       func(st *chkpt.State) { st.Mx = 99 },
		"coords":     func(st *chkpt.State) { st.Coords = st.Coords[:9] },
		"dofs":       func(st *chkpt.State) { st.X = append(st.X, 0) },
		"elem-range": func(st *chkpt.State) { st.Elem[0] = int32(m.Prob.DA.NElements()) },
	}
	for name, mutate := range mutations {
		st := *base
		st.Coords = append([]float64(nil), base.Coords...)
		st.X = append([]float64(nil), base.X...)
		st.Elem = append([]int32(nil), base.Elem...)
		mutate(&st)
		if err := m.Restore(&st); err == nil {
			t.Errorf("%s: Restore accepted an invalid checkpoint", name)
		}
	}
	if err := m.Restore(base); err != nil {
		t.Errorf("Restore rejected a valid checkpoint: %v", err)
	}
}
