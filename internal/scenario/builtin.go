package scenario

import (
	"math"

	"ptatin3d/internal/model"
)

// The built-in registry: the paper's two model problems plus four
// scenarios that stress other corners of the physics (buoyancy-driven
// instability, thermal high-contrast subduction, power-law necking, and
// a many-body high-contrast swarm).
func init() {
	Register("sinker", func() Spec { return Sinker(DefaultSinkerOptions()) })
	Register("rift", func() Spec { return Rift(DefaultRiftOptions()) })
	Register("rayleigh-taylor", RayleighTaylor)
	Register("subduction", Subduction)
	Register("slab-detachment", SlabDetachment)
	Register("sinker-swarm", SinkerSwarm)
}

// boolp returns a pointer for the tri-state NonlinearSpec fields.
func boolp(b bool) *bool { return &b }

// SinkerOptions parametrizes the sedimentation benchmark of paper
// §IV-A: Nc randomly placed, non-intersecting spheres of radius Rc in
// the unit cube, viscosity contrast Δη between ambient fluid and
// spheres, slip walls, free surface at z = 1, gravity (0,0,−9.8).
type SinkerOptions struct {
	M        int     // elements per direction
	Nc       int     // number of spheres (paper: 8)
	Rc       float64 // sphere radius (paper: 0.1)
	DeltaEta float64 // viscosity contrast Δη
	PPE      int     // material points per element per direction (default 3)
	Seed     int64   // sphere placement seed (deterministic by default)
	Workers  int
}

// DefaultSinkerOptions returns the paper's configuration at a reduced
// default resolution.
func DefaultSinkerOptions() SinkerOptions {
	return SinkerOptions{M: 8, Nc: 8, Rc: 0.1, DeltaEta: 100, PPE: 3, Seed: 20140704, Workers: 1}
}

// Sinker builds the §IV-A sedimentation spec: lithology 0 is the
// ambient fluid (η = 1/Δη, ρ = 1), lithology 1 the spheres (η = 1,
// ρ = 1.2). Compiling it reproduces the legacy NewSinker model
// bit-for-bit (same lattice, sphere placement, solver configuration).
func Sinker(o SinkerOptions) Spec {
	if o.M <= 0 {
		o.M = 8
	}
	if o.PPE <= 0 {
		o.PPE = 3
	}
	if o.Rc <= 0 {
		o.Rc = 0.1
	}
	if o.DeltaEta <= 0 {
		o.DeltaEta = 100
	}
	return Spec{
		Name:         "sinker",
		Description:  "§IV-A sedimentation benchmark: dense viscous spheres sinking in a unit cube",
		Physics:      "linear rheology, viscosity contrast, free surface, MPM advection",
		Domain:       Box{X1: 1, Y1: 1, Z1: 1},
		Resolution:   [3]int{o.M, o.M, o.M},
		Small:        [3]int{8, 8, 8},
		PPE:          o.PPE,
		Gravity:      [3]float64{0, 0, -9.8},
		VerticalAxis: 2, FreeSurface: true, CFL: 0.25,
		Lithologies: []LithologySpec{
			{Name: "ambient", Type: "constant", Eta0: 1 / o.DeltaEta, Rho0: 1},
			{Name: "sphere", Type: "constant", Eta0: 1, Rho0: 1.2},
		},
		Geometry: []Primitive{
			{Kind: "swarm", Litho: 1, Count: o.Nc, Radius: o.Rc, Seed: o.Seed},
		},
		BCs: []BCSpec{
			{Face: "xmin", Kind: "freeslip"},
			{Face: "xmax", Kind: "freeslip"},
			{Face: "ymin", Kind: "freeslip"},
			{Face: "ymax", Kind: "freeslip"},
			{Face: "zmin", Kind: "freeslip"},
		},
		// The sinker rheology is linear: one Picard step with a tight
		// inner solve at the paper's tolerance solves it, so adaptive
		// (Eisenstat–Walker) forcing would only slow the first step
		// down. Keep a small iteration budget for the
		// projection-induced coefficient feedback.
		Nonlinear: NonlinearSpec{MaxIt: 3, RTol: 1e-5, EisenstatWalker: boolp(false)},
	}
}

// RiftOptions parametrizes the continental rifting model of paper §V.
//
// Nondimensionalization (documented in DESIGN.md — the paper quotes
// only "the non-dimensional scaling we adopted"): length unit 100 km,
// velocity unit 1 cm/yr, viscosity unit 10²² Pa·s, temperature unit
// 1300 °C. The domain is then 12 × 2 × 6 (x: 1200 km, y: 200 km
// vertical, z: 600 km) with the mantle in y ∈ [0, 1.6), weak (lower)
// crust [1.6, 1.8) and strong (upper) crust [1.8, 2.0]. Buoyancy:
// ρ′g′ = ρ·g·L²/(η₀·V₀) ≈ 102 per unit scaled density ρ/3300.
type RiftOptions struct {
	// Mx, My, Mz are element counts (paper finest: 256×32×128; default
	// laptop scale 32×8×16).
	Mx, My, Mz int
	// ExtensionVel is the full-face x-extension in cm/yr per side
	// (paper: ±1, i.e. 2 cm/yr total).
	ExtensionVel float64
	// ObliqueShortening applies the paper's boundary condition (ii): a
	// small u_z shortening (in cm/yr, paper: 0.2 total → 0.1 per side)
	// on the z faces.
	ObliqueShortening float64
	// WeakCrustEta is the (nondimensional) lower-crust viscosity; the
	// paper contrasts weak vs. strong lower crust (margin style).
	WeakCrustEta float64
	PPE          int
	Seed         int64
	Workers      int
}

// DefaultRiftOptions returns the reduced-scale rift configuration.
func DefaultRiftOptions() RiftOptions {
	return RiftOptions{
		Mx: 32, My: 8, Mz: 16,
		ExtensionVel: 1.0, ObliqueShortening: 0,
		WeakCrustEta: 0.05,
		PPE:          2, Seed: 7, Workers: 1,
	}
}

// Rift lithology indices.
const (
	LithMantle = iota
	LithWeakCrust
	LithStrongCrust
)

// Rift builds the continental rifting spec of paper §V: three
// lithologies (temperature-dependent mantle, Drucker–Prager crusts
// with cohesion softening), x-extension boundary conditions, a
// conductive initial temperature profile, and the randomized damage
// seed of Fig. 3. Compiling it reproduces the legacy NewRift model
// bit-for-bit.
func Rift(o RiftOptions) Spec {
	if o.Mx <= 0 || o.My <= 0 || o.Mz <= 0 {
		d := DefaultRiftOptions()
		o.Mx, o.My, o.Mz = d.Mx, d.My, d.Mz
	}
	if o.PPE <= 0 {
		o.PPE = 2
	}
	if o.WeakCrustEta <= 0 {
		o.WeakCrustEta = 0.05
	}
	const (
		lx, ly, lz = 12.0, 2.0, 6.0
		buoyancy   = 102.0 // ρ′g′ per unit scaled density (see RiftOptions)
	)
	// Extension on the x faces; free slip bottom and z faces; free
	// surface on top (y max).
	bcs := []BCSpec{
		{Face: "xmin", Kind: "velocity", Component: 0, Value: -o.ExtensionVel},
		{Face: "xmax", Kind: "velocity", Component: 0, Value: +o.ExtensionVel},
		{Face: "ymin", Kind: "velocity", Component: 1, Value: 0},
	}
	if o.ObliqueShortening != 0 {
		bcs = append(bcs,
			BCSpec{Face: "zmin", Kind: "velocity", Component: 2, Value: +o.ObliqueShortening},
			BCSpec{Face: "zmax", Kind: "velocity", Component: 2, Value: 0})
	} else {
		bcs = append(bcs,
			BCSpec{Face: "zmin", Kind: "freeslip"},
			BCSpec{Face: "zmax", Kind: "freeslip"})
	}
	return Spec{
		Name:         "rift",
		Description:  "§V continental rifting: extension of a layered visco-plastic lithosphere with a damage seed",
		Physics:      "Frank-Kamenetskii creep, Drucker-Prager yielding + softening, thermal coupling, free surface",
		Domain:       Box{X1: lx, Y1: ly, Z1: lz},
		Resolution:   [3]int{o.Mx, o.My, o.Mz},
		Small:        [3]int{8, 4, 8},
		PPE:          o.PPE,
		Gravity:      [3]float64{0, -buoyancy, 0},
		VerticalAxis: 1, FreeSurface: true,
		CFL: 0.25, MaxDt: 0.01, MinPointsPerElement: 2,
		// The rift defaults to Picard linearizations for both the
		// matvec and the preconditioner. The true-Newton operator
		// (paper §III-A) is implemented and FD-verified at the
		// discretization level (UseNewton flips it on), but with
		// material-point-projected coefficients the assembled Jacobian
		// is not the exact derivative of the projected residual, and at
		// the reduced resolutions of this reproduction the
		// inconsistency costs more than the quadratic convergence gains
		// — Picard reaches the paper's 10⁻² step tolerance in 1–5
		// iterations.
		UseNewton: false,
		// Lithologies (nondimensional; viscosity unit 10²² Pa·s,
		// T ∈ [0,1]). Mantle: temperature-dependent creep,
		// Frank–Kamenetskii contrast 10³ from surface to base; crusts
		// carry Drucker–Prager limiters with cohesion softening
		// (cohesion unit: η₀V₀/L₀ ≈ 31.7 MPa ⇒ C≈20 MPa → 0.63
		// nondimensional).
		Lithologies: []LithologySpec{
			LithMantle: {
				Name: "mantle", Type: "frank-kamenetskii",
				Eta0: 10, N: 1, E: math.Log(1000),
				EtaMin: 1e-2, EtaMax: 100,
				Rho0: 1.0, Alpha: 0.039, TRef: 1,
			},
			LithWeakCrust: {
				Name: "weak crust", Type: "constant",
				Eta0:    o.WeakCrustEta,
				Plastic: true, Cohesion: 0.63, CohesionSoft: 0.13, SoftStrain: 1,
				FrictionPhi: math.Pi / 6,
				EtaMin:      1e-2, EtaMax: 100,
				Rho0: 2800.0 / 3300.0, Alpha: 0.039, TRef: 1,
			},
			LithStrongCrust: {
				Name: "strong crust", Type: "frank-kamenetskii",
				Eta0: 100, N: 3, E: math.Log(1e4),
				Plastic: true, Cohesion: 0.63, CohesionSoft: 0.13, SoftStrain: 1,
				FrictionPhi: math.Pi / 6,
				EtaMin:      1e-2, EtaMax: 100,
				Rho0: 2800.0 / 3300.0, Alpha: 0.039, TRef: 1,
			},
		},
		// Lithology layering with the damage seed: a narrow
		// heterogeneous zone in the centre of the domain along the back
		// (z-max) face (paper Fig. 3) realized as randomized initial
		// plastic strain (strict-interior box, draws in point order).
		Geometry: []Primitive{
			{Kind: "layer", Litho: LithWeakCrust, Axis: 1, From: 1.6, To: 1.8},
			{Kind: "layer", Litho: LithStrongCrust, Axis: 1, From: 1.8, To: ly + 1},
			{Kind: "damage", Seed: o.Seed, Amplitude: 1,
				Box: Box{X0: lx/2 - 0.5, X1: lx/2 + 0.5, Y0: 1.2, Y1: ly + 1, Z0: lz - 2.0, Z1: lz + 1}},
		},
		BCs: bcs,
		// Temperature: conductive profile, T = 1 at the base, 0 at the
		// surface; κ′ = κ/(L₀V₀) ≈ 0.0315.
		Thermal: &ThermalSpec{
			Kappa:    0.0315,
			InitAxis: 1, InitFrom: 1, InitTo: 0,
			FaceTemps: []FaceTemp{{Face: "ymin", Value: 1}, {Face: "ymax", Value: 0}},
		},
		// Stokes configuration of §V-A: V(3,3) cycles, geometric
		// hierarchy, CG+ASM coarse solver (the sub-2k-core regime of
		// the paper).
		Solver: SolverSpec{
			SmoothSteps:  3,
			CoarseSolver: "asmcg",
			MaxIt:        150,
			Restart:      80,
		},
		// Nonlinear controls of §V-A: relative tolerance 10⁻², at most
		// five Newton iterations per step.
		Nonlinear: NonlinearSpec{MaxIt: 5, RTol: 1e-2, EWEta0: 0.1},
	}
}

// RayleighTaylor is the classic buoyancy-driven instability: a dense
// layer over a buoyant half-space with a sinusoidal interface seed,
// slip walls and a free surface.
func RayleighTaylor() Spec {
	return Spec{
		Name:         "rayleigh-taylor",
		Description:  "dense layer over a buoyant half-space, cosine interface perturbation",
		Physics:      "buoyancy-driven instability, interface tracking by material points",
		Domain:       Box{X1: 1, Y1: 1, Z1: 1},
		Resolution:   [3]int{8, 8, 8},
		Small:        [3]int{8, 8, 8},
		PPE:          3,
		Gravity:      [3]float64{0, 0, -9.8},
		VerticalAxis: 2, FreeSurface: true, CFL: 0.25, MaxDt: 0.05,
		Lithologies: []LithologySpec{
			{Name: "buoyant", Type: "constant", Eta0: 0.01, Rho0: 1},
			{Name: "dense", Type: "constant", Eta0: 1, Rho0: 1.3},
		},
		Geometry: []Primitive{
			{Kind: "layer", Litho: 1, Axis: 2, From: 0.5, To: 1.5,
				PerturbAmp: 0.04, PerturbAxis: 0, PerturbMode: 1},
		},
		BCs: []BCSpec{
			{Face: "xmin", Kind: "freeslip"},
			{Face: "xmax", Kind: "freeslip"},
			{Face: "ymin", Kind: "freeslip"},
			{Face: "ymax", Kind: "freeslip"},
			{Face: "zmin", Kind: "freeslip"},
		},
		Nonlinear: NonlinearSpec{MaxIt: 2, RTol: 1e-5, EisenstatWalker: boolp(false)},
	}
}

// Subduction is a thermally coupled one-sided subduction setup: a
// stiff, dense oceanic lithosphere dips under a weak decoupling
// channel into a temperature-dependent mantle. Viscosity spans five
// decades, so the spec widens the FGMRES restart window (see
// SolverSpec.Restart).
func Subduction() Spec {
	return Spec{
		Name:         "subduction",
		Description:  "dense lithosphere subducting through a weak channel into a temperature-dependent mantle",
		Physics:      "thermal coupling, Δη≈1e5 contrast, Drucker-Prager slab, weak-zone decoupling",
		Domain:       Box{X1: 4, Y1: 2, Z1: 1},
		Resolution:   [3]int{16, 8, 8},
		Small:        [3]int{8, 4, 4},
		PPE:          2,
		Gravity:      [3]float64{0, 0, -9.8},
		VerticalAxis: 2, FreeSurface: true,
		CFL: 0.25, MaxDt: 0.01, MinPointsPerElement: 2,
		Lithologies: []LithologySpec{
			{Name: "mantle", Type: "frank-kamenetskii",
				Eta0: 10, N: 1, E: math.Log(1000),
				EtaMin: 1e-2, EtaMax: 100,
				Rho0: 1, Alpha: 0.039, TRef: 1},
			{Name: "lithosphere", Type: "frank-kamenetskii",
				Eta0: 100, N: 1, E: math.Log(100),
				Plastic: true, Cohesion: 0.8, CohesionSoft: 0.2, SoftStrain: 1,
				FrictionPhi: math.Pi / 6,
				EtaMin:      1e-1, EtaMax: 1000,
				Rho0: 1.15, Alpha: 0.039, TRef: 1},
			{Name: "weak channel", Type: "constant",
				Eta0:   0.05,
				EtaMin: 1e-2, EtaMax: 1,
				Rho0: 1},
		},
		Geometry: []Primitive{
			// Lithospheric lid across the whole top.
			{Kind: "layer", Litho: 1, Axis: 2, From: 0.85, To: 1.2},
			// The slab: dips at 45° from the hinge down into the mantle.
			{Kind: "slab", Litho: 1, Hinge: 1.6, DipDeg: 45, Length: 1.0, Thickness: 0.15, Top: 1.0},
			// Weak decoupling channel above the hinge (painted last).
			{Kind: "notch", Litho: 2, Box: Box{X0: 1.45, X1: 1.75, Y0: -1, Y1: 3, Z0: 0.8, Z1: 1.01}},
		},
		BCs: []BCSpec{
			{Face: "xmin", Kind: "freeslip"},
			{Face: "xmax", Kind: "freeslip"},
			{Face: "ymin", Kind: "freeslip"},
			{Face: "ymax", Kind: "freeslip"},
			{Face: "zmin", Kind: "freeslip"},
		},
		Thermal: &ThermalSpec{
			Kappa:    0.05,
			InitAxis: 2, InitFrom: 1, InitTo: 0,
			FaceTemps: []FaceTemp{{Face: "zmin", Value: 1}, {Face: "zmax", Value: 0}},
		},
		Solver:    SolverSpec{SmoothSteps: 3, MaxIt: 200, Restart: 200},
		Nonlinear: NonlinearSpec{MaxIt: 4, RTol: 1e-2, EWEta0: 0.1},
	}
}

// SlabDetachment is a Schmalholz-style necking benchmark: a power-law
// (n = 4) lithosphere with a vertical slab hanging into a low-viscosity
// linear mantle; the slab necks and detaches under its own weight. No
// free surface and no thermal coupling — this spec isolates the
// power-law nonlinearity.
func SlabDetachment() Spec {
	return Spec{
		Name:         "slab-detachment",
		Description:  "power-law lithosphere necking: a hanging slab detaches into a weak linear mantle",
		Physics:      "power-law (n=4) creep, Δη≈1e4 contrast, nonlinear Picard convergence",
		Domain:       Box{X1: 2, Y1: 1, Z1: 1},
		Resolution:   [3]int{16, 8, 8},
		Small:        [3]int{8, 4, 4},
		PPE:          2,
		Gravity:      [3]float64{0, 0, -9.8},
		VerticalAxis: 2, FreeSurface: false,
		CFL: 0.25, MaxDt: 0.01, MinPointsPerElement: 2,
		Lithologies: []LithologySpec{
			{Name: "mantle", Type: "constant", Eta0: 1e-3, Rho0: 1},
			{Name: "lithosphere", Type: "frank-kamenetskii",
				Eta0: 1, N: 4, E: 0,
				EtaMin: 1e-3, EtaMax: 10,
				Rho0: 1.1},
		},
		Geometry: []Primitive{
			{Kind: "layer", Litho: 1, Axis: 2, From: 0.8, To: 1.1},
			{Kind: "notch", Litho: 1, Box: Box{X0: 0.9, X1: 1.1, Y0: -1, Y1: 2, Z0: 0.35, Z1: 0.8}},
		},
		BCs: []BCSpec{
			{Face: "xmin", Kind: "freeslip"},
			{Face: "xmax", Kind: "freeslip"},
			{Face: "ymin", Kind: "freeslip"},
			{Face: "ymax", Kind: "freeslip"},
			{Face: "zmin", Kind: "freeslip"},
			{Face: "zmax", Kind: "freeslip"},
		},
		Solver:    SolverSpec{SmoothSteps: 3, MaxIt: 200, Restart: 200},
		Nonlinear: NonlinearSpec{MaxIt: 5, RTol: 1e-2, EWEta0: 0.1},
	}
}

// SinkerSwarm is the §IV-A sinker pushed to the solver's hard regime:
// a dozen spheres at viscosity contrast 1e5, the configuration whose
// FGMRES iteration stalls at the default restart window of 50 (PR 7) —
// hence Restart 200 here.
func SinkerSwarm() Spec {
	s := Sinker(SinkerOptions{M: 8, Nc: 12, Rc: 0.08, DeltaEta: 1e5, PPE: 3, Seed: 42})
	s.Name = "sinker-swarm"
	s.Description = "12 dense spheres at Δη=1e5: the high-contrast restart-window stress test"
	s.Physics = "extreme viscosity contrast (1e5), FGMRES restart sensitivity, many-body interaction"
	s.Lithologies[1].Rho0 = 1.3
	s.Solver.Restart = 200
	s.Solver.MaxIt = 300
	return s
}

// NewSinker compiles the sinker spec — the drop-in replacement for the
// legacy model.NewSinker constructor (bit-identical model).
func NewSinker(o SinkerOptions) *model.Model {
	return MustCompile(Sinker(o), o.Workers)
}

// NewRift compiles the rift spec — the drop-in replacement for the
// legacy model.NewRift constructor (bit-identical model).
func NewRift(o RiftOptions) *model.Model {
	return MustCompile(Rift(o), o.Workers)
}

// SinkerSpheres returns the deterministic sphere centres for the
// options (legacy helper, now backed by the swarm primitive).
func SinkerSpheres(o SinkerOptions) [][3]float64 {
	return SwarmCenters(Primitive{Kind: "swarm", Count: o.Nc, Radius: o.Rc, Seed: o.Seed},
		Box{X1: 1, Y1: 1, Z1: 1})
}
