package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"ptatin3d/internal/mpm"
)

// Primitive paints lithology (or initial plastic damage) onto the
// material-point lattice. Primitives apply in order; a later primitive
// overrides earlier ones where they overlap. Kinds:
//
//   - "layer": Litho on coordinate Axis ∈ [From, To), optionally with a
//     sinusoidal interface perturbation (PerturbAmp/PerturbAxis/
//     PerturbMode shift both bounds by A·cos(2π·mode·s̃) with s̃ the
//     domain fraction along PerturbAxis — the classic Rayleigh–Taylor
//     seed).
//   - "sphere": Litho inside the ball at Center with Radius.
//   - "swarm": Count non-intersecting spheres of Radius placed by a
//     deterministic rejection sampler (Seed) inside the domain, kept a
//     radius away from every wall and two radii apart — the §IV-A
//     sinker placement.
//   - "slab": a dipping band: for x ∈ [Hinge, Hinge+Length], the
//     vertical coordinate (spec VerticalAxis) in [Top − (x−Hinge)·
//     tan(Dip) − Thickness, Top − (x−Hinge)·tan(Dip)) is painted Litho.
//   - "notch": Litho inside Box.
//   - "damage": initial plastic strain: points inside Box draw
//     rng.Float64()·Amplitude from a Seed-ed generator in point order
//     (strictly interior: all box comparisons are exclusive, matching
//     the legacy rift damage seed).
type Primitive struct {
	Kind  string `json:"kind"`
	Litho int    `json:"litho,omitempty"`

	// layer
	Axis        int     `json:"axis,omitempty"`
	From        float64 `json:"from,omitempty"`
	To          float64 `json:"to,omitempty"`
	PerturbAmp  float64 `json:"perturb_amp,omitempty"`
	PerturbAxis int     `json:"perturb_axis,omitempty"`
	PerturbMode int     `json:"perturb_mode,omitempty"`

	// sphere / swarm
	Center [3]float64 `json:"center,omitempty"`
	Radius float64    `json:"radius,omitempty"`
	Count  int        `json:"count,omitempty"`
	Seed   int64      `json:"seed,omitempty"`

	// slab
	Hinge     float64 `json:"hinge,omitempty"`
	DipDeg    float64 `json:"dip_deg,omitempty"`
	Length    float64 `json:"length,omitempty"`
	Thickness float64 `json:"thickness,omitempty"`
	Top       float64 `json:"top,omitempty"`

	// notch / damage
	Box       Box     `json:"box,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
}

// validate checks the primitive against the lithology table size.
func (p Primitive) validate(nlith int) error {
	switch p.Kind {
	case "layer", "sphere", "swarm", "slab", "notch":
		if p.Litho < 0 || p.Litho >= nlith {
			return fmt.Errorf("%s: lithology %d out of table range [0,%d)", p.Kind, p.Litho, nlith)
		}
	case "damage":
		// Paints plastic strain, not lithology.
	default:
		return fmt.Errorf("unknown primitive kind %q", p.Kind)
	}
	switch p.Kind {
	case "layer":
		if p.Axis < 0 || p.Axis > 2 {
			return fmt.Errorf("layer: axis %d out of range", p.Axis)
		}
		if !(p.To > p.From) {
			return fmt.Errorf("layer: empty band [%g,%g)", p.From, p.To)
		}
	case "sphere":
		if p.Radius <= 0 {
			return fmt.Errorf("sphere: radius must be positive")
		}
	case "swarm":
		if p.Radius <= 0 || p.Count <= 0 {
			return fmt.Errorf("swarm: need positive radius and count")
		}
	case "slab":
		if p.Thickness <= 0 || p.Length <= 0 {
			return fmt.Errorf("slab: need positive thickness and length")
		}
	}
	return nil
}

// SwarmCenters returns the deterministic sphere centres of a swarm
// primitive inside the domain: rejection sampling with Seed, one radius
// off every wall, two radii of mutual separation. On the unit cube this
// reproduces the legacy §IV-A sinker placement bit-for-bit.
func SwarmCenters(p Primitive, domain Box) [][3]float64 {
	rng := rand.New(rand.NewSource(p.Seed))
	lo, hi := domain.Lo(), domain.Hi()
	var centers [][3]float64
	guard := 0
	for len(centers) < p.Count && guard < 100000 {
		guard++
		var c [3]float64
		for a := 0; a < 3; a++ {
			c[a] = lo[a] + p.Radius + rng.Float64()*((hi[a]-lo[a])-2*p.Radius)
		}
		ok := true
		for _, q := range centers {
			d := math.Sqrt((c[0]-q[0])*(c[0]-q[0]) + (c[1]-q[1])*(c[1]-q[1]) + (c[2]-q[2])*(c[2]-q[2]))
			if d < 2*p.Radius {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, c)
		}
	}
	return centers
}

// classifier compiles the lithology-painting primitives into a single
// point-classification function (damage primitives are skipped; they
// act on the lattice afterwards, see applyDamage).
func classifier(spec Spec) func(x, y, z float64) int32 {
	type painted struct {
		in    func(x, y, z float64) bool
		litho int32
	}
	var regions []painted
	lo, hi := spec.Domain.Lo(), spec.Domain.Hi()
	for _, p := range spec.Geometry {
		p := p
		switch p.Kind {
		case "layer":
			var shift func(x, y, z float64) float64
			if p.PerturbAmp != 0 {
				s0 := lo[p.PerturbAxis]
				ext := hi[p.PerturbAxis] - lo[p.PerturbAxis]
				mode := float64(p.PerturbMode)
				if mode == 0 {
					mode = 1
				}
				shift = func(x, y, z float64) float64 {
					s := [3]float64{x, y, z}[p.PerturbAxis]
					return p.PerturbAmp * math.Cos(2*math.Pi*mode*(s-s0)/ext)
				}
			}
			regions = append(regions, painted{litho: int32(p.Litho), in: func(x, y, z float64) bool {
				c := [3]float64{x, y, z}[p.Axis]
				d := 0.0
				if shift != nil {
					d = shift(x, y, z)
				}
				return c >= p.From+d && c < p.To+d
			}})
		case "sphere":
			r2 := p.Radius * p.Radius
			regions = append(regions, painted{litho: int32(p.Litho), in: func(x, y, z float64) bool {
				dx, dy, dz := x-p.Center[0], y-p.Center[1], z-p.Center[2]
				return dx*dx+dy*dy+dz*dz < r2
			}})
		case "swarm":
			centers := SwarmCenters(p, spec.Domain)
			r2 := p.Radius * p.Radius
			regions = append(regions, painted{litho: int32(p.Litho), in: func(x, y, z float64) bool {
				for _, c := range centers {
					d2 := (x-c[0])*(x-c[0]) + (y-c[1])*(y-c[1]) + (z-c[2])*(z-c[2])
					if d2 < r2 {
						return true
					}
				}
				return false
			}})
		case "slab":
			tanDip := math.Tan(p.DipDeg * math.Pi / 180)
			v := spec.VerticalAxis
			regions = append(regions, painted{litho: int32(p.Litho), in: func(x, y, z float64) bool {
				if x < p.Hinge || x > p.Hinge+p.Length {
					return false
				}
				top := p.Top - (x-p.Hinge)*tanDip
				c := [3]float64{x, y, z}[v]
				return c >= top-p.Thickness && c < top
			}})
		case "notch":
			regions = append(regions, painted{litho: int32(p.Litho), in: p.Box.Contains})
		}
	}
	return func(x, y, z float64) int32 {
		lith := int32(0)
		for _, r := range regions {
			if r.in(x, y, z) {
				lith = r.litho
			}
		}
		return lith
	}
}

// applyDamage runs the damage primitives over the freshly seeded
// lattice: each draws from its own seeded generator in point order,
// only for points strictly inside its box — the draw sequence is
// therefore independent of how many points lie outside, matching the
// legacy rift damage seed bit-for-bit.
func applyDamage(spec Spec, pts *mpm.Points) {
	for _, p := range spec.Geometry {
		if p.Kind != "damage" {
			continue
		}
		amp := p.Amplitude
		if amp == 0 {
			amp = 1
		}
		b := p.Box
		rng := rand.New(rand.NewSource(p.Seed))
		for i := 0; i < pts.Len(); i++ {
			x, y, z := pts.X[i], pts.Y[i], pts.Z[i]
			if x > b.X0 && x < b.X1 && y > b.Y0 && y < b.Y1 && z > b.Z0 && z < b.Z1 {
				pts.Plastic[i] = amp * rng.Float64()
			}
		}
	}
}
