package cli

import "testing"

func TestParseInts(t *testing.T) {
	got, err := ParseInts(" 8, 12 ,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 8 || got[1] != 12 || got[2] != 16 {
		t.Fatalf("got %v", got)
	}
	for _, bad := range []string{"", "8,,16", "8,two"} {
		if _, err := ParseInts(bad); err == nil {
			t.Errorf("ParseInts(%q) accepted", bad)
		}
	}
}

func TestParseRanks(t *testing.T) {
	px, py, pz, err := ParseRanks("2x2x1")
	if err != nil {
		t.Fatal(err)
	}
	if px != 2 || py != 2 || pz != 1 {
		t.Fatalf("got %dx%dx%d", px, py, pz)
	}
	for _, bad := range []string{"", "2x2", "2x2x2x2", "2x0x1", "axbxc", "-1x2x2"} {
		if _, _, _, err := ParseRanks(bad); err == nil {
			t.Errorf("ParseRanks(%q) accepted", bad)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive passthrough")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Fatal("normalization must yield >= 1")
	}
	ns := WorkersList([]int{1, 0, 4})
	if ns[0] != 1 || ns[1] < 1 || ns[2] != 4 {
		t.Fatalf("got %v", ns)
	}
}
