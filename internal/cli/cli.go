// Package cli holds the small flag-parsing helpers shared by the cmd/
// drivers: comma-separated integer lists (grid and core sweeps), rank
// grids of the form "PxxPyxPz", and worker-count normalization. Every
// driver used to carry its own copy of these loops; they live here once
// so the sweep syntax stays identical across binaries.
package cli

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated integer list like "8,12,16".
// Blanks around entries are ignored; an empty string is an error.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad int list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseRanks parses a rank-grid spec of the form "PxxPyxPz" (e.g.
// "2x2x1"): three positive integers separated by 'x'.
func ParseRanks(s string) (px, py, pz int, err error) {
	parts := strings.Split(strings.TrimSpace(s), "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad rank grid %q: want PxxPyxPz, e.g. 2x2x1", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return 0, 0, 0, fmt.Errorf("bad rank grid %q: part %q is not a positive integer", s, p)
		}
		dims[i] = v
	}
	return dims[0], dims[1], dims[2], nil
}

// Workers normalizes a -workers flag value: non-positive means "use
// every CPU".
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// WorkersList normalizes a core-sweep list in place (0 entries become
// runtime.NumCPU()) and returns it.
func WorkersList(ns []int) []int {
	for i, n := range ns {
		ns[i] = Workers(n)
	}
	return ns
}
