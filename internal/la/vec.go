// Package la provides the dense and sparse linear-algebra substrate used
// throughout ptatin3d: contiguous float64 vectors, dense matrices with an
// LU factorization, compressed sparse row (CSR) matrices with sparse
// matrix–matrix products (for Galerkin triple products), and an ILU(0)
// factorization.
//
// The package plays the role PETSc's Vec/Mat play in the original pTatin3D:
// everything higher in the stack (Krylov methods, multigrid, field-split
// preconditioners) is written against these types.
package la

import (
	"fmt"
	"math"
)

// Vec is a dense vector of float64. It is a plain slice so callers can use
// Go slicing to view sub-vectors without copies; the methods below provide
// the BLAS-1 kernels the solver stack needs.
type Vec []float64

// NewVec returns a zeroed vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Zero sets every entry of v to 0.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Copy copies src into v. The lengths must match.
func (v Vec) Copy(src Vec) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("la: Copy length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Clone returns a newly allocated copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Scale multiplies v by alpha in place.
func (v Vec) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// AXPY computes v += alpha*x.
func (v Vec) AXPY(alpha float64, x Vec) {
	if len(v) != len(x) {
		panic(fmt.Sprintf("la: AXPY length mismatch %d != %d", len(v), len(x)))
	}
	for i := range v {
		v[i] += alpha * x[i]
	}
}

// AYPX computes v = alpha*v + x.
func (v Vec) AYPX(alpha float64, x Vec) {
	if len(v) != len(x) {
		panic(fmt.Sprintf("la: AYPX length mismatch %d != %d", len(v), len(x)))
	}
	for i := range v {
		v[i] = alpha*v[i] + x[i]
	}
}

// WAXPY computes v = alpha*x + y.
func (v Vec) WAXPY(alpha float64, x, y Vec) {
	if len(v) != len(x) || len(v) != len(y) {
		panic("la: WAXPY length mismatch")
	}
	for i := range v {
		v[i] = alpha*x[i] + y[i]
	}
}

// Dot returns the inner product of v and x.
func (v Vec) Dot(x Vec) float64 {
	if len(v) != len(x) {
		panic(fmt.Sprintf("la: Dot length mismatch %d != %d", len(v), len(x)))
	}
	var s float64
	for i := range v {
		s += v[i] * x[i]
	}
	return s
}

// DotRange returns the inner product of v[i0:i1] with x[i0:i1] — the
// partial-sum building block of rank-distributed reductions, where each
// rank dots only the dof ranges it owns.
func (v Vec) DotRange(x Vec, i0, i1 int) float64 {
	var s float64
	for i := i0; i < i1; i++ {
		s += v[i] * x[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute entry of v.
func (v Vec) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// PointwiseMult computes v[i] = a[i]*b[i].
func (v Vec) PointwiseMult(a, b Vec) {
	if len(v) != len(a) || len(v) != len(b) {
		panic("la: PointwiseMult length mismatch")
	}
	for i := range v {
		v[i] = a[i] * b[i]
	}
}

// Set fills v with the constant alpha.
func (v Vec) Set(alpha float64) {
	for i := range v {
		v[i] = alpha
	}
}

// Sum returns the sum of entries of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// HasNaN reports whether any entry of v is NaN or Inf. It is used by the
// solvers to fail fast on breakdown rather than iterating on garbage.
func (v Vec) HasNaN() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
