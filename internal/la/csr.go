package la

import (
	"fmt"
	"sort"

	"ptatin3d/internal/par"
)

// CSR is a compressed-sparse-row matrix. Assembled operators (the "Asmb"
// variant of Table I, all Galerkin coarse-level operators, and every AMG
// level) are stored in this format.
type CSR struct {
	NRows, NCols int
	RowPtr       []int // len NRows+1
	ColInd       []int // len nnz, column indices, sorted within each row
	Val          []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// MulVec computes y = a*x.
func (a *CSR) MulVec(x, y Vec) {
	if len(x) != a.NCols || len(y) != a.NRows {
		panic(fmt.Sprintf("la: CSR MulVec shape mismatch (%dx%d)*%d->%d", a.NRows, a.NCols, len(x), len(y)))
	}
	for i := 0; i < a.NRows; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColInd[k]]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += a*x.
func (a *CSR) MulVecAdd(x, y Vec) {
	if len(x) != a.NCols || len(y) != a.NRows {
		panic("la: CSR MulVecAdd shape mismatch")
	}
	for i := 0; i < a.NRows; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColInd[k]]
		}
		y[i] += s
	}
}

// MulVecRange computes y[i0:i1] = (a*x)[i0:i1]. It is the row-partitioned
// kernel used by the worker-pool parallel SpMV.
func (a *CSR) MulVecRange(x, y Vec, i0, i1 int) {
	for i := i0; i < i1; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColInd[k]]
		}
		y[i] = s
	}
}

// MulVecPar computes y = a*x with rows partitioned over workers. It is
// THE shared worker-parallel SpMV: every assembled operator representation
// (fem.AsmOp, the internal/op CSR backends, multigrid/AMG level operators)
// routes its application through here, so the row-parallel schedule and
// its telemetry live in exactly one place.
func (a *CSR) MulVecPar(x, y Vec, workers int) {
	if len(x) != a.NCols || len(y) != a.NRows {
		panic(fmt.Sprintf("la: CSR MulVecPar shape mismatch (%dx%d)*%d->%d", a.NRows, a.NCols, len(x), len(y)))
	}
	par.For(workers, a.NRows, func(lo, hi int) {
		a.MulVecRange(x, y, lo, hi)
	})
}

// Diag extracts the diagonal of a into d (which must have length NRows).
// Rows with no stored diagonal entry get 0.
func (a *CSR) Diag(d Vec) {
	if len(d) != a.NRows {
		panic("la: Diag length mismatch")
	}
	for i := 0; i < a.NRows; i++ {
		d[i] = 0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColInd[k] == i {
				d[i] = a.Val[k]
				break
			}
		}
	}
}

// Transpose returns aᵀ as a new CSR matrix.
func (a *CSR) Transpose() *CSR {
	t := &CSR{NRows: a.NCols, NCols: a.NRows}
	t.RowPtr = make([]int, t.NRows+1)
	for _, j := range a.ColInd {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.NRows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	t.ColInd = make([]int, a.NNZ())
	t.Val = make([]float64, a.NNZ())
	next := make([]int, t.NRows)
	copy(next, t.RowPtr[:t.NRows])
	for i := 0; i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColInd[k]
			p := next[j]
			t.ColInd[p] = i
			t.Val[p] = a.Val[k]
			next[j]++
		}
	}
	return t
}

// MatMul returns the sparse product a*b. It uses the classical Gustavson
// row-merge algorithm with a dense scatter workspace; this is the kernel
// behind Galerkin triple products RAP and smoothed-aggregation prolongator
// smoothing.
func MatMul(a, b *CSR) *CSR {
	if a.NCols != b.NRows {
		panic(fmt.Sprintf("la: MatMul shape mismatch (%dx%d)*(%dx%d)", a.NRows, a.NCols, b.NRows, b.NCols))
	}
	c := &CSR{NRows: a.NRows, NCols: b.NCols}
	c.RowPtr = make([]int, a.NRows+1)
	marker := make([]int, b.NCols)
	for i := range marker {
		marker[i] = -1
	}
	// Symbolic pass: count nnz per row.
	for i := 0; i < a.NRows; i++ {
		var cnt int
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			k := a.ColInd[ka]
			for kb := b.RowPtr[k]; kb < b.RowPtr[k+1]; kb++ {
				j := b.ColInd[kb]
				if marker[j] != i {
					marker[j] = i
					cnt++
				}
			}
		}
		c.RowPtr[i+1] = c.RowPtr[i] + cnt
	}
	nnz := c.RowPtr[a.NRows]
	c.ColInd = make([]int, nnz)
	c.Val = make([]float64, nnz)
	// Numeric pass.
	for i := range marker {
		marker[i] = -1
	}
	work := make([]float64, b.NCols)
	for i := 0; i < a.NRows; i++ {
		rowStart := c.RowPtr[i]
		pos := rowStart
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			k := a.ColInd[ka]
			av := a.Val[ka]
			for kb := b.RowPtr[k]; kb < b.RowPtr[k+1]; kb++ {
				j := b.ColInd[kb]
				if marker[j] != i {
					marker[j] = i
					c.ColInd[pos] = j
					work[j] = av * b.Val[kb]
					pos++
				} else {
					work[j] += av * b.Val[kb]
				}
			}
		}
		row := c.ColInd[rowStart:pos]
		sort.Ints(row)
		for p, j := range row {
			c.Val[rowStart+p] = work[j]
		}
	}
	return c
}

// MatMulNumeric recomputes the values of c = a*b into c's existing
// sparsity pattern, where c was produced by MatMul(a, b) with the same
// patterns of a and b (only values may have changed). The scatter
// accumulates per-row partial sums in the identical (ka, kb) visit order
// as MatMul, so the refreshed values are bit-identical to a rebuild —
// without the symbolic pass, allocation, or row sorting.
func MatMulNumeric(a, b, c *CSR) {
	if a.NCols != b.NRows || c.NRows != a.NRows || c.NCols != b.NCols {
		panic(fmt.Sprintf("la: MatMulNumeric shape mismatch (%dx%d)*(%dx%d)->(%dx%d)",
			a.NRows, a.NCols, b.NRows, b.NCols, c.NRows, c.NCols))
	}
	marker := make([]int, b.NCols)
	for i := range marker {
		marker[i] = -1
	}
	work := make([]float64, b.NCols)
	for i := 0; i < a.NRows; i++ {
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			k := a.ColInd[ka]
			av := a.Val[ka]
			for kb := b.RowPtr[k]; kb < b.RowPtr[k+1]; kb++ {
				j := b.ColInd[kb]
				if marker[j] != i {
					marker[j] = i
					work[j] = av * b.Val[kb]
				} else {
					work[j] += av * b.Val[kb]
				}
			}
		}
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			c.Val[p] = work[c.ColInd[p]]
		}
	}
}

// RAP returns the Galerkin triple product pᵀ*a*p used to build coarse-level
// operators from a fine-level operator a and prolongator p.
func RAP(a, p *CSR) *CSR {
	ap := MatMul(a, p)
	pt := p.Transpose()
	return MatMul(pt, ap)
}

// Scale multiplies every stored entry by alpha.
func (a *CSR) Scale(alpha float64) {
	for i := range a.Val {
		a.Val[i] *= alpha
	}
}

// Clone returns a deep copy of a.
func (a *CSR) Clone() *CSR {
	c := &CSR{NRows: a.NRows, NCols: a.NCols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColInd: append([]int(nil), a.ColInd...),
		Val:    append([]float64(nil), a.Val...),
	}
	return c
}

// At returns entry (i,j), or 0 if it is not stored. Binary search within
// the (sorted) row is used; this is a debugging/testing helper, not a
// performance path.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	k := sort.SearchInts(a.ColInd[lo:hi], j)
	if lo+k < hi && a.ColInd[lo+k] == j {
		return a.Val[lo+k]
	}
	return 0
}

// Builder accumulates (i,j,v) triplets and converts them to CSR, summing
// duplicates. Finite element assembly uses one Builder per matrix.
type Builder struct {
	nrows, ncols int
	rows         []map[int]float64
}

// NewBuilder returns a Builder for an nrows×ncols matrix.
func NewBuilder(nrows, ncols int) *Builder {
	return &Builder{nrows: nrows, ncols: ncols, rows: make([]map[int]float64, nrows)}
}

// Add accumulates v into entry (i,j).
func (b *Builder) Add(i, j int, v float64) {
	if v == 0 {
		return
	}
	if b.rows[i] == nil {
		b.rows[i] = make(map[int]float64, 96)
	}
	b.rows[i][j] += v
}

// Set overwrites entry (i,j) with v (used for Dirichlet rows).
func (b *Builder) Set(i, j int, v float64) {
	if b.rows[i] == nil {
		b.rows[i] = make(map[int]float64, 4)
	}
	b.rows[i][j] = v
}

// ZeroRow removes all entries of row i.
func (b *Builder) ZeroRow(i int) { b.rows[i] = nil }

// ToCSR converts the accumulated triplets to a CSR matrix with sorted rows.
// Entries with value exactly zero are kept (they may be structurally
// important, e.g. ILU(0) patterns from symbolic assembly).
func (b *Builder) ToCSR() *CSR {
	a := &CSR{NRows: b.nrows, NCols: b.ncols}
	a.RowPtr = make([]int, b.nrows+1)
	for i, r := range b.rows {
		a.RowPtr[i+1] = a.RowPtr[i] + len(r)
	}
	nnz := a.RowPtr[b.nrows]
	a.ColInd = make([]int, nnz)
	a.Val = make([]float64, nnz)
	cols := make([]int, 0, 512)
	for i, r := range b.rows {
		cols = cols[:0]
		for j := range r {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		p := a.RowPtr[i]
		for _, j := range cols {
			a.ColInd[p] = j
			a.Val[p] = r[j]
			p++
		}
	}
	return a
}

// AddScaled returns c = a + alpha·b for same-shaped CSR matrices, merging
// sparsity patterns. Used by smoothed aggregation to form the smoothed
// prolongator P = P0 - ω·(D⁻¹A)·P0.
func AddScaled(a, b *CSR, alpha float64) *CSR {
	if a.NRows != b.NRows || a.NCols != b.NCols {
		panic("la: AddScaled shape mismatch")
	}
	c := &CSR{NRows: a.NRows, NCols: a.NCols}
	c.RowPtr = make([]int, a.NRows+1)
	marker := make([]int, a.NCols)
	for i := range marker {
		marker[i] = -1
	}
	for i := 0; i < a.NRows; i++ {
		cnt := 0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if marker[a.ColInd[k]] != i {
				marker[a.ColInd[k]] = i
				cnt++
			}
		}
		for k := b.RowPtr[i]; k < b.RowPtr[i+1]; k++ {
			if marker[b.ColInd[k]] != i {
				marker[b.ColInd[k]] = i
				cnt++
			}
		}
		c.RowPtr[i+1] = c.RowPtr[i] + cnt
	}
	c.ColInd = make([]int, c.RowPtr[a.NRows])
	c.Val = make([]float64, c.RowPtr[a.NRows])
	for i := range marker {
		marker[i] = -1
	}
	work := make([]float64, a.NCols)
	for i := 0; i < a.NRows; i++ {
		pos := c.RowPtr[i]
		start := pos
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColInd[k]
			if marker[j] != i {
				marker[j] = i
				c.ColInd[pos] = j
				work[j] = a.Val[k]
				pos++
			} else {
				work[j] += a.Val[k]
			}
		}
		for k := b.RowPtr[i]; k < b.RowPtr[i+1]; k++ {
			j := b.ColInd[k]
			if marker[j] != i {
				marker[j] = i
				c.ColInd[pos] = j
				work[j] = alpha * b.Val[k]
				pos++
			} else {
				work[j] += alpha * b.Val[k]
			}
		}
		row := c.ColInd[start:pos]
		sort.Ints(row)
		for p, j := range row {
			c.Val[start+p] = work[j]
		}
	}
	return c
}

// ScaleRows multiplies row i of a by s[i] in place (a ← diag(s)·a).
func (a *CSR) ScaleRows(s Vec) {
	if len(s) != a.NRows {
		panic("la: ScaleRows length mismatch")
	}
	for i := 0; i < a.NRows; i++ {
		si := s[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			a.Val[k] *= si
		}
	}
}
