package la

import (
	"math/rand"
	"testing"
)

// TestSpanBLASMatchesFull: every span kernel restricted to a covering
// span set must match its full-length counterpart exactly, and a partial
// span set must leave indices outside the spans untouched.
func TestSpanBLASMatchesFull(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(3))
	mk := func() Vec {
		v := NewVec(n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	full := []Span{{0, n}}
	x, y, z := mk(), mk(), mk()

	check := func(name string, got, want Vec) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: index %d: got %v want %v", name, i, got[i], want[i])
			}
		}
	}

	a, b := x.Clone(), x.Clone()
	a.AXPY(0.7, y)
	b.AXPYSpans(0.7, y, full)
	check("AXPYSpans", b, a)

	a, b = x.Clone(), x.Clone()
	a.AYPX(-1.3, y)
	b.AYPXSpans(-1.3, y, full)
	check("AYPXSpans", b, a)

	a, b = mk(), NewVec(n)
	a.WAXPY(2.5, y, z)
	b.WAXPYSpans(2.5, y, z, full)
	check("WAXPYSpans", b, a)

	a, b = x.Clone(), x.Clone()
	a.Scale(0.25)
	b.ScaleSpans(0.25, full)
	check("ScaleSpans", b, a)

	a, b = x.Clone(), x.Clone()
	a.Copy(y)
	b.CopySpans(y, full)
	check("CopySpans", b, a)

	a, b = x.Clone(), x.Clone()
	a.PointwiseMult(y, z)
	b.PointwiseMultSpans(y, z, full)
	check("PointwiseMultSpans", b, a)

	a, b = x.Clone(), x.Clone()
	a.Zero()
	b.ZeroSpans(full)
	check("ZeroSpans", b, a)

	a, b = x.Clone(), x.Clone()
	a.Set(3.5)
	b.SetSpans(3.5, full)
	check("SetSpans", b, a)
}

// TestSpanBLASOutsideUntouched: span ops must not write outside their
// windows — the property the per-rank windowed vectors rely on.
func TestSpanBLASOutsideUntouched(t *testing.T) {
	const n = 32
	spans := []Span{{4, 8}, {12, 20}}
	if got := SpanLen(spans); got != 12 {
		t.Fatalf("SpanLen = %d, want 12", got)
	}
	inSpan := func(i int) bool {
		for _, s := range spans {
			if i >= s.Lo && i < s.Hi {
				return true
			}
		}
		return false
	}
	x, y := NewVec(n), NewVec(n)
	for i := range x {
		x[i] = float64(i + 1)
		y[i] = 2
	}
	orig := x.Clone()
	x.AXPYSpans(1, y, spans)
	x.ScaleSpans(2, spans)
	x.ZeroSpans(spans[:1])
	for i := range x {
		if !inSpan(i) && x[i] != orig[i] {
			t.Fatalf("index %d outside spans modified: %v -> %v", i, orig[i], x[i])
		}
	}
	for i := spans[0].Lo; i < spans[0].Hi; i++ {
		if x[i] != 0 {
			t.Fatalf("index %d inside zeroed span: %v", i, x[i])
		}
	}
	for i := spans[1].Lo; i < spans[1].Hi; i++ {
		if want := (orig[i] + 2) * 2; x[i] != want {
			t.Fatalf("index %d inside span: got %v want %v", i, x[i], want)
		}
	}
}
