package la

import (
	"math"
	"math/rand"
	"testing"
)

func randDense(rng *rand.Rand, rows, cols int) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := NewVec(2)
	m.MulVec(Vec{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	z := NewVec(3)
	m.MulVecT(Vec{1, 1}, z)
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Fatalf("MulVecT = %v", z)
	}
}

func TestDenseMul(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewDense(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c := Mul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range c.Data {
		if v != want[i] {
			t.Fatalf("Mul data = %v, want %v", c.Data, want)
		}
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		a := randDense(rng, n, n)
		// Diagonal boost to keep matrices well-conditioned.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		xtrue := NewVec(n)
		for i := range xtrue {
			xtrue[i] = rng.NormFloat64()
		}
		b := NewVec(n)
		a.MulVec(xtrue, b)
		f, err := Factor(a)
		if err != nil {
			t.Fatalf("trial %d: Factor: %v", trial, err)
		}
		x := NewVec(n)
		f.Solve(b, x)
		for i := range x {
			if !almostEq(x[i], xtrue[i], 1e-9) {
				t.Fatalf("trial %d n=%d: x[%d]=%v want %v", trial, n, i, x[i], xtrue[i])
			}
		}
	}
}

func TestLUSolveAliased(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.Data, []float64{2, 1, 1, 3})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := Vec{3, 4}
	f.Solve(b, b) // in-place
	// Solution of [2 1;1 3]x=[3;4] is x=[1;1].
	if !almostEq(b[0], 1, 1e-12) || !almostEq(b[1], 1, 1e-12) {
		t.Fatalf("aliased solve = %v, want [1 1]", b)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Factor(a); err == nil {
		t.Fatal("expected error for singular matrix")
	}
}

func TestLUDet(t *testing.T) {
	a := NewDense(3, 3)
	copy(a.Data, []float64{2, 0, 0, 0, 3, 0, 0, 0, 4})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 24, 1e-12) {
		t.Fatalf("Det = %v, want 24", f.Det())
	}
	// Permuted matrix: det sign must flip.
	b := NewDense(2, 2)
	copy(b.Data, []float64{0, 1, 1, 0})
	fb, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fb.Det(), -1, 1e-12) {
		t.Fatalf("Det = %v, want -1", fb.Det())
	}
}

func TestInvert3(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var a, inv [9]float64
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		a[0] += 3
		a[4] += 3
		a[8] += 3
		det := Invert3(&a, &inv)
		if math.Abs(det) < 1e-8 {
			continue
		}
		// a*inv should be identity.
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				var s float64
				for k := 0; k < 3; k++ {
					s += a[i*3+k] * inv[k*3+j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(s, want, 1e-10) {
					t.Fatalf("trial %d: (a*inv)[%d,%d] = %v, want %v", trial, i, j, s, want)
				}
			}
		}
	}
}

func TestQRThin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m := 6 + rng.Intn(20)
		k := 1 + rng.Intn(6)
		a := randDense(rng, m, k)
		q, r := QRThin(a)
		// Q has orthonormal columns.
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var dot float64
				for t2 := 0; t2 < m; t2++ {
					dot += q.At(t2, i) * q.At(t2, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(dot, want, 1e-10) {
					t.Fatalf("QtQ[%d,%d] = %v, want %v", i, j, dot, want)
				}
			}
		}
		// QR reproduces A.
		qr := Mul(q, r)
		for i := range a.Data {
			if !almostEq(qr.Data[i], a.Data[i], 1e-10) {
				t.Fatalf("QR != A at %d: %v vs %v", i, qr.Data[i], a.Data[i])
			}
		}
	}
}

func TestQRThinRankDeficient(t *testing.T) {
	// Second column is a multiple of the first: R[1,1] must be zero and the
	// corresponding Q column zeroed.
	a := NewDense(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 1, 2*float64(i+1))
	}
	q, r := QRThin(a)
	if r.At(1, 1) != 0 {
		t.Fatalf("R[1,1] = %v, want 0 for rank-deficient input", r.At(1, 1))
	}
	for i := 0; i < 4; i++ {
		if q.At(i, 1) != 0 {
			t.Fatalf("Q[:,1] not zeroed: %v", q.At(i, 1))
		}
	}
}
