package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestVecAXPY(t *testing.T) {
	v := Vec{1, 2, 3}
	x := Vec{4, 5, 6}
	v.AXPY(2, x)
	want := Vec{9, 12, 15}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("AXPY[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestVecAYPX(t *testing.T) {
	v := Vec{1, 2, 3}
	x := Vec{4, 5, 6}
	v.AYPX(3, x)
	want := Vec{7, 11, 15}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("AYPX[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestVecWAXPY(t *testing.T) {
	w := NewVec(3)
	w.WAXPY(2, Vec{1, 1, 1}, Vec{3, 4, 5})
	want := Vec{5, 6, 7}
	for i := range w {
		if w[i] != want[i] {
			t.Fatalf("WAXPY[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestVecDotNorm(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Dot(v); got != 25 {
		t.Fatalf("Dot = %v, want 25", got)
	}
	if got := v.Norm2(); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Fatalf("NormInf = %v, want 4", got)
	}
}

func TestVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vec{1}.AXPY(1, Vec{1, 2})
}

func TestVecHasNaN(t *testing.T) {
	if (Vec{1, 2, 3}).HasNaN() {
		t.Fatal("clean vector reported NaN")
	}
	if !(Vec{1, math.NaN()}).HasNaN() {
		t.Fatal("NaN not detected")
	}
	if !(Vec{math.Inf(1)}).HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestVecPointwiseMultSumSet(t *testing.T) {
	v := NewVec(3)
	v.PointwiseMult(Vec{1, 2, 3}, Vec{4, 5, 6})
	if v[0] != 4 || v[1] != 10 || v[2] != 18 {
		t.Fatalf("PointwiseMult = %v", v)
	}
	if v.Sum() != 32 {
		t.Fatalf("Sum = %v, want 32", v.Sum())
	}
	v.Set(7)
	if v[0] != 7 || v[2] != 7 {
		t.Fatalf("Set = %v", v)
	}
}

// Property: Cauchy–Schwarz |<a,b>| <= |a||b| for arbitrary vectors.
func TestVecCauchySchwarzProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		va, vb := Vec(a[:n]), Vec(b[:n])
		if va.HasNaN() || vb.HasNaN() {
			return true
		}
		lhs := math.Abs(va.Dot(vb))
		rhs := va.Norm2() * vb.Norm2()
		if math.IsNaN(lhs) || math.IsInf(lhs, 0) || math.IsNaN(rhs) || math.IsInf(rhs, 0) {
			return true // overflow in intermediate arithmetic; property vacuous
		}
		return lhs <= rhs*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AXPY is linear — (v + a*x) + b*x == v + (a+b)*x.
func TestVecAXPYLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		v := NewVec(n)
		x := NewVec(n)
		for i := range v {
			v[i] = rng.NormFloat64()
			x[i] = rng.NormFloat64()
		}
		a, b := rng.NormFloat64(), rng.NormFloat64()
		w1 := v.Clone()
		w1.AXPY(a, x)
		w1.AXPY(b, x)
		w2 := v.Clone()
		w2.AXPY(a+b, x)
		for i := range w1 {
			if !almostEq(w1[i], w2[i], 1e-12) {
				t.Fatalf("trial %d: AXPY not linear at %d: %v vs %v", trial, i, w1[i], w2[i])
			}
		}
	}
}
