package la

import (
	"fmt"
	"math"
)

// ILU0 holds an incomplete LU factorization with zero fill (ILU(0)) of a
// CSR matrix: L and U share the sparsity pattern of A. It provides the
// subdomain solves of the additive Schwarz preconditioner used by the
// rifting model's coarse-grid solver (paper §V-A) and the ILU-smoothed
// "SAML-ii" configuration of Table IV.
type ILU0 struct {
	n       int
	rowPtr  []int
	colInd  []int
	val     []float64 // combined L (unit diag, strictly below) and U
	diagIdx []int     // index of the diagonal entry within each row
}

// NewILU0 computes the ILU(0) factorization of a. The matrix must have a
// stored diagonal in every row. Zero pivots are shifted to a small
// positive value so the factorization never divides by zero (standard
// practice for indefinite or nearly singular subdomain blocks).
func NewILU0(a *CSR) (*ILU0, error) {
	if a.NRows != a.NCols {
		return nil, fmt.Errorf("la: ILU0 requires a square matrix, got %dx%d", a.NRows, a.NCols)
	}
	n := a.NRows
	f := &ILU0{
		n:       n,
		rowPtr:  a.RowPtr,
		colInd:  a.ColInd,
		val:     append([]float64(nil), a.Val...),
		diagIdx: make([]int, n),
	}
	for i := 0; i < n; i++ {
		f.diagIdx[i] = -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColInd[k] == i {
				f.diagIdx[i] = k
				break
			}
		}
		if f.diagIdx[i] < 0 {
			return nil, fmt.Errorf("la: ILU0 row %d has no stored diagonal", i)
		}
	}
	// IKJ-variant factorization restricted to the pattern of A. Columns in
	// each row are sorted, so entries with col < i are the L part.
	colpos := make([]int, n) // scatter: column -> position in current row, or -1
	for j := range colpos {
		colpos[j] = -1
	}
	for i := 0; i < n; i++ {
		lo, hi := f.rowPtr[i], f.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			colpos[f.colInd[k]] = k
		}
		for k := lo; k < hi; k++ {
			j := f.colInd[k]
			if j >= i {
				break
			}
			// Eliminate column j using row j's pivot.
			pj := f.val[f.diagIdx[j]]
			lij := f.val[k] / pj
			f.val[k] = lij
			for kk := f.diagIdx[j] + 1; kk < f.rowPtr[j+1]; kk++ {
				jj := f.colInd[kk]
				if p := colpos[jj]; p >= 0 {
					f.val[p] -= lij * f.val[kk]
				}
			}
		}
		// Guard the pivot.
		d := f.diagIdx[i]
		if math.Abs(f.val[d]) < 1e-30 {
			f.val[d] = 1e-30
		}
		for k := lo; k < hi; k++ {
			colpos[f.colInd[k]] = -1
		}
	}
	return f, nil
}

// Solve computes x = (LU)⁻¹ b by forward and backward substitution.
// b and x may alias.
func (f *ILU0) Solve(b, x Vec) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("la: ILU0 Solve length mismatch")
	}
	if &b[0] != &x[0] {
		copy(x, b)
	}
	// Forward: L y = b (unit diagonal).
	for i := 0; i < n; i++ {
		s := x[i]
		for k := f.rowPtr[i]; k < f.diagIdx[i]; k++ {
			s -= f.val[k] * x[f.colInd[k]]
		}
		x[i] = s
	}
	// Backward: U x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := f.diagIdx[i] + 1; k < f.rowPtr[i+1]; k++ {
			s -= f.val[k] * x[f.colInd[k]]
		}
		x[i] = s / f.val[f.diagIdx[i]]
	}
}

// ExtractSubmatrix returns the principal submatrix of a indexed by rows
// (and the same columns), as a CSR matrix in the local numbering induced
// by rows. globalToLocal maps global indices to local indices; entries of
// a whose column is outside rows are dropped. It is used to build the
// overlapping subdomain blocks of the additive Schwarz preconditioner.
func ExtractSubmatrix(a *CSR, rows []int) *CSR {
	g2l := make(map[int]int, len(rows))
	for l, g := range rows {
		g2l[g] = l
	}
	b := NewBuilder(len(rows), len(rows))
	for l, g := range rows {
		for k := a.RowPtr[g]; k < a.RowPtr[g+1]; k++ {
			if lj, ok := g2l[a.ColInd[k]]; ok {
				b.Add(l, lj, a.Val[k])
			}
		}
	}
	return b.ToCSR()
}
