package la

import (
	"fmt"

	"ptatin3d/internal/par"
)

// CSR32 is the reduced-precision companion of CSR: the stored values are
// float32 while the index structure (RowPtr/ColInd) is shared with the
// float64 matrix it was converted from. It exists for the mixed-precision
// smoother path, where an assembled coarse-level operator applied inside
// an f32 V-cycle preconditioner only needs single-precision values but
// halves its value-stream bandwidth. Row dot products accumulate in
// float64, so the only precision loss is the one rounding of each stored
// entry at conversion time — the outer flexible Krylov method absorbs
// that perturbation.
type CSR32 struct {
	NRows, NCols int
	RowPtr       []int // shared with the source CSR
	ColInd       []int // shared with the source CSR
	Val32        []float32
}

// NewCSR32 converts a to single-precision values, aliasing its index
// arrays. The source matrix must not change its sparsity pattern while
// the CSR32 is in use (value updates require a fresh conversion).
func NewCSR32(a *CSR) *CSR32 {
	v := make([]float32, len(a.Val))
	for i, x := range a.Val {
		v[i] = float32(x)
	}
	return &CSR32{NRows: a.NRows, NCols: a.NCols, RowPtr: a.RowPtr, ColInd: a.ColInd, Val32: v}
}

// NNZ returns the number of stored entries.
func (a *CSR32) NNZ() int { return len(a.Val32) }

// MulVecRange computes y[i0:i1] = (a*x)[i0:i1], accumulating each row in
// float64.
func (a *CSR32) MulVecRange(x, y Vec, i0, i1 int) {
	for i := i0; i < i1; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += float64(a.Val32[k]) * x[a.ColInd[k]]
		}
		y[i] = s
	}
}

// MulVecPar computes y = a*x with rows partitioned over workers,
// mirroring CSR.MulVecPar.
func (a *CSR32) MulVecPar(x, y Vec, workers int) {
	if len(x) != a.NCols || len(y) != a.NRows {
		panic(fmt.Sprintf("la: CSR32 MulVecPar shape mismatch (%dx%d)*%d->%d", a.NRows, a.NCols, len(x), len(y)))
	}
	par.For(workers, a.NRows, func(lo, hi int) {
		a.MulVecRange(x, y, lo, hi)
	})
}
