package la

// Span is a half-open index window [Lo, Hi) into a Vec. Rank-distributed
// solves carry a list of spans describing the owned+ghost rows of a
// rank's full-length vector copy, so BLAS-1 work (and the pages actually
// touched) stay O(n/P) per rank even though every rank allocates
// full-length vectors for index compatibility.
type Span struct{ Lo, Hi int }

// SpanLen returns the total number of indices covered by the spans.
func SpanLen(spans []Span) int {
	n := 0
	for _, s := range spans {
		n += s.Hi - s.Lo
	}
	return n
}

// ZeroSpans zeroes v on the spans.
func (v Vec) ZeroSpans(spans []Span) {
	for _, s := range spans {
		w := v[s.Lo:s.Hi]
		for i := range w {
			w[i] = 0
		}
	}
}

// CopySpans copies src into v on the spans.
func (v Vec) CopySpans(src Vec, spans []Span) {
	for _, s := range spans {
		copy(v[s.Lo:s.Hi], src[s.Lo:s.Hi])
	}
}

// ScaleSpans multiplies v by alpha on the spans.
func (v Vec) ScaleSpans(alpha float64, spans []Span) {
	for _, s := range spans {
		w := v[s.Lo:s.Hi]
		for i := range w {
			w[i] *= alpha
		}
	}
}

// SetSpans fills v with alpha on the spans.
func (v Vec) SetSpans(alpha float64, spans []Span) {
	for _, s := range spans {
		w := v[s.Lo:s.Hi]
		for i := range w {
			w[i] = alpha
		}
	}
}

// AXPYSpans computes v += alpha*x on the spans.
func (v Vec) AXPYSpans(alpha float64, x Vec, spans []Span) {
	for _, s := range spans {
		w, u := v[s.Lo:s.Hi], x[s.Lo:s.Hi]
		for i := range w {
			w[i] += alpha * u[i]
		}
	}
}

// AYPXSpans computes v = alpha*v + x on the spans.
func (v Vec) AYPXSpans(alpha float64, x Vec, spans []Span) {
	for _, s := range spans {
		w, u := v[s.Lo:s.Hi], x[s.Lo:s.Hi]
		for i := range w {
			w[i] = alpha*w[i] + u[i]
		}
	}
}

// WAXPYSpans computes v = alpha*x + y on the spans.
func (v Vec) WAXPYSpans(alpha float64, x, y Vec, spans []Span) {
	for _, s := range spans {
		w, u, t := v[s.Lo:s.Hi], x[s.Lo:s.Hi], y[s.Lo:s.Hi]
		for i := range w {
			w[i] = alpha*u[i] + t[i]
		}
	}
}

// PointwiseMultSpans computes v = a.*b on the spans.
func (v Vec) PointwiseMultSpans(a, b Vec, spans []Span) {
	for _, s := range spans {
		w, p, q := v[s.Lo:s.Hi], a[s.Lo:s.Hi], b[s.Lo:s.Hi]
		for i := range w {
			w[i] = p[i] * q[i]
		}
	}
}
