package la

import (
	"math/rand"
	"testing"
)

// tridiag builds a tridiagonal SPD matrix (1D Laplacian).
func tridiag(n int) *CSR {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	return b.ToCSR()
}

// TestILU0ExactForTridiagonal: for a tridiagonal matrix ILU(0) is the exact
// LU factorization, so the solve must be exact.
func TestILU0ExactForTridiagonal(t *testing.T) {
	n := 50
	a := tridiag(n)
	f, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	xtrue := NewVec(n)
	for i := range xtrue {
		xtrue[i] = rng.NormFloat64()
	}
	bvec := NewVec(n)
	a.MulVec(xtrue, bvec)
	x := NewVec(n)
	f.Solve(bvec, x)
	for i := range x {
		if !almostEq(x[i], xtrue[i], 1e-10) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xtrue[i])
		}
	}
}

// TestILU0Preconditions: for a general sparse diagonally dominant matrix,
// ILU(0) should reduce the residual of one Richardson step substantially.
func TestILU0Preconditions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 80
	a := randCSR(rng, n, n, 0.05, true)
	// Boost diagonal dominance.
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColInd[k] == i {
				a.Val[k] += 10
			}
		}
	}
	f, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// One step x = M⁻¹ b; residual should be far smaller than |b|.
	x := NewVec(n)
	f.Solve(b, x)
	r := NewVec(n)
	a.MulVec(x, r)
	r.AXPY(-1, b)
	if r.Norm2() > 0.5*b.Norm2() {
		t.Fatalf("ILU0 ineffective: |r|=%v |b|=%v", r.Norm2(), b.Norm2())
	}
}

func TestILU0SolveAliased(t *testing.T) {
	a := tridiag(10)
	f, err := NewILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := NewVec(10)
	b.Set(1)
	want := NewVec(10)
	f.Solve(b, want)
	f.Solve(b, b) // aliased
	for i := range b {
		if !almostEq(b[i], want[i], 1e-14) {
			t.Fatal("aliased ILU solve differs")
		}
	}
}

func TestILU0MissingDiagonal(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	b.Add(1, 1, 1)
	if _, err := NewILU0(b.ToCSR()); err == nil {
		t.Fatal("expected error for missing diagonal")
	}
}

func TestILU0NonSquare(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	if _, err := NewILU0(b.ToCSR()); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}
