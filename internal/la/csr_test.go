package la

import (
	"math/rand"
	"testing"
)

// randCSR builds a random sparse matrix with ~density fraction of entries
// set, plus a guaranteed diagonal when square (needed by ILU tests).
func randCSR(rng *rand.Rand, rows, cols int, density float64, withDiag bool) *CSR {
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
		if withDiag && i < cols {
			b.Add(i, i, 5+rng.Float64())
		}
	}
	return b.ToCSR()
}

func csrToDense(a *CSR) *Dense {
	d := NewDense(a.NRows, a.NCols)
	for i := 0; i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d.Add(i, a.ColInd[k], a.Val[k])
		}
	}
	return d
}

func TestBuilderDuplicatesSum(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, 2)
	b.Add(1, 1, 5)
	a := b.ToCSR()
	if got := a.At(0, 0); got != 3 {
		t.Fatalf("duplicate sum = %v, want 3", got)
	}
	if got := a.At(1, 1); got != 5 {
		t.Fatalf("At(1,1) = %v, want 5", got)
	}
	if got := a.At(0, 1); got != 0 {
		t.Fatalf("missing entry = %v, want 0", got)
	}
}

func TestCSRRowsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randCSR(rng, 20, 20, 0.3, false)
	for i := 0; i < a.NRows; i++ {
		for k := a.RowPtr[i] + 1; k < a.RowPtr[i+1]; k++ {
			if a.ColInd[k-1] >= a.ColInd[k] {
				t.Fatalf("row %d not strictly sorted", i)
			}
		}
	}
}

func TestCSRMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randCSR(rng, rows, cols, 0.2, false)
		d := csrToDense(a)
		x := NewVec(cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1, y2 := NewVec(rows), NewVec(rows)
		a.MulVec(x, y1)
		d.MulVec(x, y2)
		for i := range y1 {
			if !almostEq(y1[i], y2[i], 1e-12) {
				t.Fatalf("trial %d: CSR MulVec mismatch at %d", trial, i)
			}
		}
		// MulVecAdd accumulates.
		y3 := y2.Clone()
		a.MulVecAdd(x, y3)
		for i := range y3 {
			if !almostEq(y3[i], 2*y2[i], 1e-12) {
				t.Fatalf("MulVecAdd mismatch at %d", i)
			}
		}
		// Row-ranged SpMV equals full SpMV.
		y4 := NewVec(rows)
		mid := rows / 2
		a.MulVecRange(x, y4, 0, mid)
		a.MulVecRange(x, y4, mid, rows)
		for i := range y4 {
			if !almostEq(y4[i], y1[i], 1e-12) {
				t.Fatalf("MulVecRange mismatch at %d", i)
			}
		}
	}
}

func TestCSRTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randCSR(rng, 15, 25, 0.15, false)
	at := a.Transpose()
	if at.NRows != 25 || at.NCols != 15 {
		t.Fatalf("transpose shape %dx%d", at.NRows, at.NCols)
	}
	for i := 0; i < a.NRows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColInd[k]
			if !almostEq(at.At(j, i), a.Val[k], 1e-15) {
				t.Fatalf("Aᵀ[%d,%d] != A[%d,%d]", j, i, i, j)
			}
		}
	}
	if (a.Transpose().Transpose()).NNZ() != a.NNZ() {
		t.Fatal("double transpose changed nnz")
	}
}

func TestCSRMatMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := randCSR(rng, m, k, 0.25, false)
		b := randCSR(rng, k, n, 0.25, false)
		c := MatMul(a, b)
		cd := Mul(csrToDense(a), csrToDense(b))
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(c.At(i, j), cd.At(i, j), 1e-11) {
					t.Fatalf("trial %d: C[%d,%d] = %v, want %v", trial, i, j, c.At(i, j), cd.At(i, j))
				}
			}
		}
	}
}

func TestCSRRAP(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randCSR(rng, 12, 12, 0.3, true)
	p := randCSR(rng, 12, 5, 0.4, false)
	c := RAP(a, p)
	if c.NRows != 5 || c.NCols != 5 {
		t.Fatalf("RAP shape %dx%d", c.NRows, c.NCols)
	}
	pd := csrToDense(p)
	ad := csrToDense(a)
	// Dense PᵀAP.
	ap := Mul(ad, pd)
	ptd := NewDense(5, 12)
	for i := 0; i < 12; i++ {
		for j := 0; j < 5; j++ {
			ptd.Set(j, i, pd.At(i, j))
		}
	}
	want := Mul(ptd, ap)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if !almostEq(c.At(i, j), want.At(i, j), 1e-10) {
				t.Fatalf("RAP[%d,%d] = %v, want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestCSRDiag(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 0, 2)
	b.Add(1, 2, 7) // no diagonal in row 1
	b.Add(2, 2, -4)
	a := b.ToCSR()
	d := NewVec(3)
	a.Diag(d)
	if d[0] != 2 || d[1] != 0 || d[2] != -4 {
		t.Fatalf("Diag = %v", d)
	}
}

func TestCSRScaleClone(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randCSR(rng, 10, 10, 0.3, true)
	c := a.Clone()
	c.Scale(2)
	for k := range a.Val {
		if !almostEq(c.Val[k], 2*a.Val[k], 1e-15) {
			t.Fatal("Scale/Clone mismatch")
		}
	}
}

func TestExtractSubmatrix(t *testing.T) {
	b := NewBuilder(4, 4)
	// Full 4x4 with a_ij = 10*i+j+1.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			b.Add(i, j, float64(10*i+j+1))
		}
	}
	a := b.ToCSR()
	sub := ExtractSubmatrix(a, []int{1, 3})
	if sub.NRows != 2 || sub.NCols != 2 {
		t.Fatalf("submatrix shape %dx%d", sub.NRows, sub.NCols)
	}
	// sub = [[a11,a13],[a31,a33]] = [[12,14],[32,34]]
	want := [][]float64{{12, 14}, {32, 34}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if sub.At(i, j) != want[i][j] {
				t.Fatalf("sub[%d,%d] = %v, want %v", i, j, sub.At(i, j), want[i][j])
			}
		}
	}
}
