package la

import (
	"math"
	"math/rand"
	"testing"
)

// randomCSR builds a random sparse matrix alongside its dense reference.
// Some rows are forced empty so the empty-row paths are always covered.
func randomCSR(rng *rand.Rand, nr, nc int) (*CSR, [][]float64) {
	dense := make([][]float64, nr)
	b := NewBuilder(nr, nc)
	for i := 0; i < nr; i++ {
		dense[i] = make([]float64, nc)
		if nr > 2 && rng.Float64() < 0.2 {
			continue // forced empty row
		}
		nnz := rng.Intn(nc + 1)
		for k := 0; k < nnz; k++ {
			j := rng.Intn(nc)
			v := rng.NormFloat64()
			if rng.Float64() < 0.3 {
				// Duplicate insertions must accumulate.
				b.Add(i, j, v/2)
				b.Add(i, j, v/2)
			} else {
				b.Add(i, j, v)
			}
			dense[i][j] += v
		}
	}
	return b.ToCSR(), dense
}

func denseMulVec(dense [][]float64, x Vec) Vec {
	y := NewVec(len(dense))
	for i, row := range dense {
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

func vecClose(a, b Vec, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(b[i])) {
			return false
		}
	}
	return true
}

// TestCSRPropertyAgainstDense pins MulVec, MulVecAdd and Transpose against
// a dense reference over randomized sparsity patterns, including empty
// rows, single-row/column matrices and duplicate-entry accumulation.
func TestCSRPropertyAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	shapes := [][2]int{
		{1, 1}, {1, 7}, {7, 1}, {3, 3}, {5, 9}, {9, 5}, {16, 16}, {31, 17},
	}
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		nr, nc := shapes[trial%len(shapes)][0], shapes[trial%len(shapes)][1]
		a, dense := randomCSR(rng, nr, nc)

		x := NewVec(nc)
		for i := range x {
			x[i] = rng.NormFloat64()
		}

		// MulVec == dense product.
		y := NewVec(nr)
		a.MulVec(x, y)
		want := denseMulVec(dense, x)
		if !vecClose(y, want, 1e-12) {
			t.Fatalf("trial %d (%dx%d): MulVec mismatch\n got %v\nwant %v", trial, nr, nc, y, want)
		}

		// MulVecAdd accumulates on top of the prior contents.
		y2 := NewVec(nr)
		for i := range y2 {
			y2[i] = rng.NormFloat64()
		}
		base := y2.Clone()
		a.MulVecAdd(x, y2)
		for i := range y2 {
			y2[i] -= base[i]
		}
		if !vecClose(y2, want, 1e-12) {
			t.Fatalf("trial %d (%dx%d): MulVecAdd mismatch", trial, nr, nc)
		}

		// Transpose: Aᵀ dense entries match, and Aᵀx matches the dense
		// transpose product.
		at := a.Transpose()
		if at.NRows != nc || at.NCols != nr {
			t.Fatalf("trial %d: Transpose dims %dx%d, want %dx%d", trial, at.NRows, at.NCols, nc, nr)
		}
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				if got := at.At(j, i); math.Abs(got-dense[i][j]) > 1e-15*(1+math.Abs(dense[i][j])) {
					t.Fatalf("trial %d: At(%d,%d) of transpose = %v, want %v", trial, j, i, got, dense[i][j])
				}
			}
		}
		xr := NewVec(nr)
		for i := range xr {
			xr[i] = rng.NormFloat64()
		}
		yt := NewVec(nc)
		at.MulVec(xr, yt)
		wantT := NewVec(nc)
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				wantT[j] += dense[i][j] * xr[i]
			}
		}
		if !vecClose(yt, wantT, 1e-12) {
			t.Fatalf("trial %d (%dx%d): transpose MulVec mismatch", trial, nr, nc)
		}

		// Double transpose is the identity (structurally canonical form).
		att := at.Transpose()
		for i := 0; i < nr; i++ {
			for j := 0; j < nc; j++ {
				if got := att.At(i, j); got != at.At(j, i) {
					t.Fatalf("trial %d: double transpose changed entry (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

// TestCSRAllEmptyRows: a matrix with no entries at all must multiply to
// zero and transpose cleanly.
func TestCSRAllEmptyRows(t *testing.T) {
	b := NewBuilder(4, 3)
	a := b.ToCSR()
	x := Vec{1, 2, 3}
	y := NewVec(4)
	a.MulVec(x, y)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %v, want 0", i, v)
		}
	}
	at := a.Transpose()
	if at.NRows != 3 || at.NCols != 4 || at.NNZ() != 0 {
		t.Fatalf("empty transpose: %dx%d nnz %d", at.NRows, at.NCols, at.NNZ())
	}
}
