package la

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix. It backs small per-element and
// per-aggregate solves (element stiffness blocks, P1disc pressure mass
// blocks, rigid-body-mode QR factors, coarse-grid direct solves).
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense returns a zeroed Rows×Cols matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the (i,j) entry.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the (i,j) entry.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the (i,j) entry.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a slice aliasing row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero clears all entries.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = m*x.
func (m *Dense) MulVec(x, y Vec) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("la: MulVec shape mismatch (%dx%d)*%d->%d", m.Rows, m.Cols, len(x), len(y)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// MulVecT computes y = mᵀ*x.
func (m *Dense) MulVecT(x, y Vec) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("la: MulVecT shape mismatch")
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		for j, a := range row {
			y[j] += a * xi
		}
	}
}

// Mul computes c = a*b, allocating c.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic("la: Mul shape mismatch")
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				crow[j] += aik * bkj
			}
		}
	}
	return c
}

// LU holds an LU factorization with partial pivoting of a square matrix.
// It provides the exact subdomain and coarse-level solves used by the
// block-Jacobi and AMG coarse solvers.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diag, below) and U (on/above diag)
	piv  []int
	sign int
}

// Factor computes the LU factorization of the square matrix m with partial
// pivoting. It returns an error if the matrix is singular to working
// precision. m is not modified.
func Factor(m *Dense) (*LU, error) {
	if m.Rows != m.Cols {
		panic("la: Factor requires a square matrix")
	}
	n := m.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, m.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest entry in column k at/below row k.
		p := k
		pmax := math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > pmax {
				pmax, p = a, i
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("la: singular matrix at pivot %d", k)
		}
		if p != k {
			rk := f.lu[k*n : (k+1)*n]
			rp := f.lu[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivv := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			lik := f.lu[i*n+k] / pivv
			f.lu[i*n+k] = lik
			if lik == 0 {
				continue
			}
			ri := f.lu[i*n : (i+1)*n]
			rk := f.lu[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= lik * rk[j]
			}
		}
	}
	return f, nil
}

// Solve computes x such that A*x = b, where A is the factored matrix.
// b and x may alias.
func (f *LU) Solve(b, x Vec) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic("la: LU Solve length mismatch")
	}
	// Apply permutation into x, then forward/back substitute in place.
	tmp := make([]float64, n)
	for i := 0; i < n; i++ {
		tmp[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		ri := f.lu[i*n : i*n+i]
		s := tmp[i]
		for j, l := range ri {
			s -= l * tmp[j]
		}
		tmp[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		ri := f.lu[i*n : (i+1)*n]
		s := tmp[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * tmp[j]
		}
		tmp[i] = s / ri[i]
	}
	copy(x, tmp)
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Invert3 inverts the 3×3 matrix a (row-major) into inv and returns its
// determinant. It is the hot-path metric-term inversion used at every
// quadrature point, so it is hand-rolled rather than using LU.
func Invert3(a *[9]float64, inv *[9]float64) float64 {
	c00 := a[4]*a[8] - a[5]*a[7]
	c01 := a[5]*a[6] - a[3]*a[8]
	c02 := a[3]*a[7] - a[4]*a[6]
	det := a[0]*c00 + a[1]*c01 + a[2]*c02
	id := 1.0 / det
	inv[0] = c00 * id
	inv[1] = (a[2]*a[7] - a[1]*a[8]) * id
	inv[2] = (a[1]*a[5] - a[2]*a[4]) * id
	inv[3] = c01 * id
	inv[4] = (a[0]*a[8] - a[2]*a[6]) * id
	inv[5] = (a[2]*a[3] - a[0]*a[5]) * id
	inv[6] = c02 * id
	inv[7] = (a[1]*a[6] - a[0]*a[7]) * id
	inv[8] = (a[0]*a[4] - a[1]*a[3]) * id
	return det
}

// QRThin computes a thin (economy) QR factorization of the m×k matrix a
// (m >= k) by modified Gram–Schmidt with reorthogonalization: a = q*r with
// q m×k having orthonormal columns and r k×k upper triangular. Columns of
// a that become numerically zero are replaced by zero columns in q with a
// zero diagonal in r; the caller (smoothed aggregation) treats those as
// dropped modes. a is not modified.
func QRThin(a *Dense) (q, r *Dense) {
	m, k := a.Rows, a.Cols
	q = a.Clone()
	r = NewDense(k, k)
	col := func(d *Dense, j int) []float64 {
		c := make([]float64, d.Rows)
		for i := 0; i < d.Rows; i++ {
			c[i] = d.At(i, j)
		}
		return c
	}
	setcol := func(d *Dense, j int, c []float64) {
		for i := 0; i < d.Rows; i++ {
			d.Set(i, j, c[i])
		}
	}
	for j := 0; j < k; j++ {
		v := col(q, j)
		// Two rounds of MGS for numerical robustness.
		for round := 0; round < 2; round++ {
			for i := 0; i < j; i++ {
				qi := col(q, i)
				var dot float64
				for t := 0; t < m; t++ {
					dot += qi[t] * v[t]
				}
				r.Add(i, j, dot)
				for t := 0; t < m; t++ {
					v[t] -= dot * qi[t]
				}
			}
		}
		var nrm float64
		for t := 0; t < m; t++ {
			nrm += v[t] * v[t]
		}
		nrm = math.Sqrt(nrm)
		if nrm < 1e-13 {
			// Degenerate column: drop it.
			for t := 0; t < m; t++ {
				v[t] = 0
			}
			r.Set(j, j, 0)
		} else {
			r.Set(j, j, nrm)
			inrm := 1 / nrm
			for t := 0; t < m; t++ {
				v[t] *= inrm
			}
		}
		setcol(q, j, v)
	}
	return q, r
}
