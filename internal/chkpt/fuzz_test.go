package chkpt

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the checkpoint decoder with arbitrary bytes. The
// invariants: Decode never panics, bounds every allocation by the input
// length, and any successfully decoded state re-encodes to a stream that
// decodes again (the format round-trips through its own reader).
func FuzzDecode(f *testing.F) {
	valid := Encode(sampleState(true))
	f.Add(valid)
	f.Add(Encode(sampleState(false)))
	f.Add(valid[:12])
	f.Add(valid[:len(valid)-8])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	for _, pos := range []int{4, 8, 12, 30, len(valid) / 2, len(valid) - 2} {
		mut := bytes.Clone(valid)
		mut[pos] ^= 0x01
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(st)
		st2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded stream fails to decode: %v", err)
		}
		if st2.StepNum != st.StepNum || st2.NPoints() != st.NPoints() ||
			len(st2.X) != len(st.X) || len(st2.Coords) != len(st.Coords) {
			t.Fatal("re-encoded stream decodes to a different state")
		}
	})
}
