package chkpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleState(withTemp bool) *State {
	st := &State{
		StepNum: 7, Time: 3.25, Mx: 4, My: 5, Mz: 6,
		Coords:  []float64{0, 0, 0, 1, 0, 0, 0, 1, 0},
		X:       []float64{0.5, -1.25, 2.5, 0, 1e-8},
		PX:      []float64{0.1, 0.2, 0.3},
		PY:      []float64{0.4, 0.5, 0.6},
		PZ:      []float64{0.7, 0.8, 0.9},
		Litho:   []int32{0, 1, 0},
		Plastic: []float64{0, 0.01, 0.5},
		Elem:    []int32{0, 3, -1},
		Xi:      []float64{-0.5, 0, 0.5},
		Et:      []float64{0.25, -0.25, 0},
		Ze:      []float64{0, 0, 0.125},
	}
	if withTemp {
		st.Temp = []float64{300, 400, 500, 600}
	}
	return st
}

func TestRoundTrip(t *testing.T) {
	for _, withTemp := range []bool{false, true} {
		st := sampleState(withTemp)
		data := Encode(st)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("withTemp=%v: Decode: %v", withTemp, err)
		}
		if !reflect.DeepEqual(st, got) {
			t.Errorf("withTemp=%v: round trip mismatch:\n got %+v\nwant %+v", withTemp, got, st)
		}
	}
}

func TestEncodeDeterministicAndReencodeIdentical(t *testing.T) {
	st := sampleState(true)
	a := Encode(st)
	b := Encode(sampleState(true))
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic for equal states")
	}
	dec, err := Decode(a)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if c := Encode(dec); !bytes.Equal(a, c) {
		t.Fatal("decode → re-encode is not byte-identical")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	data := Encode(sampleState(false))
	data[0] = 'X'
	if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	data := Encode(sampleState(false))
	data[4] = 99
	// The version check precedes the file-CRC check, so a version clash is
	// reported as such even though the CRC no longer matches either.
	if _, err := Decode(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestDecodeTruncation(t *testing.T) {
	data := Encode(sampleState(true))
	for _, cut := range []int{0, 1, 4, 11, 12, 20, len(data) / 2, len(data) - 9, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("Decode of %d/%d-byte prefix succeeded, want error", cut, len(data))
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	orig := Encode(sampleState(true))
	for _, pos := range []int{12, 20, 40, len(orig) / 2, len(orig) - 6, len(orig) - 1} {
		data := bytes.Clone(orig)
		data[pos] ^= 0x40
		if _, err := Decode(data); err == nil {
			t.Errorf("Decode with byte %d flipped succeeded, want error", pos)
		}
	}
}

func TestDecodeHugeCountRejectedBeforeAllocation(t *testing.T) {
	data := Encode(sampleState(false))
	// The "coords" section header starts right after the 12-byte file header
	// and the meta section (17-byte header + 40-byte payload + 4-byte CRC).
	countOff := 12 + 17 + 40 + 4 + 9
	for i := 0; i < 8; i++ {
		data[countOff+i] = 0xff
	}
	// Re-stamp the file CRC so the count guard — not the integrity check —
	// is what rejects the stream.
	sum := crc32.Checksum(data[:len(data)-4], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[len(data)-4:], sum)
	_, err := Decode(data)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated for a 2^64-element claim", err)
	}
}

func TestSaveLoad(t *testing.T) {
	st := sampleState(true)
	path := filepath.Join(t.TempDir(), "state.chkpt")
	if err := Save(path, st); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatal("Save/Load round trip mismatch")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.chkpt")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

func TestSpecialFloats(t *testing.T) {
	st := sampleState(false)
	st.Time = math.Inf(1)
	st.X[0] = math.NaN()
	st.X[1] = math.Copysign(0, -1)
	got, err := Decode(Encode(st))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !math.IsInf(got.Time, 1) || !math.IsNaN(got.X[0]) {
		t.Fatal("special float values not preserved bit-exactly")
	}
	if math.Float64bits(got.X[1]) != math.Float64bits(st.X[1]) {
		t.Fatal("-0.0 not preserved bit-exactly")
	}
}
