// Package chkpt implements the versioned binary checkpoint format for
// full model state: DMDA mesh geometry, the coupled velocity/pressure
// solution, the vertex temperature field, the material-point SoA (including
// plastic strain history and local element coordinates), and the step
// counter. The format is deterministic — encoding the same State twice
// yields byte-identical output — so restart runs can be verified bit-for-bit.
//
// # Format (version 1)
//
// All integers are little-endian regardless of host byte order.
//
//	header:  "PTCK" | version u32 | section count u32
//	section: name [8]byte (NUL-padded ASCII) | kind u8 | count u64
//	         | payload (count × elemSize bytes) | crc u32 (CRC-32C of payload)
//	trailer: "KCTP" | crc u32 (CRC-32C of everything before the trailer)
//
// Element kinds: 0 = float64 (IEEE-754 bits), 1 = int32, 2 = uint64.
// Unknown section names are skipped (their CRC is still verified), so later
// versions may append sections without breaking version-1 readers; removing
// or re-typing a section requires a version bump. Decode never panics on
// malformed input: every count is validated against the remaining byte
// budget before allocation, and every corruption path returns a sentinel
// error (ErrBadMagic, ErrVersion, ErrTruncated, ErrCorrupt, ErrInvalid).
package chkpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Magic identifies a checkpoint stream; the trailer uses it reversed.
const Magic = "PTCK"

const trailerMagic = "KCTP"

// Version is the format version this package writes and accepts.
const Version = 1

// Sentinel errors. Decode wraps them with positional context; test with
// errors.Is.
var (
	ErrBadMagic  = errors.New("chkpt: bad magic")
	ErrVersion   = errors.New("chkpt: unsupported version")
	ErrTruncated = errors.New("chkpt: truncated data")
	ErrCorrupt   = errors.New("chkpt: checksum mismatch")
	ErrInvalid   = errors.New("chkpt: invalid structure")
)

// Element kinds of a section payload.
const (
	kindF64 uint8 = 0
	kindI32 uint8 = 1
	kindU64 uint8 = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// State is the complete restartable model state.
type State struct {
	StepNum    uint64
	Time       float64
	Mx, My, Mz uint64 // element grid dimensions

	Coords []float64 // deformed mesh vertex coordinates (3 per node)
	X      []float64 // coupled state [u; p]
	Temp   []float64 // vertex temperature; nil when thermal is off

	// Material-point SoA (parallel arrays, one entry per point).
	PX, PY, PZ []float64
	Litho      []int32
	Plastic    []float64
	Elem       []int32
	Xi, Et, Ze []float64
}

// NPoints returns the material-point count.
func (st *State) NPoints() int { return len(st.PX) }

func appendF64s(buf []byte, vals []float64) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func appendI32s(buf []byte, vals []int32) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

func appendU64s(buf []byte, vals []uint64) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	return buf
}

func appendSection(buf []byte, name string, kind uint8, payload []byte, count uint64) []byte {
	var nm [8]byte
	copy(nm[:], name)
	buf = append(buf, nm[:]...)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, count)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return buf
}

// Encode serializes st. The output is deterministic: a fixed section order,
// fixed little-endian layout, no timestamps.
func Encode(st *State) []byte {
	type sec struct {
		name    string
		kind    uint8
		payload []byte
		count   uint64
	}
	meta := []uint64{st.StepNum, math.Float64bits(st.Time), st.Mx, st.My, st.Mz}
	secs := []sec{
		{"meta", kindU64, appendU64s(nil, meta), uint64(len(meta))},
		{"coords", kindF64, appendF64s(nil, st.Coords), uint64(len(st.Coords))},
		{"x", kindF64, appendF64s(nil, st.X), uint64(len(st.X))},
	}
	if st.Temp != nil {
		secs = append(secs, sec{"temp", kindF64, appendF64s(nil, st.Temp), uint64(len(st.Temp))})
	}
	secs = append(secs,
		sec{"px", kindF64, appendF64s(nil, st.PX), uint64(len(st.PX))},
		sec{"py", kindF64, appendF64s(nil, st.PY), uint64(len(st.PY))},
		sec{"pz", kindF64, appendF64s(nil, st.PZ), uint64(len(st.PZ))},
		sec{"litho", kindI32, appendI32s(nil, st.Litho), uint64(len(st.Litho))},
		sec{"plastic", kindF64, appendF64s(nil, st.Plastic), uint64(len(st.Plastic))},
		sec{"elem", kindI32, appendI32s(nil, st.Elem), uint64(len(st.Elem))},
		sec{"xi", kindF64, appendF64s(nil, st.Xi), uint64(len(st.Xi))},
		sec{"et", kindF64, appendF64s(nil, st.Et), uint64(len(st.Et))},
		sec{"ze", kindF64, appendF64s(nil, st.Ze), uint64(len(st.Ze))},
	)

	buf := []byte(Magic)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(secs)))
	for _, s := range secs {
		buf = appendSection(buf, s.name, s.kind, s.payload, s.count)
	}
	buf = append(buf, trailerMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf
}

func elemSize(kind uint8) (int, bool) {
	switch kind {
	case kindF64, kindU64:
		return 8, true
	case kindI32:
		return 4, true
	}
	return 0, false
}

// Decode parses a checkpoint stream. It validates the magic, version, every
// section CRC and the file CRC, and the structural consistency of the
// material-point arrays. Allocation is bounded by len(data): a section count
// is rejected before allocation unless its payload fits in the remaining
// bytes, so fuzzed inputs cannot force large allocations or panics.
func Decode(data []byte) (*State, error) {
	const headerLen = 4 + 4 + 4
	if len(data) < headerLen+len(trailerMagic)+4 {
		return nil, fmt.Errorf("%w: %d bytes is below the minimum", ErrTruncated, len(data))
	}
	if string(data[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	// File CRC covers everything before the 4 trailing checksum bytes.
	tail := data[len(data)-8:]
	if string(tail[:4]) != trailerMagic {
		return nil, fmt.Errorf("%w: missing trailer", ErrTruncated)
	}
	if got, want := crc32.Checksum(data[:len(data)-4], castagnoli), binary.LittleEndian.Uint32(tail[4:]); got != want {
		return nil, fmt.Errorf("%w: file CRC %08x, want %08x", ErrCorrupt, got, want)
	}
	nsec := int(binary.LittleEndian.Uint32(data[8:12]))

	st := &State{}
	f64dst := map[string]*[]float64{
		"coords": &st.Coords, "x": &st.X, "temp": &st.Temp,
		"px": &st.PX, "py": &st.PY, "pz": &st.PZ,
		"plastic": &st.Plastic, "xi": &st.Xi, "et": &st.Et, "ze": &st.Ze,
	}
	i32dst := map[string]*[]int32{"litho": &st.Litho, "elem": &st.Elem}
	seen := map[string]bool{}
	pos := headerLen
	end := len(data) - 8 // trailer
	for i := 0; i < nsec; i++ {
		if end-pos < 8+1+8 {
			return nil, fmt.Errorf("%w: section %d header", ErrTruncated, i)
		}
		name := string(trimNul(data[pos : pos+8]))
		kind := data[pos+8]
		count := binary.LittleEndian.Uint64(data[pos+9 : pos+17])
		pos += 17
		sz, ok := elemSize(kind)
		if !ok {
			return nil, fmt.Errorf("%w: section %q has unknown kind %d", ErrInvalid, name, kind)
		}
		if count > uint64(end-pos)/uint64(sz) {
			return nil, fmt.Errorf("%w: section %q claims %d elements", ErrTruncated, name, count)
		}
		n := int(count)
		payload := data[pos : pos+n*sz]
		pos += n * sz
		if end-pos < 4 {
			return nil, fmt.Errorf("%w: section %q CRC", ErrTruncated, name)
		}
		if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(data[pos:pos+4]); got != want {
			return nil, fmt.Errorf("%w: section %q CRC %08x, want %08x", ErrCorrupt, name, got, want)
		}
		pos += 4

		if seen[name] {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrInvalid, name)
		}
		switch {
		case name == "meta":
			if kind != kindU64 || n != 5 {
				return nil, fmt.Errorf("%w: meta section kind %d count %d", ErrInvalid, kind, n)
			}
			meta := decodeU64s(payload, n)
			st.StepNum = meta[0]
			st.Time = math.Float64frombits(meta[1])
			st.Mx, st.My, st.Mz = meta[2], meta[3], meta[4]
			seen[name] = true
		case f64dst[name] != nil:
			if kind != kindF64 {
				return nil, fmt.Errorf("%w: section %q kind %d, want float64", ErrInvalid, name, kind)
			}
			*f64dst[name] = decodeF64s(payload, n)
			seen[name] = true
		case i32dst[name] != nil:
			if kind != kindI32 {
				return nil, fmt.Errorf("%w: section %q kind %d, want int32", ErrInvalid, name, kind)
			}
			*i32dst[name] = decodeI32s(payload, n)
			seen[name] = true
		default:
			// Forward compatibility: skip unknown (already CRC-verified)
			// sections from a newer writer of the same version.
		}
	}
	if pos != end {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrInvalid, end-pos)
	}
	for _, nm := range []string{"meta", "coords", "x",
		"px", "py", "pz", "litho", "plastic", "elem", "xi", "et", "ze"} {
		if !seen[nm] {
			return nil, fmt.Errorf("%w: missing mandatory section %q", ErrInvalid, nm)
		}
	}
	np := len(st.PX)
	if len(st.PY) != np || len(st.PZ) != np || len(st.Litho) != np ||
		len(st.Plastic) != np || len(st.Elem) != np ||
		len(st.Xi) != np || len(st.Et) != np || len(st.Ze) != np {
		return nil, fmt.Errorf("%w: inconsistent material-point array lengths", ErrInvalid)
	}
	if len(st.Coords)%3 != 0 {
		return nil, fmt.Errorf("%w: coords length %d not divisible by 3", ErrInvalid, len(st.Coords))
	}
	return st, nil
}

func decodeF64s(payload []byte, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out
}

func decodeI32s(payload []byte, n int) []int32 {
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return out
}

func decodeU64s(payload []byte, n int) []uint64 {
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return out
}

func trimNul(b []byte) []byte {
	for i, c := range b {
		if c == 0 {
			return b[:i]
		}
	}
	return b
}

// Save atomically writes the encoded state to path (temp file + rename, so
// a crash mid-write never leaves a truncated checkpoint under the final
// name).
func Save(path string, st *State) error {
	data := Encode(st)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".chkpt-*")
	if err != nil {
		return fmt.Errorf("chkpt: save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("chkpt: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("chkpt: save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("chkpt: save: %w", err)
	}
	return nil
}

// Load reads and decodes a checkpoint file.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chkpt: load: %w", err)
	}
	st, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("chkpt: load %s: %w", path, err)
	}
	return st, nil
}
