package mg

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ptatin3d/internal/comm"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/op"
)

// buildDistFixture builds a shared hierarchy plus per-level decomps.
func buildDistFixture(t *testing.T, m, levels int, px, py, pz int) (*MG, []*comm.Decomp) {
	t.Helper()
	eta := func(x, y, z float64) float64 { return 1 + 10*x*y + 5*z }
	fine := stdProblem(m, eta)
	probs := CoarsenProblems(fine, levels, FuncCoeffCoarsener(eta, nil))
	mgp, err := Build(probs, Options{
		Kinds:       op.DefaultLevelKinds(levels, op.Tensor, false),
		SmoothSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgp.UseBlockJacobiCoarse(1); err != nil {
		t.Fatal(err)
	}
	decomps := make([]*comm.Decomp, levels)
	for l, lev := range mgp.Levels {
		d, err := comm.NewDecomp(lev.Prob.DA, px, py, pz)
		if err != nil {
			t.Fatal(err)
		}
		decomps[l] = d
	}
	if err := ValidateNestedDecomps(decomps); err != nil {
		t.Fatal(err)
	}
	return mgp, decomps
}

// rankDists builds rank r's per-level comm handles.
func rankDists(r *comm.Rank, decomps []*comm.Decomp) []*comm.Dist {
	dists := make([]*comm.Dist, len(decomps))
	for l, d := range decomps {
		dists[l] = comm.NewDist(r, comm.NewLayout(d, r.ID), nil)
	}
	return dists
}

// TestDistMGMatchesShared: one distributed V-cycle application must
// agree with the shared-memory V-cycle on every rank's owned dofs to
// floating-point roundoff (the two differ only in element summation
// order on the matrix-free fine level).
func TestDistMGMatchesShared(t *testing.T) {
	mgp, decomps := buildDistFixture(t, 8, 2, 2, 2, 1)
	n := mgp.Levels[0].Op.N()
	rng := rand.New(rand.NewSource(7))
	b := la.NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	zs := la.NewVec(n)
	mgp.Apply(b, zs)

	w := comm.NewWorld(decomps[0].Size())
	var mu sync.Mutex
	zd := la.NewVec(n)
	w.Run(func(r *comm.Rank) {
		dists := rankDists(r, decomps)
		dmg, err := NewDist(mgp, dists)
		if err != nil {
			t.Error(err)
			return
		}
		z := la.NewVec(n)
		dmg.Apply(b, z)
		if err := dmg.Err(); err != nil {
			t.Errorf("rank %d: %v", r.ID, err)
		}
		l := dists[0].L
		mu.Lock()
		for _, node := range l.OwnedNodes() {
			for c := 0; c < 3; c++ {
				zd[3*node+int32(c)] = z[3*node+int32(c)]
			}
		}
		mu.Unlock()
	})
	ref := zs.Norm2()
	diff := zd.Clone()
	diff.AXPY(-1, zs)
	if rel := diff.Norm2() / ref; rel > 1e-12 {
		t.Fatalf("distributed V-cycle deviates from shared: rel %.3e", rel)
	}
}

// TestDistMGBlockedMatchesSerial: a blocked (TensorC + wavefront
// smoother) hierarchy solved serially must agree with the distributed
// V-cycle-preconditioned solve at 1, 8 and 64 ranks — same outer CG
// iteration count on every rank, solutions within 1e-10. The blocked
// smoother is bit-identical to the elided unblocked recurrence the
// distributed ranks run, so the only serial/distributed divergence left
// is element-summation order in the halo operator.
func TestDistMGBlockedMatchesSerial(t *testing.T) {
	eta := func(x, y, z float64) float64 { return 1 + 10*x*y + 5*z }
	fine := stdProblem(8, eta)
	probs := CoarsenProblems(fine, 2, FuncCoeffCoarsener(eta, nil))
	mgp, err := Build(probs, Options{
		Kinds:       op.DefaultLevelKinds(2, op.Tensor, false),
		SmoothSteps: 2,
		Blocked:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mgp.Levels[0].Blocked == nil {
		t.Fatal("fine level did not get a blocked smoother (no resident backing?)")
	}
	if err := mgp.UseBlockJacobiCoarse(1); err != nil {
		t.Fatal(err)
	}

	lev := mgp.Levels[0]
	n := lev.Op.N()
	rng := rand.New(rand.NewSource(31))
	b := la.NewVec(n)
	for i := range b {
		if !lev.Prob.BC.Mask[i] {
			b[i] = rng.NormFloat64()
		}
	}
	prm := krylov.DefaultParams()
	prm.RTol = 1e-8
	prm.MaxIt = 200

	xs := la.NewVec(n)
	resS := krylov.CG(lev.Op, mgp, b, xs, prm)
	if !resS.Converged {
		t.Fatalf("serial blocked-MG CG did not converge: %d its", resS.Iterations)
	}

	for _, pg := range [][3]int{{1, 1, 1}, {2, 2, 2}, {4, 4, 4}} {
		pg := pg
		decomps := make([]*comm.Decomp, len(mgp.Levels))
		for l, ml := range mgp.Levels {
			d, err := comm.NewDecomp(ml.Prob.DA, pg[0], pg[1], pg[2])
			if err != nil {
				t.Fatal(err)
			}
			decomps[l] = d
		}
		if err := ValidateNestedDecomps(decomps); err != nil {
			t.Fatal(err)
		}
		ranks := decomps[0].Size()
		w := comm.NewWorld(ranks)
		var mu sync.Mutex
		xd := la.NewVec(n)
		its := make([]int, ranks)
		w.Run(func(r *comm.Rank) {
			dists := rankDists(r, decomps)
			dmg, err := NewDist(mgp, dists)
			if err != nil {
				t.Error(err)
				return
			}
			if _, ok := dmg.lev[0].op.(*haloResidentOp); !ok {
				t.Errorf("rank %d: fine level is %T; want the resident halo operator", r.ID, dmg.lev[0].op)
			}
			if !dmg.lev[0].smoother.NoFinalResidual {
				t.Errorf("rank %d: distributed smoother did not elide the final residual", r.ID)
			}
			dprm := prm
			dprm.Reducer = velReducer{dists[0]}
			dprm.Exchanger = velExchanger{dists[0]}
			x := la.NewVec(n)
			res := krylov.CG(dmg.lev[0].op, dmg, b.Clone(), x, dprm)
			if !res.Converged {
				t.Errorf("rank %d: distributed CG did not converge (%d its, err %v)", r.ID, res.Iterations, res.Err)
			}
			if err := dmg.Err(); err != nil {
				t.Errorf("rank %d: %v", r.ID, err)
			}
			l := dists[0].L
			mu.Lock()
			its[r.ID] = res.Iterations
			for _, node := range l.OwnedNodes() {
				for c := 0; c < 3; c++ {
					xd[3*node+int32(c)] = x[3*node+int32(c)]
				}
			}
			mu.Unlock()
		})
		for rid, it := range its {
			if it != resS.Iterations {
				t.Fatalf("%dx%dx%d rank %d took %d iterations, serial took %d",
					pg[0], pg[1], pg[2], rid, it, resS.Iterations)
			}
		}
		diff := xd.Clone()
		diff.AXPY(-1, xs)
		if rel := diff.Norm2() / math.Max(xs.Norm2(), 1e-300); rel > 1e-10 {
			t.Fatalf("%dx%dx%d: distributed blocked solve deviates: rel %.3e", pg[0], pg[1], pg[2], rel)
		}
	}
}

// TestDistMGRejectsNonNestedDecomps: a rank grid that does not divide
// the per-level element counts evenly must be rejected up front, not
// fail mysteriously mid-cycle.
func TestDistMGRejectsNonNestedDecomps(t *testing.T) {
	eta := func(x, y, z float64) float64 { return 1 }
	fine := stdProblem(8, eta)
	probs := CoarsenProblems(fine, 2, FuncCoeffCoarsener(eta, nil))
	decomps := make([]*comm.Decomp, 2)
	for l, p := range probs {
		d, err := comm.NewDecomp(p.DA, 3, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		decomps[l] = d
	}
	if err := ValidateNestedDecomps(decomps); err == nil {
		t.Fatal("3x1x1 over 8->4 elements nests unevenly; want error")
	}
}

// velReducer/velExchanger distribute a velocity-block Krylov solve: the
// partial dot over the owned node box with a deterministic AllReduce,
// and an owner broadcast for halo consistency.
type velReducer struct{ d *comm.Dist }

func (rd velReducer) Dot(x, y la.Vec) float64 {
	return rd.d.AllReduceSum(rd.d.L.DotVel(x, y))
}

type velExchanger struct{ d *comm.Dist }

func (ex velExchanger) Consistent(x la.Vec) error { return ex.d.Broadcast(x) }

// TestDistributedCGMatchesShared: rank-collective CG on the viscous
// fine operator must follow the shared-memory iteration — same count,
// matching solution — exercising the Reducer/Exchanger plumbing and the
// overlapped halo operator outside the V-cycle context.
func TestDistributedCGMatchesShared(t *testing.T) {
	mgp, decomps := buildDistFixture(t, 8, 2, 2, 1, 2)
	lev := mgp.Levels[0]
	n := lev.Op.N()
	rng := rand.New(rand.NewSource(11))
	b := la.NewVec(n)
	for i := range b {
		if !lev.Prob.BC.Mask[i] {
			b[i] = rng.NormFloat64()
		}
	}
	prm := krylov.DefaultParams()
	prm.RTol = 1e-8
	prm.MaxIt = 400
	jac := lev.Smoother.M

	xs := la.NewVec(n)
	resS := krylov.CG(lev.Op, jac, b, xs, prm)
	if !resS.Converged {
		t.Fatalf("shared CG did not converge: %d its", resS.Iterations)
	}

	w := comm.NewWorld(decomps[0].Size())
	var mu sync.Mutex
	xd := la.NewVec(n)
	its := make([]int, decomps[0].Size())
	w.Run(func(r *comm.Rank) {
		dists := rankDists(r, decomps)
		dmg, err := NewDist(mgp, dists)
		if err != nil {
			t.Error(err)
			return
		}
		dprm := prm
		dprm.Reducer = velReducer{dists[0]}
		dprm.Exchanger = velExchanger{dists[0]}
		x := la.NewVec(n)
		res := krylov.CG(dmg.lev[0].op, jac, b.Clone(), x, dprm)
		if !res.Converged {
			t.Errorf("rank %d: distributed CG did not converge (%d its, err %v)", r.ID, res.Iterations, res.Err)
		}
		l := dists[0].L
		mu.Lock()
		its[r.ID] = res.Iterations
		for _, node := range l.OwnedNodes() {
			for c := 0; c < 3; c++ {
				xd[3*node+int32(c)] = x[3*node+int32(c)]
			}
		}
		mu.Unlock()
	})
	for rid, it := range its {
		if it != resS.Iterations {
			t.Fatalf("rank %d took %d iterations, shared took %d", rid, it, resS.Iterations)
		}
	}
	diff := xd.Clone()
	diff.AXPY(-1, xs)
	if rel := diff.Norm2() / math.Max(xs.Norm2(), 1e-300); rel > 1e-8 {
		t.Fatalf("distributed CG deviates: rel %.3e", rel)
	}
}
