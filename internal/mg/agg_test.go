package mg

import (
	"math/rand"
	"sync"
	"testing"

	"ptatin3d/internal/comm"
	"ptatin3d/internal/la"
)

// TestDistMGAggMatchesLegacy: the agglomerated coarse solve must not
// change the V-cycle at all — the same coarse problem is solved by the
// same shared solver, only on a different subset of ranks — so one
// distributed V-cycle application with coarse agglomeration onto 1, 4
// and all-ranks root subsets must match the legacy all-to-rank-0
// GatherSolveBroadcast path on every rank's owned dofs to 1e-12, on the
// nested 2x2x2 rank grid over the 8^3 -> 4^3 hierarchy.
func TestDistMGAggMatchesLegacy(t *testing.T) {
	mgp, decomps := buildDistFixture(t, 8, 2, 2, 2, 2)
	size := decomps[0].Size() // 8 ranks
	n := mgp.Levels[0].Op.N()
	rng := rand.New(rand.NewSource(19))
	b := la.NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	// apply runs one distributed V-cycle with the given coarse options
	// and assembles the owned dofs of every rank into one full vector.
	apply := func(opt DistOptions) la.Vec {
		w := comm.NewWorld(size)
		var mu sync.Mutex
		z := la.NewVec(n)
		w.Run(func(r *comm.Rank) {
			dists := rankDists(r, decomps)
			dmg, err := NewDistOpts(mgp, dists, opt)
			if err != nil {
				t.Error(err)
				return
			}
			zr := la.NewVec(n)
			dmg.Apply(b, zr)
			if err := dmg.Err(); err != nil {
				t.Errorf("rank %d: %v", r.ID, err)
			}
			l := dists[0].L
			mu.Lock()
			for _, node := range l.OwnedNodes() {
				for c := 0; c < 3; c++ {
					z[3*node+int32(c)] = zr[3*node+int32(c)]
				}
			}
			mu.Unlock()
		})
		return z
	}

	legacy := apply(DistOptions{}) // GatherSolveBroadcast to rank 0
	ref := legacy.Norm2()
	if ref == 0 {
		t.Fatal("legacy V-cycle returned zero correction")
	}
	for _, roots := range []int{1, 4, size} {
		agg, err := comm.NewAgg(size, roots)
		if err != nil {
			t.Fatalf("NewAgg(%d,%d): %v", size, roots, err)
		}
		z := apply(DistOptions{Agg: agg})
		diff := z.Clone()
		diff.AXPY(-1, legacy)
		if rel := diff.Norm2() / ref; rel > 1e-12 {
			t.Fatalf("agglomerated coarse solve (%d roots) deviates from legacy: rel %.3e", roots, rel)
		}
	}
}

// TestDistMGAggRejectsMismatchedWorld: an Agg sized for a different
// world than the decomposition's rank grid must be rejected up front.
func TestDistMGAggRejectsMismatchedWorld(t *testing.T) {
	mgp, decomps := buildDistFixture(t, 8, 2, 2, 2, 1)
	size := decomps[0].Size() // 4 ranks
	agg, err := comm.NewAgg(size+1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorld(size)
	var mu sync.Mutex
	var firstErr error
	w.Run(func(r *comm.Rank) {
		dists := rankDists(r, decomps)
		_, err := NewDistOpts(mgp, dists, DistOptions{Agg: agg})
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	})
	if firstErr == nil {
		t.Fatal("Agg sized for 5 ranks accepted on a 4-rank world; want error")
	}
}
