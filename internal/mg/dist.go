package mg

import (
	"fmt"

	"ptatin3d/internal/comm"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/op"
)

// Rank-distributed multigrid (paper §II-D + §III-C): every rank runs the
// same V-cycle on its own full-length vector copies, valid on the
// owned+ghost node region of its per-level Layout. Each level's smoother
// and residual evaluation go through a distributed operator whose halo
// exchange runs over the reliable channel layer, with interior-element
// compute overlapped with the in-flight boundary exchange (the paper's
// latency-hiding pattern). Restriction scatters each rank's owned fine
// nodes and owner-reduces the coarse partials; prolongation is entirely
// local (coarse ghost regions cover every read). The coarsest level is
// gathered to rank 0, solved with the shared coarse solver, and
// broadcast.
//
// DistMG is a per-rank view over a shared, read-only *MG hierarchy: the
// level problems, Chebyshev intervals, Jacobi diagonals and the coarse
// solver are built once by Build and shared across rank goroutines;
// only work vectors and exchange state are per rank.

// ValidateNestedDecomps checks that per-level decompositions nest: each
// level must use the same rank grid and element-range boundaries that
// halve exactly level to level, so owned node boxes nest and transfer
// operators never reach outside the ghost region. decomps[0] is finest.
func ValidateNestedDecomps(decomps []*comm.Decomp) error {
	for l := 1; l < len(decomps); l++ {
		f, c := decomps[l-1], decomps[l]
		if f.Px != c.Px || f.Py != c.Py || f.Pz != c.Pz {
			return fmt.Errorf("mg: level %d rank grid %dx%dx%d != level %d %dx%dx%d",
				l-1, f.Px, f.Py, f.Pz, l, c.Px, c.Py, c.Pz)
		}
		for r := 0; r < f.Size(); r++ {
			fi0, fi1, fj0, fj1, fk0, fk1 := f.ElementRange(r)
			ci0, ci1, cj0, cj1, ck0, ck1 := c.ElementRange(r)
			if fi0 != 2*ci0 || fi1 != 2*ci1 || fj0 != 2*cj0 || fj1 != 2*cj1 ||
				fk0 != 2*ck0 || fk1 != 2*ck1 {
				return fmt.Errorf("mg: rank %d element ranges do not nest between levels %d and %d "+
					"(every Px,Py,Pz must divide the per-level element counts)", r, l-1, l)
			}
		}
	}
	return nil
}

// distLevel is one rank's view of one hierarchy level.
type distLevel struct {
	dist     *comm.Dist
	op       krylov.Op // distributed operator (halo-exchanging)
	smoother *krylov.Chebyshev
	prob     *fem.Problem
	spans    []la.Span // velocity-dof windows of the rank's ext box
	r, e, bc la.Vec
}

// DistMG is one rank's distributed V-cycle preconditioner over a shared
// hierarchy. Build one per rank goroutine with NewDist; Apply has the
// krylov.Preconditioner signature, so it slots into the distributed
// field-split unchanged. Exchange failures cannot surface through
// Preconditioner.Apply, so they are recorded sticky: check Err after
// the solve.
//
// All per-level vector work is windowed to the rank's owned+ghost index
// spans: vectors are still allocated full length (index compatibility
// with the shared hierarchy), but only the rank's own pages are ever
// touched, keeping per-rank V-cycle work O(n/P) at 64–512 ranks.
type DistMG struct {
	base *MG
	lev  []*distLevel
	agg  *comm.Agg
	err  error
}

// DistOptions tunes a distributed V-cycle view.
type DistOptions struct {
	// Agg, when non-nil, agglomerates the coarsest-level solve onto the
	// block roots of the given layout (redundant subset solves) instead
	// of gathering everything to rank 0. Must be sized for the world.
	Agg *comm.Agg
}

// distOpErr records the first exchange failure (sticky).
func (m *DistMG) noteErr(err error) {
	if m.err == nil && err != nil {
		m.err = err
	}
}

// Err returns the first exchange error encountered by any level's
// operator, transfer or coarse collective (nil when all exchanges
// completed).
func (m *DistMG) Err() error { return m.err }

// haloTensorOp applies the level operator matrix-free over the rank's
// elements with the overlapped owner-reduce halo exchange: boundary
// elements first, exchange started, interior elements applied while the
// partials are in flight, Dirichlet identity on owned rows after the
// reduction, owner totals broadcast back to ghosts.
type haloTensorOp struct {
	mg    *DistMG
	dist  *comm.Dist
	ten   *fem.TensorOp
	mask  []bool
	spans []la.Span
}

// N returns the velocity-dof dimension.
func (o *haloTensorOp) N() int { return o.ten.N() }

// Apply computes the distributed y = A·x (valid on owned+ghost rows).
func (o *haloTensorOp) Apply(x, y la.Vec) {
	l := o.dist.L
	y.ZeroSpans(o.spans)
	o.ten.ApplyElements(l.Boundary, x, y)
	err := o.dist.ReduceBroadcast(y,
		func() { o.ten.ApplyElements(l.Interior, x, y) },
		func() { identityOwnedRows(l, o.mask, x, y) })
	o.mg.noteErr(err)
}

// haloResidentOp is haloTensorOp over the stored-coefficient resident
// kernel (TensorC/TensorF32 levels): the same fused schedule — boundary
// elements applied, exchange started, interior elements applied while the
// partials are in flight — but each element apply streams the
// precomputed 15-float-per-qp tensors instead of re-deriving metrics, so
// the overlapped interior work is the cheap kernel the blocked smoother
// uses. On TensorF32 levels the element arithmetic (and the coefficient
// stream crossing memory during the overlap window) is float32 while the
// exchanged partials stay float64.
type haloResidentOp struct {
	mg    *DistMG
	dist  *comm.Dist
	res   *fem.Resident
	mask  []bool
	spans []la.Span
}

// N returns the velocity-dof dimension.
func (o *haloResidentOp) N() int { return o.res.N() }

// Apply computes the distributed y = A·x (valid on owned+ghost rows).
func (o *haloResidentOp) Apply(x, y la.Vec) {
	l := o.dist.L
	y.ZeroSpans(o.spans)
	o.res.ApplyElements(l.Boundary, x, y)
	err := o.dist.ReduceBroadcast(y,
		func() { o.res.ApplyElements(l.Interior, x, y) },
		func() { identityOwnedRows(l, o.mask, x, y) })
	o.mg.noteErr(err)
}

// identityOwnedRows applies the Dirichlet identity y[d] = x[d] on the
// constrained rows of the rank's owned node box.
func identityOwnedRows(l *comm.Layout, mask []bool, x, y la.Vec) {
	b := l.Owned
	da := l.D.DA
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			row := (k*da.NPy + j) * da.NPx
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				d := 3 * (row + i)
				for c := 0; c < 3; c++ {
					if mask[d+c] {
						y[d+c] = x[d+c]
					}
				}
			}
		}
	}
}

// haloCSROp applies an assembled level operator row-distributed: each
// rank computes the CSR rows of its owned nodes (bit-identical to the
// serial SpMV row for row) and broadcasts owner values to ghosts. The
// ghost (Ext) region covers every column an owned row references, so no
// reduction is needed — one one-sided exchange per apply.
type haloCSROp struct {
	mg    *DistMG
	dist  *comm.Dist
	a     *la.CSR
	spans []la.Span
}

// N returns the row dimension.
func (o *haloCSROp) N() int { return o.a.NRows }

// Apply computes the distributed y = A·x.
func (o *haloCSROp) Apply(x, y la.Vec) {
	l := o.dist.L
	y.ZeroSpans(o.spans)
	b := l.Owned
	da := l.D.DA
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			row := (k*da.NPy + j) * da.NPx
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				d0 := 3 * (row + i)
				o.a.MulVecRange(x, y, d0, d0+3)
			}
		}
	}
	o.mg.noteErr(o.dist.Broadcast(y))
}

// NewDist builds rank r's distributed view of the shared hierarchy.
// dists[l] is the rank's comm handle for level l (finest first), whose
// decompositions must nest (ValidateNestedDecomps). Levels whose shared
// operator has an assembled matrix are applied row-distributed
// (haloCSROp); matrix-free levels are rediscretized per rank with the
// tensor kernel (haloTensorOp). Smoothers reuse the shared Chebyshev
// interval and Jacobi diagonal, so all ranks — and the shared solve —
// run the identical smoother recurrence.
func NewDist(base *MG, dists []*comm.Dist) (*DistMG, error) {
	return NewDistOpts(base, dists, DistOptions{})
}

// NewDistOpts is NewDist with coarse-solve agglomeration options.
func NewDistOpts(base *MG, dists []*comm.Dist, opt DistOptions) (*DistMG, error) {
	if len(dists) != len(base.Levels) {
		return nil, fmt.Errorf("mg: %d dist handles for %d levels", len(dists), len(base.Levels))
	}
	if opt.Agg != nil && len(dists) > 0 && opt.Agg.Size != dists[0].R.W.Size() {
		return nil, fmt.Errorf("mg: agglomeration sized for %d ranks on a %d-rank world",
			opt.Agg.Size, dists[0].R.W.Size())
	}
	m := &DistMG{base: base, agg: opt.Agg}
	for l, lev := range base.Levels {
		if lev.Prob == nil {
			return nil, fmt.Errorf("mg: level %d has no problem (algebraic level)", l)
		}
		dl := &distLevel{dist: dists[l], prob: lev.Prob, spans: dists[l].L.VelSpans()}
		if csr := lev.Op.CSR(); csr != nil {
			dl.op = &haloCSROp{mg: m, dist: dists[l], a: csr, spans: dl.spans}
		} else if res := op.ResidentOf(lev.Op); res != nil {
			dl.op = &haloResidentOp{mg: m, dist: dists[l],
				res: res, mask: lev.Prob.BC.Mask, spans: dl.spans}
		} else {
			dl.op = &haloTensorOp{mg: m, dist: dists[l],
				ten: fem.NewTensor(lev.Prob), mask: lev.Prob.BC.Mask, spans: dl.spans}
		}
		sm := lev.Smoother
		// The smoother's Jacobi diagonal is shared read-only; wrap it in
		// a windowed instance so the smoother's BLAS stays O(n/P) too.
		msm := sm.M
		if jac, ok := msm.(*krylov.Jacobi); ok {
			msm = &krylov.Jacobi{InvDiag: jac.InvDiag, Spans: dl.spans}
		}
		// When the shared level smooths blocked, the distributed smoother
		// elides the final residual too — identical apply counts, and the
		// elided apply never affects x, so iterates still match.
		dl.smoother = &krylov.Chebyshev{A: dl.op, M: msm, Lo: sm.Lo, Hi: sm.Hi, Steps: sm.Steps,
			Spans: dl.spans, NoFinalResidual: lev.Blocked != nil}
		n := lev.Op.N()
		dl.r, dl.e, dl.bc = la.NewVec(n), la.NewVec(n), la.NewVec(n)
		m.lev = append(m.lev, dl)
	}
	return m, nil
}

// Apply runs the distributed V-cycle preconditioner z ≈ A⁻¹·r
// (rank-collective; all ranks must call it in lockstep).
func (m *DistMG) Apply(r, z la.Vec) {
	z.ZeroSpans(m.lev[0].spans)
	for c := 0; c < max(1, m.base.CyclesPerApply); c++ {
		m.vcycle(0, r, z, c == 0)
	}
}

func (m *DistMG) vcycle(l int, b, x la.Vec, zeroGuess bool) {
	dl := m.lev[l]
	if l == len(m.lev)-1 {
		m.coarsest(l, b, x, zeroGuess)
		return
	}
	// Pre-smooth.
	dl.smoother.Smooth(b, x, zeroGuess)
	// Residual and restriction.
	dl.op.Apply(x, dl.r)
	dl.r.AYPXSpans(-1, b, dl.spans)
	next := m.lev[l+1]
	m.noteErr(distRestrict(m.base.Levels[l+1].P, dl.dist.L, next.dist, dl.r, next.bc, next.spans))
	// Coarse correction.
	gamma := m.base.Gamma
	if gamma < 1 {
		gamma = 1
	}
	next.e.ZeroSpans(next.spans)
	m.vcycle(l+1, next.bc, next.e, true)
	for g := 1; g < gamma; g++ {
		m.vcycle(l+1, next.bc, next.e, false)
	}
	distProlong(m.base.Levels[l+1].P, dl.dist.L, next.e, dl.e)
	x.AXPYSpans(1, dl.e, dl.spans)
	// Post-smooth.
	dl.smoother.Smooth(b, x, false)
}

// coarsest solves the coarsest level collectively: without an Agg
// layout, gather the right-hand side to rank 0, apply the shared
// coarse solver there, and broadcast; with one, funnel to the block
// roots and solve redundantly on each (comm.AggGatherSolveBroadcast),
// idle clients pre-zeroing the finer level's correction buffer — the
// next write target after the coarse solve — while the roots work.
func (m *DistMG) coarsest(l int, b, x la.Vec, zeroGuess bool) {
	dl := m.lev[l]
	if m.base.CoarseSolve == nil {
		dl.smoother.Smooth(b, x, zeroGuess)
		return
	}
	var overlap func()
	if l > 0 {
		finer := m.lev[l-1]
		overlap = func() { finer.e.ZeroSpans(finer.spans) }
	}
	gather := func(rhs, sol la.Vec) error {
		if m.agg != nil {
			return dl.dist.AggGatherSolveBroadcast(m.agg, rhs, sol, func() {
				// Several block roots run the shared solver redundantly
				// and concurrently; serialize (identical answers).
				m.base.coarseMu.Lock()
				m.base.CoarseSolve.Apply(rhs, sol)
				m.base.coarseMu.Unlock()
			}, overlap)
		}
		return dl.dist.GatherSolveBroadcast(rhs, sol, func() {
			m.base.CoarseSolve.Apply(rhs, sol)
		})
	}
	if zeroGuess {
		m.noteErr(gather(b, x))
		return
	}
	// Correction form for a nonzero guess (γ > 1 revisits).
	dl.op.Apply(x, dl.r)
	dl.r.AYPXSpans(-1, b, dl.spans)
	m.noteErr(gather(dl.r, dl.e))
	x.AXPYSpans(1, dl.e, dl.spans)
}

// distRestrict computes the rank's share of rc = Pᵀ·rf: scatter from
// the fine owned node box only (owned boxes partition the fine grid, so
// no contribution is counted twice), then owner-reduce the coarse
// partials and broadcast totals — the same halo pattern as an operator
// apply. Coarse constrained rows are zeroed on their owners before the
// return broadcast, mirroring the serial ApplyTranspose.
func distRestrict(p *Prolongation, fine *comm.Layout, coarse *comm.Dist, rf, rc la.Vec, cspans []la.Span) error {
	f, c := p.Fine, p.Coarse
	var cmask, fmask []bool
	if p.CoarseBC != nil {
		cmask = p.CoarseBC.Mask
	}
	if p.FineBC != nil {
		fmask = p.FineBC.Mask
	}
	// The coarse stencil of the fine owned box lies inside the coarse
	// ext box (nested decompositions), so windowed zeroing suffices.
	rc.ZeroSpans(cspans)
	b := fine.Owned
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		k0, k1, wk0, wk1 := stencil1D(k)
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			j0, j1, wj0, wj1 := stencil1D(j)
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				i0, i1, wi0, wi1 := stencil1D(i)
				fd := 3 * f.NodeID(i, j, k)
				var v [3]float64
				for a := 0; a < 3; a++ {
					if fmask != nil && fmask[fd+a] {
						v[a] = 0
					} else {
						v[a] = rf[fd+a]
					}
				}
				if v[0] == 0 && v[1] == 0 && v[2] == 0 {
					continue
				}
				add := func(ci, cj, ck int, w float64) {
					if w == 0 {
						return
					}
					cd := 3 * c.NodeID(ci, cj, ck)
					for a := 0; a < 3; a++ {
						rc[cd+a] += w * v[a]
					}
				}
				for _, kk := range [2]struct {
					idx int
					w   float64
				}{{k0, wk0}, {k1, wk1}} {
					if kk.idx < 0 {
						continue
					}
					for _, jj := range [2]struct {
						idx int
						w   float64
					}{{j0, wj0}, {j1, wj1}} {
						if jj.idx < 0 {
							continue
						}
						if i0 >= 0 {
							add(i0, jj.idx, kk.idx, wi0*jj.w*kk.w)
						}
						if i1 >= 0 {
							add(i1, jj.idx, kk.idx, wi1*jj.w*kk.w)
						}
					}
				}
			}
		}
	}
	fixup := func() {
		if cmask == nil {
			return
		}
		cb := coarse.L.Owned
		for k := cb.Lo[2]; k < cb.Hi[2]; k++ {
			for j := cb.Lo[1]; j < cb.Hi[1]; j++ {
				row := (k*c.NPy + j) * c.NPx
				for i := cb.Lo[0]; i < cb.Hi[0]; i++ {
					d := 3 * (row + i)
					for a := 0; a < 3; a++ {
						if cmask[d+a] {
							rc[d+a] = 0
						}
					}
				}
			}
		}
	}
	return coarse.ReduceBroadcast(rc, nil, fixup)
}

// distProlong computes uf = P·uc over the rank's extended (owned+ghost)
// fine node box. Every coarse node it reads lies inside the coarse
// extended box — nested decompositions guarantee it — so prolongation
// needs no communication at all.
func distProlong(p *Prolongation, fine *comm.Layout, uc, uf la.Vec) {
	f, c := p.Fine, p.Coarse
	var cmask, fmask []bool
	if p.CoarseBC != nil {
		cmask = p.CoarseBC.Mask
	}
	if p.FineBC != nil {
		fmask = p.FineBC.Mask
	}
	// No zeroing: the loop below assigns every node of the ext box, and
	// entries outside it are never read on the windowed path.
	b := fine.Ext
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		k0, k1, wk0, wk1 := stencil1D(k)
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			j0, j1, wj0, wj1 := stencil1D(j)
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				i0, i1, wi0, wi1 := stencil1D(i)
				fd := 3 * f.NodeID(i, j, k)
				var v [3]float64
				acc := func(ci, cj, ck int, w float64) {
					if w == 0 {
						return
					}
					cd := 3 * c.NodeID(ci, cj, ck)
					for a := 0; a < 3; a++ {
						if cmask != nil && cmask[cd+a] {
							continue
						}
						v[a] += w * uc[cd+a]
					}
				}
				for _, kk := range [2]struct {
					idx int
					w   float64
				}{{k0, wk0}, {k1, wk1}} {
					if kk.idx < 0 {
						continue
					}
					for _, jj := range [2]struct {
						idx int
						w   float64
					}{{j0, wj0}, {j1, wj1}} {
						if jj.idx < 0 {
							continue
						}
						if i0 >= 0 {
							acc(i0, jj.idx, kk.idx, wi0*jj.w*kk.w)
						}
						if i1 >= 0 {
							acc(i1, jj.idx, kk.idx, wi1*jj.w*kk.w)
						}
					}
				}
				for a := 0; a < 3; a++ {
					if fmask != nil && fmask[fd+a] {
						uf[fd+a] = 0
					} else {
						uf[fd+a] = v[a]
					}
				}
			}
		}
	}
}
