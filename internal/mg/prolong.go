// Package mg implements the geometric multigrid preconditioner of paper
// §III-C for the viscous block: nodally nested mesh hierarchies,
// prolongation by trilinear interpolation on the embedded Q1 space of the
// Q2 node grid, restriction as its transpose, coarse operators by
// rediscretization or Galerkin projection, Chebyshev/Jacobi smoothing and
// a pluggable coarse-grid solver (block-Jacobi+LU, inner Krylov, or the
// smoothed-aggregation AMG of package amg).
package mg

import (
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/par"
)

// Prolongation interpolates a 3-component velocity field from a coarse
// mesh to the next finer mesh of a nodally nested hierarchy. Fine nodes
// with even grid indices coincide with coarse nodes (weight 1); odd
// indices average the two neighbouring coarse nodes (weight ½ each) —
// trilinear interpolation of the embedded Q1 space (paper §III-C).
// Dirichlet-constrained rows (fine) and columns (coarse) are zeroed so the
// hierarchy acts on the free space.
type Prolongation struct {
	Fine, Coarse     *mesh.DA
	FineBC, CoarseBC *mesh.BC
	Workers          int
}

// NewProlongation wires a prolongation between the two meshes. BCs may be
// nil for an unconstrained transfer.
func NewProlongation(fine, coarse *mesh.DA, fbc, cbc *mesh.BC) *Prolongation {
	if fine.NPx != 2*coarse.NPx-1 || fine.NPy != 2*coarse.NPy-1 || fine.NPz != 2*coarse.NPz-1 {
		panic("mg: meshes are not a nested pair")
	}
	return &Prolongation{Fine: fine, Coarse: coarse, FineBC: fbc, CoarseBC: cbc, Workers: 1}
}

// stencil1D returns the coarse indices and weights interpolating fine
// index i in one direction.
func stencil1D(i int) (i0, i1 int, w0, w1 float64) {
	if i%2 == 0 {
		return i / 2, -1, 1, 0
	}
	return (i - 1) / 2, (i + 1) / 2, 0.5, 0.5
}

// Apply computes uf = P·uc.
func (p *Prolongation) Apply(uc, uf la.Vec) {
	f, c := p.Fine, p.Coarse
	if len(uc) != c.NVelDOF() || len(uf) != f.NVelDOF() {
		panic("mg: prolongation length mismatch")
	}
	var cmask, fmask []bool
	if p.CoarseBC != nil {
		cmask = p.CoarseBC.Mask
	}
	if p.FineBC != nil {
		fmask = p.FineBC.Mask
	}
	par.ForItems(p.Workers, f.NPz, func(k int) {
		k0, k1, wk0, wk1 := stencil1D(k)
		for j := 0; j < f.NPy; j++ {
			j0, j1, wj0, wj1 := stencil1D(j)
			for i := 0; i < f.NPx; i++ {
				i0, i1, wi0, wi1 := stencil1D(i)
				fd := 3 * f.NodeID(i, j, k)
				var v [3]float64
				acc := func(ci, cj, ck int, w float64) {
					if w == 0 {
						return
					}
					cd := 3 * c.NodeID(ci, cj, ck)
					for a := 0; a < 3; a++ {
						if cmask != nil && cmask[cd+a] {
							continue
						}
						v[a] += w * uc[cd+a]
					}
				}
				for _, kk := range [2]struct {
					idx int
					w   float64
				}{{k0, wk0}, {k1, wk1}} {
					if kk.idx < 0 {
						continue
					}
					for _, jj := range [2]struct {
						idx int
						w   float64
					}{{j0, wj0}, {j1, wj1}} {
						if jj.idx < 0 {
							continue
						}
						if i0 >= 0 {
							acc(i0, jj.idx, kk.idx, wi0*jj.w*kk.w)
						}
						if i1 >= 0 {
							acc(i1, jj.idx, kk.idx, wi1*jj.w*kk.w)
						}
					}
				}
				for a := 0; a < 3; a++ {
					if fmask != nil && fmask[fd+a] {
						uf[fd+a] = 0
					} else {
						uf[fd+a] = v[a]
					}
				}
			}
		}
	})
}

// ApplyTranspose computes rc = Pᵀ·rf (restriction, paper §III-C:
// R = Pᵀ).
func (p *Prolongation) ApplyTranspose(rf, rc la.Vec) {
	f, c := p.Fine, p.Coarse
	if len(rc) != c.NVelDOF() || len(rf) != f.NVelDOF() {
		panic("mg: restriction length mismatch")
	}
	var cmask, fmask []bool
	if p.CoarseBC != nil {
		cmask = p.CoarseBC.Mask
	}
	if p.FineBC != nil {
		fmask = p.FineBC.Mask
	}
	rc.Zero()
	// Scatter-add form; serialized over z-slabs in parallel requires care,
	// so restriction runs sequentially per z-plane pair (cheap relative to
	// smoothing).
	for k := 0; k < f.NPz; k++ {
		k0, k1, wk0, wk1 := stencil1D(k)
		for j := 0; j < f.NPy; j++ {
			j0, j1, wj0, wj1 := stencil1D(j)
			for i := 0; i < f.NPx; i++ {
				i0, i1, wi0, wi1 := stencil1D(i)
				fd := 3 * f.NodeID(i, j, k)
				var v [3]float64
				masked := false
				for a := 0; a < 3; a++ {
					if fmask != nil && fmask[fd+a] {
						v[a] = 0
						masked = true
					} else {
						v[a] = rf[fd+a]
					}
				}
				if v[0] == 0 && v[1] == 0 && v[2] == 0 && !masked {
					continue
				}
				add := func(ci, cj, ck int, w float64) {
					if w == 0 {
						return
					}
					cd := 3 * c.NodeID(ci, cj, ck)
					for a := 0; a < 3; a++ {
						rc[cd+a] += w * v[a]
					}
				}
				for _, kk := range [2]struct {
					idx int
					w   float64
				}{{k0, wk0}, {k1, wk1}} {
					if kk.idx < 0 {
						continue
					}
					for _, jj := range [2]struct {
						idx int
						w   float64
					}{{j0, wj0}, {j1, wj1}} {
						if jj.idx < 0 {
							continue
						}
						if i0 >= 0 {
							add(i0, jj.idx, kk.idx, wi0*jj.w*kk.w)
						}
						if i1 >= 0 {
							add(i1, jj.idx, kk.idx, wi1*jj.w*kk.w)
						}
					}
				}
			}
		}
	}
	if cmask != nil {
		for d, m := range cmask {
			if m {
				rc[d] = 0
			}
		}
	}
}

// ToCSR materializes the prolongation as a sparse matrix (fine dofs ×
// coarse dofs) for Galerkin triple products. Constrained fine rows and
// coarse columns are dropped.
func (p *Prolongation) ToCSR() *la.CSR {
	f, c := p.Fine, p.Coarse
	b := la.NewBuilder(f.NVelDOF(), c.NVelDOF())
	var cmask, fmask []bool
	if p.CoarseBC != nil {
		cmask = p.CoarseBC.Mask
	}
	if p.FineBC != nil {
		fmask = p.FineBC.Mask
	}
	for k := 0; k < f.NPz; k++ {
		k0, k1, wk0, wk1 := stencil1D(k)
		for j := 0; j < f.NPy; j++ {
			j0, j1, wj0, wj1 := stencil1D(j)
			for i := 0; i < f.NPx; i++ {
				i0, i1, wi0, wi1 := stencil1D(i)
				fd := 3 * f.NodeID(i, j, k)
				ent := func(ci, cj, ck int, w float64) {
					if w == 0 {
						return
					}
					cd := 3 * c.NodeID(ci, cj, ck)
					for a := 0; a < 3; a++ {
						if fmask != nil && fmask[fd+a] {
							continue
						}
						if cmask != nil && cmask[cd+a] {
							continue
						}
						b.Add(fd+a, cd+a, w)
					}
				}
				for _, kk := range [2]struct {
					idx int
					w   float64
				}{{k0, wk0}, {k1, wk1}} {
					if kk.idx < 0 {
						continue
					}
					for _, jj := range [2]struct {
						idx int
						w   float64
					}{{j0, wj0}, {j1, wj1}} {
						if jj.idx < 0 {
							continue
						}
						if i0 >= 0 {
							ent(i0, jj.idx, kk.idx, wi0*jj.w*kk.w)
						}
						if i1 >= 0 {
							ent(i1, jj.idx, kk.idx, wi1*jj.w*kk.w)
						}
					}
				}
			}
		}
	}
	return b.ToCSR()
}
