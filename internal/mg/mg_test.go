package mg

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/op"
)

func buildPair(t *testing.T, m int) (fine, coarse *mesh.DA) {
	t.Helper()
	fine = mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	coarse = fine.Coarsen()
	return
}

func TestProlongationReproducesLinear(t *testing.T) {
	fine, coarse := buildPair(t, 4)
	p := NewProlongation(fine, coarse, nil, nil)
	uc := la.NewVec(coarse.NVelDOF())
	for n := 0; n < coarse.NNodes(); n++ {
		x, y, z := coarse.NodeCoords(n)
		uc[3*n] = 1 + 2*x - y
		uc[3*n+1] = 3*z + x
		uc[3*n+2] = -y + 0.5*z
	}
	uf := la.NewVec(fine.NVelDOF())
	p.Apply(uc, uf)
	for n := 0; n < fine.NNodes(); n++ {
		x, y, z := fine.NodeCoords(n)
		want := [3]float64{1 + 2*x - y, 3*z + x, -y + 0.5*z}
		for a := 0; a < 3; a++ {
			if math.Abs(uf[3*n+a]-want[a]) > 1e-13 {
				t.Fatalf("node %d comp %d: %v want %v", n, a, uf[3*n+a], want[a])
			}
		}
	}
}

func TestProlongationAdjoint(t *testing.T) {
	fine, coarse := buildPair(t, 4)
	fbc := mesh.NewBC(fine)
	fbc.FreeSlipBox(fine, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	cbc := mesh.CoarsenBC(fine, coarse, fbc)
	p := NewProlongation(fine, coarse, fbc, cbc)
	rng := rand.New(rand.NewSource(1))
	uc := la.NewVec(coarse.NVelDOF())
	rf := la.NewVec(fine.NVelDOF())
	for i := range uc {
		uc[i] = rng.NormFloat64()
	}
	for i := range rf {
		rf[i] = rng.NormFloat64()
	}
	puc := la.NewVec(fine.NVelDOF())
	p.Apply(uc, puc)
	ptr := la.NewVec(coarse.NVelDOF())
	p.ApplyTranspose(rf, ptr)
	d1 := puc.Dot(rf)
	d2 := uc.Dot(ptr)
	if math.Abs(d1-d2) > 1e-10*(1+math.Abs(d1)) {
		t.Fatalf("<Pu,r>=%v != <u,Pᵀr>=%v", d1, d2)
	}
}

// TestProlongationAdjointRandomized is the property-style version of the
// transpose check: over random mesh shapes, deformations and constraint
// patterns, restriction must remain the exact adjoint of prolongation
// (⟨P·x, y⟩ == ⟨x, Pᵀ·y⟩ for random x, y) — the structural property the
// Galerkin coarse operator's symmetry rests on.
func TestProlongationAdjointRandomized(t *testing.T) {
	faces := []mesh.Face{mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax}
	normal := []int{0, 0, 1, 1, 2, 2}
	for _, seed := range []int64{11, 22, 33, 44} {
		rng := rand.New(rand.NewSource(seed))
		mx, my, mz := 2*(1+rng.Intn(2)), 2*(1+rng.Intn(2)), 2*(1+rng.Intn(2))
		fine := mesh.New(mx, my, mz, 0, 1, 0, 1, 0, 1)
		a1 := 0.05 * rng.Float64()
		a2 := 0.05 * rng.Float64()
		fine.Deform(func(x, y, z float64) (float64, float64, float64) {
			return x + a1*math.Sin(math.Pi*y), y + a2*math.Sin(math.Pi*z), z + 0.02*x*y
		})
		coarse := fine.Coarsen()
		fbc := mesh.NewBC(fine)
		for i, f := range faces {
			switch rng.Intn(3) {
			case 1:
				fbc.SetFaceComponent(fine, f, normal[i], 0)
			case 2:
				for c := 0; c < 3; c++ {
					fbc.SetFaceComponent(fine, f, c, 0)
				}
			}
		}
		cbc := mesh.CoarsenBC(fine, coarse, fbc)
		p := NewProlongation(fine, coarse, fbc, cbc)
		for trial := 0; trial < 3; trial++ {
			uc := la.NewVec(coarse.NVelDOF())
			rf := la.NewVec(fine.NVelDOF())
			for i := range uc {
				uc[i] = rng.NormFloat64()
			}
			for i := range rf {
				rf[i] = rng.NormFloat64()
			}
			puc := la.NewVec(fine.NVelDOF())
			p.Apply(uc, puc)
			ptr := la.NewVec(coarse.NVelDOF())
			p.ApplyTranspose(rf, ptr)
			d1 := puc.Dot(rf)
			d2 := uc.Dot(ptr)
			if math.Abs(d1-d2) > 1e-10*(1+math.Abs(d1)) {
				t.Fatalf("seed %d trial %d (%dx%dx%d): <Pu,r>=%v != <u,Pᵀr>=%v",
					seed, trial, mx, my, mz, d1, d2)
			}
		}
	}
}

func TestProlongationCSRMatchesApply(t *testing.T) {
	fine, coarse := buildPair(t, 2)
	fbc := mesh.NewBC(fine)
	fbc.FreeSlipBox(fine, mesh.XMin, mesh.YMax)
	cbc := mesh.CoarsenBC(fine, coarse, fbc)
	p := NewProlongation(fine, coarse, fbc, cbc)
	pm := p.ToCSR()
	rng := rand.New(rand.NewSource(2))
	uc := la.NewVec(coarse.NVelDOF())
	for i := range uc {
		uc[i] = rng.NormFloat64()
	}
	cbc.ZeroConstrained(uc)
	y1 := la.NewVec(fine.NVelDOF())
	p.Apply(uc, y1)
	y2 := la.NewVec(fine.NVelDOF())
	pm.MulVec(uc, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-13 {
			t.Fatalf("CSR prolongation mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

// stdProblem builds a free-slip box problem with the given viscosity.
func stdProblem(m int, eta func(x, y, z float64) float64) *fem.Problem {
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax)
	p := fem.NewProblem(da, bc)
	p.SetCoefficientsFunc(eta, nil)
	return p
}

func mgSolveIterations(t *testing.T, m, levels int, eta func(x, y, z float64) float64, kinds []op.Kind) int {
	if levels != len(kinds) {
		t.Fatalf("mgSolveIterations: %d kinds for %d levels", len(kinds), levels)
	}
	return mgSolveIterationsOpt(t, m, eta, Options{Kinds: kinds, SmoothSteps: 2})
}

func mgSolveIterationsOpt(t *testing.T, m int, eta func(x, y, z float64) float64, opt Options) int {
	t.Helper()
	fine := stdProblem(m, eta)
	probs := CoarsenProblems(fine, len(opt.Kinds), FuncCoeffCoarsener(eta, nil))
	mgp, err := Build(probs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgp.UseBlockJacobiCoarse(1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := fine.DA.NVelDOF()
	b := la.NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	fine.BC.ZeroConstrained(b)
	x := la.NewVec(n)
	fineOp := fem.NewTensor(fine)
	prm := krylov.DefaultParams()
	prm.RTol = 1e-8
	prm.MaxIt = 100
	res := krylov.FGMRES(fineOp, mgp, b, x, prm)
	if !res.Converged {
		t.Fatalf("MG-FGMRES did not converge in %d its (res %.3e)", res.Iterations, res.Residual/res.Residual0)
	}
	return res.Iterations
}

// TestMGConvergesConstantViscosity: the core multigrid sanity check.
func TestMGConvergesConstantViscosity(t *testing.T) {
	one := func(x, y, z float64) float64 { return 1 }
	its := mgSolveIterations(t, 8, 3, one, []op.Kind{op.Tensor, op.Assembled, op.Galerkin})
	if its > 30 {
		t.Fatalf("constant-viscosity MG took %d iterations", its)
	}
}

// TestMGHIndependence: iteration counts must grow only mildly with mesh
// refinement (the multigrid property).
func TestMGHIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	one := func(x, y, z float64) float64 { return 1 }
	kinds := []op.Kind{op.Tensor, op.Assembled, op.Galerkin}
	it8 := mgSolveIterations(t, 8, 3, one, kinds)
	it16 := mgSolveIterations(t, 16, 3, one, kinds)
	if it16 > it8+10 {
		t.Fatalf("iterations grew from %d (8³) to %d (16³)", it8, it16)
	}
}

// TestMGVariableViscosity: smooth contrast of 10⁴ must still converge.
func TestMGVariableViscosity(t *testing.T) {
	eta := func(x, y, z float64) float64 {
		return math.Pow(10, 4*math.Sin(math.Pi*x)*math.Sin(math.Pi*y)*math.Sin(math.Pi*z))
	}
	its := mgSolveIterations(t, 8, 3, eta, []op.Kind{op.Tensor, op.Assembled, op.Galerkin})
	if its > 60 {
		t.Fatalf("variable-viscosity MG took %d iterations", its)
	}
}

// TestMGKindsEquivalent: matrix-free fine level and assembled fine level
// must produce (nearly) identical preconditioners.
func TestMGKindsEquivalent(t *testing.T) {
	one := func(x, y, z float64) float64 { return 1 + x + y*z }
	itMF := mgSolveIterations(t, 8, 2, one, []op.Kind{op.Tensor, op.Assembled})
	itAsm := mgSolveIterations(t, 8, 2, one, []op.Kind{op.Assembled, op.Assembled})
	itRef := mgSolveIterations(t, 8, 2, one, []op.Kind{op.MFRef, op.Assembled})
	if abs(itMF-itAsm) > 2 || abs(itMF-itRef) > 2 {
		t.Fatalf("kind-dependent convergence: MF %d, Asm %d, Ref %d", itMF, itAsm, itRef)
	}
}

// TestGalerkinVsRediscretized (ablation): both coarse-operator definitions
// must yield a convergent cycle with similar counts on a smooth problem.
func TestGalerkinVsRediscretized(t *testing.T) {
	eta := func(x, y, z float64) float64 { return math.Exp(2 * math.Sin(3*x) * math.Cos(2*y)) }
	itGal := mgSolveIterations(t, 8, 3, eta, []op.Kind{op.Tensor, op.Assembled, op.Galerkin})
	itRed := mgSolveIterations(t, 8, 3, eta, []op.Kind{op.Tensor, op.Assembled, op.Assembled})
	if itGal > 60 || itRed > 60 {
		t.Fatalf("Galerkin %d, rediscretized %d iterations", itGal, itRed)
	}
}

// TestVCycleContracts: plain V-cycle iteration (Richardson) reduces the
// residual by a healthy factor per cycle.
func TestVCycleContracts(t *testing.T) {
	one := func(x, y, z float64) float64 { return 1 }
	fine := stdProblem(8, one)
	probs := CoarsenProblems(fine, 3, FuncCoeffCoarsener(one, nil))
	mgp, err := Build(probs, Options{
		Kinds:       []op.Kind{op.Tensor, op.Assembled, op.Galerkin},
		SmoothSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgp.UseBlockJacobiCoarse(1); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	n := fine.DA.NVelDOF()
	b := la.NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	fine.BC.ZeroConstrained(b)
	fineOp := fem.NewTensor(fine)
	x := la.NewVec(n)
	r := la.NewVec(n)
	norm := func() float64 {
		fineOp.Apply(x, r)
		r.AYPX(-1, b)
		return r.Norm2()
	}
	r0 := norm()
	mgp.VCycle(b, x)
	r1 := norm()
	mgp.VCycle(b, x)
	r2 := norm()
	if r1 > 0.4*r0 || r2 > 0.4*r1 {
		t.Fatalf("V-cycle contraction weak: %v -> %v -> %v", r0, r1, r2)
	}
}

// TestVertexCoeffCoarsener: vertex fields restrict by injection and land
// at the quadrature points of every level.
func TestVertexCoeffCoarsener(t *testing.T) {
	fine := stdProblem(4, nil)
	etaV := make([]float64, fine.DA.NVertices())
	for v := range etaV {
		i, j, k := fine.DA.VertexIJK(v)
		etaV[v] = 1 + float64(i+j+k)
	}
	fine.SetCoefficientsVertex(etaV, nil)
	probs := CoarsenProblems(fine, 2, VertexCoeffCoarsener(fine.DA, etaV, nil))
	coarse := probs[1]
	// Coarse vertex (1,1,1) should carry fine vertex (2,2,2)'s value 7;
	// the centre quadrature point of coarse element (0,0,0)... check the
	// coarse qp field is within the fine field's range instead.
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range coarse.Eta {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min < 1 || max > 13 {
		t.Fatalf("coarse qp viscosity range [%v,%v] outside fine vertex range [1,13]", min, max)
	}
}

// TestVertexCoeffCoarsenerReusable: the coarsener closure must restart
// from the fine grid on every new descent. It used to carry the previous
// hierarchy's coarsest state across calls, so any second CoarsenProblems
// with the same closure restricted from a mismatched DA and produced
// garbage coefficients (NaN solves on solver re-use).
func TestVertexCoeffCoarsenerReusable(t *testing.T) {
	fine := stdProblem(8, nil)
	etaV := make([]float64, fine.DA.NVertices())
	for v := range etaV {
		i, j, k := fine.DA.VertexIJK(v)
		etaV[v] = 1 + float64(i)*0.3 + float64(j)*0.2 + float64(k)*0.1
	}
	fine.SetCoefficientsVertex(etaV, nil)
	coarsen := VertexCoeffCoarsener(fine.DA, etaV, nil)
	first := CoarsenProblems(fine, 3, coarsen)
	second := CoarsenProblems(fine, 3, coarsen)
	for l := 1; l < 3; l++ {
		a, b := first[l].Eta, second[l].Eta
		if len(a) != len(b) {
			t.Fatalf("level %d: qp count changed across reuse: %d vs %d", l, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("level %d qp %d: coarsener not reusable: %v vs %v", l, i, a[i], b[i])
			}
		}
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// TestWCycle (ablation): the W-cycle (Gamma=2) converges but does NOT
// pay off with Chebyshev smoothing on [0.2λ, 1.1λ]: error modes between
// the coarse grid's reach and the lower Chebyshev bound are amplified by
// every extra coarse-level visit (the Chebyshev residual polynomial
// exceeds 1 below the target interval), so γ=2 typically needs MORE outer
// iterations than γ=1 — which is why the paper (and PETSc's defaults)
// pair Chebyshev smoothers exclusively with V-cycles. The test pins the
// qualitative behaviour: both converge, W within a small factor of V.
func TestWCycle(t *testing.T) {
	eta := func(x, y, z float64) float64 {
		return math.Pow(10, 2*math.Sin(math.Pi*x)*math.Sin(math.Pi*y))
	}
	kinds := []op.Kind{op.Tensor, op.Assembled, op.Galerkin}
	run := func(gamma int) int {
		fine := stdProblem(8, eta)
		probs := CoarsenProblems(fine, 3, FuncCoeffCoarsener(eta, nil))
		mgp, err := Build(probs, Options{Kinds: kinds, SmoothSteps: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgp.UseBlockJacobiCoarse(1); err != nil {
			t.Fatal(err)
		}
		mgp.Gamma = gamma
		rng := rand.New(rand.NewSource(11))
		n := fine.DA.NVelDOF()
		b := la.NewVec(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		fine.BC.ZeroConstrained(b)
		x := la.NewVec(n)
		prm := krylov.DefaultParams()
		prm.RTol = 1e-8
		prm.MaxIt = 200
		res := krylov.FGMRES(fem.NewTensor(fine), mgp, b, x, prm)
		if !res.Converged {
			t.Fatalf("gamma=%d did not converge", gamma)
		}
		return res.Iterations
	}
	itV := run(1)
	itW := run(2)
	if itW > 5*itV {
		t.Fatalf("W-cycle diverging: %d its vs V-cycle %d", itW, itV)
	}
}

// TestMGBlockedVCycleBitIdentical: a Blocked hierarchy's V-cycle must be
// bit-identical to the same hierarchy smoothing unblocked with the final
// residual elided — the cache blocking reorders work, never arithmetic.
func TestMGBlockedVCycleBitIdentical(t *testing.T) {
	eta := func(x, y, z float64) float64 { return 1 + 8*x*z + 3*y }
	kinds := []op.Kind{op.TensorC, op.TensorC, op.Assembled}
	build := func(blocked bool) *MG {
		fine := stdProblem(8, eta)
		probs := CoarsenProblems(fine, 3, FuncCoeffCoarsener(eta, nil))
		mgp, err := Build(probs, Options{Kinds: kinds, SmoothSteps: 2, Workers: 4, Blocked: blocked})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgp.UseBlockJacobiCoarse(1); err != nil {
			t.Fatal(err)
		}
		return mgp
	}
	blocked := build(true)
	for l := 0; l < 2; l++ {
		if blocked.Levels[l].Blocked == nil {
			t.Fatalf("level %d of the blocked hierarchy has no blocked smoother", l)
		}
	}
	plain := build(false)
	for l := 0; l < 2; l++ {
		plain.Levels[l].Smoother.NoFinalResidual = true
	}

	n := blocked.Levels[0].Op.N()
	rng := rand.New(rand.NewSource(19))
	b := la.NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	zb, zp := la.NewVec(n), la.NewVec(n)
	blocked.Apply(b, zb)
	plain.Apply(b, zp)
	for i := 0; i < n; i++ {
		if zb[i] != zp[i] {
			t.Fatalf("dof %d differs bitwise: %x vs %x (Δ=%.3e)",
				i, math.Float64bits(zb[i]), math.Float64bits(zp[i]), zb[i]-zp[i])
		}
	}
}

// TestMGF32Converges: the float32 blocked hierarchy is a legitimate
// preconditioner — under outer (double-precision, flexible) FGMRES it
// must converge within 3 iterations of the float64 hierarchy on a 10⁴
// viscosity contrast, and the mid-level must actually run reduced
// precision (AssembledF32 handing its float64 matrix to the Galerkin
// level below).
func TestMGF32Converges(t *testing.T) {
	eta := func(x, y, z float64) float64 {
		return math.Pow(10, 4*math.Sin(math.Pi*x)*math.Sin(math.Pi*y)*math.Sin(math.Pi*z))
	}
	kinds := []op.Kind{op.Tensor, op.Assembled, op.Galerkin}
	it64 := mgSolveIterationsOpt(t, 8, eta, Options{Kinds: kinds, SmoothSteps: 2, Blocked: true})
	it32 := mgSolveIterationsOpt(t, 8, eta, Options{Kinds: kinds, SmoothSteps: 2, Blocked: true, Precision: op.F32})
	if d := abs(it64 - it32); d > 3 {
		t.Fatalf("f32 hierarchy took %d iterations, f64 took %d (|Δ|=%d > 3)", it32, it64, d)
	}

	fine := stdProblem(8, eta)
	probs := CoarsenProblems(fine, 3, FuncCoeffCoarsener(eta, nil))
	mgp, err := Build(probs, Options{Kinds: kinds, SmoothSteps: 2, Blocked: true, Precision: op.F32})
	if err != nil {
		t.Fatal(err)
	}
	if k := mgp.Levels[0].Op.Kind(); k != op.TensorF32 {
		t.Fatalf("fine level kind %v; want TensorF32", k)
	}
	if k := mgp.Levels[1].Op.Kind(); k != op.AssembledF32 {
		t.Fatalf("mid level kind %v; want AssembledF32", k)
	}
	if mgp.Levels[0].Blocked == nil {
		t.Fatal("f32 fine level has no blocked smoother")
	}
	if r := op.ResidentOf(mgp.Levels[0].Op); r == nil || !r.F32 {
		t.Fatal("f32 fine level is not backed by an f32 resident")
	}
	if mgp.Levels[2].Op.CSR() == nil {
		t.Fatal("coarsest level lost its float64 matrix")
	}
}
