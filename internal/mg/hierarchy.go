package mg

import (
	"ptatin3d/internal/fem"
	"ptatin3d/internal/mesh"
)

// CoarsenProblems builds the nlevels-deep hierarchy of discretizations
// under fine (index 0 = finest). Meshes coarsen geometrically with nodally
// nested coordinates; boundary constraints are inherited by injection.
// setCoeff fills each coarse level's coefficients (level index ≥ 1) —
// typically by re-evaluating a viscosity function on the coarse mesh
// (rediscretization) or by injecting the projected material-point vertex
// fields (see mesh.InjectVertexScalar). If setCoeff is nil the coarse
// coefficients default to injection of nothing (η=1, ρ=0).
func CoarsenProblems(fine *fem.Problem, nlevels int, setCoeff func(level int, p *fem.Problem)) []*fem.Problem {
	probs := make([]*fem.Problem, nlevels)
	probs[0] = fine
	for l := 1; l < nlevels; l++ {
		prev := probs[l-1]
		cda := prev.DA.Coarsen()
		cbc := mesh.CoarsenBC(prev.DA, cda, prev.BC)
		p := fem.NewProblem(cda, cbc)
		p.Workers = prev.Workers
		p.Gravity = prev.Gravity
		if setCoeff != nil {
			setCoeff(l, p)
		}
		probs[l] = p
	}
	return probs
}

// VertexCoeffCoarsener returns a setCoeff callback for CoarsenProblems
// that restricts vertex-grid viscosity/density fields down the hierarchy
// by full weighting and installs them at the quadrature points of each
// level — the rediscretization path used when coefficients come from the
// material-point projection. Full weighting stands in for re-projecting
// the material points onto each coarse level (paper §II-C); plain
// injection subsamples high-contrast fields and measurably degrades
// multigrid convergence (see the Δη robustness tests). etaV/rhoV live on
// the finest vertex grid; pass nil to skip a field. Viscosity is averaged
// arithmetically; density likewise.
func VertexCoeffCoarsener(fineDA *mesh.DA, etaV, rhoV []float64) func(level int, p *fem.Problem) {
	prevDA := fineDA
	prevEta, prevRho := etaV, rhoV
	return func(level int, p *fem.Problem) {
		if level <= 1 {
			// A new descent (CoarsenProblems starts at level 1): restart
			// from the fine grid so the closure is reusable across
			// hierarchy builds instead of restricting from the previous
			// hierarchy's coarsest level.
			prevDA, prevEta, prevRho = fineDA, etaV, rhoV
		}
		var ce, cr []float64
		if prevEta != nil {
			ce = make([]float64, p.DA.NVertices())
			mesh.RestrictVertexFW(prevDA, p.DA, prevEta, ce, false)
		}
		if prevRho != nil {
			cr = make([]float64, p.DA.NVertices())
			mesh.RestrictVertexFW(prevDA, p.DA, prevRho, cr, false)
		}
		p.SetCoefficientsVertex(ce, cr)
		prevDA, prevEta, prevRho = p.DA, ce, cr
	}
}

// FuncCoeffCoarsener returns a setCoeff callback that re-evaluates
// pointwise coefficient functions on each coarse level (exact
// rediscretization).
func FuncCoeffCoarsener(eta, rho func(x, y, z float64) float64) func(level int, p *fem.Problem) {
	return func(level int, p *fem.Problem) {
		p.SetCoefficientsFunc(eta, rho)
	}
}
