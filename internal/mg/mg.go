package mg

import (
	"fmt"
	"sync"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/op"
	"ptatin3d/internal/telemetry"
)

// Level is one rung of the multigrid hierarchy. The operator is an
// internal/op representation; which one (matrix-free, assembled,
// Galerkin, runtime-selected) is entirely op's concern — this package
// never dispatches on it.
type Level struct {
	Prob     *fem.Problem // discretization (nil only if purely algebraic)
	Op       op.Operator
	Smoother *krylov.Chebyshev
	// Blocked, when non-nil, replaces Smoother in the cycle with the
	// cache-blocked wavefront Chebyshev over the operator's resident
	// backing. It computes bit-identical iterates (the unblocked
	// recurrence with the final residual elided), so swapping it in is a
	// pure performance substitution.
	Blocked *fem.BlockedChebyshev
	P       *Prolongation // transfer from the next-coarser level (nil on coarsest)

	r, e, bc la.Vec // work vectors
}

// smooth runs the level's smoother, preferring the blocked variant.
func (lev *Level) smooth(b, x la.Vec, zeroGuess bool) {
	if lev.Blocked != nil {
		lev.Blocked.Smooth(b, x, zeroGuess)
		return
	}
	lev.Smoother.Smooth(b, x, zeroGuess)
}

// MG is a geometric multigrid V-cycle preconditioner for the viscous
// block. Levels[0] is finest. CoarseSolve is applied on the coarsest
// level; typical choices are an amg.SA V-cycle (the paper's GAMG coarse
// solver), krylov.BlockJacobi, or an InnerKrylov CG+ASM solve (rifting
// configuration).
type MG struct {
	Levels      []*Level
	CoarseSolve krylov.Preconditioner
	// CyclesPerApply applies the cycle this many times per preconditioner
	// application (1 in all paper configurations).
	CyclesPerApply int
	// Gamma is the cycle index: 1 = V-cycle (the paper's choice),
	// 2 = W-cycle (each level recurses twice). Exposed for ablations;
	// note that with Chebyshev smoothing on [0.2λ, 1.1λ] the W-cycle
	// AMPLIFIES modes between the coarse grid's reach and the lower
	// Chebyshev bound on every extra visit, so V-cycles are the right
	// production pairing (see TestWCycle).
	Gamma int

	// EigIts is the power-iteration count used for λmax when smoothers
	// are (re)built; Build records its option here so Refresh reproduces
	// the same spectrum estimate.
	EigIts int

	tel     []levelTel         // per-level instrument handles; empty when telemetry off
	cycles  *telemetry.Counter // V-cycles started
	coarseT *telemetry.Timer   // coarse-solve wall time
	coarseC *telemetry.Counter // coarse-solve applications

	// coarseMu serializes redundant agglomerated coarse solves: the
	// shared CoarseSolve may hold internal work state, and with
	// agglomeration several rank goroutines apply it concurrently
	// (identical inputs). On the one-core simulation host serializing
	// costs nothing; each root still gets the identical answer.
	coarseMu sync.Mutex
}

// levelTel caches one level's telemetry handles. The zero value (all nil)
// records nothing: every instrument is nil-safe, so the disabled cost in
// the cycle is a handful of nil checks.
type levelTel struct {
	smooth, op, restrict, prolong *telemetry.Timer
	smooths, ops                  *telemetry.Counter
}

// lt returns the cached handles for level l, or inert handles when
// telemetry is off.
func (m *MG) lt(l int) levelTel {
	if l < len(m.tel) {
		return m.tel[l]
	}
	return levelTel{}
}

// SetTelemetry installs per-level instrumentation under sc: child scopes
// level0…levelN each with "smooth"/"op"/"restrict"/"prolong" timers and
// "smooth_applies"/"op_applies" counters, a "coarse" child with a "solve"
// timer and "solves" counter, and a "cycles" counter on sc itself. Handles
// are cached here, so the cycle's hot path never takes the scope lock.
// Passing nil uninstalls.
func (m *MG) SetTelemetry(sc *telemetry.Scope) {
	if sc == nil {
		m.tel, m.cycles, m.coarseT, m.coarseC = nil, nil, nil, nil
		return
	}
	m.tel = make([]levelTel, len(m.Levels))
	for l := range m.Levels {
		lsc := sc.Child(fmt.Sprintf("level%d", l))
		m.tel[l] = levelTel{
			smooth:   lsc.Timer("smooth"),
			op:       lsc.Timer("op"),
			restrict: lsc.Timer("restrict"),
			prolong:  lsc.Timer("prolong"),
			smooths:  lsc.Counter("smooth_applies"),
			ops:      lsc.Counter("op_applies"),
		}
	}
	csc := sc.Child("coarse")
	m.cycles = sc.Counter("cycles")
	m.coarseT = csc.Timer("solve")
	m.coarseC = csc.Counter("solves")
}

// Options configures Build.
type Options struct {
	Kinds       []op.Kind // per level; Kinds[0] is the finest
	SmoothSteps int       // Chebyshev steps: V(k,k) uses k (paper: 2 or 3)
	EigIts      int       // power iterations for λmax (default 10)
	Workers     int
	// FineOp, when non-nil, is used as the finest level's operator
	// instead of building one from Kinds[0] (it must discretize
	// probs[0]). The coupled Stokes solver passes its fine viscous
	// operator here so it is constructed exactly once. Blocked/Precision
	// substitutions never apply to a caller-provided FineOp.
	FineOp op.Operator
	// Blocked selects the cache-blocked wavefront Chebyshev smoother on
	// every level whose operator is resident-backed (Tensor kinds are
	// upgraded to TensorC to make them so). Bit-identical to the
	// unblocked smoother; purely a performance substitution.
	Blocked bool
	// Precision runs the hierarchy's smoother operators at the given
	// width: op.F32 swaps matrix-free levels to TensorF32 and assembled
	// mid-levels to AssembledF32. The coarsest level always stays float64
	// — the coarse solver consumes the exact assembled matrix — and so do
	// all transfer operators and vectors. Meant for preconditioner use
	// under a flexible outer Krylov method (FGMRES/GCR).
	Precision op.Precision
	// Auto is the base policy for op.Auto levels; the coarsest level
	// additionally gets NeedCSR (the coarse solver consumes a matrix).
	Auto op.Policy
	// Telemetry, when non-nil, receives per-level selection decisions
	// under level<i>/select (same scope SetTelemetry instruments).
	Telemetry *telemetry.Scope
}

// Build wires a multigrid hierarchy from per-level discretizations
// (probs[0] finest) and per-level operator kinds. The coarse solver is
// left nil; callers must set CoarseSolve (or call UseBlockJacobiCoarse).
func Build(probs []*fem.Problem, opt Options) (*MG, error) {
	if len(probs) < 2 {
		return nil, fmt.Errorf("mg: need at least 2 levels, got %d", len(probs))
	}
	if len(opt.Kinds) != len(probs) {
		return nil, fmt.Errorf("mg: %d kinds for %d levels", len(opt.Kinds), len(probs))
	}
	if opt.SmoothSteps <= 0 {
		opt.SmoothSteps = 2
	}
	if opt.EigIts <= 0 {
		opt.EigIts = 10
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	m := &MG{CyclesPerApply: 1, EigIts: opt.EigIts}
	for l, p := range probs {
		p.Workers = opt.Workers
		lev := &Level{Prob: p}
		if l > 0 {
			fp := probs[l-1]
			lev.P = NewProlongation(fp.DA, p.DA, fp.BC, p.BC)
			lev.P.Workers = opt.Workers
		}
		if l == 0 && opt.FineOp != nil {
			lev.Op = opt.FineOp
		} else {
			pol := opt.Auto
			pol.NeedCSR = l == len(probs)-1
			pol.AllowF32 = opt.Precision == op.F32 && !pol.NeedCSR
			env := op.Env{
				Prob:    p,
				Workers: opt.Workers,
				Level:   l,
				Levels:  len(probs),
				Policy:  &pol,
			}
			if opt.Telemetry != nil {
				env.Telemetry = opt.Telemetry.Child(fmt.Sprintf("level%d", l))
			}
			if l > 0 {
				finer := m.Levels[l-1]
				lp := lev.P
				env.FineCSR = func() *la.CSR { return finer.Op.CSR() }
				env.Prolong = lp.ToCSR
			}
			kind := levelKind(opt.Kinds[l], pol.NeedCSR, opt)
			o, err := op.New(kind, env)
			if err != nil {
				return nil, fmt.Errorf("mg: level %d (%v): %w", l, kind, err)
			}
			lev.Op = o
		}
		if err := lev.Op.Setup(); err != nil {
			return nil, fmt.Errorf("mg: level %d setup: %w", l, err)
		}
		// Jacobi-preconditioned Chebyshev smoother on every level
		// (paper §III-C), targeting [0.2λmax, 1.1λmax]. Representations
		// guarantee a nonzero diagonal (unit entries on constrained
		// rows), so no per-representation fix-up is needed here.
		n := lev.Op.N()
		diag := la.NewVec(n)
		lev.Op.Diag(diag)
		jac := krylov.NewJacobi(diag)
		lmax := krylov.EstimateLambdaMax(lev.Op, jac, opt.EigIts)
		lev.Smoother = krylov.NewChebyshev(lev.Op, jac, lmax, opt.SmoothSteps)
		if opt.Blocked {
			// The blocked smoother needs the operator's resident backing;
			// force an undecided Auto level to commit so the answer is
			// definitive here rather than after the first applies.
			if a, ok := lev.Op.(*op.AutoOp); ok {
				a.ForceCommit()
			}
			if res := op.ResidentOf(lev.Op); res != nil {
				lev.Blocked = fem.NewBlockedChebyshev(res, jac.InvDiag, lmax, opt.SmoothSteps)
				// Keep the unblocked fallback (distributed views copy its
				// interval) at the same apply count as the blocked sweeps.
				lev.Smoother.NoFinalResidual = true
			}
		}
		lev.r, lev.e, lev.bc = la.NewVec(n), la.NewVec(n), la.NewVec(n)
		m.Levels = append(m.Levels, lev)
	}
	return m, nil
}

// levelKind maps a requested per-level kind through the Blocked/Precision
// substitutions: at op.F32, matrix-free kinds become TensorF32 and
// rediscretized-assembled mid-levels AssembledF32 (Galerkin stays — its
// float64 triple product feeds the levels below); with Blocked at
// float64, Tensor upgrades to the resident TensorC so the wavefront
// smoother has stored coefficients to block over. The coarsest level
// (needCSR) is never substituted.
func levelKind(k op.Kind, needCSR bool, opt Options) op.Kind {
	if needCSR {
		return k
	}
	if opt.Precision == op.F32 {
		switch k {
		case op.Tensor, op.TensorC, op.MFRef:
			return op.TensorF32
		case op.Assembled:
			return op.AssembledF32
		}
		return k
	}
	if opt.Blocked && k == op.Tensor {
		return op.TensorC
	}
	return k
}

// Refresh re-derives every level's numeric content from the (already
// updated) per-level problem coefficients, in place: operators refresh
// finest→coarsest so Galerkin levels read the refreshed finer matrix,
// then each level's smoother is rebuilt exactly as Build builds it — same
// Jacobi diagonal, same deterministic λmax power iteration, same
// Chebyshev interval and step count — so a refreshed hierarchy is
// bit-identical to one constructed cold on the same coefficients. The
// transfer operators, work vectors and coarse-solver wiring are purely
// topological and survive untouched (the caller owns CoarseSolve and must
// rebuild it from the refreshed coarsest matrix).
func (m *MG) Refresh() error {
	eig := m.EigIts
	if eig <= 0 {
		eig = 10
	}
	for l, lev := range m.Levels {
		if err := op.Refresh(lev.Op); err != nil {
			return fmt.Errorf("mg: level %d refresh: %w", l, err)
		}
		n := lev.Op.N()
		diag := la.NewVec(n)
		lev.Op.Diag(diag)
		jac := krylov.NewJacobi(diag)
		lmax := krylov.EstimateLambdaMax(lev.Op, jac, eig)
		steps := lev.Smoother.Steps
		noFinal := lev.Smoother.NoFinalResidual
		lev.Smoother = krylov.NewChebyshev(lev.Op, jac, lmax, steps)
		lev.Smoother.NoFinalResidual = noFinal
		if lev.Blocked != nil {
			res := op.ResidentOf(lev.Op)
			if res == nil {
				return fmt.Errorf("mg: level %d lost its resident backing on refresh", l)
			}
			lev.Blocked = fem.NewBlockedChebyshev(res, jac.InvDiag, lmax, steps)
		}
	}
	return nil
}

// SelectionReport collects the op.Auto decisions of every level that has
// one (empty when no level used runtime selection). Levels still
// undecided are forced to commit first so the report is definitive.
func (m *MG) SelectionReport() []op.Decision {
	var out []op.Decision
	for _, lev := range m.Levels {
		if a, ok := lev.Op.(*op.AutoOp); ok {
			a.ForceCommit()
			out = append(out, a.Decision())
		}
	}
	return out
}

// UseBlockJacobiCoarse installs a block-Jacobi + exact-LU coarse solver on
// the coarsest level (which must have an assembled representation).
func (m *MG) UseBlockJacobiCoarse(nblocks int) error {
	last := m.Levels[len(m.Levels)-1]
	a := last.Op.CSR()
	if a == nil {
		return fmt.Errorf("mg: coarsest level is not assembled")
	}
	bj, err := krylov.NewBlockJacobi(a, nblocks)
	if err != nil {
		return err
	}
	m.CoarseSolve = bj
	return nil
}

// Apply runs CyclesPerApply V-cycles as a preconditioner: z ≈ A⁻¹·r.
func (m *MG) Apply(r, z la.Vec) {
	z.Zero()
	for c := 0; c < max(1, m.CyclesPerApply); c++ {
		m.vcycle(0, r, z, c == 0)
	}
}

// VCycle exposes a single V-cycle from an existing iterate (x updated in
// place).
func (m *MG) VCycle(b, x la.Vec) { m.vcycle(0, b, x, false) }

func (m *MG) vcycle(l int, b, x la.Vec, zeroGuess bool) {
	lev := m.Levels[l]
	lt := m.lt(l)
	if l == 0 {
		m.cycles.Inc()
	}
	if l == len(m.Levels)-1 {
		if m.CoarseSolve == nil {
			// Fall back to smoothing only.
			st := lt.smooth.Start()
			lev.smooth(b, x, zeroGuess)
			lt.smooth.Stop(st)
			lt.smooths.Inc()
			return
		}
		st := m.coarseT.Start()
		if zeroGuess {
			m.CoarseSolve.Apply(b, x)
		} else {
			// Correction form for nonzero initial guess.
			lev.Op.Apply(x, lev.r)
			lev.r.AYPX(-1, b)
			m.CoarseSolve.Apply(lev.r, lev.e)
			x.AXPY(1, lev.e)
		}
		m.coarseT.Stop(st)
		m.coarseC.Inc()
		return
	}
	// Pre-smooth.
	st := lt.smooth.Start()
	lev.smooth(b, x, zeroGuess)
	lt.smooth.Stop(st)
	lt.smooths.Inc()
	// Residual and restriction.
	st = lt.op.Start()
	lev.Op.Apply(x, lev.r)
	lt.op.Stop(st)
	lt.ops.Inc()
	lev.r.AYPX(-1, b)
	next := m.Levels[l+1]
	st = lt.restrict.Start()
	next.P.ApplyTranspose(lev.r, next.bc)
	lt.restrict.Stop(st)
	// Coarse correction (γ recursive visits: V- or W-cycle).
	gamma := m.Gamma
	if gamma < 1 {
		gamma = 1
	}
	next.e.Zero()
	m.vcycle(l+1, next.bc, next.e, true)
	for g := 1; g < gamma; g++ {
		m.vcycle(l+1, next.bc, next.e, false)
	}
	st = lt.prolong.Start()
	next.P.Apply(next.e, lev.e)
	lt.prolong.Stop(st)
	x.AXPY(1, lev.e)
	// Post-smooth.
	st = lt.smooth.Start()
	lev.smooth(b, x, false)
	lt.smooth.Stop(st)
	lt.smooths.Inc()
}
