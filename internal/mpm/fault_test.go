package mpm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ptatin3d/internal/comm"
	"ptatin3d/internal/la"
	"ptatin3d/internal/telemetry"
)

// seedLocalPoints distributes a lattice across ranks by element ownership.
func seedLocalPoints(d *comm.Decomp, all *Points, rank int) *Points {
	local := &Points{}
	for i := 0; i < all.Len(); i++ {
		if d.RankOfElement(int(all.Elem[i])) == rank {
			idx := local.Append(all.X[i], all.Y[i], all.Z[i], all.Litho[i], all.Plastic[i])
			local.Elem[idx] = all.Elem[i]
			local.Xi[idx], local.Et[idx], local.Ze[idx] = all.Xi[i], all.Et[i], all.Ze[i]
		}
	}
	return local
}

// TestMigrateUnderCorruption runs the §II-D migration protocol with
// injected payload corruption: every surviving point must still end up
// exactly once on its owning rank with pristine coordinates, recovered via
// checksum rejection and retransmission.
func TestMigrateUnderCorruption(t *testing.T) {
	p := flatProblem(4)
	d, err := comm.NewDecomp(p.DA, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorld(d.Size())
	fp := &comm.FaultPlan{Seed: 5, CorruptProb: 1, MaxCorrupts: 4}
	w.SetFaultPlan(fp)
	w.SetRetryPolicy(comm.RetryPolicy{Timeout: 10 * time.Millisecond, MaxRetries: 30, Backoff: 1.2})

	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < p.DA.NNodes(); n++ {
		u[3*n] = 0.3
	}
	reg := telemetry.New()
	type rankState struct {
		pts    *Points
		st     MigrateStats
		before int
	}
	states := make([]rankState, d.Size())
	var mu sync.Mutex
	var failures []error
	w.Run(func(r *comm.Rank) {
		local := seedLocalPoints(d, NewLattice(p, 2, nil), r.ID)
		n0 := local.Len()
		AdvectRK2(p, u, 0.5, local, 1)
		sc := reg.Root().Child("mpm").Child(fmt.Sprintf("rank%d", r.ID))
		st, err := Migrate(r, d, p, local, sc)
		if err != nil {
			mu.Lock()
			failures = append(failures, fmt.Errorf("rank %d: %w", r.ID, err))
			mu.Unlock()
			return
		}
		states[r.ID] = rankState{pts: local, st: st, before: n0}
	})
	for _, err := range failures {
		t.Fatal(err)
	}
	if fp.Corruptions() != 4 {
		t.Errorf("injected %d corruptions, want the full budget of 4", fp.Corruptions())
	}

	totalBefore, totalAfter, deleted, sent, received := 0, 0, 0, 0, 0
	for rid, s := range states {
		totalBefore += s.before
		totalAfter += s.pts.Len()
		deleted += s.st.Deleted
		sent += s.st.Sent
		received += s.st.Received
		for i := 0; i < s.pts.Len(); i++ {
			if d.RankOfElement(int(s.pts.Elem[i])) != rid {
				t.Fatalf("rank %d holds foreign point in element %d", rid, s.pts.Elem[i])
			}
			// Corrupted coordinates would either fail relocation or land
			// outside the unit cube.
			if s.pts.X[i] < 0 || s.pts.X[i] > 1 || s.pts.Y[i] < 0 || s.pts.Y[i] > 1 {
				t.Fatalf("rank %d point %d has out-of-domain coordinates (%v, %v)",
					rid, i, s.pts.X[i], s.pts.Y[i])
			}
		}
	}
	if sent == 0 || received == 0 {
		t.Fatalf("no migration happened: sent %d received %d", sent, received)
	}
	if totalAfter+deleted+(sent-received) != totalBefore {
		t.Fatalf("point accounting under corruption: before %d, after %d, deleted %d, sent %d, recv %d",
			totalBefore, totalAfter, deleted, sent, received)
	}
}

// TestMigrateExchangeFailure: with total message loss the migration must
// surface a typed *comm.ExchangeError instead of deadlocking, and record
// the failure in telemetry.
func TestMigrateExchangeFailure(t *testing.T) {
	p := flatProblem(4)
	d, err := comm.NewDecomp(p.DA, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorld(d.Size())
	w.SetFaultPlan(&comm.FaultPlan{Seed: 2, DropProb: 1})
	w.SetRetryPolicy(comm.RetryPolicy{Timeout: 5 * time.Millisecond, MaxRetries: 2, Backoff: 1})

	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < p.DA.NNodes(); n++ {
		u[3*n] = 0.3
	}
	reg := telemetry.New()
	errs := make([]error, d.Size())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(func(r *comm.Rank) {
			local := seedLocalPoints(d, NewLattice(p, 2, nil), r.ID)
			AdvectRK2(p, u, 0.5, local, 1)
			sc := reg.Root().Child("mpm").Child(fmt.Sprintf("rank%d", r.ID))
			_, errs[r.ID] = Migrate(r, d, p, local, sc)
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("migration with total message loss deadlocked instead of failing")
	}
	for rid, err := range errs {
		var xe *comm.ExchangeError
		if !errors.As(err, &xe) {
			t.Fatalf("rank %d: got %v, want wrapped *comm.ExchangeError", rid, err)
		}
		sc := reg.Root().Child("mpm").Child(fmt.Sprintf("rank%d", rid))
		if sc.Counter("migrate_failures").Value() != 1 {
			t.Errorf("rank %d migrate_failures = %d, want 1", rid, sc.Counter("migrate_failures").Value())
		}
	}
}
