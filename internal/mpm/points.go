// Package mpm implements the material-point method of paper §II-C: a set
// of Lagrangian points carrying rock lithology Φ and history variables
// (accumulated plastic strain), advected through the Eulerian/ALE mesh by
// the computed velocity field. Material properties evaluated at the
// points are transferred to the quadrature points of the finite element
// mesh by a local L2 projection onto the Q1 corner-vertex space (Eq. 12)
// followed by trilinear interpolation (Eq. 13).
package mpm

import (
	"ptatin3d/internal/fem"
	"ptatin3d/internal/mesh"
)

// Points is a structure-of-arrays store of material points.
type Points struct {
	X, Y, Z []float64 // positions
	Litho   []int32   // lithology index Φ
	Plastic []float64 // accumulated plastic strain (history variable)

	// Cached location: containing element and local (reference)
	// coordinates; Elem[i] < 0 marks an unlocated point.
	Elem       []int32
	Xi, Et, Ze []float64
}

// Len returns the number of points.
func (p *Points) Len() int { return len(p.X) }

// Append adds a point and returns its index.
func (p *Points) Append(x, y, z float64, litho int32, plastic float64) int {
	p.X = append(p.X, x)
	p.Y = append(p.Y, y)
	p.Z = append(p.Z, z)
	p.Litho = append(p.Litho, litho)
	p.Plastic = append(p.Plastic, plastic)
	p.Elem = append(p.Elem, -1)
	p.Xi = append(p.Xi, 0)
	p.Et = append(p.Et, 0)
	p.Ze = append(p.Ze, 0)
	return p.Len() - 1
}

// RemoveSwap deletes point i by swapping the last point into its slot.
func (p *Points) RemoveSwap(i int) {
	last := p.Len() - 1
	p.X[i], p.Y[i], p.Z[i] = p.X[last], p.Y[last], p.Z[last]
	p.Litho[i] = p.Litho[last]
	p.Plastic[i] = p.Plastic[last]
	p.Elem[i] = p.Elem[last]
	p.Xi[i], p.Et[i], p.Ze[i] = p.Xi[last], p.Et[last], p.Ze[last]
	p.X = p.X[:last]
	p.Y = p.Y[:last]
	p.Z = p.Z[:last]
	p.Litho = p.Litho[:last]
	p.Plastic = p.Plastic[:last]
	p.Elem = p.Elem[:last]
	p.Xi = p.Xi[:last]
	p.Et = p.Et[:last]
	p.Ze = p.Ze[:last]
}

// NewLattice seeds nper×nper×nper points per element at regular reference
// positions (the standard MPM initialization), assigning lithology via
// the classify function evaluated at the point's physical position.
// classify may be nil (lithology 0 everywhere).
func NewLattice(prob *fem.Problem, nper int, classify func(x, y, z float64) int32) *Points {
	da := prob.DA
	nel := da.NElements()
	pts := &Points{}
	n := nel * nper * nper * nper
	pts.X = make([]float64, 0, n)
	pts.Y = make([]float64, 0, n)
	pts.Z = make([]float64, 0, n)
	pts.Litho = make([]int32, 0, n)
	pts.Plastic = make([]float64, 0, n)
	pts.Elem = make([]int32, 0, n)
	pts.Xi = make([]float64, 0, n)
	pts.Et = make([]float64, 0, n)
	pts.Ze = make([]float64, 0, n)

	var xe [81]float64
	var nb [27]float64
	for e := 0; e < nel; e++ {
		gatherCoords(prob, e, &xe)
		for k := 0; k < nper; k++ {
			for j := 0; j < nper; j++ {
				for i := 0; i < nper; i++ {
					// Cell-centred reference lattice in [-1,1]³.
					xi := -1 + (2*float64(i)+1)/float64(nper)
					et := -1 + (2*float64(j)+1)/float64(nper)
					ze := -1 + (2*float64(k)+1)/float64(nper)
					fem.Q2Eval(xi, et, ze, &nb)
					var px, py, pz float64
					for nn := 0; nn < 27; nn++ {
						px += nb[nn] * xe[3*nn]
						py += nb[nn] * xe[3*nn+1]
						pz += nb[nn] * xe[3*nn+2]
					}
					var lith int32
					if classify != nil {
						lith = classify(px, py, pz)
					}
					idx := pts.Append(px, py, pz, lith, 0)
					pts.Elem[idx] = int32(e)
					pts.Xi[idx], pts.Et[idx], pts.Ze[idx] = xi, et, ze
				}
			}
		}
	}
	return pts
}

// gatherCoords mirrors fem's internal helper using only exported API.
func gatherCoords(prob *fem.Problem, e int, xe *[81]float64) {
	em := prob.Emap[27*e : 27*e+27]
	for n := 0; n < 27; n++ {
		c := 3 * int(em[n])
		xe[3*n] = prob.DA.Coords[c]
		xe[3*n+1] = prob.DA.Coords[c+1]
		xe[3*n+2] = prob.DA.Coords[c+2]
	}
}

// CountPerElement returns how many located points each element contains —
// used by tests and by population-control diagnostics (empty elements
// starve the projection of Eq. 12).
func CountPerElement(prob *fem.Problem, pts *Points) []int {
	counts := make([]int, prob.DA.NElements())
	for i := 0; i < pts.Len(); i++ {
		if e := pts.Elem[i]; e >= 0 {
			counts[e]++
		}
	}
	return counts
}

var _ = mesh.XMin // mesh is used by sibling files in this package
