package mpm

import (
	"math"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/par"
)

// Point location (paper §II-D): given a physical position, find the
// containing element and local coordinate ξ. On deformed hexahedral
// meshes the inverse isoparametric map has no closed form, so each
// candidate element is tested with a Newton iteration; if the converged
// local coordinate falls outside [-1,1]³ the search walks to the
// neighbouring element indicated by the violated bound — a standard
// robust "walking" strategy that terminates in a few hops for the
// boundary-fitted meshes used here.

const (
	locTol     = 1e-10
	locBounds  = 1.0 + 1e-8
	newtonIts  = 25
	maxWalkHop = 64
)

// invertInElement Newton-solves X(ξ) = x in element e. Returns the local
// coordinates and whether Newton converged (regardless of bounds).
func invertInElement(xe *[81]float64, x, y, z float64) (xi, et, ze float64, ok bool) {
	var nb [27]float64
	var gb [27][3]float64
	for it := 0; it < newtonIts; it++ {
		fem.Q2EvalGrad(xi, et, ze, &nb, &gb)
		var px, py, pz float64
		var jmat [9]float64 // jmat[d*3+m] = ∂x_m/∂ξ_d
		for n := 0; n < 27; n++ {
			cx, cy, cz := xe[3*n], xe[3*n+1], xe[3*n+2]
			px += nb[n] * cx
			py += nb[n] * cy
			pz += nb[n] * cz
			for d := 0; d < 3; d++ {
				jmat[d*3] += gb[n][d] * cx
				jmat[d*3+1] += gb[n][d] * cy
				jmat[d*3+2] += gb[n][d] * cz
			}
		}
		rx, ry, rz := x-px, y-py, z-pz
		if rx*rx+ry*ry+rz*rz < locTol*locTol {
			return xi, et, ze, true
		}
		var inv [9]float64
		det := la.Invert3(&jmat, &inv)
		if det == 0 || math.IsNaN(det) {
			return xi, et, ze, false
		}
		// δξ_d = Σ_m (∂ξ_d/∂x_m) r_m; inv[m][s] = ∂ξ_s/∂x_m.
		xi += inv[0]*rx + inv[3]*ry + inv[6]*rz
		et += inv[1]*rx + inv[4]*ry + inv[7]*rz
		ze += inv[2]*rx + inv[5]*ry + inv[8]*rz
		// Keep the iterate from running far outside the element, which
		// destabilizes Newton on strongly deformed cells.
		xi = clamp(xi, -3, 3)
		et = clamp(et, -3, 3)
		ze = clamp(ze, -3, 3)
	}
	return xi, et, ze, false
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Locate finds the element containing (x,y,z), starting the walk from
// eGuess (pass a previous location, or -1 to derive a guess from the mean
// element size assuming a roughly regular mesh). Returns found=false for
// points outside the domain.
func Locate(prob *fem.Problem, x, y, z float64, eGuess int) (e int, xi, et, ze float64, found bool) {
	da := prob.DA
	if eGuess < 0 || eGuess >= da.NElements() {
		eGuess = guessElement(prob, x, y, z)
	}
	ei, ej, ek := da.ElemIJK(eGuess)
	var xe [81]float64
	for hop := 0; hop < maxWalkHop; hop++ {
		e = da.ElemID(ei, ej, ek)
		gatherCoords(prob, e, &xe)
		xi, et, ze, _ = invertInElement(&xe, x, y, z)
		inX := math.Abs(xi) <= locBounds
		inY := math.Abs(et) <= locBounds
		inZ := math.Abs(ze) <= locBounds
		if inX && inY && inZ {
			return e, xi, et, ze, true
		}
		// Walk one element in each violated direction that can still move.
		// Only if *no* violated direction can move is the point outside
		// the domain: a direction pinned at the boundary may only be
		// violated transiently while other directions are still far off.
		moved := false
		step := func(v float64, idx, max int) (int, bool) {
			if v > locBounds && idx < max-1 {
				return idx + 1, true
			}
			if v < -locBounds && idx > 0 {
				return idx - 1, true
			}
			return idx, false
		}
		var m bool
		if !inX {
			if ei, m = step(xi, ei, da.Mx); m {
				moved = true
			}
		}
		if !inY {
			if ej, m = step(et, ej, da.My); m {
				moved = true
			}
		}
		if !inZ {
			if ek, m = step(ze, ek, da.Mz); m {
				moved = true
			}
		}
		if !moved {
			return e, xi, et, ze, false
		}
	}
	return e, xi, et, ze, false
}

// guessElement estimates a starting element from the domain bounding box.
func guessElement(prob *fem.Problem, x, y, z float64) int {
	da := prob.DA
	var min, max [3]float64
	min[0], min[1], min[2] = da.Coords[0], da.Coords[1], da.Coords[2]
	max = min
	for n := 1; n < da.NNodes(); n++ {
		for c := 0; c < 3; c++ {
			v := da.Coords[3*n+c]
			if v < min[c] {
				min[c] = v
			}
			if v > max[c] {
				max[c] = v
			}
		}
	}
	idx := func(v, lo, hi float64, m int) int {
		if hi <= lo {
			return 0
		}
		i := int(float64(m) * (v - lo) / (hi - lo))
		if i < 0 {
			i = 0
		}
		if i > m-1 {
			i = m - 1
		}
		return i
	}
	return da.ElemID(idx(x, min[0], max[0], da.Mx), idx(y, min[1], max[1], da.My), idx(z, min[2], max[2], da.Mz))
}

// LocateAll (re)locates every point, using its cached element as the walk
// start. Points that left the domain get Elem = -1 and are returned as a
// list of indices (the Ls list of §II-D, in the single-rank view; with a
// domain decomposition, MigratePoints routes them to neighbour ranks
// first and only then discards true outflow).
// Each point's walk is independent and writes only its own slots, so the
// location pass runs on the worker pool; the lost list is assembled by a
// serial sweep afterwards so it is always in ascending index order,
// exactly as the serial loop produced it.
func LocateAll(prob *fem.Problem, pts *Points) (lost []int) {
	n := pts.Len()
	par.For(prob.Workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e, xi, et, ze, ok := Locate(prob, pts.X[i], pts.Y[i], pts.Z[i], int(pts.Elem[i]))
			if ok {
				pts.Elem[i] = int32(e)
				pts.Xi[i], pts.Et[i], pts.Ze[i] = xi, et, ze
			} else {
				pts.Elem[i] = -1
			}
		}
	})
	for i := 0; i < n; i++ {
		if pts.Elem[i] < 0 {
			lost = append(lost, i)
		}
	}
	return lost
}
