package mpm

import (
	"fmt"
	"math/rand"

	"ptatin3d/internal/comm"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/telemetry"
)

// PointPacket is the wire format of migrating material points (the Ls/Lr
// lists of paper §II-D).
type PointPacket struct {
	X, Y, Z []float64
	Litho   []int32
	Plastic []float64
}

func (pk *PointPacket) add(pts *Points, i int) {
	pk.X = append(pk.X, pts.X[i])
	pk.Y = append(pk.Y, pts.Y[i])
	pk.Z = append(pk.Z, pts.Z[i])
	pk.Litho = append(pk.Litho, pts.Litho[i])
	pk.Plastic = append(pk.Plastic, pts.Plastic[i])
}

// Len returns the number of packed points.
func (pk *PointPacket) Len() int { return len(pk.X) }

// Checksum64 implements comm.Checksummer so migrating point payloads are
// integrity-checked in flight.
func (pk *PointPacket) Checksum64() uint64 {
	h := comm.HashFloats(comm.HashSeed, pk.X)
	h = comm.HashFloats(h, pk.Y)
	h = comm.HashFloats(h, pk.Z)
	h = comm.HashInt32s(h, pk.Litho)
	return comm.HashFloats(h, pk.Plastic)
}

// CorruptCopy implements comm.Corrupter: a deep copy with one coordinate
// perturbed (or a spurious point appended when empty), modelling payload
// corruption of the Ls migration list.
func (pk *PointPacket) CorruptCopy(rng *rand.Rand) interface{} {
	c := &PointPacket{
		X:       append([]float64(nil), pk.X...),
		Y:       append([]float64(nil), pk.Y...),
		Z:       append([]float64(nil), pk.Z...),
		Litho:   append([]int32(nil), pk.Litho...),
		Plastic: append([]float64(nil), pk.Plastic...),
	}
	if c.Len() > 0 {
		i := rng.Intn(c.Len())
		c.X[i] += 0.5 + rng.Float64()
	} else {
		c.X = append(c.X, rng.Float64())
		c.Y = append(c.Y, rng.Float64())
		c.Z = append(c.Z, rng.Float64())
		c.Litho = append(c.Litho, 0)
		c.Plastic = append(c.Plastic, 0)
	}
	return c
}

// MigrateStats summarizes one migration round.
type MigrateStats struct {
	Sent     int // points placed in Ls and shipped to neighbours
	Received int // points adopted from neighbours
	Deleted  int // points not owned by any neighbour (outflow), discarded
}

// Migrate implements the §II-D protocol on rank r of the decomposition d:
// after advection, every point whose element left r's subdomain is put in
// the send list Ls and shipped to all neighbouring subdomains; each
// neighbour runs point location on the received list Lr, adopts the
// points it contains and deletes the rest. Points that left the global
// domain entirely (Elem < 0 after LocateAll) are deleted locally,
// which "permits material points to leave the domain if any outflow type
// boundary conditions are prescribed".
//
// prob must be the globally consistent problem (all ranks share the mesh
// in this simulated setting); pts is r's local point population, already
// located via LocateAll.
//
// sc, when non-nil, accumulates "migrations"/"sent"/"received"/"deleted"
// counters and a "migrate" timer across rounds. Each rank should use its
// own scope (or child) — scopes are safe for concurrent recording, but
// per-rank children keep the numbers attributable.
//
// The Ls/Lr shipment runs over the reliable exchange protocol with the
// world's retry policy: dropped or corrupted point payloads are detected
// (checksummed) and retransmitted; an exchange that cannot complete
// within the retry budget returns a typed error wrapping
// *comm.ExchangeError, with the local point population left in its
// pre-shipment state minus the points already packed into Ls (the caller
// must abort the step).
func Migrate(r *comm.Rank, d *comm.Decomp, prob *fem.Problem, pts *Points, sc *telemetry.Scope) (MigrateStats, error) {
	telStart := sc.Timer("migrate").Start()
	var st MigrateStats
	nbrs := d.Neighbors(r.ID)

	// Build Ls: points located in elements no longer owned by this rank,
	// plus out-of-domain points (deleted immediately).
	var ls PointPacket
	for i := pts.Len() - 1; i >= 0; i-- {
		e := int(pts.Elem[i])
		if e < 0 {
			pts.RemoveSwap(i)
			st.Deleted++
			continue
		}
		if d.RankOfElement(e) != r.ID {
			ls.add(pts, i)
			pts.RemoveSwap(i)
			st.Sent++
		}
	}

	// Ship Ls to every neighbour (the paper sends the full list to all
	// neighbours and lets receivers filter — so do we).
	payload := make(map[int]interface{}, len(nbrs))
	for _, n := range nbrs {
		payload[n] = &ls
	}
	recv, err := r.ExchangeReliable(nbrs, payload, r.Policy(), sc)
	if err != nil {
		sc.Timer("migrate").Stop(telStart)
		sc.Counter("migrate_failures").Inc()
		return st, fmt.Errorf("mpm: point migration exchange: %w", err)
	}

	// Process Lr: adopt points whose containing element is ours.
	for _, n := range nbrs {
		lr := recv[n].(*PointPacket)
		for i := 0; i < lr.Len(); i++ {
			e, xi, et, ze, ok := Locate(prob, lr.X[i], lr.Y[i], lr.Z[i], -1)
			if !ok || d.RankOfElement(e) != r.ID {
				continue // someone else's point, or outflow — drop our copy
			}
			idx := pts.Append(lr.X[i], lr.Y[i], lr.Z[i], lr.Litho[i], lr.Plastic[i])
			pts.Elem[idx] = int32(e)
			pts.Xi[idx], pts.Et[idx], pts.Ze[idx] = xi, et, ze
			st.Received++
		}
	}
	sc.Timer("migrate").Stop(telStart)
	sc.Counter("migrations").Inc()
	sc.Counter("sent").Add(int64(st.Sent))
	sc.Counter("received").Add(int64(st.Received))
	sc.Counter("deleted").Add(int64(st.Deleted))
	return st, nil
}
