package mpm

import (
	"ptatin3d/internal/comm"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/telemetry"
)

// PointPacket is the wire format of migrating material points (the Ls/Lr
// lists of paper §II-D).
type PointPacket struct {
	X, Y, Z []float64
	Litho   []int32
	Plastic []float64
}

func (pk *PointPacket) add(pts *Points, i int) {
	pk.X = append(pk.X, pts.X[i])
	pk.Y = append(pk.Y, pts.Y[i])
	pk.Z = append(pk.Z, pts.Z[i])
	pk.Litho = append(pk.Litho, pts.Litho[i])
	pk.Plastic = append(pk.Plastic, pts.Plastic[i])
}

// Len returns the number of packed points.
func (pk *PointPacket) Len() int { return len(pk.X) }

// MigrateStats summarizes one migration round.
type MigrateStats struct {
	Sent     int // points placed in Ls and shipped to neighbours
	Received int // points adopted from neighbours
	Deleted  int // points not owned by any neighbour (outflow), discarded
}

// Migrate implements the §II-D protocol on rank r of the decomposition d:
// after advection, every point whose element left r's subdomain is put in
// the send list Ls and shipped to all neighbouring subdomains; each
// neighbour runs point location on the received list Lr, adopts the
// points it contains and deletes the rest. Points that left the global
// domain entirely (Elem < 0 after LocateAll) are deleted locally,
// which "permits material points to leave the domain if any outflow type
// boundary conditions are prescribed".
//
// prob must be the globally consistent problem (all ranks share the mesh
// in this simulated setting); pts is r's local point population, already
// located via LocateAll.
//
// sc, when non-nil, accumulates "migrations"/"sent"/"received"/"deleted"
// counters and a "migrate" timer across rounds. Each rank should use its
// own scope (or child) — scopes are safe for concurrent recording, but
// per-rank children keep the numbers attributable.
func Migrate(r *comm.Rank, d *comm.Decomp, prob *fem.Problem, pts *Points, sc *telemetry.Scope) MigrateStats {
	telStart := sc.Timer("migrate").Start()
	var st MigrateStats
	nbrs := d.Neighbors(r.ID)

	// Build Ls: points located in elements no longer owned by this rank,
	// plus out-of-domain points (deleted immediately).
	var ls PointPacket
	for i := pts.Len() - 1; i >= 0; i-- {
		e := int(pts.Elem[i])
		if e < 0 {
			pts.RemoveSwap(i)
			st.Deleted++
			continue
		}
		if d.RankOfElement(e) != r.ID {
			ls.add(pts, i)
			pts.RemoveSwap(i)
			st.Sent++
		}
	}

	// Ship Ls to every neighbour (the paper sends the full list to all
	// neighbours and lets receivers filter — so do we).
	payload := make(map[int]interface{}, len(nbrs))
	for _, n := range nbrs {
		payload[n] = &ls
	}
	recv := r.ExchangeCounts(nbrs, payload)

	// Process Lr: adopt points whose containing element is ours.
	for _, n := range nbrs {
		lr := recv[n].(*PointPacket)
		for i := 0; i < lr.Len(); i++ {
			e, xi, et, ze, ok := Locate(prob, lr.X[i], lr.Y[i], lr.Z[i], -1)
			if !ok || d.RankOfElement(e) != r.ID {
				continue // someone else's point, or outflow — drop our copy
			}
			idx := pts.Append(lr.X[i], lr.Y[i], lr.Z[i], lr.Litho[i], lr.Plastic[i])
			pts.Elem[idx] = int32(e)
			pts.Xi[idx], pts.Et[idx], pts.Ze[idx] = xi, et, ze
			st.Received++
		}
	}
	sc.Timer("migrate").Stop(telStart)
	sc.Counter("migrations").Inc()
	sc.Counter("sent").Add(int64(st.Sent))
	sc.Counter("received").Add(int64(st.Received))
	sc.Counter("deleted").Add(int64(st.Deleted))
	return st
}
