package mpm

import (
	"math"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/par"
)

// VelocityAt interpolates the Q2 velocity field u at the cached location
// of point i.
func VelocityAt(prob *fem.Problem, u la.Vec, pts *Points, i int) (vx, vy, vz float64) {
	e := int(pts.Elem[i])
	if e < 0 {
		return 0, 0, 0
	}
	var nb [27]float64
	fem.Q2Eval(pts.Xi[i], pts.Et[i], pts.Ze[i], &nb)
	em := prob.Emap[27*e : 27*e+27]
	for n := 0; n < 27; n++ {
		d := 3 * int(em[n])
		vx += nb[n] * u[d]
		vy += nb[n] * u[d+1]
		vz += nb[n] * u[d+2]
	}
	return
}

// AdvectRK2 advances every located point through the velocity field u by
// one explicit midpoint (RK2) step of size dt, then relocates all points.
// Points advected out of the domain are reported (outflow handling /
// migration is the caller's job, per §II-D). Unlocated points are left in
// place.
func AdvectRK2(prob *fem.Problem, u la.Vec, dt float64, pts *Points, workers int) (lost []int) {
	n := pts.Len()
	// Stage 1: midpoint positions (points carry their own scratch here).
	midX := make([]float64, n)
	midY := make([]float64, n)
	midZ := make([]float64, n)
	par.ForItems(workers, n, func(i int) {
		if pts.Elem[i] < 0 {
			midX[i], midY[i], midZ[i] = pts.X[i], pts.Y[i], pts.Z[i]
			return
		}
		vx, vy, vz := VelocityAt(prob, u, pts, i)
		midX[i] = pts.X[i] + 0.5*dt*vx
		midY[i] = pts.Y[i] + 0.5*dt*vy
		midZ[i] = pts.Z[i] + 0.5*dt*vz
	})
	// Locate midpoints and evaluate the velocity there; if a midpoint
	// leaves the domain fall back to the stage-1 velocity (Euler).
	par.ForItems(workers, n, func(i int) {
		if pts.Elem[i] < 0 {
			return
		}
		e, xi, et, ze, ok := Locate(prob, midX[i], midY[i], midZ[i], int(pts.Elem[i]))
		var vx, vy, vz float64
		if ok {
			var nb [27]float64
			fem.Q2Eval(xi, et, ze, &nb)
			em := prob.Emap[27*e : 27*e+27]
			for nn := 0; nn < 27; nn++ {
				d := 3 * int(em[nn])
				vx += nb[nn] * u[d]
				vy += nb[nn] * u[d+1]
				vz += nb[nn] * u[d+2]
			}
		} else {
			vx, vy, vz = VelocityAt(prob, u, pts, i)
		}
		pts.X[i] += dt * vx
		pts.Y[i] += dt * vy
		pts.Z[i] += dt * vz
	})
	return LocateAll(prob, pts)
}

// MaxVelocity returns the maximum nodal speed of u — the CFL building
// block for time-step selection.
func MaxVelocity(u la.Vec) float64 {
	var m float64
	for i := 0; i+2 < len(u); i += 3 {
		s := u[i]*u[i] + u[i+1]*u[i+1] + u[i+2]*u[i+2]
		if s > m {
			m = s
		}
	}
	return math.Sqrt(m)
}
