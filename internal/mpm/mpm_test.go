package mpm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/comm"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/telemetry"
)

func flatProblem(m int) *fem.Problem {
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	return fem.NewProblem(da, nil)
}

func deformedProblem(m int) *fem.Problem {
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.05*math.Sin(math.Pi*y)*math.Sin(math.Pi*z),
			y + 0.04*math.Sin(math.Pi*x),
			z + 0.03*x*y
	})
	return fem.NewProblem(da, nil)
}

func TestLatticeInit(t *testing.T) {
	p := flatProblem(3)
	pts := NewLattice(p, 3, func(x, y, z float64) int32 {
		if z > 0.5 {
			return 1
		}
		return 0
	})
	if pts.Len() != 27*27 {
		t.Fatalf("points = %d, want %d", pts.Len(), 27*27)
	}
	counts := CountPerElement(p, pts)
	for e, c := range counts {
		if c != 27 {
			t.Fatalf("element %d has %d points", e, c)
		}
	}
	// Lithology split along z.
	var top, bottom int
	for i := 0; i < pts.Len(); i++ {
		if pts.Litho[i] == 1 {
			top++
		} else {
			bottom++
		}
	}
	if top == 0 || bottom == 0 {
		t.Fatal("classification did not split lithologies")
	}
}

// TestLocateRoundTrip: map random reference points to physical space via
// the element map and verify Locate recovers element and coordinates, on
// a deformed mesh with walk starts far from the target.
func TestLocateRoundTrip(t *testing.T) {
	p := deformedProblem(4)
	rng := rand.New(rand.NewSource(1))
	var xe [81]float64
	var nb [27]float64
	for trial := 0; trial < 200; trial++ {
		e := rng.Intn(p.DA.NElements())
		xi := rng.Float64()*1.9 - 0.95
		et := rng.Float64()*1.9 - 0.95
		ze := rng.Float64()*1.9 - 0.95
		gatherCoords(p, e, &xe)
		fem.Q2Eval(xi, et, ze, &nb)
		var x, y, z float64
		for n := 0; n < 27; n++ {
			x += nb[n] * xe[3*n]
			y += nb[n] * xe[3*n+1]
			z += nb[n] * xe[3*n+2]
		}
		guess := rng.Intn(p.DA.NElements()) // random start: exercise walking
		ge, gxi, get, gze, ok := Locate(p, x, y, z, guess)
		if !ok {
			t.Fatalf("trial %d: point not found (elem %d)", trial, e)
		}
		if ge != e {
			// A point may sit within tolerance of a face; accept the
			// neighbour if the local coordinate is on the boundary.
			if math.Abs(gxi) < 0.999 && math.Abs(get) < 0.999 && math.Abs(gze) < 0.999 {
				t.Fatalf("trial %d: located in %d, want %d", trial, ge, e)
			}
			continue
		}
		if math.Abs(gxi-xi) > 1e-8 || math.Abs(get-et) > 1e-8 || math.Abs(gze-ze) > 1e-8 {
			t.Fatalf("trial %d: local coords (%v,%v,%v), want (%v,%v,%v)",
				trial, gxi, get, gze, xi, et, ze)
		}
	}
}

func TestLocateOutsideDomain(t *testing.T) {
	p := flatProblem(2)
	if _, _, _, _, ok := Locate(p, 1.5, 0.5, 0.5, -1); ok {
		t.Fatal("located a point outside the domain")
	}
	if _, _, _, _, ok := Locate(p, 0.5, -0.2, 0.5, 3); ok {
		t.Fatal("located a point below the domain")
	}
}

// TestProjectionReproducesLinear: with a dense lattice, projecting a
// linear function of position is (nearly) exact at interior vertices.
func TestProjectionReproducesLinear(t *testing.T) {
	p := flatProblem(3)
	pts := NewLattice(p, 4, nil)
	f := func(x, y, z float64) float64 { return 2 + 3*x - y + 0.5*z }
	vals := ProjectToVertices(p, pts, func(i int) float64 {
		return f(pts.X[i], pts.Y[i], pts.Z[i])
	}, nil)
	da := p.DA
	for k := 0; k <= da.Mz; k++ {
		for j := 0; j <= da.My; j++ {
			for i := 0; i <= da.Mx; i++ {
				x, y, z := da.NodeCoords(da.VertexNode(i, j, k))
				got := vals[da.VertexID(i, j, k)]
				want := f(x, y, z)
				// Interior vertices have symmetric lattice support, so the
				// weighted average of a linear field is exact; boundary
				// vertices see one-sided support and carry an O(h) bias.
				tol := 0.75
				if i > 0 && i < da.Mx && j > 0 && j < da.My && k > 0 && k < da.Mz {
					tol = 1e-10
				}
				if math.Abs(got-want) > tol {
					t.Fatalf("vertex (%d,%d,%d): %v, want %v", i, j, k, got, want)
				}
			}
		}
	}
}

// TestProjectionConstantExact: a constant property projects exactly
// everywhere (Eq. 12 is a weighted average).
func TestProjectionConstantExact(t *testing.T) {
	p := deformedProblem(3)
	pts := NewLattice(p, 2, nil)
	vals := ProjectToVertices(p, pts, func(i int) float64 { return 7.5 }, nil)
	for v, g := range vals {
		if math.Abs(g-7.5) > 1e-12 {
			t.Fatalf("vertex %d: %v", v, g)
		}
	}
}

// TestProjectionEmptyFallback: vertices with no points in support use the
// fallback field or the neighbour patch.
func TestProjectionEmptyFallback(t *testing.T) {
	p := flatProblem(3)
	pts := &Points{} // no points at all
	fb := make([]float64, p.DA.NVertices())
	for i := range fb {
		fb[i] = 42
	}
	vals := ProjectToVertices(p, pts, func(i int) float64 { return 0 }, fb)
	for _, v := range vals {
		if v != 42 {
			t.Fatalf("fallback not used: %v", v)
		}
	}
	// Single point; everything else patched by sweeps.
	pts = &Points{}
	idx := pts.Append(0.5, 0.5, 0.5, 0, 0)
	e, xi, et, ze, ok := Locate(p, 0.5, 0.5, 0.5, -1)
	if !ok {
		t.Fatal("centre not located")
	}
	pts.Elem[idx] = int32(e)
	pts.Xi[idx], pts.Et[idx], pts.Ze[idx] = xi, et, ze
	vals = ProjectToVertices(p, pts, func(i int) float64 { return 3 }, nil)
	for v, g := range vals {
		if g != 3 {
			t.Fatalf("patch sweep failed at vertex %d: %v", v, g)
		}
	}
}

// TestAdvectUniformFlow: uniform velocity translates points exactly
// (RK2 is exact for constant fields).
func TestAdvectUniformFlow(t *testing.T) {
	p := flatProblem(4)
	pts := NewLattice(p, 2, nil)
	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < p.DA.NNodes(); n++ {
		u[3*n] = 0.25
		u[3*n+1] = -0.125
	}
	x0 := append([]float64(nil), pts.X...)
	y0 := append([]float64(nil), pts.Y...)
	lost := AdvectRK2(p, u, 0.5, pts, 2)
	for i := 0; i < pts.Len(); i++ {
		// Points that stayed in the domain moved by exactly dt·v.
		if pts.Elem[i] < 0 {
			continue
		}
		if math.Abs(pts.X[i]-(x0[i]+0.125)) > 1e-12 || math.Abs(pts.Y[i]-(y0[i]-0.0625)) > 1e-12 {
			t.Fatalf("point %d at (%v,%v)", i, pts.X[i], pts.Y[i])
		}
	}
	// Points near the x-max boundary flowed out.
	if len(lost) == 0 {
		t.Fatal("expected outflow points")
	}
}

// TestAdvectRotationPreservesRadius: RK2 in a rigid rotation keeps the
// radius to O(dt³) per step.
func TestAdvectRotationPreservesRadius(t *testing.T) {
	p := flatProblem(6)
	// Rotation about the domain centre in the x-y plane.
	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < p.DA.NNodes(); n++ {
		x, y, _ := p.DA.NodeCoords(n)
		u[3*n] = -(y - 0.5)
		u[3*n+1] = x - 0.5
	}
	pts := &Points{}
	idx := pts.Append(0.75, 0.5, 0.5, 0, 0)
	e, xi, et, ze, ok := Locate(p, 0.75, 0.5, 0.5, -1)
	if !ok {
		t.Fatal("seed not located")
	}
	pts.Elem[idx] = int32(e)
	pts.Xi[idx], pts.Et[idx], pts.Ze[idx] = xi, et, ze
	dt := 0.05
	for step := 0; step < 40; step++ { // ~1/3 revolution
		if lost := AdvectRK2(p, u, dt, pts, 1); len(lost) > 0 {
			t.Fatalf("point lost at step %d", step)
		}
	}
	r := math.Hypot(pts.X[0]-0.5, pts.Y[0]-0.5)
	if math.Abs(r-0.25) > 2e-3 {
		t.Fatalf("radius drifted to %v (want 0.25)", r)
	}
	if math.Abs(pts.Z[0]-0.5) > 1e-12 {
		t.Fatal("z drifted in planar rotation")
	}
}

// TestMigrateProtocol: points advected across subdomain boundaries are
// adopted by the owning rank; every surviving point ends up exactly once
// on the correct rank; outflow points disappear.
func TestMigrateProtocol(t *testing.T) {
	p := flatProblem(4)
	d, err := comm.NewDecomp(p.DA, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorld(d.Size())
	// Uniform +x flow pushes points across the x-split (and out at xmax).
	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < p.DA.NNodes(); n++ {
		u[3*n] = 0.3
	}
	type rankState struct {
		pts *Points
		st  MigrateStats
		tot int
	}
	states := make([]rankState, d.Size())
	var totalBefore int
	reg := telemetry.New()
	w.Run(func(r *comm.Rank) {
		// Each rank seeds points only in its own elements.
		all := NewLattice(p, 2, nil)
		local := &Points{}
		for i := 0; i < all.Len(); i++ {
			if d.RankOfElement(int(all.Elem[i])) == r.ID {
				idx := local.Append(all.X[i], all.Y[i], all.Z[i], all.Litho[i], all.Plastic[i])
				local.Elem[idx] = all.Elem[i]
				local.Xi[idx], local.Et[idx], local.Ze[idx] = all.Xi[i], all.Et[i], all.Ze[i]
			}
		}
		n0 := local.Len()
		_ = r.AllReduceSum(0) // warm the reduction path
		AdvectRK2(p, u, 0.5, local, 1)
		sc := reg.Root().Child("mpm").Child(fmt.Sprintf("rank%d", r.ID))
		st, err := Migrate(r, d, p, local, sc)
		if err != nil {
			t.Errorf("rank %d: %v", r.ID, err)
		}
		states[r.ID] = rankState{pts: local, st: st, tot: n0}
	})
	for _, s := range states {
		totalBefore += s.tot
	}
	// Every surviving point is on its owning rank.
	totalAfter, deleted, sent, received := 0, 0, 0, 0
	for rid, s := range states {
		totalAfter += s.pts.Len()
		deleted += s.st.Deleted
		sent += s.st.Sent
		received += s.st.Received
		for i := 0; i < s.pts.Len(); i++ {
			if d.RankOfElement(int(s.pts.Elem[i])) != rid {
				t.Fatalf("rank %d holds foreign point in element %d", rid, s.pts.Elem[i])
			}
		}
	}
	if sent == 0 || received == 0 {
		t.Fatalf("no migration happened: sent %d received %d", sent, received)
	}
	if deleted == 0 {
		t.Fatal("expected outflow deletions at xmax")
	}
	if totalAfter+deleted+(sent-received) != totalBefore {
		t.Fatalf("point accounting: before %d, after %d, deleted %d, sent %d, recv %d",
			totalBefore, totalAfter, deleted, sent, received)
	}
	// The per-rank telemetry counters must agree with the returned stats.
	var telSent, telRecv, telDel int64
	for rid := range states {
		sc := reg.Root().Child("mpm").Child(fmt.Sprintf("rank%d", rid))
		telSent += sc.Counter("sent").Value()
		telRecv += sc.Counter("received").Value()
		telDel += sc.Counter("deleted").Value()
		if sc.Counter("migrations").Value() != 1 {
			t.Fatalf("rank %d migrations counter = %d", rid, sc.Counter("migrations").Value())
		}
	}
	if int(telSent) != sent || int(telRecv) != received || int(telDel) != deleted {
		t.Fatalf("telemetry disagrees: sent %d/%d recv %d/%d del %d/%d",
			telSent, sent, telRecv, received, telDel, deleted)
	}
}

func TestRemoveSwap(t *testing.T) {
	pts := &Points{}
	pts.Append(1, 1, 1, 10, 0.1)
	pts.Append(2, 2, 2, 20, 0.2)
	pts.Append(3, 3, 3, 30, 0.3)
	pts.RemoveSwap(0)
	if pts.Len() != 2 {
		t.Fatalf("len = %d", pts.Len())
	}
	if pts.X[0] != 3 || pts.Litho[0] != 30 || pts.Plastic[0] != 0.3 {
		t.Fatalf("swap incorrect: %+v", pts)
	}
}

// TestPopulationControl: starved elements get re-seeded with points that
// inherit nearby composition and history.
func TestPopulationControl(t *testing.T) {
	p := flatProblem(3)
	pts := NewLattice(p, 2, func(x, y, z float64) int32 {
		if x > 0.5 {
			return 1
		}
		return 0
	})
	for i := range pts.Plastic {
		pts.Plastic[i] = 0.7
	}
	// Drain element (0,0,0) completely.
	target := int32(p.DA.ElemID(0, 0, 0))
	for i := pts.Len() - 1; i >= 0; i-- {
		if pts.Elem[i] == target {
			pts.RemoveSwap(i)
		}
	}
	if CountPerElement(p, pts)[target] != 0 {
		t.Fatal("setup failed to drain element")
	}
	injected := EnsureMinPerElement(p, pts, 4, 2)
	if injected != 8 {
		t.Fatalf("injected %d points, want 8", injected)
	}
	counts := CountPerElement(p, pts)
	if counts[target] != 8 {
		t.Fatalf("element has %d points after control", counts[target])
	}
	// Injected points inherit composition and history from neighbours:
	// element (0,0,0) is in the x<0.5 half, so lithology 0, plastic 0.7.
	for i := 0; i < pts.Len(); i++ {
		if pts.Elem[i] != target {
			continue
		}
		if pts.Litho[i] != 0 {
			t.Fatalf("injected point has lithology %d", pts.Litho[i])
		}
		if pts.Plastic[i] != 0.7 {
			t.Fatalf("injected point has plastic %v", pts.Plastic[i])
		}
	}
	// A healthy population is untouched.
	if EnsureMinPerElement(p, pts, 4, 2) != 0 {
		t.Fatal("control injected into healthy elements")
	}
}
