package mpm

import (
	"ptatin3d/internal/fem"
)

// ProjectToVertices performs the approximate local L2 projection of a
// material-point property onto the Q1 corner-vertex mesh (paper Eq. 12):
//
//	f_i = Σ_p N_i(x_p)·f_p / Σ_p N_i(x_p)
//
// where N_i is the trilinear interpolant supported on the elements
// adjacent to vertex i, and value(p) supplies the property of point p
// (e.g. effective viscosity from the lithology's flow law). Vertices
// whose support contains no points keep fallback[i] (pass nil to fall
// back to the nearest populated value sweep).
func ProjectToVertices(prob *fem.Problem, pts *Points, value func(i int) float64, fallback []float64) []float64 {
	da := prob.DA
	nv := da.NVertices()
	num := make([]float64, nv)
	den := make([]float64, nv)
	var vs [8]int32
	var nb [8]float64
	for i := 0; i < pts.Len(); i++ {
		e := int(pts.Elem[i])
		if e < 0 {
			continue
		}
		da.ElemVertices(e, &vs)
		fem.Q1Eval(pts.Xi[i], pts.Et[i], pts.Ze[i], &nb)
		v := value(i)
		for c := 0; c < 8; c++ {
			num[vs[c]] += nb[c] * v
			den[vs[c]] += nb[c]
		}
	}
	out := make([]float64, nv)
	empty := 0
	for i := range out {
		if den[i] > 0 {
			out[i] = num[i] / den[i]
		} else if fallback != nil {
			out[i] = fallback[i]
		} else {
			empty++
			out[i] = 0 // patched below
		}
	}
	if fallback == nil && empty > 0 {
		patchEmptyVertices(da, out, den)
	}
	return out
}

// patchEmptyVertices fills starved vertices (no points in support) with
// the average of populated neighbouring vertices, sweeping until covered.
// Rare in practice — it needs an element devoid of material points — but
// projection must stay total for the solver.
// patchStencil is the 6-neighbour sweep stencil, hoisted to package scope
// so the sweep loop does not allocate it per starved vertex.
var patchStencil = [6]struct{ i, j, k int }{
	{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
}

func patchEmptyVertices(da interface {
	VertexID(i, j, k int) int
	VertexIJK(v int) (int, int, int)
}, out, den []float64) {
	var maxI, maxJ, maxK int
	for v := range out {
		i, j, k := da.VertexIJK(v)
		if i > maxI {
			maxI = i
		}
		if j > maxJ {
			maxJ = j
		}
		if k > maxK {
			maxK = k
		}
	}
	filled := make([]bool, len(out))
	for v := range out {
		filled[v] = den[v] > 0
	}
	for sweep := 0; sweep < len(out); sweep++ {
		changed := false
		done := true
		for v := range out {
			if filled[v] {
				continue
			}
			done = false
			i, j, k := da.VertexIJK(v)
			var sum float64
			var n int
			for _, d := range patchStencil {
				ii, jj, kk := i+d.i, j+d.j, k+d.k
				if ii < 0 || ii > maxI || jj < 0 || jj > maxJ || kk < 0 || kk > maxK {
					continue
				}
				nv := da.VertexID(ii, jj, kk)
				if filled[nv] {
					sum += out[nv]
					n++
				}
			}
			if n > 0 {
				out[v] = sum / float64(n)
				filled[v] = true
				changed = true
			}
		}
		if done || !changed {
			break
		}
	}
}

// ProjectLithologyFields projects per-point viscosity and density —
// computed by the supplied evaluators from each point's lithology and
// state — onto the vertex grid and installs them at the problem's
// quadrature points (the full Eq. 12 → Eq. 13 pipeline). It returns the
// vertex fields so multigrid coefficient coarseners can reuse them.
func ProjectLithologyFields(prob *fem.Problem, pts *Points,
	etaOf, rhoOf func(i int) float64,
	etaPrev, rhoPrev []float64) (etaV, rhoV []float64) {
	etaV = ProjectToVertices(prob, pts, etaOf, etaPrev)
	rhoV = ProjectToVertices(prob, pts, rhoOf, rhoPrev)
	prob.SetCoefficientsVertex(etaV, rhoV)
	return etaV, rhoV
}

// EnsureMinPerElement is the population-control safeguard: elements whose
// point count has dropped below minCount (advection can drain cells near
// outflow boundaries and strong shear) are re-seeded with an nper³
// reference lattice. Injected points inherit the lithology and plastic
// strain of the nearest existing point (searching the element itself,
// then the whole population) so composition is preserved. Returns the
// number of injected points.
func EnsureMinPerElement(prob *fem.Problem, pts *Points, minCount, nper int) int {
	counts := CountPerElement(prob, pts)
	buckets := newPointBuckets(prob.DA.NElements(), pts)
	injected := 0
	var xe [81]float64
	var nb [27]float64
	for e, c := range counts {
		if c >= minCount {
			continue
		}
		gatherCoords(prob, e, &xe)
		for k := 0; k < nper; k++ {
			for j := 0; j < nper; j++ {
				for i := 0; i < nper; i++ {
					xi := -1 + (2*float64(i)+1)/float64(nper)
					et := -1 + (2*float64(j)+1)/float64(nper)
					ze := -1 + (2*float64(k)+1)/float64(nper)
					fem.Q2Eval(xi, et, ze, &nb)
					var px, py, pz float64
					for n := 0; n < 27; n++ {
						px += nb[n] * xe[3*n]
						py += nb[n] * xe[3*n+1]
						pz += nb[n] * xe[3*n+2]
					}
					lith, plastic := nearestPointProps(pts, buckets, e, px, py, pz)
					idx := pts.Append(px, py, pz, lith, plastic)
					pts.Elem[idx] = int32(e)
					pts.Xi[idx], pts.Et[idx], pts.Ze[idx] = xi, et, ze
					buckets.add(e, int32(idx), px, py, pz)
					injected++
				}
			}
		}
	}
	return injected
}

// pointBuckets indexes points by containing element for nearest-neighbour
// queries: a CSR of point indices (ascending within each element), an
// overflow list for points appended after the build, and the bounding box
// of each element's points for distance pruning. It turns the population
// control's nearest-point search from a scan of every point per injection
// into a scan of candidate elements, almost all of which are rejected by
// a single box-distance test.
type pointBuckets struct {
	start []int32
	idx   []int32
	extra [][]int32
	bb    []float64 // per element: min x,y,z then max x,y,z of its points
	has   []bool
}

func newPointBuckets(nel int, pts *Points) *pointBuckets {
	b := &pointBuckets{
		start: make([]int32, nel+1),
		extra: make([][]int32, nel),
		bb:    make([]float64, 6*nel),
		has:   make([]bool, nel),
	}
	n := pts.Len()
	for i := 0; i < n; i++ {
		if e := pts.Elem[i]; e >= 0 {
			b.start[e+1]++
		}
	}
	for e := 0; e < nel; e++ {
		b.start[e+1] += b.start[e]
	}
	b.idx = make([]int32, b.start[nel])
	next := make([]int32, nel)
	copy(next, b.start[:nel])
	for i := 0; i < n; i++ {
		e := pts.Elem[i]
		if e < 0 {
			continue
		}
		b.idx[next[e]] = int32(i)
		next[e]++
		b.grow(int(e), pts.X[i], pts.Y[i], pts.Z[i])
	}
	return b
}

func (b *pointBuckets) grow(e int, x, y, z float64) {
	o := 6 * e
	if !b.has[e] {
		b.has[e] = true
		b.bb[o], b.bb[o+1], b.bb[o+2] = x, y, z
		b.bb[o+3], b.bb[o+4], b.bb[o+5] = x, y, z
		return
	}
	if x < b.bb[o] {
		b.bb[o] = x
	}
	if y < b.bb[o+1] {
		b.bb[o+1] = y
	}
	if z < b.bb[o+2] {
		b.bb[o+2] = z
	}
	if x > b.bb[o+3] {
		b.bb[o+3] = x
	}
	if y > b.bb[o+4] {
		b.bb[o+4] = y
	}
	if z > b.bb[o+5] {
		b.bb[o+5] = z
	}
}

// add registers a freshly appended point so later searches in the same
// population-control pass see it, matching the incremental visibility of
// the original full scan.
func (b *pointBuckets) add(e int, i int32, x, y, z float64) {
	b.extra[e] = append(b.extra[e], i)
	b.grow(e, x, y, z)
}

// forElem visits element e's points in ascending point-index order (CSR
// entries first, then appended overflow — overflow indices are always
// larger, so the concatenation stays sorted).
func (b *pointBuckets) forElem(e int, f func(i int32)) {
	for _, i := range b.idx[b.start[e]:b.start[e+1]] {
		f(i)
	}
	for _, i := range b.extra[e] {
		f(i)
	}
}

// dist2 is the squared distance from (x,y,z) to element e's point
// bounding box — a lower bound on the distance to any point inside.
func (b *pointBuckets) dist2(e int, x, y, z float64) float64 {
	o := 6 * e
	var d, t float64
	if t = b.bb[o] - x; t > 0 {
		d += t * t
	} else if t = x - b.bb[o+3]; t > 0 {
		d += t * t
	}
	if t = b.bb[o+1] - y; t > 0 {
		d += t * t
	} else if t = y - b.bb[o+4]; t > 0 {
		d += t * t
	}
	if t = b.bb[o+2] - z; t > 0 {
		d += t * t
	} else if t = z - b.bb[o+5]; t > 0 {
		d += t * t
	}
	return d
}

// nearestPointProps finds the nearest existing point, preferring points in
// the same element, and returns its lithology and plastic strain. The
// winner is the lexicographic minimum of (squared distance, point index),
// which is exactly the point the original linear scan kept (first strict
// minimum = lowest index among ties); the bounding-box prune is strict
// (lb > best) so an element that could still hold an equal-distance,
// lower-index point is always visited.
func nearestPointProps(pts *Points, b *pointBuckets, elem int, x, y, z float64) (int32, float64) {
	bestD := -1.0
	bestI := int32(-1)
	consider := func(i int32) {
		dx, dy, dz := pts.X[i]-x, pts.Y[i]-y, pts.Z[i]-z
		d := dx*dx + dy*dy + dz*dz
		if bestD < 0 || d < bestD || (d == bestD && i < bestI) {
			bestD, bestI = d, i
		}
	}
	b.forElem(elem, consider)
	if bestI < 0 {
		for e := range b.has {
			if !b.has[e] {
				continue
			}
			if bestD >= 0 && b.dist2(e, x, y, z) > bestD {
				continue
			}
			b.forElem(e, consider)
		}
	}
	if bestI < 0 {
		return 0, 0
	}
	return pts.Litho[bestI], pts.Plastic[bestI]
}
