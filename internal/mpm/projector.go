package mpm

import (
	"ptatin3d/internal/fem"
	"ptatin3d/internal/par"
)

// Projector is the worker-parallel form of ProjectToVertices (paper
// Eq. 12) with reusable storage. The serial reference scatters each
// point's 8 trilinear weights into vertex accumulators in point order;
// running that scatter concurrently would race and reassociate the
// sums. The Projector instead inverts the map: a cached point→vertex
// incidence table stores, per vertex, its contributing (point, corner)
// pairs in ascending point order, and each vertex's reduction is an
// independent serial sum in exactly the reference order. Owner-computes
// over vertices — the PR 4 slab pattern at vertex granularity — so the
// result is bit-identical to the serial projection at any worker count.
//
// The incidence depends only on the points' element assignment; it is
// rebuilt lazily after Invalidate (call it whenever points move,
// relocate, append or vanish) and shared by consecutive projections of
// different properties over the same locations (η and ρ of one
// relinearization). The num/den vertex accumulators are allocated once
// and reused across calls.
type Projector struct {
	prob *fem.Problem
	nv   int

	// Cached incidence: ent[vstart[v]:vstart[v+1]] lists vertex v's
	// contributions as packed 8*point+corner codes, ascending.
	npts   int
	vstart []int
	ent    []int32
	next   []int
	valid  bool

	// Per-call scratch, reused.
	w8       []float64 // Q1 weights, indexed by the same 8*i+c code
	val      []float64 // per-point property values
	num, den []float64
}

// NewProjector builds a projector for the problem's vertex grid.
func NewProjector(prob *fem.Problem) *Projector {
	nv := prob.DA.NVertices()
	return &Projector{
		prob: prob, nv: nv,
		vstart: make([]int, nv+1),
		next:   make([]int, nv),
		num:    make([]float64, nv),
		den:    make([]float64, nv),
	}
}

// Invalidate drops the cached incidence. Call after any operation that
// changes point locations or population (advection, relocation,
// population control, removal).
func (pj *Projector) Invalidate() { pj.valid = false }

// rebuild derives the vertex incidence from the points' current element
// assignment. Filling in ascending point order per vertex is what pins
// the reduction order to the serial reference.
func (pj *Projector) rebuild(pts *Points) {
	da := pj.prob.DA
	n := pts.Len()
	pj.npts = n
	if cap(pj.ent) < 8*n {
		pj.ent = make([]int32, 8*n)
	}
	for v := range pj.vstart {
		pj.vstart[v] = 0
	}
	var vs [8]int32
	for i := 0; i < n; i++ {
		e := int(pts.Elem[i])
		if e < 0 {
			continue
		}
		da.ElemVertices(e, &vs)
		for c := 0; c < 8; c++ {
			pj.vstart[vs[c]+1]++
		}
	}
	for v := 0; v < pj.nv; v++ {
		pj.vstart[v+1] += pj.vstart[v]
	}
	copy(pj.next, pj.vstart[:pj.nv])
	ent := pj.ent[:pj.vstart[pj.nv]]
	for i := 0; i < n; i++ {
		e := int(pts.Elem[i])
		if e < 0 {
			continue
		}
		da.ElemVertices(e, &vs)
		for c := 0; c < 8; c++ {
			v := vs[c]
			ent[pj.next[v]] = int32(8*i + c)
			pj.next[v]++
		}
	}
	pj.valid = true
}

// Project computes the vertex field of one per-point property — the
// parallel, allocation-light equivalent of ProjectToVertices. value must
// be safe for concurrent calls with distinct indices and pure in the
// point index. The returned slice is freshly allocated (callers retain
// projected fields across steps as fallbacks).
func (pj *Projector) Project(pts *Points, value func(i int) float64, fallback []float64) []float64 {
	workers := pj.prob.Workers
	n := pts.Len()
	if !pj.valid || pj.npts != n {
		pj.rebuild(pts)
	}
	if cap(pj.w8) < 8*n {
		pj.w8 = make([]float64, 8*n)
	}
	if cap(pj.val) < n {
		pj.val = make([]float64, n)
	}
	w8, val := pj.w8[:8*n], pj.val[:n]
	par.For(workers, n, func(lo, hi int) {
		var nb [8]float64
		for i := lo; i < hi; i++ {
			if pts.Elem[i] < 0 {
				continue
			}
			fem.Q1Eval(pts.Xi[i], pts.Et[i], pts.Ze[i], &nb)
			copy(w8[8*i:8*i+8], nb[:])
			val[i] = value(i)
		}
	})
	num, den := pj.num, pj.den
	out := make([]float64, pj.nv)
	par.For(workers, pj.nv, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var nm, dn float64
			for k := pj.vstart[v]; k < pj.vstart[v+1]; k++ {
				e := pj.ent[k]
				w := w8[e]
				nm += w * val[e>>3]
				dn += w
			}
			num[v], den[v] = nm, dn
			switch {
			case dn > 0:
				out[v] = nm / dn
			case fallback != nil:
				out[v] = fallback[v]
			default:
				out[v] = 0 // patched below
			}
		}
	})
	if fallback == nil {
		empty := false
		for v := range den {
			if !(den[v] > 0) {
				empty = true
				break
			}
		}
		if empty {
			patchEmptyVertices(pj.prob.DA, out, den)
		}
	}
	return out
}

// ProjectLithologyFields is the projector-backed form of the package
// function: η and ρ share one incidence build, and the vertex fields are
// installed at the problem's quadrature points.
func (pj *Projector) ProjectLithologyFields(pts *Points,
	etaOf, rhoOf func(i int) float64,
	etaPrev, rhoPrev []float64) (etaV, rhoV []float64) {
	etaV = pj.Project(pts, etaOf, etaPrev)
	rhoV = pj.Project(pts, rhoOf, rhoPrev)
	pj.prob.SetCoefficientsVertex(etaV, rhoV)
	return etaV, rhoV
}
