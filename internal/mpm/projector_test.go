package mpm

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/fem"
)

func clonePoints(p *Points) *Points {
	return &Points{
		X: append([]float64(nil), p.X...), Y: append([]float64(nil), p.Y...), Z: append([]float64(nil), p.Z...),
		Litho: append([]int32(nil), p.Litho...), Plastic: append([]float64(nil), p.Plastic...),
		Elem: append([]int32(nil), p.Elem...),
		Xi:   append([]float64(nil), p.Xi...), Et: append([]float64(nil), p.Et...), Ze: append([]float64(nil), p.Ze...),
	}
}

func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestProjectorMatchesSerialAnyWorkers pins the Projector's central
// contract: the parallel vertex-owner reduction reproduces the serial
// scatter of ProjectToVertices bit-for-bit at every worker count.
func TestProjectorMatchesSerialAnyWorkers(t *testing.T) {
	for _, deformed := range []bool{false, true} {
		var p *fem.Problem
		if deformed {
			p = deformedProblem(4)
		} else {
			p = flatProblem(4)
		}
		pts := NewLattice(p, 3, func(x, y, z float64) int32 {
			if x+y+z > 1.4 {
				return 1
			}
			return 0
		})
		// Perturb local coordinates and orphan a few points so the
		// skip-unlocated and starved-vertex paths are exercised too.
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < pts.Len(); i++ {
			pts.Xi[i] += 0.05 * (rng.Float64() - 0.5)
			pts.Et[i] += 0.05 * (rng.Float64() - 0.5)
			pts.Ze[i] += 0.05 * (rng.Float64() - 0.5)
			if i%97 == 0 {
				pts.Elem[i] = -1
			}
		}
		value := func(i int) float64 {
			return 0.5 + float64(pts.Litho[i]) + math.Sin(pts.X[i]*3+pts.Y[i])
		}
		fallback := make([]float64, p.DA.NVertices())
		for v := range fallback {
			fallback[v] = float64(v%5) + 0.25
		}
		p.Workers = 1
		ref := ProjectToVertices(p, pts, value, fallback)
		refNil := ProjectToVertices(p, pts, value, nil)
		for _, w := range []int{1, 2, 4, 8} {
			p.Workers = w
			pj := NewProjector(p)
			for pass := 0; pass < 2; pass++ { // second pass hits the cached incidence
				got := pj.Project(pts, value, fallback)
				if !equalBits(got, ref) {
					t.Fatalf("deformed=%v workers=%d pass=%d: parallel projection differs from serial", deformed, w, pass)
				}
				gotNil := pj.Project(pts, value, nil)
				if !equalBits(gotNil, refNil) {
					t.Fatalf("deformed=%v workers=%d pass=%d (nil fallback): parallel projection differs from serial", deformed, w, pass)
				}
			}
		}
	}
}

// TestProjectorInvalidate verifies the incidence cache tracks point
// movement: after advection changes element assignments without changing
// the population, Invalidate must restore agreement with the serial
// reference computed from the new locations.
func TestProjectorInvalidate(t *testing.T) {
	p := flatProblem(3)
	p.Workers = 4
	pts := NewLattice(p, 2, func(x, y, z float64) int32 { return 0 })
	value := func(i int) float64 { return pts.X[i] + 2*pts.Y[i] + 3*pts.Z[i] }
	pj := NewProjector(p)
	p.Workers = 1
	ref := ProjectToVertices(p, pts, value, nil)
	p.Workers = 4
	if got := pj.Project(pts, value, nil); !equalBits(got, ref) {
		t.Fatal("initial projection disagrees with serial reference")
	}
	// Advect every point by a third of a cell and relocate; the point
	// count is unchanged, so only Invalidate tells the projector.
	for i := 0; i < pts.Len(); i++ {
		pts.X[i] = math.Min(pts.X[i]+0.1, 0.999)
	}
	if lost := LocateAll(p, pts); len(lost) != 0 {
		t.Fatalf("unexpected lost points: %d", len(lost))
	}
	pj.Invalidate()
	p.Workers = 1
	ref = ProjectToVertices(p, pts, value, nil)
	p.Workers = 4
	if got := pj.Project(pts, value, nil); !equalBits(got, ref) {
		t.Fatal("post-move projection disagrees with serial reference")
	}
}

// TestLocateAllParallelMatchesSerial pins that the pooled location pass
// produces the same assignments and the same (ascending) lost list as a
// serial per-point loop.
func TestLocateAllParallelMatchesSerial(t *testing.T) {
	p := deformedProblem(4)
	pts := NewLattice(p, 3, func(x, y, z float64) int32 { return 0 })
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < pts.Len(); i++ {
		pts.X[i] += 0.3 * (rng.Float64() - 0.5)
		pts.Y[i] += 0.3 * (rng.Float64() - 0.5)
		pts.Z[i] += 0.3 * (rng.Float64() - 0.5)
	}
	ref := clonePoints(pts)
	p.Workers = 1
	refLost := LocateAll(p, ref)
	p.Workers = 8
	lost := LocateAll(p, pts)
	if len(lost) != len(refLost) {
		t.Fatalf("lost: %d parallel vs %d serial", len(lost), len(refLost))
	}
	for k := range lost {
		if lost[k] != refLost[k] {
			t.Fatalf("lost[%d] = %d, serial %d", k, lost[k], refLost[k])
		}
	}
	for i := 0; i < pts.Len(); i++ {
		if pts.Elem[i] != ref.Elem[i] || pts.Xi[i] != ref.Xi[i] || pts.Et[i] != ref.Et[i] || pts.Ze[i] != ref.Ze[i] {
			t.Fatalf("point %d: parallel location differs from serial", i)
		}
	}
}

// nearestPointPropsRef is the original O(points) linear scan, kept as the
// behavioural reference for the bucketed search.
func nearestPointPropsRef(pts *Points, elem int, x, y, z float64) (int32, float64) {
	bestD := -1.0
	var lith int32
	var plastic float64
	scan := func(sameElemOnly bool) bool {
		found := false
		for i := 0; i < pts.Len(); i++ {
			if sameElemOnly && int(pts.Elem[i]) != elem {
				continue
			}
			dx, dy, dz := pts.X[i]-x, pts.Y[i]-y, pts.Z[i]-z
			d := dx*dx + dy*dy + dz*dz
			if bestD < 0 || d < bestD {
				bestD = d
				lith = pts.Litho[i]
				plastic = pts.Plastic[i]
				found = true
			}
		}
		return found
	}
	if !scan(true) {
		scan(false)
	}
	return lith, plastic
}

// TestBucketedNearestMatchesScan drains one element of a large swarm and
// checks that population control's bucketed nearest-point search makes
// the same inheritance decisions as the full linear scan, including the
// lowest-index-wins tie-break and visibility of points injected earlier
// in the same pass.
func TestBucketedNearestMatchesScan(t *testing.T) {
	p := deformedProblem(5)
	pts := NewLattice(p, 3, func(x, y, z float64) int32 {
		return int32(int(x*10+y*7+z*3) % 4)
	})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < pts.Len(); i++ {
		pts.Plastic[i] = rng.Float64()
	}
	// Drain two elements (one interior, one corner) entirely.
	drained := []int32{int32(p.DA.NElements() / 2), 0}
	for i := pts.Len() - 1; i >= 0; i-- {
		for _, e := range drained {
			if pts.Elem[i] == e {
				pts.RemoveSwap(i)
				break
			}
		}
	}
	buckets := newPointBuckets(p.DA.NElements(), pts)
	rq := rand.New(rand.NewSource(5))
	for q := 0; q < 200; q++ {
		e := int(drained[q%len(drained)])
		x, y, z := rq.Float64(), rq.Float64(), rq.Float64()
		gl, gp := nearestPointProps(pts, buckets, e, x, y, z)
		wl, wp := nearestPointPropsRef(pts, e, x, y, z)
		if gl != wl || gp != wp {
			t.Fatalf("query %d (elem %d, %.3f,%.3f,%.3f): bucketed (%d,%g) vs scan (%d,%g)",
				q, e, x, y, z, gl, gp, wl, wp)
		}
	}
	// Incremental visibility: inject a point and re-query near it.
	idx := pts.Append(0.501, 0.501, 0.501, 9, 42)
	pts.Elem[idx] = drained[0]
	buckets.add(int(drained[0]), int32(idx), 0.501, 0.501, 0.501)
	gl, gp := nearestPointProps(pts, buckets, int(drained[1]), 0.5, 0.5, 0.5)
	wl, wp := nearestPointPropsRef(pts, int(drained[1]), 0.5, 0.5, 0.5)
	if gl != wl || gp != wp {
		t.Fatalf("appended point: bucketed (%d,%g) vs scan (%d,%g)", gl, gp, wl, wp)
	}
}

// TestEnsureMinPerElementRegression seeds a drained element in a large
// swarm and checks the refill inherits properties from the true nearest
// neighbours (the satellite regression for the bucketed rewrite).
func TestEnsureMinPerElementRegression(t *testing.T) {
	p := flatProblem(6)
	pts := NewLattice(p, 3, func(x, y, z float64) int32 {
		if y > 0.5 {
			return 2
		}
		return 1
	})
	target := int32(p.DA.NElements() - 1) // corner element, litho 2 region
	for i := pts.Len() - 1; i >= 0; i-- {
		if pts.Elem[i] == target {
			pts.RemoveSwap(i)
		}
	}
	before := pts.Len()
	injected := EnsureMinPerElement(p, pts, 4, 2)
	if injected != 8 {
		t.Fatalf("injected = %d, want 8 (2^3 lattice refill)", injected)
	}
	if pts.Len() != before+8 {
		t.Fatalf("len = %d, want %d", pts.Len(), before+8)
	}
	for i := before; i < pts.Len(); i++ {
		if pts.Elem[i] != target {
			t.Fatalf("injected point %d in element %d, want %d", i, pts.Elem[i], target)
		}
		if pts.Litho[i] != 2 {
			t.Fatalf("injected point %d inherited litho %d, want 2 (nearest-neighbour region)", i, pts.Litho[i])
		}
	}
}
