package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every instrument and the scope itself must be fully
// usable through nil receivers — the "telemetry off" contract.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	sc := reg.Root()
	if sc != nil {
		t.Fatal("nil registry must have nil root")
	}
	child := sc.Child("mg").Child("level0")
	if child != nil {
		t.Fatal("nil scope must produce nil children")
	}
	c := sc.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	tm := sc.Timer("t")
	st := tm.Start()
	if !st.IsZero() {
		t.Fatal("nil timer Start must not read the clock")
	}
	tm.Stop(st)
	tm.Observe(time.Second)
	if tm.Calls() != 0 || tm.Elapsed() != 0 {
		t.Fatal("nil timer must read 0")
	}
	g := sc.Gauge("g")
	g.Set(3.14)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	sr := sc.Series("s")
	sr.Append(1)
	if sr.Values() != nil || sr.Len() != 0 {
		t.Fatal("nil series must be empty")
	}
	if snap := sc.Snapshot(); snap != nil {
		t.Fatal("nil scope snapshot must be nil")
	}
	// Rendering a nil registry must not panic.
	var buf bytes.Buffer
	reg.WriteTable(&buf)
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestInstrumentValues: basic record/read round trips.
func TestInstrumentValues(t *testing.T) {
	reg := New()
	sc := reg.Root().Child("solver")
	c := sc.Counter("iterations")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	tm := sc.Timer("apply")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(3 * time.Millisecond)
	if tm.Calls() != 2 || tm.Elapsed() != 5*time.Millisecond {
		t.Fatalf("timer = %d calls %v", tm.Calls(), tm.Elapsed())
	}
	st := tm.Start()
	tm.Stop(st)
	if tm.Calls() != 3 {
		t.Fatalf("timer calls = %d, want 3", tm.Calls())
	}
	g := sc.Gauge("residual")
	g.Set(1e-6)
	if g.Value() != 1e-6 {
		t.Fatalf("gauge = %v", g.Value())
	}
	sr := sc.Series("trace")
	sr.Append(1)
	sr.Append(0.5)
	if v := sr.Values(); len(v) != 2 || v[1] != 0.5 {
		t.Fatalf("series = %v", v)
	}
	c.Reset()
	tm.Reset()
	sr.Reset()
	if c.Value() != 0 || tm.Calls() != 0 || sr.Len() != 0 {
		t.Fatal("reset failed")
	}
}

// TestHandleStability: repeated lookups return the same instrument, so
// handles cached at setup observe later recordings.
func TestHandleStability(t *testing.T) {
	reg := New()
	a := reg.Root().Child("mg").Counter("cycles")
	b := reg.Root().Child("mg").Counter("cycles")
	if a != b {
		t.Fatal("counter handle not stable")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles must share state")
	}
}

// TestConcurrentRecording: instruments must be race-free under parallel
// recording (run with -race).
func TestConcurrentRecording(t *testing.T) {
	reg := New()
	sc := reg.Root().Child("par")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := sc.Counter("items")
			tm := sc.Timer("busy")
			sr := sc.Series("trace")
			for i := 0; i < 1000; i++ {
				c.Inc()
				tm.Observe(time.Microsecond)
				if i%100 == 0 {
					sr.Append(float64(i))
				}
				sc.Gauge("last").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if sc.Counter("items").Value() != 8000 {
		t.Fatalf("lost counts: %d", sc.Counter("items").Value())
	}
	if sc.Timer("busy").Calls() != 8000 {
		t.Fatalf("lost timer calls: %d", sc.Timer("busy").Calls())
	}
	if sc.Series("trace").Len() != 80 {
		t.Fatalf("lost series points: %d", sc.Series("trace").Len())
	}
}

// TestSnapshotAndJSON: the exported tree must contain the recorded values
// under the documented schema.
func TestSnapshotAndJSON(t *testing.T) {
	reg := New()
	mg := reg.Root().Child("mg")
	l0 := mg.Child("level0")
	l0.Timer("smooth").Observe(10 * time.Millisecond)
	l0.Timer("smooth").Observe(10 * time.Millisecond)
	l0.Counter("cycles").Add(7)
	mg.Child("level1").Timer("smooth").Observe(time.Millisecond)
	reg.Root().Gauge("setup_seconds").Set(0.25)
	reg.Root().Series("residual").Append(1)
	reg.Root().Series("residual").Append(1e-5)

	snap := reg.Root().Snapshot()
	lv0 := snap.Find("mg", "level0")
	if lv0 == nil {
		t.Fatal("level0 missing from snapshot")
	}
	if lv0.Timers["smooth"].Calls != 2 || lv0.Counters["cycles"] != 7 {
		t.Fatalf("level0 snapshot wrong: %+v", lv0)
	}
	if snap.Find("mg", "level2") != nil {
		t.Fatal("Find invented a scope")
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ScopeSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if got := back.Find("mg", "level0").Counters["cycles"]; got != 7 {
		t.Fatalf("JSON cycles = %d, want 7", got)
	}
	if back.Gauges["setup_seconds"] != 0.25 {
		t.Fatalf("JSON gauge = %v", back.Gauges["setup_seconds"])
	}
	if len(back.Series["residual"]) != 2 {
		t.Fatalf("JSON series = %v", back.Series["residual"])
	}
	// Children keep creation order: level0 before level1.
	mgSnap := back.Find("mg")
	if len(mgSnap.Children) != 2 || mgSnap.Children[0].Name != "level0" {
		t.Fatalf("child order: %+v", mgSnap.Children)
	}
}

// TestWriteTable: the rendered breakdown lists every instrument with its
// call count.
func TestWriteTable(t *testing.T) {
	reg := New()
	reg.Root().Child("outer").Timer("matmult").Observe(time.Millisecond)
	reg.Root().Child("mg").Child("level0").Timer("smooth").Observe(time.Millisecond)
	reg.Root().Child("mg").Child("level0").Counter("cycles").Add(3)
	var buf bytes.Buffer
	reg.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"component", "outer.matmult", "mg.level0.smooth", "mg.level0.cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
