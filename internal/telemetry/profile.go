package telemetry

import (
	"fmt"
	"os"
	"runtime/pprof"
)

// StartCPUProfile begins a runtime/pprof CPU profile writing to path and
// returns the function that stops it and closes the file. Used by the cmd
// tools' -cpuprofile flags.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}
