// Package telemetry is the structured instrumentation layer of the solver
// stack — the machinery behind the paper's evaluation (§IV, Tables II–IV),
// which rests entirely on per-component operator counts and wall times.
//
// The design goal is zero cost when disabled: every instrument type
// (Counter, Timer, Gauge, Series, Scope) is nil-safe, and a nil handle
// reduces every recording call to a single pointer comparison — no locks,
// no clock reads, no allocations. Instrumented code therefore holds plain
// handles obtained once at setup time and records unconditionally:
//
//	type solver struct{ smooth *telemetry.Timer }
//	...
//	st := s.smooth.Start() // zero Time, no clock read, when nil
//	doWork()
//	s.smooth.Stop(st)
//
// Handles come from a Scope, the hierarchical namespace: a Registry owns
// the root Scope; components create child scopes ("mg" → "level0" …) and
// named instruments inside them. All instruments are safe for concurrent
// use (atomics for counters/timers/gauges, a mutex for series), so worker
// goroutines may record into shared handles under the race detector.
//
// Snapshots are exported as JSON (Registry.WriteJSON, see DESIGN.md for
// the schema) or rendered as an aligned text table (Registry.WriteTable)
// shaped like the per-component time breakdowns of paper Tables II/IV.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Timer accumulates call counts and wall time of a code region.
type Timer struct {
	calls atomic.Int64
	ns    atomic.Int64
}

// Start returns the region start time. On a nil receiver it returns the
// zero Time without reading the clock, so a disabled timer costs exactly
// one nil check per Start/Stop pair.
func (t *Timer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stop records one call of duration time.Since(start). No-op on nil.
func (t *Timer) Stop(start time.Time) {
	if t == nil {
		return
	}
	t.calls.Add(1)
	t.ns.Add(int64(time.Since(start)))
}

// Observe records one call of an externally measured duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.calls.Add(1)
	t.ns.Add(int64(d))
}

// Calls returns the number of recorded calls (0 on nil).
func (t *Timer) Calls() int64 {
	if t == nil {
		return 0
	}
	return t.calls.Load()
}

// Elapsed returns the accumulated wall time (0 on nil).
func (t *Timer) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Reset zeroes the timer.
func (t *Timer) Reset() {
	if t == nil {
		return
	}
	t.calls.Store(0)
	t.ns.Store(0)
}

// Gauge is a last-value instrument (e.g. final residual norm, setup time).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x. No-op on a nil receiver.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(x))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Series is an append-only float trace (per-iteration residual norms).
// Appends take a mutex — series belong on iteration boundaries, not in
// inner kernels.
type Series struct {
	mu sync.Mutex
	v  []float64
}

// Append records the next sample. No-op on a nil receiver.
func (s *Series) Append(x float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.v = append(s.v, x)
	s.mu.Unlock()
}

// Values returns a copy of the samples (nil on nil receiver).
func (s *Series) Values() []float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.v))
	copy(out, s.v)
	return out
}

// Len returns the number of samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.v)
}

// Reset clears the trace.
func (s *Series) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.v = s.v[:0]
	s.mu.Unlock()
}

// Scope is a node of the hierarchical instrument namespace. Instruments
// and child scopes are created on first use and are stable thereafter, so
// handles can be cached at setup time. All methods are nil-safe: a nil
// Scope yields nil instruments and nil children, making an entire
// instrumented subsystem free when telemetry is off.
type Scope struct {
	name string

	mu       sync.Mutex
	children map[string]*Scope
	childOrd []string
	counters map[string]*Counter
	timers   map[string]*Timer
	gauges   map[string]*Gauge
	series   map[string]*Series
}

// Name returns the scope's name ("" on nil).
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child returns (creating if needed) the named child scope, or nil on a
// nil receiver.
func (s *Scope) Child(name string) *Scope {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.children == nil {
		s.children = map[string]*Scope{}
	}
	c, ok := s.children[name]
	if !ok {
		c = &Scope{name: name}
		s.children[name] = c
		s.childOrd = append(s.childOrd, name)
	}
	return c
}

// Counter returns (creating if needed) the named counter, or nil.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters == nil {
		s.counters = map[string]*Counter{}
	}
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Timer returns (creating if needed) the named timer, or nil.
func (s *Scope) Timer(name string) *Timer {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.timers == nil {
		s.timers = map[string]*Timer{}
	}
	t, ok := s.timers[name]
	if !ok {
		t = &Timer{}
		s.timers[name] = t
	}
	return t
}

// Gauge returns (creating if needed) the named gauge, or nil.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gauges == nil {
		s.gauges = map[string]*Gauge{}
	}
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Series returns (creating if needed) the named series, or nil.
func (s *Scope) Series(name string) *Series {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.series == nil {
		s.series = map[string]*Series{}
	}
	sr, ok := s.series[name]
	if !ok {
		sr = &Series{}
		s.series[name] = sr
	}
	return sr
}

// sortedKeys returns the map keys in lexicographic order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Registry owns a telemetry tree. The zero value is not usable; a nil
// *Registry behaves as "telemetry off" (its Root is nil).
type Registry struct {
	root *Scope
}

// New creates an empty registry whose root scope is named "root".
func New() *Registry {
	return &Registry{root: &Scope{name: "root"}}
}

// Root returns the root scope (nil on a nil registry).
func (r *Registry) Root() *Scope {
	if r == nil {
		return nil
	}
	return r.root
}
