package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TimerSnapshot is the exported form of a Timer.
type TimerSnapshot struct {
	Calls   int64   `json:"calls"`
	Seconds float64 `json:"seconds"`
}

// ScopeSnapshot is the exported form of a Scope subtree — the JSON schema
// documented in DESIGN.md. Maps marshal with sorted keys; children keep
// creation order, matching the natural setup order (level0, level1, …).
type ScopeSnapshot struct {
	Name     string                   `json:"name"`
	Counters map[string]int64         `json:"counters,omitempty"`
	Timers   map[string]TimerSnapshot `json:"timers,omitempty"`
	Gauges   map[string]float64       `json:"gauges,omitempty"`
	Series   map[string][]float64     `json:"series,omitempty"`
	Children []*ScopeSnapshot         `json:"children,omitempty"`
}

// Snapshot captures the current values of the scope subtree. Returns nil
// on a nil scope.
func (s *Scope) Snapshot() *ScopeSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	snap := &ScopeSnapshot{Name: s.name}
	if len(s.counters) > 0 {
		snap.Counters = make(map[string]int64, len(s.counters))
		for k, c := range s.counters {
			snap.Counters[k] = c.Value()
		}
	}
	if len(s.timers) > 0 {
		snap.Timers = make(map[string]TimerSnapshot, len(s.timers))
		for k, t := range s.timers {
			snap.Timers[k] = TimerSnapshot{Calls: t.Calls(), Seconds: t.Elapsed().Seconds()}
		}
	}
	if len(s.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(s.gauges))
		for k, g := range s.gauges {
			snap.Gauges[k] = g.Value()
		}
	}
	if len(s.series) > 0 {
		snap.Series = make(map[string][]float64, len(s.series))
		for k, sr := range s.series {
			snap.Series[k] = sr.Values()
		}
	}
	order := append([]string(nil), s.childOrd...)
	children := make([]*Scope, len(order))
	for i, name := range order {
		children[i] = s.children[name]
	}
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// Find walks the snapshot tree along the given child-name path and returns
// the scope there, or nil.
func (sn *ScopeSnapshot) Find(path ...string) *ScopeSnapshot {
	cur := sn
	for _, name := range path {
		if cur == nil {
			return nil
		}
		var next *ScopeSnapshot
		for _, c := range cur.Children {
			if c.Name == name {
				next = c
				break
			}
		}
		cur = next
	}
	return cur
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Root().Snapshot()
	if snap == nil {
		snap = &ScopeSnapshot{Name: "root"}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// MarshalJSON marshals the registry snapshot.
func (r *Registry) MarshalJSON() ([]byte, error) {
	snap := r.Root().Snapshot()
	if snap == nil {
		snap = &ScopeSnapshot{Name: "root"}
	}
	return json.Marshal(snap)
}

// tableRow is one line of the rendered breakdown.
type tableRow struct {
	path    string
	calls   int64
	seconds float64
	isTimer bool
}

func collectRows(sn *ScopeSnapshot, prefix string, rows *[]tableRow) {
	if sn == nil {
		return
	}
	path := sn.Name
	if prefix != "" {
		path = prefix + "." + sn.Name
	}
	for _, k := range sortedKeys(sn.Timers) {
		t := sn.Timers[k]
		*rows = append(*rows, tableRow{path: path + "." + k, calls: t.Calls, seconds: t.Seconds, isTimer: true})
	}
	for _, k := range sortedKeys(sn.Counters) {
		*rows = append(*rows, tableRow{path: path + "." + k, calls: sn.Counters[k]})
	}
	for _, c := range sn.Children {
		collectRows(c, path, rows)
	}
}

// WriteTable renders the registry as an aligned per-component breakdown —
// the shape of the paper's Table IV (and the per-level rows of Table II):
// one row per timer/counter with its call count, accumulated wall time and
// time per call. Rows are grouped by scope in creation order; instruments
// within a scope sort lexicographically. Gauges and series are summarized
// beneath the table.
func (r *Registry) WriteTable(w io.Writer) {
	sn := r.Root().Snapshot()
	if sn == nil {
		fmt.Fprintln(w, "telemetry: disabled")
		return
	}
	var rows []tableRow
	// Skip the "root" prefix for readability.
	for _, k := range sortedKeys(sn.Timers) {
		t := sn.Timers[k]
		rows = append(rows, tableRow{path: k, calls: t.Calls, seconds: t.Seconds, isTimer: true})
	}
	for _, k := range sortedKeys(sn.Counters) {
		rows = append(rows, tableRow{path: k, calls: sn.Counters[k]})
	}
	for _, c := range sn.Children {
		collectRows(c, "", &rows)
	}
	width := len("component")
	for _, row := range rows {
		if len(row.path) > width {
			width = len(row.path)
		}
	}
	fmt.Fprintf(w, "%-*s %10s %12s %14s\n", width, "component", "calls", "time(s)", "time/call(ms)")
	for _, row := range rows {
		if row.isTimer {
			perCall := 0.0
			if row.calls > 0 {
				perCall = row.seconds / float64(row.calls) * 1e3
			}
			fmt.Fprintf(w, "%-*s %10d %12.4f %14.4f\n", width, row.path, row.calls, row.seconds, perCall)
		} else {
			fmt.Fprintf(w, "%-*s %10d %12s %14s\n", width, row.path, row.calls, "-", "-")
		}
	}
	writeExtras(w, sn, "")
}

func writeExtras(w io.Writer, sn *ScopeSnapshot, prefix string) {
	if sn == nil {
		return
	}
	path := sn.Name
	if prefix == "" && sn.Name == "root" {
		path = ""
	} else if prefix != "" {
		path = prefix + "." + sn.Name
	}
	dot := func(k string) string {
		if path == "" {
			return k
		}
		return path + "." + k
	}
	for _, k := range sortedKeys(sn.Gauges) {
		fmt.Fprintf(w, "%s = %g\n", dot(k), sn.Gauges[k])
	}
	for _, k := range sortedKeys(sn.Series) {
		v := sn.Series[k]
		if len(v) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s: %d samples, first %.6e, last %.6e\n", dot(k), len(v), v[0], v[len(v)-1])
	}
	for _, c := range sn.Children {
		writeExtras(w, c, path)
	}
}

// Since is a convenience for gauge-style one-shot timings:
// scope.Gauge("setup_seconds").Set(telemetry.Since(start)).
func Since(start time.Time) float64 { return time.Since(start).Seconds() }
