package amg

import (
	"math"
	"math/rand"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

// elasticityProblem assembles the viscous (elasticity-like) block on an
// m³ mesh with free-slip walls — the operator class AMG must handle.
func elasticityProblem(m int, eta func(x, y, z float64) float64) (*fem.Problem, *la.CSR) {
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax)
	p := fem.NewProblem(da, bc)
	p.SetCoefficientsFunc(eta, nil)
	return p, fem.AssembleViscous(p)
}

func rbm(p *fem.Problem) *la.Dense {
	return RigidBodyModes(p.DA.Coords, p.BC.Mask)
}

func TestRigidBodyModesInNullSpace(t *testing.T) {
	// Unconstrained operator must annihilate all six modes (A·B ≈ 0).
	da := mesh.New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	p := fem.NewProblem(da, nil)
	a := fem.AssembleViscous(p)
	b := RigidBodyModes(p.DA.Coords, nil)
	n := a.NRows
	col := la.NewVec(n)
	y := la.NewVec(n)
	for m := 0; m < 6; m++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, m)
		}
		a.MulVec(col, y)
		if r := y.NormInf(); r > 1e-10 {
			t.Fatalf("mode %d: |A·b|∞ = %v", m, r)
		}
	}
}

func TestSAHierarchyShape(t *testing.T) {
	p, a := elasticityProblem(4, func(x, y, z float64) float64 { return 1 })
	sa, err := New(a, 3, rbm(p), GAMGLike())
	if err != nil {
		t.Fatal(err)
	}
	if sa.NumLevels < 2 {
		t.Fatalf("expected coarsening, got %d levels", sa.NumLevels)
	}
	last := sa.SetupStats[len(sa.SetupStats)-1]
	if last.N > 2*sa.opt.MaxCoarseSize && sa.NumLevels < sa.opt.MaxLevels {
		t.Fatalf("coarsest level still has %d unknowns", last.N)
	}
	if sa.OperatorComplexity < 1 || sa.OperatorComplexity > 3 {
		t.Fatalf("operator complexity %v outside sane range", sa.OperatorComplexity)
	}
}

func saIterations(t *testing.T, m int, eta func(x, y, z float64) float64, opt Options) int {
	t.Helper()
	p, a := elasticityProblem(m, eta)
	sa, err := New(a, 3, rbm(p), opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	n := a.NRows
	b := la.NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	p.BC.ZeroConstrained(b)
	x := la.NewVec(n)
	prm := krylov.DefaultParams()
	prm.RTol = 1e-8
	prm.MaxIt = 200
	res := krylov.FGMRES(krylov.CSROp{A: a}, sa, b, x, prm)
	if !res.Converged {
		t.Fatalf("SA-FGMRES did not converge (%d its, rel %e)", res.Iterations, res.Residual/res.Residual0)
	}
	return res.Iterations
}

func TestSAConvergesConstant(t *testing.T) {
	its := saIterations(t, 6, func(x, y, z float64) float64 { return 1 }, GAMGLike())
	if its > 60 {
		t.Fatalf("SA took %d iterations", its)
	}
}

func TestSAConvergesVariable(t *testing.T) {
	eta := func(x, y, z float64) float64 {
		return math.Pow(10, 3*math.Sin(math.Pi*x)*math.Sin(math.Pi*y)*math.Sin(math.Pi*z))
	}
	its := saIterations(t, 6, eta, GAMGLike())
	if its > 100 {
		t.Fatalf("SA variable viscosity took %d iterations", its)
	}
}

func TestSAMLConfigurations(t *testing.T) {
	one := func(x, y, z float64) float64 { return 1 }
	itML := saIterations(t, 5, one, MLLike())
	itStrong := saIterations(t, 5, one, MLStrongLike())
	if itML > 80 {
		t.Fatalf("ML-like config took %d iterations", itML)
	}
	// The stronger smoother should not need more iterations.
	if itStrong > itML+5 {
		t.Fatalf("SAML-ii (%d its) worse than SAML-i (%d its)", itStrong, itML)
	}
}

func TestSABeatsJacobiPreconditioning(t *testing.T) {
	one := func(x, y, z float64) float64 { return 1 }
	p, a := elasticityProblem(6, one)
	rng := rand.New(rand.NewSource(9))
	n := a.NRows
	b := la.NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	p.BC.ZeroConstrained(b)
	prm := krylov.DefaultParams()
	prm.RTol = 1e-6
	prm.MaxIt = 2000
	d := la.NewVec(n)
	a.Diag(d)
	x1 := la.NewVec(n)
	jres := krylov.CG(krylov.CSROp{A: a}, krylov.NewJacobi(d), b, x1, prm)
	sa, err := New(a, 3, rbm(p), GAMGLike())
	if err != nil {
		t.Fatal(err)
	}
	x2 := la.NewVec(n)
	sres := krylov.FGMRES(krylov.CSROp{A: a}, sa, b, x2, prm)
	if !sres.Converged || sres.Iterations >= jres.Iterations {
		t.Fatalf("SA %d its vs Jacobi-CG %d its", sres.Iterations, jres.Iterations)
	}
}

func TestDropSmall(t *testing.T) {
	b := la.NewBuilder(2, 3)
	b.Add(0, 0, 1.0)
	b.Add(0, 1, 0.001)
	b.Add(0, 2, 0.5)
	b.Add(1, 1, 2.0)
	a := dropSmall(b.ToCSR(), 0.01)
	if a.At(0, 1) != 0 {
		t.Fatal("small entry not dropped")
	}
	if a.At(0, 0) != 1 || a.At(0, 2) != 0.5 || a.At(1, 1) != 2 {
		t.Fatal("large entries corrupted")
	}
}

// TestAggregationCoversAllNodes: every node lands in exactly one
// aggregate, exercised indirectly through P0 row sums: each block row of
// the tentative prolongator has at least one nonzero (no orphan dofs)
// unless the near-null space is zero there (constrained dofs).
func TestProlongatorRowCoverage(t *testing.T) {
	p, a := elasticityProblem(4, func(x, y, z float64) float64 { return 1 })
	nns := rbm(p)
	pm, cnns, naggs, err := buildProlongator(a, 3, nns, GAMGLike())
	if err != nil {
		t.Fatal(err)
	}
	if pm == nil || naggs <= 0 {
		t.Fatal("no aggregation")
	}
	if cnns.Rows != naggs*6 || cnns.Cols != 6 {
		t.Fatalf("coarse NNS shape %dx%d", cnns.Rows, cnns.Cols)
	}
	orphans := 0
	for r := 0; r < pm.NRows; r++ {
		if pm.RowPtr[r+1] == pm.RowPtr[r] && !p.BC.Mask[r] {
			orphans++
		}
	}
	if orphans > 0 {
		t.Fatalf("%d free dofs with empty prolongator rows", orphans)
	}
	// Aggregates must coarsen meaningfully: ≥ 4× reduction in nodes.
	if naggs*4 > a.NRows/3 {
		t.Fatalf("weak coarsening: %d aggregates from %d nodes", naggs, a.NRows/3)
	}
}

// TestSAPreservesNearNullSpace: the smoothed prolongator must reproduce
// the near-null space: B_fine ≈ P·B_coarse up to the smoothing correction
// (exactly for the tentative part: P0·R = B).
func TestTentativeProlongatorExactness(t *testing.T) {
	p, a := elasticityProblem(3, func(x, y, z float64) float64 { return 1 })
	nns := rbm(p)
	orig := nns.Clone()
	opt := GAMGLike()
	opt.OmegaScale = 1e-12 // effectively unsmoothed
	pm, cnns, _, err := buildProlongator(a, 3, nns, opt)
	if err != nil {
		t.Fatal(err)
	}
	n := a.NRows
	for m := 0; m < 6; m++ {
		cvec := la.NewVec(cnns.Rows)
		for i := range cvec {
			cvec[i] = cnns.At(i, m)
		}
		fvec := la.NewVec(n)
		pm.MulVec(cvec, fvec)
		for i := 0; i < n; i++ {
			want := orig.At(i, m)
			if math.Abs(fvec[i]-want) > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("mode %d dof %d: P·Bc = %v, B = %v", m, i, fvec[i], want)
			}
		}
	}
}
