package amg

import (
	"math"
	"sort"

	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
)

// buildProlongator constructs the smoothed-aggregation prolongator for one
// coarsening step:
//
//  1. condense A into a node graph (bs dofs per node) with block Frobenius
//     norms as edge strengths;
//  2. keep edges with ‖A_ij‖ > θ·√(‖A_ii‖·‖A_jj‖) (strength threshold,
//     paper: 0.01);
//  3. greedily aggregate nodes (two-phase: root+neighbours, then attach
//     leftovers to the most strongly connected aggregate);
//  4. build the tentative prolongator from the near-null-space candidates
//     (rigid body modes on the finest level) with a per-aggregate thin QR —
//     the Q factors become P0, the R factors the coarse candidates;
//  5. smooth: P = (I - ω·D⁻¹A)·P0 with ω = OmegaScale/λmax(D⁻¹A);
//  6. optionally drop small entries (ML-style drop tolerance).
//
// It returns nil when the graph cannot be coarsened further.
func buildProlongator(a *la.CSR, bs int, nns *la.Dense, opt Options) (*la.CSR, *la.Dense, int, error) {
	n := a.NRows
	if bs < 1 || n%bs != 0 {
		bs = 1
	}
	nn := n / bs
	k := nns.Cols

	// Detect decoupled rows (Dirichlet identity rows on the fine level,
	// dead-dof identities inserted by fixZeroDiag on coarse levels): all
	// off-diagonal entries zero. Their diagonals live on an arbitrary
	// scale (1.0) unrelated to the PDE coefficients, so including them in
	// the block Frobenius norms poisons the strength-of-connection test —
	// with a low ambient viscosity every boundary block would look
	// strongly diagonally dominant, the graph would fragment into
	// singleton aggregates, and coarsening would stall (operator
	// complexity blow-up). They are therefore excluded from the strength
	// computation entirely.
	decoupled := make([]bool, n)
	for r := 0; r < n; r++ {
		dec := true
		for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
			if a.ColInd[p] != r && a.Val[p] != 0 {
				dec = false
				break
			}
		}
		decoupled[r] = dec
	}

	// --- 1+2: strength graph over node blocks.
	diagS := make([]float64, nn)
	type edge struct {
		to int
		s  float64
	}
	adj := make([][]edge, nn)
	{
		// Accumulate block Frobenius norms row-block by row-block.
		acc := map[int]float64{}
		for bi := 0; bi < nn; bi++ {
			for key := range acc {
				delete(acc, key)
			}
			for r := bi * bs; r < (bi+1)*bs; r++ {
				if decoupled[r] {
					continue
				}
				for p := a.RowPtr[r]; p < a.RowPtr[r+1]; p++ {
					bj := a.ColInd[p] / bs
					v := a.Val[p]
					acc[bj] += v * v
				}
			}
			diagS[bi] = math.Sqrt(acc[bi])
			for bj, s2 := range acc {
				if bj != bi {
					adj[bi] = append(adj[bi], edge{to: bj, s: math.Sqrt(s2)})
				}
			}
			// Map iteration order is randomized; the greedy aggregation
			// below is order-sensitive, so sort for deterministic (and
			// hence bit-exactly restartable) coarse hierarchies.
			es := adj[bi]
			sort.Slice(es, func(x, y int) bool { return es[x].to < es[y].to })
		}
	}
	strong := make([][]edge, nn)
	for bi := 0; bi < nn; bi++ {
		for _, e := range adj[bi] {
			thr := opt.Strength * math.Sqrt(diagS[bi]*diagS[e.to])
			if e.s > thr {
				strong[bi] = append(strong[bi], e)
			}
		}
	}

	// --- 3: greedy aggregation.
	aggOf := make([]int, nn)
	for i := range aggOf {
		aggOf[i] = -1
	}
	naggs := 0
	// Phase 1: roots whose strong neighbourhood is fully unaggregated.
	for bi := 0; bi < nn; bi++ {
		if aggOf[bi] >= 0 {
			continue
		}
		free := true
		for _, e := range strong[bi] {
			if aggOf[e.to] >= 0 {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		aggOf[bi] = naggs
		for _, e := range strong[bi] {
			aggOf[e.to] = naggs
		}
		naggs++
	}
	// Phase 2: attach leftovers to the most strongly connected aggregate.
	for bi := 0; bi < nn; bi++ {
		if aggOf[bi] >= 0 {
			continue
		}
		best, bestS := -1, 0.0
		for _, e := range strong[bi] {
			if aggOf[e.to] >= 0 && e.s > bestS {
				best, bestS = aggOf[e.to], e.s
			}
		}
		if best >= 0 {
			aggOf[bi] = best
		} else {
			aggOf[bi] = naggs // isolated singleton
			naggs++
		}
	}
	if naggs >= nn {
		return nil, nil, 0, nil // no coarsening achieved
	}

	// --- 4: tentative prolongator via per-aggregate QR.
	members := make([][]int, naggs)
	for bi, ag := range aggOf {
		members[ag] = append(members[ag], bi)
	}
	p0b := la.NewBuilder(n, naggs*k)
	coarseNNS := la.NewDense(naggs*k, k)
	for ag, ms := range members {
		rows := len(ms) * bs
		local := la.NewDense(rows, k)
		for li, bi := range ms {
			for c := 0; c < bs; c++ {
				for m := 0; m < k; m++ {
					local.Set(li*bs+c, m, nns.At(bi*bs+c, m))
				}
			}
		}
		q, r := la.QRThin(local)
		for li, bi := range ms {
			for c := 0; c < bs; c++ {
				for m := 0; m < k; m++ {
					v := q.At(li*bs+c, m)
					if v != 0 {
						p0b.Add(bi*bs+c, ag*k+m, v)
					}
				}
			}
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				coarseNNS.Set(ag*k+i, j, r.At(i, j))
			}
		}
	}
	p0 := p0b.ToCSR()

	// --- 5: prolongator smoothing.
	diag := la.NewVec(n)
	a.Diag(diag)
	invd := la.NewVec(n)
	for i, d := range diag {
		if d != 0 {
			invd[i] = 1 / d
		}
	}
	jac := krylov.NewJacobi(diag)
	lmax := krylov.EstimateLambdaMax(krylov.CSROp{A: a}, jac, opt.EigIts)
	if lmax <= 0 {
		lmax = 1
	}
	omega := opt.OmegaScale / lmax
	dinvA := a.Clone()
	dinvA.ScaleRows(invd)
	sp0 := la.MatMul(dinvA, p0)
	p := la.AddScaled(p0, sp0, -omega)

	// --- 6: ML-style drop tolerance.
	if opt.DropTol > 0 {
		p = dropSmall(p, opt.DropTol)
	}
	return p, coarseNNS, naggs, nil
}

// dropSmall removes entries with |v| < tol·max|row| and returns the
// filtered matrix.
func dropSmall(a *la.CSR, tol float64) *la.CSR {
	b := la.NewBuilder(a.NRows, a.NCols)
	for i := 0; i < a.NRows; i++ {
		var rowMax float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if v := math.Abs(a.Val[k]); v > rowMax {
				rowMax = v
			}
		}
		thr := tol * rowMax
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if math.Abs(a.Val[k]) >= thr && a.Val[k] != 0 {
				b.Add(i, a.ColInd[k], a.Val[k])
			}
		}
	}
	return b.ToCSR()
}
