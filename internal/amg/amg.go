// Package amg implements a smoothed-aggregation algebraic multigrid
// preconditioner — the stand-in for both PETSc's GAMG and Trilinos' ML in
// the paper's comparisons (§III-C, §IV-C, Table IV). It is used in two
// roles: as the coarse-grid solver of the geometric multigrid hierarchy
// ("GAMG ... to perform further distributed coarsening", with the six
// rigid-body modes and a strength threshold of 0.01), and as a standalone
// preconditioner for the assembled fine-level operator (the SA-i and
// SAML-* configurations of Table IV).
package amg

import (
	"fmt"
	"math"

	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/telemetry"
)

// Options configures the smoothed-aggregation setup.
type Options struct {
	// Strength is the aggregation graph threshold θ: an edge (i,j) is kept
	// if ‖A_ij‖ > θ·√(‖A_ii‖‖A_jj‖). The paper uses 0.01.
	Strength float64
	// MaxCoarseSize stops coarsening once a level has at most this many
	// unknowns (paper's ML configuration: 100).
	MaxCoarseSize int
	// MaxLevels bounds the hierarchy depth.
	MaxLevels int
	// SmoothSteps is the Chebyshev smoother degree per pre/post smooth.
	SmoothSteps int
	// OmegaScale sets the prolongator smoothing damping ω = OmegaScale/λmax
	// (classical smoothed aggregation uses 4/3).
	OmegaScale float64
	// DropTol drops entries of the smoothed prolongator below
	// DropTol·max|row| (the ML configuration of Table IV uses 0.01;
	// 0 keeps everything, the GAMG-like default).
	DropTol float64
	// CoarseBlocks is the number of block-Jacobi blocks (each solved by
	// exact LU) on the coarsest level; 1 = a single exact solve.
	CoarseBlocks int
	// ILUSmoother switches the level smoother from Chebyshev/Jacobi to
	// FGMRES(2) preconditioned with block-Jacobi ILU(0) (the stronger
	// smoother of the SAML-ii configuration).
	ILUSmoother bool
	// EigIts is the number of power iterations for eigenvalue estimates.
	EigIts int
}

// GAMGLike returns the options reproducing the paper's GAMG usage:
// threshold 0.01, rigid-body modes, Chebyshev/Jacobi smoothing, block
// Jacobi + LU coarse solve.
func GAMGLike() Options {
	return Options{Strength: 0.01, MaxCoarseSize: 100, MaxLevels: 10,
		SmoothSteps: 2, OmegaScale: 4.0 / 3.0, CoarseBlocks: 1, EigIts: 10}
}

// MLLike returns the options reproducing the paper's ML configuration
// (SAML-i): drop tolerance 0.01 in the prolongator, max coarse size 100.
func MLLike() Options {
	o := GAMGLike()
	o.DropTol = 0.01
	return o
}

// MLStrongLike returns the SAML-ii configuration: ML-style setup with the
// stronger FGMRES(2)/block-Jacobi-ILU(0) smoother.
func MLStrongLike() Options {
	o := MLLike()
	o.ILUSmoother = true
	return o
}

type level struct {
	a        *la.CSR
	p        *la.CSR // prolongation from the next-coarser level (nil on coarsest)
	smoother krylov.Preconditioner
	smooth   func(b, x la.Vec, zero bool)
	r, e, b  la.Vec

	// Cached telemetry handles; nil (inert) when telemetry is off.
	smoothT, opT     *telemetry.Timer
	smoothC, opCount *telemetry.Counter
}

// SA is the assembled smoothed-aggregation hierarchy. It satisfies
// krylov.Preconditioner (one V-cycle per application).
type SA struct {
	levels []*level
	coarse krylov.Preconditioner
	opt    Options
	// Complexity diagnostics.
	OperatorComplexity float64
	NumLevels          int
	SetupStats         []LevelStats

	cycles  *telemetry.Counter
	coarseT *telemetry.Timer
	coarseC *telemetry.Counter
}

// SetTelemetry installs per-level instrumentation under sc, mirroring
// mg.MG.SetTelemetry: child scopes level0…levelN with "smooth"/"op" timers
// and "smooth_applies"/"op_applies" counters, a "coarse" child with a
// "solve" timer and "solves" counter, and a "cycles" counter on sc.
// Handles are cached; the cycle hot path never takes the scope lock.
// Passing nil uninstalls.
func (sa *SA) SetTelemetry(sc *telemetry.Scope) {
	for l, lev := range sa.levels {
		if sc == nil {
			lev.smoothT, lev.opT, lev.smoothC, lev.opCount = nil, nil, nil, nil
			continue
		}
		lsc := sc.Child(fmt.Sprintf("level%d", l))
		lev.smoothT = lsc.Timer("smooth")
		lev.opT = lsc.Timer("op")
		lev.smoothC = lsc.Counter("smooth_applies")
		lev.opCount = lsc.Counter("op_applies")
	}
	if sc == nil {
		sa.cycles, sa.coarseT, sa.coarseC = nil, nil, nil
		return
	}
	sa.cycles = sc.Counter("cycles")
	sa.coarseT = sc.Child("coarse").Timer("solve")
	sa.coarseC = sc.Child("coarse").Counter("solves")
}

// LevelStats reports per-level sizes for diagnostics and tests.
type LevelStats struct {
	N, NNZ, Aggregates int
}

// RigidBodyModes builds the 6-column near-null-space matrix of 3-D
// elasticity (3 translations + 3 rotations) for nodes at the given
// coordinates (3 floats per node, matching 3 dofs per node). Constrained
// dofs are zeroed, mirroring PETSc's MatNullSpaceCreateRigidBody +
// MatZeroRows usage.
func RigidBodyModes(coords []float64, mask []bool) *la.Dense {
	nn := len(coords) / 3
	b := la.NewDense(3*nn, 6)
	// Centre coordinates for conditioning.
	var cx, cy, cz float64
	for n := 0; n < nn; n++ {
		cx += coords[3*n]
		cy += coords[3*n+1]
		cz += coords[3*n+2]
	}
	cx /= float64(nn)
	cy /= float64(nn)
	cz /= float64(nn)
	for n := 0; n < nn; n++ {
		x, y, z := coords[3*n]-cx, coords[3*n+1]-cy, coords[3*n+2]-cz
		b.Set(3*n+0, 0, 1)
		b.Set(3*n+1, 1, 1)
		b.Set(3*n+2, 2, 1)
		// Rotation about x: (0, -z, y); about y: (z, 0, -x); about z: (-y, x, 0).
		b.Set(3*n+1, 3, -z)
		b.Set(3*n+2, 3, y)
		b.Set(3*n+0, 4, z)
		b.Set(3*n+2, 4, -x)
		b.Set(3*n+0, 5, -y)
		b.Set(3*n+1, 5, x)
	}
	if mask != nil {
		for d, m := range mask {
			if m {
				for c := 0; c < 6; c++ {
					b.Set(d, c, 0)
				}
			}
		}
	}
	return b
}

// New builds the SA hierarchy for the SPD block matrix a with block size
// bs (3 for the fine elasticity/viscous level) and near-null-space matrix
// nns (rows = dofs of a, cols = modes; typically RigidBodyModes). nns is
// consumed (modified).
func New(a *la.CSR, bs int, nns *la.Dense, opt Options) (*SA, error) {
	if a.NRows != nns.Rows {
		return nil, fmt.Errorf("amg: near-null space rows %d != matrix dim %d", nns.Rows, a.NRows)
	}
	if opt.MaxLevels < 2 {
		opt.MaxLevels = 10
	}
	if opt.MaxCoarseSize <= 0 {
		opt.MaxCoarseSize = 100
	}
	if opt.SmoothSteps <= 0 {
		opt.SmoothSteps = 2
	}
	if opt.OmegaScale <= 0 {
		opt.OmegaScale = 4.0 / 3.0
	}
	if opt.EigIts <= 0 {
		opt.EigIts = 10
	}
	if opt.CoarseBlocks <= 0 {
		opt.CoarseBlocks = 1
	}
	sa := &SA{opt: opt}
	sa.levels = append(sa.levels, &level{a: a})
	curBS := bs
	curNNS := nns
	totalNNZ := float64(a.NNZ())
	fineNNZ := totalNNZ
	for {
		cur := sa.levels[len(sa.levels)-1].a
		if cur.NRows <= opt.MaxCoarseSize || len(sa.levels) >= opt.MaxLevels {
			break
		}
		p, coarseNNS, naggs, err := buildProlongator(cur, curBS, curNNS, opt)
		if err != nil {
			return nil, err
		}
		if p == nil || p.NCols >= cur.NRows { // aggregation stalled
			break
		}
		ac := la.RAP(cur, p)
		fixZeroDiag(ac)
		totalNNZ += float64(ac.NNZ())
		sa.levels = append(sa.levels, &level{a: ac, p: p})
		sa.SetupStats = append(sa.SetupStats, LevelStats{N: cur.NRows, NNZ: cur.NNZ(), Aggregates: naggs})
		curNNS = coarseNNS
		curBS = coarseNNS.Cols
	}
	for _, lev := range sa.levels {
		sa.installSmoother(lev)
		n := lev.a.NRows
		lev.r, lev.e, lev.b = la.NewVec(n), la.NewVec(n), la.NewVec(n)
	}
	sa.NumLevels = len(sa.levels)
	sa.OperatorComplexity = totalNNZ / fineNNZ
	last := sa.levels[len(sa.levels)-1]
	bj, err := krylov.NewBlockJacobi(last.a, opt.CoarseBlocks)
	if err != nil {
		return nil, fmt.Errorf("amg: coarse factorization: %w", err)
	}
	sa.coarse = bj
	sa.SetupStats = append(sa.SetupStats, LevelStats{N: last.a.NRows, NNZ: last.a.NNZ()})
	return sa, nil
}

// installSmoother attaches the configured smoother to a level.
func (sa *SA) installSmoother(lev *level) {
	a := lev.a
	d := la.NewVec(a.NRows)
	a.Diag(d)
	for i, v := range d {
		if v == 0 {
			d[i] = 1
		}
	}
	jac := krylov.NewJacobi(d)
	op := krylov.CSROp{A: a}
	if sa.opt.ILUSmoother {
		// FGMRES(2) preconditioned with block-Jacobi ILU(0): the SAML-ii
		// smoother. Block Jacobi here means ILU(0) of the whole level in
		// our single-address-space setting (one "subdomain").
		ilu, err := krylov.NewILUPC(a)
		var pc krylov.Preconditioner = jac
		if err == nil {
			pc = ilu
		}
		inner := &krylov.InnerKrylov{A: op, M: pc, Method: "fgmres",
			Prm: krylov.Params{RTol: 1e-12, ATol: 1e-300, MaxIt: 2, Restart: 2}}
		lev.smoother = inner
		lev.smooth = func(b, x la.Vec, zero bool) {
			if zero {
				inner.Apply(b, x)
				return
			}
			r := la.NewVec(len(b))
			op.Apply(x, r)
			r.AYPX(-1, b)
			e := la.NewVec(len(b))
			inner.Apply(r, e)
			x.AXPY(1, e)
		}
		return
	}
	lmax := krylov.EstimateLambdaMax(op, jac, sa.opt.EigIts)
	ch := krylov.NewChebyshev(op, jac, lmax, sa.opt.SmoothSteps)
	lev.smoother = ch
	lev.smooth = func(b, x la.Vec, zero bool) { ch.Smooth(b, x, zero) }
}

// fixZeroDiag makes "dead" coarse dofs harmless: rank-deficient aggregates
// (e.g. aggregates dominated by Dirichlet-constrained fine dofs) produce
// zero prolongator columns and therefore zero rows/columns in the Galerkin
// product. Such rows get a unit diagonal so every coarse solve stays
// nonsingular; since their columns stay zero the added identity never
// pollutes live dofs. The matrix is rebuilt only when needed.
func fixZeroDiag(a *la.CSR) {
	var maxDiag float64
	dead := make([]bool, a.NRows)
	anyDead := false
	for r := 0; r < a.NRows; r++ {
		d := a.At(r, r)
		if m := math.Abs(d); m > maxDiag {
			maxDiag = m
		}
	}
	thr := 1e-12 * maxDiag
	for r := 0; r < a.NRows; r++ {
		if math.Abs(a.At(r, r)) <= thr {
			dead[r] = true
			anyDead = true
		}
	}
	if !anyDead {
		return
	}
	b := la.NewBuilder(a.NRows, a.NCols)
	for r := 0; r < a.NRows; r++ {
		if dead[r] {
			b.Set(r, r, 1)
			continue
		}
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			if c := a.ColInd[k]; !dead[c] {
				b.Add(r, c, a.Val[k])
			}
		}
	}
	*a = *b.ToCSR()
}

// Apply runs one V-cycle: z ≈ A⁻¹·r.
func (sa *SA) Apply(r, z la.Vec) {
	z.Zero()
	sa.vcycle(0, r, z, true)
}

func (sa *SA) vcycle(l int, b, x la.Vec, zero bool) {
	lev := sa.levels[l]
	if l == 0 {
		sa.cycles.Inc()
	}
	if l == len(sa.levels)-1 {
		st := sa.coarseT.Start()
		if zero {
			sa.coarse.Apply(b, x)
		} else {
			lev.a.MulVec(x, lev.r)
			lev.r.AYPX(-1, b)
			sa.coarse.Apply(lev.r, lev.e)
			x.AXPY(1, lev.e)
		}
		sa.coarseT.Stop(st)
		sa.coarseC.Inc()
		return
	}
	st := lev.smoothT.Start()
	lev.smooth(b, x, zero)
	lev.smoothT.Stop(st)
	lev.smoothC.Inc()
	st = lev.opT.Start()
	lev.a.MulVec(x, lev.r)
	lev.opT.Stop(st)
	lev.opCount.Inc()
	lev.r.AYPX(-1, b)
	next := sa.levels[l+1]
	// Restrict: b_c = Pᵀ r.
	pt := next.p
	restrictT(pt, lev.r, next.b)
	next.e.Zero()
	sa.vcycle(l+1, next.b, next.e, true)
	// Prolong and correct.
	pmulAdd(pt, next.e, x)
	st = lev.smoothT.Start()
	lev.smooth(b, x, false)
	lev.smoothT.Stop(st)
	lev.smoothC.Inc()
}

// restrictT computes rc = Pᵀ·rf without materializing the transpose.
func restrictT(p *la.CSR, rf, rc la.Vec) {
	rc.Zero()
	for i := 0; i < p.NRows; i++ {
		v := rf[i]
		if v == 0 {
			continue
		}
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			rc[p.ColInd[k]] += p.Val[k] * v
		}
	}
}

// pmulAdd computes x += P·e.
func pmulAdd(p *la.CSR, e, x la.Vec) {
	for i := 0; i < p.NRows; i++ {
		var s float64
		for k := p.RowPtr[i]; k < p.RowPtr[i+1]; k++ {
			s += p.Val[k] * e[p.ColInd[k]]
		}
		x[i] += s
	}
}
