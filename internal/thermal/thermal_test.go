package thermal

import (
	"math"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

func thermalProblem(m int) *fem.Problem {
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	return fem.NewProblem(da, nil)
}

// TestSteadyConduction: with fixed temperatures at ymin/ymax and many
// implicit steps, the solution approaches the linear conduction profile.
func TestSteadyConduction(t *testing.T) {
	p := thermalProblem(4)
	s := New(p, 1.0)
	s.SetFaceTemperature(mesh.YMin, 0)
	s.SetFaceTemperature(mesh.YMax, 1)
	T := make([]float64, p.DA.NVertices())
	for i := 0; i < 60; i++ {
		if err := s.Step(T, nil, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	for v := range T {
		_, j, _ := p.DA.VertexIJK(v)
		y := float64(j) / float64(p.DA.My)
		if math.Abs(T[v]-y) > 2e-3 {
			t.Fatalf("vertex %d: T=%v, want %v", v, T[v], y)
		}
	}
}

// TestDiffusionDecay: an interior hot spot decays monotonically and
// conserves positivity-ish behaviour (no new extrema beyond roundoff).
func TestDiffusionDecay(t *testing.T) {
	p := thermalProblem(4)
	s := New(p, 0.1)
	// Fixed zero on all faces.
	for _, f := range []mesh.Face{mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax} {
		s.SetFaceTemperature(f, 0)
	}
	T := make([]float64, p.DA.NVertices())
	centre := p.DA.VertexID(2, 2, 2)
	T[centre] = 1
	prevMax := 1.0
	for i := 0; i < 10; i++ {
		if err := s.Step(T, nil, 0.05); err != nil {
			t.Fatal(err)
		}
		max := 0.0
		for _, v := range T {
			if v > max {
				max = v
			}
		}
		if max > prevMax+1e-12 {
			t.Fatalf("step %d: maximum grew %v -> %v", i, prevMax, max)
		}
		prevMax = max
	}
	if prevMax > 0.5 {
		t.Fatalf("hot spot did not decay: %v", prevMax)
	}
}

// advectFront drives an advection-dominated problem with an unresolvable
// outflow boundary layer (hot inflow, cold Dirichlet outflow, cell Péclet
// ≫ 1) to near-steady state and returns the worst violation of the
// [0, 1] maximum principle — the classic setting where the plain Galerkin
// method produces node-to-node oscillations and SUPG does not.
func advectFront(t *testing.T, supg bool) (overshoot float64) {
	t.Helper()
	p := thermalProblem(8)
	s := New(p, 1e-6) // cell Péclet ≈ 6·10⁴
	s.SUPG = supg
	s.SetFaceTemperature(mesh.XMin, 1)
	s.SetFaceTemperature(mesh.XMax, 0)
	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < p.DA.NNodes(); n++ {
		u[3*n] = 1 // uniform +x velocity
	}
	T := make([]float64, p.DA.NVertices())
	for i := 0; i < 30; i++ {
		if err := s.Step(T, u, 0.25); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range T {
		if v > 1 && v-1 > overshoot {
			overshoot = v - 1
		}
		if v < 0 && -v > overshoot {
			overshoot = -v
		}
	}
	return overshoot
}

// TestSUPGSuppressesOscillations (ablation): the outflow boundary layer
// makes the unstabilized Galerkin solution oscillate; SUPG keeps the
// violation of the maximum principle small.
func TestSUPGSuppressesOscillations(t *testing.T) {
	with := advectFront(t, true)
	without := advectFront(t, false)
	if with > 0.1 {
		t.Fatalf("SUPG solution overshoots by %v", with)
	}
	if without < 5*with || without < 0.05 {
		t.Fatalf("stabilization made no difference: with %v, without %v", with, without)
	}
}

// TestAdvectionTransportsFront: after enough time the front reaches the
// middle of the domain with roughly the inflow value behind it.
func TestAdvectionTransportsFront(t *testing.T) {
	p := thermalProblem(8)
	s := New(p, 1e-6)
	s.SetFaceTemperature(mesh.XMin, 1)
	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < p.DA.NNodes(); n++ {
		u[3*n] = 1
	}
	T := make([]float64, p.DA.NVertices())
	for i := 0; i < 20; i++ { // t = 1.0: front crosses the whole box
		if err := s.Step(T, u, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	mid := p.DA.VertexID(4, 4, 4)
	if T[mid] < 0.8 {
		t.Fatalf("front did not arrive: T(mid) = %v", T[mid])
	}
}

// TestTemperatureAt: interpolation reproduces a trilinear vertex field.
func TestTemperatureAt(t *testing.T) {
	p := thermalProblem(2)
	T := make([]float64, p.DA.NVertices())
	for v := range T {
		i, j, k := p.DA.VertexIJK(v)
		x, y, z := p.DA.NodeCoords(p.DA.VertexNode(i, j, k))
		T[v] = 1 + 2*x - y + 3*z
	}
	// Element 0 spans [0,0.5]³; reference (0,0,0) is its centre (0.25...).
	got := TemperatureAt(p, T, 0, 0, 0, 0)
	want := 1 + 2*0.25 - 0.25 + 3*0.25
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("T = %v, want %v", got, want)
	}
}
