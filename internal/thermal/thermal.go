// Package thermal solves the energy equation of paper §V (Eq. 20),
// ∂T/∂t + u·∇T = ∇·(κ∇T), with Q1 finite elements on the corner-vertex
// grid of the Q2 mesh, stabilized by the SUPG method and stepped with
// backward Euler. The advecting velocity is the Q2 Stokes solution,
// interpolated to the Q1 quadrature points.
package thermal

import (
	"fmt"
	"math"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

// Solver assembles and solves one backward-Euler step of the stabilized
// energy equation on the vertex grid.
type Solver struct {
	Prob  *fem.Problem
	Kappa float64 // thermal diffusivity κ

	// Dirichlet data on the vertex grid.
	Mask []bool
	Val  []float64

	// SUPG enables streamline-upwind stabilization (paper's choice for
	// advection-dominated transport). Disable only for ablation studies.
	SUPG bool

	// Params controls the linear solve (GMRES by default).
	Params krylov.Params
}

// New creates a thermal solver with empty boundary conditions.
func New(p *fem.Problem, kappa float64) *Solver {
	prm := krylov.DefaultParams()
	prm.RTol = 1e-10
	prm.MaxIt = 2000
	prm.Restart = 50
	return &Solver{
		Prob: p, Kappa: kappa, SUPG: true,
		Mask:   make([]bool, p.DA.NVertices()),
		Val:    make([]float64, p.DA.NVertices()),
		Params: prm,
	}
}

// SetFaceTemperature imposes T = v on all vertices of face f.
func (s *Solver) SetFaceTemperature(f mesh.Face, v float64) {
	da := s.Prob.DA
	var imin, imax, jmin, jmax, kmin, kmax = 0, da.Mx, 0, da.My, 0, da.Mz
	switch f {
	case mesh.XMin:
		imax = 0
	case mesh.XMax:
		imin = da.Mx
	case mesh.YMin:
		jmax = 0
	case mesh.YMax:
		jmin = da.My
	case mesh.ZMin:
		kmax = 0
	case mesh.ZMax:
		kmin = da.Mz
	}
	for k := kmin; k <= kmax; k++ {
		for j := jmin; j <= jmax; j++ {
			for i := imin; i <= imax; i++ {
				v2 := da.VertexID(i, j, k)
				s.Mask[v2] = true
				s.Val[v2] = v
			}
		}
	}
}

// gauss2 is the 2-point Gauss rule used for Q1 elements.
var gauss2 = [2]float64{-1 / math.Sqrt(3.0), 1 / math.Sqrt(3.0)}

// Step advances T (vertex grid) by one backward-Euler step of size dt
// with advecting Q2 velocity u (pass nil for pure diffusion). T is
// updated in place.
func (s *Solver) Step(T []float64, u la.Vec, dt float64) error {
	nv := s.Prob.DA.NVertices()
	if len(T) != nv {
		return fmt.Errorf("thermal: T length %d, want %d", len(T), nv)
	}
	a, rhs := s.Assemble(T, u, dt)
	// Jacobi-preconditioned GMRES (the system is nonsymmetric with SUPG).
	d := la.NewVec(nv)
	a.Diag(d)
	x := la.NewVec(nv)
	copy(x, T)
	res := krylov.GMRES(krylov.CSROp{A: a}, krylov.NewJacobi(d), rhs, x, s.Params)
	if !res.Converged {
		return fmt.Errorf("thermal: linear solve failed after %d its (rel %.2e)",
			res.Iterations, res.Residual/math.Max(res.Residual0, 1e-300))
	}
	copy(T, x)
	return nil
}

// Assemble builds the backward-Euler system matrix and right-hand side
// for the current state (exposed for tests and diagnostics).
func (s *Solver) Assemble(T []float64, u la.Vec, dt float64) (*la.CSR, la.Vec) {
	p := s.Prob
	da := p.DA
	nv := da.NVertices()
	b := la.NewBuilder(nv, nv)
	rhs := la.NewVec(nv)

	var vs [8]int32
	var q2n [27]float64
	var n1 [8]float64
	var g1 [8][3]float64
	var xe [81]float64
	var em []int32

	for e := 0; e < da.NElements(); e++ {
		da.ElemVertices(e, &vs)
		// Element nodal coordinates (Q2 gather reused for geometry).
		em = p.Emap[27*e : 27*e+27]
		for n := 0; n < 27; n++ {
			c := 3 * int(em[n])
			xe[3*n] = da.Coords[c]
			xe[3*n+1] = da.Coords[c+1]
			xe[3*n+2] = da.Coords[c+2]
		}
		// Element size for the SUPG parameter: cube-root of volume proxy
		// via corner distances (corner coordinates come from the gathered
		// element geometry, not the vertex grid — vertex ids ≠ node ids).
		l0 := 3 * fem.CornerLocal[0]
		hx := math.Abs(xe[3*fem.CornerLocal[1]] - xe[l0])
		hy := math.Abs(xe[3*fem.CornerLocal[2]+1] - xe[l0+1])
		hz := math.Abs(xe[3*fem.CornerLocal[4]+2] - xe[l0+2])
		he := math.Cbrt(math.Max(hx*hy*hz, 1e-300))

		var ae [8][8]float64
		for qk := 0; qk < 2; qk++ {
			for qj := 0; qj < 2; qj++ {
				for qi := 0; qi < 2; qi++ {
					xi, et, ze := gauss2[qi], gauss2[qj], gauss2[qk]
					fem.Q1EvalGrad(xi, et, ze, &n1, &g1)
					// Jacobian from the Q1 corner geometry.
					var jmat [9]float64
					for c := 0; c < 8; c++ {
						l := fem.CornerLocal[c]
						cx, cy, cz := xe[3*l], xe[3*l+1], xe[3*l+2]
						for d := 0; d < 3; d++ {
							jmat[d*3] += g1[c][d] * cx
							jmat[d*3+1] += g1[c][d] * cy
							jmat[d*3+2] += g1[c][d] * cz
						}
					}
					var inv [9]float64
					detJ := la.Invert3(&jmat, &inv)
					w := detJ // 2-pt Gauss weights are 1
					// Physical gradients of the Q1 basis.
					var gp [8][3]float64
					for c := 0; c < 8; c++ {
						for m := 0; m < 3; m++ {
							gp[c][m] = g1[c][0]*inv[m*3] + g1[c][1]*inv[m*3+1] + g1[c][2]*inv[m*3+2]
						}
					}
					// Velocity at the quadrature point from the Q2 field.
					var vx, vy, vz float64
					if u != nil {
						fem.Q2Eval(xi, et, ze, &q2n)
						for n := 0; n < 27; n++ {
							d := 3 * int(em[n])
							vx += q2n[n] * u[d]
							vy += q2n[n] * u[d+1]
							vz += q2n[n] * u[d+2]
						}
					}
					speed := math.Sqrt(vx*vx + vy*vy + vz*vz)

					// SUPG parameter τ = (h/2|v|)·min(Pe/3, 1).
					var tau float64
					if s.SUPG && speed > 1e-14 {
						pe := speed * he / (2 * s.Kappa)
						xiPe := 1.0
						if pe < 3 {
							xiPe = pe / 3
						}
						tau = he / (2 * speed) * xiPe
					}
					for i := 0; i < 8; i++ {
						// Test function + streamline perturbation.
						vdgI := vx*gp[i][0] + vy*gp[i][1] + vz*gp[i][2]
						wi := n1[i] + tau*vdgI
						for j := 0; j < 8; j++ {
							vdgJ := vx*gp[j][0] + vy*gp[j][1] + vz*gp[j][2]
							mass := wi * n1[j] / dt
							adv := wi * vdgJ
							diff := s.Kappa * (gp[i][0]*gp[j][0] + gp[i][1]*gp[j][1] + gp[i][2]*gp[j][2])
							ae[i][j] += w * (mass + adv + diff)
						}
					}
					// RHS: (w_i, T^n/dt) with T^n interpolated. Entries at
					// Dirichlet vertices are overwritten after assembly.
					var tn float64
					for j := 0; j < 8; j++ {
						tn += n1[j] * T[vs[j]]
					}
					for i := 0; i < 8; i++ {
						vdgI := vx*gp[i][0] + vy*gp[i][1] + vz*gp[i][2]
						wi := n1[i] + tau*vdgI
						rhs[vs[i]] += w * wi * tn / dt
					}
				}
			}
		}
		// Scatter with Dirichlet elimination.
		for i := 0; i < 8; i++ {
			gi := int(vs[i])
			if s.Mask[gi] {
				continue
			}
			for j := 0; j < 8; j++ {
				gj := int(vs[j])
				if s.Mask[gj] {
					rhs[gi] -= ae[i][j] * s.Val[gj]
					continue
				}
				b.Add(gi, gj, ae[i][j])
			}
		}
	}
	for v := 0; v < nv; v++ {
		if s.Mask[v] {
			b.Set(v, v, 1)
			rhs[v] = s.Val[v]
		}
	}
	return b.ToCSR(), rhs
}

// TemperatureAt interpolates the vertex-grid temperature field at
// reference position (xi,et,ze) of element e.
func TemperatureAt(p *fem.Problem, T []float64, e int, xi, et, ze float64) float64 {
	var vs [8]int32
	var n1 [8]float64
	p.DA.ElemVertices(e, &vs)
	fem.Q1Eval(xi, et, ze, &n1)
	var s float64
	for c := 0; c < 8; c++ {
		s += n1[c] * T[vs[c]]
	}
	return s
}
