package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounts(t *testing.T) {
	da := New(2, 3, 4, 0, 1, 0, 1, 0, 1)
	if da.NPx != 5 || da.NPy != 7 || da.NPz != 9 {
		t.Fatalf("node grid %dx%dx%d", da.NPx, da.NPy, da.NPz)
	}
	if da.NNodes() != 5*7*9 {
		t.Fatalf("NNodes = %d", da.NNodes())
	}
	if da.NElements() != 24 {
		t.Fatalf("NElements = %d", da.NElements())
	}
	if da.NVelDOF() != 3*5*7*9 {
		t.Fatalf("NVelDOF = %d", da.NVelDOF())
	}
	if da.NPresDOF() != 4*24 {
		t.Fatalf("NPresDOF = %d", da.NPresDOF())
	}
}

// Property: NodeIJK is the inverse of NodeID, and ElemIJK of ElemID.
func TestIndexRoundTrip(t *testing.T) {
	da := New(3, 4, 5, 0, 1, 0, 1, 0, 1)
	f := func(n uint) bool {
		nid := int(n % uint(da.NNodes()))
		i, j, k := da.NodeIJK(nid)
		return da.NodeID(i, j, k) == nid &&
			i >= 0 && i < da.NPx && j >= 0 && j < da.NPy && k >= 0 && k < da.NPz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(n uint) bool {
		e := int(n % uint(da.NElements()))
		ei, ej, ek := da.ElemIJK(e)
		return da.ElemID(ei, ej, ek) == e
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestElemNodesCornersAndCenter(t *testing.T) {
	da := New(2, 2, 2, 0, 2, 0, 2, 0, 2)
	var nodes [27]int32
	da.ElemNodes(da.ElemID(1, 0, 1), &nodes)
	// Local node 0 is the (2*ei, 2*ej, 2*ek) corner.
	if int(nodes[0]) != da.NodeID(2, 0, 2) {
		t.Fatalf("corner node = %d, want %d", nodes[0], da.NodeID(2, 0, 2))
	}
	// Local node 13 (=(1,1,1)) is the element centre.
	if int(nodes[13]) != da.NodeID(3, 1, 3) {
		t.Fatalf("center node = %d, want %d", nodes[13], da.NodeID(3, 1, 3))
	}
	// Local node 26 is the opposite corner.
	if int(nodes[26]) != da.NodeID(4, 2, 4) {
		t.Fatalf("far corner = %d, want %d", nodes[26], da.NodeID(4, 2, 4))
	}
}

func TestElementMapSharedNodes(t *testing.T) {
	da := New(2, 1, 1, 0, 1, 0, 1, 0, 1)
	emap := da.BuildElementMap()
	// Elements 0 and 1 share the i=2 plane of nodes: local i=2 of elem 0
	// equals local i=0 of elem 1 for every (lj,lk).
	for lk := 0; lk < 3; lk++ {
		for lj := 0; lj < 3; lj++ {
			l0 := (lk*3+lj)*3 + 2
			l1 := (lk*3 + lj) * 3
			if emap[l0] != emap[27+l1] {
				t.Fatalf("shared face node mismatch at lj=%d lk=%d", lj, lk)
			}
		}
	}
}

func TestUniformCoords(t *testing.T) {
	da := New(2, 2, 2, 0, 4, 1, 3, -1, 1)
	x, y, z := da.NodeCoords(da.NodeID(2, 2, 2)) // mid node
	if x != 2 || y != 2 || z != 0 {
		t.Fatalf("mid node at (%v,%v,%v)", x, y, z)
	}
	x, y, z = da.NodeCoords(da.NodeID(4, 4, 4))
	if x != 4 || y != 3 || z != 1 {
		t.Fatalf("corner at (%v,%v,%v)", x, y, z)
	}
}

func TestDeform(t *testing.T) {
	da := New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.1*y, y, z
	})
	x, _, _ := da.NodeCoords(da.NodeID(0, 4, 0))
	if math.Abs(x-0.1) > 1e-15 {
		t.Fatalf("sheared x = %v, want 0.1", x)
	}
}

func TestFaceEnumeration(t *testing.T) {
	da := New(2, 3, 4, 0, 1, 0, 1, 0, 1)
	counts := map[Face]int{
		XMin: da.NPy * da.NPz, XMax: da.NPy * da.NPz,
		YMin: da.NPx * da.NPz, YMax: da.NPx * da.NPz,
		ZMin: da.NPx * da.NPy, ZMax: da.NPx * da.NPy,
	}
	for f, want := range counts {
		got := 0
		da.ForEachFaceNode(f, func(n, i, j, k int) {
			got++
			if !da.OnFace(f, i, j, k) {
				t.Fatalf("node (%d,%d,%d) not on face %v", i, j, k, f)
			}
		})
		if got != want {
			t.Fatalf("face %v visited %d nodes, want %d", f, got, want)
		}
	}
}

func TestBCFreeSlip(t *testing.T) {
	da := New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	bc := NewBC(da)
	bc.FreeSlipBox(da, XMin, XMax, YMin, YMax, ZMin)
	// A node on XMin only: x-component constrained, y,z free.
	n := da.NodeID(0, 2, 2)
	if !bc.Mask[3*n] || bc.Mask[3*n+1] || bc.Mask[3*n+2] {
		t.Fatal("free-slip mask wrong on xmin")
	}
	// Top surface (YMax was constrained; ZMax free): node interior in x,y on ZMax.
	n = da.NodeID(2, 2, 4)
	if bc.Mask[3*n] || bc.Mask[3*n+1] || bc.Mask[3*n+2] {
		t.Fatal("free surface node should be unconstrained")
	}
	// ApplyToVec / ZeroConstrained round trip.
	u := make([]float64, da.NVelDOF())
	for i := range u {
		u[i] = 1
	}
	bc.ZeroConstrained(u)
	nC := 0
	for d, m := range bc.Mask {
		if m {
			if u[d] != 0 {
				t.Fatal("ZeroConstrained missed a dof")
			}
			nC++
		}
	}
	if nC != bc.NumConstrained() {
		t.Fatalf("NumConstrained = %d, counted %d", bc.NumConstrained(), nC)
	}
}

func TestBCSetFaceComponentValue(t *testing.T) {
	da := New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	bc := NewBC(da)
	bc.SetFaceComponent(da, XMax, 0, 2.5)
	u := make([]float64, da.NVelDOF())
	bc.ApplyToVec(u)
	n := da.NodeID(da.NPx-1, 1, 1)
	if u[3*n] != 2.5 {
		t.Fatalf("prescribed value not applied: %v", u[3*n])
	}
}
