// Package mesh provides the structured, deformable hexahedral mesh used by
// ptatin3d — the analogue of PETSc's DMDA in the original code (paper
// §II-D). The mesh has an IJK topology of Mx×My×Mz Q2 elements; the Q2
// node grid is (2Mx+1)×(2My+1)×(2Mz+1). Nodal coordinates are stored
// explicitly and may be deformed (the mesh is structured in topology only),
// which is what allows a boundary-fitted free surface (paper §I, §III-C).
//
// Degree-of-freedom conventions used throughout the repository:
//   - velocity: 3 dofs per Q2 node, dof = 3*node + component;
//   - pressure: 4 dofs per element (P1disc), dof = 4*element + mode.
package mesh

import "fmt"

// Face identifies one of the six boundary faces of the box topology.
type Face int

// The six faces, named by the coordinate direction and side.
const (
	XMin Face = iota
	XMax
	YMin
	YMax
	ZMin
	ZMax
)

// String returns a human-readable face name.
func (f Face) String() string {
	switch f {
	case XMin:
		return "xmin"
	case XMax:
		return "xmax"
	case YMin:
		return "ymin"
	case YMax:
		return "ymax"
	case ZMin:
		return "zmin"
	case ZMax:
		return "zmax"
	}
	return fmt.Sprintf("face(%d)", int(f))
}

// DA is a structured Q2 finite element mesh with deformable nodal
// coordinates.
type DA struct {
	Mx, My, Mz    int       // number of Q2 elements in each direction
	NPx, NPy, NPz int       // Q2 node counts: 2*M+1 per direction
	Coords        []float64 // 3*NNodes interleaved x,y,z nodal coordinates
}

// New creates a DA with mx×my×mz Q2 elements and uniform coordinates over
// the box [x0,x1]×[y0,y1]×[z0,z1].
func New(mx, my, mz int, x0, x1, y0, y1, z0, z1 float64) *DA {
	if mx < 1 || my < 1 || mz < 1 {
		panic(fmt.Sprintf("mesh: invalid element counts %d,%d,%d", mx, my, mz))
	}
	da := &DA{
		Mx: mx, My: my, Mz: mz,
		NPx: 2*mx + 1, NPy: 2*my + 1, NPz: 2*mz + 1,
	}
	da.Coords = make([]float64, 3*da.NNodes())
	da.SetUniformCoords(x0, x1, y0, y1, z0, z1)
	return da
}

// NNodes returns the number of Q2 nodes.
func (da *DA) NNodes() int { return da.NPx * da.NPy * da.NPz }

// NElements returns the number of Q2 elements.
func (da *DA) NElements() int { return da.Mx * da.My * da.Mz }

// NVelDOF returns the number of velocity degrees of freedom (3 per node).
func (da *DA) NVelDOF() int { return 3 * da.NNodes() }

// NPresDOF returns the number of pressure degrees of freedom (4 per
// element, P1disc).
func (da *DA) NPresDOF() int { return 4 * da.NElements() }

// NodeID returns the global node index of node (i,j,k) on the Q2 grid.
func (da *DA) NodeID(i, j, k int) int { return (k*da.NPy+j)*da.NPx + i }

// NodeIJK returns the (i,j,k) grid indices of a global node index.
func (da *DA) NodeIJK(n int) (i, j, k int) {
	i = n % da.NPx
	j = (n / da.NPx) % da.NPy
	k = n / (da.NPx * da.NPy)
	return
}

// ElemID returns the global element index of element (ei,ej,ek).
func (da *DA) ElemID(ei, ej, ek int) int { return (ek*da.My+ej)*da.Mx + ei }

// ElemIJK returns the (ei,ej,ek) element indices of a global element index.
func (da *DA) ElemIJK(e int) (ei, ej, ek int) {
	ei = e % da.Mx
	ej = (e / da.Mx) % da.My
	ek = e / (da.Mx * da.My)
	return
}

// ElemNodes fills nodes with the 27 global node indices of element e. The
// local ordering is tensor-product with i fastest: local = (lk*3+lj)*3+li,
// matching the basis ordering in package fem.
func (da *DA) ElemNodes(e int, nodes *[27]int32) {
	ei, ej, ek := da.ElemIJK(e)
	i0, j0, k0 := 2*ei, 2*ej, 2*ek
	l := 0
	for lk := 0; lk < 3; lk++ {
		for lj := 0; lj < 3; lj++ {
			base := ((k0+lk)*da.NPy+(j0+lj))*da.NPx + i0
			nodes[l] = int32(base)
			nodes[l+1] = int32(base + 1)
			nodes[l+2] = int32(base + 2)
			l += 3
		}
	}
}

// BuildElementMap returns the explicit element→node gather table: 27
// int32 node indices per element (the E_e of paper §III-D, "explicit
// integer representation").
func (da *DA) BuildElementMap() []int32 {
	nel := da.NElements()
	emap := make([]int32, 27*nel)
	var nodes [27]int32
	for e := 0; e < nel; e++ {
		da.ElemNodes(e, &nodes)
		copy(emap[27*e:27*e+27], nodes[:])
	}
	return emap
}

// SetUniformCoords assigns coordinates for a uniform box mesh.
func (da *DA) SetUniformCoords(x0, x1, y0, y1, z0, z1 float64) {
	dx := (x1 - x0) / float64(da.NPx-1)
	dy := (y1 - y0) / float64(da.NPy-1)
	dz := (z1 - z0) / float64(da.NPz-1)
	for k := 0; k < da.NPz; k++ {
		for j := 0; j < da.NPy; j++ {
			for i := 0; i < da.NPx; i++ {
				n := da.NodeID(i, j, k)
				da.Coords[3*n+0] = x0 + float64(i)*dx
				da.Coords[3*n+1] = y0 + float64(j)*dy
				da.Coords[3*n+2] = z0 + float64(k)*dz
			}
		}
	}
}

// Deform applies f to every node coordinate, replacing (x,y,z) with
// f(x,y,z). Used to create the deformed (but still structured-topology)
// meshes of the paper's performance experiments and tests.
func (da *DA) Deform(f func(x, y, z float64) (float64, float64, float64)) {
	for n := 0; n < da.NNodes(); n++ {
		x, y, z := da.Coords[3*n], da.Coords[3*n+1], da.Coords[3*n+2]
		x, y, z = f(x, y, z)
		da.Coords[3*n], da.Coords[3*n+1], da.Coords[3*n+2] = x, y, z
	}
}

// NodeCoords returns the coordinates of node n.
func (da *DA) NodeCoords(n int) (x, y, z float64) {
	return da.Coords[3*n], da.Coords[3*n+1], da.Coords[3*n+2]
}

// OnFace reports whether grid node (i,j,k) lies on the given face.
func (da *DA) OnFace(f Face, i, j, k int) bool {
	switch f {
	case XMin:
		return i == 0
	case XMax:
		return i == da.NPx-1
	case YMin:
		return j == 0
	case YMax:
		return j == da.NPy-1
	case ZMin:
		return k == 0
	case ZMax:
		return k == da.NPz-1
	}
	return false
}

// ForEachFaceNode calls fn for every node on face f.
func (da *DA) ForEachFaceNode(f Face, fn func(n, i, j, k int)) {
	imin, imax := 0, da.NPx-1
	jmin, jmax := 0, da.NPy-1
	kmin, kmax := 0, da.NPz-1
	switch f {
	case XMin:
		imax = 0
	case XMax:
		imin = da.NPx - 1
	case YMin:
		jmax = 0
	case YMax:
		jmin = da.NPy - 1
	case ZMin:
		kmax = 0
	case ZMax:
		kmin = da.NPz - 1
	}
	for k := kmin; k <= kmax; k++ {
		for j := jmin; j <= jmax; j++ {
			for i := imin; i <= imax; i++ {
				fn(da.NodeID(i, j, k), i, j, k)
			}
		}
	}
}

// BC holds the velocity Dirichlet constraints: for each velocity dof,
// whether it is constrained and to what value. Constrained dofs are
// eliminated symmetrically from operators and moved to the right-hand side.
type BC struct {
	Mask []bool    // len NVelDOF
	Val  []float64 // len NVelDOF, prescribed value where Mask is true
}

// NewBC returns an unconstrained BC set for the mesh.
func NewBC(da *DA) *BC {
	return &BC{Mask: make([]bool, da.NVelDOF()), Val: make([]float64, da.NVelDOF())}
}

// SetFaceComponent constrains velocity component c (0=x,1=y,2=z) on every
// node of face f to value v. Calling it for the normal component with v=0
// imposes free-slip; calling it for all three components imposes no-slip.
func (bc *BC) SetFaceComponent(da *DA, f Face, c int, v float64) {
	da.ForEachFaceNode(f, func(n, i, j, k int) {
		bc.Mask[3*n+c] = true
		bc.Val[3*n+c] = v
	})
}

// FreeSlipBox applies homogeneous free-slip (zero normal velocity) on the
// given faces.
func (bc *BC) FreeSlipBox(da *DA, faces ...Face) {
	for _, f := range faces {
		c := 0
		switch f {
		case YMin, YMax:
			c = 1
		case ZMin, ZMax:
			c = 2
		}
		bc.SetFaceComponent(da, f, c, 0)
	}
}

// SetFaceFunc constrains all three velocity components on every node of
// face f to the values of fn at that node's coordinates — inhomogeneous
// Dirichlet data, as needed by manufactured-solution (MMS) tests.
func (bc *BC) SetFaceFunc(da *DA, f Face, fn func(x, y, z float64) (u, v, w float64)) {
	da.ForEachFaceNode(f, func(n, i, j, k int) {
		x, y, z := da.NodeCoords(n)
		u, v, w := fn(x, y, z)
		vals := [3]float64{u, v, w}
		for c := 0; c < 3; c++ {
			bc.Mask[3*n+c] = true
			bc.Val[3*n+c] = vals[c]
		}
	})
}

// NumConstrained returns the number of constrained velocity dofs.
func (bc *BC) NumConstrained() int {
	n := 0
	for _, m := range bc.Mask {
		if m {
			n++
		}
	}
	return n
}

// ApplyToVec overwrites constrained entries of the velocity vector u with
// their prescribed values.
func (bc *BC) ApplyToVec(u []float64) {
	for d, m := range bc.Mask {
		if m {
			u[d] = bc.Val[d]
		}
	}
}

// ZeroConstrained zeroes constrained entries of u (used to restrict
// residuals and corrections to the free dofs).
func (bc *BC) ZeroConstrained(u []float64) {
	for d, m := range bc.Mask {
		if m {
			u[d] = 0
		}
	}
}
