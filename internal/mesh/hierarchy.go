package mesh

import "fmt"

// CanCoarsen reports whether the mesh admits one level of 2× geometric
// coarsening (all element counts even).
func (da *DA) CanCoarsen() bool {
	return da.Mx%2 == 0 && da.My%2 == 0 && da.Mz%2 == 0 &&
		da.Mx >= 2 && da.My >= 2 && da.Mz >= 2
}

// Coarsen returns the next-coarser mesh of the nodally nested hierarchy
// (paper §III-C): element counts halve and the coarse nodal coordinates
// are defined by injection from the fine mesh — coarse node (i,j,k)
// coincides with fine node (2i,2j,2k).
func (da *DA) Coarsen() *DA {
	if !da.CanCoarsen() {
		panic(fmt.Sprintf("mesh: cannot coarsen %dx%dx%d", da.Mx, da.My, da.Mz))
	}
	c := &DA{
		Mx: da.Mx / 2, My: da.My / 2, Mz: da.Mz / 2,
		NPx: da.Mx + 1, NPy: da.My + 1, NPz: da.Mz + 1,
	}
	c.Coords = make([]float64, 3*c.NNodes())
	for k := 0; k < c.NPz; k++ {
		for j := 0; j < c.NPy; j++ {
			for i := 0; i < c.NPx; i++ {
				cn := c.NodeID(i, j, k)
				fn := da.NodeID(2*i, 2*j, 2*k)
				c.Coords[3*cn] = da.Coords[3*fn]
				c.Coords[3*cn+1] = da.Coords[3*fn+1]
				c.Coords[3*cn+2] = da.Coords[3*fn+2]
			}
		}
	}
	return c
}

// RefreshCoarsenCoords re-injects the coarse nodal coordinates from the
// fine mesh — the same rule Coarsen applies at construction — after the
// fine coordinates have moved (ALE remeshing). The hierarchy stays
// nodally nested without rebuilding any topology.
func RefreshCoarsenCoords(fine, coarse *DA) {
	for k := 0; k < coarse.NPz; k++ {
		for j := 0; j < coarse.NPy; j++ {
			for i := 0; i < coarse.NPx; i++ {
				cn := coarse.NodeID(i, j, k)
				fn := fine.NodeID(2*i, 2*j, 2*k)
				coarse.Coords[3*cn] = fine.Coords[3*fn]
				coarse.Coords[3*cn+1] = fine.Coords[3*fn+1]
				coarse.Coords[3*cn+2] = fine.Coords[3*fn+2]
			}
		}
	}
}

// Hierarchy builds a nested hierarchy of nlevels meshes, finest first.
// It panics if the mesh cannot be coarsened nlevels-1 times.
func Hierarchy(fine *DA, nlevels int) []*DA {
	h := make([]*DA, nlevels)
	h[0] = fine
	for l := 1; l < nlevels; l++ {
		h[l] = h[l-1].Coarsen()
	}
	return h
}

// MaxLevels returns the deepest hierarchy the mesh supports (including the
// fine level itself), coarsening by 2 while all directions stay even.
func (da *DA) MaxLevels() int {
	n := 1
	mx, my, mz := da.Mx, da.My, da.Mz
	for mx%2 == 0 && my%2 == 0 && mz%2 == 0 && mx >= 2 && my >= 2 && mz >= 2 {
		mx, my, mz = mx/2, my/2, mz/2
		n++
	}
	return n
}

// InjectNodalScalar restricts a nodal scalar field from the fine mesh to
// the coarse mesh by injection (the same rule used for coordinates). It is
// used to carry projected material-point fields (viscosity, density) down
// the rediscretized multigrid hierarchy.
func InjectNodalScalar(fine, coarse *DA, ffield, cfield []float64) {
	if len(ffield) != fine.NNodes() || len(cfield) != coarse.NNodes() {
		panic("mesh: InjectNodalScalar length mismatch")
	}
	for k := 0; k < coarse.NPz; k++ {
		for j := 0; j < coarse.NPy; j++ {
			for i := 0; i < coarse.NPx; i++ {
				cfield[coarse.NodeID(i, j, k)] = ffield[fine.NodeID(2*i, 2*j, 2*k)]
			}
		}
	}
}

// RefreshCoarsenBCVals re-inherits the coarse boundary *values* from the
// fine level after they changed (time-dependent boundary conditions).
// The masks are part of the cached solver topology and must not change.
func RefreshCoarsenBCVals(fine, coarse *DA, fbc, cbc *BC) {
	for k := 0; k < coarse.NPz; k++ {
		for j := 0; j < coarse.NPy; j++ {
			for i := 0; i < coarse.NPx; i++ {
				cn := coarse.NodeID(i, j, k)
				fn := fine.NodeID(2*i, 2*j, 2*k)
				for c := 0; c < 3; c++ {
					cbc.Val[3*cn+c] = fbc.Val[3*fn+c]
				}
			}
		}
	}
}

// CoarsenBC derives the coarse-level Dirichlet mask from a fine-level one:
// a coarse node inherits the constraint of the coincident fine node. For
// the box-face constraints used in this package the result is identical to
// re-deriving the constraints on the coarse mesh.
func CoarsenBC(fine, coarse *DA, fbc *BC) *BC {
	cbc := NewBC(coarse)
	for k := 0; k < coarse.NPz; k++ {
		for j := 0; j < coarse.NPy; j++ {
			for i := 0; i < coarse.NPx; i++ {
				cn := coarse.NodeID(i, j, k)
				fn := fine.NodeID(2*i, 2*j, 2*k)
				for c := 0; c < 3; c++ {
					cbc.Mask[3*cn+c] = fbc.Mask[3*fn+c]
					cbc.Val[3*cn+c] = fbc.Val[3*fn+c]
				}
			}
		}
	}
	return cbc
}
