package mesh

import (
	"math"
	"testing"
)

func TestCoarsenNesting(t *testing.T) {
	fine := New(4, 4, 4, 0, 1, 0, 2, 0, 3)
	if !fine.CanCoarsen() {
		t.Fatal("4^3 mesh must be coarsenable")
	}
	coarse := fine.Coarsen()
	if coarse.Mx != 2 || coarse.My != 2 || coarse.Mz != 2 {
		t.Fatalf("coarse elements %dx%dx%d", coarse.Mx, coarse.My, coarse.Mz)
	}
	// Every coarse node coincides with fine node (2i,2j,2k).
	for k := 0; k < coarse.NPz; k++ {
		for j := 0; j < coarse.NPy; j++ {
			for i := 0; i < coarse.NPx; i++ {
				cn := coarse.NodeID(i, j, k)
				fn := fine.NodeID(2*i, 2*j, 2*k)
				for c := 0; c < 3; c++ {
					if coarse.Coords[3*cn+c] != fine.Coords[3*fn+c] {
						t.Fatalf("coarse node (%d,%d,%d) coord %d mismatch", i, j, k, c)
					}
				}
			}
		}
	}
}

func TestCoarsenDeformedMeshStaysNested(t *testing.T) {
	fine := New(4, 4, 4, 0, 1, 0, 1, 0, 1)
	fine.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.05*math.Sin(3*y), y + 0.05*x*z, z
	})
	coarse := fine.Coarsen()
	cn := coarse.NodeID(1, 2, 1)
	fn := fine.NodeID(2, 4, 2)
	for c := 0; c < 3; c++ {
		if coarse.Coords[3*cn+c] != fine.Coords[3*fn+c] {
			t.Fatal("deformed coarsening not injective")
		}
	}
}

func TestCoarsenOddPanics(t *testing.T) {
	da := New(3, 4, 4, 0, 1, 0, 1, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic coarsening odd mesh")
		}
	}()
	da.Coarsen()
}

func TestHierarchyAndMaxLevels(t *testing.T) {
	fine := New(8, 8, 8, 0, 1, 0, 1, 0, 1)
	if got := fine.MaxLevels(); got != 4 {
		t.Fatalf("MaxLevels = %d, want 4", got)
	}
	h := Hierarchy(fine, 3)
	if len(h) != 3 || h[2].Mx != 2 {
		t.Fatalf("hierarchy wrong: %d levels, coarsest Mx=%d", len(h), h[2].Mx)
	}
	// Non-cubic: 8x2x4 supports 2 levels (after one coarsening my=1).
	da := New(8, 2, 4, 0, 1, 0, 1, 0, 1)
	if got := da.MaxLevels(); got != 2 {
		t.Fatalf("MaxLevels(8,2,4) = %d, want 2", got)
	}
}

func TestInjectNodalScalar(t *testing.T) {
	fine := New(4, 4, 4, 0, 1, 0, 1, 0, 1)
	coarse := fine.Coarsen()
	ff := make([]float64, fine.NNodes())
	for n := range ff {
		i, j, k := fine.NodeIJK(n)
		ff[n] = float64(100*i + 10*j + k)
	}
	cf := make([]float64, coarse.NNodes())
	InjectNodalScalar(fine, coarse, ff, cf)
	for n := range cf {
		i, j, k := coarse.NodeIJK(n)
		want := float64(100*(2*i) + 10*(2*j) + 2*k)
		if cf[n] != want {
			t.Fatalf("inject (%d,%d,%d) = %v, want %v", i, j, k, cf[n], want)
		}
	}
}

func TestCoarsenBC(t *testing.T) {
	fine := New(4, 4, 4, 0, 1, 0, 1, 0, 1)
	fbc := NewBC(fine)
	fbc.FreeSlipBox(fine, XMin, XMax, YMin, YMax, ZMin)
	coarse := fine.Coarsen()
	cbc := CoarsenBC(fine, coarse, fbc)
	// Compare against re-derived coarse BC.
	ref := NewBC(coarse)
	ref.FreeSlipBox(coarse, XMin, XMax, YMin, YMax, ZMin)
	for d := range cbc.Mask {
		if cbc.Mask[d] != ref.Mask[d] {
			t.Fatalf("coarse BC mask mismatch at dof %d", d)
		}
	}
}

func TestUpdateFreeSurface(t *testing.T) {
	for axis := 0; axis < 3; axis++ {
		da := New(2, 2, 2, 0, 1, 0, 1, 0, 1)
		vel := make([]float64, da.NVelDOF())
		// Uniform upward velocity 1 along the axis.
		for n := 0; n < da.NNodes(); n++ {
			vel[3*n+axis] = 1
		}
		UpdateFreeSurface(da, vel, 0.5, axis)
		min, max := SurfaceRange(da, axis)
		if math.Abs(min-1.5) > 1e-14 || math.Abs(max-1.5) > 1e-14 {
			t.Fatalf("axis %d: surface at [%v,%v], want 1.5", axis, min, max)
		}
		// Columns redistributed linearly: the mid-grid node should sit at 0.75.
		var mid int
		switch axis {
		case 0:
			mid = da.NodeID(2, 1, 1)
		case 1:
			mid = da.NodeID(1, 2, 1)
		default:
			mid = da.NodeID(1, 1, 2)
		}
		if got := da.Coords[3*mid+axis]; math.Abs(got-0.75) > 1e-14 {
			t.Fatalf("axis %d: mid node at %v, want 0.75", axis, got)
		}
		// Bottom face unmoved.
		var bot int
		switch axis {
		case 0:
			bot = da.NodeID(0, 1, 1)
		case 1:
			bot = da.NodeID(1, 0, 1)
		default:
			bot = da.NodeID(1, 1, 0)
		}
		if da.Coords[3*bot+axis] != 0 {
			t.Fatalf("axis %d: bottom moved", axis)
		}
	}
}

func TestUpdateFreeSurfaceNonUniform(t *testing.T) {
	da := New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	vel := make([]float64, da.NVelDOF())
	// Surface velocity varies with x: v_y = x at every node.
	for n := 0; n < da.NNodes(); n++ {
		x, _, _ := da.NodeCoords(n)
		vel[3*n+1] = x
	}
	UpdateFreeSurface(da, vel, 1.0, 1)
	min, max := SurfaceRange(da, 1)
	if math.Abs(min-1.0) > 1e-14 || math.Abs(max-2.0) > 1e-14 {
		t.Fatalf("topography range [%v,%v], want [1,2]", min, max)
	}
}
