package mesh

import "fmt"

// UpdateFreeSurface performs the ALE mesh update of paper §V: nodes on the
// maximum face of the given vertical axis (0=x, 1=y, 2=z) are advected
// with the vertical component of the nodal velocity field, and the
// interior nodes of each vertical grid column are redistributed linearly
// between the (fixed) bottom node and the new surface node. vel is the
// velocity vector with 3 dofs per node; dt is the time step.
//
// This column-wise remeshing keeps the IJK topology intact while letting
// the mesh follow a deforming free surface (topography), matching the
// boundary-fitted strategy the paper adopts for the Q2 mesh.
func UpdateFreeSurface(da *DA, vel []float64, dt float64, axis int) {
	if len(vel) != da.NVelDOF() {
		panic(fmt.Sprintf("mesh: UpdateFreeSurface velocity length %d, want %d", len(vel), da.NVelDOF()))
	}
	if axis < 0 || axis > 2 {
		panic("mesh: UpdateFreeSurface axis must be 0, 1 or 2")
	}
	var n1, n2, nv int // column counts for the two lateral axes and the vertical
	switch axis {
	case 0:
		nv, n1, n2 = da.NPx, da.NPy, da.NPz
	case 1:
		nv, n1, n2 = da.NPy, da.NPx, da.NPz
	case 2:
		nv, n1, n2 = da.NPz, da.NPx, da.NPy
	}
	nodeAt := func(a, b, v int) int {
		switch axis {
		case 0:
			return da.NodeID(v, a, b)
		case 1:
			return da.NodeID(a, v, b)
		default:
			return da.NodeID(a, b, v)
		}
	}
	for b := 0; b < n2; b++ {
		for a := 0; a < n1; a++ {
			top := nodeAt(a, b, nv-1)
			bot := nodeAt(a, b, 0)
			ytop := da.Coords[3*top+axis] + dt*vel[3*top+axis]
			ybot := da.Coords[3*bot+axis]
			// Redistribute the column linearly between ybot and the advected
			// surface; the bottom stays fixed.
			for v := 1; v < nv; v++ {
				n := nodeAt(a, b, v)
				frac := float64(v) / float64(nv-1)
				da.Coords[3*n+axis] = ybot + frac*(ytop-ybot)
			}
		}
	}
}

// SurfaceRange returns the minimum and maximum coordinate of the top
// surface (max face of axis). Used to report topography in the rifting
// model and to validate the ALE update in tests.
func SurfaceRange(da *DA, axis int) (min, max float64) {
	var face Face
	switch axis {
	case 0:
		face = XMax
	case 1:
		face = YMax
	default:
		face = ZMax
	}
	first := true
	da.ForEachFaceNode(face, func(n, i, j, k int) {
		c := da.Coords[3*n+axis]
		if first {
			min, max = c, c
			first = false
			return
		}
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	})
	return
}
