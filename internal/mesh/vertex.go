package mesh

import "math"

// The "vertex grid" is the (Mx+1)×(My+1)×(Mz+1) grid of element corner
// vertices — the Q1 mesh embedded in the Q2 mesh. Material-point fields
// (effective viscosity, density) are projected onto this grid (paper
// §II-C, Eq. 12) and interpolated trilinearly to quadrature points
// (Eq. 13).

// NVertices returns the number of element corner vertices.
func (da *DA) NVertices() int { return (da.Mx + 1) * (da.My + 1) * (da.Mz + 1) }

// VertexID returns the global vertex index of corner (i,j,k),
// 0 <= i <= Mx etc.
func (da *DA) VertexID(i, j, k int) int {
	return (k*(da.My+1)+j)*(da.Mx+1) + i
}

// VertexIJK inverts VertexID.
func (da *DA) VertexIJK(v int) (i, j, k int) {
	i = v % (da.Mx + 1)
	j = (v / (da.Mx + 1)) % (da.My + 1)
	k = v / ((da.Mx + 1) * (da.My + 1))
	return
}

// VertexNode returns the Q2 node index coincident with vertex (i,j,k)
// (vertices sit on the even nodes of the Q2 grid).
func (da *DA) VertexNode(i, j, k int) int { return da.NodeID(2*i, 2*j, 2*k) }

// ElemVertices fills vs with the 8 global vertex indices of element e, in
// Q1 local ordering (i fastest: l = (k*2+j)*2+i).
func (da *DA) ElemVertices(e int, vs *[8]int32) {
	ei, ej, ek := da.ElemIJK(e)
	l := 0
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 2; i++ {
				vs[l] = int32(da.VertexID(ei+i, ej+j, ek+k))
				l++
			}
		}
	}
}

// InjectVertexScalar restricts a vertex-grid scalar field from the fine
// mesh to the coarse mesh by injection (coarse vertex (i,j,k) coincides
// with fine vertex (2i,2j,2k)). It carries projected material-point
// coefficient fields down a rediscretized multigrid hierarchy.
func InjectVertexScalar(fine, coarse *DA, ffield, cfield []float64) {
	if len(ffield) != fine.NVertices() || len(cfield) != coarse.NVertices() {
		panic("mesh: InjectVertexScalar length mismatch")
	}
	for k := 0; k <= coarse.Mz; k++ {
		for j := 0; j <= coarse.My; j++ {
			for i := 0; i <= coarse.Mx; i++ {
				cfield[coarse.VertexID(i, j, k)] = ffield[fine.VertexID(2*i, 2*j, 2*k)]
			}
		}
	}
}

// RestrictVertexFW restricts a vertex-grid scalar field to the coarse mesh
// by full weighting: each coarse vertex receives the trilinear-weighted
// average of its 27 fine-vertex neighbours. With geometric=true the
// average is taken in log space (geometric mean), which is often the
// better choice for viscosity fields with large jumps. This mimics
// re-projecting the material points onto the coarse level (paper §II-C):
// unlike injection it preserves the local average of the coefficient, and
// multigrid convergence at high contrast depends on it.
func RestrictVertexFW(fine, coarse *DA, ffield, cfield []float64, geometric bool) {
	if len(ffield) != fine.NVertices() || len(cfield) != coarse.NVertices() {
		panic("mesh: RestrictVertexFW length mismatch")
	}
	for k := 0; k <= coarse.Mz; k++ {
		for j := 0; j <= coarse.My; j++ {
			for i := 0; i <= coarse.Mx; i++ {
				var sum, lsum, wsum float64
				for dk := -1; dk <= 1; dk++ {
					for dj := -1; dj <= 1; dj++ {
						for di := -1; di <= 1; di++ {
							fi, fj, fk := 2*i+di, 2*j+dj, 2*k+dk
							if fi < 0 || fi > fine.Mx || fj < 0 || fj > fine.My || fk < 0 || fk > fine.Mz {
								continue
							}
							w := 1.0
							if di != 0 {
								w *= 0.5
							}
							if dj != 0 {
								w *= 0.5
							}
							if dk != 0 {
								w *= 0.5
							}
							v := ffield[fine.VertexID(fi, fj, fk)]
							sum += w * v
							if geometric {
								lsum += w * math.Log(v)
							}
							wsum += w
						}
					}
				}
				if geometric {
					cfield[coarse.VertexID(i, j, k)] = math.Exp(lsum / wsum)
				} else {
					cfield[coarse.VertexID(i, j, k)] = sum / wsum
				}
			}
		}
	}
}
