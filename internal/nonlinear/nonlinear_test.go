package nonlinear

import (
	"math"
	"testing"

	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
)

// nlDiffusion builds the nonlinear test problem
// F_i(x) = (A x)_i + tanh(x_i) − b_i with A the 1-D Laplacian: smooth,
// bounded nonlinearity with Jacobian J = A + diag(sech²(x)).
func nlDiffusion(n int) (System, la.Vec) {
	b := la.NewVec(n)
	for i := range b {
		b[i] = 1 + 0.5*math.Sin(float64(i))
	}
	lap := func(x, y la.Vec) {
		for i := range x {
			s := 2 * x[i]
			if i > 0 {
				s -= x[i-1]
			}
			if i < n-1 {
				s -= x[i+1]
			}
			y[i] = s
		}
	}
	sys := System{
		N: n,
		Residual: func(x, f la.Vec) {
			lap(x, f)
			for i := range f {
				f[i] += math.Tanh(x[i]) - b[i]
			}
		},
		InnerParams: krylov.Params{RTol: 1e-4, ATol: 1e-300, MaxIt: 400, Restart: 50},
	}
	sys.Prepare = func(x la.Vec) (krylov.Op, krylov.Preconditioner) {
		xc := x.Clone()
		op := krylov.OpFunc{Dim: n, F: func(v, y la.Vec) {
			lap(v, y)
			for i := range y {
				c := math.Cosh(xc[i])
				y[i] += v[i] / (c * c)
			}
		}}
		diag := la.NewVec(n)
		for i := range diag {
			c := math.Cosh(xc[i])
			diag[i] = 2 + 1/(c*c)
		}
		return op, krylov.NewJacobi(diag)
	}
	return sys, la.NewVec(n)
}

func TestNewtonConvergesQuadratically(t *testing.T) {
	sys, x := nlDiffusion(60)
	opt := DefaultOptions()
	opt.RTol = 1e-12
	res := Solve(sys, x, opt)
	if !res.Converged {
		t.Fatalf("Newton failed: %+v", res)
	}
	if res.Iterations > 12 {
		t.Fatalf("too many Newton iterations: %d", res.Iterations)
	}
	// Terminal phase is superlinear: the last reduction factor is far
	// smaller than the first.
	h := res.History
	if len(h) >= 3 {
		first := h[1] / h[0]
		last := h[len(h)-1] / h[len(h)-2]
		if last > first {
			t.Fatalf("no superlinear terminal phase: first %v, last %v", first, last)
		}
	}
	// Verify the root.
	f := la.NewVec(sys.N)
	sys.Residual(x, f)
	if f.Norm2() > 1e-10*res.FNorm0 {
		t.Fatalf("final residual %v", f.Norm2())
	}
}

func TestPicardVsNewton(t *testing.T) {
	// Picard for the same problem: freeze the nonlinear coefficient,
	// treating tanh(x) = c(x)·x with c = tanh(x)/x, so
	// J_picard = A + diag(c). Picard converges linearly — more outer
	// iterations than Newton's quadratic terminal phase.
	n := 40
	sysN, xN := nlDiffusion(n)
	sysP, xP := nlDiffusion(n)
	sysP.Prepare = func(x la.Vec) (krylov.Op, krylov.Preconditioner) {
		xc := x.Clone()
		coef := func(v float64) float64 {
			if math.Abs(v) < 1e-12 {
				return 1
			}
			return math.Tanh(v) / v
		}
		op := krylov.OpFunc{Dim: n, F: func(v, y la.Vec) {
			for i := range v {
				s := 2 * v[i]
				if i > 0 {
					s -= v[i-1]
				}
				if i < n-1 {
					s -= v[i+1]
				}
				y[i] = s + coef(xc[i])*v[i]
			}
		}}
		diag := la.NewVec(n)
		for i := range diag {
			diag[i] = 2 + coef(xc[i])
		}
		return op, krylov.NewJacobi(diag)
	}
	opt := DefaultOptions()
	opt.RTol = 1e-8
	opt.MaxIt = 400
	// Fixed, tight inner tolerance for the Picard run: Eisenstat–Walker
	// forcing assumes Newton-quality directions and throttles the inner
	// solves too aggressively for a linearly converging outer iteration.
	optP := opt
	optP.EisenstatWalker = false
	sysP.InnerParams.RTol = 1e-8
	rn := Solve(sysN, xN, opt)
	rp := Solve(sysP, xP, optP)
	if !rn.Converged || !rp.Converged {
		t.Fatalf("newton %v (%d its) picard %v (%d its, |F| %.2e)",
			rn.Converged, rn.Iterations, rp.Converged, rp.Iterations, rp.FNorm/rp.FNorm0)
	}
	if rn.Iterations >= rp.Iterations {
		t.Fatalf("Newton (%d its) not faster than Picard (%d its)", rn.Iterations, rp.Iterations)
	}
}

func TestEisenstatWalkerSavesKrylovWork(t *testing.T) {
	sysA, xA := nlDiffusion(80)
	sysB, xB := nlDiffusion(80)
	optEW := DefaultOptions()
	optEW.RTol = 1e-10
	optFixed := DefaultOptions()
	optFixed.RTol = 1e-10
	optFixed.EisenstatWalker = false
	sysB.InnerParams.RTol = 1e-10 // tight fixed tolerance
	rEW := Solve(sysA, xA, optEW)
	rF := Solve(sysB, xB, optFixed)
	if !rEW.Converged || !rF.Converged {
		t.Fatal("one of the solves failed")
	}
	if rEW.KrylovIts >= rF.KrylovIts {
		t.Fatalf("EW (%d Krylov its) not cheaper than fixed tight (%d)", rEW.KrylovIts, rF.KrylovIts)
	}
}

func TestLineSearchRescuesOvershoot(t *testing.T) {
	// Scalar problem F(x) = atan(x): full Newton steps diverge from
	// x0 = 3 without a line search; backtracking converges.
	sys := System{
		N: 1,
		Residual: func(x, f la.Vec) {
			f[0] = math.Atan(x[0])
		},
		InnerParams: krylov.Params{RTol: 1e-12, ATol: 1e-300, MaxIt: 10, Restart: 5},
	}
	sys.Prepare = func(x la.Vec) (krylov.Op, krylov.Preconditioner) {
		xc := x[0]
		op := krylov.OpFunc{Dim: 1, F: func(v, y la.Vec) { y[0] = v[0] / (1 + xc*xc) }}
		return op, krylov.Identity{}
	}
	x := la.Vec{3}
	opt := DefaultOptions()
	opt.RTol = 0
	opt.ATol = 1e-10
	opt.MaxIt = 60
	res := Solve(sys, x, opt)
	if !res.Converged {
		t.Fatalf("line-searched Newton failed: %+v", res)
	}
	if math.Abs(x[0]) > 1e-9 {
		t.Fatalf("root %v", x[0])
	}
	// Without the line search it must fail (diverge or stagnate).
	x2 := la.Vec{3}
	opt2 := opt
	opt2.LineSearchMax = 0
	res2 := Solve(sys, x2, opt2)
	if res2.Converged {
		t.Fatal("unguarded Newton should diverge for atan from x0=3")
	}
}

func TestResidualHistoryMonotone(t *testing.T) {
	sys, x := nlDiffusion(30)
	opt := DefaultOptions()
	opt.RTol = 1e-10
	res := Solve(sys, x, opt)
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("‖F‖ increased at %d: %v -> %v", i, res.History[i-1], res.History[i])
		}
	}
	if res.History[0] != res.FNorm0 {
		t.Fatal("history does not start at F0")
	}
}
