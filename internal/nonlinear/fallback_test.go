package nonlinear

import (
	"math"
	"testing"

	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
)

// transientNaNSystem wraps nlDiffusion with a Jacobian that returns NaN for
// its first `poisoned` applications and is healthy afterwards — the shape
// of a transient fault (corrupted coefficients repaired by retransmission).
func transientNaNSystem(n, poisoned int) (System, la.Vec) {
	sys, x0 := nlDiffusion(n)
	inner := sys.Prepare
	calls := 0
	sys.Prepare = func(x la.Vec) (krylov.Op, krylov.Preconditioner) {
		op, pc := inner(x)
		wrapped := krylov.OpFunc{Dim: n, F: func(v, y la.Vec) {
			op.Apply(v, y)
			calls++
			if calls <= poisoned {
				y[0] = math.NaN()
			}
		}}
		return wrapped, pc
	}
	return sys, x0
}

// TestFallbackRecoversTransientBreakdown: the first inner solve hits NaN,
// the automatic method switch retries against the healed operator and the
// outer iteration still converges.
func TestFallbackRecoversTransientBreakdown(t *testing.T) {
	sys, x := transientNaNSystem(40, 1)
	sys.Method = "fgmres"
	opt := DefaultOptions()
	res := Solve(sys, x, opt)
	if !res.Converged {
		t.Fatalf("did not converge after fallback: %+v", res)
	}
	if res.Breakdowns == 0 || res.Fallbacks == 0 {
		t.Fatalf("breakdown/fallback accounting: breakdowns=%d fallbacks=%d", res.Breakdowns, res.Fallbacks)
	}
	if res.Err != nil {
		t.Fatalf("recovered solve left Err set: %v", res.Err)
	}
}

// TestFallbackExhaustedReportsTypedError: an operator that never heals
// breaks both the primary and the fallback method; the solve must abort
// with the typed breakdown in the error chain, within bounded work.
func TestFallbackExhaustedReportsTypedError(t *testing.T) {
	sys, x := transientNaNSystem(40, 1<<30)
	sys.Method = "gcr"
	opt := DefaultOptions()
	opt.MaxIt = 5
	res := Solve(sys, x, opt)
	if res.Converged {
		t.Fatal("converged through a permanently poisoned Jacobian")
	}
	if res.Err == nil {
		t.Fatal("Err not set after fallback exhaustion")
	}
	if _, ok := krylov.AsBreakdown(res.Err); !ok {
		t.Fatalf("error chain lacks *krylov.BreakdownError: %v", res.Err)
	}
	if res.Breakdowns == 0 || res.Fallbacks != 0 {
		t.Fatalf("accounting: breakdowns=%d fallbacks=%d", res.Breakdowns, res.Fallbacks)
	}
	if res.Iterations > 1 {
		t.Fatalf("outer iteration did not abort on double breakdown (ran %d)", res.Iterations)
	}
}
