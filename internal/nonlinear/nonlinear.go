// Package nonlinear implements the outer nonlinear solvers of paper
// §III-A: Picard iteration and an inexact Newton–Krylov method guarded by
// a backtracking line search, with linear-solve tolerances chosen
// adaptively by the Eisenstat–Walker criterion. The caller supplies the
// residual and a per-iteration "prepare" hook that relinearizes the
// operator and preconditioner around the current state (for Stokes: the
// Newton operator drives the Krylov matvec while the preconditioner keeps
// the Picard linearization, §III-A).
package nonlinear

import (
	"fmt"
	"math"

	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
)

// System describes the nonlinear problem F(x) = 0.
type System struct {
	N int
	// Residual evaluates f = F(x).
	Residual func(x, f la.Vec)
	// Prepare relinearizes around x and returns the Jacobian operator and
	// its preconditioner. Called once per outer iteration. For a Picard
	// iteration, return the Picard operator here.
	Prepare func(x la.Vec) (krylov.Op, krylov.Preconditioner)
	// Method selects the inner Krylov method ("gcr" or default "fgmres").
	Method string
	// InnerParams bounds the inner solves (MaxIt, Restart); RTol is
	// overridden per iteration when Eisenstat–Walker is active.
	InnerParams krylov.Params
	// Inner, when non-nil, replaces the built-in serial Krylov call for
	// the inner solve J·δ = rhs: it receives the operator/preconditioner
	// pair of the current Prepare, the requested method, and the
	// per-iteration params (RTol already holds the Eisenstat–Walker
	// forcing term). The outer loop's breakdown fallback retries through
	// the same hook with the alternate method. This is the seam the
	// model layer uses to route inner solves to a rank-distributed
	// backend while the nonlinear iteration itself stays serial.
	Inner func(method string, jop krylov.Op, pc krylov.Preconditioner, rhs, delta la.Vec, prm krylov.Params) krylov.Result
}

// Options controls the outer iteration.
type Options struct {
	MaxIt int
	// RTol/ATol stop on ‖F‖ ≤ max(RTol·‖F₀‖, ATol).
	RTol, ATol float64
	// EisenstatWalker enables adaptive forcing terms (choice 2 of [39]):
	// η_k = γ·(‖F_k‖/‖F_{k−1}‖)^α with safeguarding; otherwise the fixed
	// InnerParams.RTol is used.
	EisenstatWalker bool
	EWGamma         float64 // default 0.9
	EWAlpha         float64 // default 2
	EWEta0          float64 // initial forcing term (default 0.3)
	EWEtaMax        float64 // default 0.9
	EWEtaMin        float64 // default 1e-6
	// LineSearchMax bounds the backtracking halvings (default 8;
	// 0 disables the line search entirely).
	LineSearchMax int
}

// DefaultOptions returns the paper-style defaults.
func DefaultOptions() Options {
	return Options{
		MaxIt: 50, RTol: 1e-8, ATol: 1e-50,
		EisenstatWalker: true, EWGamma: 0.9, EWAlpha: 2,
		EWEta0: 0.3, EWEtaMax: 0.9, EWEtaMin: 1e-6,
		LineSearchMax: 8,
	}
}

// Result reports the outcome of a nonlinear solve.
type Result struct {
	Converged  bool
	Iterations int       // outer (Newton/Picard) iterations
	KrylovIts  int       // total inner Krylov iterations
	FNorm      float64   // final residual norm
	FNorm0     float64   // initial residual norm
	History    []float64 // ‖F‖ after each outer iteration (incl. initial)
	Stagnated  bool      // line search failed to reduce ‖F‖
	Breakdowns int       // inner Krylov breakdowns encountered
	Fallbacks  int       // breakdowns recovered by switching Krylov method
	// Err carries the typed inner breakdown (*krylov.BreakdownError in
	// its chain) when even the fallback method broke down and the outer
	// iteration had to abort.
	Err error
}

// Solve runs the inexact Newton (or Picard — determined by what Prepare
// returns) iteration, updating x in place.
func Solve(sys System, x la.Vec, opt Options) Result {
	if opt.MaxIt <= 0 {
		opt.MaxIt = 50
	}
	if opt.EWGamma <= 0 {
		opt.EWGamma = 0.9
	}
	if opt.EWAlpha <= 0 {
		opt.EWAlpha = 2
	}
	if opt.EWEtaMax <= 0 {
		opt.EWEtaMax = 0.9
	}
	if opt.EWEta0 <= 0 {
		opt.EWEta0 = 0.3
	}
	if opt.EWEtaMin <= 0 {
		opt.EWEtaMin = 1e-6
	}

	n := sys.N
	f := la.NewVec(n)
	delta := la.NewVec(n)
	xTrial := la.NewVec(n)
	fTrial := la.NewVec(n)

	sys.Residual(x, f)
	res := Result{FNorm0: f.Norm2()}
	fn := res.FNorm0
	res.History = append(res.History, fn)
	prevFn := fn
	eta := sys.InnerParams.RTol
	if eta <= 0 {
		eta = 1e-3
	}
	if opt.EisenstatWalker {
		// Eisenstat–Walker owns the forcing terms; start loose (a tight
		// first solve of a bad linearization wastes Krylov work).
		eta = opt.EWEta0
	}

	for it := 1; it <= opt.MaxIt; it++ {
		if fn <= opt.ATol || fn <= opt.RTol*res.FNorm0 {
			res.Converged = true
			break
		}
		jop, pc := sys.Prepare(x)

		// Eisenstat–Walker forcing (choice 2), with the standard
		// safeguard η_k ≥ γ·η_{k−1}^α when the previous forcing was large.
		if opt.EisenstatWalker && it > 1 {
			etaNew := opt.EWGamma * math.Pow(fn/prevFn, opt.EWAlpha)
			guard := opt.EWGamma * math.Pow(eta, opt.EWAlpha)
			if guard > 0.1 && guard > etaNew {
				etaNew = guard
			}
			eta = clampF(etaNew, opt.EWEtaMin, opt.EWEtaMax)
		}

		prm := sys.InnerParams
		prm.RTol = eta
		if prm.MaxIt <= 0 {
			prm.MaxIt = 500
		}
		// Solve J δ = −F.
		rhs := f.Clone()
		rhs.Scale(-1)
		delta.Zero()
		inner := func(method string) krylov.Result {
			if sys.Inner != nil {
				return sys.Inner(method, jop, pc, rhs, delta, prm)
			}
			if method == "gcr" {
				return krylov.GCR(jop, pc, rhs, delta, prm, nil)
			}
			return krylov.FGMRES(jop, pc, rhs, delta, prm)
		}
		kres := inner(sys.Method)
		res.KrylovIts += kres.Iterations
		if kres.Err != nil {
			// Inner breakdown (NaN/Inf, zero pivot, stagnation): discard the
			// poisoned direction and retry once with the alternate Krylov
			// method before giving up on this outer iteration.
			res.Breakdowns++
			alt := "gcr"
			if sys.Method == "gcr" {
				alt = "fgmres"
			}
			delta.Zero()
			kres = inner(alt)
			res.KrylovIts += kres.Iterations
			if kres.Err != nil {
				res.Err = fmt.Errorf("nonlinear: outer iteration %d: inner solve broke down with %q and fallback %q: %w",
					it, sys.Method, alt, kres.Err)
				res.Iterations = it
				break
			}
			res.Fallbacks++
		}

		// Backtracking line search on ‖F‖ (sufficient decrease with a
		// tiny Armijo constant, standard for Newton–Krylov).
		lambda := 1.0
		accepted := false
		for ls := 0; ls <= opt.LineSearchMax; ls++ {
			xTrial.Copy(x)
			xTrial.AXPY(lambda, delta)
			sys.Residual(xTrial, fTrial)
			ftn := fTrial.Norm2()
			if !math.IsNaN(ftn) && ftn <= (1-1e-4*lambda)*fn {
				x.Copy(xTrial)
				f.Copy(fTrial)
				prevFn = fn
				fn = ftn
				accepted = true
				break
			}
			if opt.LineSearchMax == 0 {
				// Line search disabled: accept the full step regardless.
				x.Copy(xTrial)
				f.Copy(fTrial)
				prevFn = fn
				fn = ftn
				accepted = true
				break
			}
			lambda *= 0.5
		}
		res.Iterations = it
		if !accepted {
			// One last chance: accept a tiny step if it at least does not
			// blow up; otherwise report stagnation.
			res.Stagnated = true
			res.History = append(res.History, fn)
			break
		}
		res.History = append(res.History, fn)
	}
	if fn <= opt.ATol || fn <= opt.RTol*res.FNorm0 {
		res.Converged = true
	}
	res.FNorm = fn
	return res
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
