// Package par provides the shared-memory worker-pool primitives used by
// the element-parallel operator kernels and row-parallel SpMV. It is the
// intra-node half of the paper's parallel substrate: the original pTatin3D
// relies on MPI ranks per core; here "cores" are worker goroutines sharing
// one address space (see DESIGN.md, substitution table).
package par

import "sync"

// For partitions the half-open range [0,n) into contiguous chunks and runs
// body(lo,hi) on nworkers goroutines. It blocks until all chunks finish.
// With nworkers <= 1 the body is invoked once on the caller's goroutine,
// so sequential runs have zero scheduling overhead.
func For(nworkers, n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if nworkers <= 1 || n == 1 {
		body(0, n)
		return
	}
	if nworkers > n {
		nworkers = n
	}
	var wg sync.WaitGroup
	chunk := (n + nworkers - 1) / nworkers
	for w := 0; w < nworkers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForItems runs body(i) for every i in [0,n) distributed over nworkers
// goroutines in contiguous chunks. Convenience wrapper over For.
func ForItems(nworkers, n int, body func(i int)) {
	For(nworkers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}
