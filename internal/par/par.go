// Package par provides the shared-memory worker-pool primitives used by
// the element-parallel operator kernels and row-parallel SpMV. It is the
// intra-node half of the paper's parallel substrate: the original pTatin3D
// relies on MPI ranks per core; here "cores" are long-lived worker
// goroutines sharing one address space (see DESIGN.md, substitution
// table). All dispatch goes through one persistent pool (pool.go) — no
// goroutines are spawned per call.
package par

import (
	"sync/atomic"
	"time"

	"ptatin3d/internal/telemetry"
)

// Probe carries the worker-occupancy instruments recorded by For. All
// fields are nil-safe telemetry handles; the probe itself is installed via
// SetTelemetry and read through an atomic pointer, so the disabled cost in
// For is one atomic load plus a nil check.
type Probe struct {
	Calls   *telemetry.Counter // For invocations that went parallel
	Serial  *telemetry.Counter // For invocations run on the caller's goroutine
	Chunks  *telemetry.Counter // worker chunks launched
	Items   *telemetry.Counter // items distributed
	Busy    *telemetry.Timer   // per-chunk busy time (summed over workers)
	Wall    *telemetry.Timer   // caller wall time of parallel regions
	Workers *telemetry.Counter // workers requested (occupancy denominator)

	// Pool-occupancy instruments: how chunk execution splits between the
	// persistent pool workers and the calling goroutine (which always
	// participates in its own job), and the pool size itself. The pooled
	// fraction ChunksPooled/(ChunksPooled+ChunksInline) is the direct
	// measure of how much help the pool provided.
	PoolWorkers  *telemetry.Gauge   // persistent pool size (GOMAXPROCS at start)
	ChunksPooled *telemetry.Counter // chunks executed by pool workers
	ChunksInline *telemetry.Counter // chunks executed by the calling goroutine
}

var probe atomic.Pointer[Probe]

// SetTelemetry installs worker-occupancy instrumentation under sc
// ("calls", "chunks", "items", "workers" counters and "busy"/"wall"
// timers, plus the pool instruments "pool_workers", "chunks_pooled",
// "chunks_inline"). Occupancy is Busy.Elapsed / Wall.Elapsed ÷
// (Workers/Calls): the fraction of requested worker-seconds actually
// spent in body closures. Passing a nil scope uninstalls the probe. Safe
// to call concurrently with running For loops.
func SetTelemetry(sc *telemetry.Scope) {
	if sc == nil {
		probe.Store(nil)
		return
	}
	probe.Store(&Probe{
		Calls:        sc.Counter("calls"),
		Serial:       sc.Counter("serial_calls"),
		Chunks:       sc.Counter("chunks"),
		Items:        sc.Counter("items"),
		Busy:         sc.Timer("busy"),
		Wall:         sc.Timer("wall"),
		Workers:      sc.Counter("workers"),
		PoolWorkers:  sc.Gauge("pool_workers"),
		ChunksPooled: sc.Counter("chunks_pooled"),
		ChunksInline: sc.Counter("chunks_inline"),
	})
}

// For partitions the half-open range [0,n) into contiguous chunks and runs
// body(lo,hi) on the persistent worker pool, the caller included. It
// blocks until all chunks finish. With nworkers <= 1 the body is invoked
// once on the caller's goroutine, so sequential runs have zero scheduling
// overhead.
//
// The partition is balanced: chunk w is [w·n/nw, (w+1)·n/nw), so with
// nw = min(nworkers, n) every chunk is non-empty and chunk sizes differ by
// at most one — no idle trailing workers for any (nworkers, n) pair.
//
// For may be called concurrently from any number of goroutines, and from
// inside a body already running on the pool (nested dispatch): the caller
// always executes chunks of its own job, so a busy pool costs parallelism,
// never progress. A panic in a body is re-raised on the caller's
// goroutine after the remaining chunks complete.
func For(nworkers, n int, body func(lo, hi int)) {
	ForChunk(nworkers, n, func(_, lo, hi int) { body(lo, hi) })
}

// ForChunk is For with the chunk index exposed: body(c, lo, hi) where c
// is the deterministic chunk number in [0, min(nworkers,n)). The chunk →
// range mapping depends only on (nworkers, n) — never on which pool
// worker executes the chunk — so per-chunk scratch indexed by c is
// race-free and schedules built on c are reproducible.
func ForChunk(nworkers, n int, body func(c, lo, hi int)) {
	if n <= 0 {
		return
	}
	if nworkers <= 1 || n == 1 {
		if p := probe.Load(); p != nil {
			p.Serial.Inc()
			p.Items.Add(int64(n))
		}
		body(0, 0, n)
		return
	}
	if nworkers > n {
		nworkers = n
	}
	p := probe.Load()
	var wallStart time.Time
	if p != nil {
		p.Calls.Inc()
		p.Chunks.Add(int64(nworkers))
		p.Items.Add(int64(n))
		p.Workers.Add(int64(nworkers))
		wallStart = p.Wall.Start()
	}
	dispatch(nworkers, n, body)
	if p != nil {
		p.PoolWorkers.Set(float64(poolSize))
		p.Wall.Stop(wallStart)
	}
}

// ForItems runs body(i) for every i in [0,n) distributed over nworkers
// pool workers in contiguous chunks. Convenience wrapper over For; hot
// loops with trivial per-item bodies should use For(lo,hi) directly to
// avoid the per-item indirect call.
func ForItems(nworkers, n int, body func(i int)) {
	For(nworkers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Chunks returns the balanced partition For uses for (nworkers, n): the
// lo/hi bounds of each chunk. Exposed for tests and for callers that need
// to preallocate per-chunk scratch.
func Chunks(nworkers, n int) [][2]int {
	if n <= 0 {
		return nil
	}
	if nworkers <= 1 || n == 1 {
		return [][2]int{{0, n}}
	}
	if nworkers > n {
		nworkers = n
	}
	out := make([][2]int, nworkers)
	for w := 0; w < nworkers; w++ {
		out[w] = [2]int{w * n / nworkers, (w + 1) * n / nworkers}
	}
	return out
}
