package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The persistent worker pool. Before this existed, every parallel For
// spawned fresh goroutines and tore them down again — at ~1–2 µs per
// spawn that overhead was paid 8 times per colored operator application
// (once per color barrier) and once per SpMV row sweep. The pool keeps
// GOMAXPROCS long-lived, parked worker goroutines; For/ForChunk enqueue a
// job descriptor and the workers steal balanced chunks from it with one
// atomic fetch-add per chunk.
//
// Deadlock freedom is structural: the caller always participates in its
// own job (it runs chunks until none remain) and help requests to the
// pool are posted non-blockingly. A full queue or a fully busy pool
// therefore degrades parallelism, never progress — which is also what
// makes nested dispatch (a worker's body calling For again) safe.
var (
	poolStart sync.Once
	poolQueue chan *poolJob
	poolSize  int
)

// startPool launches the worker goroutines on first parallel dispatch.
func startPool() {
	poolStart.Do(func() {
		poolSize = runtime.GOMAXPROCS(0)
		if poolSize < 1 {
			poolSize = 1
		}
		// Queue capacity bounds outstanding help requests; 8 slots per
		// worker absorbs bursts of concurrent For callers without ever
		// blocking a producer (sends are non-blocking regardless).
		poolQueue = make(chan *poolJob, 8*poolSize)
		for w := 0; w < poolSize; w++ {
			go poolWorker(w)
		}
	})
}

// PoolSize returns the number of persistent pool workers (GOMAXPROCS at
// first dispatch). It is 0 before the pool has started.
func PoolSize() int {
	if poolQueue == nil {
		return 0
	}
	return poolSize
}

// poolWorker parks on the queue and steals chunks from whatever job it
// receives. A stale pointer to an already-finished job is harmless: the
// chunk counter is exhausted, so run returns immediately.
func poolWorker(id int) {
	_ = id
	for jb := range poolQueue {
		jb.run(true)
	}
}

// poolJob is one For/ForChunk invocation in flight: a balanced chunking
// of [0,n) into nchunks pieces, claimed by workers (and the caller) via
// an atomic counter. The first panic out of a body is captured and
// re-raised on the caller's goroutine after all chunks complete.
type poolJob struct {
	n, nchunks int
	body       func(c, lo, hi int)
	next       atomic.Int64
	wg         sync.WaitGroup
	panicOnce  sync.Once
	panicVal   atomic.Pointer[any]
}

// run claims and executes chunks until the job is exhausted. pooled
// records whether the executing goroutine is a pool worker (for the
// occupancy instruments) or the calling goroutine.
func (jb *poolJob) run(pooled bool) {
	p := probe.Load()
	for {
		c := int(jb.next.Add(1) - 1)
		if c >= jb.nchunks {
			return
		}
		jb.runChunk(c, pooled, p)
	}
}

// runChunk executes one chunk with panic capture. wg.Done is deferred
// first so it runs after the recover — a panicking body can never leave
// the caller blocked in Wait.
func (jb *poolJob) runChunk(c int, pooled bool, p *Probe) {
	defer jb.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			jb.panicOnce.Do(func() { jb.panicVal.Store(&r) })
		}
	}()
	lo := c * jb.n / jb.nchunks
	hi := (c + 1) * jb.n / jb.nchunks
	if p != nil {
		if pooled {
			p.ChunksPooled.Inc()
		} else {
			p.ChunksInline.Inc()
		}
		st := p.Busy.Start()
		jb.body(c, lo, hi)
		p.Busy.Stop(st)
		return
	}
	jb.body(c, lo, hi)
}

// dispatch runs body over the balanced nchunks-chunking of [0,n) on the
// pool, with the caller stealing chunks too, and blocks until every chunk
// has completed. Panics from bodies are re-raised here with their
// original value.
func dispatch(nchunks, n int, body func(c, lo, hi int)) {
	startPool()
	jb := &poolJob{n: n, nchunks: nchunks, body: body}
	jb.wg.Add(nchunks)
	// Post help requests for up to nchunks-1 chunks (the caller takes at
	// least one itself), never blocking: a full queue just means the
	// caller ends up running more chunks inline.
	help := nchunks - 1
	if help > poolSize {
		help = poolSize
	}
offer:
	for i := 0; i < help; i++ {
		select {
		case poolQueue <- jb:
		default:
			break offer
		}
	}
	jb.run(false)
	jb.wg.Wait()
	if pv := jb.panicVal.Load(); pv != nil {
		panic(*pv)
	}
}
