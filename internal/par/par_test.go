package par

import (
	"sync/atomic"
	"testing"

	"ptatin3d/internal/telemetry"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, nw := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]int32, n)
			For(nw, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("nw=%d n=%d: index %d visited %d times", nw, n, i, h)
				}
			}
		}
	}
}

// TestChunkBalance is the table-driven regression test for the chunking
// edge case: the old ceil(n/nworkers) split could leave trailing workers
// with empty chunks (e.g. nworkers=4, n=6 → chunks 2,2,2,∅). The balanced
// partition must produce exactly min(nworkers, n) non-empty chunks whose
// sizes differ by at most one, covering [0,n) contiguously.
func TestChunkBalance(t *testing.T) {
	cases := []struct{ nworkers, n int }{
		{1, 0}, {4, 0}, {1, 1}, {2, 1}, {100, 1},
		{2, 3}, {3, 2}, {4, 5}, {4, 6}, {4, 7}, {4, 8},
		{5, 9}, {7, 10}, {8, 9}, {16, 17}, {16, 100},
		{3, 1000}, {100, 7}, {63, 64}, {64, 63}, {1000, 999},
	}
	for _, tc := range cases {
		chunks := Chunks(tc.nworkers, tc.n)
		if tc.n == 0 {
			if chunks != nil {
				t.Fatalf("nw=%d n=0: got chunks %v", tc.nworkers, chunks)
			}
			continue
		}
		wantChunks := tc.nworkers
		if wantChunks > tc.n {
			wantChunks = tc.n
		}
		if wantChunks < 1 {
			wantChunks = 1
		}
		if len(chunks) != wantChunks {
			t.Fatalf("nw=%d n=%d: %d chunks, want %d", tc.nworkers, tc.n, len(chunks), wantChunks)
		}
		next := 0
		minSz, maxSz := tc.n+1, 0
		for i, c := range chunks {
			lo, hi := c[0], c[1]
			if lo != next {
				t.Fatalf("nw=%d n=%d: chunk %d starts at %d, want %d", tc.nworkers, tc.n, i, lo, next)
			}
			sz := hi - lo
			if sz <= 0 {
				t.Fatalf("nw=%d n=%d: chunk %d empty [%d,%d)", tc.nworkers, tc.n, i, lo, hi)
			}
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			next = hi
		}
		if next != tc.n {
			t.Fatalf("nw=%d n=%d: coverage ends at %d", tc.nworkers, tc.n, next)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("nw=%d n=%d: imbalanced chunks (min %d, max %d)", tc.nworkers, tc.n, minSz, maxSz)
		}
	}
	// The executed partition must match the advertised one.
	for _, tc := range cases {
		if tc.n == 0 {
			continue
		}
		var mu atomic.Int64
		got := make(chan [2]int, tc.n)
		For(tc.nworkers, tc.n, func(lo, hi int) {
			mu.Add(1)
			got <- [2]int{lo, hi}
		})
		close(got)
		want := Chunks(tc.nworkers, tc.n)
		if int(mu.Load()) != len(want) {
			t.Fatalf("nw=%d n=%d: For ran %d chunks, Chunks says %d", tc.nworkers, tc.n, mu.Load(), len(want))
		}
		seen := map[[2]int]bool{}
		for c := range got {
			seen[c] = true
		}
		for _, c := range want {
			if !seen[c] {
				t.Fatalf("nw=%d n=%d: chunk %v not executed", tc.nworkers, tc.n, c)
			}
		}
	}
}

func TestForItemsSum(t *testing.T) {
	var sum int64
	ForItems(4, 100, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForSequentialFastPath(t *testing.T) {
	calls := 0
	For(1, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("sequential path got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential path invoked %d times", calls)
	}
}

// TestTelemetryProbe: with a probe installed, For records chunk counts,
// item totals and busy/wall times; uninstalling stops recording.
func TestTelemetryProbe(t *testing.T) {
	reg := telemetry.New()
	sc := reg.Root().Child("par")
	SetTelemetry(sc)
	defer SetTelemetry(nil)

	For(4, 100, func(lo, hi int) {})
	For(1, 10, func(lo, hi int) {})

	if got := sc.Counter("calls").Value(); got != 1 {
		t.Fatalf("parallel calls = %d, want 1", got)
	}
	if got := sc.Counter("serial_calls").Value(); got != 1 {
		t.Fatalf("serial calls = %d, want 1", got)
	}
	if got := sc.Counter("chunks").Value(); got != 4 {
		t.Fatalf("chunks = %d, want 4", got)
	}
	if got := sc.Counter("items").Value(); got != 110 {
		t.Fatalf("items = %d, want 110", got)
	}
	if sc.Timer("busy").Calls() != 4 || sc.Timer("wall").Calls() != 1 {
		t.Fatalf("timer calls busy=%d wall=%d", sc.Timer("busy").Calls(), sc.Timer("wall").Calls())
	}

	SetTelemetry(nil)
	For(4, 100, func(lo, hi int) {})
	if got := sc.Counter("calls").Value(); got != 1 {
		t.Fatalf("probe still recording after uninstall: %d", got)
	}
}
