package par

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ptatin3d/internal/telemetry"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, nw := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]int32, n)
			For(nw, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("nw=%d n=%d: index %d visited %d times", nw, n, i, h)
				}
			}
		}
	}
}

// TestChunkBalance is the table-driven regression test for the chunking
// edge case: the old ceil(n/nworkers) split could leave trailing workers
// with empty chunks (e.g. nworkers=4, n=6 → chunks 2,2,2,∅). The balanced
// partition must produce exactly min(nworkers, n) non-empty chunks whose
// sizes differ by at most one, covering [0,n) contiguously.
func TestChunkBalance(t *testing.T) {
	cases := []struct{ nworkers, n int }{
		{1, 0}, {4, 0}, {1, 1}, {2, 1}, {100, 1},
		{2, 3}, {3, 2}, {4, 5}, {4, 6}, {4, 7}, {4, 8},
		{5, 9}, {7, 10}, {8, 9}, {16, 17}, {16, 100},
		{3, 1000}, {100, 7}, {63, 64}, {64, 63}, {1000, 999},
	}
	for _, tc := range cases {
		chunks := Chunks(tc.nworkers, tc.n)
		if tc.n == 0 {
			if chunks != nil {
				t.Fatalf("nw=%d n=0: got chunks %v", tc.nworkers, chunks)
			}
			continue
		}
		wantChunks := tc.nworkers
		if wantChunks > tc.n {
			wantChunks = tc.n
		}
		if wantChunks < 1 {
			wantChunks = 1
		}
		if len(chunks) != wantChunks {
			t.Fatalf("nw=%d n=%d: %d chunks, want %d", tc.nworkers, tc.n, len(chunks), wantChunks)
		}
		next := 0
		minSz, maxSz := tc.n+1, 0
		for i, c := range chunks {
			lo, hi := c[0], c[1]
			if lo != next {
				t.Fatalf("nw=%d n=%d: chunk %d starts at %d, want %d", tc.nworkers, tc.n, i, lo, next)
			}
			sz := hi - lo
			if sz <= 0 {
				t.Fatalf("nw=%d n=%d: chunk %d empty [%d,%d)", tc.nworkers, tc.n, i, lo, hi)
			}
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			next = hi
		}
		if next != tc.n {
			t.Fatalf("nw=%d n=%d: coverage ends at %d", tc.nworkers, tc.n, next)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("nw=%d n=%d: imbalanced chunks (min %d, max %d)", tc.nworkers, tc.n, minSz, maxSz)
		}
	}
	// The executed partition must match the advertised one.
	for _, tc := range cases {
		if tc.n == 0 {
			continue
		}
		var mu atomic.Int64
		got := make(chan [2]int, tc.n)
		For(tc.nworkers, tc.n, func(lo, hi int) {
			mu.Add(1)
			got <- [2]int{lo, hi}
		})
		close(got)
		want := Chunks(tc.nworkers, tc.n)
		if int(mu.Load()) != len(want) {
			t.Fatalf("nw=%d n=%d: For ran %d chunks, Chunks says %d", tc.nworkers, tc.n, mu.Load(), len(want))
		}
		seen := map[[2]int]bool{}
		for c := range got {
			seen[c] = true
		}
		for _, c := range want {
			if !seen[c] {
				t.Fatalf("nw=%d n=%d: chunk %v not executed", tc.nworkers, tc.n, c)
			}
		}
	}
}

func TestForItemsSum(t *testing.T) {
	var sum int64
	ForItems(4, 100, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForSequentialFastPath(t *testing.T) {
	calls := 0
	For(1, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("sequential path got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential path invoked %d times", calls)
	}
}

// TestConcurrentFor hammers the pool with many simultaneous For callers
// (run under -race in check.sh): every caller must see its own range
// covered exactly once regardless of how the pool interleaves jobs.
func TestConcurrentFor(t *testing.T) {
	const callers = 16
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 100 + 37*g
			hits := make([]int32, n)
			For(4, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Errorf("caller %d: index %d visited %d times", g, i, h)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNestedDispatch: a body running on the pool calls For again. The
// caller-participates design means this must complete even when every
// pool worker is occupied by the outer job.
func TestNestedDispatch(t *testing.T) {
	const outer, inner = 8, 50
	var sum int64
	For(4, outer, func(olo, ohi int) {
		for o := olo; o < ohi; o++ {
			For(4, inner, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&sum, 1)
				}
			})
		}
	})
	if sum != outer*inner {
		t.Fatalf("nested sum = %d, want %d", sum, outer*inner)
	}
}

// TestWorkerCountChanges: the same pool must serve calls with varying
// nworkers back to back — the chunking adapts per call, the pool does not.
func TestWorkerCountChanges(t *testing.T) {
	for _, nw := range []int{1, 8, 2, 16, 1, 4, 3, 100, 2} {
		n := 256
		hits := make([]int32, n)
		For(nw, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("nw=%d: index %d visited %d times", nw, i, h)
			}
		}
	}
}

// TestPanicPropagation: a panic in a body must surface on the calling
// goroutine with its original value, after the remaining chunks drain
// (no wedged WaitGroup), and the pool must stay usable afterwards.
func TestPanicPropagation(t *testing.T) {
	for round := 0; round < 3; round++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("round %d: panic did not propagate", round)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("round %d: recovered %v, want \"boom\"", round, r)
				}
			}()
			For(4, 100, func(lo, hi int) {
				if lo == 0 {
					panic("boom")
				}
			})
		}()
		// Pool still serves jobs after the panic drained.
		var sum int64
		For(4, 10, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&sum, int64(i))
			}
		})
		if sum != 45 {
			t.Fatalf("round %d: pool broken after panic (sum=%d)", round, sum)
		}
	}
}

// TestNestedPanicPropagation: a panic thrown inside an inner nested For
// must unwind through both dispatch levels to the outermost caller.
func TestNestedPanicPropagation(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("nested panic did not propagate")
		} else if s, ok := r.(string); !ok || s != "inner" {
			t.Fatalf("recovered %v, want \"inner\"", r)
		}
	}()
	For(4, 8, func(olo, ohi int) {
		For(4, 8, func(lo, hi int) {
			if lo == 0 {
				panic("inner")
			}
		})
	})
}

// TestConcurrentNestedMixed combines all the stress axes: concurrent
// callers, nested dispatch, and per-caller worker counts, under -race.
func TestConcurrentNestedMixed(t *testing.T) {
	if testing.Short() && testing.Verbose() {
		t.Log("running in short mode (still cheap)")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nw := 1 + g%5
			var sum int64
			For(nw, 20, func(olo, ohi int) {
				for o := olo; o < ohi; o++ {
					For(3, 30, func(lo, hi int) {
						atomic.AddInt64(&sum, int64(hi-lo))
					})
				}
			})
			if sum != 600 {
				errs <- fmt.Errorf("caller %d (nw=%d): sum=%d, want 600", g, nw, sum)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTelemetryProbe: with a probe installed, For records chunk counts,
// item totals and busy/wall times; uninstalling stops recording.
func TestTelemetryProbe(t *testing.T) {
	reg := telemetry.New()
	sc := reg.Root().Child("par")
	SetTelemetry(sc)
	defer SetTelemetry(nil)

	For(4, 100, func(lo, hi int) {})
	For(1, 10, func(lo, hi int) {})

	if got := sc.Counter("calls").Value(); got != 1 {
		t.Fatalf("parallel calls = %d, want 1", got)
	}
	if got := sc.Counter("serial_calls").Value(); got != 1 {
		t.Fatalf("serial calls = %d, want 1", got)
	}
	if got := sc.Counter("chunks").Value(); got != 4 {
		t.Fatalf("chunks = %d, want 4", got)
	}
	if got := sc.Counter("items").Value(); got != 110 {
		t.Fatalf("items = %d, want 110", got)
	}
	if sc.Timer("busy").Calls() != 4 || sc.Timer("wall").Calls() != 1 {
		t.Fatalf("timer calls busy=%d wall=%d", sc.Timer("busy").Calls(), sc.Timer("wall").Calls())
	}

	SetTelemetry(nil)
	For(4, 100, func(lo, hi int) {})
	if got := sc.Counter("calls").Value(); got != 1 {
		t.Fatalf("probe still recording after uninstall: %d", got)
	}
}
