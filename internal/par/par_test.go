package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, nw := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			hits := make([]int32, n)
			For(nw, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("nw=%d n=%d: index %d visited %d times", nw, n, i, h)
				}
			}
		}
	}
}

func TestForItemsSum(t *testing.T) {
	var sum int64
	ForItems(4, 100, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForSequentialFastPath(t *testing.T) {
	calls := 0
	For(1, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("sequential path got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential path invoked %d times", calls)
	}
}
