package model

import (
	"fmt"

	"ptatin3d/internal/chkpt"
	"ptatin3d/internal/mpm"
)

// Checkpoint captures the full restartable state of the model: deformed
// mesh geometry (the ALE free surface moves vertices), the coupled
// velocity/pressure solution, temperature, the complete material-point SoA
// (including cached element locations, so a restarted run need not
// re-locate), and the time/step counters.
func (m *Model) Checkpoint() *chkpt.State {
	da := m.Prob.DA
	pts := m.Points
	st := &chkpt.State{
		StepNum: uint64(m.StepNum),
		Time:    m.Time,
		Mx:      uint64(da.Mx), My: uint64(da.My), Mz: uint64(da.Mz),
		Coords:  append([]float64(nil), da.Coords...),
		X:       append([]float64(nil), m.X...),
		PX:      append([]float64(nil), pts.X...),
		PY:      append([]float64(nil), pts.Y...),
		PZ:      append([]float64(nil), pts.Z...),
		Litho:   append([]int32(nil), pts.Litho...),
		Plastic: append([]float64(nil), pts.Plastic...),
		Elem:    append([]int32(nil), pts.Elem...),
		Xi:      append([]float64(nil), pts.Xi...),
		Et:      append([]float64(nil), pts.Et...),
		Ze:      append([]float64(nil), pts.Ze...),
	}
	if m.Temp != nil {
		st.Temp = append([]float64(nil), m.Temp...)
	}
	return st
}

// Restore installs a checkpointed state into a model built with the same
// construction options (mesh resolution, rheology table, solver config).
// It validates the state's dimensions against the model before touching
// anything, so a mismatched checkpoint leaves the model unchanged.
func (m *Model) Restore(st *chkpt.State) error {
	da := m.Prob.DA
	if int(st.Mx) != da.Mx || int(st.My) != da.My || int(st.Mz) != da.Mz {
		return fmt.Errorf("model: checkpoint grid %d×%d×%d does not match model %d×%d×%d",
			st.Mx, st.My, st.Mz, da.Mx, da.My, da.Mz)
	}
	if len(st.Coords) != len(da.Coords) {
		return fmt.Errorf("model: checkpoint has %d coordinate values, model mesh needs %d",
			len(st.Coords), len(da.Coords))
	}
	ncoup := da.NVelDOF() + da.NPresDOF()
	if len(st.X) != ncoup {
		return fmt.Errorf("model: checkpoint state has %d DOFs, model needs %d", len(st.X), ncoup)
	}
	if m.Temp != nil && len(st.Temp) != len(m.Temp) {
		return fmt.Errorf("model: checkpoint has %d temperature values, model needs %d",
			len(st.Temp), len(m.Temp))
	}
	nel := da.NElements()
	for i, e := range st.Elem {
		if int(e) >= nel {
			return fmt.Errorf("model: checkpoint point %d cached in element %d of %d", i, e, nel)
		}
	}

	copy(da.Coords, st.Coords)
	m.X = append(m.X[:0], st.X...)
	if m.Temp != nil {
		copy(m.Temp, st.Temp)
	}
	m.Points = &mpm.Points{
		X:       append([]float64(nil), st.PX...),
		Y:       append([]float64(nil), st.PY...),
		Z:       append([]float64(nil), st.PZ...),
		Litho:   append([]int32(nil), st.Litho...),
		Plastic: append([]float64(nil), st.Plastic...),
		Elem:    append([]int32(nil), st.Elem...),
		Xi:      append([]float64(nil), st.Xi...),
		Et:      append([]float64(nil), st.Et...),
		Ze:      append([]float64(nil), st.Ze...),
	}
	m.Time = st.Time
	m.StepNum = int(st.StepNum)
	return nil
}

// SaveCheckpoint atomically writes the current model state to path.
func (m *Model) SaveCheckpoint(path string) error {
	return chkpt.Save(path, m.Checkpoint())
}

// LoadCheckpoint restores the model from a checkpoint file.
func (m *Model) LoadCheckpoint(path string) error {
	st, err := chkpt.Load(path)
	if err != nil {
		return err
	}
	return m.Restore(st)
}
