// Package model is the top-level pTatin3D driver (paper §II and §V): it
// couples the material-point method, the rheology table, the nonlinear
// heterogeneous Stokes solver, the SUPG energy equation, and the ALE free
// surface into a time-stepping loop, and provides the paper's two model
// problems — the sinker/sedimentation benchmark (§IV-A) and the
// continental rifting model (§V).
package model

import (
	"fmt"
	"math"
	"time"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mg"
	"ptatin3d/internal/mpm"
	"ptatin3d/internal/nonlinear"
	"ptatin3d/internal/par"
	"ptatin3d/internal/rheology"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
	"ptatin3d/internal/thermal"
)

// Model holds the full simulation state.
type Model struct {
	Prob   *fem.Problem
	Points *mpm.Points
	Lith   rheology.Table

	// X is the current coupled state [u; p].
	X la.Vec
	// T is the vertex-grid temperature (nil disables the energy equation).
	T    *thermal.Solver
	Temp []float64
	// Stokes solver configuration; the preconditioner is rebuilt on each
	// nonlinear relinearization with the current Picard coefficients.
	Cfg stokes.Config
	// LastStokes is the most recent preconditioner built by SolveStokes;
	// drivers inspect it after a solve for the per-level operator
	// selection report (Cfg.FineKind == op.Auto).
	LastStokes *stokes.Solver
	// Backend executes the inner linear solves of the nonlinear Stokes
	// iteration. nil selects the built-in shared-memory path
	// (bit-identical to SharedBackend); a DistributedBackend runs every
	// inner solve collectively over the simulated rank world, making the
	// whole MPM→rheology→Stokes→thermal→ALE step rank-distributed.
	Backend StokesBackend

	// VerticalAxis is the gravity direction index (sinker: 2, rift: 1).
	VerticalAxis int
	// FreeSurface enables the column-wise ALE update of the max face of
	// VerticalAxis after each step.
	FreeSurface bool
	// CFL controls the advection time step (fraction of min cell crossing
	// time).
	CFL float64
	// MaxDt bounds the time step (0 = unbounded).
	MaxDt float64
	// UseNewton applies the true Newton linearization in the Krylov
	// matvec (paper §III-A); the preconditioner always uses Picard.
	UseNewton bool
	// MinPointsPerElement enables material-point population control:
	// after advection, elements holding fewer points are re-seeded from
	// their neighbourhood (0 disables). Long runs with outflow boundaries
	// or strong shear need this to keep the Eq. 12 projection healthy.
	MinPointsPerElement int
	// Nonlinear controls the outer Newton/Picard iteration.
	Nonlinear nonlinear.Options
	// DisableSetupCache forces a cold Stokes solver build on every
	// relinearization (the pre-amortization behaviour). The cached
	// refresh is bit-identical, so this exists only as the A/B reference
	// for tests and debugging.
	DisableSetupCache bool

	// Telemetry, when non-nil, receives per-step instrumentation: a "step"
	// timer, "steps" counter, material-point accounting counters
	// (points_advected / points_removed / points_relocated), a "points"
	// gauge, and a "stokes" child scope threaded into each solver rebuild.
	Telemetry *telemetry.Scope

	Time    float64
	StepNum int
	Workers int

	// Per-step diagnostics (Figure 4 data).
	Stats []StepStats

	// Cached vertex coefficient fields (projection fallbacks).
	etaV, rhoV []float64

	// stokesCtx keeps the configured Stokes solver stack alive across
	// relinearizations and time steps; Prepare refreshes coefficients in
	// place instead of rebuilding topology (paper §III-A: relinearization
	// changes the coefficients, never the discretization). ALE mesh
	// motion is announced through InvalidateGeometry.
	stokesCtx stokes.Context
	// projector caches the point→vertex incidence of the Eq. 12
	// projection between the η and ρ passes of one relinearization and
	// across relinearizations within a step (points only move in the
	// advection stage).
	projector *mpm.Projector
	// stage accumulates per-stage wall time for the step in flight;
	// StepForward resets it and publishes the totals.
	stage stageTimes
}

// stageTimes breaks one time step's wall clock into pipeline stages.
type stageTimes struct {
	rheology, project, stokesSetup, stokesKrylov time.Duration
	advect, ale, thermal                         time.Duration
	setupReused                                  int64
}

// StepStats records one time step's solver behaviour — the per-step
// Newton/Krylov counts of Figure 4.
type StepStats struct {
	Step       int
	Time       float64
	Dt         float64
	NewtonIts  int
	KrylovIts  int
	FNorm0     float64
	FNorm      float64
	Converged  bool
	SolveTime  time.Duration
	PointCount int
	TopoMin    float64
	TopoMax    float64
	// Backend records which Stokes backend ran the step's inner solves
	// ("shared" when Model.Backend is nil); Ranks and the communication
	// totals are zero on the shared path.
	Backend    string
	Ranks      int
	HaloMsgs   int64
	HaloBytes  int64
	AllReduces int64
	// Per-stage wall times of the step pipeline (the -json breakdown).
	RheologyTime     time.Duration
	ProjectTime      time.Duration
	StokesSetupTime  time.Duration
	StokesKrylovTime time.Duration
	AdvectTime       time.Duration
	ALETime          time.Duration
	ThermalTime      time.Duration
	// StokesSetupReused counts the step's relinearizations served by
	// refreshing the cached solver stack instead of a cold build.
	StokesSetupReused int64
}

// pointState evaluates the rheological state of material point i for the
// current coupled state x.
func (m *Model) pointState(x la.Vec, i int) rheology.State {
	e := int(m.Points.Elem[i])
	st := rheology.State{PlasticStrain: m.Points.Plastic[i]}
	if e < 0 {
		return st
	}
	nu := m.Prob.DA.NVelDOF()
	u := x[:nu]
	pv := x[nu:]
	st.StrainRateII = fem.StrainRateAtPoint(m.Prob, u, e, m.Points.Xi[i], m.Points.Et[i], m.Points.Ze[i])
	st.Pressure = fem.EvalPressure(m.Prob, pv, e, m.Points.X[i], m.Points.Y[i], m.Points.Z[i])
	if m.Temp != nil {
		st.Temperature = thermal.TemperatureAt(m.Prob, m.Temp, e, m.Points.Xi[i], m.Points.Et[i], m.Points.Ze[i])
	}
	return st
}

// UpdateCoefficients evaluates η and ρ at every material point for the
// state x, projects them onto the vertex grid (Eq. 12) and installs them
// at the quadrature points (Eq. 13). With wantDeriv it additionally
// returns the projected Newton factor η′/ε̇_II at quadrature points.
func (m *Model) UpdateCoefficients(x la.Vec, wantDeriv bool) (facQP []float64) {
	pts := m.Points
	n := pts.Len()
	etaP := make([]float64, n)
	rhoP := make([]float64, n)
	var facP []float64
	if wantDeriv {
		facP = make([]float64, n)
	}
	// Per-point rheology evaluation: each point reads the shared state
	// (x, coordinates, temperature) and writes only its own slots, so the
	// loop parallelizes with no change in any point's arithmetic.
	t0 := time.Now()
	par.For(max(1, m.Workers), n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st := m.pointState(x, i)
			l := &m.Lith[pts.Litho[i]]
			if wantDeriv {
				eta, d := l.EffectiveViscosityDerivative(st)
				etaP[i] = eta
				eII := st.StrainRateII
				if eII < 1e-12 {
					eII = 1e-12
				}
				// Tangent safeguard: along the current strain-rate direction
				// the Newton operator's modulus is 2(η + η′·ε̇); on the
				// Drucker–Prager branch η′ = −η/ε̇ makes it exactly zero
				// (perfect plasticity), and projection smearing can push it
				// negative — an indefinite Krylov operator that the Picard
				// preconditioner cannot handle. Keep 10% of the Picard
				// stiffness: η′ ≥ −0.9·η/ε̇.
				if lo := -0.9 * eta / eII; d < lo {
					d = lo
				}
				facP[i] = d / eII
			} else {
				etaP[i], _ = l.EffectiveViscosity(st)
			}
			rhoP[i] = l.Density(st)
		}
	})
	m.stage.rheology += time.Since(t0)
	t1 := time.Now()
	if m.projector == nil {
		m.projector = mpm.NewProjector(m.Prob)
	}
	m.etaV, m.rhoV = m.projector.ProjectLithologyFields(pts,
		func(i int) float64 { return etaP[i] },
		func(i int) float64 { return rhoP[i] },
		m.etaV, m.rhoV)
	if wantDeriv {
		facV := m.projector.Project(pts, func(i int) float64 { return facP[i] }, nil)
		facQP = make([]float64, fem.NQP*m.Prob.DA.NElements())
		fem.VertexToQP(m.Prob, facV, facQP)
	}
	m.stage.project += time.Since(t1)
	return facQP
}

// CoeffCoarsener wires the projected vertex fields into the multigrid
// coefficient hierarchy (full-weighted restriction per level). Callers
// composing their own stokes.Config should install it as CoeffCoarsen.
func (m *Model) CoeffCoarsener() func(level int, p *fem.Problem) {
	return mg.VertexCoeffCoarsener(m.Prob.DA, m.etaV, m.rhoV)
}

// SolveStokes performs the nonlinear Stokes solve for the current
// material configuration, updating m.X. It returns the nonlinear result.
// Following §III-A, each relinearization rebuilds the Picard
// preconditioner; the Krylov operator is the Newton linearization when
// UseNewton is set, else the Picard operator.
func (m *Model) SolveStokes() (nonlinear.Result, error) {
	prob := m.Prob
	nu := prob.DA.NVelDOF()
	ncoup := nu + prob.DA.NPresDOF()
	if len(m.X) != ncoup {
		m.X = la.NewVec(ncoup)
	}
	if m.Backend != nil && m.UseNewton {
		if po, ok := m.Backend.(interface{ PicardOnly() bool }); ok && po.PicardOnly() {
			return nonlinear.Result{}, fmt.Errorf("model: backend %q applies the Picard linearization only; disable UseNewton", m.Backend.Name())
		}
	}
	prob.BC.ApplyToVec(m.X[:nu])

	// Geometry-dependent blocks (rebuilt each step: the ALE mesh moves).
	coupling := fem.NewCoupling(prob)
	bu := la.NewVec(nu)

	var buildErr error
	// prepared is the solver stack of the current relinearization; the
	// backend hook below needs it (the serial path reaches it through
	// the returned jop/pc instead).
	var prepared *stokes.Solver
	sys := nonlinear.System{
		N: ncoup,
		Residual: func(x, f la.Vec) {
			m.UpdateCoefficients(x, false)
			fem.MomentumRHS(prob, bu)
			op := stokes.NewOp(prob, fem.NewTensor(prob), coupling)
			op.Residual(x, bu, f)
		},
		Prepare: func(x la.Vec) (krylov.Op, krylov.Preconditioner) {
			facQP := m.UpdateCoefficients(x, m.UseNewton)
			cfg := m.Cfg
			cfg.Workers = m.Workers
			cfg.VerticalAxis = m.VerticalAxis
			cfg.CoeffCoarsen = m.CoeffCoarsener()
			if cfg.Telemetry == nil {
				cfg.Telemetry = m.Telemetry.Child("stokes")
			}
			t0 := time.Now()
			var (
				s      *stokes.Solver
				reused bool
				err    error
			)
			if m.DisableSetupCache {
				s, err = stokes.New(prob, cfg)
			} else {
				s, reused, err = m.stokesCtx.Prepare(prob, cfg)
			}
			m.stage.stokesSetup += time.Since(t0)
			if err != nil {
				buildErr = err
				prepared = nil
				// Fall back to identity so the outer loop can terminate.
				id := krylov.OpFunc{Dim: ncoup, F: func(a, b la.Vec) { b.Copy(a) }}
				return id, krylov.Identity{}
			}
			if reused {
				m.stage.setupReused++
				if tel := m.Telemetry; tel != nil {
					tel.Counter("stokes_setup_reused").Inc()
				}
			}
			m.LastStokes = s
			prepared = s
			if m.UseNewton {
				nel := prob.DA.NElements()
				d6 := make([]float64, 6*fem.NQP*nel)
				fem.StrainRateAtQP(prob, x[:nu], d6, nil)
				nop := fem.NewNewton(fem.NewTensor(prob), d6, facQP)
				return stokes.NewOp(prob, nop, coupling), s.FS
			}
			return s.Op, s.FS
		},
		Method:      "fgmres",
		InnerParams: m.Cfg.EffectiveParams(),
	}
	// The inner hook is always installed so the Krylov stage is timed on
	// every path; the nil-backend case runs SharedBackend, which is the
	// nonlinear package's built-in inner solve verbatim.
	sys.Inner = func(method string, jop krylov.Op, pc krylov.Preconditioner, rhs, delta la.Vec, prm krylov.Params) krylov.Result {
		t0 := time.Now()
		var r krylov.Result
		if m.Backend != nil {
			r = m.Backend.LinearSolve(prepared, method, jop, pc, rhs, delta, prm)
		} else {
			r = SharedBackend{}.LinearSolve(prepared, method, jop, pc, rhs, delta, prm)
		}
		m.stage.stokesKrylov += time.Since(t0)
		return r
	}
	res := nonlinear.Solve(sys, m.X, m.Nonlinear)
	if tel := m.Telemetry; tel != nil {
		tel.Counter("solver_breakdowns").Add(int64(res.Breakdowns))
		tel.Counter("solver_fallbacks").Add(int64(res.Fallbacks))
	}
	if buildErr != nil {
		return res, fmt.Errorf("model: preconditioner setup: %w", buildErr)
	}
	if res.Err != nil {
		return res, fmt.Errorf("model: stokes solve: %w", res.Err)
	}
	return res, nil
}

// minCellSize returns the smallest element edge proxy (corner spacing).
func (m *Model) minCellSize() float64 {
	da := m.Prob.DA
	min := math.Inf(1)
	// Sample the structured spacing from the first node row/column/slab of
	// each direction; for deformed meshes this is a usable proxy.
	for _, d := range [3]struct {
		n1, n2 int
	}{
		{da.NodeID(0, 0, 0), da.NodeID(2, 0, 0)},
		{da.NodeID(0, 0, 0), da.NodeID(0, 2, 0)},
		{da.NodeID(0, 0, 0), da.NodeID(0, 0, 2)},
	} {
		dx := da.Coords[3*d.n2] - da.Coords[3*d.n1]
		dy := da.Coords[3*d.n2+1] - da.Coords[3*d.n1+1]
		dz := da.Coords[3*d.n2+2] - da.Coords[3*d.n1+2]
		h := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if h > 0 && h < min {
			min = h
		}
	}
	return min
}

// StepForward advances the model by one time step: nonlinear Stokes solve
// → CFL time step → plastic strain accumulation → material point
// advection (+ outflow removal) → ALE free surface update → energy
// equation. It appends a StepStats record.
func (m *Model) StepForward() error {
	start := time.Now()
	stepStart := m.Telemetry.Timer("step").Start()
	m.stage = stageTimes{}
	res, err := m.SolveStokes()
	if err != nil {
		return err
	}
	nu := m.Prob.DA.NVelDOF()
	u := m.X[:nu]

	// Time step from the CFL condition.
	cfl := m.CFL
	if cfl <= 0 {
		cfl = 0.25
	}
	vmax := mpm.MaxVelocity(u)
	dt := math.Inf(1)
	if vmax > 0 {
		dt = cfl * m.minCellSize() / vmax
	}
	if m.MaxDt > 0 && dt > m.MaxDt {
		dt = m.MaxDt
	}
	if math.IsInf(dt, 1) {
		dt = m.MaxDt
		if dt <= 0 {
			dt = 1
		}
	}

	// Accumulate plastic strain on yielding points (history variable
	// update of §V-A) using the converged state. Each point writes only
	// its own slot, so the loop runs on the worker pool.
	tPlastic := time.Now()
	par.For(max(1, m.Workers), m.Points.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			st := m.pointState(m.X, i)
			l := &m.Lith[m.Points.Litho[i]]
			if _, yielding := l.EffectiveViscosity(st); yielding {
				m.Points.Plastic[i] += dt * st.StrainRateII
			}
		}
	})
	m.stage.rheology += time.Since(tPlastic)

	// Advect material points; outflow points are removed (§II-D).
	tAdvect := time.Now()
	advected := m.Points.Len()
	removed := 0
	mpm.AdvectRK2(m.Prob, u, dt, m.Points, max(1, m.Workers))
	for i := m.Points.Len() - 1; i >= 0; i-- {
		if m.Points.Elem[i] < 0 {
			m.Points.RemoveSwap(i)
			removed++
		}
	}
	if m.MinPointsPerElement > 0 {
		nper := 2
		mpm.EnsureMinPerElement(m.Prob, m.Points, m.MinPointsPerElement, nper)
	}
	if m.projector != nil {
		m.projector.Invalidate()
	}
	m.stage.advect += time.Since(tAdvect)

	// ALE free surface update; every point must be relocated afterwards
	// because the mesh under it moved. Relocation is two-phase: the
	// location walks run on the worker pool (each point touches only its
	// own slots), then the lost points are removed by a serial descending
	// sweep — the exact removal sequence of the original per-point loop.
	var topoMin, topoMax float64
	relocated := 0
	if m.FreeSurface {
		tALE := time.Now()
		meshUpdateFreeSurface(m, u, dt)
		lost := mpm.LocateAll(m.Prob, m.Points)
		relocated = m.Points.Len() - len(lost)
		for k := len(lost) - 1; k >= 0; k-- {
			m.Points.RemoveSwap(lost[k])
			removed++
		}
		if m.projector != nil {
			m.projector.Invalidate()
		}
		m.stokesCtx.InvalidateGeometry()
		m.stage.ale += time.Since(tALE)
	}
	topoMin, topoMax = surfaceRange(m)

	// Energy equation.
	if m.T != nil && m.Temp != nil {
		tThermal := time.Now()
		if err := m.T.Step(m.Temp, u, dt); err != nil {
			return fmt.Errorf("model: thermal step: %w", err)
		}
		m.stage.thermal += time.Since(tThermal)
	}

	if tel := m.Telemetry; tel != nil {
		tel.Timer("step").Stop(stepStart)
		tel.Counter("steps").Inc()
		tel.Counter("points_advected").Add(int64(advected))
		tel.Counter("points_removed").Add(int64(removed))
		tel.Counter("points_relocated").Add(int64(relocated))
		tel.Gauge("points").Set(float64(m.Points.Len()))
		tel.Counter("krylov_its").Add(int64(res.KrylovIts))
		tel.Counter("newton_its").Add(int64(res.Iterations))
		stage := tel.Child("step")
		stage.Timer("rheology").Observe(m.stage.rheology)
		stage.Timer("mpm_project").Observe(m.stage.project)
		stage.Timer("stokes_setup").Observe(m.stage.stokesSetup)
		stage.Timer("stokes_krylov").Observe(m.stage.stokesKrylov)
		stage.Timer("advect").Observe(m.stage.advect)
		stage.Timer("ale").Observe(m.stage.ale)
		stage.Timer("thermal").Observe(m.stage.thermal)
	}

	m.Time += dt
	m.StepNum++
	st := StepStats{
		Step: m.StepNum, Time: m.Time, Dt: dt,
		NewtonIts: res.Iterations, KrylovIts: res.KrylovIts,
		FNorm0: res.FNorm0, FNorm: res.FNorm, Converged: res.Converged,
		SolveTime:  time.Since(start),
		PointCount: m.Points.Len(),
		TopoMin:    topoMin, TopoMax: topoMax,
		Backend:           "shared",
		RheologyTime:      m.stage.rheology,
		ProjectTime:       m.stage.project,
		StokesSetupTime:   m.stage.stokesSetup,
		StokesKrylovTime:  m.stage.stokesKrylov,
		AdvectTime:        m.stage.advect,
		ALETime:           m.stage.ale,
		ThermalTime:       m.stage.thermal,
		StokesSetupReused: m.stage.setupReused,
	}
	if m.Backend != nil {
		st.Backend = m.Backend.Name()
		if rep, ok := m.Backend.(CommStatsReporter); ok {
			ranks := rep.TakeCommStats()
			st.Ranks = len(ranks)
			for _, r := range ranks {
				st.HaloMsgs += r.HaloMsgs
				st.HaloBytes += r.HaloBytes
				st.AllReduces += r.AllReduces
			}
			if tel := m.Telemetry; tel != nil {
				tel.Counter("halo_msgs").Add(st.HaloMsgs)
				tel.Counter("halo_bytes").Add(st.HaloBytes)
				tel.Counter("allreduces").Add(st.AllReduces)
			}
		}
	}
	m.Stats = append(m.Stats, st)
	return nil
}
