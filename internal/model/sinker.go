package model

import (
	"math"
	"math/rand"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/mpm"
	"ptatin3d/internal/nonlinear"
	"ptatin3d/internal/rheology"
	"ptatin3d/internal/stokes"
)

// SinkerOptions parametrizes the sedimentation benchmark of paper §IV-A:
// Nc randomly placed, non-intersecting spheres of radius Rc in the unit
// cube, viscosity contrast Δη between ambient fluid and spheres, slip
// walls, free surface at z = 1, gravity (0,0,−9.8).
type SinkerOptions struct {
	M        int     // elements per direction
	Nc       int     // number of spheres (paper: 8)
	Rc       float64 // sphere radius (paper: 0.1)
	DeltaEta float64 // viscosity contrast Δη
	PPE      int     // material points per element per direction (default 3)
	Seed     int64   // sphere placement seed (deterministic by default)
	Workers  int
}

// DefaultSinkerOptions returns the paper's configuration at a reduced
// default resolution.
func DefaultSinkerOptions() SinkerOptions {
	return SinkerOptions{M: 8, Nc: 8, Rc: 0.1, DeltaEta: 100, PPE: 3, Seed: 20140704, Workers: 1}
}

// SinkerSpheres returns the deterministic sphere centres for the options.
func SinkerSpheres(o SinkerOptions) [][3]float64 {
	rng := rand.New(rand.NewSource(o.Seed))
	var centers [][3]float64
	guard := 0
	for len(centers) < o.Nc && guard < 100000 {
		guard++
		c := [3]float64{
			o.Rc + rng.Float64()*(1-2*o.Rc),
			o.Rc + rng.Float64()*(1-2*o.Rc),
			o.Rc + rng.Float64()*(1-2*o.Rc),
		}
		ok := true
		for _, p := range centers {
			d := math.Sqrt((c[0]-p[0])*(c[0]-p[0]) + (c[1]-p[1])*(c[1]-p[1]) + (c[2]-p[2])*(c[2]-p[2]))
			if d < 2*o.Rc {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, c)
		}
	}
	return centers
}

// NewSinker builds the sedimentation model: lithology 0 is the ambient
// fluid (η = 1/Δη, ρ = 1), lithology 1 the spheres (η = 1, ρ = 1.2).
func NewSinker(o SinkerOptions) *Model {
	if o.M <= 0 {
		o.M = 8
	}
	if o.PPE <= 0 {
		o.PPE = 3
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	centers := SinkerSpheres(o)
	inside := func(x, y, z float64) bool {
		for _, c := range centers {
			d2 := (x-c[0])*(x-c[0]) + (y-c[1])*(y-c[1]) + (z-c[2])*(z-c[2])
			if d2 < o.Rc*o.Rc {
				return true
			}
		}
		return false
	}

	da := mesh.New(o.M, o.M, o.M, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	prob := fem.NewProblem(da, bc)
	prob.Workers = o.Workers
	prob.Gravity = [3]float64{0, 0, -9.8}

	pts := mpm.NewLattice(prob, o.PPE, func(x, y, z float64) int32 {
		if inside(x, y, z) {
			return 1
		}
		return 0
	})

	lith := rheology.Table{
		{Name: "ambient", Type: rheology.Constant, Eta0: 1 / o.DeltaEta, Rho0: 1},
		{Name: "sphere", Type: rheology.Constant, Eta0: 1, Rho0: 1.2},
	}

	cfg := stokes.DefaultConfig()
	cfg.Workers = o.Workers
	if !mesh.New(o.M, o.M, o.M, 0, 1, 0, 1, 0, 1).CanCoarsen() || o.M < 8 {
		cfg.Levels = 2
	}

	nl := nonlinear.DefaultOptions()
	// The sinker rheology is linear: one Picard step with a tight inner
	// solve at the paper's tolerance solves it, so adaptive
	// (Eisenstat–Walker) forcing would only slow the first step down.
	// Keep a small iteration budget for the projection-induced
	// coefficient feedback.
	nl.EisenstatWalker = false
	nl.MaxIt = 3
	nl.RTol = 1e-5

	m := &Model{
		Prob: prob, Points: pts, Lith: lith,
		Cfg: cfg, VerticalAxis: 2, FreeSurface: true,
		CFL: 0.25, Workers: o.Workers,
		Nonlinear: nl,
	}
	m.UpdateCoefficients(make([]float64, da.NVelDOF()+da.NPresDOF()), false)
	return m
}
