package model

import (
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

// meshUpdateFreeSurface wraps the ALE column remeshing for the model's
// vertical axis.
func meshUpdateFreeSurface(m *Model, u la.Vec, dt float64) {
	mesh.UpdateFreeSurface(m.Prob.DA, u, dt, m.VerticalAxis)
}

// surfaceRange reports the current topography extrema along the vertical
// axis.
func surfaceRange(m *Model) (min, max float64) {
	return mesh.SurfaceRange(m.Prob.DA, m.VerticalAxis)
}

// Velocity returns the velocity part of the coupled state.
func (m *Model) Velocity() la.Vec {
	return m.X[:m.Prob.DA.NVelDOF()]
}

// Pressure returns the pressure part of the coupled state.
func (m *Model) Pressure() la.Vec {
	return m.X[m.Prob.DA.NVelDOF():]
}
