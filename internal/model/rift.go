package model

import (
	"math"
	"math/rand"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/mpm"
	"ptatin3d/internal/nonlinear"
	"ptatin3d/internal/rheology"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/thermal"
)

// RiftOptions parametrizes the continental rifting model of paper §V.
//
// Nondimensionalization (documented in DESIGN.md — the paper quotes only
// "the non-dimensional scaling we adopted"): length unit 100 km, velocity
// unit 1 cm/yr, viscosity unit 10²² Pa·s, temperature unit 1300 °C. The
// domain is then 12 × 2 × 6 (x: 1200 km, y: 200 km vertical, z: 600 km)
// with the mantle in y ∈ [0, 1.6), weak (lower) crust [1.6, 1.8) and
// strong (upper) crust [1.8, 2.0]. Buoyancy: ρ′g′ = ρ·g·L²/(η₀·V₀) ≈ 102
// per unit scaled density ρ/3300.
type RiftOptions struct {
	// Mx, My, Mz are element counts (paper finest: 256×32×128; default
	// laptop scale 32×8×16).
	Mx, My, Mz int
	// ExtensionVel is the full-face x-extension in cm/yr per side
	// (paper: ±1, i.e. 2 cm/yr total).
	ExtensionVel float64
	// ObliqueShortening applies the paper's boundary condition (ii): a
	// small u_z shortening (in cm/yr, paper: 0.2 total → 0.1 per side)
	// on the z faces.
	ObliqueShortening float64
	// WeakCrustEta is the (nondimensional) lower-crust viscosity; the
	// paper contrasts weak vs. strong lower crust (margin style).
	WeakCrustEta float64
	PPE          int
	Seed         int64
	Workers      int
}

// DefaultRiftOptions returns the reduced-scale rift configuration.
func DefaultRiftOptions() RiftOptions {
	return RiftOptions{
		Mx: 32, My: 8, Mz: 16,
		ExtensionVel: 1.0, ObliqueShortening: 0,
		WeakCrustEta: 0.05,
		PPE:          2, Seed: 7, Workers: 1,
	}
}

// Rift lithology indices.
const (
	LithMantle = iota
	LithWeakCrust
	LithStrongCrust
)

// NewRift builds the continental rifting model.
func NewRift(o RiftOptions) *Model {
	if o.Mx <= 0 || o.My <= 0 || o.Mz <= 0 {
		d := DefaultRiftOptions()
		o.Mx, o.My, o.Mz = d.Mx, d.My, d.Mz
	}
	if o.PPE <= 0 {
		o.PPE = 2
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.WeakCrustEta <= 0 {
		o.WeakCrustEta = 0.05
	}
	const (
		lx, ly, lz = 12.0, 2.0, 6.0
		buoyancy   = 102.0 // ρ′g′ per unit scaled density (see RiftOptions)
	)
	da := mesh.New(o.Mx, o.My, o.Mz, 0, lx, 0, ly, 0, lz)
	bc := mesh.NewBC(da)
	// Extension on the x faces; free slip bottom and z faces; free
	// surface on top (y max).
	bc.SetFaceComponent(da, mesh.XMin, 0, -o.ExtensionVel)
	bc.SetFaceComponent(da, mesh.XMax, 0, +o.ExtensionVel)
	bc.SetFaceComponent(da, mesh.YMin, 1, 0)
	if o.ObliqueShortening != 0 {
		bc.SetFaceComponent(da, mesh.ZMin, 2, +o.ObliqueShortening)
		bc.SetFaceComponent(da, mesh.ZMax, 2, 0)
	} else {
		bc.FreeSlipBox(da, mesh.ZMin, mesh.ZMax)
	}
	prob := fem.NewProblem(da, bc)
	prob.Workers = o.Workers
	prob.Gravity = [3]float64{0, -buoyancy, 0}

	// Lithology layering with the damage seed: a narrow heterogeneous
	// zone in the centre of the domain along the back (z-max) face
	// (paper Fig. 3) realized as randomized initial plastic strain.
	classify := func(x, y, z float64) int32 {
		switch {
		case y < 1.6:
			return LithMantle
		case y < 1.8:
			return LithWeakCrust
		default:
			return LithStrongCrust
		}
	}
	pts := mpm.NewLattice(prob, o.PPE, classify)
	rng := rand.New(rand.NewSource(o.Seed))
	for i := 0; i < pts.Len(); i++ {
		x, y, z := pts.X[i], pts.Y[i], pts.Z[i]
		inSeed := math.Abs(x-lx/2) < 0.5 && z > lz-2.0 && y > 1.2
		if inSeed {
			pts.Plastic[i] = rng.Float64() // random pre-damage
		}
	}

	// Lithologies (nondimensional; viscosity unit 10²² Pa·s, T ∈ [0,1]).
	// Mantle: temperature-dependent creep, Frank–Kamenetskii contrast 10³
	// from surface to base; crusts carry Drucker–Prager limiters with
	// cohesion softening (cohesion unit: η₀V₀/L₀ ≈ 31.7 MPa ⇒ C≈20 MPa →
	// 0.63 nondimensional).
	lith := rheology.Table{
		LithMantle: {
			Name: "mantle", Type: rheology.FrankKamenetskii,
			Eta0: 10, N: 1, E: math.Log(1000),
			EtaMin: 1e-2, EtaMax: 100,
			Rho0: 1.0, Alpha: 0.039, TRef: 1,
		},
		LithWeakCrust: {
			Name: "weak crust", Type: rheology.Constant,
			Eta0:    o.WeakCrustEta,
			Plastic: true, Cohesion: 0.63, CohesionSoft: 0.13, SoftStrain: 1,
			FrictionPhi: math.Pi / 6,
			EtaMin:      1e-2, EtaMax: 100,
			Rho0: 2800.0 / 3300.0, Alpha: 0.039, TRef: 1,
		},
		LithStrongCrust: {
			Name: "strong crust", Type: rheology.FrankKamenetskii,
			Eta0: 100, N: 3, E: math.Log(1e4),
			Plastic: true, Cohesion: 0.63, CohesionSoft: 0.13, SoftStrain: 1,
			FrictionPhi: math.Pi / 6,
			EtaMin:      1e-2, EtaMax: 100,
			Rho0: 2800.0 / 3300.0, Alpha: 0.039, TRef: 1,
		},
	}

	// Stokes configuration of §V-A: V(3,3) cycles, three levels, CG+ASM
	// coarse solver (the sub-2k-core regime of the paper).
	cfg := stokes.DefaultConfig()
	cfg.Workers = o.Workers
	cfg.SmoothSteps = 3
	cfg.CoarseSolver = "asmcg"
	cfg.Levels = geomLevels(o.Mx, o.My, o.Mz)
	cfg.Params.MaxIt = 150
	cfg.Params.Restart = 80

	// Nonlinear controls of §V-A: relative tolerance 10⁻², at most five
	// Newton iterations per step.
	nl := nonlinear.DefaultOptions()
	nl.RTol = 1e-2
	nl.MaxIt = 5

	// Temperature: conductive profile, T = 1 at the base, 0 at the
	// surface; κ′ = κ/(L₀V₀) ≈ 0.0315.
	temp := make([]float64, da.NVertices())
	for v := range temp {
		_, j, _ := da.VertexIJK(v)
		y := ly * float64(j) / float64(da.My)
		temp[v] = 1 - y/ly
	}
	tsolver := thermal.New(prob, 0.0315)
	tsolver.SetFaceTemperature(mesh.YMin, 1)
	tsolver.SetFaceTemperature(mesh.YMax, 0)

	// The rift defaults to Picard linearizations for both the matvec and
	// the preconditioner. The true-Newton operator (paper §III-A) is
	// implemented and FD-verified at the discretization level (UseNewton
	// flips it on), but with material-point-projected coefficients the
	// assembled Jacobian is not the exact derivative of the projected
	// residual, and at the reduced resolutions of this reproduction the
	// inconsistency costs more than the quadratic convergence gains —
	// Picard reaches the paper's 10⁻² step tolerance in 1–5 iterations.
	nl.EWEta0 = 0.1
	m := &Model{
		Prob: prob, Points: pts, Lith: lith,
		Cfg: cfg, VerticalAxis: 1, FreeSurface: true,
		CFL: 0.25, MaxDt: 0.01, Workers: o.Workers,
		MinPointsPerElement: 2,
		UseNewton:           false,
		Nonlinear:           nl,
		T:                   tsolver, Temp: temp,
	}
	m.UpdateCoefficients(make([]float64, da.NVelDOF()+da.NPresDOF()), false)
	return m
}

// geomLevels picks the deepest usable geometric hierarchy (max 3, as in
// the paper's rift configuration).
func geomLevels(mx, my, mz int) int {
	n := 1
	for mx%2 == 0 && my%2 == 0 && mz%2 == 0 && mx >= 4 && my >= 4 && mz >= 4 && n < 3 {
		mx, my, mz = mx/2, my/2, mz/2
		n++
	}
	return n
}
