package model

import (
	"bufio"
	"fmt"
	"os"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mpm"
)

// WriteVTK writes the mesh, velocity, pressure (element constant mode)
// and the quadrature-averaged viscosity/density to a legacy-format VTK
// structured-grid file — loadable in ParaView for the Figure 1/Figure 3
// visualizations.
func (m *Model) WriteVTK(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()

	da := m.Prob.DA
	nn := da.NNodes()
	fmt.Fprintln(w, "# vtk DataFile Version 3.0")
	fmt.Fprintln(w, "ptatin3d output")
	fmt.Fprintln(w, "ASCII")
	fmt.Fprintln(w, "DATASET STRUCTURED_GRID")
	fmt.Fprintf(w, "DIMENSIONS %d %d %d\n", da.NPx, da.NPy, da.NPz)
	fmt.Fprintf(w, "POINTS %d double\n", nn)
	for n := 0; n < nn; n++ {
		fmt.Fprintf(w, "%g %g %g\n", da.Coords[3*n], da.Coords[3*n+1], da.Coords[3*n+2])
	}
	fmt.Fprintf(w, "POINT_DATA %d\n", nn)
	if len(m.X) >= da.NVelDOF() {
		fmt.Fprintln(w, "VECTORS velocity double")
		u := m.Velocity()
		for n := 0; n < nn; n++ {
			fmt.Fprintf(w, "%g %g %g\n", u[3*n], u[3*n+1], u[3*n+2])
		}
	}
	fmt.Fprintf(w, "CELL_DATA %d\n", (da.NPx-1)*(da.NPy-1)*(da.NPz-1))
	writeCellScalar(w, m, "pressure", func(e int) float64 {
		if len(m.X) > da.NVelDOF() {
			return m.Pressure()[4*e]
		}
		return 0
	})
	writeCellScalar(w, m, "viscosity", func(e int) float64 {
		var s float64
		for q := 0; q < fem.NQP; q++ {
			s += m.Prob.Eta[fem.NQP*e+q]
		}
		return s / fem.NQP
	})
	writeCellScalar(w, m, "density", func(e int) float64 {
		var s float64
		for q := 0; q < fem.NQP; q++ {
			s += m.Prob.Rho[fem.NQP*e+q]
		}
		return s / fem.NQP
	})
	return w.Flush()
}

func writeCellScalar(w *bufio.Writer, m *Model, name string, f func(e int) float64) {
	// Cell data on the VTK structured grid is defined per node-grid cell;
	// map each node-grid cell to its containing Q2 element (2× finer).
	da := m.Prob.DA
	fmt.Fprintf(w, "SCALARS %s double 1\nLOOKUP_TABLE default\n", name)
	for ck := 0; ck < da.NPz-1; ck++ {
		for cj := 0; cj < da.NPy-1; cj++ {
			for ci := 0; ci < da.NPx-1; ci++ {
				e := da.ElemID(ci/2, cj/2, ck/2)
				fmt.Fprintf(w, "%g\n", f(e))
			}
		}
	}
}

// WritePointsVTK writes the material points with lithology and plastic
// strain as VTK POLYDATA.
func (m *Model) WritePointsVTK(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	pts := m.Points
	n := pts.Len()
	fmt.Fprintln(w, "# vtk DataFile Version 3.0")
	fmt.Fprintln(w, "ptatin3d material points")
	fmt.Fprintln(w, "ASCII")
	fmt.Fprintln(w, "DATASET POLYDATA")
	fmt.Fprintf(w, "POINTS %d double\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%g %g %g\n", pts.X[i], pts.Y[i], pts.Z[i])
	}
	fmt.Fprintf(w, "POINT_DATA %d\n", n)
	fmt.Fprintln(w, "SCALARS lithology int 1\nLOOKUP_TABLE default")
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d\n", pts.Litho[i])
	}
	fmt.Fprintln(w, "SCALARS plastic_strain double 1\nLOOKUP_TABLE default")
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%g\n", pts.Plastic[i])
	}
	return w.Flush()
}

// Streamline integrates the steady velocity field from the given seed by
// RK4 with step h, up to maxSteps, returning the polyline. Integration
// stops when the trajectory leaves the domain. This generates the
// Figure-1 streamlines.
func (m *Model) Streamline(x0, y0, z0, h float64, maxSteps int) [][3]float64 {
	u := m.Velocity()
	var line [][3]float64
	x, y, z := x0, y0, z0
	eGuess := -1
	velAt := func(px, py, pz float64) (vx, vy, vz float64, ok bool) {
		e, xi, et, ze, found := mpm.Locate(m.Prob, px, py, pz, eGuess)
		if !found {
			return 0, 0, 0, false
		}
		eGuess = e
		var nb [27]float64
		fem.Q2Eval(xi, et, ze, &nb)
		em := m.Prob.Emap[27*e : 27*e+27]
		for n := 0; n < 27; n++ {
			d := 3 * int(em[n])
			vx += nb[n] * u[d]
			vy += nb[n] * u[d+1]
			vz += nb[n] * u[d+2]
		}
		return vx, vy, vz, true
	}
	for s := 0; s < maxSteps; s++ {
		line = append(line, [3]float64{x, y, z})
		k1x, k1y, k1z, ok := velAt(x, y, z)
		if !ok {
			break
		}
		k2x, k2y, k2z, ok := velAt(x+0.5*h*k1x, y+0.5*h*k1y, z+0.5*h*k1z)
		if !ok {
			break
		}
		k3x, k3y, k3z, ok := velAt(x+0.5*h*k2x, y+0.5*h*k2y, z+0.5*h*k2z)
		if !ok {
			break
		}
		k4x, k4y, k4z, ok := velAt(x+h*k3x, y+h*k3y, z+h*k3z)
		if !ok {
			break
		}
		x += h / 6 * (k1x + 2*k2x + 2*k3x + k4x)
		y += h / 6 * (k1y + 2*k2y + 2*k3y + k4y)
		z += h / 6 * (k1z + 2*k2z + 2*k3z + k4z)
	}
	return line
}

// WriteStreamlinesVTK traces one streamline per seed and writes them as
// VTK POLYDATA lines.
func (m *Model) WriteStreamlinesVTK(path string, seeds [][3]float64, h float64, maxSteps int) error {
	var lines [][][3]float64
	total := 0
	for _, s := range seeds {
		l := m.Streamline(s[0], s[1], s[2], h, maxSteps)
		if len(l) > 1 {
			lines = append(lines, l)
			total += len(l)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	fmt.Fprintln(w, "# vtk DataFile Version 3.0")
	fmt.Fprintln(w, "ptatin3d streamlines")
	fmt.Fprintln(w, "ASCII")
	fmt.Fprintln(w, "DATASET POLYDATA")
	fmt.Fprintf(w, "POINTS %d double\n", total)
	for _, l := range lines {
		for _, p := range l {
			fmt.Fprintf(w, "%g %g %g\n", p[0], p[1], p[2])
		}
	}
	size := 0
	for _, l := range lines {
		size += 1 + len(l)
	}
	fmt.Fprintf(w, "LINES %d %d\n", len(lines), size)
	off := 0
	for _, l := range lines {
		fmt.Fprintf(w, "%d", len(l))
		for i := range l {
			fmt.Fprintf(w, " %d", off+i)
		}
		fmt.Fprintln(w)
		off += len(l)
	}
	return w.Flush()
}

// KineticEnergy returns ½∫|u|² as a scalar diagnostic of flow vigour.
func (m *Model) KineticEnergy() float64 {
	u := m.Velocity()
	return 0.5 * la.Vec(u).Dot(la.Vec(u))
}
