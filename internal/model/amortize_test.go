package model_test

import (
	"io"
	"testing"

	"ptatin3d/internal/driver"
	"ptatin3d/internal/model"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/stokes"
)

func compileSmall(t *testing.T, name string, workers int) *model.Model {
	t.Helper()
	spec, err := scenario.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	spec.Resolution = spec.SmallResolution()
	m, err := scenario.Compile(spec, workers)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return m
}

func runSteps(t *testing.T, m *model.Model, steps int) {
	t.Helper()
	if err := driver.Run(m, driver.Config{Steps: steps, Out: io.Discard}); err != nil {
		t.Fatal(err)
	}
}

// TestCachedSetupMatchesColdBuild is the tentpole's bit-identity gate:
// running the time loop with the amortized solver setup (refresh the
// cached stack on every relinearization) must reproduce the cold-build
// trajectory bit for bit — same state vector, same Newton/Krylov counts,
// same residual norms — over multiple steps of both model problems on
// both backends, including the ALE geometry invalidation of the rift's
// free surface.
func TestCachedSetupMatchesColdBuild(t *testing.T) {
	const steps = 3
	for _, name := range []string{"sinker", "rift"} {
		for _, mode := range []string{"shared", "distributed"} {
			t.Run(name+"/"+mode, func(t *testing.T) {
				cold := compileSmall(t, name, 2)
				warm := compileSmall(t, name, 2)
				cold.DisableSetupCache = true
				if mode == "distributed" {
					cold.Backend = model.NewDistributedBackend(2, 1, 1, stokes.DistOptions{})
					warm.Backend = model.NewDistributedBackend(2, 1, 1, stokes.DistOptions{})
				}
				runSteps(t, cold, steps)
				runSteps(t, warm, steps)
				if len(cold.X) != len(warm.X) {
					t.Fatalf("state length %d vs %d", len(cold.X), len(warm.X))
				}
				for i := range cold.X {
					if cold.X[i] != warm.X[i] {
						t.Fatalf("state[%d]: cold %x vs cached %x", i, cold.X[i], warm.X[i])
					}
				}
				var reused int64
				for s := 0; s < steps; s++ {
					c, w := cold.Stats[s], warm.Stats[s]
					if c.NewtonIts != w.NewtonIts || c.KrylovIts != w.KrylovIts {
						t.Fatalf("step %d: iterations (%d,%d) cold vs (%d,%d) cached",
							s+1, c.NewtonIts, c.KrylovIts, w.NewtonIts, w.KrylovIts)
					}
					if c.FNorm0 != w.FNorm0 || c.FNorm != w.FNorm {
						t.Fatalf("step %d: residuals (%x,%x) cold vs (%x,%x) cached",
							s+1, c.FNorm0, c.FNorm, w.FNorm0, w.FNorm)
					}
					if c.Dt != w.Dt || c.PointCount != w.PointCount {
						t.Fatalf("step %d: dt/points (%x,%d) cold vs (%x,%d) cached",
							s+1, c.Dt, c.PointCount, w.Dt, w.PointCount)
					}
					if c.StokesSetupReused != 0 {
						t.Fatalf("step %d: cold path reports %d reuses", s+1, c.StokesSetupReused)
					}
					reused += w.StokesSetupReused
				}
				if reused == 0 {
					t.Fatal("cached path never reused the solver setup")
				}
			})
		}
	}
}

// TestKrylovWarmStart pins that successive Stokes solves continue from
// the previous solution in place: solving again without perturbing the
// material state starts at the converged residual (no re-zeroing of the
// state) and does not reallocate m.X.
func TestKrylovWarmStart(t *testing.T) {
	m := compileSmall(t, "sinker", 2)
	res1, err := m.SolveStokes()
	if err != nil {
		t.Fatal(err)
	}
	p0 := &m.X[0]
	res2, err := m.SolveStokes()
	if err != nil {
		t.Fatal(err)
	}
	if &m.X[0] != p0 {
		t.Fatal("m.X was reallocated between solves; warm start lost")
	}
	if res2.FNorm0 != res1.FNorm {
		t.Fatalf("second solve started at |F|=%x, want previous final %x", res2.FNorm0, res1.FNorm)
	}
	if res2.KrylovIts > res1.KrylovIts {
		t.Fatalf("warm-started solve used more Krylov iterations (%d) than the first (%d)",
			res2.KrylovIts, res1.KrylovIts)
	}
}
