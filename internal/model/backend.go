package model

import (
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/stokes"
)

// StokesBackend executes the inner linear solves of the nonlinear Stokes
// iteration. The nonlinear loop itself (residual evaluation, Eisenstat–
// Walker forcing, line search) always runs serially on the full state;
// the backend decides how each correction system J·δ = rhs is solved —
// in shared memory on this process, or collectively over a simulated
// rank world. Model.Backend == nil selects the built-in shared path,
// bit-identical to SharedBackend.
type StokesBackend interface {
	// Name identifies the backend in telemetry and StepStats
	// ("shared", "distributed").
	Name() string
	// LinearSolve solves J·δ = rhs to the tolerances in prm, writing the
	// correction into delta (already zeroed). s is the preconditioner
	// stack built by the current relinearization; it is nil when the
	// preconditioner setup failed, in which case the backend must fall
	// back to the serial jop/pc path so the outer loop can terminate.
	LinearSolve(s *stokes.Solver, method string, jop krylov.Op, pc krylov.Preconditioner, rhs, delta la.Vec, prm krylov.Params) krylov.Result
}

// CommStatsReporter is implemented by backends that accumulate per-rank
// communication statistics; StepForward drains them into the step's
// StepStats record.
type CommStatsReporter interface {
	// TakeCommStats returns the per-rank communication volume
	// accumulated since the last call, and resets the accumulator.
	TakeCommStats() []stokes.RankStats
}

// SharedBackend is the in-process backend: every inner solve runs the
// serial Krylov method on the operator/preconditioner pair of the
// current relinearization. It reproduces the nonlinear package's
// built-in inner solve exactly (same calls, same trajectory).
type SharedBackend struct{}

// Name implements StokesBackend.
func (SharedBackend) Name() string { return "shared" }

// LinearSolve implements StokesBackend.
func (SharedBackend) LinearSolve(_ *stokes.Solver, method string, jop krylov.Op, pc krylov.Preconditioner, rhs, delta la.Vec, prm krylov.Params) krylov.Result {
	if method == "gcr" {
		return krylov.GCR(jop, pc, rhs, delta, prm, nil)
	}
	return krylov.FGMRES(jop, pc, rhs, delta, prm)
}

// DistributedBackend routes every inner solve through
// stokes.Solver.LinearSolveDistributed on a Px×Py×Pz simulated rank
// world: coupled halo operator, distributed V-cycle, deterministic
// collectives. The per-level decompositions must nest (Px, Py, Pz
// divide the element counts on every geometric level). The backend is
// Picard-only: the distributed coupled operator applies the Picard
// tensor linearization, so models with UseNewton are rejected by
// SolveStokes before the iteration starts.
type DistributedBackend struct {
	Px, Py, Pz int
	// Opts carries the latency-tolerance options of PR 6 (pipelined
	// single-reduce Krylov, coarse agglomeration, fabric model).
	Opts stokes.DistOptions

	stats []stokes.RankStats
}

// NewDistributedBackend returns a backend over a px×py×pz world.
func NewDistributedBackend(px, py, pz int, opts stokes.DistOptions) *DistributedBackend {
	return &DistributedBackend{Px: max(1, px), Py: max(1, py), Pz: max(1, pz), Opts: opts}
}

// Name implements StokesBackend.
func (b *DistributedBackend) Name() string { return "distributed" }

// Ranks returns the world size.
func (b *DistributedBackend) Ranks() int { return b.Px * b.Py * b.Pz }

// PicardOnly marks the backend as unable to apply the Newton
// linearization (the distributed matvec is the Picard tensor operator).
func (b *DistributedBackend) PicardOnly() bool { return true }

// LinearSolve implements StokesBackend.
func (b *DistributedBackend) LinearSolve(s *stokes.Solver, method string, jop krylov.Op, pc krylov.Preconditioner, rhs, delta la.Vec, prm krylov.Params) krylov.Result {
	if s == nil {
		// Preconditioner setup failed upstream: run the serial fallback
		// pair so the outer loop can observe the failure and stop.
		return SharedBackend{}.LinearSolve(nil, method, jop, pc, rhs, delta, prm)
	}
	res, stats, err := s.LinearSolveDistributed(method, rhs, delta, prm, b.Px, b.Py, b.Pz, b.Opts)
	if err != nil && res.Err == nil {
		res.Err = err
	}
	if len(b.stats) != len(stats) {
		b.stats = make([]stokes.RankStats, len(stats))
		for i := range b.stats {
			b.stats[i].Rank = i
		}
	}
	for i := range stats {
		b.stats[i].Add(stats[i])
	}
	return res
}

// TakeCommStats implements CommStatsReporter.
func (b *DistributedBackend) TakeCommStats() []stokes.RankStats {
	out := b.stats
	b.stats = nil
	return out
}
