// Package comm provides the simulated distributed-memory substrate of
// this reproduction (see DESIGN.md): an SPMD "world" of rank goroutines
// with channel-based point-to-point messaging, barriers and reductions,
// plus the Cartesian decomposition of the structured mesh among ranks
// (paper §II-D). The original pTatin3D runs one MPI rank per core; here
// ranks are goroutines in one address space, which preserves the
// communication structure (neighbour exchange, Ls/Lr material-point
// migration lists, collective reductions) at laptop scale.
package comm

import (
	"fmt"
	"sync"
)

// World is a fixed-size group of SPMD ranks.
type World struct {
	size int
	// mail[to][from] carries messages from rank `from` to rank `to`.
	mail [][]chan interface{}

	// fault, when non-nil, injects failures into the reliable exchange
	// paths; policy bounds their retry/timeout behaviour.
	fault  *FaultPlan
	policy RetryPolicy

	// fabric, when non-nil, prices every simulated interconnect
	// operation (halo message, allreduce, coarse gather) in modeled
	// nanoseconds, accumulated into fabric_* telemetry counters by the
	// Dist collectives. Pure accounting: no sleeps are injected, so
	// runs stay deterministic and fast while the modeled cost grows
	// with rank count the way a real fabric's would.
	fabric FabricModel

	bmu    sync.Mutex
	bcond  *sync.Cond
	bcount int
	bphase int

	rmu    sync.Mutex
	rcond  *sync.Cond
	rcount int
	rphase int
	racc   float64
	rout   float64
}

// NewWorld creates a world of n ranks.
func NewWorld(n int) *World {
	if n < 1 {
		panic("comm: world size must be >= 1")
	}
	w := &World{size: n}
	w.mail = make([][]chan interface{}, n)
	for to := 0; to < n; to++ {
		w.mail[to] = make([]chan interface{}, n)
		for from := 0; from < n; from++ {
			w.mail[to][from] = make(chan interface{}, 64)
		}
	}
	w.bcond = sync.NewCond(&w.bmu)
	w.rcond = sync.NewCond(&w.rmu)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetFaultPlan installs a fault injector on the reliable exchange paths.
// Must be called before Run; pass nil to disable injection.
func (w *World) SetFaultPlan(fp *FaultPlan) {
	w.fault = fp
	if fp != nil {
		fp.attach(w.size)
	}
}

// FaultPlan returns the installed fault injector (nil when disabled).
func (w *World) FaultPlan() *FaultPlan { return w.fault }

// SetRetryPolicy sets the default retry policy used by exchange callers
// that consult Rank.Policy. The zero policy means DefaultRetryPolicy.
func (w *World) SetRetryPolicy(p RetryPolicy) { w.policy = p }

// FabricModel prices simulated interconnect operations in nanoseconds.
// perfmodel.Fabric provides the standard α–β (latency/bandwidth)
// implementation.
type FabricModel interface {
	// MsgNs returns the modeled cost of one point-to-point message of
	// the given payload size.
	MsgNs(bytes int) int64
	// AllReduceNs returns the modeled cost of one allreduce of width
	// float64 values over the given rank count.
	AllReduceNs(ranks, width int) int64
}

// SetFabric installs an interconnect cost model consulted by the Dist
// collectives. Must be called before Run; pass nil to disable.
func (w *World) SetFabric(f FabricModel) { w.fabric = f }

// Fabric returns the installed interconnect cost model (nil = off).
func (w *World) Fabric() FabricModel { return w.fabric }

// Run executes body as an SPMD region: one goroutine per rank, returning
// when all ranks have finished.
func (w *World) Run(body func(r *Rank)) {
	var wg sync.WaitGroup
	for id := 0; id < w.size; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(&Rank{ID: id, W: w})
		}(id)
	}
	wg.Wait()
}

// Rank is one member of a World, passed to the SPMD body.
type Rank struct {
	ID int
	W  *World

	// Reliable-exchange state (see reliable.go): the per-rank exchange
	// sequence number, early-arrival stash, and retransmission history.
	// All ranks must issue reliable exchanges in the same collective
	// order for sequence numbers to align.
	seq   int64
	stash map[int]map[int64]envelope
	hist  map[int64]map[int]interface{}

	// oob queues non-protocol messages (bare collective payloads such as
	// AllReduce partials) that the reliable-exchange receive loop pulled
	// out of the mailbox while draining envelopes: a faster neighbour may
	// finish its exchange and move on to a collective while this rank is
	// still retrying. Recv returns queued messages before reading the
	// mailbox, preserving per-source FIFO order.
	oob map[int][]interface{}
}

// oobPut queues a non-protocol message for a later Recv.
func (r *Rank) oobPut(from int, v interface{}) {
	if r.oob == nil {
		r.oob = map[int][]interface{}{}
	}
	r.oob[from] = append(r.oob[from], v)
}

// Policy returns the world's retry policy (DefaultRetryPolicy if unset).
func (r *Rank) Policy() RetryPolicy {
	if r.W.policy == (RetryPolicy{}) {
		return DefaultRetryPolicy()
	}
	return r.W.policy
}

// Send posts v to rank `to` (buffered, non-blocking up to the buffer).
func (r *Rank) Send(to int, v interface{}) {
	if to < 0 || to >= r.W.size {
		panic(fmt.Sprintf("comm: send to invalid rank %d", to))
	}
	r.W.mail[to][r.ID] <- v
}

// Recv blocks until a message from rank `from` arrives.
func (r *Rank) Recv(from int) interface{} {
	if q := r.oob[from]; len(q) > 0 {
		v := q[0]
		r.oob[from] = q[1:]
		return v
	}
	return <-r.W.mail[r.ID][from]
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() {
	w := r.W
	w.bmu.Lock()
	phase := w.bphase
	w.bcount++
	if w.bcount == w.size {
		w.bcount = 0
		w.bphase++
		w.bcond.Broadcast()
	} else {
		for phase == w.bphase {
			w.bcond.Wait()
		}
	}
	w.bmu.Unlock()
}

// AllReduceSum returns the sum of x over all ranks (on every rank).
func (r *Rank) AllReduceSum(x float64) float64 {
	w := r.W
	w.rmu.Lock()
	phase := w.rphase
	w.racc += x
	w.rcount++
	if w.rcount == w.size {
		w.rout = w.racc
		w.racc = 0
		w.rcount = 0
		w.rphase++
		w.rcond.Broadcast()
	} else {
		for phase == w.rphase {
			w.rcond.Wait()
		}
	}
	out := w.rout
	w.rmu.Unlock()
	return out
}

// AllReduceMax returns the maximum of x over all ranks. Implemented via
// two sum reductions (count and max exchange through mail) would be
// heavyweight; instead reuse the sum machinery on transformed values is
// incorrect, so it gets its own small protocol: gather to rank 0 via
// channels, then broadcast.
func (r *Rank) AllReduceMax(x float64) float64 {
	if r.W.size == 1 {
		return x
	}
	if r.ID == 0 {
		m := x
		for from := 1; from < r.W.size; from++ {
			v := r.recvSkipEnvelopes(from).(float64)
			if v > m {
				m = v
			}
		}
		for to := 1; to < r.W.size; to++ {
			r.Send(to, m)
		}
		return m
	}
	r.Send(0, x)
	return r.recvSkipEnvelopes(0).(float64)
}

// strayEnvelope answers a protocol envelope received outside any active
// exchange (during a raw collective, or from a rank that is not a
// neighbour of the current exchange). Mirrors PendingExchange.handle
// for a rank with no exchange in flight: early data is stashed for the
// next exchange to adopt, late retransmissions are re-acked — the peer
// missed our ack and would otherwise burn its whole retry budget
// against our silence — and resend requests are served from the send
// history. Stale acks need no action.
func (r *Rank) strayEnvelope(env envelope) {
	switch env.Kind {
	case envData:
		if env.Seq >= r.seq {
			r.stashPut(env)
		} else {
			r.sendEnvelope(env.From, envelope{Kind: envAck, Seq: env.Seq, From: r.ID})
		}
	case envResend:
		if sent, ok := r.hist[env.Seq]; ok {
			r.sendEnvelope(env.From, r.dataEnvelope(env.Seq, sent[env.From]))
		}
	}
}

// drainStray empties every other rank's mailbox without blocking
// (except skip, which the caller is receiving from directly), answering
// protocol envelopes via strayEnvelope and queueing bare payloads for a
// later Recv. Called while a rank lingers in a raw collective so that
// retransmitting peers — who may not be neighbours of any current
// exchange and whose mailboxes nothing else drains — still make
// progress (found by the 64-rank fault-injection soak: round-varying
// neighbour graphs starve a retransmitter whose ack was dropped).
func (r *Rank) drainStray(skip int) {
	for from := 0; from < r.W.size; from++ {
		if from == r.ID || from == skip {
			continue
		}
		for {
			var v interface{}
			ok := false
			select {
			case v = <-r.W.mail[r.ID][from]:
				ok = true
			default:
			}
			if !ok {
				break
			}
			if env, isEnv := v.(envelope); isEnv {
				r.strayEnvelope(env)
			} else {
				r.oobPut(from, v)
			}
		}
	}
}

// recvSkipEnvelopes receives from rank `from`, answering (or stashing)
// reliable-exchange protocol envelopes that a late or retransmitting
// exchange may interleave with raw collective traffic, so mixed use of
// the collectives and the hardened exchange paths cannot mistype a
// message — or starve a peer. While blocked on `from` it periodically
// drains every other mailbox: a rank can sit in a tree allreduce for a
// long time, and peers retransmitting into it (lost ack, corrupt
// payload) must be answered from here or they exhaust their retries.
func (r *Rank) recvSkipEnvelopes(from int) interface{} {
	for {
		var v interface{}
		if q := r.oob[from]; len(q) > 0 {
			v = q[0]
			r.oob[from] = q[1:]
		} else {
			var ok bool
			v, ok = r.RecvTimeout(from, strayPollInterval)
			if !ok {
				r.drainStray(from)
				continue
			}
		}
		env, isEnv := v.(envelope)
		if !isEnv {
			return v
		}
		r.strayEnvelope(env)
	}
}

// ExchangeCounts implements a neighbour exchange of variable-length
// payloads: each rank sends payload[n] to each neighbour n and receives
// one payload from each. Returns the received payloads keyed by source.
// Every rank must call it with the same neighbour topology (symmetric
// neighbour lists), or the exchange deadlocks — exactly like MPI.
func (r *Rank) ExchangeCounts(neighbors []int, payload map[int]interface{}) map[int]interface{} {
	for _, n := range neighbors {
		r.Send(n, payload[n])
	}
	out := make(map[int]interface{}, len(neighbors))
	for _, n := range neighbors {
		out[n] = r.Recv(n)
	}
	return out
}
