package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
)

// TestDistributedViscousApply: the rank-distributed application with halo
// reduction must agree with the sequential tensor operator on every rank's
// touched nodes, including Dirichlet identity rows and subdomain corners
// shared by up to 8 ranks.
func TestDistributedViscousApply(t *testing.T) {
	da := mesh.New(4, 4, 4, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.04*math.Sin(math.Pi*y), y + 0.03*z*x, z
	})
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	prob := fem.NewProblem(da, bc)
	prob.SetCoefficientsFunc(func(x, y, z float64) float64 {
		return math.Exp(math.Sin(4*x) * math.Cos(3*y))
	}, nil)

	rng := rand.New(rand.NewSource(1))
	n := da.NVelDOF()
	u := la.NewVec(n)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	ref := la.NewVec(n)
	fem.NewTensor(prob).Apply(u, ref)

	d, err := NewDecomp(da, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(d.Size())
	results := make([]la.Vec, d.Size())
	var mu sync.Mutex
	w.Run(func(r *Rank) {
		y := la.NewVec(n)
		if err := DistributedViscousApply(r, d, prob, fem.NewTensor(prob), u, y, nil); err != nil {
			t.Errorf("rank %d: %v", r.ID, err)
		}
		mu.Lock()
		results[r.ID] = y
		mu.Unlock()
	})

	scale := ref.NormInf()
	var nodes [27]int32
	for rid := 0; rid < d.Size(); rid++ {
		touched := map[int32]bool{}
		for _, e := range d.LocalElements(rid) {
			da.ElemNodes(e, &nodes)
			for _, nn := range nodes {
				touched[nn] = true
			}
		}
		for nn := range touched {
			for c := 0; c < 3; c++ {
				dd := 3*int(nn) + c
				if math.Abs(results[rid][dd]-ref[dd]) > 1e-11*scale {
					t.Fatalf("rank %d node %d comp %d: %v, want %v",
						rid, nn, c, results[rid][dd], ref[dd])
				}
			}
		}
	}
}

// TestNodeOwnerConsistency: ownership is well defined — exactly one owner
// per node, and it is a rank whose subdomain contains an element touching
// the node.
func TestNodeOwnerConsistency(t *testing.T) {
	da := mesh.New(4, 4, 4, 0, 1, 0, 1, 0, 1)
	d, err := NewDecomp(da, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var nodes [27]int32
	owners := make(map[int32]map[int]bool)
	for r := 0; r < d.Size(); r++ {
		for _, e := range d.LocalElements(r) {
			da.ElemNodes(e, &nodes)
			for _, n := range nodes {
				if owners[n] == nil {
					owners[n] = map[int]bool{}
				}
				owners[n][r] = true
			}
		}
	}
	for n, rs := range owners {
		o := d.NodeOwner(int(n))
		if !rs[o] {
			t.Fatalf("node %d owned by rank %d which does not touch it (touchers %v)", n, o, rs)
		}
	}
}
