package comm

import "time"

// Deterministic tree allreduce. The legacy Dist.AllReduceSum gathered
// every rank's partial to rank 0 serially — O(P) messages through one
// mailbox, the exact pattern that cannot survive 512 ranks. The
// binomial tree below has O(log P) depth and preserves bit-identical
// results: instead of reducing partial sums inside the tree (which
// would change the summation order with the tree shape), each subtree
// forwards its members' RAW values — binomial subtrees cover contiguous
// rank ranges, so the root receives every rank's value in ascending
// rank order and sums them left-associated, exactly like the serial
// gather. The result then rides the reverse tree down.

// lowbit returns the lowest set bit of id (id > 0).
func lowbit(id int) int { return id & -id }

// AllReduceSumVec returns the element-wise global sum of x over all
// ranks, bit-identical on every rank and across world sizes with the
// same per-rank values: summation always runs in ascending rank order.
// The batch width must match on all ranks (one collective per call —
// this is the single fused reduction of a pipelined Krylov iteration).
// The returned slice is freshly allocated.
func (d *Dist) AllReduceSumVec(x []float64) []float64 {
	start := time.Now()
	r := d.R
	size := r.W.Size()
	width := len(x)
	defer func() {
		d.Sc.Counter("allreduces").Inc()
		d.Sc.Timer("allreduce").Observe(time.Since(start))
		if f := r.W.fabric; f != nil {
			d.Sc.Counter("fabric_allreduce_ns").Add(f.AllReduceNs(size, width))
		}
	}()
	out := make([]float64, width)
	if size == 1 {
		copy(out, x)
		return out
	}
	id := r.ID
	// Gather: fold in each child subtree's raw blocks (contiguous,
	// ascending), then hand the combined run to the parent.
	blocks := make([]float64, width, 2*width)
	copy(blocks, x)
	var children []int
	for bit := 1; bit < size; bit <<= 1 {
		if id&bit != 0 {
			r.Send(id-bit, blocks)
			break
		}
		src := id + bit
		if src >= size {
			continue
		}
		blocks = append(blocks, r.recvSkipEnvelopes(src).([]float64)...)
		children = append(children, src)
	}
	var res []float64
	if id == 0 {
		// blocks now holds every rank's raw vector in ascending rank
		// order; sum left-associated like the serial gather did.
		res = make([]float64, width)
		for b := 0; b*width < len(blocks); b++ {
			row := blocks[b*width:]
			for i := 0; i < width; i++ {
				res[i] += row[i]
			}
		}
	} else {
		res = r.recvSkipEnvelopes(id - lowbit(id)).([]float64)
	}
	// Broadcast down. The slice travelling the tree is shared between
	// ranks read-only; every rank returns a private copy so callers may
	// mutate theirs.
	for _, c := range children {
		r.Send(c, res)
	}
	copy(out, res)
	return out
}
