package comm

import (
	"testing"

	"ptatin3d/internal/mesh"
)

// FuzzDecompIndexMath exercises the Cartesian decomposition's index
// arithmetic over arbitrary grid/partition shapes. Invariants: the parts
// tile the element grid exactly (every element owned by exactly one rank,
// consistent with RankOfElement and ElementRange), RankID/RankIJK round-
// trip, and the 26-neighbour graph is symmetric, self-free and duplicate-
// free.
func FuzzDecompIndexMath(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(4), uint8(2), uint8(2), uint8(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(6), uint8(3), uint8(5), uint8(3), uint8(3), uint8(2))
	f.Add(uint8(5), uint8(2), uint8(2), uint8(5), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, mx, my, mz, px, py, pz uint8) {
		clampDim := func(v uint8) int { return 1 + int(v)%6 }
		clampPart := func(v uint8, dim int) int { return 1 + int(v)%dim }
		Mx, My, Mz := clampDim(mx), clampDim(my), clampDim(mz)
		Px := clampPart(px, Mx)
		Py := clampPart(py, My)
		Pz := clampPart(pz, Mz)

		da := mesh.New(Mx, My, Mz, 0, 1, 0, 1, 0, 1)
		d, err := NewDecomp(da, Px, Py, Pz)
		if err != nil {
			t.Fatalf("NewDecomp(%d,%d,%d / %d,%d,%d): %v", Mx, My, Mz, Px, Py, Pz, err)
		}
		size := d.Size()
		if size != Px*Py*Pz {
			t.Fatalf("Size() = %d, want %d", size, Px*Py*Pz)
		}

		// RankID/RankIJK round trip.
		for r := 0; r < size; r++ {
			pi, pj, pk := d.RankIJK(r)
			if pi < 0 || pi >= Px || pj < 0 || pj >= Py || pk < 0 || pk >= Pz {
				t.Fatalf("RankIJK(%d) = (%d,%d,%d) out of range", r, pi, pj, pk)
			}
			if back := d.RankID(pi, pj, pk); back != r {
				t.Fatalf("RankID(RankIJK(%d)) = %d", r, back)
			}
		}

		// Ownership: LocalElements partitions the grid, consistent with
		// RankOfElement and ElementRange.
		owner := make([]int, da.NElements())
		for i := range owner {
			owner[i] = -1
		}
		total := 0
		for r := 0; r < size; r++ {
			ilo, ihi, jlo, jhi, klo, khi := d.ElementRange(r)
			for _, e := range d.LocalElements(r) {
				if e < 0 || e >= len(owner) {
					t.Fatalf("rank %d owns out-of-range element %d", r, e)
				}
				if owner[e] != -1 {
					t.Fatalf("element %d owned by ranks %d and %d", e, owner[e], r)
				}
				owner[e] = r
				total++
				if got := d.RankOfElement(e); got != r {
					t.Fatalf("RankOfElement(%d) = %d, want %d", e, got, r)
				}
				ei, ej, ek := da.ElemIJK(e)
				if ei < ilo || ei >= ihi || ej < jlo || ej >= jhi || ek < klo || ek >= khi {
					t.Fatalf("element %d (%d,%d,%d) outside rank %d range", e, ei, ej, ek, r)
				}
			}
		}
		if total != da.NElements() {
			t.Fatalf("ranks own %d elements, grid has %d", total, da.NElements())
		}

		// Neighbour graph: symmetric, no self, no duplicates.
		nbrs := make([][]int, size)
		for r := 0; r < size; r++ {
			nbrs[r] = d.Neighbors(r)
			seen := map[int]bool{}
			for _, n := range nbrs[r] {
				if n == r {
					t.Fatalf("rank %d lists itself as neighbour", r)
				}
				if n < 0 || n >= size {
					t.Fatalf("rank %d has out-of-range neighbour %d", r, n)
				}
				if seen[n] {
					t.Fatalf("rank %d lists neighbour %d twice", r, n)
				}
				seen[n] = true
			}
		}
		for r := 0; r < size; r++ {
			for _, n := range nbrs[r] {
				found := false
				for _, back := range nbrs[n] {
					if back == r {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("neighbour graph asymmetric: %d lists %d but not vice versa", r, n)
				}
			}
		}
	})
}
