package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ptatin3d/internal/telemetry"
)

// fullGraph returns the all-to-all neighbour lists for n ranks.
func fullGraph(n, self int) []int {
	var nbrs []int
	for r := 0; r < n; r++ {
		if r != self {
			nbrs = append(nbrs, r)
		}
	}
	return nbrs
}

// testPayload builds a distinguishable, checksummed packet for from→to.
func testPayload(from, to, round int) *haloPacket {
	return &haloPacket{
		Node: []int32{int32(from), int32(to), int32(round)},
		Val:  []float64{float64(from) + 0.25, float64(to) - 0.5, float64(round)},
	}
}

func checkReceived(t *testing.T, self, round int, got map[int]interface{}, nbrs []int) {
	t.Helper()
	for _, n := range nbrs {
		pk, ok := got[n].(*haloPacket)
		if !ok {
			t.Errorf("rank %d round %d: payload from %d is %T", self, round, n, got[n])
			continue
		}
		want := testPayload(n, self, round)
		if pk.Checksum64() != want.Checksum64() {
			t.Errorf("rank %d round %d: payload from %d corrupted or wrong: %+v", self, round, n, pk)
		}
	}
}

// runExchanges drives `rounds` collective reliable exchanges on a world of
// n ranks and asserts every payload arrives intact.
func runExchanges(t *testing.T, w *World, rounds int, pol RetryPolicy, reg *telemetry.Registry) {
	t.Helper()
	n := w.Size()
	var mu sync.Mutex
	var failures []error
	w.Run(func(r *Rank) {
		nbrs := fullGraph(n, r.ID)
		sc := reg.Root().Child("comm").Child(fmt.Sprintf("rank%d", r.ID))
		for round := 0; round < rounds; round++ {
			payload := map[int]interface{}{}
			for _, nb := range nbrs {
				payload[nb] = testPayload(r.ID, nb, round)
			}
			got, err := r.ExchangeReliable(nbrs, payload, pol, sc)
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Errorf("rank %d round %d: %w", r.ID, round, err))
				mu.Unlock()
				return
			}
			checkReceived(t, r.ID, round, got, nbrs)
		}
	})
	for _, err := range failures {
		t.Error(err)
	}
}

func TestExchangeReliableBasic(t *testing.T) {
	runExchanges(t, NewWorld(4), 3, DefaultRetryPolicy(), telemetry.New())
}

func TestExchangeReliableDropRecovery(t *testing.T) {
	w := NewWorld(4)
	fp := &FaultPlan{Seed: 7, DropProb: 1, MaxDrops: 5}
	w.SetFaultPlan(fp)
	reg := telemetry.New()
	pol := RetryPolicy{Timeout: 10 * time.Millisecond, MaxRetries: 30, Backoff: 1.2}
	runExchanges(t, w, 3, pol, reg)
	if fp.Drops() != 5 {
		t.Errorf("injected %d drops, want the full budget of 5", fp.Drops())
	}
	var retries int64
	for r := 0; r < 4; r++ {
		retries += reg.Root().Child("comm").Child(fmt.Sprintf("rank%d", r)).Counter("retries").Value()
	}
	if retries == 0 {
		t.Error("five dropped envelopes recovered without a single retry")
	}
}

func TestExchangeReliableStallRecovery(t *testing.T) {
	w := NewWorld(4)
	fp := &FaultPlan{Seed: 3, StallRank: 1, StallExchange: 0, StallDuration: 60 * time.Millisecond}
	w.SetFaultPlan(fp)
	pol := RetryPolicy{Timeout: 10 * time.Millisecond, MaxRetries: 30, Backoff: 1.2}
	runExchanges(t, w, 2, pol, telemetry.New())
	if fp.Stalls() != 1 {
		t.Errorf("injected %d stalls, want 1", fp.Stalls())
	}
}

func TestExchangeReliableCorruptionRecovery(t *testing.T) {
	w := NewWorld(4)
	fp := &FaultPlan{Seed: 11, CorruptProb: 1, MaxCorrupts: 3}
	w.SetFaultPlan(fp)
	reg := telemetry.New()
	pol := RetryPolicy{Timeout: 10 * time.Millisecond, MaxRetries: 30, Backoff: 1.2}
	// checkReceived inside runExchanges asserts every delivered payload is
	// pristine, so surviving this test means all 3 corruptions were caught
	// by checksum verification and repaired by retransmission.
	runExchanges(t, w, 3, pol, reg)
	if fp.Corruptions() != 3 {
		t.Errorf("injected %d corruptions, want the full budget of 3", fp.Corruptions())
	}
	var rejected int64
	for r := 0; r < 4; r++ {
		rejected += reg.Root().Child("comm").Child(fmt.Sprintf("rank%d", r)).Counter("corrupt_rejected").Value()
	}
	if rejected == 0 {
		t.Error("corrupted payloads were never rejected at the receiver")
	}
}

// TestExchangeReliableExhaustion drops every envelope with no budget: the
// exchange must fail with a typed *ExchangeError on every rank within the
// bounded retry schedule — never deadlock.
func TestExchangeReliableExhaustion(t *testing.T) {
	w := NewWorld(3)
	w.SetFaultPlan(&FaultPlan{Seed: 1, DropProb: 1})
	pol := RetryPolicy{Timeout: 5 * time.Millisecond, MaxRetries: 3, Backoff: 1}
	errs := make([]error, 3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(func(r *Rank) {
			nbrs := fullGraph(3, r.ID)
			payload := map[int]interface{}{}
			for _, nb := range nbrs {
				payload[nb] = testPayload(r.ID, nb, 0)
			}
			_, errs[r.ID] = r.ExchangeReliable(nbrs, payload, pol, nil)
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("exchange with total message loss deadlocked instead of failing")
	}
	for rid, err := range errs {
		var xe *ExchangeError
		if !errors.As(err, &xe) {
			t.Fatalf("rank %d: got %v, want *ExchangeError", rid, err)
		}
		if xe.Rank != rid || len(xe.MissingData) == 0 || xe.Attempts != pol.MaxRetries+1 {
			t.Errorf("rank %d: unexpected error detail %+v", rid, xe)
		}
	}
}

// TestFaultPlanDeterminism: two plans with the same seed make identical
// injection decisions for the same per-rank envelope sequence.
func TestFaultPlanDeterminism(t *testing.T) {
	decisions := func() (deliver []bool, sums []uint64, drops, corrupts int64) {
		fp := &FaultPlan{Seed: 99, DropProb: 0.3, CorruptProb: 0.4}
		fp.attach(2)
		for i := 0; i < 200; i++ {
			pk := testPayload(0, 1, i)
			env := envelope{Kind: envData, Seq: int64(i), From: 0, Payload: pk,
				Sum: pk.Checksum64(), HasSum: true}
			out, ok := fp.filter(0, env)
			deliver = append(deliver, ok)
			sums = append(sums, out.Payload.(*haloPacket).Checksum64())
		}
		return deliver, sums, fp.Drops(), fp.Corruptions()
	}
	d1, s1, dr1, co1 := decisions()
	d2, s2, dr2, co2 := decisions()
	if dr1 != dr2 || co1 != co2 {
		t.Fatalf("fault counts differ across identical runs: drops %d/%d corrupts %d/%d", dr1, dr2, co1, co2)
	}
	if dr1 == 0 || co1 == 0 {
		t.Fatalf("injection never fired (drops %d, corrupts %d): seed/probability wiring broken", dr1, co1)
	}
	for i := range d1 {
		if d1[i] != d2[i] || s1[i] != s2[i] {
			t.Fatalf("decision %d differs across identical seeds", i)
		}
	}
}

func TestRecvTimeout(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			if _, ok := r.RecvTimeout(1, 5*time.Millisecond); ok {
				t.Error("RecvTimeout returned a message from a silent rank")
			}
			r.Barrier()
			v, ok := r.RecvTimeout(1, time.Second)
			if !ok || v.(int) != 42 {
				t.Errorf("RecvTimeout got (%v, %v), want (42, true)", v, ok)
			}
		} else {
			r.Barrier()
			r.Send(0, 42)
		}
	})
}

// TestExchangeReliablePreservesCollectivePayloads pins the interleaving
// that deadlocked the rank-distributed solve at larger grids: rank 1
// finishes its exchange with rank 0 quickly and races ahead into a
// collective, sending rank 0 a bare (non-envelope) AllReduce partial
// while rank 0 is still in its receive/retry loop waiting on a slower
// neighbour (rank 2). The loop must queue the stray payload for the
// collective's Recv instead of discarding it; before the fix this test
// deadlocks at rank 0's recvSkipEnvelopes.
func TestExchangeReliablePreservesCollectivePayloads(t *testing.T) {
	w := NewWorld(3)
	pol := RetryPolicy{Timeout: 200 * time.Millisecond, MaxRetries: 8, Backoff: 1}
	var mu sync.Mutex
	var failures []error
	fail := func(err error) {
		mu.Lock()
		failures = append(failures, err)
		mu.Unlock()
	}
	w.Run(func(r *Rank) {
		switch r.ID {
		case 0:
			payload := map[int]interface{}{1: testPayload(0, 1, 0), 2: testPayload(0, 2, 0)}
			if _, err := r.ExchangeReliable([]int{1, 2}, payload, pol, nil); err != nil {
				fail(fmt.Errorf("rank 0 exchange: %w", err))
				return
			}
			if v := r.recvSkipEnvelopes(1).(float64); v != 3.25 {
				fail(fmt.Errorf("rank 0: collective payload = %v, want 3.25", v))
			}
		case 1:
			if _, err := r.ExchangeReliable([]int{0}, map[int]interface{}{0: testPayload(1, 0, 0)}, pol, nil); err != nil {
				fail(fmt.Errorf("rank 1 exchange: %w", err))
				return
			}
			// Race ahead into the "collective" while rank 0 is still
			// polling for rank 2's data.
			r.Send(0, 3.25)
		case 2:
			time.Sleep(40 * time.Millisecond)
			if _, err := r.ExchangeReliable([]int{0}, map[int]interface{}{0: testPayload(2, 0, 0)}, pol, nil); err != nil {
				fail(fmt.Errorf("rank 2 exchange: %w", err))
			}
		}
	})
	for _, err := range failures {
		t.Error(err)
	}
}
