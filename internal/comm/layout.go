package comm

import "ptatin3d/internal/la"

// Layout is the per-rank node-ownership geometry of a Decomp, the basis
// of the rank-distributed vector layout (owned + ghost entries): which
// Q2 nodes this rank owns, which ghost nodes it reads from neighbours,
// and which owned nodes neighbours read from it. All lists are derived
// from axis-aligned box intersections, so both sides of every exchange
// enumerate the same nodes in the same (k,j,i) order and packets can be
// validated structurally.
//
// Ownership convention (paper §II-D / DMDA): rank r's element range
// [a,b) along an axis owns the node range [2a+1, 2b+1) — except the
// first part, which also owns its low boundary layer [0, 2b+1). Owned
// boxes therefore partition the node grid exactly.
//
// The ghost (read) region is one element wider than the owned box: the
// columns of an owned matrix row reach every node sharing an element
// with an owned node, i.e. the nodes of elements [a, min(b+1,M)).

// Box is a half-open node-index box [Lo[a], Hi[a]) per axis (x,y,z).
type Box struct {
	Lo, Hi [3]int
}

// Empty reports whether the box contains no nodes.
func (b Box) Empty() bool {
	return b.Hi[0] <= b.Lo[0] || b.Hi[1] <= b.Lo[1] || b.Hi[2] <= b.Lo[2]
}

// Count returns the number of nodes in the box.
func (b Box) Count() int {
	if b.Empty() {
		return 0
	}
	return (b.Hi[0] - b.Lo[0]) * (b.Hi[1] - b.Lo[1]) * (b.Hi[2] - b.Lo[2])
}

// Contains reports whether node (i,j,k) lies in the box.
func (b Box) Contains(i, j, k int) bool {
	return i >= b.Lo[0] && i < b.Hi[0] &&
		j >= b.Lo[1] && j < b.Hi[1] &&
		k >= b.Lo[2] && k < b.Hi[2]
}

// intersect returns the (possibly empty) intersection of two boxes.
func intersect(a, b Box) Box {
	var c Box
	for ax := 0; ax < 3; ax++ {
		c.Lo[ax] = max(a.Lo[ax], b.Lo[ax])
		c.Hi[ax] = min(a.Hi[ax], b.Hi[ax])
	}
	return c
}

// ownedBox returns the node box owned by rank r under d.
func ownedBox(d *Decomp, r int) Box {
	ilo, ihi, jlo, jhi, klo, khi := d.ElementRange(r)
	lo := func(a int) int {
		if a == 0 {
			return 0
		}
		return 2*a + 1
	}
	return Box{
		Lo: [3]int{lo(ilo), lo(jlo), lo(klo)},
		Hi: [3]int{2*ihi + 1, 2*jhi + 1, 2*khi + 1},
	}
}

// extBox returns rank r's read region: the nodes of every element whose
// support contains an owned node (owned box grown by one element layer
// upward and one node downward, clipped to the grid).
func extBox(d *Decomp, r int) Box {
	ilo, ihi, jlo, jhi, klo, khi := d.ElementRange(r)
	hi := func(b, m int) int { return 2*min(b+1, m) + 1 }
	return Box{
		Lo: [3]int{2 * ilo, 2 * jlo, 2 * klo},
		Hi: [3]int{hi(ihi, d.DA.Mx), hi(jhi, d.DA.My), hi(khi, d.DA.Mz)},
	}
}

// Layout holds rank r's slice of the distributed vector layout.
type Layout struct {
	D    *Decomp
	Rank int

	Owned Box // nodes this rank owns (owned boxes partition the grid)
	Ext   Box // owned + ghost nodes: everything this rank's rows read

	Elems    []int // all local elements, in DA element-id order
	Interior []int // local elements whose 27 nodes are all owned
	Boundary []int // local elements touching at least one non-owned node

	// Neighbors lists the ranks this rank exchanges with (sorted). For
	// each neighbour n, Ghost[n] holds the nodes this rank reads that n
	// owns and Mirror[n] the nodes this rank owns that n reads; by
	// construction Ghost[n] here equals Mirror[this] on n, in the same
	// node-id order, so exchanges need no index payloads beyond the
	// packet's own node list.
	Neighbors []int
	Ghost     map[int][]int32
	Mirror    map[int][]int32

	ownedNodes []int32   // cached Owned enumeration (lazy)
	velSpans   []la.Span // cached VelSpans result (lazy)
}

// NewLayout computes rank r's layout under d.
func NewLayout(d *Decomp, r int) *Layout {
	l := &Layout{
		D: d, Rank: r,
		Owned: ownedBox(d, r),
		Ext:   extBox(d, r),
		Ghost: map[int][]int32{}, Mirror: map[int][]int32{},
	}
	ilo, ihi, jlo, jhi, klo, khi := d.ElementRange(r)
	for k := klo; k < khi; k++ {
		for j := jlo; j < jhi; j++ {
			for i := ilo; i < ihi; i++ {
				e := d.DA.ElemID(i, j, k)
				l.Elems = append(l.Elems, e)
				eb := Box{Lo: [3]int{2 * i, 2 * j, 2 * k}, Hi: [3]int{2*i + 3, 2*j + 3, 2*k + 3}}
				if intersect(eb, l.Owned).Count() == eb.Count() {
					l.Interior = append(l.Interior, e)
				} else {
					l.Boundary = append(l.Boundary, e)
				}
			}
		}
	}
	for _, n := range d.Neighbors(r) {
		g := l.nodeList(intersect(l.Ext, ownedBox(d, n)))
		m := l.nodeList(intersect(extBox(d, n), l.Owned))
		if len(g) == 0 && len(m) == 0 {
			continue
		}
		l.Neighbors = append(l.Neighbors, n)
		l.Ghost[n] = g
		l.Mirror[n] = m
	}
	return l
}

// nodeList enumerates the node ids of a box in (k,j,i) order.
func (l *Layout) nodeList(b Box) []int32 {
	if b.Empty() {
		return nil
	}
	out := make([]int32, 0, b.Count())
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				out = append(out, int32(l.D.DA.NodeID(i, j, k)))
			}
		}
	}
	return out
}

// OwnedNodes returns the node ids this rank owns (cached).
func (l *Layout) OwnedNodes() []int32 {
	if l.ownedNodes == nil {
		l.ownedNodes = l.nodeList(l.Owned)
	}
	return l.ownedNodes
}

// VelSpans returns the velocity-dof index windows of this rank's
// owned+ghost (Ext) node box — one span per contiguous run of dofs,
// adjacent rows merged (cached). These are the index ranges a
// rank-windowed Krylov solve must keep valid; everything outside them
// is another rank's territory and is never touched, which keeps
// per-rank BLAS-1 work and resident memory O(n/P) at high rank counts.
func (l *Layout) VelSpans() []la.Span {
	if l.velSpans != nil {
		return l.velSpans
	}
	b := l.Ext
	da := l.D.DA
	spans := make([]la.Span, 0, (b.Hi[2]-b.Lo[2])*(b.Hi[1]-b.Lo[1]))
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			row := (k*da.NPy + j) * da.NPx
			lo, hi := 3*(row+b.Lo[0]), 3*(row+b.Hi[0])
			if n := len(spans); n > 0 && spans[n-1].Hi == lo {
				spans[n-1].Hi = hi
			} else {
				spans = append(spans, la.Span{Lo: lo, Hi: hi})
			}
		}
	}
	l.velSpans = spans
	return spans
}

// OwnsNode reports whether this rank owns node id n.
func (l *Layout) OwnsNode(n int) bool {
	i, j, k := l.D.DA.NodeIJK(n)
	return l.Owned.Contains(i, j, k)
}

// DotVel returns this rank's partial inner product over the velocity
// dofs (3 per node) of its owned nodes. Summation runs in (k,j,i) node
// order, so the partial is deterministic for a fixed layout.
func (l *Layout) DotVel(x, y []float64) float64 {
	s := 0.0
	b := l.Owned
	da := l.D.DA
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			row := (k*da.NPy + j) * da.NPx
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				d0 := 3 * (row + i)
				s += x[d0]*y[d0] + x[d0+1]*y[d0+1] + x[d0+2]*y[d0+2]
			}
		}
	}
	return s
}
