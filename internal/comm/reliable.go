package comm

import (
	"fmt"
	"sort"
	"time"

	"ptatin3d/internal/telemetry"
)

// The reliable neighbour exchange hardens the halo-exchange and
// point-migration paths against the fault model of FaultPlan: every
// payload travels in a sequence-numbered envelope with an optional
// checksum; receivers acknowledge accepted data, dedupe retransmissions,
// and request resends for missing or corrupt payloads; senders keep a
// short retransmission history. All waits are timeout-bounded, so a
// fault burst beyond the retry budget surfaces as a typed
// *ExchangeError instead of a deadlock — the caller aborts the step.

// envKind discriminates protocol messages.
type envKind uint8

const (
	envData envKind = iota
	envAck
	envResend
)

// envelope is the wire frame of the reliable exchange.
type envelope struct {
	Kind    envKind
	Seq     int64
	From    int
	Sum     uint64
	HasSum  bool
	Payload interface{}
}

// RetryPolicy bounds one reliable exchange.
type RetryPolicy struct {
	// Timeout is the per-attempt wait before retransmitting data to
	// unacked neighbours and requesting resends from silent ones.
	Timeout time.Duration
	// MaxRetries is the number of retransmission rounds after the first
	// attempt; when exhausted the exchange fails with *ExchangeError.
	MaxRetries int
	// Backoff multiplies the timeout after every retry (values < 1 are
	// treated as 1, i.e. constant timeout).
	Backoff float64
}

// DefaultRetryPolicy returns the package defaults: 50 ms per attempt, 8
// retries, 1.5× backoff — generous enough to ride out injected stalls
// while still bounding every wait.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 50 * time.Millisecond, MaxRetries: 8, Backoff: 1.5}
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 50 * time.Millisecond
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff < 1 {
		p.Backoff = 1
	}
	return p
}

// ExchangeError reports an exchange that could not complete within its
// retry budget: the neighbours whose data never (verifiably) arrived and
// the neighbours that never acknowledged ours.
type ExchangeError struct {
	Rank        int
	Seq         int64
	MissingData []int
	MissingAcks []int
	Attempts    int
}

// Error implements the error interface.
func (e *ExchangeError) Error() string {
	return fmt.Sprintf("comm: rank %d exchange %d failed after %d attempts (missing data from %v, missing acks from %v)",
		e.Rank, e.Seq, e.Attempts, e.MissingData, e.MissingAcks)
}

// sendEnvelope routes env through the fault plan (if any) and the mail
// fabric.
func (r *Rank) sendEnvelope(to int, env envelope) {
	if fp := r.W.fault; fp != nil {
		var deliver bool
		env, deliver = fp.filter(r.ID, env)
		if !deliver {
			return
		}
	}
	r.Send(to, env)
}

// dataEnvelope frames a payload, stamping a checksum when supported.
func (r *Rank) dataEnvelope(seq int64, payload interface{}) envelope {
	env := envelope{Kind: envData, Seq: seq, From: r.ID, Payload: payload}
	if cs, ok := payload.(Checksummer); ok {
		env.Sum = cs.Checksum64()
		env.HasSum = true
	}
	return env
}

// RecvTimeout waits up to d for a message from rank `from`.
func (r *Rank) RecvTimeout(from int, d time.Duration) (interface{}, bool) {
	select {
	case v := <-r.W.mail[r.ID][from]:
		return v, true
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case v := <-r.W.mail[r.ID][from]:
		return v, true
	case <-t.C:
		return nil, false
	}
}

// rememberSent records the payload map for retransmission service and
// prunes history older than a few exchanges.
func (r *Rank) rememberSent(seq int64, payload map[int]interface{}) {
	if r.hist == nil {
		r.hist = map[int64]map[int]interface{}{}
	}
	r.hist[seq] = payload
	for s := range r.hist {
		if s < seq-3 {
			delete(r.hist, s)
		}
	}
}

// stashPut stores a data envelope that belongs to a future exchange.
func (r *Rank) stashPut(env envelope) {
	if r.stash == nil {
		r.stash = map[int]map[int64]envelope{}
	}
	if r.stash[env.From] == nil {
		r.stash[env.From] = map[int64]envelope{}
	}
	r.stash[env.From][env.Seq] = env
}

// stashTake retrieves (and removes) a stashed data envelope.
func (r *Rank) stashTake(from int, seq int64) (envelope, bool) {
	m := r.stash[from]
	if m == nil {
		return envelope{}, false
	}
	env, ok := m[seq]
	if ok {
		delete(m, seq)
	}
	return env, ok
}

// verifySum checks a data envelope's checksum against its payload.
func verifySum(env envelope) bool {
	if !env.HasSum {
		return true
	}
	cs, ok := env.Payload.(Checksummer)
	if !ok {
		return false
	}
	return cs.Checksum64() == env.Sum
}

// ExchangeReliable performs a neighbour exchange with retransmission:
// each rank sends payload[n] to every neighbour n and returns the
// verified payloads received from each, keyed by source. Unlike
// ExchangeCounts it tolerates the FaultPlan fault model — dropped,
// delayed and corrupted envelopes and stalled peers — recovering via
// acknowledgements, checksums and bounded retries, and it never
// deadlocks: when the retry budget is exhausted it returns a typed
// *ExchangeError and the caller must abort the operation.
//
// All ranks must call it collectively with symmetric neighbour lists and
// in the same collective order (the per-rank sequence number identifies
// the exchange). sc, when non-nil, accumulates exchange telemetry:
// "exchanges"/"retries"/"resends_served"/"corrupt_rejected"/
// "duplicates"/"recovered_exchanges"/"exchange_failures" counters and an
// "exchange" timer.
func (r *Rank) ExchangeReliable(neighbors []int, payload map[int]interface{}, pol RetryPolicy, sc *telemetry.Scope) (map[int]interface{}, error) {
	pol = pol.normalized()
	telStart := sc.Timer("exchange").Start()
	seq := r.seq
	r.seq++
	if fp := r.W.fault; fp != nil {
		fp.maybeStall(r.ID, seq)
	}
	r.rememberSent(seq, payload)

	got := make(map[int]interface{}, len(neighbors))
	pending := make(map[int]bool, len(neighbors)) // awaiting data from
	unacked := make(map[int]bool, len(neighbors)) // awaiting ack from
	for _, n := range neighbors {
		pending[n] = true
		unacked[n] = true
	}

	accept := func(env envelope) {
		if !verifySum(env) {
			sc.Counter("corrupt_rejected").Inc()
			// Ask for a pristine copy right away.
			r.sendEnvelope(env.From, envelope{Kind: envResend, Seq: env.Seq, From: r.ID})
			return
		}
		if pending[env.From] {
			got[env.From] = env.Payload
			delete(pending, env.From)
		} else {
			sc.Counter("duplicates").Inc()
		}
		r.sendEnvelope(env.From, envelope{Kind: envAck, Seq: env.Seq, From: r.ID})
	}

	// Adopt data that arrived early (stashed during a previous exchange).
	for _, n := range neighbors {
		if env, ok := r.stashTake(n, seq); ok {
			accept(env)
		}
	}

	handle := func(env envelope) {
		switch env.Kind {
		case envData:
			switch {
			case env.Seq == seq:
				accept(env)
			case env.Seq < seq:
				// Late retransmission of an older exchange: the peer
				// missed our ack — re-ack so it can make progress.
				sc.Counter("duplicates").Inc()
				r.sendEnvelope(env.From, envelope{Kind: envAck, Seq: env.Seq, From: r.ID})
			default:
				r.stashPut(env)
			}
		case envAck:
			if env.Seq == seq {
				delete(unacked, env.From)
			}
		case envResend:
			if sent, ok := r.hist[env.Seq]; ok {
				sc.Counter("resends_served").Inc()
				r.sendEnvelope(env.From, r.dataEnvelope(env.Seq, sent[env.From]))
			}
		}
	}

	// First transmission.
	for _, n := range neighbors {
		r.sendEnvelope(n, r.dataEnvelope(seq, payload[n]))
	}

	timeout := pol.Timeout
	attempts := 0
	for {
		slice := timeout / time.Duration(4*len(neighbors)+1)
		if slice < 200*time.Microsecond {
			slice = 200 * time.Microsecond
		}
		deadline := time.Now().Add(timeout)
		for (len(pending) > 0 || len(unacked) > 0) && time.Now().Before(deadline) {
			for _, n := range neighbors {
				if v, ok := r.RecvTimeout(n, slice); ok {
					if env, ok := v.(envelope); ok {
						handle(env)
					}
				}
			}
		}
		if len(pending) == 0 && len(unacked) == 0 {
			sc.Timer("exchange").Stop(telStart)
			sc.Counter("exchanges").Inc()
			if attempts > 0 {
				sc.Counter("recovered_exchanges").Inc()
			}
			return got, nil
		}
		if attempts >= pol.MaxRetries {
			break
		}
		attempts++
		sc.Counter("retries").Inc()
		// Retransmit our data to neighbours that have not acked, and
		// request resends from neighbours we have not heard from.
		for n := range unacked {
			r.sendEnvelope(n, r.dataEnvelope(seq, payload[n]))
		}
		for n := range pending {
			r.sendEnvelope(n, envelope{Kind: envResend, Seq: seq, From: r.ID})
		}
		timeout = time.Duration(float64(timeout) * pol.Backoff)
	}
	sc.Timer("exchange").Stop(telStart)
	sc.Counter("exchange_failures").Inc()
	err := &ExchangeError{Rank: r.ID, Seq: seq, Attempts: attempts + 1}
	for n := range pending {
		err.MissingData = append(err.MissingData, n)
	}
	for n := range unacked {
		err.MissingAcks = append(err.MissingAcks, n)
	}
	sort.Ints(err.MissingData)
	sort.Ints(err.MissingAcks)
	return nil, err
}
