package comm

import (
	"fmt"
	"sort"
	"time"

	"ptatin3d/internal/telemetry"
)

// The reliable neighbour exchange hardens the halo-exchange and
// point-migration paths against the fault model of FaultPlan: every
// payload travels in a sequence-numbered envelope with an optional
// checksum; receivers acknowledge accepted data, dedupe retransmissions,
// and request resends for missing or corrupt payloads; senders keep a
// short retransmission history. All waits are timeout-bounded, so a
// fault burst beyond the retry budget surfaces as a typed
// *ExchangeError instead of a deadlock — the caller aborts the step.

// envKind discriminates protocol messages.
type envKind uint8

const (
	envData envKind = iota
	envAck
	envResend
)

// envelope is the wire frame of the reliable exchange.
type envelope struct {
	Kind    envKind
	Seq     int64
	From    int
	Sum     uint64
	HasSum  bool
	Payload interface{}
}

// RetryPolicy bounds one reliable exchange.
type RetryPolicy struct {
	// Timeout is the per-attempt wait before retransmitting data to
	// unacked neighbours and requesting resends from silent ones.
	Timeout time.Duration
	// MaxRetries is the number of retransmission rounds after the first
	// attempt; when exhausted the exchange fails with *ExchangeError.
	MaxRetries int
	// Backoff multiplies the timeout after every retry (values < 1 are
	// treated as 1, i.e. constant timeout).
	Backoff float64
}

// DefaultRetryPolicy returns the package defaults: 50 ms per attempt, 8
// retries, 1.5× backoff — generous enough to ride out injected stalls
// while still bounding every wait.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 50 * time.Millisecond, MaxRetries: 8, Backoff: 1.5}
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.Timeout <= 0 {
		p.Timeout = 50 * time.Millisecond
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff < 1 {
		p.Backoff = 1
	}
	return p
}

// ExchangeError reports an exchange that could not complete within its
// retry budget: the neighbours whose data never (verifiably) arrived and
// the neighbours that never acknowledged ours.
type ExchangeError struct {
	Rank        int
	Seq         int64
	MissingData []int
	MissingAcks []int
	Attempts    int
}

// Error implements the error interface.
func (e *ExchangeError) Error() string {
	return fmt.Sprintf("comm: rank %d exchange %d failed after %d attempts (missing data from %v, missing acks from %v)",
		e.Rank, e.Seq, e.Attempts, e.MissingData, e.MissingAcks)
}

// sendEnvelope routes env through the fault plan (if any) and the mail
// fabric.
func (r *Rank) sendEnvelope(to int, env envelope) {
	if fp := r.W.fault; fp != nil {
		var deliver bool
		env, deliver = fp.filter(r.ID, env)
		if !deliver {
			return
		}
	}
	r.Send(to, env)
}

// dataEnvelope frames a payload, stamping a checksum when supported.
func (r *Rank) dataEnvelope(seq int64, payload interface{}) envelope {
	env := envelope{Kind: envData, Seq: seq, From: r.ID, Payload: payload}
	if cs, ok := payload.(Checksummer); ok {
		env.Sum = cs.Checksum64()
		env.HasSum = true
	}
	return env
}

// strayPollInterval is how long a rank blocked inside a raw collective
// waits on its expected sender before sweeping every other mailbox for
// stray protocol traffic (see Rank.drainStray).
const strayPollInterval = time.Millisecond

// RecvTimeout waits up to d for a message from rank `from`.
func (r *Rank) RecvTimeout(from int, d time.Duration) (interface{}, bool) {
	select {
	case v := <-r.W.mail[r.ID][from]:
		return v, true
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case v := <-r.W.mail[r.ID][from]:
		return v, true
	case <-t.C:
		return nil, false
	}
}

// rememberSent records the payload map for retransmission service and
// prunes history older than a few exchanges.
func (r *Rank) rememberSent(seq int64, payload map[int]interface{}) {
	if r.hist == nil {
		r.hist = map[int64]map[int]interface{}{}
	}
	r.hist[seq] = payload
	for s := range r.hist {
		if s < seq-3 {
			delete(r.hist, s)
		}
	}
}

// stashPut stores a data envelope that belongs to a future exchange.
func (r *Rank) stashPut(env envelope) {
	if r.stash == nil {
		r.stash = map[int]map[int64]envelope{}
	}
	if r.stash[env.From] == nil {
		r.stash[env.From] = map[int64]envelope{}
	}
	r.stash[env.From][env.Seq] = env
}

// stashTake retrieves (and removes) a stashed data envelope.
func (r *Rank) stashTake(from int, seq int64) (envelope, bool) {
	m := r.stash[from]
	if m == nil {
		return envelope{}, false
	}
	env, ok := m[seq]
	if ok {
		delete(m, seq)
	}
	return env, ok
}

// verifySum checks a data envelope's checksum against its payload.
func verifySum(env envelope) bool {
	if !env.HasSum {
		return true
	}
	cs, ok := env.Payload.(Checksummer)
	if !ok {
		return false
	}
	return cs.Checksum64() == env.Sum
}

// ExchangeReliable performs a neighbour exchange with retransmission:
// each rank sends payload[n] to every neighbour n and returns the
// verified payloads received from each, keyed by source. Unlike
// ExchangeCounts it tolerates the FaultPlan fault model — dropped,
// delayed and corrupted envelopes and stalled peers — recovering via
// acknowledgements, checksums and bounded retries, and it never
// deadlocks: when the retry budget is exhausted it returns a typed
// *ExchangeError and the caller must abort the operation.
//
// All ranks must call it collectively with symmetric neighbour lists and
// in the same collective order (the per-rank sequence number identifies
// the exchange). sc, when non-nil, accumulates exchange telemetry:
// "exchanges"/"retries"/"resends_served"/"corrupt_rejected"/
// "duplicates"/"recovered_exchanges"/"exchange_failures" counters and an
// "exchange" timer.
func (r *Rank) ExchangeReliable(neighbors []int, payload map[int]interface{}, pol RetryPolicy, sc *telemetry.Scope) (map[int]interface{}, error) {
	return r.StartExchange(neighbors, payload, pol, sc).Wait()
}

// PendingExchange is a reliable exchange whose first transmission is in
// flight: StartExchange has sent the payloads (and adopted any stashed
// early arrivals), but the receive/retry loop has not run. The caller
// may compute between StartExchange and Wait — this is the §II-D
// latency-hiding pattern: apply the subdomain-boundary elements, start
// the halo exchange, apply the interior elements while messages are in
// flight, then Wait.
type PendingExchange struct {
	r         *Rank
	neighbors []int
	pol       RetryPolicy
	sc        *telemetry.Scope
	seq       int64
	telStart  time.Time

	got     map[int]interface{}
	pending map[int]bool // awaiting data from
	unacked map[int]bool // awaiting ack from
}

// StartExchange begins a reliable neighbour exchange and returns without
// waiting for the replies: the payloads are transmitted, stashed early
// arrivals are adopted, and everything else is deferred to Wait. The
// collective-order and symmetric-neighbour requirements of
// ExchangeReliable apply; each StartExchange must be Wait-ed before the
// rank issues another exchange.
func (r *Rank) StartExchange(neighbors []int, payload map[int]interface{}, pol RetryPolicy, sc *telemetry.Scope) *PendingExchange {
	px := &PendingExchange{
		r: r, neighbors: neighbors, pol: pol.normalized(), sc: sc,
		telStart: sc.Timer("exchange").Start(),
		got:      make(map[int]interface{}, len(neighbors)),
		pending:  make(map[int]bool, len(neighbors)),
		unacked:  make(map[int]bool, len(neighbors)),
	}
	px.seq = r.seq
	r.seq++
	if fp := r.W.fault; fp != nil {
		fp.maybeStall(r.ID, px.seq)
	}
	r.rememberSent(px.seq, payload)
	for _, n := range neighbors {
		px.pending[n] = true
		px.unacked[n] = true
	}
	// Adopt data that arrived early (stashed during a previous exchange).
	for _, n := range neighbors {
		if env, ok := r.stashTake(n, px.seq); ok {
			px.accept(env)
		}
	}
	// First transmission.
	for _, n := range neighbors {
		r.sendEnvelope(n, r.dataEnvelope(px.seq, payload[n]))
	}
	return px
}

// accept takes a data envelope for this exchange: verify, record, ack.
func (px *PendingExchange) accept(env envelope) {
	r := px.r
	if !verifySum(env) {
		px.sc.Counter("corrupt_rejected").Inc()
		// Ask for a pristine copy right away.
		r.sendEnvelope(env.From, envelope{Kind: envResend, Seq: env.Seq, From: r.ID})
		return
	}
	if px.pending[env.From] {
		px.got[env.From] = env.Payload
		delete(px.pending, env.From)
	} else {
		px.sc.Counter("duplicates").Inc()
	}
	r.sendEnvelope(env.From, envelope{Kind: envAck, Seq: env.Seq, From: r.ID})
}

// handle dispatches one protocol message received during Wait.
func (px *PendingExchange) handle(env envelope) {
	r := px.r
	switch env.Kind {
	case envData:
		switch {
		case env.Seq == px.seq:
			px.accept(env)
		case env.Seq < px.seq:
			// Late retransmission of an older exchange: the peer
			// missed our ack — re-ack so it can make progress.
			px.sc.Counter("duplicates").Inc()
			r.sendEnvelope(env.From, envelope{Kind: envAck, Seq: env.Seq, From: r.ID})
		default:
			r.stashPut(env)
		}
	case envAck:
		if env.Seq == px.seq {
			delete(px.unacked, env.From)
		}
	case envResend:
		if sent, ok := r.hist[env.Seq]; ok {
			px.sc.Counter("resends_served").Inc()
			r.sendEnvelope(env.From, r.dataEnvelope(env.Seq, sent[env.From]))
		}
	}
}

// Wait runs the receive/retry loop to completion and returns the
// verified payloads keyed by source (or a typed *ExchangeError once the
// retry budget is exhausted).
func (px *PendingExchange) Wait() (map[int]interface{}, error) {
	r, sc := px.r, px.sc
	timeout := px.pol.Timeout
	attempts := 0
	nbr := make(map[int]bool, len(px.neighbors))
	for _, n := range px.neighbors {
		nbr[n] = true
	}
	for {
		// The per-neighbour poll slice is decoupled from the retry
		// timeout: a generous timeout (right for oversubscribed worlds,
		// where acks are slow without anything being wrong) must not
		// inflate the round-robin polling latency — a message from the
		// last neighbour polled would otherwise sit for most of a slice
		// × every silent neighbour ahead of it.
		slice := timeout / time.Duration(4*len(px.neighbors)+1)
		if slice < 200*time.Microsecond {
			slice = 200 * time.Microsecond
		}
		if slice > 2*time.Millisecond {
			slice = 2 * time.Millisecond
		}
		deadline := time.Now().Add(timeout)
		for (len(px.pending) > 0 || len(px.unacked) > 0) && time.Now().Before(deadline) {
			for _, n := range px.neighbors {
				if v, ok := r.RecvTimeout(n, slice); ok {
					if env, ok := v.(envelope); ok {
						px.handle(env)
					} else {
						// A bare collective payload from a neighbour that
						// already finished this exchange and moved on —
						// keep it for the collective's own Recv.
						r.oobPut(n, v)
					}
				}
			}
			// Neighbour graphs may differ between exchanges: a peer that
			// was our neighbour last round can still be retransmitting
			// data whose ack we dropped, and nothing else drains its
			// mailbox while we sit here. Sweep non-neighbour mailboxes
			// without blocking; handle() re-acks old-seq data and serves
			// resends, which is exactly what a starved peer needs.
			for from := 0; from < r.W.size; from++ {
				if from == r.ID || nbr[from] {
					continue
				}
				for {
					var v interface{}
					ok := false
					select {
					case v = <-r.W.mail[r.ID][from]:
						ok = true
					default:
					}
					if !ok {
						break
					}
					if env, isEnv := v.(envelope); isEnv {
						px.handle(env)
					} else {
						r.oobPut(from, v)
					}
				}
			}
		}
		if len(px.pending) == 0 && len(px.unacked) == 0 {
			sc.Timer("exchange").Stop(px.telStart)
			sc.Counter("exchanges").Inc()
			if attempts > 0 {
				sc.Counter("recovered_exchanges").Inc()
			}
			return px.got, nil
		}
		if attempts >= px.pol.MaxRetries {
			break
		}
		attempts++
		sc.Counter("retries").Inc()
		// Retransmit our data to neighbours that have not acked, and
		// request resends from neighbours we have not heard from.
		for n := range px.unacked {
			if sent, ok := r.hist[px.seq]; ok {
				r.sendEnvelope(n, r.dataEnvelope(px.seq, sent[n]))
			}
		}
		for n := range px.pending {
			r.sendEnvelope(n, envelope{Kind: envResend, Seq: px.seq, From: r.ID})
		}
		timeout = time.Duration(float64(timeout) * px.pol.Backoff)
	}
	sc.Timer("exchange").Stop(px.telStart)
	sc.Counter("exchange_failures").Inc()
	err := &ExchangeError{Rank: r.ID, Seq: px.seq, Attempts: attempts + 1}
	for n := range px.pending {
		err.MissingData = append(err.MissingData, n)
	}
	for n := range px.unacked {
		err.MissingAcks = append(err.MissingAcks, n)
	}
	sort.Ints(err.MissingData)
	sort.Ints(err.MissingAcks)
	return nil, err
}
