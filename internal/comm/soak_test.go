package comm

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"ptatin3d/internal/telemetry"
)

// Soak test for the reliable exchange protocol at the rank counts of
// the PR 6 scaling sweep: 64 ranks, many rounds of deterministic but
// skewed neighbour graphs, with drop/delay/corrupt fault injection, and
// tree allreduces interleaved between exchanges so late protocol
// envelopes (the PR 5 oob-queue regression surface) land in the middle
// of raw collectives. Run under -race by scripts/check.sh. Passing
// means: no deadlock, every payload delivered pristine, every allreduce
// bit-exact on every rank.

// soakGraph returns rank self's neighbour set in round m over n ranks:
// a symmetric circulant pair (±offset, the offset varying per round) plus
// a per-round hub rank connected to everyone — the hub's 63-neighbour
// fan-in is the skew that stresses one mailbox the way the coarse
// gather does.
func soakGraph(n, self, m int) []int {
	offset := 1 + (m*7+3)%(n-1)
	hub := (m * 13) % n
	set := map[int]bool{
		(self + offset) % n:     true,
		(self - offset + n) % n: true,
	}
	if self != hub {
		set[hub] = true
	} else {
		for r := 0; r < n; r++ {
			if r != self {
				set[r] = true
			}
		}
	}
	delete(set, self)
	nbrs := make([]int, 0, len(set))
	for r := 0; r < n; r++ {
		if set[r] {
			nbrs = append(nbrs, r)
		}
	}
	return nbrs
}

func TestSoakReliableExchange64Ranks(t *testing.T) {
	const n = 64
	rounds := 24
	if testing.Short() {
		rounds = 6
	}
	w := NewWorld(n)
	fp := &FaultPlan{
		Seed:        42,
		DropProb:    0.02,
		MaxDrops:    150,
		DelayProb:   0.02,
		MaxDelay:    2 * time.Millisecond,
		MaxDelays:   150,
		CorruptProb: 0.01,
		MaxCorrupts: 40,
	}
	w.SetFaultPlan(fp)
	// 64 goroutines share the host cores, so individual acks can be
	// slow without anything being wrong: generous per-attempt timeout,
	// enough retries to ride out the whole fault budget.
	pol := RetryPolicy{Timeout: 100 * time.Millisecond, MaxRetries: 12, Backoff: 1.5}
	reg := telemetry.New()

	var mu sync.Mutex
	var failures []error
	w.Run(func(r *Rank) {
		sc := reg.Root().Child("soak").Child(fmt.Sprintf("rank%d", r.ID))
		d := &Dist{R: r, Pol: pol, Sc: sc}
		for m := 0; m < rounds; m++ {
			nbrs := soakGraph(n, r.ID, m)
			payload := map[int]interface{}{}
			for _, nb := range nbrs {
				payload[nb] = testPayload(r.ID, nb, m)
			}
			got, err := r.ExchangeReliable(nbrs, payload, pol, sc)
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Errorf("rank %d round %d: %w", r.ID, m, err))
				mu.Unlock()
				return
			}
			checkReceived(t, r.ID, m, got, nbrs)
			// Interleave a raw collective every few rounds: delayed
			// envelopes from the exchange above may arrive mid-allreduce
			// and must be stashed, not consumed as reduction blocks.
			if m%3 == 2 {
				x := []float64{arValue(r.ID, 0, m), arValue(r.ID, 1, m)}
				got := d.AllReduceSumVec(x)
				want := make([]float64, 2)
				for rank := 0; rank < n; rank++ {
					want[0] += arValue(rank, 0, m)
					want[1] += arValue(rank, 1, m)
				}
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						mu.Lock()
						failures = append(failures, fmt.Errorf(
							"rank %d round %d: allreduce slot %d: got %x want %x",
							r.ID, m, i, math.Float64bits(got[i]), math.Float64bits(want[i])))
						mu.Unlock()
						return
					}
				}
			}
		}
	})
	for _, err := range failures {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if fp.Drops() == 0 && fp.Delays() == 0 && fp.Corruptions() == 0 {
		t.Fatal("soak ran without a single injected fault — fault plan not exercised")
	}
	var retries int64
	for rk := 0; rk < n; rk++ {
		retries += reg.Root().Child("soak").Child(fmt.Sprintf("rank%d", rk)).Counter("retries").Value()
	}
	if fp.Drops() > 0 && retries == 0 {
		t.Error("drops were injected but no retry was ever recorded")
	}
	t.Logf("soak: %d rounds, drops=%d delays=%d corruptions=%d retries=%d",
		rounds, fp.Drops(), fp.Delays(), fp.Corruptions(), retries)
}
