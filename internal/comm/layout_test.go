package comm

import (
	"errors"
	"math/rand"
	"testing"

	"ptatin3d/internal/mesh"
)

// TestNewDecompRejectsBadShapes: decompositions with non-positive part
// counts or more ranks than elements along an axis must fail with a
// typed *DecompError instead of producing empty slabs (regression: the
// oversubscribed case used to be accepted only because of a separate
// bound check; both paths must yield the typed error).
func TestNewDecompRejectsBadShapes(t *testing.T) {
	da := mesh.New(4, 3, 2, 0, 1, 0, 1, 0, 1)
	cases := []struct{ px, py, pz int }{
		{0, 1, 1}, {1, -1, 1}, {1, 1, 0},
		{5, 1, 1}, {1, 4, 1}, {1, 1, 3}, {8, 8, 8},
	}
	for _, c := range cases {
		_, err := NewDecomp(da, c.px, c.py, c.pz)
		if err == nil {
			t.Fatalf("NewDecomp(%dx%dx%d) on 4x3x2 grid: expected error, got nil", c.px, c.py, c.pz)
		}
		var de *DecompError
		if !errors.As(err, &de) {
			t.Fatalf("NewDecomp(%dx%dx%d): error %v is not a *DecompError", c.px, c.py, c.pz, err)
		}
		if de.Px != c.px || de.Py != c.py || de.Pz != c.pz || de.Mx != 4 || de.My != 3 || de.Mz != 2 {
			t.Fatalf("DecompError fields %+v do not echo the request %dx%dx%d", de, c.px, c.py, c.pz)
		}
	}
	if _, err := NewDecomp(da, 4, 3, 2); err != nil {
		t.Fatalf("maximal valid decomposition rejected: %v", err)
	}

	// The issue's canonical oversubscription: 16 ranks on an 8-element
	// axis (an otherwise plausible 512-rank-era configuration) must be
	// rejected along every axis.
	da8 := mesh.New(8, 8, 8, 0, 1, 0, 1, 0, 1)
	for _, c := range []struct{ px, py, pz int }{
		{16, 1, 1}, {1, 16, 1}, {1, 1, 16}, {16, 16, 16},
	} {
		_, err := NewDecomp(da8, c.px, c.py, c.pz)
		var de *DecompError
		if !errors.As(err, &de) {
			t.Fatalf("NewDecomp(%dx%dx%d) on 8x8x8 grid: want *DecompError, got %v", c.px, c.py, c.pz, err)
		}
	}
	if _, err := NewDecomp(da8, 8, 8, 8); err != nil {
		t.Fatalf("8x8x8 ranks on 8x8x8 elements must be accepted: %v", err)
	}
}

// TestNodeOwnershipProperty: randomized-decomp property test. For every
// Q2 node: exactly one rank's owned box contains it, that rank agrees
// with the element-based NodeOwner convention, and the owner is within
// the 26-neighbourhood of every rank whose elements touch the node.
func TestNodeOwnershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		mx, my, mz := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		da := mesh.New(mx, my, mz, 0, 1, 0, 1, 0, 1)
		px, py, pz := 1+rng.Intn(mx), 1+rng.Intn(my), 1+rng.Intn(mz)
		d, err := NewDecomp(da, px, py, pz)
		if err != nil {
			t.Fatalf("trial %d: NewDecomp(%dx%dx%d on %dx%dx%d): %v", trial, px, py, pz, mx, my, mz, err)
		}
		layouts := make([]*Layout, d.Size())
		for r := 0; r < d.Size(); r++ {
			layouts[r] = NewLayout(d, r)
		}
		// touchedBy[node] = set of ranks with an element containing node.
		touchedBy := make([]map[int]bool, da.NNodes())
		var nodes [27]int32
		for r := 0; r < d.Size(); r++ {
			for _, e := range d.LocalElements(r) {
				da.ElemNodes(e, &nodes)
				for _, n := range nodes {
					if touchedBy[n] == nil {
						touchedBy[n] = map[int]bool{}
					}
					touchedBy[n][r] = true
				}
			}
		}
		for n := 0; n < da.NNodes(); n++ {
			owners := 0
			boxOwner := -1
			for r := 0; r < d.Size(); r++ {
				if layouts[r].OwnsNode(n) {
					owners++
					boxOwner = r
				}
			}
			if owners != 1 {
				t.Fatalf("trial %d (%dx%dx%d / %dx%dx%d): node %d has %d box owners",
					trial, mx, my, mz, px, py, pz, n, owners)
			}
			if eo := d.NodeOwner(n); eo != boxOwner {
				t.Fatalf("trial %d: node %d: box owner %d != element-convention owner %d",
					trial, n, boxOwner, eo)
			}
			for r := range touchedBy[n] {
				if r == boxOwner {
					continue
				}
				inNbhd := false
				for _, nb := range d.Neighbors(r) {
					if nb == boxOwner {
						inNbhd = true
						break
					}
				}
				if !inNbhd {
					t.Fatalf("trial %d: node %d owner %d not in 26-neighbourhood of touching rank %d",
						trial, n, boxOwner, r)
				}
			}
		}
	}
}

// TestLayoutExchangeLists: ghost/mirror lists must be mutually
// consistent (Ghost[n] on r equals Mirror[r] on n, element for
// element), ghost nodes must be owned by the listed neighbour, and the
// interior/boundary element split must be exact: interior elements
// touch only owned nodes, boundary elements at least one foreign node.
func TestLayoutExchangeLists(t *testing.T) {
	da := mesh.New(5, 4, 3, 0, 1, 0, 1, 0, 1)
	d, err := NewDecomp(da, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	layouts := make([]*Layout, d.Size())
	for r := 0; r < d.Size(); r++ {
		layouts[r] = NewLayout(d, r)
	}
	var nodes [27]int32
	for r := 0; r < d.Size(); r++ {
		l := layouts[r]
		if len(l.Interior)+len(l.Boundary) != len(l.Elems) {
			t.Fatalf("rank %d: interior %d + boundary %d != elems %d",
				r, len(l.Interior), len(l.Boundary), len(l.Elems))
		}
		for _, e := range l.Interior {
			da.ElemNodes(e, &nodes)
			for _, n := range nodes {
				if !l.OwnsNode(int(n)) {
					t.Fatalf("rank %d: interior element %d touches foreign node %d", r, e, n)
				}
			}
		}
		for _, e := range l.Boundary {
			da.ElemNodes(e, &nodes)
			foreign := false
			for _, n := range nodes {
				if !l.OwnsNode(int(n)) {
					foreign = true
					break
				}
			}
			if !foreign {
				t.Fatalf("rank %d: boundary element %d touches only owned nodes", r, e)
			}
		}
		for _, nb := range l.Neighbors {
			g, m := l.Ghost[nb], layouts[nb].Mirror[r]
			if len(g) != len(m) {
				t.Fatalf("rank %d ghost[%d] len %d != rank %d mirror[%d] len %d",
					r, nb, len(g), nb, r, len(m))
			}
			for i := range g {
				if g[i] != m[i] {
					t.Fatalf("rank %d ghost[%d][%d]=%d != rank %d mirror[%d][%d]=%d",
						r, nb, i, g[i], nb, r, i, m[i])
				}
				if !layouts[nb].OwnsNode(int(g[i])) {
					t.Fatalf("rank %d ghost node %d not owned by neighbour %d", r, g[i], nb)
				}
			}
		}
	}
}
