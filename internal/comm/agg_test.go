package comm

import "testing"

// TestAggTopology: blocks must tile [0, Size) contiguously, every
// rank's root must be the first rank of its block, and the member lists
// must partition the non-root ranks — for even and uneven divisions,
// including the degenerate Roots==1 (legacy topology) and Roots==Size
// (fully redundant) corners.
func TestAggTopology(t *testing.T) {
	cases := []struct{ size, roots int }{
		{1, 1}, {8, 1}, {8, 2}, {8, 4}, {8, 8},
		{10, 4}, {13, 5}, {64, 8}, {512, 8}, {512, 64},
	}
	for _, c := range cases {
		a, err := NewAgg(c.size, c.roots)
		if err != nil {
			t.Fatalf("NewAgg(%d,%d): %v", c.size, c.roots, err)
		}
		seen := make([]int, c.size) // how many blocks claim each rank
		roots := a.RootList()
		if len(roots) != c.roots {
			t.Fatalf("agg(%d,%d): %d roots listed", c.size, c.roots, len(roots))
		}
		for g := 0; g < c.roots; g++ {
			root := a.Root(g)
			if !a.IsRoot(root) || a.Block(root) != g {
				t.Fatalf("agg(%d,%d): root %d of block %d inconsistent", c.size, c.roots, root, g)
			}
			if roots[g] != root {
				t.Fatalf("agg(%d,%d): RootList[%d] = %d, Root(%d) = %d", c.size, c.roots, g, roots[g], g, root)
			}
			seen[root]++
			for _, m := range a.Members(g) {
				if a.Block(m) != g {
					t.Fatalf("agg(%d,%d): member %d of block %d maps to block %d", c.size, c.roots, m, g, a.Block(m))
				}
				if a.IsRoot(m) {
					t.Fatalf("agg(%d,%d): member %d of block %d is a root", c.size, c.roots, m, g)
				}
				seen[m]++
			}
		}
		for rank, n := range seen {
			if n != 1 {
				t.Fatalf("agg(%d,%d): rank %d claimed by %d blocks", c.size, c.roots, rank, n)
			}
		}
	}
}

// TestAggRejectsBadShapes: root counts outside [1, size] must fail.
func TestAggRejectsBadShapes(t *testing.T) {
	for _, c := range []struct{ size, roots int }{
		{0, 1}, {8, 0}, {8, -1}, {8, 9},
	} {
		if _, err := NewAgg(c.size, c.roots); err == nil {
			t.Fatalf("NewAgg(%d,%d): expected error", c.size, c.roots)
		}
	}
}
