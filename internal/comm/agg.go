package comm

import "fmt"

// Coarse-level agglomeration (paper §III-C / PETSc PCTELESCOPE,
// PCREDUNDANT): at 512 ranks the all-ranks GatherSolveBroadcast coarse
// solve serializes P−1 exchanges through rank 0's mailbox every
// V-cycle. Agg instead partitions the world into contiguous blocks,
// each with a root rank; coarse right-hand sides funnel block-locally
// to the roots, the roots share their combined blocks among themselves
// (a much smaller all-gather), every root runs the coarse solve
// redundantly — identical inputs, identical outputs, no result
// exchange between roots — and each root broadcasts the solution to
// its block. Idle client ranks may overlap work (e.g. the next halo
// post) while the roots solve.
//
// Every phase is one collective reliable exchange issued by EVERY rank
// (non-participants pass empty neighbour lists), keeping the per-rank
// exchange sequence numbers aligned across the world.

// Agg describes an agglomeration of `Size` ranks onto `Roots` coarse
// sub-solvers: block g covers ranks [g·Size/Roots, (g+1)·Size/Roots),
// rooted at its first rank. Roots == 1 reproduces the all-to-root
// topology; Roots == Size makes every rank a redundant solver.
type Agg struct {
	Size  int
	Roots int
}

// NewAgg validates and builds an agglomeration layout.
func NewAgg(size, roots int) (*Agg, error) {
	if size < 1 {
		return nil, fmt.Errorf("comm: agg world size %d < 1", size)
	}
	if roots < 1 || roots > size {
		return nil, fmt.Errorf("comm: agg root count %d outside [1, %d]", roots, size)
	}
	return &Agg{Size: size, Roots: roots}, nil
}

// Block returns the block index of a rank.
func (a *Agg) Block(rank int) int {
	return (rank*a.Roots + a.Roots - 1) / a.Size
}

// Root returns the root rank of block g.
func (a *Agg) Root(g int) int { return g * a.Size / a.Roots }

// IsRoot reports whether rank is a block root.
func (a *Agg) IsRoot(rank int) bool { return a.Root(a.Block(rank)) == rank }

// Members returns the non-root ranks of block g.
func (a *Agg) Members(g int) []int {
	lo, hi := g*a.Size/a.Roots, (g+1)*a.Size/a.Roots
	out := make([]int, 0, hi-lo-1)
	for r := lo + 1; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// RootList returns all block roots in ascending order.
func (a *Agg) RootList() []int {
	out := make([]int, a.Roots)
	for g := range out {
		out[g] = a.Root(g)
	}
	return out
}

// AggGatherSolveBroadcast runs the agglomerated coarse solve: the owned
// velocity entries of b funnel to the block roots and then across the
// root group, so every root holds a globally valid b; every root runs
// solve (which must read b, write x, and produce identical results on
// identical inputs — callers serialize any shared solver state); each
// root broadcasts x to its block. On return x is globally valid on
// every rank. overlap (if non-nil) runs on client ranks while the roots
// are gathering and solving — the idle-rank latency-hiding hook.
func (d *Dist) AggGatherSolveBroadcast(a *Agg, b, x []float64, solve func(), overlap func()) error {
	r := d.R
	if a.Size != r.W.Size() {
		return fmt.Errorf("comm: agg layout sized for %d ranks in a %d-rank world", a.Size, r.W.Size())
	}
	if a.Roots == 1 && a.Size == 1 {
		solve()
		return nil
	}
	g := a.Block(r.ID)
	root := a.Root(g)

	if r.ID != root {
		// Client: ship owned entries to the block root, overlap while
		// the root group gathers and solves, then take the solution.
		own := d.L.OwnedNodes()
		pk := &haloPacket{Node: own, Val: make([]float64, 0, 3*len(own))}
		for _, node := range own {
			pk.Val = append(pk.Val, b[3*node], b[3*node+1], b[3*node+2])
		}
		d.countPacket(pk)
		d.chargeCoarse(4*len(pk.Node) + 8*len(pk.Val))
		if _, err := r.ExchangeReliable([]int{root}, map[int]interface{}{root: pk}, d.Pol, d.Sc); err != nil {
			return fmt.Errorf("comm: agg block gather: %w", err)
		}
		// Root-group all-gather: clients sit it out (empty exchange
		// keeps sequence numbers aligned).
		if _, err := r.ExchangeReliable(nil, nil, d.Pol, d.Sc); err != nil {
			return fmt.Errorf("comm: agg root gather: %w", err)
		}
		px := r.StartExchange([]int{root}, map[int]interface{}{root: &haloPacket{}}, d.Pol, d.Sc)
		if overlap != nil {
			overlap()
		}
		sol, err := px.Wait()
		if err != nil {
			return fmt.Errorf("comm: agg solution broadcast: %w", err)
		}
		copy(x, sol[root].(*vecPacket).Val)
		return nil
	}

	// Root: gather the block members' owned entries...
	members := a.Members(g)
	payload := map[int]interface{}{}
	for _, m := range members {
		payload[m] = &haloPacket{}
	}
	recv, err := r.ExchangeReliable(members, payload, d.Pol, d.Sc)
	if err != nil {
		return fmt.Errorf("comm: agg block gather: %w", err)
	}
	// ...combine them with our own into one block packet...
	comb := &haloPacket{}
	appendOwned := func(nodes []int32, vals []float64) {
		comb.Node = append(comb.Node, nodes...)
		comb.Val = append(comb.Val, vals...)
	}
	own := d.L.OwnedNodes()
	vals := make([]float64, 0, 3*len(own))
	for _, node := range own {
		vals = append(vals, b[3*node], b[3*node+1], b[3*node+2])
	}
	appendOwned(own, vals)
	for _, m := range members {
		pk := recv[m].(*haloPacket)
		appendOwned(pk.Node, pk.Val)
		// Scatter into our b as we go: the root's b must be globally
		// valid before solve.
		for i, node := range pk.Node {
			b[3*node] = pk.Val[3*i]
			b[3*node+1] = pk.Val[3*i+1]
			b[3*node+2] = pk.Val[3*i+2]
		}
	}
	// ...and all-gather the block packets across the root group.
	roots := a.RootList()
	others := make([]int, 0, len(roots)-1)
	rp := map[int]interface{}{}
	for _, rt := range roots {
		if rt != r.ID {
			others = append(others, rt)
			rp[rt] = comb
		}
	}
	if len(others) > 0 {
		d.Sc.Counter("halo_msgs").Add(int64(len(others)))
		d.Sc.Counter("halo_bytes").Add(int64(len(others) * (4*len(comb.Node) + 8*len(comb.Val))))
		d.chargeCoarse(len(others) * (4*len(comb.Node) + 8*len(comb.Val)))
	}
	rrecv, err := r.ExchangeReliable(others, rp, d.Pol, d.Sc)
	if err != nil {
		return fmt.Errorf("comm: agg root gather: %w", err)
	}
	for _, rt := range others {
		pk := rrecv[rt].(*haloPacket)
		for i, node := range pk.Node {
			b[3*node] = pk.Val[3*i]
			b[3*node+1] = pk.Val[3*i+1]
			b[3*node+2] = pk.Val[3*i+2]
		}
	}

	// Redundant solve: every root computes the identical solution, so
	// roots never need to exchange results.
	solve()

	// Broadcast the solution to the block (deep copy: receivers unpack
	// after our exchange completes, and the caller may mutate x first).
	bp := map[int]interface{}{}
	if len(members) > 0 {
		out := &vecPacket{Val: append([]float64(nil), x...)}
		for _, m := range members {
			bp[m] = out
		}
		d.Sc.Counter("halo_msgs").Add(int64(len(members)))
		d.Sc.Counter("halo_bytes").Add(int64(len(members) * 8 * len(x)))
		d.chargeCoarse(len(members) * 8 * len(x))
	}
	if _, err := r.ExchangeReliable(members, bp, d.Pol, d.Sc); err != nil {
		return fmt.Errorf("comm: agg solution broadcast: %w", err)
	}
	return nil
}
