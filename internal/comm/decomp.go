package comm

import (
	"fmt"

	"ptatin3d/internal/mesh"
)

// Decomp is a Px×Py×Pz Cartesian decomposition of the element grid among
// ranks (paper §II-D: "spatially decomposing the structured Q2 finite
// element mesh ... into structured subdomains"). Material points are
// owned by the rank whose subdomain contains their element.
type Decomp struct {
	DA         *mesh.DA
	Px, Py, Pz int
	// xb, yb, zb hold the element-range boundaries per direction:
	// part i owns [xb[i], xb[i+1]).
	xb, yb, zb []int
}

// DecompError reports an invalid rank decomposition: non-positive part
// counts, or more ranks along an axis than elements (which would produce
// empty slabs with zero-width ElementRange and degenerate Neighbors).
type DecompError struct {
	Px, Py, Pz int
	Mx, My, Mz int
	Reason     string
}

// Error implements the error interface.
func (e *DecompError) Error() string {
	return fmt.Sprintf("comm: decomposition %dx%dx%d of element grid %dx%dx%d: %s",
		e.Px, e.Py, e.Pz, e.Mx, e.My, e.Mz, e.Reason)
}

// NewDecomp splits the mesh into px×py×pz subdomains. Element counts per
// part differ by at most one. Decompositions with non-positive part
// counts, or with more ranks along an axis than elements, are rejected
// with a typed *DecompError.
func NewDecomp(da *mesh.DA, px, py, pz int) (*Decomp, error) {
	if px < 1 || py < 1 || pz < 1 {
		return nil, &DecompError{Px: px, Py: py, Pz: pz, Mx: da.Mx, My: da.My, Mz: da.Mz,
			Reason: "part counts must be >= 1"}
	}
	if px > da.Mx || py > da.My || pz > da.Mz {
		return nil, &DecompError{Px: px, Py: py, Pz: pz, Mx: da.Mx, My: da.My, Mz: da.Mz,
			Reason: "more ranks along an axis than elements (empty slabs)"}
	}
	split := func(m, p int) []int {
		b := make([]int, p+1)
		for i := 0; i <= p; i++ {
			b[i] = i * m / p
		}
		return b
	}
	return &Decomp{DA: da, Px: px, Py: py, Pz: pz,
		xb: split(da.Mx, px), yb: split(da.My, py), zb: split(da.Mz, pz)}, nil
}

// Size returns the number of ranks.
func (d *Decomp) Size() int { return d.Px * d.Py * d.Pz }

// RankID maps part coordinates to a rank id.
func (d *Decomp) RankID(pi, pj, pk int) int { return (pk*d.Py+pj)*d.Px + pi }

// RankIJK inverts RankID.
func (d *Decomp) RankIJK(r int) (pi, pj, pk int) {
	pi = r % d.Px
	pj = (r / d.Px) % d.Py
	pk = r / (d.Px * d.Py)
	return
}

// partOf returns the part index owning element index e along a direction
// with boundaries b.
func partOf(b []int, e int) int {
	for i := 0; i < len(b)-1; i++ {
		if e < b[i+1] {
			return i
		}
	}
	return len(b) - 2
}

// RankOfElement returns the rank owning element e.
func (d *Decomp) RankOfElement(e int) int {
	ei, ej, ek := d.DA.ElemIJK(e)
	return d.RankID(partOf(d.xb, ei), partOf(d.yb, ej), partOf(d.zb, ek))
}

// ElementRange returns the element index bounds [ilo,ihi)×[jlo,jhi)×
// [klo,khi) of rank r's subdomain.
func (d *Decomp) ElementRange(r int) (ilo, ihi, jlo, jhi, klo, khi int) {
	pi, pj, pk := d.RankIJK(r)
	return d.xb[pi], d.xb[pi+1], d.yb[pj], d.yb[pj+1], d.zb[pk], d.zb[pk+1]
}

// LocalElements returns the global element ids owned by rank r.
func (d *Decomp) LocalElements(r int) []int {
	ilo, ihi, jlo, jhi, klo, khi := d.ElementRange(r)
	out := make([]int, 0, (ihi-ilo)*(jhi-jlo)*(khi-klo))
	for k := klo; k < khi; k++ {
		for j := jlo; j < jhi; j++ {
			for i := ilo; i < ihi; i++ {
				out = append(out, d.DA.ElemID(i, j, k))
			}
		}
	}
	return out
}

// Neighbors returns the ranks adjacent to r in the 26-neighbourhood of
// the Cartesian rank grid (the set a migrating material point can reach
// in one step, paper §II-D).
func (d *Decomp) Neighbors(r int) []int {
	pi, pj, pk := d.RankIJK(r)
	var out []int
	for dk := -1; dk <= 1; dk++ {
		for dj := -1; dj <= 1; dj++ {
			for di := -1; di <= 1; di++ {
				if di == 0 && dj == 0 && dk == 0 {
					continue
				}
				ni, nj, nk := pi+di, pj+dj, pk+dk
				if ni < 0 || ni >= d.Px || nj < 0 || nj >= d.Py || nk < 0 || nk >= d.Pz {
					continue
				}
				out = append(out, d.RankID(ni, nj, nk))
			}
		}
	}
	return out
}
