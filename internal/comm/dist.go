package comm

import (
	"fmt"
	"math/rand"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/telemetry"
)

// Rank-distributed operator application (paper §II-D): each rank applies
// the matrix-free viscous kernel over its own element block, then partial
// sums on subdomain-boundary nodes are reduced to the node's owner and
// broadcast back — the halo-exchange pattern of the original MPI code,
// realized over the simulated rank fabric.
//
// Node ownership follows the usual DMDA convention: a node belongs to the
// rank owning the lowest-indexed element whose support contains it, which
// is always either this rank or one of its 26 neighbours.

// haloPacket carries partial nodal sums (or owner totals) between ranks.
type haloPacket struct {
	Node []int32
	Val  []float64 // 3 per node
}

// Checksum64 implements Checksummer so the reliable exchange can detect
// in-flight corruption of halo payloads.
func (pk *haloPacket) Checksum64() uint64 {
	h := HashInt32s(HashSeed, pk.Node)
	return HashFloats(h, pk.Val)
}

// CorruptCopy implements Corrupter: a deep copy with one value flipped
// (or, for empty packets, a spurious node entry added).
func (pk *haloPacket) CorruptCopy(rng *rand.Rand) interface{} {
	c := &haloPacket{
		Node: append([]int32(nil), pk.Node...),
		Val:  append([]float64(nil), pk.Val...),
	}
	if len(c.Val) > 0 {
		i := rng.Intn(len(c.Val))
		c.Val[i] = c.Val[i]*1.5 + 1
	} else {
		c.Node = append(c.Node, int32(rng.Intn(1<<20)))
		c.Val = append(c.Val, rng.Float64(), rng.Float64(), rng.Float64())
	}
	return c
}

// ownerElem returns the lowest element index whose support contains Q2
// grid node (i,j,k).
func ownerElem(d *Decomp, i, j, k int) int {
	lo := func(idx int) int {
		if idx%2 == 1 {
			return (idx - 1) / 2
		}
		e := idx/2 - 1
		if e < 0 {
			e = 0
		}
		return e
	}
	return d.DA.ElemID(lo(i), lo(j), lo(k))
}

// NodeOwner returns the rank owning the given Q2 node.
func (d *Decomp) NodeOwner(n int) int {
	i, j, k := d.DA.NodeIJK(n)
	return d.RankOfElement(ownerElem(d, i, j, k))
}

// DistributedViscousApply computes y = J_uu·u with rank-distributed
// element loops: rank r zeroes its rank-private buffer y (like every
// other apply path — callers must not rely on accumulation), applies
// the tensor kernel over its elements, ships partial sums of non-owned
// boundary nodes to their owners, receives and accumulates partials for
// nodes it owns, applies the Dirichlet identity on owned rows, and
// finally receives owner totals back for its ghost nodes. On return, y
// is correct at every node touched by rank r's elements (and zero
// elsewhere).
//
// All ranks of the world must call this collectively with the same
// decomposition and problem.
//
// Both halo exchanges run over the reliable protocol (ExchangeReliable)
// using the world's retry policy, so injected message drops, corruption
// and peer stalls are retried; an exchange that cannot complete within
// the retry budget aborts the application with a typed error wrapping
// *ExchangeError rather than deadlocking. sc (nilable) receives the
// exchange telemetry.
func DistributedViscousApply(r *Rank, d *Decomp, prob *fem.Problem, op *fem.TensorOp, u, y la.Vec, sc *telemetry.Scope) error {
	mine := d.LocalElements(r.ID)
	y.Zero()
	op.ApplyElements(mine, u, y)

	// Classify the nodes this rank touched.
	touched := map[int32]bool{}
	var nodes [27]int32
	for _, e := range mine {
		d.DA.ElemNodes(e, &nodes)
		for _, n := range nodes {
			touched[n] = true
		}
	}
	nbrs := d.Neighbors(r.ID)
	// Partial sums for nodes owned elsewhere → packet per owner; also
	// remember which foreign-owned (ghost) nodes we need totals for.
	send := map[int]*haloPacket{}
	for _, n := range nbrs {
		send[n] = &haloPacket{}
	}
	for n := range touched {
		owner := d.NodeOwner(int(n))
		if owner == r.ID {
			continue
		}
		pk := send[owner]
		pk.Node = append(pk.Node, n)
		pk.Val = append(pk.Val, y[3*n], y[3*n+1], y[3*n+2])
	}
	payload := map[int]interface{}{}
	for _, n := range nbrs {
		payload[n] = send[n]
	}
	recv, err := r.ExchangeReliable(nbrs, payload, r.Policy(), sc)
	if err != nil {
		return fmt.Errorf("comm: halo partial-sum exchange: %w", err)
	}
	// Accumulate received partials into owned rows.
	for _, n := range nbrs {
		pk := recv[n].(*haloPacket)
		for i, node := range pk.Node {
			y[3*node] += pk.Val[3*i]
			y[3*node+1] += pk.Val[3*i+1]
			y[3*node+2] += pk.Val[3*i+2]
		}
	}
	// Dirichlet identity on owned constrained rows.
	for n := range touched {
		if d.NodeOwner(int(n)) != r.ID {
			continue
		}
		for c := 0; c < 3; c++ {
			if prob.BC.Mask[3*n+int32(c)] {
				y[3*n+int32(c)] = u[3*n+int32(c)]
			}
		}
	}
	// Return pass: owners send totals for the nodes each neighbour asked
	// about (the same node lists, reversed).
	back := map[int]interface{}{}
	for _, n := range nbrs {
		pk := recv[n].(*haloPacket)
		out := &haloPacket{Node: pk.Node, Val: make([]float64, 0, 3*len(pk.Node))}
		for _, node := range pk.Node {
			out.Val = append(out.Val, y[3*node], y[3*node+1], y[3*node+2])
		}
		back[n] = out
	}
	totals, err := r.ExchangeReliable(nbrs, back, r.Policy(), sc)
	if err != nil {
		return fmt.Errorf("comm: halo owner-total exchange: %w", err)
	}
	for _, n := range nbrs {
		pk := totals[n].(*haloPacket)
		for i, node := range pk.Node {
			y[3*node] = pk.Val[3*i]
			y[3*node+1] = pk.Val[3*i+1]
			y[3*node+2] = pk.Val[3*i+2]
		}
	}
	return nil
}
