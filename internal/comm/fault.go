package comm

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"ptatin3d/internal/telemetry"
)

// FaultPlan is a deterministic, seedable fault injector for the reliable
// exchange paths of the simulated rank fabric. It models the failure
// modes a long production run on thousands of cores actually sees:
// dropped and delayed halo-exchange messages, corrupted in-flight
// payloads, and a rank that stalls mid-collective. Injection happens on
// the send side of ExchangeReliable envelopes only — the legacy
// Send/Recv/Barrier/AllReduce primitives stay fault-free so collectives
// outside the hardened exchange paths keep their original semantics.
//
// Determinism: each sending rank draws from its own rand.Rand seeded
// from Seed and the rank id, and a rank's sends are sequential on its
// own goroutine, so the per-rank injection decision sequence is
// reproducible regardless of goroutine interleaving. Budgets (MaxDrops
// etc.) are shared atomically across ranks; with probability 1 and a
// finite budget the total injected fault count is exact.
type FaultPlan struct {
	Seed int64

	// DropProb is the probability a data/ack/resend envelope is silently
	// discarded on send. MaxDrops bounds the total number of drops
	// across all ranks (<= 0 means unlimited). Bounded drops guarantee
	// that retry eventually succeeds.
	DropProb float64
	MaxDrops int

	// DelayProb delays an envelope on the sender by a uniform duration
	// in (0, MaxDelay]; MaxDelays bounds the count (<= 0 unlimited).
	DelayProb float64
	MaxDelay  time.Duration
	MaxDelays int

	// CorruptProb replaces a data envelope's payload with a corrupted
	// copy while keeping the original checksum, so receivers must detect
	// the mismatch and request retransmission. Only payloads
	// implementing both Checksummer and Corrupter are corrupted.
	// MaxCorrupts bounds the count (<= 0 unlimited).
	CorruptProb float64
	MaxCorrupts int

	// StallRank, when StallDuration > 0, sleeps that rank once, at entry
	// of its StallExchange-th reliable exchange (0-based), simulating an
	// unresponsive rank that neighbours must ride out via retries.
	StallRank     int
	StallExchange int64
	StallDuration time.Duration

	// Telemetry, when non-nil, accumulates injected_drops /
	// injected_delays / injected_corruptions / injected_stalls counters.
	Telemetry *telemetry.Scope

	rngs      []*rand.Rand
	nDrops    atomic.Int64
	nDelays   atomic.Int64
	nCorrupts atomic.Int64
	nStalls   atomic.Int64
	stalled   atomic.Bool
}

// attach prepares the per-rank RNG streams for a world of n ranks.
func (fp *FaultPlan) attach(n int) {
	fp.rngs = make([]*rand.Rand, n)
	for r := 0; r < n; r++ {
		fp.rngs[r] = rand.New(rand.NewSource(fp.Seed*2654435761 + int64(r)))
	}
}

// Drops returns the number of injected message drops so far.
func (fp *FaultPlan) Drops() int64 { return fp.nDrops.Load() }

// Delays returns the number of injected message delays so far.
func (fp *FaultPlan) Delays() int64 { return fp.nDelays.Load() }

// Corruptions returns the number of injected payload corruptions so far.
func (fp *FaultPlan) Corruptions() int64 { return fp.nCorrupts.Load() }

// Stalls returns the number of injected rank stalls so far (0 or 1).
func (fp *FaultPlan) Stalls() int64 { return fp.nStalls.Load() }

// takeBudget consumes one unit of a shared fault budget; max <= 0 means
// unlimited.
func takeBudget(n *atomic.Int64, max int) bool {
	if max <= 0 {
		n.Add(1)
		return true
	}
	if n.Add(1) <= int64(max) {
		return true
	}
	n.Add(-1)
	return false
}

// filter applies the plan to an outgoing envelope from rank `from`,
// returning the (possibly corrupted) envelope and whether to deliver it.
func (fp *FaultPlan) filter(from int, env envelope) (envelope, bool) {
	rng := fp.rngs[from]
	if fp.DropProb > 0 && rng.Float64() < fp.DropProb && takeBudget(&fp.nDrops, fp.MaxDrops) {
		fp.Telemetry.Counter("injected_drops").Inc()
		return env, false
	}
	if fp.CorruptProb > 0 && env.Kind == envData && env.HasSum {
		if c, ok := env.Payload.(Corrupter); ok && rng.Float64() < fp.CorruptProb && takeBudget(&fp.nCorrupts, fp.MaxCorrupts) {
			env.Payload = c.CorruptCopy(rng)
			fp.Telemetry.Counter("injected_corruptions").Inc()
		}
	}
	if fp.DelayProb > 0 && fp.MaxDelay > 0 && rng.Float64() < fp.DelayProb && takeBudget(&fp.nDelays, fp.MaxDelays) {
		fp.Telemetry.Counter("injected_delays").Inc()
		time.Sleep(time.Duration(1 + rng.Int63n(int64(fp.MaxDelay))))
	}
	return env, true
}

// maybeStall sleeps once if this rank/exchange matches the stall spec.
func (fp *FaultPlan) maybeStall(rank int, seq int64) {
	if fp.StallDuration <= 0 || rank != fp.StallRank || seq != fp.StallExchange {
		return
	}
	if !fp.stalled.CompareAndSwap(false, true) {
		return
	}
	fp.nStalls.Add(1)
	fp.Telemetry.Counter("injected_stalls").Inc()
	time.Sleep(fp.StallDuration)
}

// Checksummer is implemented by exchange payloads that support integrity
// verification; the reliable exchange stamps the sum on data envelopes
// and receivers reject (and re-request) payloads whose sum mismatches.
type Checksummer interface {
	Checksum64() uint64
}

// Corrupter is implemented by payloads that support fault injection: it
// returns a corrupted deep copy, leaving the original intact so a
// retransmission carries pristine data.
type Corrupter interface {
	CorruptCopy(rng *rand.Rand) interface{}
}

// HashU64 folds v into the running FNV-1a style hash h. Seed with
// HashSeed. Exported so payload types in other packages can implement
// Checksummer consistently.
func HashU64(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// HashSeed is the initial value for HashU64 chains.
const HashSeed uint64 = 14695981039346656037

// HashFloats folds a float64 slice (bit patterns) into h.
func HashFloats(h uint64, xs []float64) uint64 {
	for _, x := range xs {
		h = HashU64(h, math.Float64bits(x))
	}
	return h
}

// HashInt32s folds an int32 slice into h.
func HashInt32s(h uint64, xs []int32) uint64 {
	for _, x := range xs {
		h = HashU64(h, uint64(uint32(x)))
	}
	return h
}
