package comm

import (
	"math"
	"sync"
	"testing"
)

// arValue is the deterministic per-rank contribution used by the tree
// allreduce tests: distinguishable across ranks, slots and rounds, and
// irrational enough that summation-order changes would flip bits.
func arValue(rank, slot, round int) float64 {
	return math.Sin(float64(1+rank)*1.7+float64(slot)*0.31) * math.Exp2(float64(round%7-3))
}

// TestAllReduceSumVecMatchesSerialGather: the binomial tree must return,
// on every rank, exactly the left-associated ascending-rank sum — the
// summation order of the legacy serial gather — for every world size
// (power of two or not) and batch width.
func TestAllReduceSumVecMatchesSerialGather(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13, 16} {
		for _, width := range []int{1, 3, 7} {
			want := make([]float64, width)
			for rank := 0; rank < size; rank++ { // ascending, left-associated
				for i := 0; i < width; i++ {
					want[i] += arValue(rank, i, 0)
				}
			}
			results := make([][]float64, size)
			w := NewWorld(size)
			w.Run(func(r *Rank) {
				d := &Dist{R: r}
				x := make([]float64, width)
				for i := range x {
					x[i] = arValue(r.ID, i, 0)
				}
				got := d.AllReduceSumVec(x)
				// Mutating the returned slice must not leak to any other
				// rank (the tree shares blocks read-only internally).
				got2 := append([]float64(nil), got...)
				for i := range got {
					got[i] = -1e300
				}
				results[r.ID] = got2
			})
			for rank := 0; rank < size; rank++ {
				for i := 0; i < width; i++ {
					if math.Float64bits(results[rank][i]) != math.Float64bits(want[i]) {
						t.Fatalf("size %d width %d: rank %d slot %d: got %x want %x",
							size, width, rank, i,
							math.Float64bits(results[rank][i]), math.Float64bits(want[i]))
					}
				}
			}
		}
	}
}

// TestAllReduceSumMatchesVec: the scalar wrapper is the width-1 tree.
func TestAllReduceSumMatchesVec(t *testing.T) {
	const size = 6
	var mu sync.Mutex
	vals := map[int]float64{}
	var want float64
	for rank := 0; rank < size; rank++ {
		want += arValue(rank, 0, 1)
	}
	w := NewWorld(size)
	w.Run(func(r *Rank) {
		d := &Dist{R: r}
		got := d.AllReduceSum(arValue(r.ID, 0, 1))
		mu.Lock()
		vals[r.ID] = got
		mu.Unlock()
	})
	for rank := 0; rank < size; rank++ {
		if math.Float64bits(vals[rank]) != math.Float64bits(want) {
			t.Fatalf("rank %d: got %v want %v", rank, vals[rank], want)
		}
	}
}
