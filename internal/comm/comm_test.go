package comm

import (
	"sync/atomic"
	"testing"

	"ptatin3d/internal/mesh"
)

func TestWorldSendRecv(t *testing.T) {
	w := NewWorld(4)
	var sum int64
	w.Run(func(r *Rank) {
		next := (r.ID + 1) % 4
		prev := (r.ID + 3) % 4
		r.Send(next, r.ID*10)
		v := r.Recv(prev).(int)
		atomic.AddInt64(&sum, int64(v))
	})
	if sum != 60 {
		t.Fatalf("ring sum = %d, want 60", sum)
	}
}

func TestWorldBarrierOrdering(t *testing.T) {
	w := NewWorld(8)
	var before, after int64
	w.Run(func(r *Rank) {
		atomic.AddInt64(&before, 1)
		r.Barrier()
		if atomic.LoadInt64(&before) != 8 {
			t.Errorf("rank %d passed barrier before all arrived", r.ID)
		}
		atomic.AddInt64(&after, 1)
		r.Barrier()
		r.Barrier() // reusable
	})
	if after != 8 {
		t.Fatalf("after = %d", after)
	}
}

func TestAllReduceSum(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(r *Rank) {
		got := r.AllReduceSum(float64(r.ID + 1))
		if got != 15 {
			t.Errorf("rank %d: sum = %v, want 15", r.ID, got)
		}
		// Second reduction with different values (phase reuse).
		got = r.AllReduceSum(1)
		if got != 5 {
			t.Errorf("rank %d: second sum = %v, want 5", r.ID, got)
		}
	})
}

func TestAllReduceMax(t *testing.T) {
	w := NewWorld(6)
	w.Run(func(r *Rank) {
		got := r.AllReduceMax(float64(r.ID * r.ID))
		if got != 25 {
			t.Errorf("rank %d: max = %v, want 25", r.ID, got)
		}
	})
}

func TestExchangeCounts(t *testing.T) {
	// 1-D chain of 3 ranks exchanging with adjacent ranks.
	w := NewWorld(3)
	w.Run(func(r *Rank) {
		var nbrs []int
		if r.ID > 0 {
			nbrs = append(nbrs, r.ID-1)
		}
		if r.ID < 2 {
			nbrs = append(nbrs, r.ID+1)
		}
		payload := map[int]interface{}{}
		for _, n := range nbrs {
			payload[n] = 100*r.ID + n
		}
		got := r.ExchangeCounts(nbrs, payload)
		for _, n := range nbrs {
			want := 100*n + r.ID
			if got[n].(int) != want {
				t.Errorf("rank %d from %d: got %v want %d", r.ID, n, got[n], want)
			}
		}
	})
}

func TestDecompPartition(t *testing.T) {
	da := mesh.New(8, 6, 4, 0, 1, 0, 1, 0, 1)
	d, err := NewDecomp(da, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 12 {
		t.Fatalf("size = %d", d.Size())
	}
	// Every element is owned by exactly one rank, consistent with
	// LocalElements.
	owner := make([]int, da.NElements())
	for i := range owner {
		owner[i] = -1
	}
	for r := 0; r < d.Size(); r++ {
		for _, e := range d.LocalElements(r) {
			if owner[e] != -1 {
				t.Fatalf("element %d owned twice", e)
			}
			owner[e] = r
		}
	}
	for e, o := range owner {
		if o == -1 {
			t.Fatalf("element %d unowned", e)
		}
		if d.RankOfElement(e) != o {
			t.Fatalf("RankOfElement(%d) = %d, want %d", e, d.RankOfElement(e), o)
		}
	}
}

func TestDecompNeighbors(t *testing.T) {
	da := mesh.New(4, 4, 4, 0, 1, 0, 1, 0, 1)
	d, err := NewDecomp(da, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Corner of a 2x2x2 rank grid sees all 7 other ranks.
	nbrs := d.Neighbors(0)
	if len(nbrs) != 7 {
		t.Fatalf("corner rank neighbours = %d, want 7", len(nbrs))
	}
	// Neighbour relation is symmetric.
	for r := 0; r < d.Size(); r++ {
		for _, n := range d.Neighbors(r) {
			found := false
			for _, b := range d.Neighbors(n) {
				if b == r {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric neighbours: %d -> %d", r, n)
			}
		}
	}
}

func TestDecompErrors(t *testing.T) {
	da := mesh.New(2, 2, 2, 0, 1, 0, 1, 0, 1)
	if _, err := NewDecomp(da, 0, 1, 1); err == nil {
		t.Fatal("expected error for zero parts")
	}
	if _, err := NewDecomp(da, 4, 1, 1); err == nil {
		t.Fatal("expected error for too many parts")
	}
}
