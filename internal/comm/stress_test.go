package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/par"
	"ptatin3d/internal/telemetry"
)

// TestConcurrentParAndHaloStress hammers the two parallel layers at once —
// the shared-memory worker pool (par.For) and the simulated-MPI halo
// exchange (DistributedViscousApply) — with telemetry recording from every
// goroutine. It runs in short mode by design: together with -race it is
// the tier-1 regression net for data races between the worker pool, the
// rank runtime and the telemetry instruments.
func TestConcurrentParAndHaloStress(t *testing.T) {
	reg := telemetry.New()
	par.SetTelemetry(reg.Root().Child("par"))
	defer par.SetTelemetry(nil)

	da := mesh.New(4, 4, 4, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.03*math.Sin(math.Pi*y), y, z + 0.02*x*y
	})
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	prob := fem.NewProblem(da, bc)
	prob.SetCoefficientsFunc(func(x, y, z float64) float64 {
		return math.Exp(math.Sin(3*x) * math.Cos(2*y))
	}, nil)

	n := da.NVelDOF()
	rng := rand.New(rand.NewSource(7))
	u := la.NewVec(n)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	ref := la.NewVec(n)
	fem.NewTensor(prob).Apply(u, ref)
	scale := ref.NormInf()

	d, err := NewDecomp(da, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}

	iters := 8
	if testing.Short() {
		iters = 3
	}

	var wg sync.WaitGroup

	// Shared-memory side: concurrent par.For sweeps with the pool's
	// occupancy telemetry live.
	parErr := make(chan string, 1)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters*4; it++ {
				var mu sync.Mutex
				total := 0
				par.For(4, 1000, func(lo, hi int) {
					mu.Lock()
					total += hi - lo
					mu.Unlock()
				})
				if total != 1000 {
					select {
					case parErr <- "par.For lost work":
					default:
					}
					return
				}
			}
		}()
	}

	// Nested-dispatch side: bodies already running on the pool call
	// par.For again with a different worker count — this is the pattern
	// the slab apply uses when an operator application runs inside a
	// rank body, and it must neither deadlock nor lose work.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters*2; it++ {
				var total int64
				var mu sync.Mutex
				par.For(2+g, 8, func(olo, ohi int) {
					for o := olo; o < ohi; o++ {
						par.For(3, 100, func(lo, hi int) {
							mu.Lock()
							total += int64(hi - lo)
							mu.Unlock()
						})
					}
				})
				if total != 800 {
					select {
					case parErr <- "nested par.For lost work":
					default:
					}
					return
				}
			}
		}(g)
	}

	// Distributed side: repeated halo-exchanged operator applications, each
	// rank recording into its own telemetry scope.
	mpmScope := reg.Root().Child("stress")
	var resMu sync.Mutex
	results := make([]la.Vec, d.Size())
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < iters; it++ {
			w := NewWorld(d.Size())
			w.Run(func(r *Rank) {
				sc := mpmScope.Child("rank" + string(rune('0'+r.ID)))
				stop := sc.Timer("apply").Start()
				y := la.NewVec(n)
				if err := DistributedViscousApply(r, d, prob, fem.NewTensor(prob), u, y, sc); err != nil {
					t.Errorf("rank %d: %v", r.ID, err)
				}
				sc.Timer("apply").Stop(stop)
				sc.Counter("applies").Inc()
				resMu.Lock()
				results[r.ID] = y
				resMu.Unlock()
			})
		}
	}()

	// Telemetry reader: concurrent snapshots while both sides record.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < iters*2; it++ {
			sn := reg.Root().Snapshot()
			if sn == nil {
				return
			}
		}
	}()

	wg.Wait()
	select {
	case msg := <-parErr:
		t.Fatal(msg)
	default:
	}

	// The distributed results must still be correct after the stress run.
	var nodes [27]int32
	for rid := 0; rid < d.Size(); rid++ {
		for _, e := range d.LocalElements(rid) {
			da.ElemNodes(e, &nodes)
			for _, nn := range nodes {
				for c := 0; c < 3; c++ {
					dd := 3*int(nn) + c
					if math.Abs(results[rid][dd]-ref[dd]) > 1e-11*scale {
						t.Fatalf("rank %d dof %d: %v, want %v", rid, dd, results[rid][dd], ref[dd])
					}
				}
			}
		}
	}
	// And the per-rank telemetry must account for every application.
	sn := reg.Root().Snapshot()
	for rid := 0; rid < d.Size(); rid++ {
		sc := sn.Find("stress", "rank"+string(rune('0'+rid)))
		if sc == nil || sc.Counters["applies"] != int64(iters) {
			t.Fatalf("rank %d telemetry lost applications: %+v", rid, sc)
		}
	}
}
