package comm

import (
	"fmt"
	"math/rand"

	"ptatin3d/internal/telemetry"
)

// Dist bundles a rank with a Layout into the per-rank handle of the
// distributed vector layer: owner-reduce/broadcast halo exchanges over
// the reliable channel protocol, deterministic rank-ordered AllReduce
// for dot products, and gather/broadcast collectives for the coarse
// solve. All methods are rank-collective: every rank of the world must
// call them in the same order with layouts of the same Decomp.
//
// Telemetry (Sc nilable): "halo_msgs"/"halo_bytes" counters for
// exchanged packets, an "allreduces" counter and "allreduce" timer for
// reductions, plus the reliable-exchange counters of ExchangeReliable.
type Dist struct {
	R   *Rank
	L   *Layout
	Pol RetryPolicy
	Sc  *telemetry.Scope
}

// NewDist builds rank r's distributed-vector handle over layout l.
func NewDist(r *Rank, l *Layout, sc *telemetry.Scope) *Dist {
	return &Dist{R: r, L: l, Pol: r.Policy(), Sc: sc}
}

// countPacket accounts one outgoing halo packet, charging the modeled
// fabric cost when an interconnect model is installed.
func (d *Dist) countPacket(pk *haloPacket) {
	bytes := 4*len(pk.Node) + 8*len(pk.Val)
	d.Sc.Counter("halo_msgs").Inc()
	d.Sc.Counter("halo_bytes").Add(int64(bytes))
	if f := d.R.W.fabric; f != nil {
		d.Sc.Counter("fabric_halo_ns").Add(f.MsgNs(bytes))
	}
}

// chargeCoarse accounts modeled fabric time for a coarse-solve message.
func (d *Dist) chargeCoarse(bytes int) {
	if f := d.R.W.fabric; f != nil {
		d.Sc.Counter("fabric_coarse_ns").Add(f.MsgNs(bytes))
	}
}

// vecPacket carries a full vector (root broadcast of the coarse solve).
type vecPacket struct {
	Val []float64
}

// Checksum64 implements Checksummer.
func (p *vecPacket) Checksum64() uint64 { return HashFloats(HashSeed, p.Val) }

// CorruptCopy implements Corrupter.
func (p *vecPacket) CorruptCopy(rng *rand.Rand) interface{} {
	c := &vecPacket{Val: append([]float64(nil), p.Val...)}
	if len(c.Val) > 0 {
		i := rng.Intn(len(c.Val))
		c.Val[i] = c.Val[i]*1.5 + 1
	} else {
		c.Val = append(c.Val, rng.Float64())
	}
	return c
}

// ReduceBroadcast completes a distributed additive apply on the
// velocity vector y: partial sums this rank holds at ghost nodes are
// shipped to their owners (first exchange), received partials are
// accumulated into owned rows in ascending neighbour order, fixup (if
// non-nil) runs on the now-complete owned values — the place for
// Dirichlet identity rows — and owner totals are broadcast back to
// every neighbour's ghost copies (second exchange).
//
// overlap (if non-nil) runs between starting the partial-sum exchange
// and waiting on it: the paper's §II-D latency hiding — the caller
// applies interior elements while boundary partials are in flight.
//
// y must be zero at every ghost node this rank's elements did not
// write (all apply paths zero y before scattering, so this holds for
// operator outputs); the extended ghost region may carry such zeros —
// they are shipped and accumulate harmlessly.
func (d *Dist) ReduceBroadcast(y []float64, overlap, fixup func()) error {
	l := d.L
	payload := map[int]interface{}{}
	for _, n := range l.Neighbors {
		gl := l.Ghost[n]
		pk := &haloPacket{Node: gl, Val: make([]float64, 0, 3*len(gl))}
		for _, node := range gl {
			pk.Val = append(pk.Val, y[3*node], y[3*node+1], y[3*node+2])
		}
		payload[n] = pk
		d.countPacket(pk)
	}
	px := d.R.StartExchange(l.Neighbors, payload, d.Pol, d.Sc)
	if overlap != nil {
		overlap()
	}
	recv, err := px.Wait()
	if err != nil {
		return fmt.Errorf("comm: halo partial-sum exchange: %w", err)
	}
	for _, n := range l.Neighbors {
		pk := recv[n].(*haloPacket)
		for i, node := range pk.Node {
			y[3*node] += pk.Val[3*i]
			y[3*node+1] += pk.Val[3*i+1]
			y[3*node+2] += pk.Val[3*i+2]
		}
	}
	if fixup != nil {
		fixup()
	}
	return d.Broadcast(y)
}

// Broadcast refreshes the ghost entries of y from their owners: each
// rank sends its owned values that neighbours read (Mirror lists) and
// overwrites its ghost copies with the received owner values. Used as
// the second half of ReduceBroadcast, and on its own to make an
// externally-assembled vector halo-consistent (krylov.Exchanger).
func (d *Dist) Broadcast(y []float64) error {
	l := d.L
	payload := map[int]interface{}{}
	for _, n := range l.Neighbors {
		ml := l.Mirror[n]
		pk := &haloPacket{Node: ml, Val: make([]float64, 0, 3*len(ml))}
		for _, node := range ml {
			pk.Val = append(pk.Val, y[3*node], y[3*node+1], y[3*node+2])
		}
		payload[n] = pk
		d.countPacket(pk)
	}
	recv, err := d.R.ExchangeReliable(l.Neighbors, payload, d.Pol, d.Sc)
	if err != nil {
		return fmt.Errorf("comm: halo owner-broadcast exchange: %w", err)
	}
	for _, n := range l.Neighbors {
		pk := recv[n].(*haloPacket)
		for i, node := range pk.Node {
			y[3*node] = pk.Val[3*i]
			y[3*node+1] = pk.Val[3*i+1]
			y[3*node+2] = pk.Val[3*i+2]
		}
	}
	return nil
}

// AllReduceSum returns the global sum of x with a deterministic
// reduction: every rank sees the bit-identical value regardless of
// goroutine scheduling (unlike Rank.AllReduceSum, which sums in arrival
// order). Implemented on the width-1 binomial tree of AllReduceSumVec —
// O(log P) depth with the exact ascending-rank summation order of the
// original serial gather. This is the channel-backed AllReduce under
// every distributed dot product/norm.
func (d *Dist) AllReduceSum(x float64) float64 {
	var buf [1]float64
	buf[0] = x
	return d.AllReduceSumVec(buf[:])[0]
}

// GatherSolveBroadcast runs a root-rank coarse solve: every rank ships
// the owned velocity entries of b to rank 0 over the reliable protocol,
// rank 0 — holding a globally valid b — runs solve (which must write
// x), and x is broadcast back whole. b and x are full-length vectors;
// on return x is globally valid on every rank.
func (d *Dist) GatherSolveBroadcast(b, x []float64, solve func()) error {
	r := d.R
	size := r.W.Size()
	if size == 1 {
		solve()
		return nil
	}
	if r.ID == 0 {
		all := make([]int, 0, size-1)
		payload := map[int]interface{}{}
		for from := 1; from < size; from++ {
			all = append(all, from)
			payload[from] = &haloPacket{}
		}
		recv, err := r.ExchangeReliable(all, payload, d.Pol, d.Sc)
		if err != nil {
			return fmt.Errorf("comm: coarse gather: %w", err)
		}
		for _, from := range all {
			pk := recv[from].(*haloPacket)
			for i, node := range pk.Node {
				b[3*node] = pk.Val[3*i]
				b[3*node+1] = pk.Val[3*i+1]
				b[3*node+2] = pk.Val[3*i+2]
			}
		}
		solve()
		// Deep copy: receivers unpack after our exchange completes, and
		// the caller may mutate x before they do.
		out := &vecPacket{Val: append([]float64(nil), x...)}
		for _, to := range all {
			payload[to] = out
		}
		d.Sc.Counter("halo_msgs").Add(int64(size - 1))
		d.Sc.Counter("halo_bytes").Add(int64((size - 1) * 8 * len(x)))
		if _, err := r.ExchangeReliable(all, payload, d.Pol, d.Sc); err != nil {
			return fmt.Errorf("comm: coarse broadcast: %w", err)
		}
		return nil
	}
	own := d.L.OwnedNodes()
	pk := &haloPacket{Node: own, Val: make([]float64, 0, 3*len(own))}
	for _, node := range own {
		pk.Val = append(pk.Val, b[3*node], b[3*node+1], b[3*node+2])
	}
	d.countPacket(pk)
	if _, err := r.ExchangeReliable([]int{0}, map[int]interface{}{0: pk}, d.Pol, d.Sc); err != nil {
		return fmt.Errorf("comm: coarse gather: %w", err)
	}
	sol, err := r.ExchangeReliable([]int{0}, map[int]interface{}{0: &haloPacket{}}, d.Pol, d.Sc)
	if err != nil {
		return fmt.Errorf("comm: coarse broadcast: %w", err)
	}
	copy(x, sol[0].(*vecPacket).Val)
	return nil
}
