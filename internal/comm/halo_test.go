package comm

import (
	"sync"
	"testing"

	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/telemetry"
)

// TestDistReduceBroadcast drives the owner-reduce/broadcast halo
// exchange with an additive "apply" whose exact result is known: every
// element adds 1 to each of its 27 nodes, so after the reduction every
// node must hold the number of elements supporting it — on owned and
// ghost copies alike. Boundary elements are applied before the exchange
// starts, interior elements inside the overlap window, exactly like the
// distributed operator.
func TestDistReduceBroadcast(t *testing.T) {
	da := mesh.New(4, 4, 2, 0, 1, 0, 1, 0, 1)
	d, err := NewDecomp(da, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	support1D := func(idx, m int) float64 {
		if idx%2 == 1 {
			return 1
		}
		if idx == 0 || idx == 2*m {
			return 1
		}
		return 2
	}
	w := NewWorld(d.Size())
	reg := telemetry.New()
	var mu sync.Mutex
	vecs := make([]la.Vec, d.Size())
	w.Run(func(r *Rank) {
		l := NewLayout(d, r.ID)
		mu.Lock()
		sc := reg.Root().Child("rank").Child(string(rune('0' + r.ID)))
		mu.Unlock()
		dist := NewDist(r, l, sc)
		y := la.NewVec(3 * da.NNodes())
		addElems := func(elems []int) {
			var nodes [27]int32
			for _, e := range elems {
				da.ElemNodes(e, &nodes)
				for _, n := range nodes {
					y[3*n]++
					y[3*n+1]++
					y[3*n+2]++
				}
			}
		}
		addElems(l.Boundary)
		if err := dist.ReduceBroadcast(y, func() { addElems(l.Interior) }, nil); err != nil {
			t.Errorf("rank %d: %v", r.ID, err)
			return
		}
		mu.Lock()
		vecs[r.ID] = y
		mu.Unlock()
	})
	for rid := 0; rid < d.Size(); rid++ {
		l := NewLayout(d, rid)
		y := vecs[rid]
		b := l.Ext
		for k := b.Lo[2]; k < b.Hi[2]; k++ {
			for j := b.Lo[1]; j < b.Hi[1]; j++ {
				for i := b.Lo[0]; i < b.Hi[0]; i++ {
					n := da.NodeID(i, j, k)
					want := support1D(i, da.Mx) * support1D(j, da.My) * support1D(k, da.Mz)
					for c := 0; c < 3; c++ {
						if y[3*n+c] != want {
							t.Fatalf("rank %d node (%d,%d,%d) dof %d: got %g want %g",
								rid, i, j, k, c, y[3*n+c], want)
						}
					}
				}
			}
		}
	}
	// The exchange must have been counted.
	var msgs int64
	for rid := 0; rid < d.Size(); rid++ {
		msgs += reg.Root().Child("rank").Child(string(rune('0' + rid))).Counter("halo_msgs").Value()
	}
	if msgs == 0 {
		t.Fatal("no halo messages counted")
	}
}

// TestDistAllReduceSum: the rank-ordered reduction must return the
// bit-identical global sum on every rank, deterministically.
func TestDistAllReduceSum(t *testing.T) {
	da := mesh.New(4, 2, 2, 0, 1, 0, 1, 0, 1)
	d, err := NewDecomp(da, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ref float64
	for trial := 0; trial < 5; trial++ {
		w := NewWorld(d.Size())
		got := make([]float64, d.Size())
		var mu sync.Mutex
		w.Run(func(r *Rank) {
			dist := NewDist(r, NewLayout(d, r.ID), nil)
			v := dist.AllReduceSum(0.1 * float64(r.ID+1))
			mu.Lock()
			got[r.ID] = v
			mu.Unlock()
		})
		for rid := 1; rid < d.Size(); rid++ {
			if got[rid] != got[0] {
				t.Fatalf("trial %d: rank %d saw %v, rank 0 saw %v", trial, rid, got[rid], got[0])
			}
		}
		if trial == 0 {
			ref = got[0]
		} else if got[0] != ref {
			t.Fatalf("trial %d: sum %v differs from first trial %v (nondeterministic order)", trial, got[0], ref)
		}
	}
}

// TestGatherSolveBroadcast: per-rank owned slices of b are assembled on
// rank 0, the root "solve" doubles them into x, and every rank receives
// the full solution.
func TestGatherSolveBroadcast(t *testing.T) {
	da := mesh.New(4, 4, 2, 0, 1, 0, 1, 0, 1)
	d, err := NewDecomp(da, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 3 * da.NNodes()
	w := NewWorld(d.Size())
	var mu sync.Mutex
	vecs := make([]la.Vec, d.Size())
	w.Run(func(r *Rank) {
		l := NewLayout(d, r.ID)
		dist := NewDist(r, l, nil)
		b := la.NewVec(n)
		for _, node := range l.OwnedNodes() {
			for c := 0; c < 3; c++ {
				b[3*node+int32(c)] = float64(3*node + int32(c))
			}
		}
		x := la.NewVec(n)
		err := dist.GatherSolveBroadcast(b, x, func() {
			for i := range x {
				x[i] = 2 * b[i]
			}
		})
		if err != nil {
			t.Errorf("rank %d: %v", r.ID, err)
			return
		}
		mu.Lock()
		vecs[r.ID] = x
		mu.Unlock()
	})
	for rid := 0; rid < d.Size(); rid++ {
		for i := 0; i < n; i++ {
			if vecs[rid][i] != 2*float64(i) {
				t.Fatalf("rank %d x[%d] = %g, want %g", rid, i, vecs[rid][i], 2*float64(i))
			}
		}
	}
}
