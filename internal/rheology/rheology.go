// Package rheology implements the constitutive models of paper §II-A and
// §V-A: per-lithology effective viscosity laws — constant, and a
// temperature-, pressure- and strain-rate-dependent Arrhenius power law —
// combined with a Drucker–Prager stress limiter that parametrizes brittle
// (plastic) behaviour, plus Boussinesq buoyancy. The effective viscosity
// evaluated at material points feeds the Eq. 12 projection.
package rheology

import "math"

// RGas is the universal gas constant in J/(mol·K).
const RGas = 8.314462618

// ViscosityType selects the creep law.
type ViscosityType int

// Supported creep laws.
const (
	// Constant viscosity: η = Eta0.
	Constant ViscosityType = iota
	// Arrhenius is the power-law creep
	// η = A · ε̇_II^(1/n − 1) · exp(E/(n·R·T)), the form used for the
	// rifting model's crust and mantle lithologies (§V-A).
	Arrhenius
	// FrankKamenetskii is the standard nondimensional linearization of the
	// Arrhenius law, η = A · ε̇_II^(1/n − 1) · exp(−θ·T) with T ∈ [0,1],
	// used by the scaled rifting model (the E field holds θ).
	FrankKamenetskii
)

// Lithology carries the material parameters of one rock type Φ.
type Lithology struct {
	Name string

	// Creep law.
	Type ViscosityType
	Eta0 float64 // constant viscosity, or prefactor A for Arrhenius
	N    float64 // stress exponent n (≥1)
	E    float64 // activation energy [J/mol]

	// Drucker–Prager stress limiter (brittle yield): τ_y = C·cosφ + p·sinφ.
	// Plastic=false disables yielding (ductile-only lithologies).
	Plastic      bool
	Cohesion     float64 // C
	FrictionPhi  float64 // φ in radians
	CohesionSoft float64 // softened cohesion at full damage (strain softening)
	SoftStrain   float64 // plastic strain at which softening saturates

	// Viscosity clipping.
	EtaMin, EtaMax float64

	// Boussinesq density: ρ = Rho0·(1 − α(T − T0)).
	Rho0  float64
	Alpha float64
	TRef  float64
}

// State is the local thermodynamic/kinematic state at a material point or
// quadrature point.
type State struct {
	StrainRateII  float64 // second invariant ε̇_II = √(½ D:D)
	Pressure      float64
	Temperature   float64 // Kelvin (or nondimensional, with E scaled)
	PlasticStrain float64 // accumulated plastic strain (softening variable)
}

// cohesion returns the (linearly strain-softened) cohesion.
func (l *Lithology) cohesion(plasticStrain float64) float64 {
	if l.SoftStrain <= 0 || l.CohesionSoft <= 0 {
		return l.Cohesion
	}
	f := plasticStrain / l.SoftStrain
	if f > 1 {
		f = 1
	}
	return l.Cohesion + f*(l.CohesionSoft-l.Cohesion)
}

// ViscousViscosity returns the creep (ductile) viscosity without the
// stress limiter or clipping.
func (l *Lithology) ViscousViscosity(s State) float64 {
	switch l.Type {
	case Arrhenius:
		eII := s.StrainRateII
		if eII < 1e-32 {
			eII = 1e-32
		}
		t := s.Temperature
		if t < 1e-8 {
			t = 1e-8
		}
		return l.Eta0 * math.Pow(eII, 1/l.N-1) * math.Exp(l.E/(l.N*RGas*t))
	case FrankKamenetskii:
		eII := s.StrainRateII
		if eII < 1e-32 {
			eII = 1e-32
		}
		n := l.N
		if n <= 0 {
			n = 1
		}
		return l.Eta0 * math.Pow(eII, 1/n-1) * math.Exp(-l.E*s.Temperature)
	default:
		return l.Eta0
	}
}

// YieldViscosity returns the Drucker–Prager limiter viscosity
// η_y = τ_y/(2·ε̇_II), or +Inf when the lithology does not yield.
func (l *Lithology) YieldViscosity(s State) float64 {
	if !l.Plastic {
		return math.Inf(1)
	}
	p := s.Pressure
	if p < 0 {
		p = 0 // tensile pressure does not strengthen the yield surface
	}
	tauY := l.cohesion(s.PlasticStrain)*math.Cos(l.FrictionPhi) + p*math.Sin(l.FrictionPhi)
	eII := s.StrainRateII
	if eII < 1e-32 {
		eII = 1e-32
	}
	return tauY / (2 * eII)
}

// EffectiveViscosity composes the creep law with the stress limiter
// (η = min(η_v, η_y)) and clips to [EtaMin, EtaMax]. The second return
// reports whether the yield branch is active (used to accumulate plastic
// strain).
func (l *Lithology) EffectiveViscosity(s State) (eta float64, yielding bool) {
	ev := l.ViscousViscosity(s)
	ey := l.YieldViscosity(s)
	eta = ev
	if ey < ev {
		eta = ey
		yielding = true
	}
	if l.EtaMax > 0 && eta > l.EtaMax {
		eta = l.EtaMax
	}
	if l.EtaMin > 0 && eta < l.EtaMin {
		eta = l.EtaMin
		// Clipped to the floor: the yield branch no longer controls the
		// stress, so do not accumulate plastic strain from it.
	}
	return eta, yielding
}

// EffectiveViscosityDerivative returns η and dη/dε̇_II of the effective
// (clipped, limited) law — the scalar η′ of the Newton linearization
// (paper §III-A). The derivative is computed analytically on whichever
// branch is active and zero on the clip bounds.
func (l *Lithology) EffectiveViscosityDerivative(s State) (eta, detaDe float64) {
	ev := l.ViscousViscosity(s)
	ey := l.YieldViscosity(s)
	eII := s.StrainRateII
	if eII < 1e-32 {
		eII = 1e-32
	}
	if ey < ev {
		eta = ey
		detaDe = -ey / eII // η_y ∝ 1/ε̇ ⇒ dη/dε̇ = −η/ε̇
	} else {
		eta = ev
		if l.Type == Arrhenius || (l.Type == FrankKamenetskii && l.N > 0) {
			detaDe = (1/l.N - 1) * ev / eII
		}
	}
	if l.EtaMax > 0 && eta > l.EtaMax {
		return l.EtaMax, 0
	}
	if l.EtaMin > 0 && eta < l.EtaMin {
		return l.EtaMin, 0
	}
	return eta, detaDe
}

// Density returns the Boussinesq density ρ = Rho0·(1 − α(T − T0)).
func (l *Lithology) Density(s State) float64 {
	return l.Rho0 * (1 - l.Alpha*(s.Temperature-l.TRef))
}

// Table is an indexed set of lithologies (Φ → parameters).
type Table []Lithology

// Eta evaluates the effective viscosity of lithology phi at state s.
func (t Table) Eta(phi int32, s State) float64 {
	eta, _ := t[phi].EffectiveViscosity(s)
	return eta
}

// Rho evaluates the density of lithology phi at state s.
func (t Table) Rho(phi int32, s State) float64 { return t[phi].Density(s) }
