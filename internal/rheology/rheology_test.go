package rheology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantViscosity(t *testing.T) {
	l := Lithology{Type: Constant, Eta0: 5}
	if eta, y := l.EffectiveViscosity(State{StrainRateII: 1}); eta != 5 || y {
		t.Fatalf("eta=%v yielding=%v", eta, y)
	}
}

func TestArrheniusShearThinning(t *testing.T) {
	// n>1 power law: viscosity decreases with strain rate.
	l := Lithology{Type: Arrhenius, Eta0: 1e4, N: 3, E: 1.9e5}
	s1 := State{StrainRateII: 1e-15, Temperature: 1000}
	s2 := State{StrainRateII: 1e-13, Temperature: 1000}
	e1 := l.ViscousViscosity(s1)
	e2 := l.ViscousViscosity(s2)
	if e2 >= e1 {
		t.Fatalf("no shear thinning: %v -> %v", e1, e2)
	}
	// Ratio follows ε̇^(1/n−1): factor 100 in rate ⇒ 100^(-2/3).
	want := math.Pow(100, 1.0/3-1)
	if got := e2 / e1; math.Abs(got-want) > 1e-12*want {
		t.Fatalf("thinning ratio %v, want %v", got, want)
	}
}

func TestArrheniusTemperatureWeakening(t *testing.T) {
	l := Lithology{Type: Arrhenius, Eta0: 1, N: 1, E: 1.9e5}
	cold := l.ViscousViscosity(State{StrainRateII: 1e-15, Temperature: 600})
	hot := l.ViscousViscosity(State{StrainRateII: 1e-15, Temperature: 1500})
	if hot >= cold {
		t.Fatalf("no thermal weakening: cold %v, hot %v", cold, hot)
	}
	// Arrhenius form: ratio = exp(E/R (1/Tc - 1/Th)).
	want := math.Exp(l.E / RGas * (1/600.0 - 1/1500.0))
	if got := cold / hot; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("ratio %v, want %v", got, want)
	}
}

func TestDruckerPragerLimiter(t *testing.T) {
	l := Lithology{
		Type: Constant, Eta0: 1e6,
		Plastic: true, Cohesion: 10, FrictionPhi: math.Pi / 6, // 30°
	}
	// High strain rate: yield viscosity below creep viscosity.
	s := State{StrainRateII: 1.0, Pressure: 100}
	eta, yielding := l.EffectiveViscosity(s)
	wantTau := 10*math.Cos(math.Pi/6) + 100*math.Sin(math.Pi/6)
	if !yielding {
		t.Fatal("limiter not active")
	}
	if math.Abs(eta-wantTau/2) > 1e-12 {
		t.Fatalf("yield viscosity %v, want %v", eta, wantTau/2)
	}
	// The implied stress is exactly the yield stress: 2·η·ε̇ = τ_y.
	if tau := 2 * eta * s.StrainRateII; math.Abs(tau-wantTau) > 1e-12 {
		t.Fatalf("stress %v exceeds yield %v", tau, wantTau)
	}
	// Low strain rate: creep wins.
	if _, y := l.EffectiveViscosity(State{StrainRateII: 1e-9, Pressure: 100}); y {
		t.Fatal("limiter active at negligible strain rate")
	}
}

func TestNegativePressureDoesNotStrengthen(t *testing.T) {
	l := Lithology{Type: Constant, Eta0: 1e9, Plastic: true, Cohesion: 10, FrictionPhi: math.Pi / 6}
	e1 := l.YieldViscosity(State{StrainRateII: 1, Pressure: -50})
	e2 := l.YieldViscosity(State{StrainRateII: 1, Pressure: 0})
	if e1 != e2 {
		t.Fatalf("tensile pressure changed yield: %v vs %v", e1, e2)
	}
}

func TestStrainSoftening(t *testing.T) {
	l := Lithology{
		Type: Constant, Eta0: 1e9, Plastic: true,
		Cohesion: 20, CohesionSoft: 4, SoftStrain: 1,
		FrictionPhi: 0,
	}
	fresh := l.YieldViscosity(State{StrainRateII: 1})
	half := l.YieldViscosity(State{StrainRateII: 1, PlasticStrain: 0.5})
	full := l.YieldViscosity(State{StrainRateII: 1, PlasticStrain: 5})
	if !(full < half && half < fresh) {
		t.Fatalf("softening not monotone: %v %v %v", fresh, half, full)
	}
	if math.Abs(full-4.0/2) > 1e-12 {
		t.Fatalf("saturated yield %v, want 2", full)
	}
}

func TestViscosityClipping(t *testing.T) {
	l := Lithology{Type: Constant, Eta0: 1e30, EtaMax: 1e3, EtaMin: 1e-3}
	if eta, _ := l.EffectiveViscosity(State{}); eta != 1e3 {
		t.Fatalf("max clip: %v", eta)
	}
	l2 := Lithology{Type: Constant, Eta0: 1e-30, EtaMax: 1e3, EtaMin: 1e-3}
	if eta, _ := l2.EffectiveViscosity(State{}); eta != 1e-3 {
		t.Fatalf("min clip: %v", eta)
	}
}

// TestDerivativeMatchesFiniteDifference: the analytic η′ of the Newton
// linearization agrees with a central difference on both branches.
func TestDerivativeMatchesFiniteDifference(t *testing.T) {
	lith := []Lithology{
		{Type: Arrhenius, Eta0: 1e3, N: 3.5, E: 2e5},
		{Type: Constant, Eta0: 1e5, Plastic: true, Cohesion: 10, FrictionPhi: 0.5},
	}
	for li, l := range lith {
		for _, e := range []float64{1e-4, 1e-2, 1} {
			s := State{StrainRateII: e, Pressure: 50, Temperature: 900}
			_, d := l.EffectiveViscosityDerivative(s)
			h := e * 1e-6
			sp, sm := s, s
			sp.StrainRateII += h
			sm.StrainRateII -= h
			ep, _ := l.EffectiveViscosity(sp)
			em, _ := l.EffectiveViscosity(sm)
			fd := (ep - em) / (2 * h)
			if math.Abs(d-fd) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("lith %d ε̇=%g: analytic %v, FD %v", li, e, d, fd)
			}
		}
	}
}

func TestBoussinesqDensity(t *testing.T) {
	l := Lithology{Rho0: 3300, Alpha: 3e-5, TRef: 273}
	if rho := l.Density(State{Temperature: 273}); rho != 3300 {
		t.Fatalf("reference density %v", rho)
	}
	hot := l.Density(State{Temperature: 1573})
	if hot >= 3300 {
		t.Fatal("no thermal buoyancy")
	}
	want := 3300 * (1 - 3e-5*1300)
	if math.Abs(hot-want) > 1e-9 {
		t.Fatalf("density %v, want %v", hot, want)
	}
}

// Property: effective viscosity is always within the clip bounds and
// positive for arbitrary states.
func TestEffectiveViscosityBoundsProperty(t *testing.T) {
	l := Lithology{
		Type: Arrhenius, Eta0: 1e2, N: 3, E: 1.5e5,
		Plastic: true, Cohesion: 5, FrictionPhi: 0.5,
		EtaMin: 1e-4, EtaMax: 1e6,
	}
	f := func(e, p, temp, ps float64) bool {
		s := State{
			StrainRateII:  math.Abs(e),
			Pressure:      p,
			Temperature:   math.Abs(temp),
			PlasticStrain: math.Abs(ps),
		}
		eta, _ := l.EffectiveViscosity(s)
		return eta >= l.EtaMin && eta <= l.EtaMax && !math.IsNaN(eta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tab := Table{
		{Name: "a", Type: Constant, Eta0: 1, Rho0: 10},
		{Name: "b", Type: Constant, Eta0: 2, Rho0: 20},
	}
	if tab.Eta(1, State{}) != 2 || tab.Rho(0, State{}) != 10 {
		t.Fatal("table lookup wrong")
	}
}

func TestFrankKamenetskii(t *testing.T) {
	l := Lithology{Type: FrankKamenetskii, Eta0: 10, N: 1, E: math.Log(1000)}
	top := l.ViscousViscosity(State{StrainRateII: 1, Temperature: 0})
	bot := l.ViscousViscosity(State{StrainRateII: 1, Temperature: 1})
	if math.Abs(top-10) > 1e-12 {
		t.Fatalf("surface viscosity %v, want 10", top)
	}
	if math.Abs(top/bot-1000) > 1e-9*1000 {
		t.Fatalf("FK contrast %v, want 1000", top/bot)
	}
	// Power-law FK derivative consistent with finite differences.
	l2 := Lithology{Type: FrankKamenetskii, Eta0: 5, N: 3, E: 2}
	s := State{StrainRateII: 0.3, Temperature: 0.5}
	_, d := l2.EffectiveViscosityDerivative(s)
	h := 1e-8
	sp, sm := s, s
	sp.StrainRateII += h
	sm.StrainRateII -= h
	fd := (l2.ViscousViscosity(sp) - l2.ViscousViscosity(sm)) / (2 * h)
	if math.Abs(d-fd) > 1e-5*(1+math.Abs(fd)) {
		t.Fatalf("FK derivative %v, FD %v", d, fd)
	}
}
