// Command ptatin-recover demonstrates and exercises the fault-tolerance
// subsystem: it runs the distributed viscous operator of the sinker
// benchmark under an injected fault plan (dropped, delayed and corrupted
// halo envelopes plus a stalled rank), verifies the recovered result
// against the sequential operator, and prints the injection/recovery
// telemetry.
//
// Modes:
//
//	(default)       run the fault/recovery demonstration.
//	-inspect FILE   decode a checkpoint file and print its contents summary
//	                instead of running the demo.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"time"

	"ptatin3d/internal/chkpt"
	"ptatin3d/internal/comm"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/telemetry"
)

func main() {
	m := flag.Int("m", 8, "elements per direction")
	px := flag.Int("px", 2, "ranks in x")
	py := flag.Int("py", 2, "ranks in y")
	pz := flag.Int("pz", 1, "ranks in z")
	seed := flag.Int64("seed", 42, "fault plan seed")
	drops := flag.Int("drops", 4, "halo envelopes to drop")
	corrupts := flag.Int("corrupts", 2, "halo payloads to corrupt in flight")
	stall := flag.Duration("stall", 50*time.Millisecond, "stall duration for rank 1 (0 disables)")
	inspect := flag.String("inspect", "", "decode this checkpoint file and print a summary")
	flag.Parse()

	if *inspect != "" {
		inspectCheckpoint(*inspect)
		return
	}

	o := scenario.DefaultSinkerOptions()
	o.M = *m
	o.Nc = 3
	o.Rc = 0.18
	mdl := scenario.NewSinker(o)
	mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)
	prob := mdl.Prob
	da := prob.DA
	n := da.NVelDOF()

	u := la.NewVec(n)
	for i := range u {
		u[i] = math.Sin(0.1*float64(i)) + 0.01*float64(i%7)
	}
	ref := la.NewVec(n)
	fem.NewTensor(prob).Apply(u, ref)

	d, err := comm.NewDecomp(da, *px, *py, *pz)
	if err != nil {
		log.Fatal(err)
	}
	w := comm.NewWorld(d.Size())
	reg := telemetry.New()
	fp := &comm.FaultPlan{
		Seed:     *seed,
		DropProb: 1, MaxDrops: *drops,
		CorruptProb: 1, MaxCorrupts: *corrupts,
		Telemetry: reg.Root().Child("faults"),
	}
	if *stall > 0 {
		fp.StallRank = 1 % d.Size()
		fp.StallDuration = *stall
	}
	w.SetFaultPlan(fp)
	w.SetRetryPolicy(comm.RetryPolicy{Timeout: 25 * time.Millisecond, MaxRetries: 12, Backoff: 1.5})

	fmt.Printf("# %d ranks (%dx%dx%d), fault plan: %d drops, %d corruptions, stall %v\n",
		d.Size(), *px, *py, *pz, *drops, *corrupts, *stall)

	results := make([]la.Vec, d.Size())
	errs := make([]error, d.Size())
	var mu sync.Mutex
	start := time.Now()
	w.Run(func(r *comm.Rank) {
		y := la.NewVec(n)
		sc := reg.Root().Child("halo").Child(fmt.Sprintf("rank%d", r.ID))
		err := comm.DistributedViscousApply(r, d, prob, fem.NewTensor(prob), u, y, sc)
		mu.Lock()
		results[r.ID], errs[r.ID] = y, err
		mu.Unlock()
	})
	elapsed := time.Since(start)

	failed := false
	for rid, err := range errs {
		if err != nil {
			fmt.Printf("rank %d: exchange failed beyond recovery: %v\n", rid, err)
			failed = true
		}
	}
	if !failed {
		maxErr := 0.0
		scale := ref.NormInf()
		var nodes [27]int32
		for rid := 0; rid < d.Size(); rid++ {
			for _, e := range d.LocalElements(rid) {
				da.ElemNodes(e, &nodes)
				for _, nn := range nodes {
					for c := 0; c < 3; c++ {
						dd := 3*int(nn) + c
						if diff := math.Abs(results[rid][dd] - ref[dd]); diff > maxErr {
							maxErr = diff
						}
					}
				}
			}
		}
		fmt.Printf("recovered in %v; max error vs sequential operator: %.3e (rel %.3e)\n",
			elapsed.Round(time.Millisecond), maxErr, maxErr/scale)
	}

	fmt.Printf("injected: drops=%d delays=%d corruptions=%d stalls=%d\n",
		fp.Drops(), fp.Delays(), fp.Corruptions(), fp.Stalls())
	var retries, resends, rejected, recovered int64
	for rid := 0; rid < d.Size(); rid++ {
		sc := reg.Root().Child("halo").Child(fmt.Sprintf("rank%d", rid))
		retries += sc.Counter("retries").Value()
		resends += sc.Counter("resends_served").Value()
		rejected += sc.Counter("corrupt_rejected").Value()
		recovered += sc.Counter("recovered_exchanges").Value()
	}
	fmt.Printf("recovery: retries=%d resends_served=%d corrupt_rejected=%d recovered_exchanges=%d\n",
		retries, resends, rejected, recovered)
	if failed {
		os.Exit(1)
	}
}

// inspectCheckpoint decodes a checkpoint and prints its content summary.
func inspectCheckpoint(path string) {
	st, err := chkpt.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint %s (format v%d)\n", path, chkpt.Version)
	fmt.Printf("  step      %d\n", st.StepNum)
	fmt.Printf("  time      %g\n", st.Time)
	fmt.Printf("  grid      %dx%dx%d elements\n", st.Mx, st.My, st.Mz)
	fmt.Printf("  coords    %d values (%d vertices)\n", len(st.Coords), len(st.Coords)/3)
	fmt.Printf("  state     %d DOFs\n", len(st.X))
	if st.Temp != nil {
		fmt.Printf("  temp      %d vertices\n", len(st.Temp))
	} else {
		fmt.Printf("  temp      (absent)\n")
	}
	fmt.Printf("  points    %d\n", st.NPoints())
	if np := st.NPoints(); np > 0 {
		var plas float64
		unloc := 0
		for i := 0; i < np; i++ {
			plas += st.Plastic[i]
			if st.Elem[i] < 0 {
				unloc++
			}
		}
		fmt.Printf("  plastic   mean %.4g\n", plas/float64(np))
		fmt.Printf("  unlocated %d\n", unloc)
	}
}
