// Command ptatin-rift is a thin wrapper over the "rift" scenario (see
// cmd/ptatin-run for the general driver). It keeps the flags specific
// to the continental rifting study of paper §V:
//
//	-oblique    apply boundary condition (ii): 0.1 cm/yr z-shortening.
//	-weak ETA   lower-crust viscosity (nondimensional; weak ≈ 0.01–0.05
//	            favours wide/oblique margins, strong ≈ 0.5 favours ridge
//	            jumps — the paper's §V conclusion).
//	-snapshot   write fig3_grid.vtk / fig3_points.vtk after the run
//	            (the Figure 3 visualization: lithology + damage zone).
//
// Deprecated for plain time stepping: prefer
//
//	ptatin-run -scenario rift -steps N
package main

import (
	"flag"
	"fmt"
	"log"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/driver"
	"ptatin3d/internal/scenario"
)

func main() {
	mx := flag.Int("mx", 32, "elements in x (paper: 256)")
	my := flag.Int("my", 8, "elements in y (paper: 32)")
	mz := flag.Int("mz", 16, "elements in z (paper: 128)")
	steps := flag.Int("steps", 5, "time steps (paper: 1500-2000)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = runtime.NumCPU())")
	opFlag := flag.String("op", "", "fine-level operator representation (auto|mf|mfref|asm|galerkin)")
	blocked := flag.Bool("blocked", false, "cache-blocked wavefront Chebyshev smoothers (substitutes a resident fine operator inside the hierarchy)")
	precFlag := flag.String("precision", "", "V-cycle preconditioner precision (f64|f32); the outer Krylov method always iterates in f64")
	oblique := flag.Bool("oblique", false, "apply z-shortening (BC variant ii)")
	weak := flag.Float64("weak", 0.05, "lower-crust viscosity (nondim)")
	snapshot := flag.Bool("snapshot", false, "write Figure 3 VTK output")
	outdir := flag.String("outdir", ".", "output directory")
	ckptEvery := flag.Int("checkpoint-every", 0, "write a checkpoint every N steps (0 disables)")
	ckptPath := flag.String("checkpoint", "rift.chkpt", "checkpoint file path")
	restartFrom := flag.String("restart-from", "", "restore model state from this checkpoint before stepping")
	flag.Parse()
	*workers = cli.Workers(*workers)

	o := scenario.DefaultRiftOptions()
	o.Mx, o.My, o.Mz = *mx, *my, *mz
	o.Workers = *workers
	o.WeakCrustEta = *weak
	if *oblique {
		o.ObliqueShortening = 0.1
	}
	m := scenario.NewRift(o)
	ov := driver.Overrides{Op: *opFlag, Blocked: *blocked, Precision: *precFlag}
	if err := ov.Apply(m); err != nil {
		log.Fatal(err)
	}

	fmt.Println("# Figure 4 reproduction: nonlinear solver behaviour per time step")
	if err := driver.Run(m, driver.Config{
		Steps:           *steps,
		CheckpointEvery: *ckptEvery,
		CheckpointPath:  *ckptPath,
		RestartFrom:     *restartFrom,
		Scenario:        "rift",
	}); err != nil {
		log.Fatal(err)
	}

	if *snapshot {
		must(m.WriteVTK(*outdir + "/fig3_grid.vtk"))
		must(m.WritePointsVTK(*outdir + "/fig3_points.vtk"))
		fmt.Println("# wrote fig3_grid.vtk, fig3_points.vtk")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
