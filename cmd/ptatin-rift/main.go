// Command ptatin-rift runs the continental rifting and breakup model of
// paper §V at laptop scale: a 1200×200×600 km (nondimensionalized 12×2×6)
// domain with mantle + weak/lower crust + strong/upper crust lithologies,
// visco-plastic rheology with strain softening, a central damage seed,
// symmetric x-extension (optionally with oblique z-shortening), thermal
// evolution and a deforming free surface.
//
// Modes:
//
//	-steps N    advance N time steps, printing the per-step Newton and
//	            Krylov iteration counts (the Figure 4 data, CSV).
//	-snapshot   write fig3_grid.vtk / fig3_points.vtk after the run
//	            (the Figure 3 visualization: lithology + damage zone).
//	-oblique    apply boundary condition (ii): 0.1 cm/yr z-shortening.
//	-weak ETA   lower-crust viscosity (nondimensional; weak ≈ 0.01–0.05
//	            favours wide/oblique margins, strong ≈ 0.5 favours ridge
//	            jumps — the paper's §V conclusion).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/model"
	"ptatin3d/internal/op"
)

func main() {
	mx := flag.Int("mx", 32, "elements in x (paper: 256)")
	my := flag.Int("my", 8, "elements in y (paper: 32)")
	mz := flag.Int("mz", 16, "elements in z (paper: 128)")
	steps := flag.Int("steps", 5, "time steps (paper: 1500-2000)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = runtime.NumCPU())")
	opFlag := flag.String("op", "", "fine-level operator representation (auto|mf|mfref|asm|galerkin)")
	blocked := flag.Bool("blocked", false, "cache-blocked wavefront Chebyshev smoothers (substitutes a resident fine operator inside the hierarchy)")
	precFlag := flag.String("precision", "", "V-cycle preconditioner precision (f64|f32); the outer Krylov method always iterates in f64")
	oblique := flag.Bool("oblique", false, "apply z-shortening (BC variant ii)")
	weak := flag.Float64("weak", 0.05, "lower-crust viscosity (nondim)")
	snapshot := flag.Bool("snapshot", false, "write Figure 3 VTK output")
	outdir := flag.String("outdir", ".", "output directory")
	ckptEvery := flag.Int("checkpoint-every", 0, "write a checkpoint every N steps (0 disables)")
	ckptPath := flag.String("checkpoint", "rift.chkpt", "checkpoint file path")
	restartFrom := flag.String("restart-from", "", "restore model state from this checkpoint before stepping")
	flag.Parse()
	*workers = cli.Workers(*workers)

	o := model.DefaultRiftOptions()
	o.Mx, o.My, o.Mz = *mx, *my, *mz
	o.Workers = *workers
	o.WeakCrustEta = *weak
	if *oblique {
		o.ObliqueShortening = 0.1
	}
	m := model.NewRift(o)
	fineKind := op.Tensor
	if *opFlag != "" {
		k, err := op.ParseKind(*opFlag)
		if err != nil {
			log.Fatal(err)
		}
		fineKind = k
		m.Cfg.FineKind = k
	}
	m.Cfg.Blocked = *blocked
	if *precFlag != "" {
		pr, err := op.ParsePrecision(*precFlag)
		if err != nil {
			log.Fatal(err)
		}
		m.Cfg.Precision = pr
	}
	if *restartFrom != "" {
		if err := m.LoadCheckpoint(*restartFrom); err != nil {
			log.Fatalf("restart: %v", err)
		}
		fmt.Printf("# restarted from %s at step %d, t=%.5f\n", *restartFrom, m.StepNum, m.Time)
	}

	fmt.Println("# Figure 4 reproduction: nonlinear solver behaviour per time step")
	fmt.Println("# columns: step, time, dt, newton_its, krylov_its, krylov_per_newton, |F|0, |F|, converged, topo_min, topo_max, points, wall_s")
	for s := 0; s < *steps; s++ {
		if err := m.StepForward(); err != nil {
			log.Fatalf("step %d: %v", s, err)
		}
		st := m.Stats[len(m.Stats)-1]
		kpn := 0.0
		if st.NewtonIts > 0 {
			kpn = float64(st.KrylovIts) / float64(st.NewtonIts)
		}
		fmt.Printf("%d, %.5f, %.5f, %d, %d, %.1f, %.3e, %.3e, %v, %.4f, %.4f, %d, %.1f\n",
			st.Step, st.Time, st.Dt, st.NewtonIts, st.KrylovIts, kpn,
			st.FNorm0, st.FNorm, st.Converged, st.TopoMin, st.TopoMax,
			st.PointCount, st.SolveTime.Seconds())
		if *ckptEvery > 0 && m.StepNum%*ckptEvery == 0 {
			if err := m.SaveCheckpoint(*ckptPath); err != nil {
				log.Fatalf("checkpoint: %v", err)
			}
			fmt.Printf("# checkpointed step %d to %s\n", m.StepNum, *ckptPath)
		}
	}

	if fineKind == op.Auto && m.LastStokes != nil {
		fmt.Fprintln(os.Stderr, "# operator auto-selection")
		for _, d := range m.LastStokes.SelectionReport() {
			fmt.Fprintln(os.Stderr, "#   "+d.Summary())
		}
	}

	if *snapshot {
		must(m.WriteVTK(*outdir + "/fig3_grid.vtk"))
		must(m.WritePointsVTK(*outdir + "/fig3_points.vtk"))
		fmt.Println("# wrote fig3_grid.vtk, fig3_points.vtk")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
