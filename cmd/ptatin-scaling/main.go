// Command ptatin-scaling regenerates Tables II and III of the paper at
// laptop scale: iterations, coarse-grid setup/apply time and Stokes
// time-to-solution for the assembled (Asmb), reference matrix-free (MF)
// and tensor-product (Tens) fine-level operators, across a grid × worker
// ("cores") sweep, plus the efficiency metrics elements/core/second and
// GF/s derived from the analytic flop counts of the performance model.
//
// The paper sweeps 64³–192³ elements over 192–12,288 MPI cores on a Cray
// XC-30; this reproduction sweeps (by default) 8³–16³ elements over 1–4
// worker goroutines sharing one node — the regime where the paper's
// memory-bandwidth argument lives (see DESIGN.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/op"

	"ptatin3d/internal/model"
	"ptatin3d/internal/par"
	"ptatin3d/internal/perfmodel"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
)

// telReg is the run-wide telemetry registry, nil unless -telemetry is set.
var telReg *telemetry.Registry

func main() {
	grids := flag.String("grids", "8,12,16", "comma-separated grid sizes (elements/direction)")
	cores := flag.String("cores", "1,2,4", "comma-separated worker counts (0 entries = runtime.NumCPU())")
	deta := flag.Float64("deta", 100, "viscosity contrast")
	opFlag := flag.String("op", "", "restrict the sweep to one fine-level representation (auto|mf|mfref|asm|galerkin); default sweeps asm, mfref and mf")
	ranks := flag.String("ranks", "", "run the rank-distributed solve over a PxxPyxPz rank grid (e.g. 2x2x1) instead of the shared-memory sweep")
	jsonFlag := flag.Bool("json", false, "with -ranks: emit the machine-readable scaling benchmark (BENCH_PR5 schema) and exit")
	telFlag := flag.Bool("telemetry", false, "emit the per-run telemetry table + JSON after the sweep")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	if *telFlag {
		telReg = telemetry.New()
		par.SetTelemetry(telReg.Root().Child("par"))
		defer par.SetTelemetry(nil)
		fem.SetTelemetry(telReg.Root().Child("fem"))
		defer fem.SetTelemetry(nil)
	}

	if *ranks != "" {
		gridList, err := cli.ParseInts(*grids)
		if err != nil {
			log.Fatal(err)
		}
		runRanksMode(gridList, *ranks, *deta, *jsonFlag)
		return
	}
	if *jsonFlag {
		log.Fatal("ptatin-scaling: -json requires -ranks (the BENCH_PR5 schema covers the rank-distributed solve)")
	}

	counts := map[string]perfmodel.OpCounts{}
	for _, c := range perfmodel.ReproCounts() {
		counts[c.Name] = c
	}
	kindName := map[op.Kind]string{
		op.Assembled: "Asmb",
		op.MFRef:     "MF",
		op.Tensor:    "Tens",
		op.Galerkin:  "Galk",
		op.Auto:      "Auto",
	}
	countName := map[op.Kind]string{
		op.Assembled: "Assembled",
		op.MFRef:     "Matrix-free",
		op.Tensor:    "Tensor",
		op.Galerkin:  "Assembled",
		op.Auto:      "Tensor",
	}
	kinds := []op.Kind{op.Assembled, op.MFRef, op.Tensor}
	if *opFlag != "" {
		k, err := op.ParseKind(*opFlag)
		if err != nil {
			log.Fatal(err)
		}
		kinds = []op.Kind{k}
	}

	fmt.Println("# Table II/III reproduction (laptop scale; see DESIGN.md substitutions)")
	fmt.Printf("%-6s %-6s %-5s %4s %12s %12s %12s | %10s %9s %8s\n",
		"grid", "cores", "SpMV", "its", "coarse-setup", "coarse-apply", "solve(s)",
		"E/C/s", "GF/C/s", "GF/s")

	coreList, err := cli.ParseInts(*cores)
	if err != nil {
		log.Fatal(err)
	}
	cli.WorkersList(coreList)
	gridList, err := cli.ParseInts(*grids)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range gridList {
		for _, c := range coreList {
			for _, kind := range kinds {
				runOne(g, c, *deta, kind, kindName[kind], counts[countName[kind]])
			}
		}
	}
	fmt.Println("\n# Shape check (paper): MF uniformly faster than Asmb; Tens uniformly")
	fmt.Println("# faster than MF; E/C/s highest for Tens; iterations roughly flat in cores.")

	if telReg != nil {
		fmt.Println("\n# Telemetry breakdown (accumulated over the sweep)")
		telReg.WriteTable(os.Stdout)
		fmt.Println("\n# Telemetry (JSON)")
		if err := telReg.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func runOne(g, workers int, deta float64, kind op.Kind, label string, oc perfmodel.OpCounts) {
	o := model.DefaultSinkerOptions()
	o.M = g
	o.DeltaEta = deta
	o.Workers = workers
	mdl := model.NewSinker(o)
	mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)

	cfg := mdl.Cfg
	cfg.Workers = workers
	cfg.FineKind = kind
	cfg.Params.MaxIt = 1000
	if telReg != nil {
		cfg.Telemetry = telReg.Root().Child(fmt.Sprintf("g%d_w%d_%s", g, workers, label))
	}
	cfg.CoeffCoarsen = mdl.CoeffCoarsener()

	setupStart := time.Now()
	s, err := stokes.New(mdl.Prob, cfg)
	if err != nil {
		log.Fatal(err)
	}
	setup := time.Since(setupStart)

	bu := la.NewVec(mdl.Prob.DA.NVelDOF())
	fem.MomentumRHS(mdl.Prob, bu)
	x := la.NewVec(s.Op.N())
	solveStart := time.Now()
	res := s.Solve(x, bu, nil)
	solve := time.Since(solveStart).Seconds()
	if !res.Converged {
		fmt.Printf("%-6d %-6d %-5s FAILED after %d its\n", g, workers, label, res.Iterations)
		return
	}
	var coarseApply time.Duration
	if s.CoarseApply != nil {
		coarseApply = s.CoarseApply.Elapsed()
	}
	nel := float64(g * g * g)
	ecs := nel / float64(workers) / solve
	// GF/s attribution: fine-level operator flops × matvec count +
	// (smoother applications inside MG are counted via the PC attribution
	// used by the paper: total useful flops of the solve estimated from
	// the fine-operator count per Krylov iteration × a V(2,2) multiplier).
	const vcycleOps = 7.0 // 2 pre + 2 post smoother applies + residual + λmax share + matvec
	gflops := oc.Flops * nel * float64(res.Iterations) * vcycleOps / 1e9
	gfs := gflops / solve
	fmt.Printf("%-6d %-6d %-5s %4d %12.3f %12.3f %12.3f | %10.0f %9.3f %8.2f\n",
		g, workers, label, res.Iterations,
		setup.Seconds(), coarseApply.Seconds(), solve,
		ecs, gfs/float64(workers), gfs)
}

// rankRecord is one (grid, rank-grid) measurement in the BENCH_PR5
// schema: the rank-distributed solve of the sinker benchmark, with the
// per-rank communication volumes and the analytic halo prediction.
type rankRecord struct {
	M             int                `json:"m"`
	Ranks         string             `json:"ranks"`
	NRanks        int                `json:"nranks"`
	Iterations    int                `json:"iterations"`
	Converged     bool               `json:"converged"`
	SetupMs       float64            `json:"setup_ms"`
	SolveMs       float64            `json:"solve_ms"`
	ElemPerCoreS  float64            `json:"elem_per_core_s"`
	PredHaloBytes float64            `json:"predicted_halo_bytes_per_exchange"`
	PerRank       []stokes.RankStats `json:"per_rank"`
}

// runRanksMode reproduces the Tables II/III shape for the
// rank-distributed solve: each grid is solved collectively over a
// px×py×pz simulated MPI world (cores = ranks — the paper's flat-MPI
// mapping), reporting iterations, time-to-solution, elements/core/s and
// the per-rank halo/allreduce traffic next to the analytic halo-volume
// prediction of the performance model. Grids whose multigrid hierarchy
// the rank grid cannot decompose evenly (nesting requires Px,Py,Pz to
// divide the element counts at every level) are reported and skipped.
func runRanksMode(grids []int, ranksSpec string, deta float64, emitJSON bool) {
	px, py, pz, err := cli.ParseRanks(ranksSpec)
	if err != nil {
		log.Fatal(err)
	}
	nr := px * py * pz
	var records []rankRecord
	if !emitJSON {
		fmt.Printf("# Table II/III shape, rank-distributed (%s = %d ranks; cores = ranks)\n", ranksSpec, nr)
		fmt.Printf("%-6s %-7s %4s %12s %12s %10s | %12s %12s %10s\n",
			"grid", "ranks", "its", "setup(s)", "solve(s)", "E/C/s",
			"halo-B/rank", "pred-B/exch", "allreduces")
	}
	for _, g := range grids {
		o := model.DefaultSinkerOptions()
		o.M = g
		o.DeltaEta = deta
		o.Workers = 1
		mdl := model.NewSinker(o)
		mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)

		cfg := mdl.Cfg
		cfg.Workers = 1
		cfg.FineKind = op.Tensor
		cfg.Params.MaxIt = 1000
		cfg.CoeffCoarsen = mdl.CoeffCoarsener()
		if telReg != nil {
			cfg.Telemetry = telReg.Root().Child(fmt.Sprintf("g%d_r%s", g, ranksSpec))
		}

		setupStart := time.Now()
		s, err := stokes.New(mdl.Prob, cfg)
		if err != nil {
			log.Fatal(err)
		}
		setup := time.Since(setupStart)

		bu := la.NewVec(mdl.Prob.DA.NVelDOF())
		fem.MomentumRHS(mdl.Prob, bu)
		x := la.NewVec(s.Op.N())
		solveStart := time.Now()
		res, stats, err := s.SolveDistributed(x, bu, px, py, pz)
		solve := time.Since(solveStart).Seconds()
		if err != nil {
			// stderr in JSON mode so the document stays parseable.
			if emitJSON {
				log.Printf("grid %d ranks %s: SKIP: %v", g, ranksSpec, err)
			} else {
				fmt.Printf("%-6d %-7s SKIP: %v\n", g, ranksSpec, err)
			}
			continue
		}
		if !res.Converged {
			if emitJSON {
				log.Printf("grid %d ranks %s: FAILED after %d its", g, ranksSpec, res.Iterations)
			} else {
				fmt.Printf("%-6d %-7s FAILED after %d its\n", g, ranksSpec, res.Iterations)
			}
			continue
		}
		pred := perfmodel.HaloExchangeBytes(perfmodel.MaxGhostNodes(g, g, g, px, py, pz))
		nel := float64(g * g * g)
		ecs := nel / float64(nr) / solve
		var maxBytes, maxMsgs, maxAR int64
		for _, st := range stats {
			maxBytes = max(maxBytes, st.HaloBytes)
			maxMsgs = max(maxMsgs, st.HaloMsgs)
			maxAR = max(maxAR, st.AllReduces)
		}
		if emitJSON {
			records = append(records, rankRecord{
				M: g, Ranks: ranksSpec, NRanks: nr,
				Iterations: res.Iterations, Converged: true,
				SetupMs: setup.Seconds() * 1e3, SolveMs: solve * 1e3,
				ElemPerCoreS: ecs, PredHaloBytes: pred, PerRank: stats,
			})
			continue
		}
		fmt.Printf("%-6d %-7s %4d %12.3f %12.3f %10.0f | %12d %12.0f %10d\n",
			g, ranksSpec, res.Iterations, setup.Seconds(), solve, ecs,
			maxBytes, pred, maxAR)
		for _, st := range stats {
			fmt.Printf("#   rank %2d: halo %6d msgs %10d B, %5d allreduces, %d retries\n",
				st.Rank, st.HaloMsgs, st.HaloBytes, st.AllReduces, st.Retries)
		}
	}
	if emitJSON {
		doc := struct {
			Schema  string       `json:"schema"`
			Ranks   string       `json:"ranks"`
			Results []rankRecord `json:"results"`
		}{Schema: "BENCH_PR5", Ranks: ranksSpec, Results: records}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
	}
}
