// Command ptatin-scaling regenerates Tables II and III of the paper at
// laptop scale: iterations, coarse-grid setup/apply time and Stokes
// time-to-solution for the assembled (Asmb), reference matrix-free (MF)
// and tensor-product (Tens) fine-level operators, across a grid × worker
// ("cores") sweep, plus the efficiency metrics elements/core/second and
// GF/s derived from the analytic flop counts of the performance model.
//
// The paper sweeps 64³–192³ elements over 192–12,288 MPI cores on a Cray
// XC-30; this reproduction sweeps (by default) 8³–16³ elements over 1–4
// worker goroutines sharing one node — the regime where the paper's
// memory-bandwidth argument lives (see DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strconv"
	"strings"
	"time"

	"os"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/op"

	"ptatin3d/internal/model"
	"ptatin3d/internal/par"
	"ptatin3d/internal/perfmodel"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
)

// telReg is the run-wide telemetry registry, nil unless -telemetry is set.
var telReg *telemetry.Registry

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad int list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func main() {
	grids := flag.String("grids", "8,12,16", "comma-separated grid sizes (elements/direction)")
	cores := flag.String("cores", "1,2,4", "comma-separated worker counts (0 entries = runtime.NumCPU())")
	deta := flag.Float64("deta", 100, "viscosity contrast")
	opFlag := flag.String("op", "", "restrict the sweep to one fine-level representation (auto|mf|mfref|asm|galerkin); default sweeps asm, mfref and mf")
	telFlag := flag.Bool("telemetry", false, "emit the per-run telemetry table + JSON after the sweep")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	if *telFlag {
		telReg = telemetry.New()
		par.SetTelemetry(telReg.Root().Child("par"))
		defer par.SetTelemetry(nil)
		fem.SetTelemetry(telReg.Root().Child("fem"))
		defer fem.SetTelemetry(nil)
	}

	counts := map[string]perfmodel.OpCounts{}
	for _, c := range perfmodel.ReproCounts() {
		counts[c.Name] = c
	}
	kindName := map[op.Kind]string{
		op.Assembled: "Asmb",
		op.MFRef:     "MF",
		op.Tensor:    "Tens",
		op.Galerkin:  "Galk",
		op.Auto:      "Auto",
	}
	countName := map[op.Kind]string{
		op.Assembled: "Assembled",
		op.MFRef:     "Matrix-free",
		op.Tensor:    "Tensor",
		op.Galerkin:  "Assembled",
		op.Auto:      "Tensor",
	}
	kinds := []op.Kind{op.Assembled, op.MFRef, op.Tensor}
	if *opFlag != "" {
		k, err := op.ParseKind(*opFlag)
		if err != nil {
			log.Fatal(err)
		}
		kinds = []op.Kind{k}
	}

	fmt.Println("# Table II/III reproduction (laptop scale; see DESIGN.md substitutions)")
	fmt.Printf("%-6s %-6s %-5s %4s %12s %12s %12s | %10s %9s %8s\n",
		"grid", "cores", "SpMV", "its", "coarse-setup", "coarse-apply", "solve(s)",
		"E/C/s", "GF/C/s", "GF/s")

	coreList := parseInts(*cores)
	for i, c := range coreList {
		if c <= 0 {
			coreList[i] = runtime.NumCPU()
		}
	}
	for _, g := range parseInts(*grids) {
		for _, c := range coreList {
			for _, kind := range kinds {
				runOne(g, c, *deta, kind, kindName[kind], counts[countName[kind]])
			}
		}
	}
	fmt.Println("\n# Shape check (paper): MF uniformly faster than Asmb; Tens uniformly")
	fmt.Println("# faster than MF; E/C/s highest for Tens; iterations roughly flat in cores.")

	if telReg != nil {
		fmt.Println("\n# Telemetry breakdown (accumulated over the sweep)")
		telReg.WriteTable(os.Stdout)
		fmt.Println("\n# Telemetry (JSON)")
		if err := telReg.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func runOne(g, workers int, deta float64, kind op.Kind, label string, oc perfmodel.OpCounts) {
	o := model.DefaultSinkerOptions()
	o.M = g
	o.DeltaEta = deta
	o.Workers = workers
	mdl := model.NewSinker(o)
	mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)

	cfg := mdl.Cfg
	cfg.Workers = workers
	cfg.FineKind = kind
	cfg.Params.MaxIt = 1000
	if telReg != nil {
		cfg.Telemetry = telReg.Root().Child(fmt.Sprintf("g%d_w%d_%s", g, workers, label))
	}
	cfg.CoeffCoarsen = mdl.CoeffCoarsener()

	setupStart := time.Now()
	s, err := stokes.New(mdl.Prob, cfg)
	if err != nil {
		log.Fatal(err)
	}
	setup := time.Since(setupStart)

	bu := la.NewVec(mdl.Prob.DA.NVelDOF())
	fem.MomentumRHS(mdl.Prob, bu)
	x := la.NewVec(s.Op.N())
	solveStart := time.Now()
	res := s.Solve(x, bu, nil)
	solve := time.Since(solveStart).Seconds()
	if !res.Converged {
		fmt.Printf("%-6d %-6d %-5s FAILED after %d its\n", g, workers, label, res.Iterations)
		return
	}
	var coarseApply time.Duration
	if s.CoarseApply != nil {
		coarseApply = s.CoarseApply.Elapsed()
	}
	nel := float64(g * g * g)
	ecs := nel / float64(workers) / solve
	// GF/s attribution: fine-level operator flops × matvec count +
	// (smoother applications inside MG are counted via the PC attribution
	// used by the paper: total useful flops of the solve estimated from
	// the fine-operator count per Krylov iteration × a V(2,2) multiplier).
	const vcycleOps = 7.0 // 2 pre + 2 post smoother applies + residual + λmax share + matvec
	gflops := oc.Flops * nel * float64(res.Iterations) * vcycleOps / 1e9
	gfs := gflops / solve
	fmt.Printf("%-6d %-6d %-5s %4d %12.3f %12.3f %12.3f | %10.0f %9.3f %8.2f\n",
		g, workers, label, res.Iterations,
		setup.Seconds(), coarseApply.Seconds(), solve,
		ecs, gfs/float64(workers), gfs)
}
